package sax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hdc/internal/timeseries"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randSeries(rng *rand.Rand, n int) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestBreakpointsKnownValues(t *testing.T) {
	// Canonical SAX breakpoints (Lin et al. Table 3).
	tests := []struct {
		a    int
		want []float64
	}{
		{3, []float64{-0.43, 0.43}},
		{4, []float64{-0.67, 0, 0.67}},
		{5, []float64{-0.84, -0.25, 0.25, 0.84}},
		{6, []float64{-0.97, -0.43, 0, 0.43, 0.97}},
		{8, []float64{-1.15, -0.67, -0.32, 0, 0.32, 0.67, 1.15}},
	}
	for _, tt := range tests {
		got, err := Breakpoints(tt.a)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(tt.want) {
			t.Fatalf("a=%d: %d breakpoints, want %d", tt.a, len(got), len(tt.want))
		}
		for i := range got {
			if !almostEq(got[i], tt.want[i], 0.01) {
				t.Errorf("a=%d bp[%d] = %v, want %v", tt.a, i, got[i], tt.want[i])
			}
		}
	}
}

func TestBreakpointsSortedSymmetric(t *testing.T) {
	for a := MinAlphabet; a <= MaxAlphabet; a++ {
		bp, err := Breakpoints(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(bp); i++ {
			if bp[i] <= bp[i-1] {
				t.Fatalf("a=%d: breakpoints not increasing", a)
			}
		}
		// Symmetry: bp[i] == -bp[len-1-i].
		for i := range bp {
			if !almostEq(bp[i], -bp[len(bp)-1-i], 1e-9) {
				t.Fatalf("a=%d: breakpoints not symmetric", a)
			}
		}
	}
}

func TestBreakpointsRange(t *testing.T) {
	if _, err := Breakpoints(1); err == nil {
		t.Error("a=1 should fail")
	}
	if _, err := Breakpoints(27); err == nil {
		t.Error("a=27 should fail")
	}
}

func TestEncodeKnownWord(t *testing.T) {
	enc, err := NewEncoder(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A ramp: lowest quarter → 'a', highest → 'd'.
	s := timeseries.Series{-3, -3, -1, -1, 1, 1, 3, 3}
	w, err := enc.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if w.Symbols != "abcd" {
		t.Fatalf("word = %q, want abcd", w.Symbols)
	}
}

func TestEncodeConstantSeries(t *testing.T) {
	enc, _ := NewEncoder(4, 5)
	w, err := enc.Encode(timeseries.Series{2, 2, 2, 2, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// All zeros after z-norm → middle symbol 'c' (alphabet 5).
	if w.Symbols != "cccc" {
		t.Fatalf("constant word = %q, want cccc", w.Symbols)
	}
}

func TestEncodeShortSeriesUpsamples(t *testing.T) {
	enc, _ := NewEncoder(8, 4)
	w, err := enc.Encode(timeseries.Series{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 8 {
		t.Fatalf("word length %d, want 8", w.Len())
	}
}

func TestEncodeEmpty(t *testing.T) {
	enc, _ := NewEncoder(4, 4)
	if _, err := enc.Encode(nil); err == nil {
		t.Fatal("empty series should fail")
	}
}

func TestSymbolDistribution(t *testing.T) {
	// Gaussian data should hit all symbols roughly equally (equiprobable
	// breakpoints).
	enc, _ := NewEncoder(1, 4)
	rng := rand.New(rand.NewSource(5))
	counts := map[byte]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		idx := enc.symbolFor(rng.NormFloat64())
		counts[byte('a'+idx)]++
	}
	for sym := byte('a'); sym <= 'd'; sym++ {
		frac := float64(counts[sym]) / trials
		if frac < 0.22 || frac > 0.28 {
			t.Errorf("symbol %c frequency %.3f outside [0.22,0.28]", sym, frac)
		}
	}
}

func TestWordRotateReverse(t *testing.T) {
	w := Word{Symbols: "abcd", Alphabet: 4}
	if got := w.Rotate(1).Symbols; got != "bcda" {
		t.Errorf("Rotate(1) = %q", got)
	}
	if got := w.Rotate(-1).Symbols; got != "dabc" {
		t.Errorf("Rotate(-1) = %q", got)
	}
	if got := w.Rotate(4).Symbols; got != "abcd" {
		t.Errorf("Rotate(4) = %q", got)
	}
	if got := w.Reverse().Symbols; got != "dcba" {
		t.Errorf("Reverse = %q", got)
	}
}

func TestWordHamming(t *testing.T) {
	a := Word{Symbols: "abcd", Alphabet: 4}
	b := Word{Symbols: "abdd", Alphabet: 4}
	h, err := a.Hamming(b)
	if err != nil || h != 1 {
		t.Fatalf("Hamming = %d, %v", h, err)
	}
	if _, err := a.Hamming(Word{Symbols: "ab", Alphabet: 4}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

// TestMinDistLowerBoundsEuclidean verifies the fundamental SAX guarantee:
// MINDIST(Â, B̂) ≤ D(A, B) for z-normalised series A, B. Without this the
// database pruning would be unsound.
func TestMinDistLowerBoundsEuclidean(t *testing.T) {
	const n = 64
	encs := []*Encoder{}
	for _, cfg := range [][2]int{{8, 4}, {16, 6}, {4, 10}, {32, 3}} {
		e, err := NewEncoder(cfg[0], cfg[1])
		if err != nil {
			t.Fatal(err)
		}
		encs = append(encs, e)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeries(rng, n).ZNormalize()
		b := randSeries(rng, n).ZNormalize()
		de, err := timeseries.EuclideanDist(a, b)
		if err != nil {
			return false
		}
		for _, enc := range encs {
			wa, err := enc.Encode(a)
			if err != nil {
				return false
			}
			wb, err := enc.Encode(b)
			if err != nil {
				return false
			}
			md, err := enc.MinDist(wa, wb, n)
			if err != nil {
				return false
			}
			if md > de+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinDistIdentityAndSymmetry(t *testing.T) {
	enc, _ := NewEncoder(8, 6)
	rng := rand.New(rand.NewSource(17))
	a := randSeries(rng, 64)
	b := randSeries(rng, 64)
	wa, _ := enc.Encode(a)
	wb, _ := enc.Encode(b)
	d0, err := enc.MinDist(wa, wa, 64)
	if err != nil || d0 != 0 {
		t.Fatalf("MinDist(w,w) = %v, %v", d0, err)
	}
	d1, _ := enc.MinDist(wa, wb, 64)
	d2, _ := enc.MinDist(wb, wa, 64)
	if !almostEq(d1, d2, 1e-12) {
		t.Fatalf("MINDIST not symmetric: %v vs %v", d1, d2)
	}
}

func TestMinDistAdjacentSymbolsFree(t *testing.T) {
	enc, _ := NewEncoder(4, 4)
	w1 := Word{Symbols: "aabb", Alphabet: 4}
	w2 := Word{Symbols: "bbaa", Alphabet: 4} // all positions adjacent
	d, err := enc.MinDist(w1, w2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("adjacent-symbol distance = %v, want 0", d)
	}
	w3 := Word{Symbols: "dddd", Alphabet: 4}
	d, _ = enc.MinDist(w1, w3, 16)
	if d <= 0 {
		t.Fatalf("distant symbols should cost > 0, got %v", d)
	}
}

func TestMinDistWordMismatch(t *testing.T) {
	enc, _ := NewEncoder(4, 4)
	w := Word{Symbols: "abcd", Alphabet: 4}
	v := Word{Symbols: "abc", Alphabet: 4}
	if _, err := enc.MinDist(w, v, 16); err == nil {
		t.Fatal("length mismatch should fail")
	}
	v2 := Word{Symbols: "abcd", Alphabet: 5}
	if _, err := enc.MinDist(w, v2, 16); err == nil {
		t.Fatal("alphabet mismatch should fail")
	}
}

func TestMinDistRotationFindsAlignment(t *testing.T) {
	enc, _ := NewEncoder(8, 6)
	rng := rand.New(rand.NewSource(23))
	a := randSeries(rng, 64)
	wa, _ := enc.Encode(a)
	// Rotating the series by a whole number of PAA frames rotates the word.
	rotated := a.Rotate(8 * 3) // 3 word positions (64/8 = 8 samples per frame)
	wr, _ := enc.Encode(rotated)
	d, shift, err := enc.MinDistRotation(wa, wr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("rotated word MINDIST = %v, want 0", d)
	}
	if (shift+3)%8 != 0 && shift != 8-3 {
		t.Fatalf("shift = %d, want 5", shift)
	}
}

func TestMinDistRotationMirror(t *testing.T) {
	enc, _ := NewEncoder(8, 6)
	rng := rand.New(rand.NewSource(29))
	a := randSeries(rng, 64).ZNormalize()
	wa, _ := enc.Encode(a)
	wm, _ := enc.Encode(a.Reverse())
	d, _, mirrored, err := enc.MinDistRotationMirror(wa, wm, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror match should be ≈0 via the mirrored branch. (The reversed word
	// of the encoded series differs from encoding the reversed series only at
	// frame boundaries; with divisible lengths they coincide.)
	if d > 1e-9 {
		t.Fatalf("mirror MINDIST = %v, want 0", d)
	}
	_ = mirrored // either branch may win at 0; presence of no error suffices
}

func TestMinDistRotationEmptyWord(t *testing.T) {
	enc, _ := NewEncoder(4, 4)
	if _, _, err := enc.MinDistRotation(Word{}, Word{}, 4); err == nil {
		t.Fatal("empty word should fail")
	}
}

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(0, 4); err == nil {
		t.Error("segments 0 should fail")
	}
	if _, err := NewEncoder(4, 1); err == nil {
		t.Error("alphabet 1 should fail")
	}
}
