package sax

// degraded.go is the cascade's emergency exit: stage 0 alone. Under
// overload or a read-only store the serving layer cannot afford the full
// three-stage refinement (whose exact stage is where the time and the
// mapped-memory traffic go), but the histogram lower bound — a linear pass
// over precomputed per-entry symbol histograms, mapped memory for the
// on-disk store — is cheap enough to run on the request goroutine without
// touching the worker pool. HistNearest returns the entry whose lower bound
// against the query is smallest: not guaranteed to be the true nearest
// neighbour (a lower bound orders candidates, it does not rank exact
// distances), but the same signal the full cascade uses to decide which
// entry to refine first, and in practice the right label for queries the
// full cascade would accept comfortably. Serving answers carry degraded:true
// so clients know the quality contract was relaxed.

// HistNearest runs only stage 0 of the cascade over cp: every entry's
// histogram lower bound against qw, returning the entry with the smallest
// bound. Histograms are rotation-invariant multisets, so distinct signs can
// tie at the same bound (commonly 0) — and MINDIST cannot split the tie
// either, since adjacent-symbol cells are zero. Ties are instead broken by
// the rotation+mirror-minimal symbol-index L1 distance against the query
// (wordShapeDist) — O(segments²) integer ops per tied candidate, no series
// access, zero only for rotation-equivalent words — then by insertion seq,
// keeping the answer deterministic across backends. The
// returned Match's Dist is the histogram
// bound, NOT an exact distance: it understates the true distance, so
// thresholding it accepts a superset of what the full cascade accepts. ok is
// false on an empty corpus or a query word that does not match the encoder's
// geometry. A nil scratch borrows one from the internal pool; the scratch
// must not be shared between concurrent lookups.
func HistNearest(sc *LookupScratch, cp Corpus, enc *Encoder, qw Word) (m Match, ok bool) {
	if qw.Alphabet != enc.alphabet || len(qw.Symbols) != enc.segments {
		return Match{}, false
	}
	if sc == nil {
		sc = lookupScratchPool.Get().(*LookupScratch)
		defer lookupScratchPool.Put(sc)
	}
	sc.stats = LookupStats{}
	sc.qHist = histInto(sc.qHist, qw)
	sc.cands = sc.cands[:0]
	cp.ScanHist(sc, sc.qHist)
	sc.stats.Entries = len(sc.cands)
	if len(sc.cands) == 0 {
		return Match{}, false
	}
	minLb := sc.cands[0].lb
	for _, c := range sc.cands[1:] {
		if c.lb < minLb {
			minLb = c.lb
		}
	}
	// Tie-break pass: among the minimal-bound candidates, the smallest
	// (wordShapeDist, seq) wins.
	var (
		best     cand
		bestWd   int
		haveBest bool
	)
	for _, c := range sc.cands {
		if c.lb != minLb {
			continue
		}
		v := cp.View(sc, c.ref)
		wd := wordShapeDist(qw, v.Word)
		if !haveBest || wd < bestWd || (wd == bestWd && c.seq < best.seq) {
			best, bestWd, haveBest = c, wd, true
		}
	}
	sc.cands = sc.cands[:0]
	v := cp.View(sc, best.ref)
	return Match{Label: v.Label, Word: v.Word, Dist: best.lb}, true
}

// wordShapeDist is the tie-break metric for histogram-equal candidates: the
// minimum, over all circular rotations of v and its mirror image, of the
// symbol-index L1 distance to w. Unlike MINDIST it has no zero cells off the
// diagonal, so it is zero exactly when the words are rotation (or
// reflection) equivalent. Both words must share a length; HistNearest's
// geometry check guarantees that.
func wordShapeDist(w, v Word) int {
	m := len(w.Symbols)
	best := m * 64
	for r := 0; r < m; r++ {
		fwd, rev := 0, 0
		for i := 0; i < m; i++ {
			a := int(w.Symbols[i])
			d := a - int(v.Symbols[(i+r)%m])
			if d < 0 {
				d = -d
			}
			fwd += d
			d = a - int(v.Symbols[(m-1-i+r)%m])
			if d < 0 {
				d = -d
			}
			rev += d
		}
		if fwd < best {
			best = fwd
		}
		if rev < best {
			best = rev
		}
	}
	return best
}
