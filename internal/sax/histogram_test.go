package sax

import (
	"math/rand"
	"testing"
)

// randWord draws a uniform random word of the encoder's shape.
func randWord(rng *rand.Rand, segments, alphabet int) Word {
	b := make([]byte, segments)
	for i := range b {
		b[i] = byte('a' + rng.Intn(alphabet))
	}
	return Word{Symbols: string(b), Alphabet: alphabet}
}

// TestHistLowerBoundProperty is the proof-of-lower-bound property test for
// the stage-0 prefilter: over randomized word pairs (and explicitly rotated/
// mirrored pairs), the histogram bound never exceeds the rotation- and
// mirror-minimised MINDIST — the guarantee that makes rejecting an entry on
// the bound alone safe. Both the full rotation search and bounded windows
// are checked: a window restricts the search, so its minimum can only grow.
func TestHistLowerBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	shapes := []struct{ segments, alphabet, n int }{
		{16, 5, 128},
		{16, 6, 128},
		{8, 4, 64},
		{24, 10, 256},
		{5, 3, 5},
	}
	for _, shape := range shapes {
		enc, err := NewEncoder(shape.segments, shape.alphabet)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			w := randWord(rng, shape.segments, shape.alphabet)
			var v Word
			switch trial % 3 {
			case 0: // unrelated word
				v = randWord(rng, shape.segments, shape.alphabet)
			case 1: // rotation of w (exact distance 0 at some shift)
				v = w.Rotate(rng.Intn(shape.segments))
			default: // mirrored rotation of w
				v = w.Reverse().Rotate(rng.Intn(shape.segments))
			}
			lb, err := enc.HistLowerBound(w, v, shape.n)
			if err != nil {
				t.Fatal(err)
			}
			for _, win := range []int{-1, 0, 2, shape.segments / 3} {
				md, _, _, err := enc.MinDistRotationMirrorWindow(w, v, shape.n, win)
				if err != nil {
					t.Fatal(err)
				}
				if lb > md {
					t.Fatalf("segments=%d alphabet=%d win=%d: histogram bound %.17g exceeds MINDIST %.17g for %q vs %q",
						shape.segments, shape.alphabet, win, lb, md, w.Symbols, v.Symbols)
				}
			}
		}
	}
}

// TestHistLowerBoundInvariance: rotations and mirrors of the same word carry
// the same histogram, so the bound is identical for every alignment of the
// same entry — the invariance the cascade relies on to reuse one bound for
// both the forward and the cached mirror candidate.
func TestHistLowerBoundInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	enc, err := NewEncoder(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		q := randWord(rng, 16, 6)
		e := randWord(rng, 16, 6)
		base, err := enc.HistLowerBound(q, e, 128)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []Word{e.Rotate(3), e.Reverse(), e.Reverse().Rotate(-1), e.Rotate(9).Reverse()} {
			lb, err := enc.HistLowerBound(q, v, 128)
			if err != nil {
				t.Fatal(err)
			}
			if lb != base {
				t.Fatalf("bound not alignment-invariant: %v vs %v", lb, base)
			}
		}
	}
}

// TestHistLowerBoundMismatch rejects words of the wrong shape.
func TestHistLowerBoundMismatch(t *testing.T) {
	enc, _ := NewEncoder(8, 4)
	w := Word{Symbols: "abcdabcd", Alphabet: 4}
	if _, err := enc.HistLowerBound(w, Word{Symbols: "abc", Alphabet: 4}, 64); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := enc.HistLowerBound(w, Word{Symbols: "abcdabcd", Alphabet: 5}, 64); err == nil {
		t.Fatal("alphabet mismatch should fail")
	}
}
