package sax

import (
	"errors"
	"fmt"
	"sort"

	"hdc/internal/timeseries"
)

// motif.go implements SAX-based motif discovery — the core technique of the
// paper's reference [21] (Xi, Keogh, Wei, Mafra-Neto, "Finding Motifs in
// Database of Shapes"), of which the sign recogniser is a special case.
// The drone uses it offline to mine recurring patterns from telemetry
// feature streams (e.g. recurring approach geometries, repeated human
// gestures in long observation logs).

// Motif is a recurring pattern: the indices of the windows that share a SAX
// word, with the word itself and the mean pairwise exact distance of the
// occurrences (for ranking).
type Motif struct {
	Word        Word
	Occurrences []int   // window start indices, ascending
	MeanDist    float64 // mean pairwise z-normalised Euclidean distance
}

// MotifConfig tunes discovery.
type MotifConfig struct {
	Window   int // subsequence length (required)
	Segments int // SAX word length (default 8)
	Alphabet int // alphabet size (default 4)
	// MinOccurrences filters motifs seen fewer times (default 2).
	MinOccurrences int
	// ExcludeTrivial suppresses overlapping matches closer than Window/2
	// (trivial matches, per Keogh's definition; default true via
	// !IncludeTrivial).
	IncludeTrivial bool
}

func (c MotifConfig) withDefaults() (MotifConfig, error) {
	if c.Window < 4 {
		return c, fmt.Errorf("sax: motif window %d too small", c.Window)
	}
	if c.Segments == 0 {
		c.Segments = 8
	}
	if c.Alphabet == 0 {
		c.Alphabet = 4
	}
	if c.MinOccurrences == 0 {
		c.MinOccurrences = 2
	}
	if c.Segments > c.Window {
		return c, fmt.Errorf("sax: motif segments %d exceed window %d", c.Segments, c.Window)
	}
	return c, nil
}

// FindMotifs slides a window over the series, symbolises every subsequence
// and groups identical words. Motifs are returned sorted by occurrence
// count (desc) then mean distance (asc).
func FindMotifs(s timeseries.Series, cfg MotifConfig) ([]Motif, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(s) < cfg.Window {
		return nil, errors.New("sax: series shorter than motif window")
	}
	enc, err := NewEncoder(cfg.Segments, cfg.Alphabet)
	if err != nil {
		return nil, err
	}
	buckets := map[string][]int{}
	for i := 0; i+cfg.Window <= len(s); i++ {
		w, err := enc.Encode(s[i : i+cfg.Window])
		if err != nil {
			return nil, err
		}
		buckets[w.Symbols] = append(buckets[w.Symbols], i)
	}
	var motifs []Motif
	for word, idxs := range buckets {
		occ := idxs
		if !cfg.IncludeTrivial {
			occ = dropTrivial(idxs, cfg.Window/2)
		}
		if len(occ) < cfg.MinOccurrences {
			continue
		}
		m := Motif{
			Word:        Word{Symbols: word, Alphabet: cfg.Alphabet},
			Occurrences: occ,
			MeanDist:    meanPairDist(s, occ, cfg.Window),
		}
		motifs = append(motifs, m)
	}
	sort.Slice(motifs, func(i, j int) bool {
		if len(motifs[i].Occurrences) != len(motifs[j].Occurrences) {
			return len(motifs[i].Occurrences) > len(motifs[j].Occurrences)
		}
		if motifs[i].MeanDist != motifs[j].MeanDist {
			return motifs[i].MeanDist < motifs[j].MeanDist
		}
		return motifs[i].Word.Symbols < motifs[j].Word.Symbols
	})
	return motifs, nil
}

// dropTrivial keeps only occurrences at least minGap apart (greedy from the
// left) — successive overlapping windows of a slowly varying series share a
// word without being a meaningful repetition.
func dropTrivial(idxs []int, minGap int) []int {
	if len(idxs) == 0 {
		return nil
	}
	out := []int{idxs[0]}
	last := idxs[0]
	for _, i := range idxs[1:] {
		if i-last >= minGap {
			out = append(out, i)
			last = i
		}
	}
	return out
}

// meanPairDist computes the mean pairwise Euclidean distance between the
// z-normalised occurrences.
func meanPairDist(s timeseries.Series, occ []int, window int) float64 {
	if len(occ) < 2 {
		return 0
	}
	var sum float64
	var n int
	for i := 0; i < len(occ); i++ {
		zi := s[occ[i] : occ[i]+window].ZNormalize()
		for j := i + 1; j < len(occ); j++ {
			zj := s[occ[j] : occ[j]+window].ZNormalize()
			d, err := timeseries.EuclideanDist(zi, zj)
			if err != nil {
				continue
			}
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
