package sax

import (
	"math"
	"math/rand"
	"testing"

	"hdc/internal/timeseries"
)

// degraded_test.go pins the stage-0-only answer: the histogram lower bound
// of HistNearest must never exceed the exact distance of the full cascade's
// winner, an exact stored series must come back under its own label, and
// the geometry checks must refuse a mismatched query word.

func degradedSeries(rng *rand.Rand, n int) timeseries.Series {
	a1, a2 := rng.NormFloat64(), rng.NormFloat64()
	p1, p2 := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
	s := make(timeseries.Series, n)
	for i := range s {
		t := 2 * math.Pi * float64(i) / float64(n)
		s[i] = 1 + 0.7*a1*math.Cos(t+p1) + 0.4*a2*math.Cos(3*t+p2) + 0.04*rng.NormFloat64()
	}
	return s
}

func TestHistNearestLowerBoundsExact(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(23))
	enc, err := NewEncoder(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(enc, n)
	if err != nil {
		t.Fatal(err)
	}
	var stored []timeseries.Series
	for i := 0; i < 60; i++ {
		s := degradedSeries(rng, n)
		stored = append(stored, s)
		if err := db.Add("sign-"+string(rune('a'+i%9)), s); err != nil {
			t.Fatal(err)
		}
	}
	sc := NewLookupScratch()
	for qi := 0; qi < 20; qi++ {
		q := degradedSeries(rng, n)
		if qi%3 == 0 {
			q = stored[rng.Intn(len(stored))].Clone()
		}
		z := q.ZNormalize()
		w, err := enc.Encode(z)
		if err != nil {
			t.Fatal(err)
		}
		deg, ok := db.NearestHist(sc, w)
		if !ok {
			t.Fatal("NearestHist found nothing on a populated database")
		}
		exact, err := db.LookupKZWith(sc, z, w, 1, nil)
		if err != nil || len(exact) != 1 {
			t.Fatalf("exact lookup: %v %v", exact, err)
		}
		if deg.Dist > exact[0].Dist+1e-9 {
			t.Fatalf("query %d: stage-0 bound %.4f exceeds exact dist %.4f", qi, deg.Dist, exact[0].Dist)
		}
	}

	// An exact stored series must come back under its own label with bound 0
	// (its histogram equals the query's).
	z := stored[7].ZNormalize()
	w, err := enc.Encode(z)
	if err != nil {
		t.Fatal(err)
	}
	deg, ok := db.NearestHist(sc, w)
	if !ok || deg.Dist != 0 {
		t.Fatalf("exact-entry degraded answer: %+v ok=%v", deg, ok)
	}
}

func TestHistNearestRejectsGeometry(t *testing.T) {
	enc, err := NewEncoder(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(enc, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.NearestHist(nil, Word{}); ok {
		t.Fatal("mismatched word accepted")
	}
	// Empty corpus: well-formed word, no entries.
	w, err := enc.Encode(degradedSeries(rand.New(rand.NewSource(1)), 64).ZNormalize())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.NearestHist(nil, w); ok {
		t.Fatal("empty database returned a match")
	}
}
