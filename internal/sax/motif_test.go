package sax

import (
	"math"
	"math/rand"
	"testing"

	"hdc/internal/timeseries"
)

// plantedSeries builds noise with a distinctive pattern planted at the
// given offsets.
func plantedSeries(n int, pattern timeseries.Series, offsets []int, noise float64, rng *rand.Rand) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64() * noise
	}
	for _, off := range offsets {
		for i, v := range pattern {
			if off+i < n {
				s[off+i] = v + rng.NormFloat64()*noise*0.2
			}
		}
	}
	return s
}

func sawtooth(n int) timeseries.Series {
	p := make(timeseries.Series, n)
	for i := range p {
		p[i] = math.Mod(float64(i), 8) // strong, distinctive ramp pattern
	}
	return p
}

func TestFindMotifsRecoversPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pattern := sawtooth(32)
	offsets := []int{100, 300, 520}
	s := plantedSeries(700, pattern, offsets, 0.3, rng)

	motifs, err := FindMotifs(s, MotifConfig{Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(motifs) == 0 {
		t.Fatal("no motifs found")
	}
	// The top motif must hit (near) every planted offset.
	top := motifs[0]
	if len(top.Occurrences) < len(offsets) {
		t.Fatalf("top motif has %d occurrences, want ≥%d (%+v)", len(top.Occurrences), len(offsets), top)
	}
	for _, want := range offsets {
		found := false
		for _, got := range top.Occurrences {
			if intAbs(got-want) <= 4 {
				found = true
			}
		}
		if !found {
			t.Fatalf("planted offset %d not recovered (occurrences %v)", want, top.Occurrences)
		}
	}
	// Occurrences ascending and non-trivially separated.
	for i := 1; i < len(top.Occurrences); i++ {
		if top.Occurrences[i] <= top.Occurrences[i-1] {
			t.Fatal("occurrences not ascending")
		}
		if top.Occurrences[i]-top.Occurrences[i-1] < 16 {
			t.Fatal("trivial matches not suppressed")
		}
	}
}

func TestFindMotifsValidation(t *testing.T) {
	s := make(timeseries.Series, 64)
	if _, err := FindMotifs(s, MotifConfig{Window: 2}); err == nil {
		t.Error("tiny window should fail")
	}
	if _, err := FindMotifs(s[:8], MotifConfig{Window: 32}); err == nil {
		t.Error("short series should fail")
	}
	if _, err := FindMotifs(s, MotifConfig{Window: 16, Segments: 32}); err == nil {
		t.Error("segments > window should fail")
	}
}

func TestFindMotifsPureNoiseHasWeakMotifs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := make(timeseries.Series, 600)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	motifs, err := FindMotifs(s, MotifConfig{Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Random collisions happen, but no word should dominate the way a
	// planted pattern does.
	for _, m := range motifs {
		if len(m.Occurrences) > 6 {
			t.Fatalf("noise produced a %d-occurrence motif: %+v", len(m.Occurrences), m)
		}
	}
}

func TestFindMotifsTrivialToggle(t *testing.T) {
	// A slow sine: with trivial matches included, far more occurrences
	// survive.
	s := make(timeseries.Series, 300)
	for i := range s {
		s[i] = math.Sin(float64(i) / 20)
	}
	strict, err := FindMotifs(s, MotifConfig{Window: 40})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := FindMotifs(s, MotifConfig{Window: 40, IncludeTrivial: true})
	if err != nil {
		t.Fatal(err)
	}
	totalStrict, totalLoose := 0, 0
	for _, m := range strict {
		totalStrict += len(m.Occurrences)
	}
	for _, m := range loose {
		totalLoose += len(m.Occurrences)
	}
	if totalLoose <= totalStrict {
		t.Fatalf("trivial suppression had no effect: %d vs %d", totalLoose, totalStrict)
	}
}

func intAbs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
