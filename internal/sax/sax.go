// Package sax implements Symbolic Aggregate approXimation (Lin, Keogh et
// al.) as used by the paper for real-time marshalling-sign recognition:
//
//	shape contour → time series → z-normalise → PAA → symbol string
//
// plus the MINDIST lower-bounding distance, a word database with
// rotation-invariant and mirror-invariant lookup, and the parameter-tuning
// sweep over PAA segment count and alphabet size discussed in the paper's
// reference [22].
package sax

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"hdc/internal/timeseries"
)

// Alphabet size limits. Sizes outside [MinAlphabet, MaxAlphabet] are
// rejected: 2 is the smallest meaningful alphabet, and beyond 26 the symbols
// leave 'a'..'z'.
const (
	MinAlphabet = 2
	MaxAlphabet = 26
)

// Errors returned by the sax package.
var (
	ErrAlphabetSize = errors.New("sax: alphabet size out of range")
	ErrWordMismatch = errors.New("sax: words have different lengths or alphabets")
	ErrEmptyWord    = errors.New("sax: empty word")
)

// Breakpoints returns the a-1 sorted breakpoints that cut the standard
// normal distribution into a equiprobable regions. Symbol i covers
// (bp[i-1], bp[i]].
func Breakpoints(a int) ([]float64, error) {
	if a < MinAlphabet || a > MaxAlphabet {
		return nil, fmt.Errorf("%w: %d", ErrAlphabetSize, a)
	}
	bps := make([]float64, a-1)
	for i := 1; i < a; i++ {
		p := float64(i) / float64(a)
		// Φ⁻¹(p) via the inverse error function.
		bps[i-1] = math.Sqrt2 * math.Erfinv(2*p-1)
	}
	return bps, nil
}

// Word is a SAX string: the symbolised form of a (z-normalised, PAA-reduced)
// series. Symbols are 'a', 'b', ... with 'a' the lowest-value region.
type Word struct {
	Symbols  string
	Alphabet int
}

// String implements fmt.Stringer.
func (w Word) String() string { return w.Symbols }

// Len returns the number of symbols in the word.
func (w Word) Len() int { return len(w.Symbols) }

// Equal reports whether two words are identical in symbols and alphabet.
func (w Word) Equal(v Word) bool {
	return w.Alphabet == v.Alphabet && w.Symbols == v.Symbols
}

// Rotate returns the word circularly shifted left by k symbols.
func (w Word) Rotate(k int) Word {
	n := len(w.Symbols)
	if n == 0 {
		return w
	}
	k = ((k % n) + n) % n
	return Word{Symbols: w.Symbols[k:] + w.Symbols[:k], Alphabet: w.Alphabet}
}

// Reverse returns the mirrored word.
func (w Word) Reverse() Word {
	b := []byte(w.Symbols)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return Word{Symbols: string(b), Alphabet: w.Alphabet}
}

// Hamming returns the number of differing symbol positions between two
// equal-shape words.
func (w Word) Hamming(v Word) (int, error) {
	if w.Alphabet != v.Alphabet || len(w.Symbols) != len(v.Symbols) {
		return 0, ErrWordMismatch
	}
	var h int
	for i := 0; i < len(w.Symbols); i++ {
		if w.Symbols[i] != v.Symbols[i] {
			h++
		}
	}
	return h, nil
}

// Encoder converts raw series into SAX words using fixed parameters. The
// zero value is not usable; construct with NewEncoder.
type Encoder struct {
	segments int
	alphabet int
	breaks   []float64
	cells    [][]float64 // MINDIST cell lookup table
}

// NewEncoder returns an encoder producing words of the given segment count
// (word length) and alphabet size.
func NewEncoder(segments, alphabet int) (*Encoder, error) {
	if segments < 1 {
		return nil, fmt.Errorf("sax: segments %d < 1", segments)
	}
	breaks, err := Breakpoints(alphabet)
	if err != nil {
		return nil, err
	}
	e := &Encoder{
		segments: segments,
		alphabet: alphabet,
		breaks:   breaks,
	}
	e.cells = buildCellTable(breaks, alphabet)
	return e, nil
}

// Segments returns the encoder's word length.
func (e *Encoder) Segments() int { return e.segments }

// AlphabetSize returns the encoder's alphabet size.
func (e *Encoder) AlphabetSize() int { return e.alphabet }

// buildCellTable precomputes dist(r,c) for MINDIST: zero for adjacent or
// equal symbols, otherwise the gap between the closer breakpoints.
func buildCellTable(breaks []float64, a int) [][]float64 {
	t := make([][]float64, a)
	for r := range t {
		t[r] = make([]float64, a)
		for c := range t[r] {
			if abs(r-c) <= 1 {
				continue
			}
			hi, lo := r, c
			if lo > hi {
				hi, lo = lo, hi
			}
			t[r][c] = breaks[hi-1] - breaks[lo]
		}
	}
	return t
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// symbolFor returns the symbol index for a PAA value.
func (e *Encoder) symbolFor(v float64) int {
	// Binary search over breakpoints: index of first breakpoint > v.
	lo, hi := 0, len(e.breaks)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.breaks[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Encode z-normalises s, reduces it to the encoder's segment count with PAA
// and symbolises the result.
func (e *Encoder) Encode(s timeseries.Series) (Word, error) {
	if len(s) == 0 {
		return Word{}, timeseries.ErrEmpty
	}
	if len(s) < e.segments {
		// Upsample first so PAA remains defined; short series are a
		// degenerate capture, not a programming error.
		rs, err := s.ResampleLinear(e.segments)
		if err != nil {
			return Word{}, err
		}
		s = rs
	}
	z := s.ZNormalize()
	paa, err := z.PAA(e.segments)
	if err != nil {
		return Word{}, err
	}
	return e.EncodePAA(paa), nil
}

// EncodeZ symbolises a series that is already z-normalised and at least
// segment-count long, skipping the renormalisation Encode performs. It is the
// hot-path variant used by the recogniser, whose query signatures are
// normalised once and reused for both encoding and database lookup.
func (e *Encoder) EncodeZ(z timeseries.Series) (Word, error) {
	if len(z) == 0 {
		return Word{}, timeseries.ErrEmpty
	}
	if len(z) < e.segments {
		rs, err := z.ResampleLinear(e.segments)
		if err != nil {
			return Word{}, err
		}
		// Interpolation shrinks the variance, so renormalise before cutting
		// against the N(0,1) breakpoints — keeping EncodeZ ≡ Encode on the
		// degenerate short-series branch too.
		z = rs.ZNormalize()
	}
	paa, err := z.PAA(e.segments)
	if err != nil {
		return Word{}, err
	}
	return e.EncodePAA(paa), nil
}

// EncodePAA symbolises an already z-normalised, PAA-reduced series.
func (e *Encoder) EncodePAA(paa timeseries.Series) Word {
	var sb strings.Builder
	sb.Grow(len(paa))
	for _, v := range paa {
		sb.WriteByte(byte('a' + e.symbolFor(v)))
	}
	return Word{Symbols: sb.String(), Alphabet: e.alphabet}
}

// MinDist returns the MINDIST lower bound between two words produced by this
// encoder, for original series length n. MINDIST is guaranteed to
// lower-bound the Euclidean distance between the z-normalised originals,
// which is what makes SAX pruning safe.
func (e *Encoder) MinDist(w, v Word, n int) (float64, error) {
	if w.Alphabet != e.alphabet || v.Alphabet != e.alphabet ||
		len(w.Symbols) != e.segments || len(v.Symbols) != e.segments {
		return 0, ErrWordMismatch
	}
	if n < e.segments {
		n = e.segments
	}
	var ss float64
	for i := 0; i < e.segments; i++ {
		d := e.cells[w.Symbols[i]-'a'][v.Symbols[i]-'a']
		ss += d * d
	}
	return math.Sqrt(float64(n)/float64(e.segments)) * math.Sqrt(ss), nil
}

// MinDistRotation returns the minimum MINDIST over all circular rotations of
// v, along with the minimising rotation. Word-level rotation is the cheap
// first-stage filter for rotation-invariant shape lookup; exact alignment is
// then confirmed at series level (timeseries.MinRotationDist).
func (e *Encoder) MinDistRotation(w, v Word, n int) (best float64, shift int, err error) {
	return e.MinDistRotationWindow(w, v, n, -1)
}

// MinDistRotationWindow is MinDistRotation with the rotation search limited
// to ±maxShift word positions (maxShift < 0 searches all rotations). The
// rotations are evaluated by index offset, so the search allocates nothing.
func (e *Encoder) MinDistRotationWindow(w, v Word, n, maxShift int) (best float64, shift int, err error) {
	return e.MinDistRotationWindowCutoff(w, v, n, maxShift, math.Inf(1))
}

// MinDistRotationWindowCutoff is MinDistRotationWindow with a best-so-far
// cutoff threaded into the rotation loop: each rotation's running cell sum is
// abandoned once it can no longer land below min(local best, cutoff). The
// database cascade passes its current global best so pruning MINDIST costs
// only a few cell additions on hopeless entries.
//
// When no rotation beats the cutoff the returned distance is not meaningful
// (it may be +Inf); callers must treat any result ≥ cutoff as "no
// improvement". A cutoff of +Inf recovers MinDistRotationWindow exactly.
func (e *Encoder) MinDistRotationWindowCutoff(w, v Word, n, maxShift int, cutoff float64) (best float64, shift int, err error) {
	m := len(v.Symbols)
	if m == 0 {
		return 0, 0, ErrEmptyWord
	}
	if w.Alphabet != e.alphabet || v.Alphabet != e.alphabet ||
		len(w.Symbols) != e.segments || len(v.Symbols) != e.segments {
		return 0, 0, ErrWordMismatch
	}
	if maxShift < 0 || maxShift >= m/2 {
		maxShift = m / 2
	}
	nn := n
	if nn < e.segments {
		nn = e.segments
	}
	scale := math.Sqrt(float64(nn) / float64(e.segments))
	bestSS := math.Inf(1)
	cutSS := math.Inf(1)
	if !math.IsInf(cutoff, 1) {
		c := cutoff / scale
		cutSS = c * c
	}
	for k := 0; k <= maxShift; k++ {
		for s := 0; s < 2; s++ {
			kk := k
			if s == 1 {
				if k == 0 {
					continue
				}
				kk = m - k
			}
			lim := bestSS
			if cutSS < lim {
				lim = cutSS
			}
			var ss float64
			abandoned := false
			for i := 0; i < m; i++ {
				j := i + kk
				if j >= m {
					j -= m
				}
				d := e.cells[w.Symbols[i]-'a'][v.Symbols[j]-'a']
				ss += d * d
				if ss > lim { // early abandon against local best and cutoff
					abandoned = true
					break
				}
			}
			if !abandoned && ss < bestSS {
				bestSS = ss
				shift = kk
			}
		}
	}
	return scale * math.Sqrt(bestSS), shift, nil
}

// MinDistRotationMirror extends MinDistRotation with the mirrored candidate.
func (e *Encoder) MinDistRotationMirror(w, v Word, n int) (best float64, shift int, mirrored bool, err error) {
	return e.MinDistRotationMirrorWindow(w, v, n, -1)
}

// MinDistRotationMirrorWindow is MinDistRotationMirror with a bounded shift
// window. As in the series-level matcher, the mirrored word is rotated by
// one so a pure reflection about the start symbol lies at shift 0.
func (e *Encoder) MinDistRotationMirrorWindow(w, v Word, n, maxShift int) (best float64, shift int, mirrored bool, err error) {
	d1, s1, err := e.MinDistRotationWindow(w, v, n, maxShift)
	if err != nil {
		return 0, 0, false, err
	}
	d2, s2, err := e.MinDistRotationWindow(w, v.Reverse().Rotate(-1), n, maxShift)
	if err != nil {
		return 0, 0, false, err
	}
	if d2 < d1 {
		return d2, s2, true, nil
	}
	return d1, s1, false, nil
}
