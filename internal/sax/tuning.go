package sax

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hdc/internal/timeseries"
)

// LabeledSeries is a training/evaluation sample for parameter tuning.
type LabeledSeries struct {
	Label  string
	Series timeseries.Series
}

// TuneResult is the outcome of evaluating one (segments, alphabet) cell of
// the tuning grid.
type TuneResult struct {
	Segments int
	Alphabet int
	Accuracy float64 // fraction of eval samples whose nearest reference shares the label
	Margin   float64 // mean (2nd-best − best) exact distance over correct matches
}

// TuneGrid evaluates SAX parameters over a grid, classifying each eval
// sample against the references by rotation/mirror-invariant nearest
// neighbour. It reproduces the parameter-adjustment study the paper cites
// ([22], "tuning of the piecewise aggregation and alphabet size"). Results
// are sorted by accuracy (desc) then margin (desc).
func TuneGrid(refs, eval []LabeledSeries, segments, alphabets []int, seriesLen int) ([]TuneResult, error) {
	if len(refs) == 0 || len(eval) == 0 {
		return nil, errors.New("sax: tuning needs non-empty reference and eval sets")
	}
	var out []TuneResult
	for _, w := range segments {
		for _, a := range alphabets {
			enc, err := NewEncoder(w, a)
			if err != nil {
				return nil, fmt.Errorf("sax: grid cell (%d,%d): %w", w, a, err)
			}
			db, err := NewDatabase(enc, seriesLen)
			if err != nil {
				return nil, err
			}
			for _, r := range refs {
				if err := db.Add(r.Label, r.Series); err != nil {
					return nil, err
				}
			}
			res, err := evaluate(db, eval)
			if err != nil {
				return nil, err
			}
			res.Segments = w
			res.Alphabet = a
			out = append(out, res)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accuracy != out[j].Accuracy {
			return out[i].Accuracy > out[j].Accuracy
		}
		return out[i].Margin > out[j].Margin
	})
	return out, nil
}

func evaluate(db *Database, eval []LabeledSeries) (TuneResult, error) {
	var correct int
	var marginSum float64
	var marginN int
	for _, s := range eval {
		m, err := db.Lookup(s.Series, math.Inf(1))
		if err != nil {
			if errors.Is(err, ErrNoMatch) {
				continue
			}
			return TuneResult{}, err
		}
		if m.Label == s.Label {
			correct++
			if mg, ok := secondBestGap(db, s, m); ok {
				marginSum += mg
				marginN++
			}
		}
	}
	r := TuneResult{Accuracy: float64(correct) / float64(len(eval))}
	if marginN > 0 {
		r.Margin = marginSum / float64(marginN)
	}
	return r, nil
}

// secondBestGap computes the gap between the best match distance and the
// best distance to any entry with a different label.
func secondBestGap(db *Database, s LabeledSeries, best Match) (float64, bool) {
	rs, err := s.Series.ResampleLinear(db.SeriesLen())
	if err != nil {
		return 0, false
	}
	z := rs.ZNormalize()
	other := math.Inf(1)
	for _, e := range db.Entries() {
		if e.Label == best.Label {
			continue
		}
		d, _, _, derr := timeseries.MinRotationMirrorDist(z, e.Series)
		if derr != nil {
			continue
		}
		if d < other {
			other = d
		}
	}
	if math.IsInf(other, 1) {
		return 0, false
	}
	return other - best.Dist, true
}
