//go:build !(linux || darwin)

package store

import (
	"fmt"
	"io"
	"os"
)

// mapped is a read-only view of a segment file's bytes. This fallback build
// reads the file into an (8-byte-aligned) heap buffer on hosts without the
// unix mmap path; the accessors are identical, only the open cost and
// residency behaviour differ.
type mapped struct {
	data []byte
	mm   bool
}

// mapFile reads size bytes of f into memory.
func mapFile(f *os.File, size int) (mapped, error) {
	if size == 0 {
		return mapped{}, nil
	}
	// A []uint64 backing guarantees the 8-byte alignment the series-block
	// view requires; Go's allocator aligns large byte slices anyway, but the
	// format check in openSegment must never depend on allocator luck.
	words := make([]uint64, (size+7)/8)
	buf := unsafeBytes(words)[:size]
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(size)), buf); err != nil {
		return mapped{}, fmt.Errorf("read %s: %w", f.Name(), err)
	}
	return mapped{data: buf}, nil
}

// close releases the buffer (a no-op beyond dropping the reference).
func (m mapped) close() error { return nil }
