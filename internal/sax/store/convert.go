package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hdc/internal/sax"
	"hdc/internal/timeseries"
)

// convert.go builds store directories in bulk: the Builder streams prepared
// entries into sealed segments chunk by chunk (bounded memory however large
// the dictionary), and ConvertV1 drives it from a version-1 JSON file via
// the sax package's streaming decoder — the `signdb -convert` import path.

// DefaultMaxSegmentEntries bounds a builder segment: at the canonical
// 128-sample series length one segment is ~135 MB, so a million-entry build
// peaks around one segment of accumulation instead of the whole dictionary.
const DefaultMaxSegmentEntries = 1 << 17

// BuilderOptions tune a bulk build.
type BuilderOptions struct {
	// MaxSegmentEntries caps entries per sealed segment (0 uses
	// DefaultMaxSegmentEntries).
	MaxSegmentEntries int
	// ShiftFrac is the rotation-window fraction persisted into the manifest
	// (0 = unbounded search; see Database.SetShiftWindowFrac).
	ShiftFrac float64
}

// Builder accumulates prepared entries and writes a fresh store directory:
// sealed segments are flushed every MaxSegmentEntries, and Commit writes the
// manifest that makes them live. A Builder is single-goroutine; the
// directory is not an openable store until Commit returns.
type Builder struct {
	dir  string
	enc  *sax.Encoder
	p    segParams
	opts BuilderOptions

	acc       accum
	nextSeq   uint64
	segID     int
	segments  []manifestSegment
	committed bool
}

// accum is the builder's in-memory pending segment.
type accum struct {
	labels []string
	words  []string
	hists  [][]uint16
	series []timeseries.Series
}

func (a *accum) count() int { return len(a.labels) }
func (a *accum) entry(i int) (string, string, []uint16, []float64) {
	return a.labels[i], a.words[i], a.hists[i], a.series[i]
}
func (a *accum) reset() { *a = accum{} }

// NewBuilder prepares a bulk build into dir (created if absent; must not
// already contain a store) for signatures of length seriesLen symbolised by
// enc.
func NewBuilder(dir string, enc *sax.Encoder, seriesLen int, opts BuilderOptions) (*Builder, error) {
	if enc == nil {
		return nil, errors.New("store: nil encoder")
	}
	if seriesLen < enc.Segments() {
		return nil, fmt.Errorf("store: series length %d below word length %d", seriesLen, enc.Segments())
	}
	if opts.MaxSegmentEntries <= 0 {
		opts.MaxSegmentEntries = DefaultMaxSegmentEntries
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("store: %s already contains a store", dir)
	}
	return &Builder{
		dir:  dir,
		enc:  enc,
		p:    segParams{wordLen: enc.Segments(), alphabet: enc.AlphabetSize(), seriesLen: seriesLen},
		opts: opts,
		acc:  accum{},

		nextSeq: 1,
		segID:   1,
	}, nil
}

// Add appends a prepared entry: z must already be canonical-length and
// z-normalised, with w its encoding (the ConvertV1 path gets all three from
// the streaming decoder). Use AddSeries for raw input.
func (b *Builder) Add(label string, w sax.Word, z timeseries.Series) error {
	if b.committed {
		return errors.New("store: builder already committed")
	}
	if label == "" {
		return errors.New("store: empty label")
	}
	if len(w.Symbols) != b.p.wordLen || w.Alphabet != b.p.alphabet || len(z) != b.p.seriesLen {
		return fmt.Errorf("store: entry %q does not match the builder's parameters", label)
	}
	b.acc.labels = append(b.acc.labels, label)
	b.acc.words = append(b.acc.words, w.Symbols)
	b.acc.hists = append(b.acc.hists, sax.HistogramOf(w))
	b.acc.series = append(b.acc.series, z)
	if b.acc.count() >= b.opts.MaxSegmentEntries {
		return b.flush()
	}
	return nil
}

// AddSeries resamples, z-normalises and encodes a raw series, then Adds it.
func (b *Builder) AddSeries(label string, s timeseries.Series) error {
	rs, err := s.ResampleLinear(b.p.seriesLen)
	if err != nil {
		return fmt.Errorf("store: add %q: %w", label, err)
	}
	z := rs.ZNormalize()
	w, err := b.enc.Encode(z)
	if err != nil {
		return fmt.Errorf("store: add %q: %w", label, err)
	}
	return b.Add(label, w, z)
}

// flush seals the accumulated entries into a segment file.
func (b *Builder) flush() error {
	n := b.acc.count()
	if n == 0 {
		return nil
	}
	name := fmt.Sprintf("seg-%06d.seg", b.segID)
	tmp := filepath.Join(b.dir, name+".tmp")
	crc, err := writeSegment(tmp, b.p, b.nextSeq, &b.acc)
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(b.dir, name)); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	b.segments = append(b.segments, manifestSegment{File: name, Entries: n, BaseSeq: b.nextSeq, CRC: crc})
	b.nextSeq += uint64(n)
	b.segID++
	b.acc.reset()
	return nil
}

// Commit flushes the pending segment and writes the manifest, turning dir
// into an openable store. The builder cannot be used afterwards.
func (b *Builder) Commit() error {
	if b.committed {
		return errors.New("store: builder already committed")
	}
	if err := b.flush(); err != nil {
		return err
	}
	b.committed = true
	if err := syncDir(b.dir); err != nil {
		return err
	}
	mf := &manifest{
		Version:   storeVersion,
		WordLen:   b.p.wordLen,
		Alphabet:  b.p.alphabet,
		SeriesLen: b.p.seriesLen,
		ShiftFrac: b.opts.ShiftFrac,
		NextSeq:   b.nextSeq,
		NextSegID: b.segID,
		Segments:  b.segments,
	}
	return writeManifest(b.dir, mf, os.Rename)
}

// Entries returns how many entries the builder has accepted.
func (b *Builder) Entries() int { return int(b.nextSeq-1) + b.acc.count() }

// ConvertV1 converts a version-1 JSON dictionary (the sax.Save format) read
// from r into a fresh store at dir, streaming entry by entry — neither the
// JSON nor the store side ever holds more than one pending segment in
// memory. Returns the number of entries converted.
func ConvertV1(r io.Reader, dir string, opts BuilderOptions) (int, error) {
	var b *Builder
	err := sax.DecodeV1(r,
		func(h sax.V1Header) error {
			enc, err := sax.NewEncoder(h.Segments, h.Alphabet)
			if err != nil {
				return err
			}
			if opts.ShiftFrac == 0 {
				opts.ShiftFrac = h.ShiftFrac
			}
			b, err = NewBuilder(dir, enc, h.SeriesLen, opts)
			return err
		},
		func(label string, w sax.Word, z timeseries.Series) error {
			return b.Add(label, w, z)
		})
	if err != nil {
		return 0, err
	}
	if err := b.Commit(); err != nil {
		return 0, err
	}
	return b.Entries(), nil
}
