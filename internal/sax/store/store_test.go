package store

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hdc/internal/sax"
	"hdc/internal/timeseries"
)

// store_test.go covers the functional surface: build/open/add/lookup,
// compaction, conversion, snapshots — and above all the equivalence pin: a
// store-backed lookup must return byte-identical results to the in-memory
// Database's cascade for the same insertion sequence, across every storage
// state (pure tail, sealed, sealed+tail, merged, reopened).

// randSmoothSeries draws a random band-limited series (same shape family as
// the sax package's equivalence tests).
func randSmoothSeries(rng *rand.Rand, n int) timeseries.Series {
	a1, a2, a3 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
	p1, p2, p3 := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
	s := make(timeseries.Series, n)
	for i := range s {
		t := 2 * math.Pi * float64(i) / float64(n)
		s[i] = 1 + 0.6*a1*math.Cos(t+p1) + 0.4*a2*math.Cos(2*t+p2) + 0.3*a3*math.Cos(3*t+p3) +
			0.05*rng.NormFloat64()
	}
	return s
}

// newTestEncoder returns the encoder the tests share.
func newTestEncoder(t testing.TB) *sax.Encoder {
	t.Helper()
	enc, err := sax.NewEncoder(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// buildPair fills a fresh store and an identical in-memory database with the
// same entries in the same order.
func buildPair(t testing.TB, rng *rand.Rand, dir string, nEntries, n int, opts Options) (*Store, *sax.Database) {
	t.Helper()
	enc := newTestEncoder(t)
	st, err := Create(dir, enc, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	db, err := sax.NewDatabase(newTestEncoder(t), n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nEntries; i++ {
		label := fmt.Sprintf("sign-%02d", i%7)
		s := randSmoothSeries(rng, n)
		if err := st.Add(label, s); err != nil {
			t.Fatal(err)
		}
		if err := db.Add(label, s); err != nil {
			t.Fatal(err)
		}
	}
	return st, db
}

// matchesEqual requires byte-identical match sets (distance bits included).
func matchesEqual(t *testing.T, ctx string, got, want []sax.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d matches, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Label != w.Label || g.Word.Symbols != w.Word.Symbols ||
			math.Float64bits(g.WordDist) != math.Float64bits(w.WordDist) ||
			math.Float64bits(g.Dist) != math.Float64bits(w.Dist) ||
			g.Shift != w.Shift || g.Mirrored != w.Mirrored {
			t.Fatalf("%s: match %d differs:\n  got  %+v\n  want %+v", ctx, i, g, w)
		}
	}
}

// checkEquivalence compares store and database lookups over a query sweep.
func checkEquivalence(t *testing.T, ctx string, st *Store, db *sax.Database, rng *rand.Rand, n int) {
	t.Helper()
	scS, scD := sax.NewLookupScratch(), sax.NewLookupScratch()
	var bufS, bufD []sax.Match
	for q := 0; q < 12; q++ {
		s := randSmoothSeries(rng, n)
		z := s.ZNormalize()
		qw, err := db.Encoder().Encode(z)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 4} {
			var errS, errD error
			bufS, errS = st.LookupKZWith(scS, z, qw, k, bufS[:0])
			bufD, errD = db.LookupKZWith(scD, z, qw, k, bufD[:0])
			if (errS == nil) != (errD == nil) {
				t.Fatalf("%s: error mismatch: store %v, db %v", ctx, errS, errD)
			}
			matchesEqual(t, fmt.Sprintf("%s k=%d q=%d", ctx, k, q), bufS, bufD)
		}
	}
}

func TestStoreMatchesDatabaseAcrossStates(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	const n = 128
	for _, size := range []int{1, 3, 40, 150} {
		dir := filepath.Join(t.TempDir(), "st")
		st, db := buildPair(t, rng, dir, size, n, Options{})
		checkEquivalence(t, fmt.Sprintf("size=%d tail-only", size), st, db, rng, n)

		// Seal the tail, then grow a fresh tail on top of the segment.
		if err := st.Compact(); err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, fmt.Sprintf("size=%d sealed", size), st, db, rng, n)
		for i := 0; i < 5; i++ {
			s := randSmoothSeries(rng, n)
			if err := st.Add("late", s); err != nil {
				t.Fatal(err)
			}
			if err := db.Add("late", s); err != nil {
				t.Fatal(err)
			}
		}
		checkEquivalence(t, fmt.Sprintf("size=%d sealed+tail", size), st, db, rng, n)

		// Second seal → two segments; then a full merge → one segment.
		if err := st.Compact(); err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, fmt.Sprintf("size=%d two-segments", size), st, db, rng, n)
		if err := st.CompactFull(); err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, fmt.Sprintf("size=%d merged", size), st, db, rng, n)

		// Reopen from disk: same results again.
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, fmt.Sprintf("size=%d reopened", size), st2, db, rng, n)
		if err := st2.CheckIntegrity(); err != nil {
			t.Fatal(err)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreWindowedLookupMatchesDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	const n = 128
	dir := filepath.Join(t.TempDir(), "st")
	st, db := buildPair(t, rng, dir, 60, n, Options{})
	defer st.Close()
	st.SetShiftWindowFrac(0.15)
	db.SetShiftWindowFrac(0.15)
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, "windowed", st, db, rng, n)
}

func TestStoreReopenPreservesTailAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 64
	dir := filepath.Join(t.TempDir(), "st")
	st, db := buildPair(t, rng, dir, 30, n, Options{})
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	// Ten more entries stay in the WAL tail across the reopen.
	for i := 0; i < 10; i++ {
		s := randSmoothSeries(rng, n)
		if err := st.Add("tail", s); err != nil {
			t.Fatal(err)
		}
		if err := db.Add("tail", s); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 40 {
		t.Fatalf("Len after reopen = %d, want 40", st2.Len())
	}
	stats := st2.Stats()
	if stats.Sealed != 30 || stats.Tail != 10 {
		t.Fatalf("stats after reopen: sealed %d tail %d, want 30/10", stats.Sealed, stats.Tail)
	}
	checkEquivalence(t, "reopen-with-tail", st2, db, rng, n)
}

func TestAutoCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 64
	dir := filepath.Join(t.TempDir(), "st")
	enc := newTestEncoder(t)
	st, err := Create(dir, enc, n, Options{CompactEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 50; i++ {
		if err := st.Add("s", randSmoothSeries(rng, n)); err != nil {
			t.Fatal(err)
		}
	}
	// The threshold pass runs in the background; wait for it to land before
	// sealing the remainder, so the test observes both compaction paths.
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().Sealed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st.Stats().Sealed == 0 {
		t.Fatal("background compaction never ran")
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Tail != 0 || stats.Sealed != 50 {
		t.Fatalf("after auto+final compaction: sealed %d tail %d, want 50/0", stats.Sealed, stats.Tail)
	}
	// Segment count depends on when the background goroutine was scheduled
	// (it may seal everything accumulated so far in one pass), so only the
	// invariants are asserted, not the exact partitioning.
	if len(stats.Segments) < 1 {
		t.Fatalf("auto-compaction produced %d segments, want ≥ 1", len(stats.Segments))
	}
	if stats.LastCompactErr != "" {
		t.Fatalf("background compaction error: %s", stats.LastCompactErr)
	}
}

func TestConvertV1RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 96
	enc := newTestEncoder(t)
	db, err := sax.NewDatabase(enc, n)
	if err != nil {
		t.Fatal(err)
	}
	db.SetShiftWindowFrac(0.2)
	for i := 0; i < 37; i++ {
		if err := db.Add(fmt.Sprintf("g-%d", i%5), randSmoothSeries(rng, n)); err != nil {
			t.Fatal(err)
		}
	}
	v1 := filepath.Join(t.TempDir(), "db.json")
	f, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "st")
	in, err := os.Open(v1)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	// A tiny segment cap forces a multi-segment conversion.
	count, err := ConvertV1(in, dir, BuilderOptions{MaxSegmentEntries: 10})
	if err != nil {
		t.Fatal(err)
	}
	if count != 37 {
		t.Fatalf("converted %d entries, want 37", count)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 37 {
		t.Fatalf("store Len = %d, want 37", st.Len())
	}
	if got := len(st.Stats().Segments); got != 4 {
		t.Fatalf("conversion produced %d segments, want 4", got)
	}
	// The converted store inherits the v1 shift window, so results must pin
	// to the database's windowed cascade.
	checkEquivalence(t, "converted", st, db, rng, n)
}

func TestSnapshotCopyTo(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 64
	dir := filepath.Join(t.TempDir(), "src")
	st, db := buildPair(t, rng, dir, 25, n, Options{})
	defer st.Close()
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot appends must not leak into the replica.
	sn := st.Snapshot()
	if sn.Entries() != 25 {
		t.Fatalf("snapshot entries = %d, want 25", sn.Entries())
	}
	if err := st.Add("after", randSmoothSeries(rng, n)); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(t.TempDir(), "replica")
	if err := sn.CopyTo(dst); err != nil {
		t.Fatal(err)
	}
	rep, err := Open(dst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if rep.Len() != 25 {
		t.Fatalf("replica Len = %d, want 25", rep.Len())
	}
	if err := rep.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, "replica", rep, db, rng, n)
	// The replica is a full store: it accepts its own appends.
	if err := rep.Add("own", randSmoothSeries(rng, n)); err != nil {
		t.Fatal(err)
	}
}

func TestLookupThresholdSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 64
	dir := filepath.Join(t.TempDir(), "st")
	st, _ := buildPair(t, rng, dir, 10, n, Options{})
	defer st.Close()
	q := randSmoothSeries(rng, n)
	if _, err := st.Lookup(q, math.Inf(1)); err != nil {
		t.Fatalf("unbounded lookup: %v", err)
	}
	m, err := st.Lookup(q, -1)
	if err == nil {
		t.Fatal("impossible threshold accepted a match")
	}
	if m.Label == "" {
		t.Fatal("rejected lookup should still report the best candidate")
	}
}

func TestCreateRefusesExistingStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "st")
	enc := newTestEncoder(t)
	st, err := Create(dir, enc, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Create(dir, enc, 64, Options{}); err == nil {
		t.Fatal("Create over an existing store must fail")
	}
}
