package store

import (
	"math/rand"
	"testing"

	"hdc/internal/sax"
)

// TestNearestHistMatchesDatabase pins the degraded stage-0 answer to the
// in-memory database's, across sealed + tail storage states — same
// equivalence bar the full cascade is held to.
func TestNearestHistMatchesDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	st, db := buildPair(t, rng, t.TempDir(), 40, 64, Options{})
	defer st.Close()

	check := func(ctx string) {
		sc1, sc2 := sax.NewLookupScratch(), sax.NewLookupScratch()
		for qi := 0; qi < 12; qi++ {
			q := randSmoothSeries(rng, 64).ZNormalize()
			w, err := st.enc.Encode(q)
			if err != nil {
				t.Fatal(err)
			}
			sm, sok := st.NearestHist(sc1, w)
			dm, dok := db.NearestHist(sc2, w)
			if sok != dok || sm.Label != dm.Label || sm.Dist != dm.Dist {
				t.Fatalf("%s query %d: store %+v/%v vs db %+v/%v", ctx, qi, sm, sok, dm, dok)
			}
		}
	}
	check("tail-only")
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	check("sealed")
	for i := 0; i < 5; i++ {
		s := randSmoothSeries(rng, 64)
		if err := st.Add("extra", s); err != nil {
			t.Fatal(err)
		}
		if err := db.Add("extra", s); err != nil {
			t.Fatal(err)
		}
	}
	check("sealed+tail")
}
