// Package store implements the segmented on-disk sign dictionary: the
// version-2 persistence format for the SAX reference database, built for
// million-entry dictionaries that the version-1 JSON file (internal/sax
// Save/Load) cannot serve — v1 must re-parse and re-verify every entry on
// every open, while this store memory-maps immutable segment files and is
// ready to serve lookups as soon as the cheap structural validation passes.
//
// A store directory holds three kinds of file:
//
//   - sealed segments (seg-NNNNNN.seg): immutable, mmap-able columnar files
//     carrying the label table, SAX words, z-normalised series and a
//     precomputed per-entry symbol-histogram block, so stage 0 of the lookup
//     cascade (the histogram lower bound) runs directly over mapped memory
//     with zero per-lookup allocation;
//   - a write-ahead log (wal.log): length-prefixed, checksummed Add records;
//     recovery truncates a torn tail and replays the rest into the in-memory
//     tail;
//   - a manifest (MANIFEST.json): the commit point naming the live segments;
//     swapped atomically (tmp + fsync + rename) by compaction.
//
// Lookups run the same three-stage cascade as the in-memory Database —
// sax.CascadeLookupKZ over sealed segments plus the in-memory tail — and
// return byte-identical results for the same insertion sequence. Compaction
// folds the tail into a new sealed segment in the background; readers are
// never blocked and retired mappings stay valid until Close.
//
// The binary format is little-endian and served zero-copy via unsafe views,
// so store directories are portable across the little-endian hosts this
// project targets but not to big-endian ones.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"hdc/internal/failpoint"
	"hdc/internal/sax"
	"hdc/internal/timeseries"
)

// Typed failure classes for a damaged store directory. Every decode path
// returns one of these (wrapped with detail) rather than panicking, no
// matter how the bytes were mangled — the fuzz target holds that line.
var (
	// ErrCorruptSegment reports a segment file whose structure or checksums
	// are invalid.
	ErrCorruptSegment = errors.New("store: corrupt segment")
	// ErrCorruptManifest reports an unreadable or inconsistent manifest.
	ErrCorruptManifest = errors.New("store: corrupt manifest")
	// ErrCorruptWAL reports a write-ahead log damaged beyond the torn tail
	// that recovery repairs silently.
	ErrCorruptWAL = errors.New("store: corrupt write-ahead log")
	// ErrMissingSegment reports a manifest-referenced segment file that does
	// not exist.
	ErrMissingSegment = errors.New("store: missing segment file")
	// ErrClosed reports use of a closed store.
	ErrClosed = errors.New("store: closed")
)

// Options tune an opened store. The zero value is valid: no automatic
// compaction, buffered (non-fsynced) appends.
type Options struct {
	// CompactEvery, when positive, triggers a background compaction each
	// time the in-memory tail reaches this many entries.
	CompactEvery int
	// SyncWrites fsyncs the write-ahead log after every Add, trading append
	// latency for zero-loss durability of acknowledged entries.
	SyncWrites bool
}

// tailEntry is one not-yet-sealed entry, held like a Database entry: with
// its mirror candidates and histogram precomputed at append time.
type tailEntry struct {
	seq       uint64
	label     string
	word      sax.Word
	revWord   sax.Word
	series    timeseries.Series
	revSeries timeseries.Series
	hist      []uint16
}

// newTailEntry precomputes the lookup-side derived forms of one append.
func newTailEntry(seq uint64, label string, w sax.Word, z timeseries.Series) tailEntry {
	return tailEntry{
		seq:       seq,
		label:     label,
		word:      w,
		revWord:   w.Reverse().Rotate(-1),
		series:    z,
		revSeries: z.Reverse().Rotate(-1),
		hist:      sax.HistogramOf(w),
	}
}

// Store is an open segmented dictionary directory. Lookups and Adds are safe
// to call concurrently (including during a background compaction); Close
// must only be called once no lookup is in flight, because it unmaps the
// segment memory lookups read through.
type Store struct {
	dir  string
	enc  *sax.Encoder
	p    segParams
	opts Options

	// mu guards the mutable view of the store. Lookups take a snapshot of
	// segs/tail under RLock and then read lock-free: both are effectively
	// immutable (segments always; the tail's backing array is append-only,
	// and compaction re-slices rather than rewrites).
	mu        sync.RWMutex
	segs      []*segment
	tail      []tailEntry
	sealed    int // total entries across segs
	nextSeq   uint64
	shiftFrac float64
	w         *wal
	failed    error // sticky post-commit failure; nil when healthy
	closed    bool

	// compactMu serialises compactions and every manifest write; Close takes
	// it to drain an in-flight background compaction.
	compactMu  sync.Mutex
	mf         manifest
	retired    []*segment // replaced by compaction; unmapped at Close
	compacting atomic.Bool
	compactErr atomic.Pointer[string]

	// renameFn is os.Rename in production; crash tests inject failures at
	// the atomic-swap points through it.
	renameFn func(old, new string) error

	viewPool sync.Pool
}

// Store implements the dictionary surface the recogniser programs against.
var _ sax.Dictionary = (*Store)(nil)

// Create initialises an empty store in dir (created if absent; must not
// already contain a store) for signatures of length seriesLen symbolised by
// enc, and opens it.
func Create(dir string, enc *sax.Encoder, seriesLen int, opts Options) (*Store, error) {
	if enc == nil {
		return nil, errors.New("store: nil encoder")
	}
	if seriesLen < enc.Segments() {
		return nil, fmt.Errorf("store: series length %d below word length %d", seriesLen, enc.Segments())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("store: %s already contains a store", dir)
	}
	mf := &manifest{
		Version:   storeVersion,
		WordLen:   enc.Segments(),
		Alphabet:  enc.AlphabetSize(),
		SeriesLen: seriesLen,
		NextSeq:   1,
		NextSegID: 1,
	}
	if err := writeManifest(dir, mf, os.Rename); err != nil {
		return nil, err
	}
	return Open(dir, opts)
}

// Open opens the store in dir: the manifest is loaded, every referenced
// segment is mapped and structurally validated, orphaned files from an
// interrupted compaction are removed, and the write-ahead log is replayed
// (truncating a torn tail) into the in-memory tail.
func Open(dir string, opts Options) (*Store, error) {
	mf, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	p := mf.params()
	enc, err := sax.NewEncoder(mf.WordLen, mf.Alphabet)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptManifest, err)
	}

	s := &Store{
		dir:       dir,
		enc:       enc,
		p:         p,
		opts:      opts,
		nextSeq:   mf.NextSeq,
		shiftFrac: mf.ShiftFrac,
		mf:        *mf,
		renameFn:  os.Rename,
	}
	s.viewPool.New = func() any { return &lookupView{} }

	ok := false
	defer func() {
		if !ok {
			for _, sg := range s.segs {
				_ = sg.close()
			}
		}
	}()
	for _, ms := range mf.Segments {
		sg, err := openSegment(filepath.Join(dir, ms.File), p)
		if err != nil {
			return nil, err
		}
		if sg.count != ms.Entries || sg.baseSeq != ms.BaseSeq || sg.bodyCRC != ms.CRC {
			_ = sg.close()
			return nil, corrupt(ms.File, "segment header disagrees with manifest")
		}
		s.segs = append(s.segs, sg)
		s.sealed += sg.count
	}
	removeOrphans(dir, mf)

	recs, _, err := replayWAL(dir, p, mf.NextSeq)
	if err != nil {
		return nil, err
	}
	for i, r := range recs {
		if r.seq != mf.NextSeq+uint64(i) {
			return nil, fmt.Errorf("%w: log record sequence %d breaks the run at %d",
				ErrCorruptWAL, r.seq, mf.NextSeq+uint64(i))
		}
		s.tail = append(s.tail, newTailEntry(r.seq, r.label, sax.Word{Symbols: r.word, Alphabet: p.alphabet}, r.series))
		s.nextSeq = r.seq + 1
	}
	w, err := openWAL(dir, opts.SyncWrites)
	if err != nil {
		return nil, err
	}
	s.w = w
	ok = true
	return s, nil
}

// removeOrphans deletes files a crashed compaction left behind: anything
// *.tmp, and segment files the manifest does not reference (the manifest
// swap is the commit point, so an unreferenced segment never became live).
func removeOrphans(dir string, mf *manifest) {
	live := make(map[string]bool, len(mf.Segments))
	for _, ms := range mf.Segments {
		live[ms.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		orphanSeg := filepath.Ext(name) == ".seg" && !live[name]
		if orphanSeg || filepath.Ext(name) == ".tmp" {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// Encoder returns the store's SAX encoder.
func (s *Store) Encoder() *sax.Encoder { return s.enc }

// SeriesLen returns the canonical signature length.
func (s *Store) SeriesLen() int { return s.p.seriesLen }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of entries (sealed + tail).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sealed + len(s.tail)
}

// SetShiftWindowFrac restricts the rotation-alignment search exactly as
// Database.SetShiftWindowFrac does. The value is persisted into the manifest
// by the next compaction.
func (s *Store) SetShiftWindowFrac(frac float64) {
	s.mu.Lock()
	s.shiftFrac = frac
	s.mu.Unlock()
}

// windows snapshots the rotation-window bounds (-1 = unbounded), mirroring
// Database.params.
func (s *Store) windows() (wordWin, seriesWin int) {
	s.mu.RLock()
	frac := s.shiftFrac
	s.mu.RUnlock()
	if frac <= 0 {
		return -1, -1
	}
	return int(frac*float64(s.p.wordLen)) + 1, int(frac * float64(s.p.seriesLen))
}

// Add registers a labelled reference series: resampled to the canonical
// length, z-normalised, encoded, appended to the write-ahead log and to the
// in-memory tail. The entry is immediately visible to lookups; it becomes
// part of a sealed segment at the next compaction.
func (s *Store) Add(label string, series timeseries.Series) error {
	if label == "" {
		return errors.New("store: empty label")
	}
	rs, err := series.ResampleLinear(s.p.seriesLen)
	if err != nil {
		return fmt.Errorf("store: add %q: %w", label, err)
	}
	z := rs.ZNormalize()
	w, err := s.enc.Encode(z)
	if err != nil {
		return fmt.Errorf("store: add %q: %w", label, err)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return fmt.Errorf("store: unusable after earlier failure: %w", err)
	}
	seq := s.nextSeq
	err = failpoint.Inject(failpoint.StoreWALAppend)
	if err == nil {
		err = s.w.append(seq, label, w.Symbols, z)
	}
	if err != nil {
		// A partial record may now sit at the log's end. Appending after it
		// would bury acknowledged records behind a tear that recovery
		// truncates, so the store goes read-only instead.
		s.failed = err
		s.mu.Unlock()
		return fmt.Errorf("store: log append: %w", err)
	}
	s.nextSeq = seq + 1
	s.tail = append(s.tail, newTailEntry(seq, label, w, z))
	tailLen := len(s.tail)
	s.mu.Unlock()

	if ce := s.opts.CompactEvery; ce > 0 && tailLen >= ce && s.compacting.CompareAndSwap(false, true) {
		go func() {
			defer s.compacting.Store(false)
			if err := s.Compact(); err != nil && !errors.Is(err, ErrClosed) {
				msg := err.Error()
				s.compactErr.Store(&msg)
			}
		}()
	}
	return nil
}

// Compact seals the current in-memory tail into a new segment: the segment
// file is written and fsynced, the manifest is atomically swapped to
// reference it (the commit point), and the write-ahead log is rewritten to
// hold only entries appended after the seal. Lookups proceed throughout.
// Compact is a no-op on an empty tail.
func (s *Store) Compact() error { return s.compact(false) }

// CompactFull folds every sealed segment and the tail into a single segment
// — the defragmentation pass after many incremental compactions. Replaced
// segment files are unlinked once the new manifest is live; their mappings
// stay valid for in-flight lookups until Close.
func (s *Store) CompactFull() error { return s.compact(true) }

func (s *Store) compact(full bool) error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	if s.failed != nil {
		err := s.failed
		s.mu.RUnlock()
		return fmt.Errorf("store: unusable after earlier failure: %w", err)
	}
	segs := s.segs
	tail := s.tail
	shiftFrac := s.shiftFrac
	s.mu.RUnlock()

	n := len(tail)
	if n == 0 && (!full || len(segs) <= 1) {
		return nil // nothing to seal, nothing to merge
	}

	// Assemble the source and the resulting manifest segment list.
	var (
		src     segmentSource
		baseSeq uint64
		keep    []manifestSegment
		retire  []*segment
	)
	if full {
		srcs := make([]segmentSource, 0, len(segs)+1)
		for _, sg := range segs {
			srcs = append(srcs, sg.source())
		}
		srcs = append(srcs, tailSource(tail))
		src = concatSources(srcs)
		baseSeq = 1
		retire = segs
	} else {
		src = tailSource(tail)
		baseSeq = s.mf.NextSeq
		keep = append(keep, s.mf.Segments...)
	}

	segID := s.mf.NextSegID
	name := fmt.Sprintf("seg-%06d.seg", segID)
	tmp := filepath.Join(s.dir, name+".tmp")
	crc, err := writeSegment(tmp, s.p, baseSeq, src)
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	final := filepath.Join(s.dir, name)
	renameErr := failpoint.Inject(failpoint.StoreCompactRename)
	if renameErr == nil {
		renameErr = s.renameFn(tmp, final)
	}
	if renameErr != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", renameErr)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}

	mf := s.mf
	mf.Segments = append(keep, manifestSegment{File: name, Entries: src.count(), BaseSeq: baseSeq, CRC: crc})
	mf.NextSeq = baseSeq
	for _, ms := range mf.Segments {
		if ms.BaseSeq+uint64(ms.Entries) > mf.NextSeq {
			mf.NextSeq = ms.BaseSeq + uint64(ms.Entries)
		}
	}
	mf.NextSegID = segID + 1
	mf.ShiftFrac = shiftFrac
	if err := writeManifest(s.dir, &mf, s.renameFn); err != nil {
		_ = os.Remove(final)
		return fmt.Errorf("store: compact: %w", err)
	}
	// The manifest swap committed. Any failure past this point leaves disk
	// ahead of memory, so it marks the store failed rather than pretending
	// to roll back; a reopen recovers cleanly.

	sg, err := openSegment(final, s.p)
	if err != nil {
		return s.fail(fmt.Errorf("store: compact: reopening sealed segment: %w", err))
	}

	s.mu.Lock()
	remaining := s.tail[n:]
	recs := make([]walRecord, len(remaining))
	for i := range remaining {
		e := &remaining[i]
		recs[i] = walRecord{seq: e.seq, label: e.label, word: e.word.Symbols, series: e.series}
	}
	if err := rewriteWAL(s.dir, recs, s.opts.SyncWrites, s.renameFn); err != nil {
		s.failed = err
		s.mu.Unlock()
		return fmt.Errorf("store: compact: rewriting log: %w", err)
	}
	oldW := s.w
	w, err := openWAL(s.dir, s.opts.SyncWrites)
	if err != nil {
		s.failed = err
		s.mu.Unlock()
		return fmt.Errorf("store: compact: reopening log: %w", err)
	}
	s.w = w
	if full {
		s.segs = []*segment{sg}
	} else {
		s.segs = append(append([]*segment(nil), s.segs...), sg)
	}
	s.sealed = 0
	for _, g := range s.segs {
		s.sealed += g.count
	}
	s.tail = remaining
	s.mf = mf
	s.mu.Unlock()
	_ = oldW.close()

	// Retired segments: files go now (the mapping keeps serving in-flight
	// lookups; on unix an unlinked mapped file stays readable), mappings at
	// Close.
	s.retired = append(s.retired, retire...)
	for _, ms := range retireNames(retire) {
		_ = os.Remove(filepath.Join(s.dir, ms))
	}
	return nil
}

// retireNames lists the file names of retired segments.
func retireNames(segs []*segment) []string {
	names := make([]string, len(segs))
	for i, sg := range segs {
		names[i] = filepath.Base(sg.file)
	}
	return names
}

// fail marks the store unusable for writes after a post-commit error.
func (s *Store) fail(err error) error {
	s.mu.Lock()
	s.failed = err
	s.mu.Unlock()
	return err
}

// ReadOnly reports whether the store has gone sticky read-only after a
// write failure (WAL append, post-commit compaction step), along with the
// error that tripped it. Lookups keep working; Add and Compact refuse. The
// server's readiness endpoint and /statsz surface this so a degraded store
// is visible to operators, not just to the caller whose Add failed.
func (s *Store) ReadOnly() (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.failed != nil, s.failed
}

// Close releases the store: it drains any in-flight background compaction,
// closes the log and unmaps every segment (including ones retired by
// compaction). No lookup may be in flight.
func (s *Store) Close() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	segs := s.segs
	retired := s.retired
	w := s.w
	s.mu.Unlock()

	var first error
	if w != nil {
		first = w.close()
	}
	for _, sg := range append(retired, segs...) {
		if err := sg.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CheckIntegrity recomputes the body checksum of every sealed segment — the
// deep verification Open deliberately skips to stay fast.
func (s *Store) CheckIntegrity() error {
	s.mu.RLock()
	segs := s.segs
	s.mu.RUnlock()
	for _, sg := range segs {
		if err := sg.checkIntegrity(); err != nil {
			return err
		}
	}
	return nil
}

// tailSource adapts the in-memory tail to the segment writer.
type tailSource []tailEntry

func (t tailSource) count() int { return len(t) }
func (t tailSource) entry(i int) (string, string, []uint16, []float64) {
	e := &t[i]
	return e.label, e.word.Symbols, e.hist, e.series
}

// concatSources chains sources in order (compaction's merged view: sealed
// segments in manifest order, then the tail — already globally seq-ordered).
func concatSources(srcs []segmentSource) segmentSource {
	cs := &concatSource{srcs: srcs, starts: make([]int, len(srcs)+1)}
	for i, src := range srcs {
		cs.starts[i+1] = cs.starts[i] + src.count()
	}
	return cs
}

type concatSource struct {
	srcs   []segmentSource
	starts []int
}

func (c *concatSource) count() int { return c.starts[len(c.starts)-1] }
func (c *concatSource) entry(i int) (string, string, []uint16, []float64) {
	// Linear bucket walk: sources are few (segments + tail).
	k := 0
	for c.starts[k+1] <= i {
		k++
	}
	return c.srcs[k].entry(i - c.starts[k])
}

// Stats reports the store's shape for diagnostics (cmd/signdb -inspect, the
// server's /statsz).
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Dir:     s.dir,
		Entries: s.sealed + len(s.tail),
		Sealed:  s.sealed,
		Tail:    len(s.tail),
		NextSeq: s.nextSeq,
	}
	for _, sg := range s.segs {
		var bytes int64
		if fi, err := os.Stat(sg.file); err == nil {
			bytes = fi.Size()
		}
		st.Segments = append(st.Segments, SegmentStats{
			File:    filepath.Base(sg.file),
			Entries: sg.count,
			Labels:  len(sg.labels),
			BaseSeq: sg.baseSeq,
			Bytes:   bytes,
		})
		st.DiskBytes += bytes
	}
	if fi, err := os.Stat(filepath.Join(s.dir, walName)); err == nil {
		st.WALBytes = fi.Size()
		st.DiskBytes += fi.Size()
	}
	if msg := s.compactErr.Load(); msg != nil {
		st.LastCompactErr = *msg
	}
	if s.failed != nil {
		st.ReadOnly = true
		st.FailedErr = s.failed.Error()
	}
	return st
}

// SegmentStats describes one sealed segment in Stats.
type SegmentStats struct {
	File    string `json:"file"`
	Entries int    `json:"entries"`
	Labels  int    `json:"labels"` // distinct labels in the segment's table
	BaseSeq uint64 `json:"base_seq"`
	Bytes   int64  `json:"bytes"`
}

// Stats is a point-in-time description of a store's on-disk and in-memory
// shape.
type Stats struct {
	Dir            string         `json:"dir"`
	Entries        int            `json:"entries"`
	Sealed         int            `json:"sealed"`
	Tail           int            `json:"tail"`
	NextSeq        uint64         `json:"next_seq"`
	Segments       []SegmentStats `json:"segments,omitempty"`
	WALBytes       int64          `json:"wal_bytes"`
	DiskBytes      int64          `json:"disk_bytes"`
	LastCompactErr string         `json:"last_compact_err,omitempty"`
	// ReadOnly/FailedErr surface the sticky write-failure state (see
	// Store.ReadOnly) to /statsz and operators.
	ReadOnly  bool   `json:"read_only,omitempty"`
	FailedErr string `json:"failed_err,omitempty"`
}

// Snapshot is the replica-shipping unit: the manifest state and sealed
// segment set captured at a point in time. CopyTo materialises it into a
// fresh store directory; the in-memory tail is not part of a snapshot, so
// callers wanting full fidelity Compact() first.
type Snapshot struct {
	s  *Store
	mf manifest
}

// Snapshot captures the current sealed state.
func (s *Store) Snapshot() Snapshot {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	return Snapshot{s: s, mf: s.mf}
}

// Files lists the file names (relative to the store directory) that make up
// the snapshot, manifest last.
func (sn Snapshot) Files() []string {
	names := make([]string, 0, len(sn.mf.Segments)+1)
	for _, ms := range sn.mf.Segments {
		names = append(names, ms.File)
	}
	return append(names, manifestName)
}

// Entries returns the number of sealed entries the snapshot carries.
func (sn Snapshot) Entries() int {
	n := 0
	for _, ms := range sn.mf.Segments {
		n += ms.Entries
	}
	return n
}

// CopyTo writes the snapshot into dstDir (created; must not already contain
// a store): segment files are copied byte-for-byte, then the captured
// manifest is written as the commit point — the same ordering compaction
// uses, so an interrupted copy never leaves an openable half-store.
// Compaction on the source store is held off for the duration.
func (sn Snapshot) CopyTo(dstDir string) error {
	s := sn.s
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(dstDir, manifestName)); err == nil {
		return fmt.Errorf("store: %s already contains a store", dstDir)
	}
	for _, ms := range sn.mf.Segments {
		if err := copyFile(filepath.Join(s.dir, ms.File), filepath.Join(dstDir, ms.File)); err != nil {
			return err
		}
	}
	mf := sn.mf
	mf.Segments = append([]manifestSegment(nil), sn.mf.Segments...)
	return writeManifest(dstDir, &mf, os.Rename)
}

// copyFile copies src to dst and fsyncs the copy.
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
