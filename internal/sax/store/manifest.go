package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// manifest.go defines the store's root metadata file. The manifest is the
// commit point of every structural change: a segment exists iff the current
// manifest references it, so compaction becomes crash-safe by writing the
// new segment first, then atomically swapping the manifest (tmp + fsync +
// rename), and only then unlinking replaced files and rewriting the log.
// A crash at any point leaves either the old manifest (new files are orphans,
// removed at next open) or the new one (old files are orphans likewise).

// manifestName is the manifest's file name within a store directory.
const manifestName = "MANIFEST.json"

// storeVersion is the on-disk format version of the segmented store (the
// JSON dictionary file is version 1).
const storeVersion = 2

// manifestSegment describes one sealed segment file.
type manifestSegment struct {
	File    string `json:"file"`
	Entries int    `json:"entries"`
	BaseSeq uint64 `json:"base_seq"`
	CRC     uint32 `json:"crc"` // body checksum, mirrors the segment header
}

// manifest is the JSON root of a store directory.
type manifest struct {
	Version   int     `json:"version"`
	WordLen   int     `json:"word_len"`
	Alphabet  int     `json:"alphabet"`
	SeriesLen int     `json:"series_len"`
	ShiftFrac float64 `json:"shift_frac,omitempty"`
	// NextSeq is the first unassigned sequence number: log records below it
	// are already sealed and are skipped on replay.
	NextSeq uint64 `json:"next_seq"`
	// NextSegID numbers segment files; monotonically increasing so a
	// compaction's output never collides with a file a concurrent reader
	// still maps.
	NextSegID  int               `json:"next_seg_id"`
	SyncWrites bool              `json:"sync_writes,omitempty"`
	Segments   []manifestSegment `json:"segments"`
}

// params returns the manifest's segment parameters.
func (mf *manifest) params() segParams {
	return segParams{wordLen: mf.WordLen, alphabet: mf.Alphabet, seriesLen: mf.SeriesLen}
}

// validate performs the structural checks every loaded manifest must pass
// before its parameters size any buffer.
func (mf *manifest) validate() error {
	if mf.Version != storeVersion {
		return fmt.Errorf("%w: unsupported store version %d", ErrCorruptManifest, mf.Version)
	}
	const maxParam = 1 << 20
	if mf.WordLen < 1 || mf.WordLen > maxParam ||
		mf.Alphabet < 2 || mf.Alphabet > 26 ||
		mf.SeriesLen < mf.WordLen || mf.SeriesLen > maxParam {
		return fmt.Errorf("%w: implausible parameters (word_len %d, alphabet %d, series_len %d)",
			ErrCorruptManifest, mf.WordLen, mf.Alphabet, mf.SeriesLen)
	}
	seq := uint64(1)
	for i, s := range mf.Segments {
		if s.File == "" || filepath.Base(s.File) != s.File {
			return fmt.Errorf("%w: segment %d has invalid file name %q", ErrCorruptManifest, i, s.File)
		}
		if s.Entries < 0 || s.BaseSeq != seq {
			return fmt.Errorf("%w: segment %d sequence run broken (base_seq %d, want %d)",
				ErrCorruptManifest, i, s.BaseSeq, seq)
		}
		seq += uint64(s.Entries)
	}
	if mf.NextSeq < seq {
		return fmt.Errorf("%w: next_seq %d below sealed range end %d", ErrCorruptManifest, mf.NextSeq, seq)
	}
	return nil
}

// loadManifest reads and validates dir's manifest.
func loadManifest(dir string) (*manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var mf manifest
	if err := json.Unmarshal(b, &mf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptManifest, err)
	}
	if err := mf.validate(); err != nil {
		return nil, err
	}
	return &mf, nil
}

// writeManifest atomically replaces dir's manifest: the new content is
// written beside it, fsynced, and renamed into place (renameFn is the
// store's injectable rename, the crash-testing hook), then the directory is
// fsynced so the rename itself is durable.
func writeManifest(dir string, mf *manifest, renameFn func(old, new string) error) error {
	b, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := renameFn(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file is durable across a
// crash (best-effort on filesystems that reject directory fsync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Best-effort: some filesystems (and all of Windows) refuse to fsync a
	// directory; the rename stays atomic, only crash durability of the new
	// name is weaker there.
	_ = d.Sync()
	return nil
}
