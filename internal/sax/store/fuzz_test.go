package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzz_test.go hardens the segment decoder: whatever bytes an attacker, a
// failing disk or a crashed writer leaves in a .seg file, decoding must
// return a typed error or a fully usable segment — never panic, never hand
// out a view that faults later. The checked-in seed corpus
// (testdata/fuzz/FuzzSegmentDecode) covers the interesting shapes: a valid
// segment, truncations at every structural boundary, and bit flips in each
// block; `go test -fuzz=FuzzSegmentDecode` explores from there.

// fuzzParams are the store parameters every fuzz input is decoded against
// (they must match the corpus generator below).
var fuzzParams = segParams{wordLen: 4, alphabet: 4, seriesLen: 8}

// buildFuzzSegment writes a small valid segment and returns its bytes.
func buildFuzzSegment(tb testing.TB) []byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	acc := accum{}
	for i := 0; i < 5; i++ {
		z := randSmoothSeries(rng, fuzzParams.seriesLen).ZNormalize()
		word := make([]byte, fuzzParams.wordLen)
		hist := make([]uint16, fuzzParams.alphabet)
		for j := range word {
			s := byte('a' + (i+j)%fuzzParams.alphabet)
			word[j] = s
			hist[s-'a']++
		}
		acc.labels = append(acc.labels, fmt.Sprintf("l%d", i%2))
		acc.words = append(acc.words, string(word))
		acc.hists = append(acc.hists, hist)
		acc.series = append(acc.series, z)
	}
	path := filepath.Join(tb.TempDir(), "seed.seg")
	if _, err := writeSegment(path, fuzzParams, 1, &acc); err != nil {
		tb.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// decodeFuzzInput runs the decoder over arbitrary bytes (copied into an
// 8-byte-aligned buffer, as a mapping would be) and, when decoding succeeds,
// walks every accessor the lookup path uses.
func decodeFuzzInput(data []byte) {
	if len(data) < segHeaderSize {
		return
	}
	buf := make([]uint64, (len(data)+7)/8)
	aligned := unsafeBytes(buf)[:len(data)]
	copy(aligned, data)
	sg, err := decodeSegment("fuzz.seg", mapped{data: aligned}, fuzzParams, uint64(len(aligned)))
	if err != nil {
		return
	}
	var sink float64
	for i := 0; i < sg.count; i++ {
		_ = sg.label(i)
		_ = sg.word(i)
		for _, h := range sg.histAt(i) {
			sink += float64(h)
		}
		for _, v := range sg.seriesAt(i) {
			sink += v
		}
	}
	_ = sg.checkIntegrity()
	_ = sink
}

func FuzzSegmentDecode(f *testing.F) {
	valid := buildFuzzSegment(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:segHeaderSize])
	f.Add(valid[:len(valid)-3])
	for _, off := range []int{hdrOffCount, hdrOffSeries, segHeaderSize + 10, len(valid) - 5} {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x40
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeFuzzInput(data)
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus when
// STORE_WRITE_FUZZ_CORPUS is set (a no-op otherwise). The committed files
// let CI's short fuzz smoke start from the structured shapes immediately.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("STORE_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set STORE_WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSegmentDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	valid := buildFuzzSegment(t)
	seeds := map[string][]byte{
		"seed_valid":        valid,
		"seed_header_only":  valid[:segHeaderSize],
		"seed_torn_tail":    valid[:len(valid)-3],
		"seed_count_flip":   flipAt(valid, hdrOffCount),
		"seed_offset_flip":  flipAt(valid, hdrOffSeries),
		"seed_body_flip":    flipAt(valid, segHeaderSize+10),
		"seed_series_flip":  flipAt(valid, len(valid)-5),
		"seed_magic_garble": flipAt(valid, 0),
	}
	for name, b := range seeds {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// flipAt returns a copy of b with one bit toggled at off.
func flipAt(b []byte, off int) []byte {
	c := append([]byte(nil), b...)
	c[off] ^= 0x40
	return c
}
