package store

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"hdc/internal/failpoint"
	"hdc/internal/sax"
)

// failpoint_test.go exercises the store's fault-injection hooks: a WAL
// append failure must trip the sticky read-only state (and surface it on
// ReadOnly/Stats), a compaction rename failure must abort cleanly without
// poisoning the store, a post-commit segment reopen failure must go sticky,
// and a lookup failpoint must propagate as a lookup error.

func TestFailpointWALAppendGoesReadOnly(t *testing.T) {
	defer failpoint.DisableAll()
	rng := rand.New(rand.NewSource(7))
	st, _ := buildPair(t, rng, t.TempDir(), 8, 64, Options{})
	defer st.Close()

	if ro, _ := st.ReadOnly(); ro {
		t.Fatal("fresh store read-only")
	}
	if err := failpoint.Enable(failpoint.StoreWALAppend, "error(enospc)"); err != nil {
		t.Fatal(err)
	}
	err := st.Add("sign-x", randSmoothSeries(rng, 64))
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Add under failpoint: %v", err)
	}
	failpoint.DisableAll()

	ro, cause := st.ReadOnly()
	if !ro || cause == nil || !strings.Contains(cause.Error(), "enospc") {
		t.Fatalf("ReadOnly = %v, %v", ro, cause)
	}
	stats := st.Stats()
	if !stats.ReadOnly || !strings.Contains(stats.FailedErr, "enospc") {
		t.Fatalf("Stats read-only not surfaced: %+v", stats)
	}
	// Sticky: even with the failpoint gone, writes refuse...
	if err := st.Add("sign-y", randSmoothSeries(rng, 64)); err == nil {
		t.Fatal("Add after sticky failure succeeded")
	}
	if err := st.Compact(); err == nil {
		t.Fatal("Compact after sticky failure succeeded")
	}
	// ...but lookups keep serving.
	q := randSmoothSeries(rng, 64).ZNormalize()
	w, err := st.enc.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.LookupKZWith(sax.NewLookupScratch(), q, w, 1, nil); err != nil {
		t.Fatalf("lookup on read-only store: %v", err)
	}
}

func TestFailpointCompactRenameAborts(t *testing.T) {
	defer failpoint.DisableAll()
	rng := rand.New(rand.NewSource(11))
	st, _ := buildPair(t, rng, t.TempDir(), 10, 64, Options{})
	defer st.Close()

	if err := failpoint.Enable(failpoint.StoreCompactRename, "1*error(rename blocked)"); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err == nil || !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Compact under rename failpoint: %v", err)
	}
	// Pre-commit failure: the store must stay healthy and retry cleanly.
	if ro, _ := st.ReadOnly(); ro {
		t.Fatal("pre-commit compaction failure went sticky")
	}
	if err := st.Compact(); err != nil {
		t.Fatalf("retry compact: %v", err)
	}
	if stats := st.Stats(); stats.Tail != 0 || stats.Sealed != 10 {
		t.Fatalf("after retry: %+v", stats)
	}
}

func TestFailpointSegmentReopenGoesSticky(t *testing.T) {
	defer failpoint.DisableAll()
	rng := rand.New(rand.NewSource(13))
	st, _ := buildPair(t, rng, t.TempDir(), 10, 64, Options{})
	defer st.Close()

	// The reopen of the freshly sealed segment happens after the manifest
	// commit; failing it must mark the store failed (disk is ahead of
	// memory), and a reopen from disk must recover.
	if err := failpoint.Enable(failpoint.StoreSegmentOpen, "1*error(mmap refused)"); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err == nil {
		t.Fatal("Compact survived segment-open failpoint")
	}
	if ro, _ := st.ReadOnly(); !ro {
		t.Fatal("post-commit reopen failure did not go sticky")
	}
	failpoint.DisableAll()

	dir := st.Stats().Dir
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after sticky failure: %v", err)
	}
	defer st2.Close()
	if got := st2.Stats().Entries; got != 10 {
		t.Fatalf("entries after recovery = %d", got)
	}
}

func TestFailpointLookupError(t *testing.T) {
	defer failpoint.DisableAll()
	rng := rand.New(rand.NewSource(17))
	st, _ := buildPair(t, rng, t.TempDir(), 6, 64, Options{})
	defer st.Close()

	q := randSmoothSeries(rng, 64).ZNormalize()
	w, err := st.enc.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable(failpoint.StoreLookup, "error(stalled)"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LookupKZWith(sax.NewLookupScratch(), q, w, 2, nil); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("lookup under failpoint: %v", err)
	}
	failpoint.DisableAll()
	got, err := st.LookupKZWith(sax.NewLookupScratch(), q, w, 2, nil)
	if err != nil || len(got) == 0 {
		t.Fatalf("lookup after disable: %v %v", got, err)
	}
}
