//go:build linux || darwin

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapped is a read-only view of a segment file's bytes. On unix hosts it is a
// shared memory mapping: opening a million-entry store faults in pages on
// demand instead of reading and decoding the file, and the page cache shares
// one copy of the dictionary across every process that opens it.
type mapped struct {
	data []byte
	mm   bool // true when data is a syscall mapping (not heap)
}

// mapFile maps size bytes of f read-only.
func mapFile(f *os.File, size int) (mapped, error) {
	if size == 0 {
		return mapped{}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return mapped{}, fmt.Errorf("mmap %s: %w", f.Name(), err)
	}
	return mapped{data: data, mm: true}, nil
}

// close releases the mapping. Call only once no reader can hold a view into
// the mapped bytes (the store unmaps at Close, never on compaction, so
// in-flight lookups keep a valid view of retired segments).
func (m mapped) close() error {
	if !m.mm || m.data == nil {
		return nil
	}
	return syscall.Munmap(m.data)
}
