package store

import (
	"unsafe"
)

// views.go holds the zero-copy reinterpretation helpers the segment reader
// uses over mapped memory. The segment body is written little-endian with
// natural alignment (the writer pads the series block to 8 bytes, and a file
// mapping starts page-aligned), so on little-endian hosts — every first-class
// Go target this project builds for — a block of the mapping *is* the typed
// slice and lookups read it without a decode step or a per-lookup allocation.
// openSegment verifies the alignment invariants before any view is taken, so
// a corrupt or truncated file yields ErrCorruptSegment, never a misaligned
// load.

// u16View reinterprets b (length a multiple of 2, 2-byte aligned) as []uint16.
func u16View(b []byte) []uint16 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), len(b)/2)
}

// u32View reinterprets b (length a multiple of 4, 4-byte aligned) as []uint32.
func u32View(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// f64View reinterprets b (length a multiple of 8, 8-byte aligned) as
// []float64.
func f64View(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// unsafeBytes reinterprets a []uint64 as its backing bytes (the heap
// fallback's aligned-allocation trick).
func unsafeBytes(w []uint64) []byte {
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), len(w)*8)
}

// viewString reinterprets b as a string without copying. The string borrows
// the mapping: it is valid while the owning store stays open.
func viewString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// aligned reports whether off is a multiple of align.
func aligned(off uint64, align uint64) bool { return off%align == 0 }
