package store

import (
	"hdc/internal/failpoint"
	"hdc/internal/sax"
	"hdc/internal/timeseries"
)

// lookup.go adapts the store to the cascade kernel (sax.CascadeLookupKZ):
// the same three-stage refinement that serves the in-memory Database runs
// here over mapped segment memory plus the in-memory tail, producing
// byte-identical results for the same insertion sequence.
//
// Stage 0 iterates each segment's histogram block — the prune index
// precomputed at build time — directly in the mapping: no per-entry decode,
// no allocation. Entry references pack (segment, index) into the kernel's
// opaque 64-bit ref; the segment set and tail are snapshotted per lookup, so
// a concurrent compaction can retire segments without ever invalidating a
// lookup in flight.

// refSegShift packs the segment ordinal into the high bits of a candidate
// reference. Ordinal 0 is the in-memory tail; sealed segment i is i+1.
const refSegShift = 40

// lookupView is the per-lookup Corpus implementation: a snapshot of the
// sealed segments and the tail. Views are pooled and reused, so steady-state
// lookups allocate nothing.
type lookupView struct {
	s    *Store
	segs []*segment
	tail []tailEntry
}

// ScanHist implements sax.Corpus: the stage-0 histogram pass over every
// sealed segment's mapped prune index, then the tail.
func (lv *lookupView) ScanHist(sc *sax.LookupScratch, qh []uint16) {
	enc, n, al := lv.s.enc, lv.s.p.seriesLen, lv.s.p.alphabet
	for si, sg := range lv.segs {
		ref := uint64(si+1) << refSegShift
		hist := sg.hist
		base := sg.baseSeq
		for i := 0; i < sg.count; i++ {
			lb := enc.HistLowerBoundRaw(qh, hist[i*al:(i+1)*al], n)
			sc.AppendCandidate(ref|uint64(i), base+uint64(i), lb)
		}
	}
	for i := range lv.tail {
		e := &lv.tail[i]
		sc.AppendCandidate(uint64(i), e.seq, enc.HistLowerBoundRaw(qh, e.hist, n))
	}
}

// View implements sax.Corpus. Tail entries carry their precomputed mirrors;
// sealed entries serve word and series as zero-copy views into the mapping
// and materialise the mirror candidates into the scratch's view buffers
// (valid until the next View call, which is the kernel's contract).
func (lv *lookupView) View(sc *sax.LookupScratch, ref uint64) sax.EntryView {
	idx := int(ref & (1<<refSegShift - 1))
	si := int(ref >> refSegShift)
	if si == 0 {
		e := &lv.tail[idx]
		return sax.EntryView{
			Label:     e.label,
			Word:      e.word,
			RevWord:   e.revWord,
			Series:    e.series,
			RevSeries: e.revSeries,
		}
	}
	sg := lv.segs[si-1]
	word := sg.word(idx)
	series := sg.seriesAt(idx)
	nb, nf := len(word), len(series)
	revW, revS := sc.ViewScratch(nb, nf)
	// Mirror transform (reverse, then rotate by one so a pure reflection
	// sits at shift 0): dst[0] = src[0], dst[j] = src[n-j].
	revW[0] = word[0]
	revS[0] = series[0]
	for j := 1; j < nb; j++ {
		revW[j] = word[nb-j]
	}
	for j := 1; j < nf; j++ {
		revS[j] = series[nf-j]
	}
	al := lv.s.p.alphabet
	return sax.EntryView{
		Label:     sg.label(idx),
		Word:      sax.Word{Symbols: word, Alphabet: al},
		RevWord:   sax.Word{Symbols: viewString(revW), Alphabet: al},
		Series:    series,
		RevSeries: revS,
	}
}

// LookupKZWith finds the (up to) k nearest entries to the prepared query
// (canonical-length z-normalised series z, its word qw), closest first,
// written into dst — the Database.LookupKZWith contract over the on-disk
// store. Safe concurrently with Add and compaction; the scratch must not be
// shared between concurrent lookups.
//
// Returned matches' Word fields are zero-copy views into the store's mapped
// memory: they stay valid until the store is closed.
func (s *Store) LookupKZWith(sc *sax.LookupScratch, z timeseries.Series, qw sax.Word, k int, dst []sax.Match) ([]sax.Match, error) {
	// The "store stall" site: a delay policy here models a slow disk/page
	// fault under the full cascade; the degraded stage-0 path does not pass
	// through it.
	if err := failpoint.Inject(failpoint.StoreLookup); err != nil {
		return dst[:0], err
	}
	lv := s.viewPool.Get().(*lookupView)
	lv.s = s
	s.mu.RLock()
	lv.segs = append(lv.segs[:0], s.segs...)
	lv.tail = s.tail
	s.mu.RUnlock()
	wordWin, seriesWin := s.windows()
	dst, err := sax.CascadeLookupKZ(sc, lv, s.enc, s.p.seriesLen, wordWin, seriesWin, z, qw, k, dst)
	lv.tail = nil
	s.viewPool.Put(lv)
	return dst, err
}

// NearestHist runs only stage 0 over the store's mapped prune index plus
// the in-memory tail — the degraded-mode answer; see sax.HistNearest for
// the contract (Dist is a lower bound, not an exact distance). It does not
// pass through the store/lookup failpoint: the degraded path exists to keep
// answering while the full lookup path is stalled.
func (s *Store) NearestHist(sc *sax.LookupScratch, qw sax.Word) (sax.Match, bool) {
	lv := s.viewPool.Get().(*lookupView)
	lv.s = s
	s.mu.RLock()
	lv.segs = append(lv.segs[:0], s.segs...)
	lv.tail = s.tail
	s.mu.RUnlock()
	m, ok := sax.HistNearest(sc, lv, s.enc, qw)
	lv.tail = nil
	s.viewPool.Put(lv)
	return m, ok
}

// LookupZWith finds the single nearest entry under an acceptance threshold —
// the Database.LookupZWith contract (sax.ErrNoMatch carries the best
// rejected candidate for diagnostics).
func (s *Store) LookupZWith(sc *sax.LookupScratch, z timeseries.Series, qw sax.Word, threshold float64) (sax.Match, error) {
	return sax.LookupZOn(s, sc, z, qw, threshold)
}

// Lookup resamples, normalises and encodes a raw query series, then looks up
// its nearest entry under the threshold.
func (s *Store) Lookup(q timeseries.Series, threshold float64) (sax.Match, error) {
	rs, err := q.ResampleLinear(s.p.seriesLen)
	if err != nil {
		return sax.Match{}, err
	}
	z := rs.ZNormalize()
	qw, err := s.enc.Encode(z)
	if err != nil {
		return sax.Match{}, err
	}
	return s.LookupZWith(nil, z, qw, threshold)
}
