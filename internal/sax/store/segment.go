package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"hdc/internal/failpoint"
	"hdc/internal/timeseries"
)

// segment.go defines the sealed segment file: the immutable, mmap-able unit
// of the on-disk dictionary. A segment holds a contiguous run of entries
// (sequence numbers baseSeq … baseSeq+count-1) in a columnar fixed-width
// layout so every lookup structure is a direct view over the mapping:
//
//	offset 0    header (128 bytes, little-endian, CRC-protected)
//	offLabelIdx count × u32          per-entry index into the label table
//	offHist     count × alphabet × u16   symbol histograms — the stage-0
//	            prune index, precomputed at build time so the histogram
//	            lower bound runs straight over mapped memory
//	offWords    count × wordLen bytes    SAX words, fixed width
//	offLabels   label table: u32 n, then n × (u32 len ‖ bytes), deduplicated
//	(pad to 8)
//	offSeries   count × seriesLen × f64  z-normalised reference series
//	            (8-byte aligned so the float view needs no decode)
//
// The header CRC is verified at open; the body CRC covers everything after
// the header and is verified by CheckIntegrity (and the repair tooling), not
// on the open path — opening stays O(validation scan), with the bulk series
// block untouched until a lookup faults it in. The cheap open-time scans
// (word symbols in range, label indices in bounds) exist so that corrupt
// mapped data surfaces as ErrCorruptSegment instead of a panic inside the
// lookup cascade.

// Header field offsets and fixed sizes of the segment file format.
const (
	segMagic      = "SAXSEG01"
	segVersion    = 1
	segHeaderSize = 128

	hdrOffMagic     = 0
	hdrOffVersion   = 8
	hdrOffWordLen   = 12
	hdrOffAlphabet  = 16
	hdrOffSeriesLen = 20
	hdrOffCount     = 24
	hdrOffBaseSeq   = 32
	hdrOffLabelIdx  = 40
	hdrOffHist      = 48
	hdrOffWords     = 56
	hdrOffLabels    = 64
	hdrOffSeries    = 72
	hdrOffFileSize  = 80
	hdrOffBodyCRC   = 120
	hdrOffHeaderCRC = 124
)

// segParams are the encoder/series parameters every segment of a store must
// agree on (they mirror the manifest header).
type segParams struct {
	wordLen   int
	alphabet  int
	seriesLen int
}

// segment is an open (mapped) sealed segment.
type segment struct {
	file    string
	m       mapped
	p       segParams
	count   int
	baseSeq uint64
	bodyCRC uint32

	labels   []string  // decoded label table (heap strings)
	labelIdx []uint32  // view: count entries
	words    []byte    // view: count × wordLen
	hist     []uint16  // view: count × alphabet
	series   []float64 // view: count × seriesLen
}

// segmentSource yields entries for segment building: a count and per-entry
// accessors (two passes are taken, one for the label table, one for the
// blocks). Both in-memory accumulators and open segments implement it, so
// compaction streams mapped entries straight into a new file.
type segmentSource interface {
	count() int
	entry(i int) (label, word string, hist []uint16, series []float64)
}

// corrupt wraps a format violation in ErrCorruptSegment.
func corrupt(file, format string, a ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrCorruptSegment, file, fmt.Sprintf(format, a...))
}

// openSegment maps the segment at path and validates it against the expected
// parameters. Validation is the cheap structural kind — header CRC, exact
// block geometry, label indices in bounds, word symbols within the alphabet —
// everything needed so lookups over the views cannot fault; the body CRC is
// left to CheckIntegrity.
func openSegment(path string, p segParams) (*segment, error) {
	if err := failpoint.Inject(failpoint.StoreSegmentOpen); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrMissingSegment, path)
		}
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < segHeaderSize {
		return nil, corrupt(path, "file size %d below header size", size)
	}
	if size > math.MaxInt {
		return nil, corrupt(path, "file size %d unsupported", size)
	}
	m, err := mapFile(f, int(size))
	if err != nil {
		return nil, err
	}
	sg, err := decodeSegment(path, m, p, uint64(size))
	if err != nil {
		_ = m.close()
		return nil, err
	}
	return sg, nil
}

// decodeSegment validates the mapped bytes and builds the segment's views.
// Factored out of openSegment so the fuzz target can drive it directly.
func decodeSegment(path string, m mapped, p segParams, size uint64) (*segment, error) {
	h := m.data[:segHeaderSize]
	if string(h[hdrOffMagic:hdrOffMagic+8]) != segMagic {
		return nil, corrupt(path, "bad magic")
	}
	if v := binary.LittleEndian.Uint32(h[hdrOffVersion:]); v != segVersion {
		return nil, corrupt(path, "unsupported segment version %d", v)
	}
	if got := crc32.ChecksumIEEE(h[:hdrOffHeaderCRC]); got != binary.LittleEndian.Uint32(h[hdrOffHeaderCRC:]) {
		return nil, corrupt(path, "header checksum mismatch")
	}
	wl := int(binary.LittleEndian.Uint32(h[hdrOffWordLen:]))
	al := int(binary.LittleEndian.Uint32(h[hdrOffAlphabet:]))
	sl := int(binary.LittleEndian.Uint32(h[hdrOffSeriesLen:]))
	if wl != p.wordLen || al != p.alphabet || sl != p.seriesLen {
		return nil, corrupt(path, "parameters (%d,%d,%d) do not match the store's (%d,%d,%d)",
			wl, al, sl, p.wordLen, p.alphabet, p.seriesLen)
	}
	c := uint64(binary.LittleEndian.Uint32(h[hdrOffCount:]))
	fileSize := binary.LittleEndian.Uint64(h[hdrOffFileSize:])
	if fileSize != size {
		return nil, corrupt(path, "header file size %d != actual %d (truncated?)", fileSize, size)
	}

	// Recompute the canonical block geometry and require the header offsets
	// to match it exactly: every view below is then in bounds and aligned by
	// construction.
	offLabelIdx := binary.LittleEndian.Uint64(h[hdrOffLabelIdx:])
	offHist := binary.LittleEndian.Uint64(h[hdrOffHist:])
	offWords := binary.LittleEndian.Uint64(h[hdrOffWords:])
	offLabels := binary.LittleEndian.Uint64(h[hdrOffLabels:])
	offSeries := binary.LittleEndian.Uint64(h[hdrOffSeries:])
	maxCount := (uint64(math.MaxInt64) - segHeaderSize) / uint64(8*sl+wl+2*al+4+1)
	if c > maxCount {
		return nil, corrupt(path, "entry count %d implausible", c)
	}
	if offLabelIdx != segHeaderSize ||
		offHist != offLabelIdx+4*c ||
		offWords != offHist+2*c*uint64(al) ||
		offLabels != offWords+c*uint64(wl) {
		return nil, corrupt(path, "block offsets disagree with entry count")
	}
	if offSeries < offLabels || offSeries > size || !aligned(offSeries, 8) ||
		offSeries+8*c*uint64(sl) != size {
		return nil, corrupt(path, "series block offset/size mismatch")
	}

	sg := &segment{
		file:    path,
		m:       m,
		p:       p,
		count:   int(c),
		baseSeq: binary.LittleEndian.Uint64(h[hdrOffBaseSeq:]),
		bodyCRC: binary.LittleEndian.Uint32(h[hdrOffBodyCRC:]),
	}
	sg.labelIdx = u32View(m.data[offLabelIdx:offHist])
	sg.hist = u16View(m.data[offHist:offWords])
	sg.words = m.data[offWords:offLabels]
	sg.series = f64View(m.data[offSeries:size])

	labels, err := decodeLabelTable(path, m.data[offLabels:offSeries], c)
	if err != nil {
		return nil, err
	}
	sg.labels = labels
	for i, li := range sg.labelIdx {
		if li >= uint32(len(labels)) {
			return nil, corrupt(path, "entry %d label index %d out of range (%d labels)", i, li, len(labels))
		}
	}
	for i, b := range sg.words {
		if b < 'a' || int(b-'a') >= al {
			return nil, corrupt(path, "word byte %d out of alphabet range", i)
		}
	}
	return sg, nil
}

// decodeLabelTable parses the deduplicated label table into heap strings
// (labels outlive the mapping, unlike words/series which are served as
// views).
func decodeLabelTable(path string, b []byte, count uint64) ([]string, error) {
	if len(b) < 4 {
		return nil, corrupt(path, "label table truncated")
	}
	n := binary.LittleEndian.Uint32(b)
	if uint64(n) > count || (count > 0 && n == 0) {
		return nil, corrupt(path, "label table has %d labels for %d entries", n, count)
	}
	b = b[4:]
	labels := make([]string, n)
	for i := range labels {
		if len(b) < 4 {
			return nil, corrupt(path, "label table truncated at label %d", i)
		}
		l := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint64(l) > uint64(len(b)) || l == 0 {
			return nil, corrupt(path, "label %d length %d out of range", i, l)
		}
		labels[i] = string(b[:l])
		b = b[l:]
	}
	// Only the 8-byte alignment padding may remain.
	if len(b) >= 8 {
		return nil, corrupt(path, "%d bytes of trailing garbage after label table", len(b))
	}
	for _, pad := range b {
		if pad != 0 {
			return nil, corrupt(path, "nonzero label-table padding")
		}
	}
	return labels, nil
}

// label returns entry i's label (a table string, valid beyond the mapping).
func (sg *segment) label(i int) string { return sg.labels[sg.labelIdx[i]] }

// word returns entry i's SAX symbols as a zero-copy view into the mapping.
func (sg *segment) word(i int) string {
	wl := sg.p.wordLen
	return viewString(sg.words[i*wl : (i+1)*wl])
}

// histAt returns entry i's symbol histogram view (the stage-0 prune index).
func (sg *segment) histAt(i int) []uint16 {
	al := sg.p.alphabet
	return sg.hist[i*al : (i+1)*al]
}

// seriesAt returns entry i's z-normalised series view.
func (sg *segment) seriesAt(i int) timeseries.Series {
	sl := sg.p.seriesLen
	return timeseries.Series(sg.series[i*sl : (i+1)*sl])
}

// close unmaps the segment.
func (sg *segment) close() error { return sg.m.close() }

// checkIntegrity recomputes the body checksum over the mapping — the deep
// verification openSegment deliberately skips.
func (sg *segment) checkIntegrity() error {
	if got := crc32.ChecksumIEEE(sg.m.data[segHeaderSize:]); got != sg.bodyCRC {
		return corrupt(sg.file, "body checksum mismatch (stored %08x, computed %08x)", sg.bodyCRC, got)
	}
	return nil
}

// source adapts the segment to segmentSource, so compaction reads sealed
// entries back through the same interface the builder's accumulator uses.
func (sg *segment) source() segmentSource { return segSource{sg} }

type segSource struct{ sg *segment }

func (s segSource) count() int { return s.sg.count }
func (s segSource) entry(i int) (string, string, []uint16, []float64) {
	sg := s.sg
	return sg.label(i), sg.word(i), sg.histAt(i), sg.seriesAt(i)
}

// writeSegment writes a complete segment file at path (created/truncated)
// from src, with sequence numbers baseSeq…baseSeq+count-1, and returns the
// body checksum recorded in the header. The file is fsynced before return;
// the caller owns tmp-file/rename atomicity.
func writeSegment(path string, p segParams, baseSeq uint64, src segmentSource) (bodyCRC uint32, err error) {
	n := src.count()
	if uint64(n) > math.MaxUint32 {
		return 0, fmt.Errorf("store: segment of %d entries exceeds format limit", n)
	}

	// Pass 1: deduplicated label table.
	labelIdx := make([]uint32, n)
	var labels []string
	labelOf := make(map[string]uint32)
	labelBytes := uint64(4)
	for i := 0; i < n; i++ {
		label, word, hist, series := src.entry(i)
		if label == "" {
			return 0, fmt.Errorf("store: entry %d has empty label", i)
		}
		if len(word) != p.wordLen || len(hist) != p.alphabet || len(series) != p.seriesLen {
			return 0, fmt.Errorf("store: entry %d shape (%d,%d,%d) does not match store parameters (%d,%d,%d)",
				i, len(word), len(hist), len(series), p.wordLen, p.alphabet, p.seriesLen)
		}
		li, ok := labelOf[label]
		if !ok {
			li = uint32(len(labels))
			labelOf[label] = li
			labels = append(labels, label)
			labelBytes += 4 + uint64(len(label))
		}
		labelIdx[i] = li
	}

	c := uint64(n)
	offLabelIdx := uint64(segHeaderSize)
	offHist := offLabelIdx + 4*c
	offWords := offHist + 2*c*uint64(p.alphabet)
	offLabels := offWords + c*uint64(p.wordLen)
	offSeries := (offLabels + labelBytes + 7) &^ 7
	fileSize := offSeries + 8*c*uint64(p.seriesLen)

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if _, err := f.Seek(segHeaderSize, io.SeekStart); err != nil {
		return 0, err
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<20)
	var scratch [8]byte
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		bw.Write(scratch[:4])
	}

	// Pass 2: blocks in file order.
	for _, li := range labelIdx {
		putU32(li)
	}
	for i := 0; i < n; i++ {
		_, _, hist, _ := src.entry(i)
		for _, hv := range hist {
			binary.LittleEndian.PutUint16(scratch[:2], hv)
			bw.Write(scratch[:2])
		}
	}
	for i := 0; i < n; i++ {
		_, word, _, _ := src.entry(i)
		bw.WriteString(word)
	}
	putU32(uint32(len(labels)))
	for _, l := range labels {
		putU32(uint32(len(l)))
		bw.WriteString(l)
	}
	for pad := offSeries - (offLabels + labelBytes); pad > 0; pad-- {
		bw.WriteByte(0)
	}
	for i := 0; i < n; i++ {
		_, _, _, series := src.entry(i)
		for _, v := range series {
			binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(v))
			bw.Write(scratch[:8])
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	bodyCRC = crc.Sum32()

	var h [segHeaderSize]byte
	copy(h[hdrOffMagic:], segMagic)
	binary.LittleEndian.PutUint32(h[hdrOffVersion:], segVersion)
	binary.LittleEndian.PutUint32(h[hdrOffWordLen:], uint32(p.wordLen))
	binary.LittleEndian.PutUint32(h[hdrOffAlphabet:], uint32(p.alphabet))
	binary.LittleEndian.PutUint32(h[hdrOffSeriesLen:], uint32(p.seriesLen))
	binary.LittleEndian.PutUint32(h[hdrOffCount:], uint32(n))
	binary.LittleEndian.PutUint64(h[hdrOffBaseSeq:], baseSeq)
	binary.LittleEndian.PutUint64(h[hdrOffLabelIdx:], offLabelIdx)
	binary.LittleEndian.PutUint64(h[hdrOffHist:], offHist)
	binary.LittleEndian.PutUint64(h[hdrOffWords:], offWords)
	binary.LittleEndian.PutUint64(h[hdrOffLabels:], offLabels)
	binary.LittleEndian.PutUint64(h[hdrOffSeries:], offSeries)
	binary.LittleEndian.PutUint64(h[hdrOffFileSize:], fileSize)
	binary.LittleEndian.PutUint32(h[hdrOffBodyCRC:], bodyCRC)
	binary.LittleEndian.PutUint32(h[hdrOffHeaderCRC:], crc32.ChecksumIEEE(h[:hdrOffHeaderCRC]))
	if _, err := f.WriteAt(h[:], 0); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return bodyCRC, nil
}
