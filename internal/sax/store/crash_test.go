package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hdc/internal/sax"
)

// crash_test.go exercises every crash shape the format is designed to
// survive or reject: torn and corrupted logs, truncated and bit-flipped
// segments, manifests pointing at missing files — recovery must either
// repair (torn tail) or fail with the matching typed error, and must never
// panic. Compaction crashes are simulated by failing the injectable rename
// at each atomic-swap point and verifying a reopen recovers every
// acknowledged entry.

// buildCrashStore creates a store with sealed and tail entries, closed and
// ready for mutilation.
func buildCrashStore(t *testing.T, dir string, sealed, tail int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	const n = 64
	st, err := Create(dir, newTestEncoder(t), n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sealed; i++ {
		if err := st.Add(fmt.Sprintf("s-%d", i%3), randSmoothSeries(rng, n)); err != nil {
			t.Fatal(err)
		}
	}
	if sealed > 0 {
		if err := st.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < tail; i++ {
		if err := st.Add("t", randSmoothSeries(rng, n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// mutate rewrites a byte range of the file in place.
func mutate(t *testing.T, path string, off int64, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverTornWALTail(t *testing.T) {
	for _, cut := range []int64{1, 3, 7} {
		dir := filepath.Join(t.TempDir(), "st")
		buildCrashStore(t, dir, 5, 4)
		wal := filepath.Join(dir, walName)
		fi, err := os.Stat(wal)
		if err != nil {
			t.Fatal(err)
		}
		// Chop mid-record: the interrupted append must vanish, everything
		// before it must survive.
		if err := os.Truncate(wal, fi.Size()-cut); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: open after torn tail: %v", cut, err)
		}
		if st.Len() != 8 {
			t.Fatalf("cut=%d: Len = %d, want 8 (lost only the torn append)", cut, st.Len())
		}
		// The log was truncated to the last whole record, so appends and a
		// reopen keep working.
		if err := st.Add("post", randSmoothSeries(rand.New(rand.NewSource(1)), 64)); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st, err = Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st.Len() != 9 {
			t.Fatalf("cut=%d: Len after repair+append = %d, want 9", cut, st.Len())
		}
		st.Close()
	}
}

func TestRecoverWALBitFlipTreatedAsTear(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "st")
	buildCrashStore(t, dir, 0, 6)
	wal := filepath.Join(dir, walName)
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the 4th record: recovery keeps the first three
	// and truncates from the flip's record onward.
	recSize := fi.Size() / 6
	mutate(t, wal, 3*recSize+20, []byte{0xff})
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after log bit flip: %v", err)
	}
	defer st.Close()
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (records at and after the flip dropped)", st.Len())
	}
}

func TestOpenRejectsTruncatedSegment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "st")
	buildCrashStore(t, dir, 10, 0)
	seg := filepath.Join(dir, "seg-000001.seg")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int64{0, 64, 128, fi.Size() / 2, fi.Size() - 1} {
		if err := os.Truncate(seg, keep); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("keep=%d: err = %v, want ErrCorruptSegment", keep, err)
		}
		// Restore size for the next round (content now zero-padded, which
		// must also be rejected — the header checksum no longer matches).
		if err := os.Truncate(seg, fi.Size()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenRejectsSegmentHeaderCorruption(t *testing.T) {
	cases := []struct {
		name string
		off  int64
		b    []byte
	}{
		{"magic", 0, []byte("XXXXXXXX")},
		{"version", hdrOffVersion, []byte{9}},
		{"count", hdrOffCount, []byte{0xff, 0xff}},
		{"offsets", hdrOffWords, []byte{1}},
		{"filesize", hdrOffFileSize, []byte{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "st")
			buildCrashStore(t, dir, 8, 0)
			mutate(t, filepath.Join(dir, "seg-000001.seg"), tc.off, tc.b)
			if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptSegment) {
				t.Fatalf("err = %v, want ErrCorruptSegment", err)
			}
		})
	}
}

func TestCheckIntegrityCatchesBodyBitFlip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "st")
	buildCrashStore(t, dir, 12, 0)
	seg := filepath.Join(dir, "seg-000001.seg")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// A flip deep in the series block passes the structural open checks…
	mutate(t, seg, fi.Size()-9, []byte{0x5a})
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after body flip: %v", err)
	}
	defer st.Close()
	// …and is caught by the deep verification.
	if err := st.CheckIntegrity(); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("CheckIntegrity = %v, want ErrCorruptSegment", err)
	}
}

func TestOpenRejectsWordSymbolCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "st")
	buildCrashStore(t, dir, 8, 0)
	seg := filepath.Join(dir, "seg-000001.seg")
	// The words block starts right after labelIdx (8×4) and hist (8×6×2)
	// for this fixture; a symbol outside the alphabet must be rejected at
	// open, not panic a later lookup.
	off := int64(segHeaderSize + 8*4 + 8*6*2)
	mutate(t, seg, off, []byte{'z'})
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("err = %v, want ErrCorruptSegment", err)
	}
}

func TestOpenMissingSegment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "st")
	buildCrashStore(t, dir, 5, 0)
	if err := os.Remove(filepath.Join(dir, "seg-000001.seg")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrMissingSegment) {
		t.Fatalf("err = %v, want ErrMissingSegment", err)
	}
}

func TestOpenRejectsManifestDamage(t *testing.T) {
	cases := []struct {
		name    string
		content string
	}{
		{"garbage", "not json at all"},
		{"wrong-version", `{"version":7,"word_len":16,"alphabet":6,"series_len":64,"next_seq":1,"next_seg_id":1,"segments":[]}`},
		{"bad-params", `{"version":2,"word_len":0,"alphabet":6,"series_len":64,"next_seq":1,"next_seg_id":1,"segments":[]}`},
		{"seq-gap", `{"version":2,"word_len":16,"alphabet":6,"series_len":64,"next_seq":9,"next_seg_id":2,"segments":[{"file":"seg-000001.seg","entries":5,"base_seq":3,"crc":0}]}`},
		{"path-escape", `{"version":2,"word_len":16,"alphabet":6,"series_len":64,"next_seq":6,"next_seg_id":2,"segments":[{"file":"../seg-000001.seg","entries":5,"base_seq":1,"crc":0}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "st")
			buildCrashStore(t, dir, 5, 0)
			if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptManifest) {
				t.Fatalf("err = %v, want ErrCorruptManifest", err)
			}
		})
	}
}

// TestCompactionCrashRecovery fails the injected rename at each atomic-swap
// point of a compaction, then reopens the directory: every acknowledged
// entry must survive, exactly once, regardless of which step "crashed".
func TestCompactionCrashRecovery(t *testing.T) {
	const n = 64
	// Renames per compaction: 1 = segment seal, 2 = manifest swap (the
	// commit point), 3 = log rewrite.
	for failAt := 1; failAt <= 3; failAt++ {
		t.Run(fmt.Sprintf("failAt=%d", failAt), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(failAt)))
			dir := filepath.Join(t.TempDir(), "st")
			st, db := buildPair(t, rng, dir, 20, n, Options{})
			calls := 0
			st.renameFn = func(old, new string) error {
				calls++
				if calls == failAt {
					if failAt == 3 {
						// Crash AFTER the swap took effect: the new file is
						// in place but the "process" dies before learning it.
						_ = os.Rename(old, new)
					}
					return errors.New("injected crash")
				}
				return os.Rename(old, new)
			}
			if err := st.Compact(); err == nil {
				t.Fatal("compaction with injected crash must report the failure")
			}
			// Past the commit point the store refuses writes; before it, it
			// keeps working — either way, a reopen must recover everything.
			_ = st.Close()
			st2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after crashed compaction: %v", err)
			}
			defer st2.Close()
			if st2.Len() != 20 {
				t.Fatalf("Len after recovery = %d, want 20", st2.Len())
			}
			checkEquivalence(t, "recovered", st2, db, rng, n)
			// The recovered store compacts cleanly.
			if err := st2.Compact(); err != nil {
				t.Fatal(err)
			}
			if st2.Stats().Tail != 0 {
				t.Fatal("tail not sealed after recovery compaction")
			}
			checkEquivalence(t, "recovered+compacted", st2, db, rng, n)
		})
	}
}

// TestConcurrentAddLookupCompact drives appends, lookups and compactions in
// parallel under the race detector.
func TestConcurrentAddLookupCompact(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(8))
	dir := filepath.Join(t.TempDir(), "st")
	st, err := Create(dir, newTestEncoder(t), n, Options{CompactEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-generate queries; rand.Rand is not goroutine-safe.
	queries := make([]struct {
		z  []float64
		qw sax.Word
	}, 8)
	for i := range queries {
		z := randSmoothSeries(rng, n).ZNormalize()
		qw, err := st.Encoder().Encode(z)
		if err != nil {
			t.Fatal(err)
		}
		queries[i].z = z
		queries[i].qw = qw
	}
	adds := make([][]float64, 200)
	for i := range adds {
		adds[i] = randSmoothSeries(rng, n)
	}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i, s := range adds {
			if err := st.Add(fmt.Sprintf("c-%d", i%5), s); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		sc := sax.NewLookupScratch()
		var buf []sax.Match
		for i := 0; i < 400; i++ {
			q := queries[i%len(queries)]
			var err error
			buf, err = st.LookupKZWith(sc, q.z, q.qw, 3, buf[:0])
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := st.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 200 {
		t.Fatalf("Len = %d, want 200", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 200 {
		t.Fatalf("Len after reopen = %d, want 200", st2.Len())
	}
}
