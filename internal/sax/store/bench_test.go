package store

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"testing"

	"hdc/internal/sax"
	"hdc/internal/timeseries"
)

// bench_test.go measures the store's two hot paths: lookups over mapped
// segments (BenchmarkStoreLookup*, which must hold the cascade's
// zero-allocation steady state) and cold opens (BenchmarkStoreOpen — the
// property that motivates the format: a replica restart maps the dictionary
// instead of re-parsing JSON). The large fixture store is built once per
// process and shared by every benchmark and -count rerun.

// benchStores caches built store directories by entry count.
var benchStores sync.Map // int -> string (dir)
var benchStoreMu sync.Mutex

// benchStoreDir returns (building on first use) a sealed store of n entries
// with the same shape profile as the sax package's benchDB: 128-sample
// smooth contours over n/3+1 labels.
func benchStoreDir(b *testing.B, n int) string {
	b.Helper()
	benchStoreMu.Lock()
	defer benchStoreMu.Unlock()
	if dir, ok := benchStores.Load(n); ok {
		return dir.(string)
	}
	dir, err := os.MkdirTemp("", fmt.Sprintf("hdc-bench-store-%d-", n))
	if err != nil {
		b.Fatal(err)
	}
	enc, err := sax.NewEncoder(16, 6)
	if err != nil {
		b.Fatal(err)
	}
	bl, err := NewBuilder(dir, enc, 128, BuilderOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	nLabels := n/3 + 1
	for i := 0; i < n; i++ {
		if err := bl.AddSeries(fmt.Sprintf("sign-%02d", i%nLabels), randSmoothSeries(rng, 128)); err != nil {
			b.Fatal(err)
		}
	}
	if err := bl.Commit(); err != nil {
		b.Fatal(err)
	}
	benchStores.Store(n, dir)
	return dir
}

func TestMain(m *testing.M) {
	code := m.Run()
	benchStores.Range(func(_, dir any) bool {
		os.RemoveAll(dir.(string))
		return true
	})
	os.Exit(code)
}

// benchmarkStoreLookup times the mapped cascade (steady state must report
// 0 allocs/op: stage 0 runs over the mmap prune index, views reuse scratch).
func benchmarkStoreLookup(b *testing.B, entries int) {
	st, err := Open(benchStoreDir(b, entries), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	rng := rand.New(rand.NewSource(11))
	z := randSmoothSeries(rng, 128).ZNormalize()
	qw, err := st.Encoder().Encode(z)
	if err != nil {
		b.Fatal(err)
	}
	sc := sax.NewLookupScratch()
	if _, err := st.LookupZWith(sc, z, qw, math.Inf(1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = st.LookupZWith(sc, z, qw, math.Inf(1))
	}
}

func BenchmarkStoreLookup1k(b *testing.B)   { benchmarkStoreLookup(b, 1000) }
func BenchmarkStoreLookup100k(b *testing.B) { benchmarkStoreLookup(b, 100_000) }

// BenchmarkStoreOpen times a cold open of the 100k-entry store: manifest
// load, segment mapping and structural validation — no entry decode, which
// is the point of the format.
func BenchmarkStoreOpen(b *testing.B) {
	dir := benchStoreDir(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreLookupParallel mirrors the sax package's parallel benchmark:
// GOMAXPROCS goroutines with private scratches over the mapped dictionary.
func BenchmarkStoreLookupParallel(b *testing.B) {
	st, err := Open(benchStoreDir(b, 1000), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	rng := rand.New(rand.NewSource(11))
	z := randSmoothSeries(rng, 128).ZNormalize()
	qw, err := st.Encoder().Encode(z)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sc := sax.NewLookupScratch()
		for pb.Next() {
			_, _ = st.LookupZWith(sc, z, qw, math.Inf(1))
		}
	})
}

// BenchmarkStoreAdd times the append path (log write + tail precompute).
func BenchmarkStoreAdd(b *testing.B) {
	dir := b.TempDir()
	enc, err := sax.NewEncoder(16, 6)
	if err != nil {
		b.Fatal(err)
	}
	st, err := Create(dir, enc, 128, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	s := make(timeseries.Series, 128)
	rng := rand.New(rand.NewSource(3))
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Add("bench", s); err != nil {
			b.Fatal(err)
		}
	}
}
