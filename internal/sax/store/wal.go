package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"hdc/internal/timeseries"
)

// wal.go implements the store's write-ahead log: Add appends land here (and
// in the in-memory tail) until compaction folds them into a sealed segment.
// Each record is length-prefixed and checksummed:
//
//	u32 payloadLen ‖ u32 crc32(payload) ‖ payload
//	payload: u64 seq ‖ u32 labelLen ‖ label ‖ wordLen bytes ‖ seriesLen × f64
//
// Recovery walks the log from the front. A record that fails its length or
// checksum is taken as a torn tail from an interrupted append: the log is
// truncated there and everything before it is kept — the crash loses at most
// the append that was in flight, never sealed data. Records whose seq
// precedes the manifest's next_seq are skipped: they were already folded
// into a segment by a compaction that crashed after swapping the manifest
// but before rewriting the log, so replaying them would duplicate entries.

// walName is the log's file name within a store directory.
const walName = "wal.log"

// walRecord is one recovered append.
type walRecord struct {
	seq    uint64
	label  string
	word   string
	series timeseries.Series
}

// wal is the open, append-only log handle.
type wal struct {
	f    *os.File
	sync bool // fsync after every append
}

// openWAL opens (creating if absent) the log for appending.
func openWAL(dir string, syncWrites bool) (*wal, error) {
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, sync: syncWrites}, nil
}

// append writes one record. The buffer layout matches replayWAL.
func (w *wal) append(seq uint64, label, word string, series timeseries.Series) error {
	payload := 8 + 4 + len(label) + len(word) + 8*len(series)
	buf := make([]byte, 8+payload)
	binary.LittleEndian.PutUint32(buf[0:], uint32(payload))
	p := buf[8:]
	binary.LittleEndian.PutUint64(p[0:], seq)
	binary.LittleEndian.PutUint32(p[8:], uint32(len(label)))
	copy(p[12:], label)
	off := 12 + len(label)
	copy(p[off:], word)
	off += len(word)
	for _, v := range series {
		binary.LittleEndian.PutUint64(p[off:], math.Float64bits(v))
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(p))
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

// close closes the log handle.
func (w *wal) close() error { return w.f.Close() }

// replayWAL reads the log at dir, returning the records with seq ≥ skipBelow
// in order. A torn tail (short read or checksum mismatch at the end) is
// truncated in place; a structurally invalid record that passes its checksum
// is real corruption and fails with ErrCorruptWAL. Returns the records and
// the post-truncation log length.
func replayWAL(dir string, p segParams, skipBelow uint64) ([]walRecord, int64, error) {
	path := filepath.Join(dir, walName)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()

	var (
		recs    []walRecord
		good    int64 // offset after the last whole, checksum-valid record
		br      = bufio.NewReaderSize(f, 1<<20)
		hdr     [8]byte
		lastSeq uint64
	)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break // clean EOF or torn length prefix — truncate here
		}
		plen := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if plen < 12 || plen > uint32(12+maxLabelLen+p.wordLen+8*p.seriesLen) {
			break // implausible length: torn or scribbled tail
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			break // torn or bit-flipped tail
		}
		rec, err := decodeWALPayload(payload, p)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %s: offset %d: %v", ErrCorruptWAL, path, good, err)
		}
		good += int64(8 + plen)
		if rec.seq < skipBelow {
			continue // already sealed into a segment
		}
		if len(recs) > 0 && rec.seq <= lastSeq {
			return nil, 0, fmt.Errorf("%w: %s: sequence %d not increasing", ErrCorruptWAL, path, rec.seq)
		}
		lastSeq = rec.seq
		recs = append(recs, rec)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	if fi.Size() > good {
		if err := os.Truncate(path, good); err != nil {
			return nil, 0, fmt.Errorf("store: truncating torn log tail: %w", err)
		}
	}
	return recs, good, nil
}

// maxLabelLen bounds a plausible label inside a log record, so a scribbled
// length prefix is recognised as a torn tail instead of driving a huge
// allocation.
const maxLabelLen = 1 << 20

// decodeWALPayload parses and validates one checksum-verified payload.
func decodeWALPayload(p []byte, sp segParams) (walRecord, error) {
	var r walRecord
	r.seq = binary.LittleEndian.Uint64(p[0:])
	ll := int(binary.LittleEndian.Uint32(p[8:]))
	rest := p[12:]
	if ll == 0 || ll > len(rest) {
		return r, fmt.Errorf("label length %d out of range", ll)
	}
	r.label = string(rest[:ll])
	rest = rest[ll:]
	if len(rest) != sp.wordLen+8*sp.seriesLen {
		return r, fmt.Errorf("record size does not match store parameters")
	}
	for _, b := range rest[:sp.wordLen] {
		if b < 'a' || int(b-'a') >= sp.alphabet {
			return r, fmt.Errorf("word symbol out of alphabet range")
		}
	}
	r.word = string(rest[:sp.wordLen])
	rest = rest[sp.wordLen:]
	r.series = make(timeseries.Series, sp.seriesLen)
	for i := range r.series {
		r.series[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	return r, nil
}

// rewriteWAL atomically replaces the log with one containing exactly recs
// (the tail that survived a compaction). The new log is written beside the
// old and swapped in with rename; renameFn is the store's injectable rename
// (crash-testing hook).
func rewriteWAL(dir string, recs []walRecord, syncWrites bool, renameFn func(old, new string) error) error {
	tmp := filepath.Join(dir, walName+".tmp")
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := &wal{f: f, sync: false}
	for _, r := range recs {
		if err := w.append(r.seq, r.label, r.word, r.series); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := renameFn(tmp, filepath.Join(dir, walName)); err != nil {
		return err
	}
	return syncDir(dir)
}
