package sax

import (
	"math"
	"math/rand"
	"testing"

	"hdc/internal/timeseries"
)

func benchSeries(n int) timeseries.Series {
	rng := rand.New(rand.NewSource(1))
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func BenchmarkEncode128(b *testing.B) {
	enc, err := NewEncoder(16, 5)
	if err != nil {
		b.Fatal(err)
	}
	s := benchSeries(128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinDist(b *testing.B) {
	enc, _ := NewEncoder(16, 5)
	s1, s2 := benchSeries(128), benchSeries(128)
	w1, _ := enc.Encode(s1)
	w2, _ := enc.Encode(s2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.MinDist(w1, w2, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinDistRotationMirror(b *testing.B) {
	enc, _ := NewEncoder(16, 5)
	s1, s2 := benchSeries(128), benchSeries(128)
	w1, _ := enc.Encode(s1)
	w2, _ := enc.Encode(s2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := enc.MinDistRotationMirror(w1, w2, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDB builds a database of n random smooth shapes spread over n/3+1
// labels — the fleet-scale dictionary profile (many exemplars per sign,
// per-site custom signs) the sharded cascade is designed for.
func benchDB(b *testing.B, n int) *Database {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	db := buildRandomDB(b, rng, n, n/3+1, 128)
	return db
}

// benchQuery prepares a z-normalised query and its word.
func benchQuery(b *testing.B, db *Database) (timeseries.Series, Word) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	z := randSmoothSeries(rng, 128).ZNormalize()
	qw, err := db.Encoder().Encode(z)
	if err != nil {
		b.Fatal(err)
	}
	return z, qw
}

// benchmarkLookup times the cascade's scratch path (the steady state must
// report 0 allocs/op).
func benchmarkLookup(b *testing.B, entries int) {
	db := benchDB(b, entries)
	z, qw := benchQuery(b, db)
	sc := NewLookupScratch()
	if _, err := db.LookupZWith(sc, z, qw, math.Inf(1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = db.LookupZWith(sc, z, qw, math.Inf(1))
	}
}

func BenchmarkDatabaseLookup10(b *testing.B)   { benchmarkLookup(b, 10) }
func BenchmarkDatabaseLookup100(b *testing.B)  { benchmarkLookup(b, 100) }
func BenchmarkDatabaseLookup1000(b *testing.B) { benchmarkLookup(b, 1000) }

// benchmarkLookupLinear times the retained linear-scan reference — the
// baseline the cascade's speedup is measured against.
func benchmarkLookupLinear(b *testing.B, entries int) {
	db := benchDB(b, entries)
	z, qw := benchQuery(b, db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = db.LookupZLinear(z, qw, math.Inf(1))
	}
}

func BenchmarkDatabaseLookupLinear10(b *testing.B)   { benchmarkLookupLinear(b, 10) }
func BenchmarkDatabaseLookupLinear100(b *testing.B)  { benchmarkLookupLinear(b, 100) }
func BenchmarkDatabaseLookupLinear1000(b *testing.B) { benchmarkLookupLinear(b, 1000) }

// BenchmarkLookupParallel measures the shard-striped store under the
// pipeline's access pattern: GOMAXPROCS goroutines, each with its own
// scratch, hammering lookups concurrently on a 1000-entry dictionary.
func BenchmarkLookupParallel(b *testing.B) {
	db := benchDB(b, 1000)
	z, qw := benchQuery(b, db)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sc := NewLookupScratch()
		for pb.Next() {
			_, _ = db.LookupZWith(sc, z, qw, math.Inf(1))
		}
	})
}

// BenchmarkLookupK2 times the top-2 lookup the recogniser's confidence
// margin rides on.
func BenchmarkLookupK2(b *testing.B) {
	db := benchDB(b, 100)
	z, qw := benchQuery(b, db)
	sc := NewLookupScratch()
	var topk [2]Match
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = db.LookupKZWith(sc, z, qw, 2, topk[:0])
	}
}
