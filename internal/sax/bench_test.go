package sax

import (
	"math"
	"math/rand"
	"testing"

	"hdc/internal/timeseries"
)

func benchSeries(n int) timeseries.Series {
	rng := rand.New(rand.NewSource(1))
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func BenchmarkEncode128(b *testing.B) {
	enc, err := NewEncoder(16, 5)
	if err != nil {
		b.Fatal(err)
	}
	s := benchSeries(128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinDist(b *testing.B) {
	enc, _ := NewEncoder(16, 5)
	s1, s2 := benchSeries(128), benchSeries(128)
	w1, _ := enc.Encode(s1)
	w2, _ := enc.Encode(s2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.MinDist(w1, w2, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinDistRotationMirror(b *testing.B) {
	enc, _ := NewEncoder(16, 5)
	s1, s2 := benchSeries(128), benchSeries(128)
	w1, _ := enc.Encode(s1)
	w2, _ := enc.Encode(s2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := enc.MinDistRotationMirror(w1, w2, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatabaseLookup(b *testing.B) {
	enc, _ := NewEncoder(16, 5)
	db, err := NewDatabase(enc, 128)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		kind := []string{"two-lobe", "three-lobe", "spike"}[i%3]
		s := make(timeseries.Series, 128)
		for j := range s {
			t := 2 * math.Pi * float64(j) / 128
			switch kind {
			case "two-lobe":
				s[j] = 1 + 0.5*math.Cos(2*t+float64(i))
			case "three-lobe":
				s[j] = 1 + 0.5*math.Cos(3*t+float64(i))
			default:
				s[j] = 1 + 0.8*math.Exp(-10*(t-math.Pi)*(t-math.Pi))
			}
		}
		if err := db.Add(kind, s); err != nil {
			b.Fatal(err)
		}
	}
	q := benchSeries(128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = db.Lookup(q, math.Inf(1))
	}
}
