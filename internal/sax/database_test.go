package sax

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hdc/internal/timeseries"
)

// synthetic shape signatures: distinguishable periodic profiles emulating
// centroid-distance signatures of different signs.
func shapeSignature(kind string, n int, phase float64, noise float64, rng *rand.Rand) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		t := 2*math.Pi*float64(i)/float64(n) + phase
		var v float64
		switch kind {
		case "two-lobe":
			v = 1 + 0.5*math.Cos(2*t)
		case "three-lobe":
			v = 1 + 0.5*math.Cos(3*t)
		case "spike":
			v = 1 + 0.8*math.Exp(-10*math.Pow(math.Mod(t, 2*math.Pi)-math.Pi, 2))
		default:
			v = 1
		}
		if noise > 0 && rng != nil {
			v += noise * rng.NormFloat64()
		}
		s[i] = v
	}
	return s
}

func newTestDB(t *testing.T) *Database {
	t.Helper()
	enc, err := NewEncoder(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(enc, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"two-lobe", "three-lobe", "spike"} {
		if err := db.Add(kind, shapeSignature(kind, 128, 0, 0, nil)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestDatabaseLookupExact(t *testing.T) {
	db := newTestDB(t)
	for _, kind := range []string{"two-lobe", "three-lobe", "spike"} {
		m, err := db.Lookup(shapeSignature(kind, 128, 0, 0, nil), 1.0)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.Label != kind {
			t.Fatalf("lookup(%s) = %s", kind, m.Label)
		}
		if !almostEq(m.Dist, 0, 1e-6) {
			t.Fatalf("%s: self distance %v", kind, m.Dist)
		}
	}
}

func TestDatabaseLookupRotationInvariant(t *testing.T) {
	db := newTestDB(t)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		phase := rng.Float64() * 2 * math.Pi
		kind := []string{"two-lobe", "three-lobe", "spike"}[trial%3]
		q := shapeSignature(kind, 128, phase, 0, nil)
		m, err := db.Lookup(q, 2.0)
		if err != nil {
			t.Fatalf("%s phase %.2f: %v", kind, phase, err)
		}
		if m.Label != kind {
			t.Fatalf("%s phase %.2f matched %s", kind, phase, m.Label)
		}
	}
}

func TestDatabaseLookupNoisy(t *testing.T) {
	db := newTestDB(t)
	rng := rand.New(rand.NewSource(37))
	correct := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		kind := []string{"two-lobe", "three-lobe", "spike"}[trial%3]
		q := shapeSignature(kind, 128, rng.Float64()*2*math.Pi, 0.05, rng)
		m, err := db.Lookup(q, 5.0)
		if err == nil && m.Label == kind {
			correct++
		}
	}
	if correct < trials*9/10 {
		t.Fatalf("noisy accuracy %d/%d below 90%%", correct, trials)
	}
}

func TestDatabaseLookupThreshold(t *testing.T) {
	db := newTestDB(t)
	// A pure random signature should be far from everything under a tight
	// threshold.
	rng := rand.New(rand.NewSource(41))
	q := randSeries(rng, 128)
	m, err := db.Lookup(q, 0.01)
	if !errors.Is(err, ErrNoMatch) {
		t.Fatalf("expected ErrNoMatch, got %v (match %+v)", err, m)
	}
	// Diagnostics still carried in the rejected match.
	if m.Label == "" {
		t.Fatal("rejected lookup should still report nearest candidate")
	}
}

func TestDatabaseLookupEmpty(t *testing.T) {
	enc, _ := NewEncoder(8, 4)
	db, _ := NewDatabase(enc, 64)
	if _, err := db.Lookup(timeseries.Series{1, 2, 3}, 1); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("empty db lookup: %v", err)
	}
	if _, err := db.Lookup(nil, 1); err == nil {
		t.Fatal("nil query should fail")
	}
}

func TestDatabaseAddValidation(t *testing.T) {
	enc, _ := NewEncoder(8, 4)
	db, _ := NewDatabase(enc, 64)
	if err := db.Add("", timeseries.Series{1, 2}); err == nil {
		t.Error("empty label should fail")
	}
	if err := db.Add("x", nil); err == nil {
		t.Error("nil series should fail")
	}
	if db.Len() != 0 {
		t.Error("failed adds must not register entries")
	}
}

func TestNewDatabaseValidation(t *testing.T) {
	enc, _ := NewEncoder(8, 4)
	if _, err := NewDatabase(nil, 64); err == nil {
		t.Error("nil encoder should fail")
	}
	if _, err := NewDatabase(enc, 4); err == nil {
		t.Error("series length below word length should fail")
	}
}

func TestDatabaseEntriesSortedCopy(t *testing.T) {
	db := newTestDB(t)
	e1 := db.Entries()
	if len(e1) != 3 {
		t.Fatalf("entries = %d", len(e1))
	}
	for i := 1; i < len(e1); i++ {
		if e1[i].Label < e1[i-1].Label {
			t.Fatal("entries not sorted")
		}
	}
	// Mutating the copy must not corrupt the database.
	e1[0].Label = "hacked"
	e2 := db.Entries()
	if e2[0].Label == "hacked" {
		t.Fatal("Entries leaked internal state")
	}
}

func TestPairwiseMatrices(t *testing.T) {
	db := newTestDB(t)
	labels, md, err := db.PairwiseMinDist()
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 3 || len(md) != 3 {
		t.Fatalf("matrix shape wrong")
	}
	_, ed, err := db.PairwiseExactDist()
	if err != nil {
		t.Fatal(err)
	}
	for i := range md {
		if md[i][i] != 0 || ed[i][i] != 0 {
			t.Fatal("diagonal must be zero")
		}
		for j := range md[i] {
			if md[i][j] != md[j][i] || ed[i][j] != ed[j][i] {
				t.Fatal("matrices must be symmetric")
			}
			// MINDIST lower-bounds the exact distance.
			if i != j && md[i][j] > ed[i][j]+1e-9 {
				t.Fatalf("MINDIST %v exceeds exact %v", md[i][j], ed[i][j])
			}
		}
	}
	// Distinct shapes must be separated (uniqueness, E8 precondition).
	for i := range ed {
		for j := range ed[i] {
			if i != j && ed[i][j] < 1 {
				t.Fatalf("shapes %s and %s too close: %v", labels[i], labels[j], ed[i][j])
			}
		}
	}
}

func TestDatabaseConcurrentAccess(t *testing.T) {
	db := newTestDB(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = db.Add("two-lobe", shapeSignature("two-lobe", 128, float64(i), 0, nil))
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := db.Lookup(shapeSignature("spike", 128, 0, 0, nil), 1.0); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

func TestStreamEncoderNumerosity(t *testing.T) {
	enc, _ := NewEncoder(4, 4)
	se, err := NewStreamEncoder(enc, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A long constant stream: every window symbolises identically → only the
	// first word is emitted.
	samples := make([]float64, 200)
	words, err := se.Push(samples...)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 1 {
		t.Fatalf("constant stream emitted %d words, want 1", len(words))
	}
	windows, emitted := se.Stats()
	if windows < 10 || emitted != 1 {
		t.Fatalf("stats = (%d,%d)", windows, emitted)
	}
	// A changing stream emits more.
	se.Reset()
	varied := make([]float64, 200)
	for i := range varied {
		varied[i] = math.Sin(float64(i) / 3)
	}
	words, err = se.Push(varied...)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) < 2 {
		t.Fatalf("varied stream emitted %d words", len(words))
	}
}

func TestStreamEncoderValidation(t *testing.T) {
	enc, _ := NewEncoder(8, 4)
	if _, err := NewStreamEncoder(nil, 16, 1); err == nil {
		t.Error("nil encoder should fail")
	}
	if _, err := NewStreamEncoder(enc, 4, 1); err == nil {
		t.Error("window < segments should fail")
	}
	if _, err := NewStreamEncoder(enc, 16, 0); err == nil {
		t.Error("step 0 should fail")
	}
}

func TestTuneGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	kinds := []string{"two-lobe", "three-lobe", "spike"}
	var refs, eval []LabeledSeries
	for _, k := range kinds {
		refs = append(refs, LabeledSeries{Label: k, Series: shapeSignature(k, 128, 0, 0, nil)})
		for i := 0; i < 5; i++ {
			eval = append(eval, LabeledSeries{
				Label:  k,
				Series: shapeSignature(k, 128, rng.Float64()*2*math.Pi, 0.03, rng),
			})
		}
	}
	res, err := TuneGrid(refs, eval, []int{8, 16}, []int{4, 6}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("grid size %d, want 4", len(res))
	}
	// Sorted by accuracy desc.
	for i := 1; i < len(res); i++ {
		if res[i].Accuracy > res[i-1].Accuracy+1e-12 {
			t.Fatal("results not sorted by accuracy")
		}
	}
	if res[0].Accuracy < 0.9 {
		t.Fatalf("best grid cell accuracy %v < 0.9", res[0].Accuracy)
	}
}

func TestTuneGridValidation(t *testing.T) {
	if _, err := TuneGrid(nil, nil, []int{4}, []int{4}, 64); err == nil {
		t.Fatal("empty sets should fail")
	}
}
