package sax

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"hdc/internal/timeseries"
)

// Entry is one labelled reference shape in the database: its SAX word plus
// the normalised reference series the word was derived from, kept for exact
// rotation-alignment confirmation.
type Entry struct {
	Label  string
	Word   Word
	Series timeseries.Series // z-normalised reference signature

	// revSeries and revWord cache the mirrored candidate (reversed, rotated
	// by one so a pure reflection sits at shift 0 — see
	// timeseries.MinRotationMirrorDistWindow), sparing every lookup the
	// mirror allocation per entry.
	revSeries timeseries.Series
	revWord   Word
}

// Match is the result of a database lookup.
type Match struct {
	Label    string
	Word     Word
	WordDist float64 // MINDIST lower bound (rotation-minimised)
	Dist     float64 // exact rotation-minimised Euclidean distance
	Shift    int     // series-level circular shift of the best alignment
	Mirrored bool    // true when the mirror candidate won
}

// ErrNoMatch is returned by Lookup when no entry passes the acceptance
// threshold.
var ErrNoMatch = errors.New("sax: no match within threshold")

// Database is a thread-safe collection of labelled reference words/series
// with rotation- and mirror-invariant nearest lookup. It is the "database of
// strings" from the paper's §IV against which captured signs are compared.
type Database struct {
	mu        sync.RWMutex
	enc       *Encoder
	n         int     // canonical series length
	shiftFrac float64 // fraction of the series length the shift search may cover (≤0: full)
	entries   []Entry
}

// NewDatabase creates a database for signatures of length n symbolised by
// enc.
func NewDatabase(enc *Encoder, n int) (*Database, error) {
	if enc == nil {
		return nil, errors.New("sax: nil encoder")
	}
	if n < enc.Segments() {
		return nil, fmt.Errorf("sax: series length %d below word length %d", n, enc.Segments())
	}
	return &Database{enc: enc, n: n}, nil
}

// Encoder returns the database's encoder.
func (db *Database) Encoder() *Encoder { return db.enc }

// SetShiftWindowFrac restricts the rotation-alignment search to ±frac of the
// signature length (0 or negative restores the full search). Bounding the
// window preserves tolerance to modest in-plane rotation while preventing a
// gross rotation from aliasing one sign's lobe pattern onto another's.
func (db *Database) SetShiftWindowFrac(frac float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.shiftFrac = frac
}

// seriesShift returns the series-level shift bound (-1 = unbounded).
func (db *Database) seriesShift() int {
	if db.shiftFrac <= 0 {
		return -1
	}
	return int(db.shiftFrac * float64(db.n))
}

// wordShift returns the word-level shift bound matching seriesShift, with a
// one-symbol safety margin (-1 = unbounded).
func (db *Database) wordShift() int {
	if db.shiftFrac <= 0 {
		return -1
	}
	return int(db.shiftFrac*float64(db.enc.Segments())) + 1
}

// SeriesLen returns the canonical signature length.
func (db *Database) SeriesLen() int { return db.n }

// Len returns the number of entries.
func (db *Database) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Add registers a labelled reference series. The series is resampled to the
// canonical length, z-normalised, encoded and stored. Duplicate labels are
// allowed (multiple exemplars per sign).
func (db *Database) Add(label string, s timeseries.Series) error {
	if label == "" {
		return errors.New("sax: empty label")
	}
	rs, err := s.ResampleLinear(db.n)
	if err != nil {
		return fmt.Errorf("sax: add %q: %w", label, err)
	}
	z := rs.ZNormalize()
	w, err := db.enc.Encode(z)
	if err != nil {
		return fmt.Errorf("sax: add %q: %w", label, err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries = append(db.entries, newEntry(label, w, z))
	return nil
}

// newEntry builds an entry with its mirrored candidate precomputed.
func newEntry(label string, w Word, z timeseries.Series) Entry {
	return Entry{
		Label:     label,
		Word:      w,
		Series:    z,
		revSeries: z.Reverse().Rotate(-1),
		revWord:   w.Reverse().Rotate(-1),
	}
}

// Entries returns a copy of the registered entries, sorted by label then
// word, for reporting.
func (db *Database) Entries() []Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Entry, len(db.entries))
	copy(out, db.entries)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Word.Symbols < out[j].Word.Symbols
	})
	return out
}

// Lookup finds the nearest entry to the query series under the rotation- and
// mirror-invariant exact distance, using MINDIST word pruning first. Entries
// whose exact distance exceeds threshold are rejected; if none survive,
// ErrNoMatch is returned together with the best (rejected) candidate for
// diagnostics.
func (db *Database) Lookup(q timeseries.Series, threshold float64) (Match, error) {
	rs, err := q.ResampleLinear(db.n)
	if err != nil {
		return Match{}, err
	}
	z := rs.ZNormalize()
	qw, err := db.enc.Encode(z)
	if err != nil {
		return Match{}, err
	}
	return db.LookupZ(z, qw, threshold)
}

// LookupZ is Lookup for a query already resampled to the canonical length
// and z-normalised, with its word precomputed — the recogniser's hot path,
// which has both at hand and skips the re-preparation Lookup performs. The
// scan holds the database read lock, so concurrent LookupZ calls proceed in
// parallel while Add blocks until they finish.
func (db *Database) LookupZ(z timeseries.Series, qw Word, threshold float64) (Match, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()

	if len(db.entries) == 0 {
		return Match{}, ErrNoMatch
	}
	wordWin, seriesWin := db.wordShift(), db.seriesShift()

	// Stage 1: MINDIST (rotation+mirror minimised) lower bound per entry.
	type cand struct {
		idx int
		lb  float64
	}
	cands := make([]cand, 0, len(db.entries))
	for i := range db.entries {
		e := &db.entries[i]
		lb, _, err := db.enc.MinDistRotationWindow(qw, e.Word, db.n, wordWin)
		if err != nil {
			return Match{}, err
		}
		if lbRev, _, err := db.enc.MinDistRotationWindow(qw, e.revWord, db.n, wordWin); err != nil {
			return Match{}, err
		} else if lbRev < lb {
			lb = lbRev
		}
		cands = append(cands, cand{idx: i, lb: lb})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lb < cands[j].lb })

	// Stage 2: exact rotation/mirror alignment in lower-bound order with
	// pruning: once an exact distance is at hand, any candidate whose lower
	// bound exceeds it cannot win.
	best := Match{Dist: math.Inf(1), WordDist: math.Inf(1)}
	for _, c := range cands {
		if c.lb >= best.Dist {
			break
		}
		e := &db.entries[c.idx]
		d, shift, err := timeseries.MinRotationDistWindow(z, e.Series, seriesWin)
		if err != nil {
			return Match{}, err
		}
		mirrored := false
		if dRev, sRev, err := timeseries.MinRotationDistWindow(z, e.revSeries, seriesWin); err != nil {
			return Match{}, err
		} else if dRev < d {
			d, shift, mirrored = dRev, sRev, true
		}
		if d < best.Dist {
			best = Match{
				Label:    e.Label,
				Word:     e.Word,
				WordDist: c.lb,
				Dist:     d,
				Shift:    shift,
				Mirrored: mirrored,
			}
		}
	}
	if math.IsInf(best.Dist, 1) || best.Dist > threshold {
		return best, ErrNoMatch
	}
	return best, nil
}

// PairwiseMinDist returns a symmetric matrix of rotation-invariant MINDIST
// values between all entries (diagnostics for the sign-uniqueness
// experiment, E8).
func (db *Database) PairwiseMinDist() (labels []string, d [][]float64, err error) {
	entries := db.Entries()
	labels = make([]string, len(entries))
	d = make([][]float64, len(entries))
	for i := range entries {
		labels[i] = entries[i].Label
		d[i] = make([]float64, len(entries))
	}
	for i := range entries {
		for j := i + 1; j < len(entries); j++ {
			v, _, _, merr := db.enc.MinDistRotationMirrorWindow(entries[i].Word, entries[j].Word, db.n, db.wordShift())
			if merr != nil {
				return nil, nil, merr
			}
			d[i][j] = v
			d[j][i] = v
		}
	}
	return labels, d, nil
}

// PairwiseExactDist returns the rotation/mirror-minimised exact Euclidean
// distance matrix between entries.
func (db *Database) PairwiseExactDist() (labels []string, d [][]float64, err error) {
	entries := db.Entries()
	labels = make([]string, len(entries))
	d = make([][]float64, len(entries))
	for i := range entries {
		labels[i] = entries[i].Label
		d[i] = make([]float64, len(entries))
	}
	for i := range entries {
		for j := i + 1; j < len(entries); j++ {
			v, _, _, merr := timeseries.MinRotationMirrorDistWindow(entries[i].Series, entries[j].Series, db.seriesShift())
			if merr != nil {
				return nil, nil, merr
			}
			d[i][j] = v
			d[j][i] = v
		}
	}
	return labels, d, nil
}
