package sax

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"hdc/internal/timeseries"
)

// Entry is one labelled reference shape in the database: its SAX word plus
// the normalised reference series the word was derived from, kept for exact
// rotation-alignment confirmation.
type Entry struct {
	Label  string
	Word   Word
	Series timeseries.Series // z-normalised reference signature

	// revSeries and revWord cache the mirrored candidate (reversed, rotated
	// by one so a pure reflection sits at shift 0 — see
	// timeseries.MinRotationMirrorDistWindow), sparing every lookup the
	// mirror allocation per entry.
	revSeries timeseries.Series
	revWord   Word

	// hist is the symbol histogram of Word — rotation- and mirror-invariant,
	// so one histogram serves both candidates in the stage-0 prefilter.
	hist []uint16

	// seq is the global insertion sequence number: a stable identity used to
	// break exact distance ties deterministically, so the indexed cascade and
	// the linear reference scan elect the same winner regardless of shard
	// layout or visit order.
	seq uint64
}

// Match is the result of a database lookup.
type Match struct {
	Label    string
	Word     Word
	WordDist float64 // MINDIST lower bound (rotation-minimised)
	Dist     float64 // exact rotation-minimised Euclidean distance
	Shift    int     // series-level circular shift of the best alignment
	Mirrored bool    // true when the mirror candidate won
}

// ErrNoMatch is returned by Lookup when no entry passes the acceptance
// threshold.
var ErrNoMatch = errors.New("sax: no match within threshold")

// numShards is the fixed shard count of the entry store. Sixteen shards keep
// the per-shard mutexes uncontended for worker pools well past NumCPU on
// typical hosts while the fixed power of two keeps shard selection a mask.
const numShards = 16

// concurrentScanMin is the dictionary size below which a concurrent shard
// scan is not worth the goroutine fan-out, even when scan workers are
// configured.
const concurrentScanMin = 256

// shard is one lock-striped slice of the entry store. Entries are append-only
// and immutable once inserted: a lookup may retain *Entry pointers taken
// under the read lock and keep reading them after release, because Add never
// rewrites an existing element (append either extends in place or copies to
// a fresh array).
type shard struct {
	mu      sync.RWMutex
	entries []Entry
}

// shardIndex hashes a label onto a shard (FNV-1a).
func shardIndex(label string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(label))
	return int(h.Sum32() & (numShards - 1))
}

// Database is a thread-safe collection of labelled reference words/series
// with rotation- and mirror-invariant nearest lookup. It is the "database of
// strings" from the paper's §IV against which captured signs are compared.
//
// Entries are sharded by label hash behind per-shard read-write locks, so a
// worker pool's concurrent lookups never serialise against each other and an
// Add only briefly blocks readers of one shard. Lookup runs a three-stage
// pruning cascade (symbol-histogram lower bound → rotation-windowed MINDIST
// → exact alignment, each stage cut off against the best distance so far);
// LookupZLinear retains the unpruned linear scan as the reference
// implementation and benchmark baseline.
type Database struct {
	enc *Encoder
	n   int // canonical series length

	cfgMu       sync.RWMutex
	shiftFrac   float64 // fraction of the series length the shift search may cover (≤0: full)
	scanWorkers int     // >1 enables the concurrent shard scan for large dictionaries

	seqCounter atomic.Uint64
	count      atomic.Int64
	shards     [numShards]shard

	// corpus adapts the shards to the cascade kernel (see lookup.go); kept
	// as a field so the Corpus interface conversion never allocates.
	corpus dbCorpus
}

// NewDatabase creates a database for signatures of length n symbolised by
// enc.
func NewDatabase(enc *Encoder, n int) (*Database, error) {
	if enc == nil {
		return nil, errors.New("sax: nil encoder")
	}
	if n < enc.Segments() {
		return nil, fmt.Errorf("sax: series length %d below word length %d", n, enc.Segments())
	}
	db := &Database{enc: enc, n: n}
	db.corpus.db = db
	return db, nil
}

// Encoder returns the database's encoder.
func (db *Database) Encoder() *Encoder { return db.enc }

// SetShiftWindowFrac restricts the rotation-alignment search to ±frac of the
// signature length (0 or negative restores the full search). Bounding the
// window preserves tolerance to modest in-plane rotation while preventing a
// gross rotation from aliasing one sign's lobe pattern onto another's.
func (db *Database) SetShiftWindowFrac(frac float64) {
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	db.shiftFrac = frac
}

// SetScanWorkers enables (>1) or disables (≤1, the default) the concurrent
// shard scan: stage 0 of the lookup cascade fans the per-shard histogram
// pass over up to workers goroutines once the dictionary holds at least 256
// entries. The fan-out allocates per call, so the serial default remains the
// right choice for small dictionaries and allocation-sensitive callers.
func (db *Database) SetScanWorkers(workers int) {
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	db.scanWorkers = workers
}

// params snapshots the window bounds (-1 = unbounded) and scan-worker count.
func (db *Database) params() (wordWin, seriesWin, workers int) {
	db.cfgMu.RLock()
	frac := db.shiftFrac
	workers = db.scanWorkers
	db.cfgMu.RUnlock()
	if frac <= 0 {
		return -1, -1, workers
	}
	// The word bound carries a one-symbol safety margin over the scaled-down
	// series bound.
	return int(frac*float64(db.enc.Segments())) + 1, int(frac * float64(db.n)), workers
}

// seriesShift returns the series-level shift bound (-1 = unbounded).
func (db *Database) seriesShift() int {
	_, s, _ := db.params()
	return s
}

// wordShift returns the word-level shift bound matching seriesShift, with a
// one-symbol safety margin (-1 = unbounded).
func (db *Database) wordShift() int {
	w, _, _ := db.params()
	return w
}

// SeriesLen returns the canonical signature length.
func (db *Database) SeriesLen() int { return db.n }

// Len returns the number of entries.
func (db *Database) Len() int { return int(db.count.Load()) }

// Add registers a labelled reference series. The series is resampled to the
// canonical length, z-normalised, encoded and stored. Duplicate labels are
// allowed (multiple exemplars per sign).
func (db *Database) Add(label string, s timeseries.Series) error {
	if label == "" {
		return errors.New("sax: empty label")
	}
	rs, err := s.ResampleLinear(db.n)
	if err != nil {
		return fmt.Errorf("sax: add %q: %w", label, err)
	}
	z := rs.ZNormalize()
	w, err := db.enc.Encode(z)
	if err != nil {
		return fmt.Errorf("sax: add %q: %w", label, err)
	}
	db.insert(label, w, z)
	return nil
}

// insert stores an already prepared (canonical-length, z-normalised,
// encoded) entry into its label's shard.
func (db *Database) insert(label string, w Word, z timeseries.Series) {
	e := newEntry(label, w, z)
	e.seq = db.seqCounter.Add(1)
	sh := &db.shards[shardIndex(label)]
	sh.mu.Lock()
	sh.entries = append(sh.entries, e)
	sh.mu.Unlock()
	db.count.Add(1)
}

// newEntry builds an entry with its mirrored candidate and symbol histogram
// precomputed.
func newEntry(label string, w Word, z timeseries.Series) Entry {
	return Entry{
		Label:     label,
		Word:      w,
		Series:    z,
		revSeries: z.Reverse().Rotate(-1),
		revWord:   w.Reverse().Rotate(-1),
		hist:      histOf(w),
	}
}

// collect returns a copy of all entries in shard order (no global
// ordering). Every shard read lock is held for the duration of the copy —
// locks are taken in index order, and Add only ever takes one — so the copy
// is a point-in-time snapshot even with concurrent writers: Save and the
// reporting helpers can never observe a later insertion while missing an
// earlier one.
func (db *Database) collect() []Entry {
	for si := range db.shards {
		db.shards[si].mu.RLock()
	}
	out := make([]Entry, 0, db.Len())
	for si := range db.shards {
		out = append(out, db.shards[si].entries...)
	}
	for si := range db.shards {
		db.shards[si].mu.RUnlock()
	}
	return out
}

// snapshot returns a copy of all entries in insertion (seq) order.
func (db *Database) snapshot() []Entry {
	out := db.collect()
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Entries returns a copy of the registered entries, sorted by label then
// word, for reporting.
func (db *Database) Entries() []Entry {
	out := db.collect()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Word.Symbols < out[j].Word.Symbols
	})
	return out
}

// ShardSizes reports the entry count per shard (diagnostics: cmd/signdb
// -inspect uses it to show the lock-striping balance).
func (db *Database) ShardSizes() [numShards]int {
	var sizes [numShards]int
	for si := range db.shards {
		sh := &db.shards[si]
		sh.mu.RLock()
		sizes[si] = len(sh.entries)
		sh.mu.RUnlock()
	}
	return sizes
}

// Lookup finds the nearest entry to the query series under the rotation- and
// mirror-invariant exact distance, using the pruning cascade. Entries whose
// exact distance exceeds threshold are rejected; if none survive, ErrNoMatch
// is returned together with the best (rejected) candidate for diagnostics.
func (db *Database) Lookup(q timeseries.Series, threshold float64) (Match, error) {
	rs, err := q.ResampleLinear(db.n)
	if err != nil {
		return Match{}, err
	}
	z := rs.ZNormalize()
	qw, err := db.enc.Encode(z)
	if err != nil {
		return Match{}, err
	}
	return db.LookupZ(z, qw, threshold)
}

// LookupZ is Lookup for a query already resampled to the canonical length
// and z-normalised, with its word precomputed — the recogniser's hot path,
// which has both at hand and skips the re-preparation Lookup performs. The
// scratch comes from an internal pool; callers that loop should hold their
// own LookupScratch and use LookupZWith for the zero-allocation steady
// state.
func (db *Database) LookupZ(z timeseries.Series, qw Word, threshold float64) (Match, error) {
	sc := lookupScratchPool.Get().(*LookupScratch)
	defer lookupScratchPool.Put(sc)
	return db.LookupZWith(sc, z, qw, threshold)
}

// LookupZWith is LookupZ using the caller's reusable scratch — the
// allocation-free steady-state path. A scratch must not be shared between
// concurrent lookups.
func (db *Database) LookupZWith(sc *LookupScratch, z timeseries.Series, qw Word, threshold float64) (Match, error) {
	if sc == nil {
		return db.LookupZ(z, qw, threshold)
	}
	res, err := db.LookupKZWith(sc, z, qw, 1, sc.one[:0])
	sc.one = res[:0]
	if err != nil {
		return Match{}, err
	}
	if len(res) == 0 {
		return Match{}, ErrNoMatch
	}
	best := res[0]
	if math.IsInf(best.Dist, 1) || best.Dist > threshold {
		return best, ErrNoMatch
	}
	return best, nil
}

// LookupK returns the (up to) k nearest entries to the query series under
// the exact rotation/mirror-invariant distance, closest first, written into
// dst (dst is reused from the start: its existing contents are discarded,
// its capacity avoids the allocation). No threshold is applied: the
// runner-up distances feed confidence margins (see Margin/RivalMargin),
// which need the rejected neighbours too.
func (db *Database) LookupK(q timeseries.Series, k int, dst []Match) ([]Match, error) {
	rs, err := q.ResampleLinear(db.n)
	if err != nil {
		return dst[:0], err
	}
	z := rs.ZNormalize()
	qw, err := db.enc.Encode(z)
	if err != nil {
		return dst[:0], err
	}
	sc := lookupScratchPool.Get().(*LookupScratch)
	defer lookupScratchPool.Put(sc)
	return db.LookupKZWith(sc, z, qw, k, dst)
}

// Margin reports the separation between the best match and its runner-up:
// the absolute distance gap and the relative margin (gap divided by the
// runner-up distance, clamped to [0,1]) that the recogniser exposes as match
// confidence. A single-entry result has no competing candidate and yields a
// full margin of 1.
func Margin(matches []Match) (abs, rel float64) {
	if len(matches) == 0 {
		return 0, 0
	}
	if len(matches) == 1 {
		return math.Inf(1), 1
	}
	abs = matches[1].Dist - matches[0].Dist
	if matches[1].Dist > 0 {
		rel = abs / matches[1].Dist
	}
	if rel < 0 {
		rel = 0
	}
	if rel > 1 {
		rel = 1
	}
	return abs, rel
}

// RivalMargin is Margin measured against the nearest *rival* — the closest
// candidate whose label differs from the winner's — rather than the raw
// runner-up. With several exemplars per sign (the fleet-dictionary layout),
// the runner-up of a clean capture is usually another exemplar of the same
// sign at a tiny distance, which would wrongly read as an ambiguous match;
// what confidence should measure is how clearly the winning *label* beat the
// competing labels. When every candidate in matches shares the winner's
// label, the farthest one's distance is used as a conservative lower bound
// on the true rival distance (the real rival, if any, lies beyond the
// returned top-k), so confidence errs low, never high.
func RivalMargin(matches []Match) (abs, rel float64) {
	if len(matches) == 0 {
		return 0, 0
	}
	if len(matches) == 1 {
		return math.Inf(1), 1
	}
	rival := matches[len(matches)-1].Dist
	for _, m := range matches[1:] {
		if m.Label != matches[0].Label {
			rival = m.Dist
			break
		}
	}
	abs = rival - matches[0].Dist
	if rival > 0 {
		rel = abs / rival
	}
	if rel < 0 {
		rel = 0
	}
	if rel > 1 {
		rel = 1
	}
	return abs, rel
}

// LookupZLinear is the retained linear-scan reference implementation: every
// entry is fully evaluated (rotation-windowed MINDIST for the word distance,
// exact rotation/mirror alignment for the decision) with no index, no
// cutoffs and no candidate ordering. It exists as the ground truth the
// cascade is property-tested against (byte-identical Match results) and as
// the baseline the BenchmarkDatabaseLookup* speedups are measured from.
func (db *Database) LookupZLinear(z timeseries.Series, qw Word, threshold float64) (Match, error) {
	if qw.Alphabet != db.enc.AlphabetSize() || len(qw.Symbols) != db.enc.Segments() {
		return Match{}, ErrWordMismatch
	}
	wordWin, seriesWin, _ := db.params()
	best := Match{Dist: math.Inf(1), WordDist: math.Inf(1)}
	bestSeq := uint64(math.MaxUint64)
	found := false
	for si := range db.shards {
		sh := &db.shards[si]
		sh.mu.RLock()
		for i := range sh.entries {
			e := &sh.entries[i]
			lb, _, err := db.enc.MinDistRotationWindow(qw, e.Word, db.n, wordWin)
			if err != nil {
				sh.mu.RUnlock()
				return Match{}, err
			}
			if lbRev, _, err := db.enc.MinDistRotationWindow(qw, e.revWord, db.n, wordWin); err != nil {
				sh.mu.RUnlock()
				return Match{}, err
			} else if lbRev < lb {
				lb = lbRev
			}
			d, shift, err := timeseries.MinRotationDistWindow(z, e.Series, seriesWin)
			if err != nil {
				sh.mu.RUnlock()
				return Match{}, err
			}
			mirrored := false
			if dRev, sRev, err := timeseries.MinRotationDistWindow(z, e.revSeries, seriesWin); err != nil {
				sh.mu.RUnlock()
				return Match{}, err
			} else if dRev < d {
				d, shift, mirrored = dRev, sRev, true
			}
			if d < best.Dist || (d == best.Dist && e.seq < bestSeq) {
				best = Match{
					Label:    e.Label,
					Word:     e.Word,
					WordDist: lb,
					Dist:     d,
					Shift:    shift,
					Mirrored: mirrored,
				}
				bestSeq = e.seq
				found = true
			}
		}
		sh.mu.RUnlock()
	}
	if !found {
		return Match{}, ErrNoMatch
	}
	if math.IsInf(best.Dist, 1) || best.Dist > threshold {
		return best, ErrNoMatch
	}
	return best, nil
}

// PairwiseMinDist returns a symmetric matrix of rotation-invariant MINDIST
// values between all entries (diagnostics for the sign-uniqueness
// experiment, E8).
func (db *Database) PairwiseMinDist() (labels []string, d [][]float64, err error) {
	entries := db.Entries()
	labels = make([]string, len(entries))
	d = make([][]float64, len(entries))
	for i := range entries {
		labels[i] = entries[i].Label
		d[i] = make([]float64, len(entries))
	}
	for i := range entries {
		for j := i + 1; j < len(entries); j++ {
			v, _, _, merr := db.enc.MinDistRotationMirrorWindow(entries[i].Word, entries[j].Word, db.n, db.wordShift())
			if merr != nil {
				return nil, nil, merr
			}
			d[i][j] = v
			d[j][i] = v
		}
	}
	return labels, d, nil
}

// PairwiseExactDist returns the rotation/mirror-minimised exact Euclidean
// distance matrix between entries.
func (db *Database) PairwiseExactDist() (labels []string, d [][]float64, err error) {
	entries := db.Entries()
	labels = make([]string, len(entries))
	d = make([][]float64, len(entries))
	for i := range entries {
		labels[i] = entries[i].Label
		d[i] = make([]float64, len(entries))
	}
	for i := range entries {
		for j := i + 1; j < len(entries); j++ {
			v, _, _, merr := timeseries.MinRotationMirrorDistWindow(entries[i].Series, entries[j].Series, db.seriesShift())
			if merr != nil {
				return nil, nil, merr
			}
			d[i][j] = v
			d[j][i] = v
		}
	}
	return labels, d, nil
}
