package sax

import "math"

// histogram.go implements the stage-0 prefilter of the database's lookup
// cascade: a rotation- and mirror-invariant lower bound on MINDIST computed
// from symbol histograms alone.
//
// The key observation: a word's symbol histogram (how many 'a's, 'b's, …)
// is invariant under circular rotation and under reversal, so one O(alphabet)
// comparison covers every alignment the later stages would search. Any
// rotation (mirrored or not) aligns the query's symbols with the entry's
// symbols one-to-one — a bijection between the two multisets. The cheapest
// possible bijection therefore lower-bounds the aligned cell-distance sum of
// every rotation, and hence MINDIST minimised over rotations and mirrors.
//
// The cheapest bijection under the MINDIST cell cost is computable greedily:
// symbol i corresponds to the breakpoint interval [breaks[i-1], breaks[i]]
// on the real line, and cell(i,j)² is the squared gap between the i-th and
// j-th intervals. Squared gaps between ordered intervals form a Monge cost
// matrix, for which the north-west-corner (monotone two-pointer) matching is
// an optimal transport plan. The property test in histogram_test.go verifies
// the lower-bound guarantee against the exhaustive rotation/mirror search on
// randomized words.

// histOf returns the symbol histogram of w: hist[s] counts symbol 'a'+s.
func histOf(w Word) []uint16 {
	h := make([]uint16, w.Alphabet)
	for i := 0; i < len(w.Symbols); i++ {
		h[w.Symbols[i]-'a']++
	}
	return h
}

// histInto is histOf writing into a reusable buffer.
func histInto(dst []uint16, w Word) []uint16 {
	if cap(dst) < w.Alphabet {
		dst = make([]uint16, w.Alphabet)
	}
	dst = dst[:w.Alphabet]
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < len(w.Symbols); i++ {
		dst[w.Symbols[i]-'a']++
	}
	return dst
}

// histSlack shrinks the computed bound by one part in 10⁹ so that the
// accumulated floating-point rounding of the transport sum (whose addition
// order differs from the rotation search's) can never turn the mathematical
// lower bound into an over-estimate that would prune a true winner.
const histSlack = 1 - 1e-9

// histLowerBound returns a lower bound on the rotation- and mirror-minimised
// MINDIST between two words with histograms qh and eh, for original series
// length n. Both histograms must sum to the encoder's segment count.
func (e *Encoder) histLowerBound(qh, eh []uint16, n int) float64 {
	nn := n
	if nn < e.segments {
		nn = e.segments
	}
	scale := math.Sqrt(float64(nn) / float64(e.segments))
	var ss float64
	i, j := 0, 0
	qrem, erem := uint16(0), uint16(0)
	for {
		for qrem == 0 {
			if i >= len(qh) {
				return scale * math.Sqrt(ss) * histSlack
			}
			qrem = qh[i]
			if qrem == 0 {
				i++
			}
		}
		for erem == 0 {
			if j >= len(eh) {
				return scale * math.Sqrt(ss) * histSlack
			}
			erem = eh[j]
			if erem == 0 {
				j++
			}
		}
		m := qrem
		if erem < m {
			m = erem
		}
		c := e.cells[i][j]
		ss += float64(m) * c * c
		qrem -= m
		erem -= m
		if qrem == 0 {
			i++
		}
		if erem == 0 {
			j++
		}
	}
}

// HistLowerBoundRaw is the stage-0 bound for pre-extracted histograms — the
// cascade hot path used by Corpus implementations whose histograms are
// precomputed (the database's per-entry cache, the on-disk store's mapped
// prune index). No validation is performed: both histograms must be
// alphabet-length and sum to the encoder's segment count.
func (e *Encoder) HistLowerBoundRaw(qh, eh []uint16, n int) float64 {
	return e.histLowerBound(qh, eh, n)
}

// HistogramOf returns w's symbol histogram: hist[i] counts symbol 'a'+i.
// The on-disk store precomputes these at build time into its segment files'
// prune-index block.
func HistogramOf(w Word) []uint16 { return histOf(w) }

// HistLowerBound is the exported form of the stage-0 bound for two words
// (diagnostics and tests); the database keeps per-entry histograms so its
// cascade never re-derives them.
func (e *Encoder) HistLowerBound(w, v Word, n int) (float64, error) {
	if w.Alphabet != e.alphabet || v.Alphabet != e.alphabet ||
		len(w.Symbols) != e.segments || len(v.Symbols) != e.segments {
		return 0, ErrWordMismatch
	}
	return e.histLowerBound(histOf(w), histOf(v), n), nil
}
