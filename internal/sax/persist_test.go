package sax

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := newTestDB(t)
	db.SetShiftWindowFrac(0.2)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("entries %d != %d", loaded.Len(), db.Len())
	}
	if loaded.SeriesLen() != db.SeriesLen() {
		t.Fatal("series length not preserved")
	}
	if loaded.Encoder().Segments() != db.Encoder().Segments() ||
		loaded.Encoder().AlphabetSize() != db.Encoder().AlphabetSize() {
		t.Fatal("encoder parameters not preserved")
	}
	// The loaded database classifies identically.
	for _, kind := range []string{"two-lobe", "three-lobe", "spike"} {
		q := shapeSignature(kind, 128, 0.7, 0, nil)
		m1, err1 := db.Lookup(q, math.Inf(1))
		m2, err2 := loaded.Lookup(q, math.Inf(1))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: lookup errors diverge: %v vs %v", kind, err1, err2)
		}
		if m1.Label != m2.Label {
			t.Fatalf("%s: labels diverge: %s vs %s", kind, m1.Label, m2.Label)
		}
		if math.Abs(m1.Dist-m2.Dist) > 1e-9 {
			t.Fatalf("%s: distances diverge: %v vs %v", kind, m1.Dist, m2.Dist)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	db := newTestDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	tests := []struct {
		name   string
		mutate func(string) string
	}{
		{"garbage", func(s string) string { return "not json" }},
		{"bad version", func(s string) string { return strings.Replace(s, `"version": 1`, `"version": 99`, 1) }},
		{"tampered word", func(s string) string {
			// Flip a stored word so it no longer matches its series.
			i := strings.Index(s, `"word": "`)
			return s[:i+10] + "zz" + s[i+12:]
		}},
		{"empty entries", func(s string) string {
			i := strings.Index(s, `"entries"`)
			return s[:i] + `"entries": []}` // truncate
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tt.mutate(good))); err == nil {
				t.Fatal("corrupted input should fail to load")
			}
		})
	}
}

func TestSaveIsStable(t *testing.T) {
	db := newTestDB(t)
	var a, b bytes.Buffer
	if err := db.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Save output is not deterministic")
	}
}
