package sax

import (
	"math"

	"hdc/internal/timeseries"
)

// Dictionary is the lookup surface shared by the in-memory Database and the
// segmented on-disk store (internal/sax/store): everything the recogniser
// needs from a sign dictionary. Implementations must be safe for concurrent
// lookups, with Add externally serialised against setup as documented by
// each backend.
type Dictionary interface {
	// Encoder returns the dictionary's SAX encoder.
	Encoder() *Encoder
	// SeriesLen returns the canonical signature length.
	SeriesLen() int
	// Len returns the number of entries.
	Len() int
	// Add registers a labelled reference series (resampled to the canonical
	// length, z-normalised, encoded).
	Add(label string, s timeseries.Series) error
	// LookupKZWith finds the (up to) k nearest entries to the prepared
	// query, closest first, written into dst; see Database.LookupKZWith for
	// the full contract.
	LookupKZWith(sc *LookupScratch, z timeseries.Series, qw Word, k int, dst []Match) ([]Match, error)
	// NearestHist runs only stage 0 of the cascade — the degraded-mode
	// answer; see HistNearest for what the returned Match's Dist means.
	NearestHist(sc *LookupScratch, qw Word) (Match, bool)
}

// Database and the on-disk store both satisfy Dictionary.
var _ Dictionary = (*Database)(nil)

// LookupZOn runs the single-nearest-entry lookup with an acceptance
// threshold over any Dictionary — the Database.LookupZWith contract
// (ErrNoMatch carries the best rejected candidate for diagnostics) shared
// with the on-disk store. A nil scratch borrows one from the internal pool.
func LookupZOn(d Dictionary, sc *LookupScratch, z timeseries.Series, qw Word, threshold float64) (Match, error) {
	if sc == nil {
		sc = lookupScratchPool.Get().(*LookupScratch)
		defer lookupScratchPool.Put(sc)
	}
	res, err := d.LookupKZWith(sc, z, qw, 1, sc.one[:0])
	sc.one = res[:0]
	if err != nil {
		return Match{}, err
	}
	if len(res) == 0 {
		return Match{}, ErrNoMatch
	}
	best := res[0]
	if math.IsInf(best.Dist, 1) || best.Dist > threshold {
		return best, ErrNoMatch
	}
	return best, nil
}
