package sax

import (
	"errors"

	"hdc/internal/timeseries"
)

// StreamEncoder applies SAX over a sliding window of a live sample stream
// with numerosity reduction: consecutive identical words are emitted once.
// The recogniser uses it to convert a stream of per-frame scalar features
// (e.g. silhouette area) into a compact symbolic trace for logging and motif
// diagnostics.
type StreamEncoder struct {
	enc     *Encoder
	window  int
	step    int
	buf     timeseries.Series
	last    Word
	hasLast bool
	emitted int
	seen    int
}

// NewStreamEncoder creates a sliding-window encoder. window is the number of
// samples per word; step is the hop between window starts.
func NewStreamEncoder(enc *Encoder, window, step int) (*StreamEncoder, error) {
	if enc == nil {
		return nil, errors.New("sax: nil encoder")
	}
	if window < enc.Segments() {
		return nil, errors.New("sax: window smaller than word length")
	}
	if step < 1 {
		return nil, errors.New("sax: step < 1")
	}
	return &StreamEncoder{enc: enc, window: window, step: step}, nil
}

// Push appends samples and returns the words newly emitted by numerosity
// reduction (consecutive duplicate words suppressed).
func (se *StreamEncoder) Push(samples ...float64) ([]Word, error) {
	se.buf = append(se.buf, samples...)
	var out []Word
	for len(se.buf) >= se.window {
		w, err := se.enc.Encode(se.buf[:se.window])
		if err != nil {
			return out, err
		}
		se.seen++
		if !se.hasLast || !w.Equal(se.last) {
			out = append(out, w)
			se.last = w
			se.hasLast = true
			se.emitted++
		}
		if se.step >= len(se.buf) {
			se.buf = se.buf[:0]
			break
		}
		se.buf = se.buf[se.step:]
	}
	return out, nil
}

// Stats returns how many windows were symbolised and how many words survived
// numerosity reduction.
func (se *StreamEncoder) Stats() (windows, emitted int) { return se.seen, se.emitted }

// Reset discards buffered samples and numerosity state.
func (se *StreamEncoder) Reset() {
	se.buf = se.buf[:0]
	se.hasLast = false
	se.seen = 0
	se.emitted = 0
}
