package sax

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"hdc/internal/timeseries"
)

// lookup.go implements the database's three-stage pruning cascade:
//
//	stage 0 — symbol-histogram lower bound (rotation/mirror invariant,
//	          O(alphabet) per entry, see histogram.go), computed for every
//	          entry under its shard's read lock;
//	stage 1 — rotation-windowed MINDIST over the word and its cached mirror,
//	          early-abandoned against the best exact distance so far;
//	stage 2 — exact rotation/mirror alignment at series level, likewise
//	          cutoff-threaded.
//
// Candidates flow through a single best-first refinement queue (the optimal
// multi-step filter-and-refine pattern): a binary min-heap ordered by
// (current lower bound, insertion seq). Popping a stage-0 candidate refines
// its histogram bound to the rotation-windowed MINDIST bound and re-pushes
// it; popping a refined candidate runs the exact alignment. Exact
// evaluations therefore happen in true MINDIST order — the cutoff tightens
// as early as possible — and the moment the queue's minimum bound exceeds
// the current k-th best exact distance the remainder is rejected wholesale.
// This is a partial selection: the sort.Slice full ordering (and its
// per-call closures) of the previous implementation is gone. All working
// storage lives in a LookupScratch, so the steady state allocates nothing.

// cand is one queue element: an entry and its current lower bound —
// histogram-level (refined=false) or word-MINDIST-level (refined=true).
type cand struct {
	e       *Entry
	lb      float64
	refined bool
}

// LookupStats counts what each cascade stage did during the last lookup
// made with a scratch (diagnostics for tuning and the E18 experiment).
type LookupStats struct {
	Entries    int // entries scanned in stage 0
	HistPruned int // rejected wholesale by the histogram bound
	WordPruned int // rejected by the rotation-windowed MINDIST bound
	ExactEvals int // entries that reached the exact alignment stage
}

// LookupScratch holds the reusable per-caller state of the lookup cascade:
// the query histogram, the candidate heap, and the top-k working set. Hold
// one per worker goroutine (it must not be shared between concurrent
// lookups) and pass it to LookupZWith/LookupKZWith; after the first few
// calls the cascade reaches a zero-allocation steady state.
type LookupScratch struct {
	qHist     []uint16
	cands     []cand
	matchSeq  []uint64
	one       []Match // backing store for LookupZWith's single result
	shardBufs [numShards][]cand
	stats     LookupStats
}

// NewLookupScratch returns a fresh lookup scratch.
func NewLookupScratch() *LookupScratch {
	return &LookupScratch{one: make([]Match, 0, 1)}
}

// Stats returns the stage counters of the last lookup run with this scratch.
func (sc *LookupScratch) Stats() LookupStats { return sc.stats }

// lookupScratchPool backs the scratch-less convenience entry points.
var lookupScratchPool = sync.Pool{
	New: func() any { return NewLookupScratch() },
}

// candLess orders heap elements by (lower bound, insertion seq); the seq tie
// break keeps the pop order — and therefore exact-tie resolution —
// deterministic and identical to the linear reference scan.
func candLess(a, b cand) bool {
	if a.lb != b.lb {
		return a.lb < b.lb
	}
	return a.e.seq < b.e.seq
}

// siftDown restores the min-heap property from index i.
func siftDown(h []cand, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && candLess(h[r], h[l]) {
			m = r
		}
		if !candLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// heapify builds a min-heap in place.
func heapify(h []cand) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

// heapPop removes and returns the minimum element.
func heapPop(h []cand) (cand, []cand) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	if n > 1 {
		siftDown(h, 0)
	}
	return top, h
}

// heapPush inserts c, restoring the heap property.
func heapPush(h []cand, c cand) []cand {
	h = append(h, c)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !candLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// insertTopK inserts m (with tie-break seq) into the ascending
// (Dist, seq)-ordered dst, keeping at most k elements. seqs is maintained in
// parallel with dst.
func insertTopK(dst []Match, seqs *[]uint64, k int, m Match, seq uint64) []Match {
	s := *seqs
	pos := len(dst)
	for pos > 0 {
		p := pos - 1
		if m.Dist < dst[p].Dist || (m.Dist == dst[p].Dist && seq < s[p]) {
			pos = p
		} else {
			break
		}
	}
	if pos >= k {
		return dst // not better than the current k-th
	}
	if len(dst) < k {
		dst = append(dst, Match{})
		s = append(s, 0)
	}
	copy(dst[pos+1:], dst[pos:])
	copy(s[pos+1:], s[pos:len(dst)-1])
	dst[pos] = m
	s[pos] = seq
	*seqs = s
	return dst
}

// LookupKZWith is the cascade kernel: it finds the (up to) k nearest entries
// to the prepared query (canonical-length z-normalised series z, its word
// qw), closest first, written into dst. dst is reused from the start — its
// existing contents are discarded — and capacity ≥ k makes the call
// allocation-free in steady state. No threshold is applied (see LookupK).
// The scratch must not be shared between concurrent lookups.
func (db *Database) LookupKZWith(sc *LookupScratch, z timeseries.Series, qw Word, k int, dst []Match) ([]Match, error) {
	dst = dst[:0]
	if k < 1 {
		return dst, errors.New("sax: lookup k < 1")
	}
	if qw.Alphabet != db.enc.AlphabetSize() || len(qw.Symbols) != db.enc.Segments() {
		return dst, ErrWordMismatch
	}
	if sc == nil {
		sc = lookupScratchPool.Get().(*LookupScratch)
		defer lookupScratchPool.Put(sc)
	}
	wordWin, seriesWin, workers := db.params()
	sc.stats = LookupStats{}
	sc.qHist = histInto(sc.qHist, qw)
	sc.matchSeq = sc.matchSeq[:0]

	// Stage 0: histogram lower bound per entry, per shard. The *Entry
	// pointers remain valid after the read locks drop because entries are
	// append-only and immutable (see shard).
	sc.cands = sc.cands[:0]
	if workers > 1 && int(db.count.Load()) >= concurrentScanMin {
		db.scanShardsConcurrent(sc, workers)
	} else {
		for si := range db.shards {
			sh := &db.shards[si]
			sh.mu.RLock()
			for i := range sh.entries {
				e := &sh.entries[i]
				sc.cands = append(sc.cands, cand{e: e, lb: db.enc.histLowerBound(sc.qHist, e.hist, db.n)})
			}
			sh.mu.RUnlock()
		}
	}
	sc.stats.Entries = len(sc.cands)
	heapify(sc.cands)

	// Best-first refinement: pop the smallest current bound; refine stage-0
	// bounds to stage-1 and re-push, run the exact stage on refined ones.
	// The prune comparisons are strict (>) so exact ties stay in play for
	// the deterministic seq tie-break, matching the linear reference bit
	// for bit.
	h := sc.cands
	for len(h) > 0 {
		cutoff := math.Inf(1)
		if len(dst) == k {
			cutoff = dst[k-1].Dist
		}
		var c cand
		c, h = heapPop(h)
		if c.lb > cutoff {
			// Heap order: every remaining bound is at least this one.
			// Count the wholesale rejection by the stage that produced
			// each surviving bound.
			if c.refined {
				sc.stats.WordPruned++
			} else {
				sc.stats.HistPruned++
			}
			for i := range h {
				if h[i].refined {
					sc.stats.WordPruned++
				} else {
					sc.stats.HistPruned++
				}
			}
			break
		}
		e := c.e

		if !c.refined {
			// Stage 1: MINDIST over word and cached mirror word.
			wlb, _, err := db.enc.MinDistRotationWindowCutoff(qw, e.Word, db.n, wordWin, cutoff)
			if err != nil {
				sc.cands = sc.cands[:0]
				return dst, err
			}
			cutRev := cutoff
			if wlb < cutRev {
				cutRev = wlb
			}
			if wlbRev, _, err := db.enc.MinDistRotationWindowCutoff(qw, e.revWord, db.n, wordWin, cutRev); err != nil {
				sc.cands = sc.cands[:0]
				return dst, err
			} else if wlbRev < wlb {
				wlb = wlbRev
			}
			if wlb > cutoff {
				sc.stats.WordPruned++
				continue
			}
			h = heapPush(h, cand{e: e, lb: wlb, refined: true})
			continue
		}

		// Stage 2: exact rotation/mirror alignment.
		sc.stats.ExactEvals++
		d, shift, err := timeseries.MinRotationDistWindowCutoff(z, e.Series, seriesWin, cutoff)
		if err != nil {
			sc.cands = sc.cands[:0]
			return dst, err
		}
		mirrored := false
		cutM := cutoff
		if d < cutM {
			cutM = d
		}
		if dRev, sRev, err := timeseries.MinRotationDistWindowCutoff(z, e.revSeries, seriesWin, cutM); err != nil {
			sc.cands = sc.cands[:0]
			return dst, err
		} else if dRev < d {
			d, shift, mirrored = dRev, sRev, true
		}
		dst = insertTopK(dst, &sc.matchSeq, k, Match{
			Label:    e.Label,
			Word:     e.Word,
			WordDist: c.lb,
			Dist:     d,
			Shift:    shift,
			Mirrored: mirrored,
		}, e.seq)
	}
	sc.cands = sc.cands[:0]
	return dst, nil
}

// scanShardsConcurrent fans the stage-0 histogram pass over the shards with
// up to workers goroutines — the same bounded-fan-out discipline as the
// pipeline's worker pool — then concatenates the per-shard buffers in shard
// order so the result is deterministic regardless of scheduling. Worth it
// only for large dictionaries: the fan-out allocates, which is why it is
// gated behind SetScanWorkers and concurrentScanMin.
func (db *Database) scanShardsConcurrent(sc *LookupScratch, workers int) {
	if workers > numShards {
		workers = numShards
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1)) - 1
				if si >= numShards {
					return
				}
				buf := sc.shardBufs[si][:0]
				sh := &db.shards[si]
				sh.mu.RLock()
				for i := range sh.entries {
					e := &sh.entries[i]
					buf = append(buf, cand{e: e, lb: db.enc.histLowerBound(sc.qHist, e.hist, db.n)})
				}
				sh.mu.RUnlock()
				sc.shardBufs[si] = buf
			}
		}()
	}
	wg.Wait()
	for si := range sc.shardBufs {
		sc.cands = append(sc.cands, sc.shardBufs[si]...)
	}
}
