package sax

import (
	"sync"
	"sync/atomic"

	"hdc/internal/timeseries"
)

// lookup.go binds the database's sharded in-memory store to the three-stage
// pruning cascade of cascade.go:
//
//	stage 0 — symbol-histogram lower bound (rotation/mirror invariant,
//	          O(alphabet) per entry, see histogram.go), computed for every
//	          entry from a point-in-time snapshot of each shard;
//	stage 1 — rotation-windowed MINDIST over the word and its cached mirror,
//	          early-abandoned against the best exact distance so far;
//	stage 2 — exact rotation/mirror alignment at series level, likewise
//	          cutoff-threaded.
//
// Candidates flow through a single best-first refinement queue (the optimal
// multi-step filter-and-refine pattern): a binary min-heap ordered by
// (current lower bound, insertion seq). Popping a stage-0 candidate refines
// its histogram bound to the rotation-windowed MINDIST bound and re-pushes
// it; popping a refined candidate runs the exact alignment. Exact
// evaluations therefore happen in true MINDIST order — the cutoff tightens
// as early as possible — and the moment the queue's minimum bound exceeds
// the current k-th best exact distance the remainder is rejected wholesale.
// All working storage lives in a LookupScratch, so the steady state
// allocates nothing. The refinement loop itself lives in CascadeLookupKZ,
// shared with the segmented on-disk store (internal/sax/store).

// LookupStats counts what each cascade stage did during the last lookup
// made with a scratch (diagnostics for tuning and the E18/E22 experiments).
type LookupStats struct {
	Entries    int // entries scanned in stage 0
	HistPruned int // rejected wholesale by the histogram bound
	WordPruned int // rejected by the rotation-windowed MINDIST bound
	ExactEvals int // entries that reached the exact alignment stage
}

// LookupScratch holds the reusable per-caller state of the lookup cascade:
// the query histogram, the candidate heap, the top-k working set and the
// corpus view buffers. Hold one per worker goroutine (it must not be shared
// between concurrent lookups) and pass it to LookupZWith/LookupKZWith; after
// the first few calls the cascade reaches a zero-allocation steady state.
type LookupScratch struct {
	qHist    []uint16
	cands    []cand
	matchSeq []uint64
	one      []Match // backing store for LookupZWith's single result

	// shardSnap holds the per-shard entry-slice snapshots taken during
	// stage 0, so candidate references stay resolvable lock-free for the
	// rest of the lookup (the backing arrays are append-only immutable).
	shardSnap [numShards][]Entry
	shardBufs [numShards][]cand

	// viewW/viewS are the mirror buffers handed out by ViewScratch for
	// corpora that materialise mirror candidates on demand (the on-disk
	// store); the in-memory database caches its mirrors per entry instead.
	viewW []byte
	viewS timeseries.Series

	stats LookupStats
}

// NewLookupScratch returns a fresh lookup scratch.
func NewLookupScratch() *LookupScratch {
	return &LookupScratch{one: make([]Match, 0, 1)}
}

// Stats returns the stage counters of the last lookup run with this scratch.
func (sc *LookupScratch) Stats() LookupStats { return sc.stats }

// lookupScratchPool backs the scratch-less convenience entry points.
var lookupScratchPool = sync.Pool{
	New: func() any { return NewLookupScratch() },
}

// Shard references pack (shard index, entry index) into the cascade's opaque
// 64-bit candidate reference.
const dbRefShardShift = 48

// dbCorpus adapts the sharded store to the cascade's Corpus interface. The
// value lives inside the Database so the interface conversion never
// allocates.
type dbCorpus struct{ db *Database }

// ScanHist implements Corpus: the stage-0 histogram pass over every shard.
// Each shard's entry slice is snapshotted under its read lock (a header
// copy; the backing array is append-only immutable), then the bounds are
// computed lock-free. With SetScanWorkers the pass fans out over the shards
// for large dictionaries.
func (c *dbCorpus) ScanHist(sc *LookupScratch, qh []uint16) {
	db := c.db
	_, _, workers := db.params()
	if workers > 1 && int(db.count.Load()) >= concurrentScanMin {
		c.scanConcurrent(sc, qh, workers)
		return
	}
	for si := range db.shards {
		sh := &db.shards[si]
		sh.mu.RLock()
		snap := sh.entries
		sh.mu.RUnlock()
		sc.shardSnap[si] = snap
		ref := uint64(si) << dbRefShardShift
		for i := range snap {
			e := &snap[i]
			sc.AppendCandidate(ref|uint64(i), e.seq, db.enc.histLowerBound(qh, e.hist, db.n))
		}
	}
}

// View implements Corpus by resolving the packed (shard, index) reference
// against the snapshots taken in ScanHist.
func (c *dbCorpus) View(sc *LookupScratch, ref uint64) EntryView {
	e := &sc.shardSnap[ref>>dbRefShardShift][ref&(1<<dbRefShardShift-1)]
	return EntryView{
		Label:     e.Label,
		Word:      e.Word,
		RevWord:   e.revWord,
		Series:    e.Series,
		RevSeries: e.revSeries,
	}
}

// scanConcurrent fans the stage-0 histogram pass over the shards with up to
// workers goroutines — the same bounded-fan-out discipline as the pipeline's
// worker pool — then concatenates the per-shard buffers in shard order so
// the result is deterministic regardless of scheduling. Worth it only for
// large dictionaries: the fan-out allocates, which is why it is gated behind
// SetScanWorkers and concurrentScanMin.
func (c *dbCorpus) scanConcurrent(sc *LookupScratch, qh []uint16, workers int) {
	db := c.db
	if workers > numShards {
		workers = numShards
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1)) - 1
				if si >= numShards {
					return
				}
				sh := &db.shards[si]
				sh.mu.RLock()
				snap := sh.entries
				sh.mu.RUnlock()
				sc.shardSnap[si] = snap
				buf := sc.shardBufs[si][:0]
				ref := uint64(si) << dbRefShardShift
				for i := range snap {
					e := &snap[i]
					buf = append(buf, cand{
						ref: ref | uint64(i),
						seq: e.seq,
						lb:  db.enc.histLowerBound(qh, e.hist, db.n),
					})
				}
				sc.shardBufs[si] = buf
			}
		}()
	}
	wg.Wait()
	for si := range sc.shardBufs {
		sc.cands = append(sc.cands, sc.shardBufs[si]...)
	}
}

// LookupKZWith is the database's entry to the cascade kernel: it finds the
// (up to) k nearest entries to the prepared query (canonical-length
// z-normalised series z, its word qw), closest first, written into dst. dst
// is reused from the start — its existing contents are discarded — and
// capacity ≥ k makes the call allocation-free in steady state. No threshold
// is applied (see LookupK). The scratch must not be shared between
// concurrent lookups.
func (db *Database) LookupKZWith(sc *LookupScratch, z timeseries.Series, qw Word, k int, dst []Match) ([]Match, error) {
	wordWin, seriesWin, _ := db.params()
	return CascadeLookupKZ(sc, &db.corpus, db.enc, db.n, wordWin, seriesWin, z, qw, k, dst)
}

// NearestHist runs only stage 0 over the database — the degraded-mode
// answer; see HistNearest for the contract (Dist is a lower bound, not an
// exact distance).
func (db *Database) NearestHist(sc *LookupScratch, qw Word) (Match, bool) {
	return HistNearest(sc, &db.corpus, db.enc, qw)
}
