package sax

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"hdc/internal/timeseries"
)

// persist.go serialises the reference database so a deployment can build
// the sign dictionary once (on the ground station) and ship it to drones —
// the "database of strings" of §IV as an artefact.

// databaseFile is the on-disk representation.
type databaseFile struct {
	Version   int         `json:"version"`
	Segments  int         `json:"segments"`
	Alphabet  int         `json:"alphabet"`
	SeriesLen int         `json:"series_len"`
	ShiftFrac float64     `json:"shift_frac,omitempty"`
	Entries   []entryFile `json:"entries"`
}

type entryFile struct {
	Label  string    `json:"label"`
	Word   string    `json:"word"`
	Series []float64 `json:"series"`
}

// currentVersion of the file format.
const currentVersion = 1

// Save writes the database (encoder parameters + every entry) as JSON. The
// in-memory shard layout is not part of the format: entries are written in
// insertion order and re-sharded by label hash on Load, so version-1 files
// from before the sharded store round-trip unchanged.
func (db *Database) Save(w io.Writer) error {
	db.cfgMu.RLock()
	shiftFrac := db.shiftFrac
	db.cfgMu.RUnlock()
	f := databaseFile{
		Version:   currentVersion,
		Segments:  db.enc.Segments(),
		Alphabet:  db.enc.AlphabetSize(),
		SeriesLen: db.n,
		ShiftFrac: shiftFrac,
	}
	for _, e := range db.snapshot() {
		f.Entries = append(f.Entries, entryFile{
			Label:  e.Label,
			Word:   e.Word.Symbols,
			Series: e.Series,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Load reads a database previously written by Save, reconstructing the
// encoder and verifying every stored word against its series (a corrupted
// file fails loudly rather than matching wrongly).
func Load(r io.Reader) (*Database, error) {
	var f databaseFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("sax: load: %w", err)
	}
	if f.Version != currentVersion {
		return nil, fmt.Errorf("sax: unsupported database version %d", f.Version)
	}
	enc, err := NewEncoder(f.Segments, f.Alphabet)
	if err != nil {
		return nil, fmt.Errorf("sax: load: %w", err)
	}
	db, err := NewDatabase(enc, f.SeriesLen)
	if err != nil {
		return nil, fmt.Errorf("sax: load: %w", err)
	}
	if f.ShiftFrac > 0 {
		db.SetShiftWindowFrac(f.ShiftFrac)
	}
	for i, e := range f.Entries {
		if e.Label == "" {
			return nil, fmt.Errorf("sax: load: entry %d has empty label", i)
		}
		if len(e.Series) != f.SeriesLen {
			return nil, fmt.Errorf("sax: load: entry %d series length %d != %d",
				i, len(e.Series), f.SeriesLen)
		}
		s := timeseries.Series(e.Series)
		w, err := enc.Encode(s)
		if err != nil {
			return nil, fmt.Errorf("sax: load: entry %d: %w", i, err)
		}
		if w.Symbols != e.Word {
			return nil, fmt.Errorf("sax: load: entry %d word %q does not match its series (recomputed %q) — corrupted file",
				i, e.Word, w.Symbols)
		}
		db.insert(e.Label, w, s.Clone())
	}
	if db.Len() == 0 {
		return nil, errors.New("sax: load: database has no entries")
	}
	return db, nil
}
