package sax

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"hdc/internal/timeseries"
)

// persist.go serialises the reference database so a deployment can build
// the sign dictionary once (on the ground station) and ship it to drones —
// the "database of strings" of §IV as an artefact.
//
// The JSON format here is version 1; the segmented binary store under
// internal/sax/store is the version-2 format for dictionaries too large to
// re-parse on every replica restart. DecodeV1 is the shared streaming import
// path: Load uses it to fill an in-memory Database, the store's ConvertV1
// uses it to feed a segment builder, both in O(one entry) memory.

// entryFile is the on-disk representation of one entry.
type entryFile struct {
	Label  string    `json:"label"`
	Word   string    `json:"word"`
	Series []float64 `json:"series"`
}

// currentVersion of the JSON file format.
const currentVersion = 1

// saveIndentMax is the largest entry count Save still pretty-prints.
// Indented output is pleasant to diff for hand-tended reference sets; above
// this size the file is a bulk artefact and indentation would roughly double
// its bytes for no reader's benefit.
const saveIndentMax = 4096

// V1Header carries the header fields of a version-1 JSON database file, in
// the order Save writes them (before the entries array).
type V1Header struct {
	Segments  int
	Alphabet  int
	SeriesLen int
	ShiftFrac float64
}

// Save writes the database (encoder parameters + every entry) as version-1
// JSON. The in-memory shard layout is not part of the format: entries are
// written in insertion order (a streaming 16-way merge over the shards — no
// intermediate copy of the dictionary is materialised) and re-sharded by
// label hash on Load. Files up to saveIndentMax entries are indented;
// larger ones are compact, so saving 10⁶ entries buffers one entry at a
// time instead of triple-buffering the dictionary.
func (db *Database) Save(w io.Writer) error {
	db.cfgMu.RLock()
	shiftFrac := db.shiftFrac
	db.cfgMu.RUnlock()

	bw := bufio.NewWriter(w)
	indent := db.Len() <= saveIndentMax
	if indent {
		fmt.Fprintf(bw, "{\n  \"version\": %d,\n  \"segments\": %d,\n  \"alphabet\": %d,\n  \"series_len\": %d,\n",
			currentVersion, db.enc.Segments(), db.enc.AlphabetSize(), db.n)
		if shiftFrac > 0 {
			if err := writeJSONField(bw, "  ", "shift_frac", shiftFrac); err != nil {
				return err
			}
		}
		fmt.Fprint(bw, "  \"entries\": [")
	} else {
		fmt.Fprintf(bw, "{\"version\":%d,\"segments\":%d,\"alphabet\":%d,\"series_len\":%d,",
			currentVersion, db.enc.Segments(), db.enc.AlphabetSize(), db.n)
		if shiftFrac > 0 {
			if err := writeJSONField(bw, "", "shift_frac", shiftFrac); err != nil {
				return err
			}
		}
		fmt.Fprint(bw, "\"entries\":[")
	}

	first := true
	err := db.forEachInOrder(func(e *Entry) error {
		ef := entryFile{Label: e.Label, Word: e.Word.Symbols, Series: e.Series}
		var b []byte
		var err error
		if indent {
			b, err = json.MarshalIndent(ef, "    ", "  ")
		} else {
			b, err = json.Marshal(ef)
		}
		if err != nil {
			return err
		}
		if !first {
			bw.WriteByte(',')
		}
		first = false
		if indent {
			bw.WriteString("\n    ")
		}
		_, err = bw.Write(b)
		return err
	})
	if err != nil {
		return err
	}
	if indent {
		if !first {
			bw.WriteString("\n  ")
		}
		bw.WriteString("]\n}\n")
	} else {
		bw.WriteString("]}\n")
	}
	return bw.Flush()
}

// writeJSONField emits one "key": value pair (plus trailing comma) with the
// value marshalled exactly as encoding/json would.
func writeJSONField(w *bufio.Writer, pad, key string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if pad == "" {
		fmt.Fprintf(w, "%q:%s,", key, b)
	} else {
		fmt.Fprintf(w, "%s%q: %s,\n", pad, key, b)
	}
	return nil
}

// forEachInOrder calls fn for every entry in insertion (seq) order while
// holding every shard read lock (taken in index order, like collect), so the
// iteration is a point-in-time snapshot that uses O(1) extra memory.
func (db *Database) forEachInOrder(fn func(e *Entry) error) error {
	for si := range db.shards {
		db.shards[si].mu.RLock()
	}
	defer func() {
		for si := range db.shards {
			db.shards[si].mu.RUnlock()
		}
	}()
	var idx [numShards]int
	for {
		best := -1
		bestSeq := uint64(math.MaxUint64)
		for si := range db.shards {
			if i := idx[si]; i < len(db.shards[si].entries) {
				if s := db.shards[si].entries[i].seq; s < bestSeq {
					best, bestSeq = si, s
				}
			}
		}
		if best < 0 {
			return nil
		}
		e := &db.shards[best].entries[idx[best]]
		idx[best]++
		if err := fn(e); err != nil {
			return err
		}
	}
}

// DecodeV1 stream-decodes a version-1 JSON database: onHeader is called once
// with the validated header fields (which Save always writes before the
// entries array), then emit is called for each entry in insertion order with
// its verified word (every stored word is re-derived from its series, so a
// corrupted file fails loudly rather than matching wrongly). Memory use is
// O(one entry) regardless of file size — the v1 import path for both Load
// and the on-disk store's converter.
func DecodeV1(r io.Reader, onHeader func(V1Header) error, emit func(label string, w Word, z timeseries.Series) error) error {
	dec := json.NewDecoder(r)
	if err := expectDelim(dec, '{'); err != nil {
		return fmt.Errorf("sax: load: %w", err)
	}
	var (
		hdr        V1Header
		version    int
		seen       = map[string]bool{}
		enc        *Encoder
		sawEntries bool
	)
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("sax: load: %w", err)
		}
		key, ok := tok.(string)
		if !ok {
			return fmt.Errorf("sax: load: unexpected token %v", tok)
		}
		switch key {
		case "version":
			err = dec.Decode(&version)
		case "segments":
			err = dec.Decode(&hdr.Segments)
		case "alphabet":
			err = dec.Decode(&hdr.Alphabet)
		case "series_len":
			err = dec.Decode(&hdr.SeriesLen)
		case "shift_frac":
			err = dec.Decode(&hdr.ShiftFrac)
		case "entries":
			if !(seen["version"] && seen["segments"] && seen["alphabet"] && seen["series_len"]) {
				return errors.New("sax: load: entries precede the header fields")
			}
			if version != currentVersion {
				return fmt.Errorf("sax: unsupported database version %d", version)
			}
			enc, err = NewEncoder(hdr.Segments, hdr.Alphabet)
			if err != nil {
				return fmt.Errorf("sax: load: %w", err)
			}
			if err = onHeader(hdr); err != nil {
				return err
			}
			if err = decodeV1Entries(dec, enc, hdr, emit); err != nil {
				return err
			}
			sawEntries = true
			continue
		default:
			var skip json.RawMessage
			err = dec.Decode(&skip)
		}
		if err != nil {
			return fmt.Errorf("sax: load: field %q: %w", key, err)
		}
		seen[key] = true
	}
	if err := expectDelim(dec, '}'); err != nil {
		return fmt.Errorf("sax: load: %w", err)
	}
	if !sawEntries {
		return errors.New("sax: load: file has no entries array")
	}
	return nil
}

// decodeV1Entries streams the entries array, validating each entry before
// handing it on.
func decodeV1Entries(dec *json.Decoder, enc *Encoder, hdr V1Header, emit func(label string, w Word, z timeseries.Series) error) error {
	if err := expectDelim(dec, '['); err != nil {
		return fmt.Errorf("sax: load: entries: %w", err)
	}
	for i := 0; dec.More(); i++ {
		var e entryFile
		if err := dec.Decode(&e); err != nil {
			return fmt.Errorf("sax: load: entry %d: %w", i, err)
		}
		if e.Label == "" {
			return fmt.Errorf("sax: load: entry %d has empty label", i)
		}
		if len(e.Series) != hdr.SeriesLen {
			return fmt.Errorf("sax: load: entry %d series length %d != %d",
				i, len(e.Series), hdr.SeriesLen)
		}
		s := timeseries.Series(e.Series)
		w, err := enc.Encode(s)
		if err != nil {
			return fmt.Errorf("sax: load: entry %d: %w", i, err)
		}
		if w.Symbols != e.Word {
			return fmt.Errorf("sax: load: entry %d word %q does not match its series (recomputed %q) — corrupted file",
				i, e.Word, w.Symbols)
		}
		if err := emit(e.Label, w, s); err != nil {
			return err
		}
	}
	if err := expectDelim(dec, ']'); err != nil {
		return fmt.Errorf("sax: load: entries: %w", err)
	}
	return nil
}

// expectDelim consumes one token and checks it is the given delimiter.
func expectDelim(dec *json.Decoder, d json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if got, ok := tok.(json.Delim); !ok || got != d {
		return fmt.Errorf("expected %q, got %v", d, tok)
	}
	return nil
}

// Load reads a database previously written by Save, reconstructing the
// encoder and verifying every stored word against its series. The decode is
// token-streaming (DecodeV1): v1 import of a large file holds one entry at a
// time, not the whole databaseFile.
func Load(r io.Reader) (*Database, error) {
	var db *Database
	err := DecodeV1(r,
		func(h V1Header) error {
			enc, err := NewEncoder(h.Segments, h.Alphabet)
			if err != nil {
				return fmt.Errorf("sax: load: %w", err)
			}
			db, err = NewDatabase(enc, h.SeriesLen)
			if err != nil {
				return fmt.Errorf("sax: load: %w", err)
			}
			if h.ShiftFrac > 0 {
				db.SetShiftWindowFrac(h.ShiftFrac)
			}
			return nil
		},
		func(label string, w Word, z timeseries.Series) error {
			db.insert(label, w, z)
			return nil
		})
	if err != nil {
		return nil, err
	}
	if db.Len() == 0 {
		return nil, errors.New("sax: load: database has no entries")
	}
	return db, nil
}
