package sax

import (
	"errors"
	"math"

	"hdc/internal/timeseries"
)

// cascade.go is the storage-independent kernel of the three-stage lookup
// cascade (see lookup.go for the stage descriptions). The kernel is written
// against the Corpus interface so the same best-first refinement loop — and
// therefore the same deterministic, byte-identical results — runs over the
// in-memory sharded Database and over the segmented on-disk store
// (internal/sax/store), whose stage-0 histograms live in memory-mapped
// segment files instead of heap entries.
//
// A Corpus hands the kernel opaque 64-bit entry references plus the entry's
// global insertion sequence number; the kernel orders its candidate heap by
// (lower bound, seq) exactly as before, so exact-distance ties resolve
// identically regardless of which backend produced the candidates.

// Corpus is the storage abstraction the lookup cascade runs over: anything
// that can enumerate per-entry symbol histograms (stage 0) and materialise a
// full entry view on demand (stages 1–2).
//
// Implementations must be safe for the duration of one lookup: references
// handed to AppendCandidate during ScanHist must stay resolvable by View
// until the lookup returns, even if the corpus is concurrently appended to
// (both backends guarantee this with immutable, append-only storage).
type Corpus interface {
	// ScanHist runs stage 0: for every entry, compute the histogram lower
	// bound against the query histogram qh (Encoder.HistLowerBoundRaw) and
	// record the candidate with sc.AppendCandidate.
	ScanHist(sc *LookupScratch, qh []uint16)
	// View materialises the entry behind ref for the refinement stages. The
	// returned view may borrow scratch buffers (sc.ViewScratch) or
	// memory-mapped storage; it is only valid until the next View call on
	// the same scratch, which is all the kernel needs.
	View(sc *LookupScratch, ref uint64) EntryView
}

// EntryView is the cascade's read model of one stored entry: the label, the
// SAX word and z-normalised series, and their precomputed mirror candidates
// (reversed and rotated by one, see Entry). Backends that do not store the
// mirrors materialise them into scratch buffers on demand.
type EntryView struct {
	Label             string
	Word, RevWord     Word
	Series, RevSeries timeseries.Series
}

// cand is one candidate-queue element: an opaque corpus reference, the
// entry's insertion seq (deterministic tie break), and its current lower
// bound — histogram-level (refined=false) or word-MINDIST-level
// (refined=true).
type cand struct {
	ref     uint64
	seq     uint64
	lb      float64
	refined bool
}

// AppendCandidate records one stage-0 candidate into the scratch: an opaque
// entry reference (resolved later via Corpus.View), the entry's insertion
// sequence number and its histogram lower bound. Corpus implementations call
// it from ScanHist; the append reuses the scratch's candidate storage, so
// the steady state allocates nothing.
func (sc *LookupScratch) AppendCandidate(ref, seq uint64, lb float64) {
	sc.cands = append(sc.cands, cand{ref: ref, seq: seq, lb: lb})
}

// ViewScratch returns the scratch's reusable mirror buffers, sized to nb
// word symbols and nf series samples: corpus implementations that store only
// the forward candidate materialise the mirrored word/series here instead of
// allocating. The buffers are overwritten by the next View call.
func (sc *LookupScratch) ViewScratch(nb, nf int) ([]byte, timeseries.Series) {
	if cap(sc.viewW) < nb {
		sc.viewW = make([]byte, nb)
	}
	if cap(sc.viewS) < nf {
		sc.viewS = make(timeseries.Series, nf)
	}
	return sc.viewW[:nb], sc.viewS[:nf]
}

// errLookupK is returned for k < 1 lookups.
var errLookupK = errors.New("sax: lookup k < 1")

// candLess orders heap elements by (lower bound, insertion seq); the seq tie
// break keeps the pop order — and therefore exact-tie resolution —
// deterministic and identical to the linear reference scan.
func candLess(a, b cand) bool {
	if a.lb != b.lb {
		return a.lb < b.lb
	}
	return a.seq < b.seq
}

// siftDown restores the min-heap property from index i.
func siftDown(h []cand, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && candLess(h[r], h[l]) {
			m = r
		}
		if !candLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// heapify builds a min-heap in place.
func heapify(h []cand) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

// heapPop removes and returns the minimum element.
func heapPop(h []cand) (cand, []cand) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	if n > 1 {
		siftDown(h, 0)
	}
	return top, h
}

// heapPush inserts c, restoring the heap property.
func heapPush(h []cand, c cand) []cand {
	h = append(h, c)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !candLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// insertTopK inserts m (with tie-break seq) into the ascending
// (Dist, seq)-ordered dst, keeping at most k elements. seqs is maintained in
// parallel with dst.
func insertTopK(dst []Match, seqs *[]uint64, k int, m Match, seq uint64) []Match {
	s := *seqs
	pos := len(dst)
	for pos > 0 {
		p := pos - 1
		if m.Dist < dst[p].Dist || (m.Dist == dst[p].Dist && seq < s[p]) {
			pos = p
		} else {
			break
		}
	}
	if pos >= k {
		return dst // not better than the current k-th
	}
	if len(dst) < k {
		dst = append(dst, Match{})
		s = append(s, 0)
	}
	copy(dst[pos+1:], dst[pos:])
	copy(s[pos+1:], s[pos:len(dst)-1])
	dst[pos] = m
	s[pos] = seq
	*seqs = s
	return dst
}

// CascadeLookupKZ runs the full three-stage cascade over an arbitrary corpus:
// the (up to) k nearest entries to the prepared query (canonical-length
// z-normalised series z, its word qw) are written into dst, closest first.
// enc and n are the corpus's encoder and canonical series length; wordWin
// and seriesWin bound the rotation searches (-1 = unbounded, see
// Database.SetShiftWindowFrac). dst is reused from the start — its existing
// contents are discarded — and capacity ≥ k makes the call allocation-free
// in steady state. The scratch must not be shared between concurrent
// lookups; nil borrows one from an internal pool.
//
// This is the kernel behind Database.LookupKZWith and the on-disk store's
// lookups; both backends return byte-identical Match sets for the same entry
// sequence because every comparison, cutoff and tie break happens here.
func CascadeLookupKZ(sc *LookupScratch, cp Corpus, enc *Encoder, n, wordWin, seriesWin int, z timeseries.Series, qw Word, k int, dst []Match) ([]Match, error) {
	dst = dst[:0]
	if k < 1 {
		return dst, errLookupK
	}
	if qw.Alphabet != enc.alphabet || len(qw.Symbols) != enc.segments {
		return dst, ErrWordMismatch
	}
	if sc == nil {
		sc = lookupScratchPool.Get().(*LookupScratch)
		defer lookupScratchPool.Put(sc)
	}
	sc.stats = LookupStats{}
	sc.qHist = histInto(sc.qHist, qw)
	sc.matchSeq = sc.matchSeq[:0]

	// Stage 0: histogram lower bound per entry, delegated to the corpus
	// (shard scan for the in-memory database, mapped prune-index scan for
	// the on-disk store).
	sc.cands = sc.cands[:0]
	cp.ScanHist(sc, sc.qHist)
	sc.stats.Entries = len(sc.cands)
	heapify(sc.cands)

	// Best-first refinement: pop the smallest current bound; refine stage-0
	// bounds to stage-1 and re-push, run the exact stage on refined ones.
	// The prune comparisons are strict (>) so exact ties stay in play for
	// the deterministic seq tie-break, matching the linear reference bit
	// for bit.
	h := sc.cands
	for len(h) > 0 {
		cutoff := math.Inf(1)
		if len(dst) == k {
			cutoff = dst[k-1].Dist
		}
		var c cand
		c, h = heapPop(h)
		if c.lb > cutoff {
			// Heap order: every remaining bound is at least this one.
			// Count the wholesale rejection by the stage that produced
			// each surviving bound.
			if c.refined {
				sc.stats.WordPruned++
			} else {
				sc.stats.HistPruned++
			}
			for i := range h {
				if h[i].refined {
					sc.stats.WordPruned++
				} else {
					sc.stats.HistPruned++
				}
			}
			break
		}
		e := cp.View(sc, c.ref)

		if !c.refined {
			// Stage 1: MINDIST over word and mirror word.
			wlb, _, err := enc.MinDistRotationWindowCutoff(qw, e.Word, n, wordWin, cutoff)
			if err != nil {
				sc.cands = sc.cands[:0]
				return dst, err
			}
			cutRev := cutoff
			if wlb < cutRev {
				cutRev = wlb
			}
			if wlbRev, _, err := enc.MinDistRotationWindowCutoff(qw, e.RevWord, n, wordWin, cutRev); err != nil {
				sc.cands = sc.cands[:0]
				return dst, err
			} else if wlbRev < wlb {
				wlb = wlbRev
			}
			if wlb > cutoff {
				sc.stats.WordPruned++
				continue
			}
			h = heapPush(h, cand{ref: c.ref, seq: c.seq, lb: wlb, refined: true})
			continue
		}

		// Stage 2: exact rotation/mirror alignment.
		sc.stats.ExactEvals++
		d, shift, err := timeseries.MinRotationDistWindowCutoff(z, e.Series, seriesWin, cutoff)
		if err != nil {
			sc.cands = sc.cands[:0]
			return dst, err
		}
		mirrored := false
		cutM := cutoff
		if d < cutM {
			cutM = d
		}
		if dRev, sRev, err := timeseries.MinRotationDistWindowCutoff(z, e.RevSeries, seriesWin, cutM); err != nil {
			sc.cands = sc.cands[:0]
			return dst, err
		} else if dRev < d {
			d, shift, mirrored = dRev, sRev, true
		}
		dst = insertTopK(dst, &sc.matchSeq, k, Match{
			Label:    e.Label,
			Word:     e.Word,
			WordDist: c.lb,
			Dist:     d,
			Shift:    shift,
			Mirrored: mirrored,
		}, c.seq)
	}
	sc.cands = sc.cands[:0]
	return dst, nil
}
