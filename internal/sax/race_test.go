package sax

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hdc/internal/timeseries"
)

// TestDatabaseConcurrentLookupAdd exercises the database under the
// streaming pipeline's access pattern: many workers issuing Lookup/LookupZ
// while exemplars are registered concurrently. Run with -race; the
// assertions also catch lost entries and torn matches without it.
func TestDatabaseConcurrentLookupAdd(t *testing.T) {
	enc, err := NewEncoder(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(enc, 128)
	if err != nil {
		t.Fatal(err)
	}

	mkSeries := func(seed int64) timeseries.Series {
		rng := rand.New(rand.NewSource(seed))
		s := make(timeseries.Series, 128)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		return s
	}
	// Seed a few entries so lookups always have candidates.
	for i := 0; i < 4; i++ {
		if err := db.Add(fmt.Sprintf("seed-%d", i), mkSeries(int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	const lookupWorkers = 6
	const adders = 2
	const perWorker = 60

	var wg sync.WaitGroup
	for w := 0; w < lookupWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := mkSeries(int64(100 + w))
			z := q.ZNormalize()
			qw, err := enc.Encode(z)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perWorker; i++ {
				if m, err := db.Lookup(q, 1e9); err != nil {
					t.Errorf("lookup: %v", err)
					return
				} else if m.Label == "" {
					t.Error("lookup returned empty label under huge threshold")
					return
				}
				if _, err := db.LookupZ(z, qw, 1e9); err != nil {
					t.Errorf("lookupZ: %v", err)
					return
				}
			}
		}(w)
	}
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				label := fmt.Sprintf("dyn-%d-%d", a, i)
				if err := db.Add(label, mkSeries(int64(1000+a*perWorker+i))); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}(a)
	}
	wg.Wait()

	want := 4 + adders*perWorker
	if got := db.Len(); got != want {
		t.Fatalf("entries lost: %d, want %d", got, want)
	}
}
