package sax

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hdc/internal/timeseries"
)

// TestDatabaseConcurrentLookupAdd exercises the database under the
// streaming pipeline's access pattern: many workers issuing Lookup/LookupZ
// while exemplars are registered concurrently. Run with -race; the
// assertions also catch lost entries and torn matches without it.
func TestDatabaseConcurrentLookupAdd(t *testing.T) {
	enc, err := NewEncoder(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(enc, 128)
	if err != nil {
		t.Fatal(err)
	}

	mkSeries := func(seed int64) timeseries.Series {
		rng := rand.New(rand.NewSource(seed))
		s := make(timeseries.Series, 128)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		return s
	}
	// Seed a few entries so lookups always have candidates.
	for i := 0; i < 4; i++ {
		if err := db.Add(fmt.Sprintf("seed-%d", i), mkSeries(int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	const lookupWorkers = 6
	const adders = 2
	const perWorker = 60

	var wg sync.WaitGroup
	for w := 0; w < lookupWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := mkSeries(int64(100 + w))
			z := q.ZNormalize()
			qw, err := enc.Encode(z)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perWorker; i++ {
				if m, err := db.Lookup(q, 1e9); err != nil {
					t.Errorf("lookup: %v", err)
					return
				} else if m.Label == "" {
					t.Error("lookup returned empty label under huge threshold")
					return
				}
				if _, err := db.LookupZ(z, qw, 1e9); err != nil {
					t.Errorf("lookupZ: %v", err)
					return
				}
			}
		}(w)
	}
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				label := fmt.Sprintf("dyn-%d-%d", a, i)
				if err := db.Add(label, mkSeries(int64(1000+a*perWorker+i))); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}(a)
	}
	wg.Wait()

	want := 4 + adders*perWorker
	if got := db.Len(); got != want {
		t.Fatalf("entries lost: %d, want %d", got, want)
	}
}

// TestDatabaseConcurrentShardedLookup drives the sharded store the way a
// fleet-scale deployment does: a dictionary large enough to engage the
// concurrent shard scan, per-worker scratches issuing LookupZWith/LookupKZWith,
// and adders landing entries across shards the whole time. Run with -race.
func TestDatabaseConcurrentShardedLookup(t *testing.T) {
	enc, err := NewEncoder(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(enc, 64)
	if err != nil {
		t.Fatal(err)
	}
	db.SetScanWorkers(4)

	mkSeries := func(seed int64) timeseries.Series {
		rng := rand.New(rand.NewSource(seed))
		s := make(timeseries.Series, 64)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		return s
	}
	// Big enough that the concurrent scan path engages (≥ concurrentScanMin).
	const seedEntries = 300
	for i := 0; i < seedEntries; i++ {
		if err := db.Add(fmt.Sprintf("label-%03d", i%37), mkSeries(int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	const lookupWorkers = 6
	const adders = 2
	const perWorker = 40

	var wg sync.WaitGroup
	for w := 0; w < lookupWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := NewLookupScratch()
			var topk [3]Match
			q := mkSeries(int64(5000 + w))
			z := q.ZNormalize()
			qw, err := enc.Encode(z)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perWorker; i++ {
				m, err := db.LookupZWith(sc, z, qw, 1e9)
				if err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
				if m.Label == "" {
					t.Error("empty label under huge threshold")
					return
				}
				ms, err := db.LookupKZWith(sc, z, qw, 3, topk[:0])
				if err != nil {
					t.Errorf("lookupK: %v", err)
					return
				}
				// Entries are append-only, so the second lookup sees a
				// superset of what the first saw: its best can only be
				// at least as close.
				if len(ms) != 3 || ms[0].Dist > m.Dist {
					t.Errorf("lookupK best %+v worse than earlier lookup %+v", ms[0], m)
					return
				}
				if ms[0].Dist > ms[1].Dist || ms[1].Dist > ms[2].Dist {
					t.Error("lookupK results not ascending")
					return
				}
			}
		}(w)
	}
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				label := fmt.Sprintf("dyn-%d-%d", a, i)
				if err := db.Add(label, mkSeries(int64(9000+a*perWorker+i))); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}(a)
	}
	wg.Wait()

	want := seedEntries + adders*perWorker
	if got := db.Len(); got != want {
		t.Fatalf("entries lost: %d, want %d", got, want)
	}
}
