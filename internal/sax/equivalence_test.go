package sax

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"hdc/internal/timeseries"
)

// equivalence_test.go property-tests the indexed/sharded cascade against the
// retained linear-scan reference: over randomized dictionaries and rotated/
// mirrored/noisy queries, LookupZWith must return byte-identical Match
// results to LookupZLinear — same label, same word, same word distance, same
// exact distance bits, same shift, same mirror flag.

// randSmoothSeries draws a random band-limited series: a few random
// harmonics plus noise, the closed-contour shape family the database indexes.
func randSmoothSeries(rng *rand.Rand, n int) timeseries.Series {
	a1, a2, a3 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
	p1, p2, p3 := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
	s := make(timeseries.Series, n)
	for i := range s {
		t := 2 * math.Pi * float64(i) / float64(n)
		s[i] = 1 + 0.6*a1*math.Cos(t+p1) + 0.4*a2*math.Cos(2*t+p2) + 0.3*a3*math.Cos(3*t+p3) +
			0.05*rng.NormFloat64()
	}
	return s
}

// buildRandomDB fills a database with nEntries random shapes spread over
// nLabels labels (duplicate labels = multiple exemplars, exercising shard
// collisions).
func buildRandomDB(t testing.TB, rng *rand.Rand, nEntries, nLabels, n int) *Database {
	t.Helper()
	enc, err := NewEncoder(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(enc, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nEntries; i++ {
		label := fmt.Sprintf("sign-%02d", i%nLabels)
		if err := db.Add(label, randSmoothSeries(rng, n)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// queryVariants derives the query set from a base series: as-is, rotated,
// mirrored, mirrored+rotated, noisy-rotated, and a fresh random shape.
func queryVariants(rng *rand.Rand, base timeseries.Series, n int) []timeseries.Series {
	rot := rng.Intn(n)
	noisy := base.Rotate(rot).Clone()
	for i := range noisy {
		noisy[i] += 0.1 * rng.NormFloat64()
	}
	return []timeseries.Series{
		base,
		base.Rotate(rot),
		base.Reverse(),
		base.Reverse().Rotate(rot),
		noisy,
		randSmoothSeries(rng, n),
	}
}

func TestCascadeMatchesLinearReference(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	const n = 128
	sizes := []int{1, 3, 17, 120}
	for _, size := range sizes {
		db := buildRandomDB(t, rng, size, size/3+1, n)
		// Exercise both window settings: full rotation search and bounded.
		for _, frac := range []float64{0, 0.15} {
			db.SetShiftWindowFrac(frac)
			sc := NewLookupScratch()
			for trial := 0; trial < 12; trial++ {
				base := randSmoothSeries(rng, n)
				if trial%2 == 0 {
					// Half the queries are perturbations of a stored entry.
					e := db.snapshot()[rng.Intn(db.Len())]
					base = e.Series
				}
				for qi, q := range queryVariants(rng, base, n) {
					rs, err := q.ResampleLinear(n)
					if err != nil {
						t.Fatal(err)
					}
					z := rs.ZNormalize()
					qw, err := db.Encoder().Encode(z)
					if err != nil {
						t.Fatal(err)
					}
					for _, threshold := range []float64{math.Inf(1), 4.0, 0.01} {
						got, gotErr := db.LookupZWith(sc, z, qw, threshold)
						want, wantErr := db.LookupZLinear(z, qw, threshold)
						if !errors.Is(gotErr, wantErr) && !errors.Is(wantErr, gotErr) {
							t.Fatalf("size=%d frac=%v query=%d thr=%v: err %v != %v", size, frac, qi, threshold, gotErr, wantErr)
						}
						if got != want {
							t.Fatalf("size=%d frac=%v query=%d thr=%v:\n cascade %+v\n linear  %+v\n stats %+v",
								size, frac, qi, threshold, got, want, sc.Stats())
						}
					}
				}
			}
		}
	}
}

// TestLookupKMatchesBruteForce checks the top-k results (order, distances,
// alignment diagnostics) against a brute-force per-entry evaluation sorted
// by (distance, insertion order).
func TestLookupKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	const n = 128
	db := buildRandomDB(t, rng, 40, 11, n)
	sc := NewLookupScratch()
	wordWin, seriesWin, _ := db.params()

	for trial := 0; trial < 15; trial++ {
		q := randSmoothSeries(rng, n)
		z := q.ZNormalize()
		qw, err := db.Encoder().Encode(z)
		if err != nil {
			t.Fatal(err)
		}

		// Brute force: evaluate every entry exactly the way the kernels do.
		type ranked struct {
			m   Match
			seq uint64
		}
		var all []ranked
		for _, e := range db.snapshot() {
			lb, _, err := db.enc.MinDistRotationWindow(qw, e.Word, n, wordWin)
			if err != nil {
				t.Fatal(err)
			}
			if lbRev, _, err := db.enc.MinDistRotationWindow(qw, e.revWord, n, wordWin); err != nil {
				t.Fatal(err)
			} else if lbRev < lb {
				lb = lbRev
			}
			d, shift, err := timeseries.MinRotationDistWindow(z, e.Series, seriesWin)
			if err != nil {
				t.Fatal(err)
			}
			mirrored := false
			if dRev, sRev, err := timeseries.MinRotationDistWindow(z, e.revSeries, seriesWin); err != nil {
				t.Fatal(err)
			} else if dRev < d {
				d, shift, mirrored = dRev, sRev, true
			}
			all = append(all, ranked{
				m:   Match{Label: e.Label, Word: e.Word, WordDist: lb, Dist: d, Shift: shift, Mirrored: mirrored},
				seq: e.seq,
			})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].m.Dist != all[j].m.Dist {
				return all[i].m.Dist < all[j].m.Dist
			}
			return all[i].seq < all[j].seq
		})

		for _, k := range []int{1, 2, 5, 40, 60} {
			got, err := db.LookupKZWith(sc, z, qw, k, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantLen := k
			if wantLen > len(all) {
				wantLen = len(all)
			}
			if len(got) != wantLen {
				t.Fatalf("k=%d: got %d matches, want %d", k, len(got), wantLen)
			}
			for i := range got {
				if got[i] != all[i].m {
					t.Fatalf("k=%d rank %d:\n got  %+v\n want %+v", k, i, got[i], all[i].m)
				}
			}
		}
	}
}

// TestLookupKMargin sanity-checks the confidence margin helper.
func TestLookupKMargin(t *testing.T) {
	if abs, rel := Margin(nil); abs != 0 || rel != 0 {
		t.Fatalf("empty margin = (%v, %v)", abs, rel)
	}
	one := []Match{{Dist: 2}}
	if abs, rel := Margin(one); !math.IsInf(abs, 1) || rel != 1 {
		t.Fatalf("single margin = (%v, %v)", abs, rel)
	}
	two := []Match{{Dist: 1}, {Dist: 4}}
	if abs, rel := Margin(two); abs != 3 || rel != 0.75 {
		t.Fatalf("margin = (%v, %v)", abs, rel)
	}
}

// TestLookupConcurrentScanEquivalence: the concurrent shard scan must return
// exactly what the serial scan returns, for dictionaries above and below the
// engagement threshold.
func TestLookupConcurrentScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	const n = 64
	for _, size := range []int{60, 300} {
		db := buildRandomDB(t, rng, size, 23, n)
		sc := NewLookupScratch()
		for trial := 0; trial < 10; trial++ {
			q := randSmoothSeries(rng, n)
			z := q.ZNormalize()
			qw, err := db.Encoder().Encode(z)
			if err != nil {
				t.Fatal(err)
			}
			db.SetScanWorkers(0)
			serial, serialErr := db.LookupZWith(sc, z, qw, math.Inf(1))
			db.SetScanWorkers(4)
			conc, concErr := db.LookupZWith(sc, z, qw, math.Inf(1))
			db.SetScanWorkers(0)
			if (serialErr == nil) != (concErr == nil) || serial != conc {
				t.Fatalf("size=%d: concurrent scan diverged: %+v (%v) vs %+v (%v)",
					size, conc, concErr, serial, serialErr)
			}
		}
	}
}
