package flight

import (
	"errors"
	"fmt"
	"math"

	"hdc/internal/geom"
)

// Features summarises a trajectory with the observables a human bystander
// (or the E12 harness) can extract by watching the drone.
type Features struct {
	Duration       float64 // seconds
	NetHorizontal  float64 // |end-start| on the ground plane (m)
	PathHorizontal float64 // horizontal path length (m)
	NetVertical    float64 // end-start altitude (m, signed)
	VertRange      float64 // max-min altitude (m)
	VertCycles     int     // completed up-down oscillations
	YawRange       float64 // total heading swing (rad)
	YawCycles      int     // completed left-right yaw oscillations
	Closed         bool    // returns near its starting point
	CornerCount    int     // quarter-turn-like corners (45°–150°)
	Reversals      int     // about-face turns (≥150°) — the poke fingerprint
	StartAlt       float64
	EndAlt         float64
}

// ErrTrajectoryTooShort is returned when fewer than three samples exist.
var ErrTrajectoryTooShort = errors.New("flight: trajectory too short to classify")

// ExtractFeatures computes observer features from a trajectory.
func ExtractFeatures(tr Trajectory) (Features, error) {
	if len(tr) < 3 {
		return Features{}, ErrTrajectoryTooShort
	}
	var f Features
	f.Duration = tr.Duration()
	start, end := tr[0], tr[len(tr)-1]
	f.StartAlt = start.Pos.Z
	f.EndAlt = end.Pos.Z
	f.NetVertical = end.Pos.Z - start.Pos.Z
	f.NetHorizontal = end.Pos.XY().Dist(start.Pos.XY())

	minZ, maxZ := start.Pos.Z, start.Pos.Z
	for i := 1; i < len(tr); i++ {
		f.PathHorizontal += tr[i].Pos.XY().Dist(tr[i-1].Pos.XY())
		minZ = math.Min(minZ, tr[i].Pos.Z)
		maxZ = math.Max(maxZ, tr[i].Pos.Z)
	}
	f.VertRange = maxZ - minZ
	f.Closed = f.NetHorizontal < 0.5 && math.Abs(f.NetVertical) < 0.5

	f.VertCycles = countOscillations(tr, func(s Sample) float64 { return s.Pos.Z }, 0.2)

	// Yaw swing relative to the initial heading, unwrapped.
	var yawMin, yawMax, acc float64
	prev := start.Heading
	for i := 1; i < len(tr); i++ {
		acc += prev.Diff(tr[i].Heading)
		prev = tr[i].Heading
		yawMin = math.Min(yawMin, acc)
		yawMax = math.Max(yawMax, acc)
	}
	f.YawRange = yawMax - yawMin
	f.YawCycles = countOscillationsF(tr, yawSeries(tr), geom.Deg2Rad(20))

	f.CornerCount, f.Reversals = countTurnEvents(tr)
	return f, nil
}

// yawSeries unwraps headings into a continuous angle series.
func yawSeries(tr Trajectory) []float64 {
	out := make([]float64, len(tr))
	var acc float64
	prev := tr[0].Heading
	for i := 1; i < len(tr); i++ {
		acc += prev.Diff(tr[i].Heading)
		prev = tr[i].Heading
		out[i] = acc
	}
	return out
}

// countOscillations counts completed out-and-back cycles of a scalar
// observable with hysteresis band amp.
func countOscillations(tr Trajectory, get func(Sample) float64, amp float64) int {
	vals := make([]float64, len(tr))
	for i, s := range tr {
		vals[i] = get(s)
	}
	return countOscillationsF(tr, vals, amp)
}

func countOscillationsF(tr Trajectory, vals []float64, amp float64) int {
	if len(vals) == 0 {
		return 0
	}
	base := vals[0]
	state := 0 // 0 neutral, +1 above, -1 below
	var swings int
	for _, v := range vals {
		switch {
		case v > base+amp && state != 1:
			state = 1
			swings++
		case v < base-amp && state != -1:
			state = -1
			swings++
		}
	}
	return swings / 2
}

// countTurnEvents segments the horizontal path into turn events and counts
// quarter-turn corners (45°–150°, the rectangle fingerprint) and reversals
// (≥150°, the poke fingerprint). The drone's acceleration limit rounds
// turns into arcs, so signed turning angle is accumulated per event; an
// event closes when the path runs straight again or the turn direction
// flips.
func countTurnEvents(tr Trajectory) (corners, reversals int) {
	// Downsample to motion segments of ≥ 0.3 m to suppress jitter.
	var pts []geom.Vec2
	last := tr[0].Pos.XY()
	pts = append(pts, last)
	for _, s := range tr[1:] {
		p := s.Pos.XY()
		if p.Dist(last) >= 0.3 {
			pts = append(pts, p)
			last = p
		}
	}
	if len(pts) < 3 {
		return 0, 0
	}
	var acc float64
	straightRun := 0
	closeEvent := func() {
		a := math.Abs(acc)
		switch {
		case a >= geom.Deg2Rad(150):
			reversals++
		case a >= geom.Deg2Rad(45):
			corners++
		}
		acc = 0
	}
	prevDir := pts[1].Sub(pts[0]).Unit()
	for i := 2; i < len(pts); i++ {
		dir := pts[i].Sub(pts[i-1]).Unit()
		turn := math.Atan2(prevDir.Cross(dir), prevDir.Dot(dir))
		prevDir = dir
		if math.Abs(turn) < geom.Deg2Rad(12) {
			straightRun++
			if straightRun >= 2 {
				closeEvent()
			}
			continue
		}
		straightRun = 0
		if acc != 0 && turn*acc < 0 {
			closeEvent()
		}
		acc += turn
	}
	closeEvent()
	return corners, reversals
}

// Classify identifies the pattern a trajectory most plausibly realises,
// returning the features alongside. The rules mirror how the paper intends
// bystanders to read the patterns: unambiguous gross-motion signatures.
func Classify(tr Trajectory) (Pattern, Features, error) {
	f, err := ExtractFeatures(tr)
	if err != nil {
		return 0, Features{}, err
	}
	switch {
	// Vertical transit patterns: dominated by altitude change, little
	// horizontal motion.
	case f.NetVertical > 1 && f.NetHorizontal < 1 && f.StartAlt < 0.5:
		return PatternTakeOff, f, nil
	case f.NetVertical < -1 && f.NetHorizontal < 1 && f.EndAlt < 0.2:
		return PatternLand, f, nil

	// Nod: repeated vertical oscillation, closed, no net motion.
	case f.VertCycles >= 2 && f.Closed && f.VertRange < 2:
		return PatternNod, f, nil

	// Head turn: yaw oscillation with essentially no translation.
	case f.YawCycles >= 2 && f.PathHorizontal < 1.5:
		return PatternHeadTurn, f, nil

	// Poke: closed out-and-back lunges — about-face reversals dominate.
	case f.Closed && f.Reversals >= 2 && f.Reversals > f.CornerCount:
		return PatternPoke, f, nil

	// Rectangle: closed horizontal circuit with ≥ 3 quarter-turn corners.
	case f.Closed && f.CornerCount >= 3 && f.PathHorizontal > 4:
		return PatternRectangle, f, nil

	// Degraded poke (gusts can blur a reversal into a tight arc): closed
	// path with substantial travel and no vertical signalling.
	case f.Closed && f.PathHorizontal > 1 && f.VertCycles < 2 && f.Reversals >= 1:
		return PatternPoke, f, nil

	// Cruise: sustained horizontal displacement at altitude.
	case f.NetHorizontal > 1.5 && math.Abs(f.NetVertical) < 1:
		return PatternCruise, f, nil
	}
	return 0, f, fmt.Errorf("flight: trajectory matches no pattern (features %+v)", f)
}
