// Package flight simulates the drone airframe the paper's signalling rides
// on: a kinematic multicopter model with wind disturbance, a waypoint
// controller, the three standard flight patterns (vertical take-off,
// horizontal cruise, vertical landing — §III, Fig 2) and the four
// communicative patterns (poke, nod = yes, head-turn = no, rectangle = area
// request), plus the observer-side pattern classifier used to quantify how
// "unmistakable" the patterns are (E12).
package flight

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hdc/internal/geom"
)

// Params bounds the drone's kinematics. The defaults approximate a small
// commercial hexacopter of the class the paper used.
type Params struct {
	MaxSpeed   float64 // horizontal m/s
	MaxAscent  float64 // m/s
	MaxDescent float64 // m/s (positive)
	MaxAccel   float64 // m/s²
	MaxYawRate float64 // rad/s
	CruiseAlt  float64 // default working altitude (m)
}

// DefaultParams returns the repository's standard airframe.
func DefaultParams() Params {
	return Params{
		MaxSpeed:   5,
		MaxAscent:  2.5,
		MaxDescent: 1.5,
		MaxAccel:   4,
		MaxYawRate: geom.Deg2Rad(120),
		CruiseAlt:  5,
	}
}

// Validate rejects non-positive limits.
func (p Params) Validate() error {
	if p.MaxSpeed <= 0 || p.MaxAscent <= 0 || p.MaxDescent <= 0 ||
		p.MaxAccel <= 0 || p.MaxYawRate <= 0 || p.CruiseAlt <= 0 {
		return fmt.Errorf("flight: non-positive parameter in %+v", p)
	}
	return nil
}

// State is the instantaneous kinematic state.
type State struct {
	Pos     geom.Vec3
	Vel     geom.Vec3
	Heading geom.Heading
}

// Wind is an Ornstein-Uhlenbeck gust model on the horizontal plane: a mean
// wind plus exponentially-correlated random gusts. A nil *Wind means calm
// air.
type Wind struct {
	Mean     geom.Vec2 // steady component (m/s)
	GustStd  float64   // standard deviation of the gust process (m/s)
	TauS     float64   // gust correlation time (s), default 2
	gust     geom.Vec2
	rng      *rand.Rand
	prepared bool
}

// NewWind builds a gust model; rng must be non-nil when gustStd > 0.
func NewWind(mean geom.Vec2, gustStd float64, rng *rand.Rand) (*Wind, error) {
	if gustStd > 0 && rng == nil {
		return nil, errors.New("flight: gusty wind needs a rand source")
	}
	return &Wind{Mean: mean, GustStd: gustStd, TauS: 2, rng: rng}, nil
}

// Sample advances the gust process by dt and returns the total wind vector.
func (w *Wind) Sample(dt float64) geom.Vec2 {
	if w == nil {
		return geom.Vec2{}
	}
	if w.GustStd > 0 && w.rng != nil {
		if !w.prepared {
			w.gust = geom.V2(w.rng.NormFloat64(), w.rng.NormFloat64()).Scale(w.GustStd)
			w.prepared = true
		}
		tau := w.TauS
		if tau <= 0 {
			tau = 2
		}
		a := math.Exp(-dt / tau)
		s := w.GustStd * math.Sqrt(1-a*a)
		w.gust = w.gust.Scale(a).Add(geom.V2(w.rng.NormFloat64(), w.rng.NormFloat64()).Scale(s))
	}
	return w.Mean.Add(w.gust)
}

// Drone is the kinematic simulator. Not safe for concurrent use.
type Drone struct {
	P    Params
	S    State
	Wind *Wind

	rotorsOn bool
}

// New creates a drone parked at pos with rotors off.
func New(p Params, pos geom.Vec3) (*Drone, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Drone{P: p, S: State{Pos: pos}}, nil
}

// RotorsOn reports rotor state.
func (d *Drone) RotorsOn() bool { return d.rotorsOn }

// StartRotors spins up; required before any motion.
func (d *Drone) StartRotors() { d.rotorsOn = true }

// groundTolerance is how close to the ground the drone must be before the
// rotors may stop — skids compress by a few centimetres on touchdown.
const groundTolerance = 0.08

// StopRotors shuts down. It returns an error if the drone is airborne —
// stopping rotors in flight is exactly the kind of hazard the paper's
// safety-first framing exists to avoid. On success the drone settles onto
// the ground.
func (d *Drone) StopRotors() error {
	if d.S.Pos.Z > groundTolerance {
		return fmt.Errorf("flight: refusing rotor stop at %.2f m altitude", d.S.Pos.Z)
	}
	d.rotorsOn = false
	d.S.Vel = geom.Vec3{}
	d.S.Pos.Z = 0
	return nil
}

// Step advances the simulation by dt seconds towards the commanded velocity
// (world frame) and yaw rate, honouring acceleration and rate limits and
// wind. With rotors off the drone stays put.
func (d *Drone) Step(dt float64, cmdVel geom.Vec3, cmdYawRate float64) {
	if dt <= 0 || !d.rotorsOn {
		return
	}
	// Clamp commanded velocity to performance limits.
	h := cmdVel.XY()
	if n := h.Norm(); n > d.P.MaxSpeed {
		h = h.Scale(d.P.MaxSpeed / n)
	}
	vz := geom.Clamp(cmdVel.Z, -d.P.MaxDescent, d.P.MaxAscent)
	want := geom.V3(h.X, h.Y, vz)

	// Acceleration limit.
	dv := want.Sub(d.S.Vel)
	if n := dv.Norm(); n > d.P.MaxAccel*dt {
		dv = dv.Scale(d.P.MaxAccel * dt / n)
	}
	d.S.Vel = d.S.Vel.Add(dv)

	// Wind advects the airframe.
	wind := d.Wind.Sample(dt)
	ground := d.S.Vel.Add(geom.V3(wind.X, wind.Y, 0))

	d.S.Pos = d.S.Pos.Add(ground.Scale(dt))
	if d.S.Pos.Z < 0 {
		d.S.Pos.Z = 0
		if d.S.Vel.Z < 0 {
			d.S.Vel.Z = 0
		}
	}

	// Yaw.
	yr := geom.Clamp(cmdYawRate, -d.P.MaxYawRate, d.P.MaxYawRate)
	d.S.Heading = d.S.Heading.Add(yr * dt)
}

// velocityTowards computes a braking-aware velocity command to approach a
// waypoint: full speed far out, proportional inside the braking distance.
func (d *Drone) velocityTowards(target geom.Vec3, speed float64) geom.Vec3 {
	delta := target.Sub(d.S.Pos)
	dist := delta.Norm()
	if dist < 1e-9 {
		return geom.Vec3{}
	}
	// Braking distance v²/(2a) with margin.
	v := speed
	brake := math.Sqrt(2 * d.P.MaxAccel * dist * 0.7)
	if brake < v {
		v = brake
	}
	return delta.Scale(v / dist)
}

// FlyTo runs the waypoint controller until the drone is within tol of
// target or maxDur elapses, stepping at dt and recording the trajectory
// into rec (which may be nil). It reports whether the waypoint was reached.
func (d *Drone) FlyTo(target geom.Vec3, speed, dt, maxDur, tol float64, rec *Recorder) bool {
	if speed <= 0 || speed > d.P.MaxSpeed {
		speed = d.P.MaxSpeed
	}
	steps := int(maxDur / dt)
	for i := 0; i < steps; i++ {
		if d.S.Pos.Dist(target) <= tol {
			return true
		}
		cmd := d.velocityTowards(target, speed)
		// Point the nose along horizontal motion when moving.
		var yawRate float64
		if h := cmd.XY(); h.Norm() > 0.3 {
			desired := geom.HeadingOf(h)
			yawRate = geom.Clamp(d.S.Heading.Diff(desired)*3, -d.P.MaxYawRate, d.P.MaxYawRate)
		}
		d.Step(dt, cmd, yawRate)
		rec.Record(dt, d.S)
	}
	return d.S.Pos.Dist(target) <= tol
}

// Hover actively holds the current position for dur seconds (recording
// samples). Unlike a zero-velocity command, it fights wind drift.
func (d *Drone) Hover(dur, dt float64, rec *Recorder) {
	anchor := d.S.Pos
	steps := int(dur / dt)
	for i := 0; i < steps; i++ {
		d.Step(dt, d.velocityTowards(anchor, d.P.MaxSpeed/2), 0)
		rec.Record(dt, d.S)
	}
}
