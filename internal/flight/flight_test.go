package flight

import (
	"math"
	"math/rand"
	"testing"

	"hdc/internal/geom"
)

func newDrone(t testing.TB) *Drone {
	t.Helper()
	d, err := New(DefaultParams(), geom.V3(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func airborne(t testing.TB) *Drone {
	t.Helper()
	d := newDrone(t)
	e := NewExecutor(d)
	if _, err := e.Fly(PatternTakeOff, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.MaxSpeed = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero speed should fail")
	}
}

func TestRotorSafety(t *testing.T) {
	d := newDrone(t)
	// No motion with rotors off.
	d.Step(0.1, geom.V3(1, 0, 1), 0)
	if d.S.Pos != (geom.V3(0, 0, 0)) {
		t.Fatal("moved with rotors off")
	}
	d.StartRotors()
	for i := 0; i < 100; i++ {
		d.Step(0.05, geom.V3(0, 0, 2), 0)
	}
	if d.S.Pos.Z < 1 {
		t.Fatalf("climb failed: %v", d.S.Pos)
	}
	// Refuse rotor stop in mid-air.
	if err := d.StopRotors(); err == nil {
		t.Fatal("rotor stop at altitude must be refused")
	}
}

func TestStepLimits(t *testing.T) {
	d := newDrone(t)
	d.StartRotors()
	// Command absurd velocity; speed must stay within limits (+wind 0).
	for i := 0; i < 200; i++ {
		d.Step(0.05, geom.V3(100, 0, 100), 99)
	}
	if h := d.S.Vel.XY().Norm(); h > d.P.MaxSpeed+1e-9 {
		t.Fatalf("horizontal speed %v exceeds limit", h)
	}
	if d.S.Vel.Z > d.P.MaxAscent+1e-9 {
		t.Fatalf("climb rate %v exceeds limit", d.S.Vel.Z)
	}
}

func TestGroundClamp(t *testing.T) {
	d := newDrone(t)
	d.StartRotors()
	for i := 0; i < 100; i++ {
		d.Step(0.05, geom.V3(0, 0, -5), 0)
	}
	if d.S.Pos.Z != 0 {
		t.Fatalf("drone went underground: %v", d.S.Pos.Z)
	}
}

func TestFlyToReachesWaypoint(t *testing.T) {
	d := airborne(t)
	rec := &Recorder{}
	ok := d.FlyTo(geom.V3(10, 5, 5), 0, 0.05, 60, 0.2, rec)
	if !ok {
		t.Fatalf("waypoint unreached, at %v", d.S.Pos)
	}
	if len(rec.Trajectory()) == 0 {
		t.Fatal("no trajectory recorded")
	}
	// Heading should roughly point along the flown direction at some point.
	if d.S.Pos.Dist(geom.V3(10, 5, 5)) > 0.2 {
		t.Fatal("final position off")
	}
}

func TestWindPushesDrone(t *testing.T) {
	d := airborne(t)
	w, err := NewWind(geom.V2(2, 0), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Wind = w
	start := d.S.Pos
	for i := 0; i < 100; i++ {
		d.Step(0.05, geom.Vec3{}, 0) // hover command, wind drifts it
	}
	if d.S.Pos.X-start.X < 5 {
		t.Fatalf("steady wind failed to drift the drone: %v", d.S.Pos)
	}
}

func TestWindGustsNeedRng(t *testing.T) {
	if _, err := NewWind(geom.V2(0, 0), 1, nil); err == nil {
		t.Fatal("gusts without rng should fail")
	}
	w, err := NewWind(geom.V2(0, 0), 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Gusts vary over time but stay bounded in distribution.
	var maxN float64
	for i := 0; i < 1000; i++ {
		g := w.Sample(0.05)
		if n := g.Norm(); n > maxN {
			maxN = n
		}
	}
	if maxN == 0 {
		t.Fatal("gusts never materialised")
	}
	if maxN > 8 { // 8σ would be absurd
		t.Fatalf("gust %v implausible", maxN)
	}
	// nil wind is calm.
	var calm *Wind
	if calm.Sample(0.05) != (geom.Vec2{}) {
		t.Fatal("nil wind must be calm")
	}
}

func TestTakeOffPattern(t *testing.T) {
	d := newDrone(t)
	e := NewExecutor(d)
	tr, err := e.Fly(PatternTakeOff, geom.Vec3{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.S.Pos.Z-d.P.CruiseAlt) > 0.2 {
		t.Fatalf("altitude after take-off: %v", d.S.Pos.Z)
	}
	// Vertical: no horizontal wandering.
	for _, s := range tr {
		if s.Pos.XY().Norm() > 0.3 {
			t.Fatalf("take-off drifted horizontally: %v", s.Pos)
		}
	}
	// Take-off from mid-air is rejected.
	if _, err := e.Fly(PatternTakeOff, geom.Vec3{}); err == nil {
		t.Fatal("second take-off should fail")
	}
}

func TestLandPattern(t *testing.T) {
	d := airborne(t)
	e := NewExecutor(d)
	tr, err := e.Fly(PatternLand, geom.Vec3{})
	if err != nil {
		t.Fatal(err)
	}
	if d.S.Pos.Z > 0.05 {
		t.Fatalf("still airborne after landing: %v", d.S.Pos.Z)
	}
	// Fig 2 ordering: rotors off only after touchdown (StopRotors inside
	// Fly(PatternLand) would have errored otherwise).
	if d.RotorsOn() {
		t.Fatal("rotors still on after landing")
	}
	if tr.Duration() <= 0 {
		t.Fatal("empty landing trajectory")
	}
}

func TestGroundedPatternsRejected(t *testing.T) {
	d := newDrone(t)
	e := NewExecutor(d)
	for _, p := range []Pattern{PatternCruise, PatternLand, PatternPoke, PatternNod, PatternHeadTurn, PatternRectangle} {
		if _, err := e.Fly(p, geom.V3(5, 5, 0)); err == nil {
			t.Errorf("%v on the ground should fail", p)
		}
	}
}

func TestInvalidPattern(t *testing.T) {
	d := airborne(t)
	e := NewExecutor(d)
	if _, err := e.Fly(Pattern(0), geom.Vec3{}); err == nil {
		t.Fatal("invalid pattern should fail")
	}
}

func TestPatternClassificationRoundTrip(t *testing.T) {
	// Every pattern's own trajectory must classify back to itself — the
	// "unmistakable" property of §III (E12, clean-air case).
	target := geom.V3(8, 3, 0)
	for _, p := range Patterns() {
		d := newDrone(t)
		e := NewExecutor(d)
		if p != PatternTakeOff {
			if _, err := e.Fly(PatternTakeOff, geom.Vec3{}); err != nil {
				t.Fatal(err)
			}
		}
		tr, err := e.Fly(p, target)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		got, feats, err := Classify(tr)
		if err != nil {
			t.Fatalf("%v: classify: %v (features %+v)", p, err, feats)
		}
		if got != p {
			t.Errorf("%v classified as %v (features %+v)", p, got, feats)
		}
	}
}

func TestPatternClassificationUnderWind(t *testing.T) {
	// E12: classification must survive moderate gusts.
	rng := rand.New(rand.NewSource(99))
	misses := 0
	trials := 0
	for _, p := range CommunicativePatterns() {
		for trial := 0; trial < 5; trial++ {
			d := newDrone(t)
			e := NewExecutor(d)
			if _, err := e.Fly(PatternTakeOff, geom.Vec3{}); err != nil {
				t.Fatal(err)
			}
			w, _ := NewWind(geom.V2(0.3, 0.1), 0.35, rng)
			d.Wind = w
			tr, err := e.Fly(p, geom.V3(6, 2, 0))
			if err != nil {
				// Wind can push a corner out of tolerance; count as a miss.
				misses++
				trials++
				continue
			}
			got, _, err := Classify(tr)
			trials++
			if err != nil || got != p {
				misses++
			}
		}
	}
	if misses > trials/4 {
		t.Fatalf("windy misclassification %d/%d exceeds 25%%", misses, trials)
	}
}

func TestClassifyTooShort(t *testing.T) {
	if _, _, err := Classify(nil); err == nil {
		t.Fatal("empty trajectory should fail")
	}
	if _, _, err := Classify(Trajectory{{}, {}}); err == nil {
		t.Fatal("two samples should fail")
	}
}

func TestFeaturesNodCycles(t *testing.T) {
	d := airborne(t)
	e := NewExecutor(d)
	e.Cycles = 4
	tr, err := e.Fly(PatternNod, geom.Vec3{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ExtractFeatures(tr)
	if err != nil {
		t.Fatal(err)
	}
	if f.VertCycles < 3 {
		t.Fatalf("nod cycles = %d, want ≥3", f.VertCycles)
	}
	if !f.Closed {
		t.Fatal("nod must end where it started")
	}
}

func TestFeaturesHeadTurnYaw(t *testing.T) {
	d := airborne(t)
	e := NewExecutor(d)
	tr, err := e.Fly(PatternHeadTurn, geom.Vec3{})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := ExtractFeatures(tr)
	if f.YawRange < geom.Deg2Rad(90) {
		t.Fatalf("yaw range %v too small", f.YawRange)
	}
	if f.PathHorizontal > 1.5 {
		t.Fatalf("head turn translated %v m", f.PathHorizontal)
	}
}

func TestFeaturesRectangleCorners(t *testing.T) {
	d := airborne(t)
	e := NewExecutor(d)
	tr, err := e.Fly(PatternRectangle, geom.V3(2, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := ExtractFeatures(tr)
	if f.CornerCount < 3 {
		t.Fatalf("rectangle corners = %d", f.CornerCount)
	}
	if !f.Closed {
		t.Fatal("rectangle must close")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(0.05, State{}) // must not panic
	if r.Trajectory() != nil {
		t.Fatal("nil recorder should return nil")
	}
}

func TestTrajectoryDuration(t *testing.T) {
	if (Trajectory{}).Duration() != 0 {
		t.Fatal("empty duration should be 0")
	}
	tr := Trajectory{{T: 1}, {T: 3.5}}
	if tr.Duration() != 2.5 {
		t.Fatal("duration wrong")
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range Patterns() {
		if p.String() == "" || !p.Valid() {
			t.Fatalf("pattern %d bad", int(p))
		}
	}
	if Pattern(0).Valid() || Pattern(99).String() == "" {
		t.Fatal("invalid pattern handling wrong")
	}
}
