package flight

import (
	"errors"
	"fmt"
	"math"

	"hdc/internal/geom"
)

// Pattern enumerates the paper's §III flight patterns: three standard and
// four communicative. Enums start at 1 so the zero value is invalid.
type Pattern int

// The pattern vocabulary.
const (
	// PatternTakeOff is the standard vertical lift-off to flying height.
	PatternTakeOff Pattern = iota + 1
	// PatternCruise is standard horizontal flight at working altitude.
	PatternCruise
	// PatternLand is the standard vertical landing (Fig 2).
	PatternLand
	// PatternPoke is the attention-getting approach: a short lunge towards
	// the collaborator and back, repeated.
	PatternPoke
	// PatternNod is the drone's "yes": vertical bobbing in place.
	PatternNod
	// PatternHeadTurn is the drone's "no": yaw oscillation in place.
	PatternHeadTurn
	// PatternRectangle requests the collaborator's area: the drone traces a
	// horizontal rectangle outlining the space it wants to occupy (Fig 3).
	PatternRectangle
)

// Patterns lists all seven defined patterns.
func Patterns() []Pattern {
	return []Pattern{
		PatternTakeOff, PatternCruise, PatternLand,
		PatternPoke, PatternNod, PatternHeadTurn, PatternRectangle,
	}
}

// CommunicativePatterns lists the four communicative patterns.
func CommunicativePatterns() []Pattern {
	return []Pattern{PatternPoke, PatternNod, PatternHeadTurn, PatternRectangle}
}

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case PatternTakeOff:
		return "TakeOff"
	case PatternCruise:
		return "Cruise"
	case PatternLand:
		return "Land"
	case PatternPoke:
		return "Poke"
	case PatternNod:
		return "Nod"
	case PatternHeadTurn:
		return "HeadTurn"
	case PatternRectangle:
		return "Rectangle"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Valid reports whether p is a defined pattern.
func (p Pattern) Valid() bool { return p >= PatternTakeOff && p <= PatternRectangle }

// Sample is one trajectory sample.
type Sample struct {
	T       float64 // seconds since trajectory start
	Pos     geom.Vec3
	Heading geom.Heading
}

// Trajectory is a time-ordered series of samples.
type Trajectory []Sample

// Duration returns the time span of the trajectory.
func (tr Trajectory) Duration() float64 {
	if len(tr) == 0 {
		return 0
	}
	return tr[len(tr)-1].T - tr[0].T
}

// Recorder accumulates trajectory samples. A nil *Recorder discards.
type Recorder struct {
	t   float64
	buf Trajectory
}

// Record appends the state after a step of dt.
func (r *Recorder) Record(dt float64, s State) {
	if r == nil {
		return
	}
	r.t += dt
	r.buf = append(r.buf, Sample{T: r.t, Pos: s.Pos, Heading: s.Heading})
}

// Trajectory returns the recorded samples.
func (r *Recorder) Trajectory() Trajectory {
	if r == nil {
		return nil
	}
	return r.buf
}

// Executor flies patterns on a drone and records their trajectories.
type Executor struct {
	D *Drone
	// DT is the simulation step (default 0.05 s).
	DT float64
	// NodAmplitude is the vertical bob half-height (default 0.5 m).
	NodAmplitude float64
	// TurnAmplitude is the yaw swing half-angle (default 60°).
	TurnAmplitude float64
	// PokeDepth is the lunge distance towards the target (default 1 m).
	PokeDepth float64
	// RectW, RectH are the rectangle dimensions (defaults 4 × 2 m).
	RectW, RectH float64
	// Cycles is the repetition count of oscillating patterns (default 3).
	Cycles int
}

// NewExecutor wraps a drone with default pattern parameters.
func NewExecutor(d *Drone) *Executor {
	return &Executor{
		D: d, DT: 0.05,
		NodAmplitude: 0.5, TurnAmplitude: geom.Deg2Rad(60),
		PokeDepth: 1.0, RectW: 4, RectH: 2, Cycles: 3,
	}
}

// ErrNotAirborne is returned for patterns that need the drone flying.
var ErrNotAirborne = errors.New("flight: pattern requires an airborne drone")

// Fly executes the pattern and returns its trajectory. target is the
// pattern's reference point: the collaborator's position for Poke and
// Rectangle, the destination for Cruise; it is ignored for the others.
func (e *Executor) Fly(p Pattern, target geom.Vec3) (Trajectory, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("flight: invalid pattern %d", int(p))
	}
	rec := &Recorder{}
	d := e.D
	dt := e.DT
	if dt <= 0 {
		dt = 0.05
	}
	switch p {
	case PatternTakeOff:
		if d.S.Pos.Z > 0.05 {
			return nil, errors.New("flight: take-off from mid-air")
		}
		d.StartRotors()
		up := geom.V3(d.S.Pos.X, d.S.Pos.Y, d.P.CruiseAlt)
		if !d.FlyTo(up, d.P.MaxAscent, dt, 60, 0.1, rec) {
			return rec.Trajectory(), errors.New("flight: take-off did not reach altitude")
		}

	case PatternCruise:
		if err := e.requireAirborne(); err != nil {
			return nil, err
		}
		dest := geom.V3(target.X, target.Y, d.P.CruiseAlt)
		if !d.FlyTo(dest, d.P.MaxSpeed, dt, 300, 0.25, rec) {
			return rec.Trajectory(), errors.New("flight: cruise did not arrive")
		}

	case PatternLand:
		if err := e.requireAirborne(); err != nil {
			return nil, err
		}
		down := geom.V3(d.S.Pos.X, d.S.Pos.Y, 0)
		if !d.FlyTo(down, d.P.MaxDescent, dt, 120, 0.05, rec) {
			return rec.Trajectory(), errors.New("flight: landing did not touch down")
		}
		if err := d.StopRotors(); err != nil {
			return rec.Trajectory(), err
		}

	case PatternPoke:
		if err := e.requireAirborne(); err != nil {
			return nil, err
		}
		home := d.S.Pos
		dir := target.Sub(home)
		dir.Z = 0
		if dir.Norm() < 1e-6 {
			return nil, errors.New("flight: poke target coincides with drone")
		}
		lunge := home.Add(dir.Unit().Scale(e.PokeDepth))
		for c := 0; c < e.cycles(); c++ {
			d.FlyTo(lunge, d.P.MaxSpeed, dt, 10, 0.15, rec)
			d.FlyTo(home, d.P.MaxSpeed, dt, 10, 0.15, rec)
		}

	case PatternNod:
		if err := e.requireAirborne(); err != nil {
			return nil, err
		}
		base := d.S.Pos
		up := base.Add(geom.V3(0, 0, e.NodAmplitude))
		dn := base.Sub(geom.V3(0, 0, e.NodAmplitude))
		for c := 0; c < e.cycles(); c++ {
			d.FlyTo(up, d.P.MaxAscent, dt, 5, 0.1, rec)
			d.FlyTo(dn, d.P.MaxDescent, dt, 5, 0.1, rec)
		}
		d.FlyTo(base, d.P.MaxAscent, dt, 5, 0.1, rec)

	case PatternHeadTurn:
		if err := e.requireAirborne(); err != nil {
			return nil, err
		}
		base := d.S.Heading
		for c := 0; c < e.cycles(); c++ {
			e.yawTo(base.Add(e.TurnAmplitude), dt, rec)
			e.yawTo(base.Add(-e.TurnAmplitude), dt, rec)
		}
		e.yawTo(base, dt, rec)

	case PatternRectangle:
		if err := e.requireAirborne(); err != nil {
			return nil, err
		}
		// Trace a rectangle centred over the target area at current
		// altitude, then return to the start corner.
		alt := d.S.Pos.Z
		cx, cy := target.X, target.Y
		corners := []geom.Vec3{
			{X: cx - e.RectW/2, Y: cy - e.RectH/2, Z: alt},
			{X: cx + e.RectW/2, Y: cy - e.RectH/2, Z: alt},
			{X: cx + e.RectW/2, Y: cy + e.RectH/2, Z: alt},
			{X: cx - e.RectW/2, Y: cy + e.RectH/2, Z: alt},
		}
		start := d.S.Pos
		for _, c := range corners {
			if !d.FlyTo(c, d.P.MaxSpeed/2, dt, 30, 0.2, rec) {
				return rec.Trajectory(), errors.New("flight: rectangle corner unreachable")
			}
		}
		d.FlyTo(corners[0], d.P.MaxSpeed/2, dt, 30, 0.2, rec)
		d.FlyTo(start, d.P.MaxSpeed/2, dt, 30, 0.2, rec)
	}
	return rec.Trajectory(), nil
}

func (e *Executor) cycles() int {
	if e.Cycles < 1 {
		return 3
	}
	return e.Cycles
}

func (e *Executor) requireAirborne() error {
	if !e.D.RotorsOn() || e.D.S.Pos.Z < 0.3 {
		return ErrNotAirborne
	}
	return nil
}

// yawTo rotates in place to the desired heading while actively holding
// position against wind.
func (e *Executor) yawTo(want geom.Heading, dt float64, rec *Recorder) {
	d := e.D
	anchor := d.S.Pos
	for i := 0; i < int(10/dt); i++ {
		diff := d.S.Heading.Diff(want)
		if math.Abs(diff) < geom.Deg2Rad(2) {
			return
		}
		hold := d.velocityTowards(anchor, d.P.MaxSpeed/2)
		d.Step(dt, hold, geom.Clamp(diff*4, -d.P.MaxYawRate, d.P.MaxYawRate))
		rec.Record(dt, d.S)
	}
}
