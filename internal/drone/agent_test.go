package drone

import (
	"errors"
	"math/rand"
	"testing"

	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/imu"
	"hdc/internal/ledring"
	"hdc/internal/telemetry"
)

func newAgent(t testing.TB, cfg Config) *Agent {
	t.Helper()
	a, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewDefaults(t *testing.T) {
	a := newAgent(t, Config{})
	if a.BatteryFrac() != 1 {
		t.Fatalf("battery = %v", a.BatteryFrac())
	}
	if a.Ring.Mode() != ledring.ModeDanger {
		t.Fatal("ring must boot in danger default")
	}
	if tripped, _ := a.Tripped(); tripped {
		t.Fatal("fresh agent tripped")
	}
}

func TestTakeOffTurnsOnNavigation(t *testing.T) {
	a := newAgent(t, Config{})
	if _, err := a.FlyPattern(flight.PatternTakeOff, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	if a.Ring.Mode() != ledring.ModeNavigation {
		t.Fatalf("ring mode after take-off = %v", a.Ring.Mode())
	}
}

// TestFig2LandingSequence reproduces Figure 2: descend to ground, rotors
// off, and only then navigation lights extinguished — in that order.
func TestFig2LandingSequence(t *testing.T) {
	log := telemetry.NewLog()
	a, err := New(Config{}, log)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.FlyPattern(flight.PatternTakeOff, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.FlyPattern(flight.PatternLand, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	if a.D.RotorsOn() {
		t.Fatal("rotors running after landing")
	}
	if a.Ring.Mode() != ledring.ModeOff {
		t.Fatalf("lights still %v after landing", a.Ring.Mode())
	}
	// Event order: touchdown ≤ rotors-off ≤ lights-off.
	var order []string
	for _, e := range log.Events() {
		switch e.Kind {
		case "touchdown", "rotors-off", "lights-off":
			order = append(order, e.Kind)
		}
	}
	want := []string{"touchdown", "rotors-off", "lights-off"}
	if len(order) != 3 {
		t.Fatalf("sequence events = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Fig 2 order violated: %v", order)
		}
	}
}

func TestNavigationTracksMotion(t *testing.T) {
	a := newAgent(t, Config{})
	if _, err := a.FlyPattern(flight.PatternTakeOff, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	// Cruise east; ring must display an easterly direction.
	if _, err := a.FlyPattern(flight.PatternCruise, geom.V3(30, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if a.Ring.Mode() != ledring.ModeNavigation {
		t.Fatal("ring left navigation mode")
	}
	got := a.Ring.Heading()
	if got.AbsDiff(geom.East) > geom.Deg2Rad(45) {
		t.Fatalf("displayed heading %v, want ≈east", got)
	}
}

func TestBatteryDrainsAndTrips(t *testing.T) {
	a := newAgent(t, Config{
		Battery: BatteryModel{CapacityWh: 0.8, HoverDrawW: 3600}, // 1 Wh/s: dies in ~0.7 s of flight... scaled for test speed
	})
	if _, err := a.FlyPattern(flight.PatternTakeOff, geom.Vec3{}); err == nil {
		// Take-off takes ~2 s of sim time; the battery must trip during it.
		t.Fatal("expected battery trip during take-off")
	} else if !errors.Is(err, ErrSafetyTripped) {
		t.Fatalf("unexpected error: %v", err)
	}
	if a.Ring.Mode() != ledring.ModeDanger {
		t.Fatal("battery trip must raise danger display")
	}
	if ok, cause := a.Tripped(); !ok || cause == "" {
		t.Fatal("trip not latched")
	}
	// Latched: further commands refused.
	if _, err := a.FlyPattern(flight.PatternCruise, geom.V3(5, 5, 0)); !errors.Is(err, ErrSafetyTripped) {
		t.Fatalf("latched agent accepted a command: %v", err)
	}
	a.ClearTrip()
	if ok, _ := a.Tripped(); ok {
		t.Fatal("ClearTrip failed")
	}
}

func TestSeparationTrip(t *testing.T) {
	a := newAgent(t, Config{})
	if _, err := a.FlyPattern(flight.PatternTakeOff, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	// A human directly below the flight path.
	a.SetHumans([]geom.Vec2{{X: 10, Y: 0}})
	_, err := a.FlyPattern(flight.PatternCruise, geom.V3(10, 0, 0))
	if !errors.Is(err, ErrSafetyTripped) {
		t.Fatalf("expected separation trip, got %v", err)
	}
	if a.Ring.Mode() != ledring.ModeDanger {
		t.Fatal("danger display missing")
	}
}

func TestSeparationWaiver(t *testing.T) {
	a := newAgent(t, Config{})
	if _, err := a.FlyPattern(flight.PatternTakeOff, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	a.SetHumans([]geom.Vec2{{X: 10, Y: 0}})
	a.WaiveSeparation(true) // negotiated entry granted
	if _, err := a.FlyPattern(flight.PatternCruise, geom.V3(10, 0, 0)); err != nil {
		t.Fatalf("waived separation still tripped: %v", err)
	}
	a.WaiveSeparation(false)
}

func TestGeofenceTrip(t *testing.T) {
	a := newAgent(t, Config{Safety: SafetyLimits{GeofenceRadius: 20}})
	if _, err := a.FlyPattern(flight.PatternTakeOff, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	_, err := a.FlyPattern(flight.PatternCruise, geom.V3(100, 0, 0))
	if !errors.Is(err, ErrSafetyTripped) {
		t.Fatalf("expected geofence trip, got %v", err)
	}
	if _, cause := a.Tripped(); cause != "geofence breach" {
		t.Fatalf("cause = %q", cause)
	}
}

func TestHoverDrainsBattery(t *testing.T) {
	a := newAgent(t, Config{})
	if _, err := a.FlyPattern(flight.PatternTakeOff, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	before := a.BatteryFrac()
	if err := a.Hover(30); err != nil {
		t.Fatal(err)
	}
	if a.BatteryFrac() >= before {
		t.Fatal("hover did not drain battery")
	}
	if a.Clock() <= 0 {
		t.Fatal("clock did not advance")
	}
}

func TestClockAdvancesWithPatterns(t *testing.T) {
	a := newAgent(t, Config{})
	if _, err := a.FlyPattern(flight.PatternTakeOff, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	c0 := a.Clock()
	if _, err := a.FlyPattern(flight.PatternNod, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	if a.Clock() <= c0 {
		t.Fatal("pattern did not advance the clock")
	}
}

func TestAttachIMUDetectsFlightPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sensor, err := imu.New(imu.Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	log := telemetry.NewLog()
	a, err := New(Config{}, log)
	if err != nil {
		t.Fatal(err)
	}
	a.AttachIMU(sensor)
	if a.MotionState() != imu.StateUnknown {
		t.Fatal("pre-flight state should be unknown")
	}
	if _, err := a.FlyPattern(flight.PatternTakeOff, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.FlyPattern(flight.PatternCruise, geom.V3(40, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Hover(20); err != nil {
		t.Fatal(err)
	}
	// The detector must have left Unknown and logged transitions.
	if a.MotionState() == imu.StateUnknown {
		t.Fatal("IMU detector never classified")
	}
	if log.Count("motion") == 0 {
		t.Fatal("no motion transitions logged")
	}
	// After a long hover the detector should read hover.
	if got := a.MotionState(); got != imu.StateHover {
		t.Fatalf("post-hover state = %v, want hover", got)
	}
}
