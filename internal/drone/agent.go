// Package drone integrates the airframe (internal/flight), the all-round
// light (internal/ledring) and a safety monitor into the autonomous agent
// the paper's scenario needs: the light tracks the direction of controlled
// flight per §II, danger mode is the default and any safety trigger
// (battery, geofence, human separation) reverts to it, and the Fig 2
// landing sequence — touch down, rotors off, THEN lights out — is enforced
// in code.
package drone

import (
	"errors"
	"fmt"
	"time"

	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/imu"
	"hdc/internal/ledring"
	"hdc/internal/telemetry"
)

// SafetyLimits configures the monitor.
type SafetyLimits struct {
	// MinBatteryFrac aborts below this state of charge (default 0.15).
	MinBatteryFrac float64
	// GeofenceRadius is the max horizontal distance from home (default 200 m).
	GeofenceRadius float64
	// MinSeparation is the closest approach to any human before the danger
	// display trips (default 1.5 m) — the "boundaries of a safe distance"
	// at which the paper has the drone stop and poke.
	MinSeparation float64
}

func (s SafetyLimits) withDefaults() SafetyLimits {
	if s.MinBatteryFrac == 0 {
		s.MinBatteryFrac = 0.15
	}
	if s.GeofenceRadius == 0 {
		s.GeofenceRadius = 200
	}
	if s.MinSeparation == 0 {
		s.MinSeparation = 1.5
	}
	return s
}

// Config assembles an Agent.
type Config struct {
	Flight  flight.Params
	Ring    ledring.Options
	Safety  SafetyLimits
	Home    geom.Vec3
	Battery BatteryModel
}

// BatteryModel is a linear discharge model.
type BatteryModel struct {
	// CapacityWh is the pack size (default 100 Wh).
	CapacityWh float64
	// HoverDrawW is the steady hover power (default 180 W).
	HoverDrawW float64
	// SpeedDrawWPerMS adds draw proportional to airspeed (default 15 W per
	// m/s).
	SpeedDrawWPerMS float64
}

func (b BatteryModel) withDefaults() BatteryModel {
	if b.CapacityWh == 0 {
		b.CapacityWh = 100
	}
	if b.HoverDrawW == 0 {
		b.HoverDrawW = 180
	}
	if b.SpeedDrawWPerMS == 0 {
		b.SpeedDrawWPerMS = 15
	}
	return b
}

// Agent is the integrated drone. Not safe for concurrent use.
type Agent struct {
	D    *flight.Drone
	Ring *ledring.Ring
	Exec *flight.Executor
	Log  *telemetry.Log

	safety    SafetyLimits
	battery   BatteryModel
	chargeWh  float64
	home      geom.Vec3
	clock     time.Duration
	tripped   bool
	tripCause string
	humans    []geom.Vec2
	sepWaived bool

	sensor      *imu.IMU
	detector    *imu.Detector
	motionState imu.MotionState
}

// New assembles an agent parked at cfg.Home with a full battery and the
// ring in its danger default.
func New(cfg Config, log *telemetry.Log) (*Agent, error) {
	if log == nil {
		log = telemetry.NewLog()
	}
	if cfg.Flight == (flight.Params{}) {
		cfg.Flight = flight.DefaultParams()
	}
	d, err := flight.New(cfg.Flight, cfg.Home)
	if err != nil {
		return nil, err
	}
	ring, err := ledring.New(cfg.Ring)
	if err != nil {
		return nil, err
	}
	bm := cfg.Battery.withDefaults()
	a := &Agent{
		D:        d,
		Ring:     ring,
		Exec:     flight.NewExecutor(d),
		Log:      log,
		safety:   cfg.Safety.withDefaults(),
		battery:  bm,
		chargeWh: bm.CapacityWh,
		home:     cfg.Home,
	}
	return a, nil
}

// Clock returns the agent's simulation time.
func (a *Agent) Clock() time.Duration { return a.clock }

// BatteryFrac returns the state of charge in [0, 1].
func (a *Agent) BatteryFrac() float64 { return a.chargeWh / a.battery.CapacityWh }

// Tripped reports whether a safety trigger fired, with its cause.
func (a *Agent) Tripped() (bool, string) { return a.tripped, a.tripCause }

// ClearTrip resets the safety latch (after the operator resolves the cause)
// and returns the ring to danger-default until flight resumes.
func (a *Agent) ClearTrip() {
	a.tripped = false
	a.tripCause = ""
}

// SetHumans updates the positions of nearby humans for separation checks.
func (a *Agent) SetHumans(pos []geom.Vec2) {
	a.humans = append(a.humans[:0], pos...)
}

// WaiveSeparation suspends the human-separation trigger (used while a
// negotiated entry is in progress — the human GRANTED the approach).
func (a *Agent) WaiveSeparation(on bool) { a.sepWaived = on }

// AttachIMU couples a simulated inertial sensor to the agent: every tick
// samples it, runs the motion detector and logs motion-state transitions —
// the "indicate actual flight" extension the paper's §II defers. The
// detected state is exposed through MotionState.
func (a *Agent) AttachIMU(sensor *imu.IMU) {
	a.sensor = sensor
	a.detector = imu.NewDetector()
	a.motionState = imu.StateUnknown
}

// MotionState returns the IMU-detected gross motion state (StateUnknown
// when no IMU is attached).
func (a *Agent) MotionState() imu.MotionState { return a.motionState }

// ErrSafetyTripped is returned by flight commands after a trigger fired.
var ErrSafetyTripped = errors.New("drone: safety monitor tripped")

// trip latches a safety cause and raises the danger display.
func (a *Agent) trip(cause string) {
	if !a.tripped {
		a.Log.Emit(a.clock, "drone", "danger", cause)
	}
	a.tripped = true
	a.tripCause = cause
	a.Ring.SetDanger()
}

// checkSafety evaluates all triggers once.
func (a *Agent) checkSafety() {
	if a.BatteryFrac() < a.safety.MinBatteryFrac {
		a.trip(fmt.Sprintf("battery %.0f%%", a.BatteryFrac()*100))
		return
	}
	if a.D.S.Pos.XY().Dist(a.home.XY()) > a.safety.GeofenceRadius {
		a.trip("geofence breach")
		return
	}
	if !a.sepWaived && a.D.S.Pos.Z > 0.2 {
		for _, h := range a.humans {
			if a.D.S.Pos.XY().Dist(h) < a.safety.MinSeparation {
				a.trip(fmt.Sprintf("separation %.1f m", a.D.S.Pos.XY().Dist(h)))
				return
			}
		}
	}
}

// tick advances battery and safety by dt and refreshes the navigation
// display from the current motion (the IMU-coupled display of §II).
func (a *Agent) tick(dt float64) {
	a.clock += time.Duration(dt * float64(time.Second))
	if a.D.RotorsOn() {
		draw := a.battery.HoverDrawW + a.battery.SpeedDrawWPerMS*a.D.S.Vel.Norm()
		a.chargeWh -= draw * dt / 3600
		if a.chargeWh < 0 {
			a.chargeWh = 0
		}
	}
	if a.sensor != nil {
		// The detector is calibrated for flight-controller-rate sampling
		// (tens of ms); the agent's coarse ticks are subdivided so the
		// sensor noise integrates in its designed regime.
		const subDT = 0.05
		n := int(dt / subDT)
		if n < 1 {
			n = 1
		}
		var state imu.MotionState
		for i := 0; i < n; i++ {
			sample := a.sensor.Sample(dt/float64(n), a.D.S, a.D.RotorsOn())
			state = a.detector.Push(sample)
		}
		if state != a.motionState {
			a.Log.Emitf(a.clock, "imu", "motion", "%v → %v", a.motionState, state)
			a.motionState = state
		}
	}
	a.checkSafety()
	if a.tripped {
		return // danger display latched
	}
	// Navigation display: show the direction of controlled flight while
	// moving horizontally; hovering or vertical transit keeps the previous
	// direction (vertical phases are signalled by patterns, §II).
	if h := a.D.S.Vel.XY(); a.D.RotorsOn() && h.Norm() > 0.5 {
		a.Ring.SetNavigation(geom.HeadingOf(h))
	}
}

// FlyPattern executes a flight pattern with ring coupling and safety
// ticking. It returns ErrSafetyTripped (wrapped) if a trigger fires before
// or during the pattern.
func (a *Agent) FlyPattern(p flight.Pattern, target geom.Vec3) (flight.Trajectory, error) {
	if a.tripped {
		return nil, fmt.Errorf("%w: %s", ErrSafetyTripped, a.tripCause)
	}
	switch p {
	case flight.PatternTakeOff:
		// Navigation display comes on with the rotors.
		a.Ring.SetNavigation(a.D.S.Heading)
		a.Log.Emit(a.clock, "drone", "take-off", "")
	case flight.PatternLand:
		a.Log.Emit(a.clock, "drone", "landing", "")
	}
	tr, err := a.Exec.Fly(p, target)
	// Advance the agent clock by the pattern's duration and account the
	// battery/safety along the way (coarse per-second ticks).
	dur := tr.Duration()
	for t := 0.0; t < dur; t += 1 {
		a.tick(minF(1, dur-t))
		if a.tripped {
			return tr, fmt.Errorf("%w: %s", ErrSafetyTripped, a.tripCause)
		}
	}
	if err != nil {
		return tr, err
	}
	if p == flight.PatternLand {
		// Fig 2 sequence: touchdown (Fly already stopped the rotors) and
		// only then extinguish the lights.
		a.Log.Emit(a.clock, "drone", "touchdown", "")
		a.Log.Emit(a.clock, "drone", "rotors-off", "")
		a.Ring.SetOff()
		a.Log.Emit(a.clock, "drone", "lights-off", "")
	}
	return tr, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Hover holds position for dur seconds with safety ticking.
func (a *Agent) Hover(dur float64) error {
	if a.tripped {
		return fmt.Errorf("%w: %s", ErrSafetyTripped, a.tripCause)
	}
	rec := &flight.Recorder{}
	step := 0.5
	for t := 0.0; t < dur; t += step {
		a.D.Hover(step, 0.05, rec)
		a.tick(step)
		if a.tripped {
			return fmt.Errorf("%w: %s", ErrSafetyTripped, a.tripCause)
		}
	}
	return nil
}
