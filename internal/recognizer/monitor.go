package recognizer

import (
	"errors"
	"time"

	"hdc/internal/body"
	"hdc/internal/raster"
)

// monitor.go adds continuous-stream recognition: the conversation engine
// does not classify a single frame but watches the collaborator over time,
// and a sign should only count once it is *held* — a transient arm position
// passing through a sign's silhouette must not trigger the protocol. The
// Monitor debounces per-frame classifications into stable sign events.

// MonitorConfig tunes the debouncer.
type MonitorConfig struct {
	// HoldFrames is how many consecutive agreeing frames make a sign
	// stable (default 3).
	HoldFrames int
	// ReleaseFrames is how many disagreeing frames clear a held sign
	// (default 2).
	ReleaseFrames int
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.HoldFrames == 0 {
		c.HoldFrames = 3
	}
	if c.ReleaseFrames == 0 {
		c.ReleaseFrames = 2
	}
	return c
}

// SignEvent is emitted when a sign becomes stable or is released.
type SignEvent struct {
	Sign    body.Sign
	Stable  bool          // true: sign held; false: sign released
	At      time.Duration // stream time of the event
	HeldFor time.Duration // for release events: how long it was held
	// Distance and Confidence describe the confirming frame of a hold
	// event: the match distance, and the relative margin over the
	// runner-up entry (Result.Confidence) — how clearly the winning sign
	// beat the next-best candidate in the dictionary.
	Distance   float64
	Confidence float64
}

// Monitor debounces a stream of frames into stable sign events. Not safe
// for concurrent use.
type Monitor struct {
	rec *Recognizer
	cfg MonitorConfig

	current    body.Sign // candidate sign being accumulated
	count      int       // consecutive frames agreeing with current
	misses     int       // consecutive frames disagreeing with held
	held       body.Sign // currently stable sign (0 = none)
	heldSince  time.Duration
	clock      time.Duration
	frameCount int
}

// NewMonitor wraps a recognizer (whose references must be built).
func NewMonitor(rec *Recognizer, cfg MonitorConfig) (*Monitor, error) {
	if rec == nil {
		return nil, errors.New("recognizer: nil recognizer")
	}
	return &Monitor{rec: rec, cfg: cfg.withDefaults()}, nil
}

// Held returns the currently stable sign (0 when none).
func (m *Monitor) Held() body.Sign { return m.held }

// Frames returns how many frames were processed.
func (m *Monitor) Frames() int { return m.frameCount }

// Push classifies one frame (advancing the stream clock by dt) and returns
// any events the debouncer emits (0–2: a release possibly followed by a new
// hold).
func (m *Monitor) Push(frame *raster.Gray, dt time.Duration) ([]SignEvent, error) {
	m.clock += dt
	m.frameCount++

	var seen body.Sign // 0 = nothing acceptable in this frame
	var dist, conf float64
	res, err := m.rec.Recognize(frame)
	if err == nil && res.OK {
		seen = res.Sign
		dist = res.Match.Dist
		conf = res.Confidence
	} else if err != nil && !errors.Is(err, ErrNoSign) {
		// Vision errors (empty frame etc.) count as "nothing seen" for
		// debouncing purposes but are surfaced for diagnostics.
		seen = 0
	}

	var events []SignEvent

	// Maintain the hold state.
	if m.held != 0 {
		if seen == m.held {
			m.misses = 0
		} else {
			m.misses++
			if m.misses >= m.cfg.ReleaseFrames {
				events = append(events, SignEvent{
					Sign:    m.held,
					Stable:  false,
					At:      m.clock,
					HeldFor: m.clock - m.heldSince,
				})
				m.held = 0
				m.misses = 0
			}
		}
	}

	// Accumulate a candidate.
	if seen != 0 && seen != m.held {
		if seen == m.current {
			m.count++
		} else {
			m.current = seen
			m.count = 1
		}
		if m.count >= m.cfg.HoldFrames {
			if m.held != 0 && m.held != seen {
				events = append(events, SignEvent{
					Sign:    m.held,
					Stable:  false,
					At:      m.clock,
					HeldFor: m.clock - m.heldSince,
				})
			}
			m.held = seen
			m.heldSince = m.clock
			m.misses = 0
			m.current = 0
			m.count = 0
			events = append(events, SignEvent{
				Sign:       seen,
				Stable:     true,
				At:         m.clock,
				Distance:   dist,
				Confidence: conf,
			})
		}
	} else if seen == 0 {
		m.current = 0
		m.count = 0
	}
	return events, nil
}

// Reset clears all debouncer state.
func (m *Monitor) Reset() {
	m.current = 0
	m.count = 0
	m.misses = 0
	m.held = 0
	m.heldSince = 0
	m.clock = 0
	m.frameCount = 0
}
