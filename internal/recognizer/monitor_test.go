package recognizer

import (
	"testing"
	"time"

	"hdc/internal/body"
	"hdc/internal/raster"
	"hdc/internal/scene"
)

const frameDT = 100 * time.Millisecond

func pushSign(t *testing.T, m *Monitor, rend *scene.Renderer, s body.Sign, n int) []SignEvent {
	t.Helper()
	var out []SignEvent
	for i := 0; i < n; i++ {
		frame, err := rend.Render(s, scene.ReferenceView(), body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		evs, err := m.Push(frame, frameDT)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, evs...)
	}
	return out
}

func newMonitor(t *testing.T) (*Monitor, *scene.Renderer) {
	t.Helper()
	rec, rend := newCalibrated(t)
	m, err := NewMonitor(rec, MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m, rend
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, MonitorConfig{}); err == nil {
		t.Fatal("nil recognizer should fail")
	}
}

func TestMonitorStableAfterHoldFrames(t *testing.T) {
	m, rend := newMonitor(t)
	// Two frames: not yet stable.
	evs := pushSign(t, m, rend, body.SignYes, 2)
	if len(evs) != 0 {
		t.Fatalf("premature events: %+v", evs)
	}
	if m.Held() != 0 {
		t.Fatal("held too early")
	}
	// Third frame: stable.
	evs = pushSign(t, m, rend, body.SignYes, 1)
	if len(evs) != 1 || !evs[0].Stable || evs[0].Sign != body.SignYes {
		t.Fatalf("expected stable Yes, got %+v", evs)
	}
	if m.Held() != body.SignYes {
		t.Fatal("hold not registered")
	}
}

func TestMonitorTransientIgnored(t *testing.T) {
	m, rend := newMonitor(t)
	// A sign flashing for 2 frames between idle frames must never fire.
	pushSign(t, m, rend, body.SignNo, 2)
	evs := pushSign(t, m, rend, body.SignIdle, 3) // idle: nothing recognised
	if len(evs) != 0 || m.Held() != 0 {
		t.Fatalf("transient triggered: %+v held=%v", evs, m.Held())
	}
}

func TestMonitorRelease(t *testing.T) {
	m, rend := newMonitor(t)
	pushSign(t, m, rend, body.SignAttention, 3)
	if m.Held() != body.SignAttention {
		t.Fatal("hold missing")
	}
	// Sign disappears: released after ReleaseFrames.
	evs := pushSign(t, m, rend, body.SignIdle, 2)
	found := false
	for _, e := range evs {
		if !e.Stable && e.Sign == body.SignAttention {
			found = true
			if e.HeldFor <= 0 {
				t.Fatal("HeldFor missing")
			}
		}
	}
	if !found {
		t.Fatalf("release event missing: %+v", evs)
	}
	if m.Held() != 0 {
		t.Fatal("hold not cleared")
	}
}

func TestMonitorSignChange(t *testing.T) {
	m, rend := newMonitor(t)
	pushSign(t, m, rend, body.SignAttention, 3)
	// Human switches to Yes: old sign released, new one held.
	evs := pushSign(t, m, rend, body.SignYes, 3)
	var released, helded bool
	for _, e := range evs {
		if !e.Stable && e.Sign == body.SignAttention {
			released = true
		}
		if e.Stable && e.Sign == body.SignYes {
			helded = true
		}
	}
	if !released || !helded {
		t.Fatalf("sign change events wrong: %+v", evs)
	}
	if m.Held() != body.SignYes {
		t.Fatalf("held = %v", m.Held())
	}
}

func TestMonitorBlankFramesSafe(t *testing.T) {
	m, _ := newMonitor(t)
	blank := raster.MustGray(64, 64)
	blank.Fill(200)
	for i := 0; i < 5; i++ {
		evs, err := m.Push(blank, frameDT)
		if err != nil {
			t.Fatal(err)
		}
		if len(evs) != 0 {
			t.Fatalf("blank frames produced events: %+v", evs)
		}
	}
	if m.Frames() != 5 {
		t.Fatalf("frames = %d", m.Frames())
	}
}

func TestMonitorReset(t *testing.T) {
	m, rend := newMonitor(t)
	pushSign(t, m, rend, body.SignYes, 3)
	m.Reset()
	if m.Held() != 0 || m.Frames() != 0 {
		t.Fatal("reset incomplete")
	}
}
