package recognizer

import (
	"testing"

	"hdc/internal/body"
	"hdc/internal/scene"
)

// TestRecognizeDegradedAtReference pins the degraded (stage-0-only) path:
// at the calibrated reference view every sign must still come back under its
// own label, with a bound no larger than the full path's exact distance and
// the diagnostics the degraded path cannot provide left zero.
func TestRecognizeDegradedAtReference(t *testing.T) {
	rec, rend := newCalibrated(t)
	for _, s := range body.AllSigns() {
		frame, err := rend.Render(s, scene.ReferenceView(), body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		full, err := rec.Recognize(frame)
		if err != nil {
			t.Fatalf("%v full: %v", s, err)
		}
		deg, err := rec.RecognizeDegraded(frame)
		if err != nil {
			t.Fatalf("%v degraded: %v", s, err)
		}
		if !deg.OK || deg.Sign != s {
			t.Fatalf("%v degraded verdict: %+v", s, deg)
		}
		if deg.Match.Dist > full.Match.Dist+1e-9 {
			t.Fatalf("%v: bound %.4f exceeds exact %.4f", s, deg.Match.Dist, full.Match.Dist)
		}
		if deg.Confidence != 0 || deg.RunnerUp.Label != "" {
			t.Fatalf("%v: degraded result carries full-path diagnostics: %+v", s, deg)
		}
	}
}
