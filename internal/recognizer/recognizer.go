// Package recognizer assembles the paper's §IV real-time sign-recognition
// pipeline:
//
//	frame → global threshold → morphological clean-up → largest component →
//	Moore contour → centroid-distance time series → z-norm → PAA → SAX word →
//	database match (rotation- and mirror-invariant)
//
// with per-stage latency instrumentation so the experiment harness can
// reproduce the paper's timing discussion (38 ms @ 0°, 27 ms @ 65° on the
// authors' Python/OpenCV prototype; the shape to reproduce is "well inside a
// 30 fps budget, cheaper at high azimuth").
package recognizer

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"hdc/internal/body"
	"hdc/internal/raster"
	"hdc/internal/sax"
	"hdc/internal/scene"
	"hdc/internal/timeseries"
	"hdc/internal/vision"
)

// Config parameterises the pipeline. Zero fields take the defaults the
// repository calibrates in its experiments.
type Config struct {
	SignatureLen int     // contour signature samples (default 128)
	Segments     int     // SAX word length (default 16)
	Alphabet     int     // SAX alphabet size (default 5)
	MorphRadius  int     // open/close structuring radius (default 1)
	Threshold    float64 // exact-distance acceptance threshold (default 4.8)
	// Normalize selects the contour normalisation. The default (zero value)
	// is vision.NormAspect, which cancels axis-aligned foreshortening from
	// the drone's altitude (vertical) and relative azimuth (horizontal)
	// while keeping the diagonal second moment that separates No from Yes;
	// vision.NormNone and vision.NormWhiten are available for the ablation
	// experiment (E10b).
	Normalize vision.Normalization
	// ShiftWindowFrac, when positive, bounds the rotation-alignment search
	// to ±frac of the signature. The default (zero or negative) searches all
	// rotations — the Xi et al. shape-matching setting, which tolerates the
	// contour start point jumping between the raised hand and the head as
	// the view changes. The bounded variant is kept for the E10b ablation.
	ShiftWindowFrac float64
	// ScanWorkers, when >1, enables the database's concurrent shard scan
	// for large dictionaries (see sax.Database.SetScanWorkers). The default
	// serial scan is right for the built-in reference sets; fleet-scale
	// per-site dictionaries with hundreds of exemplars benefit.
	ScanWorkers int
}

func (c Config) withDefaults() Config {
	if c.SignatureLen == 0 {
		c.SignatureLen = 128
	}
	if c.Segments == 0 {
		c.Segments = 16
	}
	if c.Alphabet == 0 {
		c.Alphabet = 5
	}
	if c.MorphRadius == 0 {
		c.MorphRadius = 1
	}
	if c.Threshold == 0 {
		c.Threshold = 4.8
	}
	if c.Normalize == 0 {
		c.Normalize = vision.NormAspect
	}
	return c
}

// StageTimings carries per-stage wall-clock durations of one recognition.
type StageTimings struct {
	Threshold time.Duration
	Morph     time.Duration
	Contour   time.Duration // component + trace + signature
	Encode    time.Duration // z-norm + PAA + symbolise
	Match     time.Duration // database search
	Total     time.Duration
}

// Result is the outcome of recognising one frame.
type Result struct {
	OK       bool      // true when a sign was accepted
	Sign     body.Sign // recognised sign (valid when OK)
	Label    string    // database label of the match
	Word     sax.Word  // SAX word of the query signature
	Match    sax.Match // full match diagnostics (nearest even if rejected)
	RunnerUp sax.Match // second-nearest entry (zero when the database has one entry)
	// Margin and Confidence measure how clearly the winning label beat the
	// nearest rival label (sax.RivalMargin over the top-4 matches):
	// exemplars of the winning sign do not count against it. Margin is the
	// absolute distance gap (+Inf with no competitor at all), Confidence
	// the relative margin in [0,1].
	Margin     float64
	Confidence float64
	Signature  timeseries.Series // z-normalised query signature
	Area       int               // silhouette pixel area
	Timings    StageTimings
}

// Recognizer binds a SAX database of reference signs to the vision
// pipeline. Build one with New and populate it with BuildReferences (or
// AddReference for custom exemplars).
//
// Concurrency: the configuration is immutable after New, and the reference
// database guards itself, so Recognize/RecognizeWith/RecognizeInto may be
// called from any number of goroutines once the references are built. The
// setup calls — BuildReferences, AddReference, LoadReferences — must complete
// before (or be externally serialised with) concurrent recognition.
type Recognizer struct {
	cfg  Config
	db   *sax.Database  // in-memory backend (nil after UseDictionary swaps it out)
	dict sax.Dictionary // active dictionary; == db unless UseDictionary replaced it
	enc  *sax.Encoder
}

// Scratch holds the per-worker reusable state of one recognition lane: the
// vision buffers that would otherwise be reallocated every frame, plus the
// database lookup scratch (candidate heap, top-k working set). Each worker
// goroutine owns one Scratch; the zero-configuration way to get one is
// NewScratch.
type Scratch struct {
	v    *vision.Scratch
	lk   *sax.LookupScratch
	topk [4]sax.Match
}

// NewScratch returns a fresh recognition scratch.
func NewScratch() *Scratch {
	return &Scratch{v: vision.NewScratch(), lk: sax.NewLookupScratch()}
}

// Vision exposes the scratch's vision buffers so custom pipeline stages
// (the gesture feature extractor) can share a worker's pooled front half
// instead of allocating their own planes. The same ownership rule applies:
// one goroutine at a time.
func (sc *Scratch) Vision() *vision.Scratch { return sc.v }

// scratchPool backs Recognize's per-call scratch so one-shot callers share
// the loop callers' allocation-free path.
var scratchPool = sync.Pool{
	New: func() any { return NewScratch() },
}

// New constructs a recognizer with an empty reference database.
func New(cfg Config) (*Recognizer, error) {
	cfg = cfg.withDefaults()
	enc, err := sax.NewEncoder(cfg.Segments, cfg.Alphabet)
	if err != nil {
		return nil, fmt.Errorf("recognizer: %w", err)
	}
	db, err := sax.NewDatabase(enc, cfg.SignatureLen)
	if err != nil {
		return nil, fmt.Errorf("recognizer: %w", err)
	}
	if cfg.ShiftWindowFrac > 0 {
		db.SetShiftWindowFrac(cfg.ShiftWindowFrac)
	}
	if cfg.ScanWorkers > 1 {
		db.SetScanWorkers(cfg.ScanWorkers)
	}
	return &Recognizer{cfg: cfg, db: db, dict: db, enc: enc}, nil
}

// Config returns the effective configuration.
func (r *Recognizer) Config() Config { return r.cfg }

// Database exposes the underlying in-memory SAX database (read-mostly; used
// by the experiment harness for uniqueness matrices). It returns nil when
// UseDictionary has replaced the backend with an external dictionary such as
// the on-disk store — callers that need backend-agnostic access should use
// Dictionary instead.
func (r *Recognizer) Database() *sax.Database { return r.db }

// Dictionary returns the active reference dictionary — the built-in
// in-memory database by default, or whatever UseDictionary installed.
func (r *Recognizer) Dictionary() sax.Dictionary { return r.dict }

// UseDictionary replaces the reference backend with an external
// sax.Dictionary — typically a mapped on-disk store (internal/sax/store), so
// a drone serves million-entry dictionaries without parsing them at start-up.
// The dictionary's encoder parameters and series length must match this
// recognizer's configuration. Must not be called concurrently with
// recognition; after it returns, Database() reports nil and Save/Load of the
// in-memory database are unavailable.
func (r *Recognizer) UseDictionary(d sax.Dictionary) error {
	if d == nil {
		return errors.New("recognizer: nil dictionary")
	}
	if d.Encoder().Segments() != r.cfg.Segments ||
		d.Encoder().AlphabetSize() != r.cfg.Alphabet ||
		d.SeriesLen() != r.cfg.SignatureLen {
		return fmt.Errorf("recognizer: dictionary (w=%d a=%d n=%d) does not match config (w=%d a=%d n=%d)",
			d.Encoder().Segments(), d.Encoder().AlphabetSize(), d.SeriesLen(),
			r.cfg.Segments, r.cfg.Alphabet, r.cfg.SignatureLen)
	}
	r.dict = d
	r.db = nil
	return nil
}

// labelFor maps signs to database labels.
func labelFor(s body.Sign) string { return s.String() }

// signFor is the inverse of labelFor.
func signFor(label string) (body.Sign, bool) {
	for _, s := range []body.Sign{body.SignIdle, body.SignAttention, body.SignYes, body.SignNo} {
		if s.String() == label {
			return s, true
		}
	}
	return 0, false
}

// AddReference registers a raw reference signature under a sign label.
func (r *Recognizer) AddReference(s body.Sign, sig timeseries.Series) error {
	if !s.Valid() {
		return fmt.Errorf("recognizer: invalid sign %d", int(s))
	}
	return r.dict.Add(labelFor(s), sig)
}

// ReferenceAzimuths are the relative azimuths at which BuildReferences
// registers one exemplar per sign. The paper's prototype compared captures
// against "a database of strings"; with real imagery a single full-on
// exemplar covered the ±65° envelope, but our synthetic silhouettes carry
// less texture, so the database holds a frontal exemplar plus one per ±40°
// to restore the same envelope (documented as a substitution in DESIGN.md).
// Mirror matching covers the rear hemisphere.
var ReferenceAzimuths = []float64{0, -40, 40}

// BuildReferences renders each communicative sign at the canonical
// (paper-reference) altitude/distance and registers clean exemplar
// signatures at ReferenceAzimuths.
func (r *Recognizer) BuildReferences(rend *scene.Renderer, view scene.View) error {
	return r.BuildReferencesAt(rend, view, ReferenceAzimuths)
}

// BuildReferencesAt is BuildReferences with explicit exemplar azimuths
// (useful for the single-exemplar ablation).
func (r *Recognizer) BuildReferencesAt(rend *scene.Renderer, view scene.View, azimuths []float64) error {
	if len(azimuths) == 0 {
		return errors.New("recognizer: no reference azimuths")
	}
	for _, s := range body.AllSigns() {
		for _, az := range azimuths {
			v := view
			v.AzimuthDeg = view.AzimuthDeg + az
			frame, err := rend.Render(s, v, body.Options{}, nil)
			if err != nil {
				return fmt.Errorf("recognizer: reference %v @ %v°: %w", s, az, err)
			}
			sig, err := r.extractSignature(frame)
			if err != nil {
				return fmt.Errorf("recognizer: reference %v @ %v°: %w", s, az, err)
			}
			if err := r.dict.Add(labelFor(s), sig); err != nil {
				return err
			}
		}
	}
	return nil
}

// extractSignature runs the vision front half only (no timing).
func (r *Recognizer) extractSignature(frame *raster.Gray) (timeseries.Series, error) {
	mask := vision.OtsuBinarize(frame)
	mask = vision.Open(mask, r.cfg.MorphRadius)
	mask = vision.Close(mask, r.cfg.MorphRadius)
	sig, _, _, err := r.signatureOf(mask)
	return sig, err
}

// signatureOf applies the configured contour normalisation.
func (r *Recognizer) signatureOf(mask *vision.Binary) (timeseries.Series, vision.Contour, vision.Component, error) {
	return vision.ExtractSignatureNorm(mask, r.cfg.SignatureLen, r.cfg.Normalize)
}

// ErrNoSign is returned when the frame contains no acceptable sign.
var ErrNoSign = errors.New("recognizer: no sign recognised")

// Recognize runs the full pipeline over one frame, returning the match (or
// ErrNoSign with diagnostics in Result). All stages are timed. Scratch
// buffers come from a shared pool; workers that process frames in a loop
// should hold their own Scratch and call RecognizeWith instead.
func (r *Recognizer) Recognize(frame *raster.Gray) (Result, error) {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return r.recognize(sc, frame)
}

// RecognizeWith is Recognize using the caller's per-worker scratch state, the
// steady-state-allocation-free path of the streaming pipeline. The returned
// Result is independent of the scratch and safe to retain.
func (r *Recognizer) RecognizeWith(sc *Scratch, frame *raster.Gray) (Result, error) {
	if sc == nil {
		return r.Recognize(frame)
	}
	return r.recognize(sc, frame)
}

// RecognizeInto is the batch API: it recognises frames[i] into dst[i],
// reusing sc across the batch, and returns one error per frame (nil on an
// accepted sign, ErrNoSign or a vision error otherwise — matching what
// Recognize would have returned). dst must be at least as long as frames.
func (r *Recognizer) RecognizeInto(sc *Scratch, frames []*raster.Gray, dst []Result) []error {
	if len(dst) < len(frames) {
		panic("recognizer: RecognizeInto dst shorter than frames")
	}
	if sc == nil {
		sc = NewScratch()
	}
	errs := make([]error, len(frames))
	for i, f := range frames {
		dst[i], errs[i] = r.recognize(sc, f)
	}
	return errs
}

// frontHalf runs the vision and encoding stages shared by the full and
// degraded paths — frame through SAX word, timings recorded into res — and
// returns the z-normalised signature and its word. t0 is the recognition's
// start instant; on error res.Timings.Total is already closed out.
func (r *Recognizer) frontHalf(sc *Scratch, frame *raster.Gray, res *Result, t0 time.Time) (timeseries.Series, sax.Word, error) {
	vs := sc.v

	mask := vs.Binarize(frame)
	t1 := time.Now()
	res.Timings.Threshold = t1.Sub(t0)

	mask = vs.Clean(mask, r.cfg.MorphRadius)
	t2 := time.Now()
	res.Timings.Morph = t2.Sub(t1)

	sig, _, comp, err := vs.ExtractSignatureNorm(mask, r.cfg.SignatureLen, r.cfg.Normalize)
	t3 := time.Now()
	res.Timings.Contour = t3.Sub(t2)
	if err != nil {
		res.Timings.Total = time.Since(t0)
		return nil, sax.Word{}, fmt.Errorf("recognizer: %w", err)
	}
	res.Area = comp.Area
	// The scratch-owned signature is normalised into a fresh series: the
	// Result escapes the worker, the scratch does not.
	z := sig.ZNormalize()
	res.Signature = z

	word, err := r.enc.EncodeZ(z)
	res.Timings.Encode = time.Since(t3)
	if err != nil {
		res.Timings.Total = time.Since(t0)
		return nil, sax.Word{}, fmt.Errorf("recognizer: %w", err)
	}
	res.Word = word
	return z, word, nil
}

// recognize is the shared implementation behind Recognize and its variants.
func (r *Recognizer) recognize(sc *Scratch, frame *raster.Gray) (Result, error) {
	var res Result
	t0 := time.Now()
	z, word, err := r.frontHalf(sc, frame, &res, t0)
	if err != nil {
		return res, err
	}
	t4 := time.Now()

	// Top-4 lookup: the nearest entry decides the sign; the distance margin
	// over the nearest *rival* label (other exemplars of the same sign do
	// not compete) becomes the confidence the monitor and negotiation
	// layers consume.
	matches, lerr := r.dict.LookupKZWith(sc.lk, z, word, 4, sc.topk[:0])
	t5 := time.Now()
	res.Timings.Match = t5.Sub(t4)
	res.Timings.Total = t5.Sub(t0)
	if lerr != nil {
		return res, lerr
	}
	if len(matches) == 0 {
		return res, ErrNoSign
	}
	match := matches[0]
	res.Match = match
	if len(matches) > 1 {
		res.RunnerUp = matches[1]
	}
	res.Margin, res.Confidence = sax.RivalMargin(matches)
	if math.IsInf(match.Dist, 1) || match.Dist > r.cfg.Threshold {
		return res, ErrNoSign
	}
	res.Label = match.Label
	if s, ok := signFor(match.Label); ok {
		res.Sign = s
	}
	res.OK = true
	return res, nil
}

// RecognizeDegraded is the overload/fault escape hatch: the same vision
// front half, but the dictionary match runs only stage 0 of the lookup
// cascade (the symbol-histogram lower bound — see sax.HistNearest) instead
// of the full three-stage refinement. It is cheap enough to run on a request
// goroutine without the worker pool, which is exactly when the serving layer
// uses it. The returned Result has no RunnerUp/Margin/Confidence (stage 0
// ranks by a bound, not exact distances) and Match.Dist is the bound — an
// underestimate — so acceptance against the threshold is optimistic: answers
// must be marked degraded on the wire. Scratch buffers come from the shared
// pool; loop callers use RecognizeDegradedWith.
func (r *Recognizer) RecognizeDegraded(frame *raster.Gray) (Result, error) {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return r.RecognizeDegradedWith(sc, frame)
}

// RecognizeDegradedWith is RecognizeDegraded with a caller-owned scratch.
func (r *Recognizer) RecognizeDegradedWith(sc *Scratch, frame *raster.Gray) (Result, error) {
	if sc == nil {
		return r.RecognizeDegraded(frame)
	}
	var res Result
	t0 := time.Now()
	_, word, err := r.frontHalf(sc, frame, &res, t0)
	if err != nil {
		return res, err
	}
	t4 := time.Now()
	m, ok := r.dict.NearestHist(sc.lk, word)
	t5 := time.Now()
	res.Timings.Match = t5.Sub(t4)
	res.Timings.Total = t5.Sub(t0)
	if !ok {
		return res, ErrNoSign
	}
	res.Match = m
	if m.Dist > r.cfg.Threshold {
		return res, ErrNoSign
	}
	res.Label = m.Label
	if s, ok := signFor(m.Label); ok {
		res.Sign = s
	}
	res.OK = true
	return res, nil
}

// RecognizeView renders the given sign/view with rend and recognises the
// frame — the one-call form used by sweeps and examples.
func (r *Recognizer) RecognizeView(rend *scene.Renderer, s body.Sign, v scene.View, opts body.Options, rng *rand.Rand) (Result, error) {
	frame, err := rend.Render(s, v, opts, rng)
	if err != nil {
		return Result{}, err
	}
	return r.Recognize(frame)
}

// SaveReferences serialises the reference database (see sax.Database.Save):
// build the dictionary once on the ground station, ship it to drones. Only
// the in-memory backend can be saved; store-backed recognizers ship the
// store directory instead (store.Snapshot.CopyTo).
func (r *Recognizer) SaveReferences(w io.Writer) error {
	if r.db == nil {
		return errors.New("recognizer: external dictionary in use; save the store directory instead")
	}
	return r.db.Save(w)
}

// LoadReferences replaces the reference database with one previously saved.
// The stored encoder parameters must match this recognizer's configuration.
func (r *Recognizer) LoadReferences(rd io.Reader) error {
	db, err := sax.Load(rd)
	if err != nil {
		return fmt.Errorf("recognizer: %w", err)
	}
	if db.Encoder().Segments() != r.cfg.Segments ||
		db.Encoder().AlphabetSize() != r.cfg.Alphabet ||
		db.SeriesLen() != r.cfg.SignatureLen {
		return fmt.Errorf("recognizer: stored database (w=%d a=%d n=%d) does not match config (w=%d a=%d n=%d)",
			db.Encoder().Segments(), db.Encoder().AlphabetSize(), db.SeriesLen(),
			r.cfg.Segments, r.cfg.Alphabet, r.cfg.SignatureLen)
	}
	if r.cfg.ShiftWindowFrac > 0 {
		db.SetShiftWindowFrac(r.cfg.ShiftWindowFrac)
	}
	if r.cfg.ScanWorkers > 1 {
		db.SetScanWorkers(r.cfg.ScanWorkers)
	}
	r.db = db
	r.dict = db
	return nil
}
