package recognizer

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"hdc/internal/body"
	"hdc/internal/geom"
	"hdc/internal/raster"
	"hdc/internal/sax"
	"hdc/internal/scene"
	"hdc/internal/timeseries"
	"hdc/internal/vision"
)

// newCalibrated returns a recognizer with the repository's calibrated
// defaults and references built at the paper's canonical view.
func newCalibrated(t testing.TB) (*Recognizer, *scene.Renderer) {
	t.Helper()
	rec, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rend := scene.NewRenderer(scene.Config{})
	if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
		t.Fatal(err)
	}
	return rec, rend
}

func TestConfigDefaults(t *testing.T) {
	rec, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := rec.Config()
	if cfg.SignatureLen != 128 || cfg.Segments != 16 || cfg.Alphabet != 5 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.Threshold != 4.8 {
		t.Fatalf("threshold default: %v", cfg.Threshold)
	}
	if cfg.Normalize != vision.NormAspect {
		t.Fatalf("normalize default: %v", cfg.Normalize)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Alphabet: 1}); err == nil {
		t.Error("bad alphabet should fail")
	}
	if _, err := New(Config{SignatureLen: 4, Segments: 16}); err == nil {
		t.Error("signature shorter than word should fail")
	}
}

func TestRecognizeAllSignsAtReference(t *testing.T) {
	rec, rend := newCalibrated(t)
	for _, s := range body.AllSigns() {
		res, err := rec.RecognizeView(rend, s, scene.ReferenceView(), body.Options{}, nil)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !res.OK || res.Sign != s {
			t.Fatalf("%v recognised as %v (dist %v)", s, res.Sign, res.Match.Dist)
		}
		if res.Match.Dist > 0.5 {
			t.Errorf("%v self distance %v too large", s, res.Match.Dist)
		}
		if res.Word.Len() != rec.Config().Segments {
			t.Errorf("word length %d", res.Word.Len())
		}
	}
}

// TestPaperAltitudeEnvelope reproduces the §IV altitude result: the No sign
// is recognised at every altitude in the paper's 2–5 m envelope (3 m
// horizontal distance, 0° azimuth).
func TestPaperAltitudeEnvelope(t *testing.T) {
	rec, rend := newCalibrated(t)
	for _, alt := range []float64{2, 2.5, 3, 3.5, 4, 4.5, 5} {
		res, err := rec.RecognizeView(rend, body.SignNo,
			scene.View{AltitudeM: alt, DistanceM: 3}, body.Options{}, nil)
		if err != nil {
			t.Fatalf("alt %v: %v", alt, err)
		}
		if !res.OK || res.Sign != body.SignNo {
			t.Errorf("alt %v: recognised %v dist %v", alt, res.Match.Label, res.Match.Dist)
		}
	}
}

// TestPaperAzimuthEnvelope reproduces the §IV azimuth result: the No sign is
// recognised full-on and at 65°, and the high-azimuth region around 90° is
// dead.
func TestPaperAzimuthEnvelope(t *testing.T) {
	rec, rend := newCalibrated(t)
	for _, az := range []float64{0, 15, 45, 65} {
		res, err := rec.RecognizeView(rend, body.SignNo,
			scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: az}, body.Options{}, nil)
		if err != nil {
			t.Fatalf("az %v: %v", az, err)
		}
		if !res.OK || res.Sign != body.SignNo {
			t.Errorf("az %v: got %v dist %v", az, res.Match.Label, res.Match.Dist)
		}
	}
	// Dead angle: at 90° the sign must NOT be accepted as No.
	res, err := rec.RecognizeView(rend, body.SignNo,
		scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: 90}, body.Options{}, nil)
	if err == nil && res.OK && res.Sign == body.SignNo && res.Match.Dist < rec.Config().Threshold {
		t.Errorf("90°: unexpectedly recognised (dist %v)", res.Match.Dist)
	}
}

func TestRecognizeEmptyFrame(t *testing.T) {
	rec, _ := newCalibrated(t)
	blank := raster.MustGray(64, 64)
	blank.Fill(200)
	if _, err := rec.Recognize(blank); err == nil {
		t.Fatal("blank frame should fail")
	}
}

func TestRecognizeIdleRejected(t *testing.T) {
	// A person standing idle must not trigger any of the three signs.
	rec, rend := newCalibrated(t)
	res, err := rec.RecognizeView(rend, body.SignIdle, scene.ReferenceView(), body.Options{}, nil)
	if err == nil && res.OK {
		t.Fatalf("idle stance accepted as %v (dist %v)", res.Sign, res.Match.Dist)
	}
}

func TestRecognizeTimingsPopulated(t *testing.T) {
	rec, rend := newCalibrated(t)
	res, err := rec.RecognizeView(rend, body.SignYes, scene.ReferenceView(), body.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	if tm.Total <= 0 {
		t.Fatal("total timing missing")
	}
	sum := tm.Threshold + tm.Morph + tm.Contour + tm.Encode + tm.Match
	if sum > tm.Total*2 || sum == 0 {
		t.Fatalf("stage timings inconsistent: sum=%v total=%v", sum, tm.Total)
	}
	// The paper's real-time budget: a frame must complete well inside 33 ms
	// (30 fps). Generous bound for CI noise.
	if tm.Total.Milliseconds() > 100 {
		t.Fatalf("recognition took %v, far over the real-time budget", tm.Total)
	}
}

func TestRecognizeNoisyFrames(t *testing.T) {
	rec, _ := newCalibrated(t)
	rend := scene.NewRenderer(scene.Config{NoiseSigma: 8, Clutter: 4})
	rng := rand.New(rand.NewSource(77))
	hits := 0
	const trials = 12
	for i := 0; i < trials; i++ {
		s := body.AllSigns()[i%3]
		res, err := rec.RecognizeView(rend, s, scene.ReferenceView(), body.Options{}, rng)
		if err == nil && res.OK && res.Sign == s {
			hits++
		}
	}
	if hits < trials*3/4 {
		t.Fatalf("noisy recognition %d/%d below 75%%", hits, trials)
	}
}

func TestAddReferenceValidation(t *testing.T) {
	rec, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.AddReference(body.Sign(0), timeseries.Series{1, 2, 3}); err == nil {
		t.Error("invalid sign should fail")
	}
	if err := rec.AddReference(body.SignYes, nil); err == nil {
		t.Error("nil series should fail")
	}
	if err := rec.AddReference(body.SignYes, timeseries.Series{1, 2, 3, 2, 1}); err != nil {
		t.Errorf("valid add failed: %v", err)
	}
}

func TestBuildReferencesAtValidation(t *testing.T) {
	rec, _ := New(Config{})
	rend := scene.NewRenderer(scene.Config{})
	if err := rec.BuildReferencesAt(rend, scene.ReferenceView(), nil); err == nil {
		t.Fatal("empty azimuth list should fail")
	}
}

func TestSingleExemplarAblationNarrowerEnvelope(t *testing.T) {
	// E10b precondition: a single 0° exemplar must give a strictly narrower
	// azimuth envelope than the default exemplar set.
	single, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rend := scene.NewRenderer(scene.Config{})
	if err := single.BuildReferencesAt(rend, scene.ReferenceView(), []float64{0}); err != nil {
		t.Fatal(err)
	}
	multi, _ := New(Config{})
	if err := multi.BuildReferences(rend, scene.ReferenceView()); err != nil {
		t.Fatal(err)
	}
	count := func(r *Recognizer) int {
		n := 0
		for az := -60.0; az <= 60; az += 10 {
			res, err := r.RecognizeView(rend, body.SignYes,
				scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: az}, body.Options{}, nil)
			if err == nil && res.OK && res.Sign == body.SignYes {
				n++
			}
		}
		return n
	}
	ns, nm := count(single), count(multi)
	if ns >= nm {
		t.Fatalf("single-exemplar envelope (%d) should be narrower than multi (%d)", ns, nm)
	}
}

func TestSweepAltitudePaperRange(t *testing.T) {
	rec, rend := newCalibrated(t)
	pts, err := SweepAltitude(rec, rend, body.SignNo, []float64{2, 3, 4, 5}, 3, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !p.Recognized {
			t.Errorf("altitude %v not recognised (dist %v)", p.Param, p.Dist)
		}
	}
}

func TestSweepAzimuthShape(t *testing.T) {
	rec, rend := newCalibrated(t)
	azs := make([]float64, 0, 72)
	for az := 0.0; az < 360; az += 5 {
		azs = append(azs, az)
	}
	pts, err := SweepAzimuth(rec, rend, body.SignNo, 5, 3, azs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 72 {
		t.Fatalf("points = %d", len(pts))
	}
	// Full-on and mirror-rear recognised.
	if !pts[0].Recognized {
		t.Error("0° must be recognised")
	}
	total, arcs := DeadAngle(pts)
	if total < 30 || total > 180 {
		t.Errorf("dead angle %v° outside plausible band [30,180]", total)
	}
	if len(arcs) == 0 {
		t.Error("expected at least one dead arc")
	}
	// The MAJOR dead arcs (≥ 20°) must sit in the side sectors, not at 0° or
	// 180°; isolated erratic cells near sector boundaries are expected (the
	// paper's own wording: "recognition appears erratic").
	major := 0
	for _, a := range arcs {
		if a[1]-a[0] < 20 {
			continue
		}
		major++
		mid := (a[0] + a[1]) / 2
		if mid < 0 {
			mid += 360
		}
		if mid < 30 || (mid > 150 && mid < 210) || mid > 330 {
			t.Errorf("major dead arc %v centred at %v° overlaps the frontal/rear sectors", a, mid)
		}
	}
	if major < 2 {
		t.Errorf("expected two major side dead arcs, found %d (arcs %v)", major, arcs)
	}
	// Frontal envelope: the paper's 0–65° band is alive.
	for _, p := range pts {
		if p.Param <= 60 && p.Param >= 0 && p.Param <= 65 && !p.Recognized && p.Param < 25 {
			t.Errorf("frontal azimuth %v° not recognised", p.Param)
		}
	}
}

func TestDeadAngleHelper(t *testing.T) {
	pts := []SweepPoint{
		{Param: 0, Recognized: true},
		{Param: 10, Recognized: false},
		{Param: 20, Recognized: false},
		{Param: 30, Recognized: true},
	}
	total, arcs := DeadAngle(pts)
	if total != 20 {
		t.Fatalf("total = %v", total)
	}
	if len(arcs) != 1 || arcs[0] != [2]float64{10, 30} {
		t.Fatalf("arcs = %v", arcs)
	}
	// Wrap-around: trailing dead arc merges with leading one.
	pts2 := []SweepPoint{
		{Param: 0, Recognized: false},
		{Param: 10, Recognized: true},
		{Param: 20, Recognized: true},
		{Param: 30, Recognized: false},
	}
	total2, arcs2 := DeadAngle(pts2)
	if total2 != 20 {
		t.Fatalf("total2 = %v", total2)
	}
	if len(arcs2) != 1 {
		t.Fatalf("wrap arcs = %v", arcs2)
	}
	// Degenerate input.
	if tot, _ := DeadAngle(nil); tot != 0 {
		t.Fatal("nil input should give 0")
	}
}

func TestRecognitionLatencyOrdering(t *testing.T) {
	// The paper reports the 65° frame recognised FASTER than the 0° frame
	// (27 ms vs 38 ms) because the foreshortened silhouette has less
	// contour. Reproduce the ordering on contour-stage workload: the 65°
	// silhouette must have fewer foreground pixels.
	_, rend := newCalibrated(t)
	area := func(az float64) int {
		img, err := rend.Render(body.SignNo, scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: az}, body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return vision.OtsuBinarize(img).Count()
	}
	if a0, a65 := area(0), area(65); a65 >= a0 {
		t.Fatalf("65° silhouette (%d px) should be smaller than 0° (%d px)", a65, a0)
	}
}

func TestErrNoSignIsSentinel(t *testing.T) {
	rec, rend := newCalibrated(t)
	// Render something unmatchable: idle far away.
	res, err := rec.RecognizeView(rend, body.SignIdle,
		scene.View{AltitudeM: 5, DistanceM: 12}, body.Options{}, nil)
	if err != nil && !errors.Is(err, ErrNoSign) {
		t.Fatalf("expected ErrNoSign sentinel, got %v", err)
	}
	_ = res
}

func TestDatabaseExposed(t *testing.T) {
	rec, _ := newCalibrated(t)
	if rec.Database().Len() != 9 { // 3 signs × 3 exemplar azimuths
		t.Fatalf("db entries = %d, want 9", rec.Database().Len())
	}
}

func TestSaveLoadReferences(t *testing.T) {
	rec, rend := newCalibrated(t)
	var buf bytes.Buffer
	if err := rec.SaveReferences(&buf); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadReferences(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if fresh.Database().Len() != rec.Database().Len() {
		t.Fatal("entry count mismatch after load")
	}
	// The loaded recognizer classifies identically.
	for _, s := range body.AllSigns() {
		a, errA := rec.RecognizeView(rend, s, scene.ReferenceView(), body.Options{}, nil)
		b, errB := fresh.RecognizeView(rend, s, scene.ReferenceView(), body.Options{}, nil)
		if (errA == nil) != (errB == nil) || a.Label != b.Label {
			t.Fatalf("%v: loaded recognizer diverges (%v/%v vs %v/%v)", s, a.Label, errA, b.Label, errB)
		}
	}
	// Config mismatch rejected.
	other, err := New(Config{Segments: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadReferences(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched config should fail to load")
	}
}

func TestRecognizeWithBystander(t *testing.T) {
	// A second person standing a couple of meters away must not corrupt the
	// primary signaller's recognition: the signaller (closer to the camera
	// target and larger in frame) wins the largest-component selection.
	rec, rend := newCalibrated(t)
	signaller, err := body.NewFigure(body.SignNo, body.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := body.NewFigure(body.SignIdle, body.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bystander = bystander.Translate(geom.V3(2.5, 2.0, 0))
	frame, err := rend.RenderFigures([]body.Figure{signaller, bystander}, scene.ReferenceView(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.Recognize(frame)
	if err != nil {
		t.Fatalf("bystander broke recognition: %v", err)
	}
	if !res.OK || res.Sign != body.SignNo {
		t.Fatalf("recognised %v (dist %.2f), want No", res.Match.Label, res.Match.Dist)
	}
}

// TestRecognizeConfidence: the top-2 lookup must populate the runner-up and
// the margin-based confidence, and a clean reference capture should beat
// its nearest competitor decisively.
func TestRecognizeConfidence(t *testing.T) {
	rec, rend := newCalibrated(t)
	for _, s := range body.AllSigns() {
		res, err := rec.RecognizeView(rend, s, scene.ReferenceView(), body.Options{}, nil)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.RunnerUp.Label == "" {
			t.Fatalf("%v: no runner-up despite multi-entry database", s)
		}
		if res.RunnerUp.Dist < res.Match.Dist {
			t.Fatalf("%v: runner-up %v closer than match %v", s, res.RunnerUp.Dist, res.Match.Dist)
		}
		if res.Confidence < 0 || res.Confidence > 1 {
			t.Fatalf("%v: confidence %v outside [0,1]", s, res.Confidence)
		}
		// The rival label is at least as far as the raw runner-up, so the
		// rival-based margin can only be at least the runner-up gap.
		if res.Margin < res.RunnerUp.Dist-res.Match.Dist {
			t.Fatalf("%v: margin %v below runner-up gap", s, res.Margin)
		}
		// A self-capture at the reference view matches near-exactly; the
		// runner-up (another sign or azimuth exemplar) must be clearly
		// further.
		if res.Confidence < 0.5 {
			t.Errorf("%v: clean capture confidence %v suspiciously low", s, res.Confidence)
		}
	}
	// The runner-up of a clean capture should never out-label the winner:
	// distinct labels mean the margin measured real inter-sign separation.
	res, err := rec.RecognizeView(rend, body.SignNo, scene.ReferenceView(), body.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label == "" || res.RunnerUp.Label == res.Label {
		// Same-label runner-up is legal (another exemplar of the same
		// sign), so only log: the margin then measures exemplar spread.
		t.Logf("runner-up shares label %q (another exemplar)", res.Label)
	}
}

// TestConfidenceIgnoresSameSignExemplars: several near-identical exemplars
// of the winning sign must not deflate confidence — the margin is measured
// against the nearest *rival* label, not the raw runner-up.
func TestConfidenceIgnoresSameSignExemplars(t *testing.T) {
	rec, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	base := make(timeseries.Series, 128)
	for i := range base {
		base[i] = 1 + 0.5*float64(i%16)/16
	}
	// Three near-duplicate Yes exemplars, one clearly different No.
	for ex := 0; ex < 3; ex++ {
		s := base.Clone()
		for i := range s {
			s[i] += 0.01 * rng.NormFloat64()
		}
		if err := rec.AddReference(body.SignYes, s); err != nil {
			t.Fatal(err)
		}
	}
	far := make(timeseries.Series, 128)
	for i := range far {
		far[i] = 1 + 0.8*float64((i/32)%2)
	}
	if err := rec.AddReference(body.SignNo, far); err != nil {
		t.Fatal(err)
	}

	// Query = another perturbation of the duplicated exemplar: its
	// runner-up is a same-sign exemplar at tiny distance, but confidence
	// must reflect the distant rival.
	q := base.Clone()
	for i := range q {
		q[i] += 0.01 * rng.NormFloat64()
	}
	matches, err := rec.Database().LookupK(q, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].Label != "Yes" || matches[1].Label != "Yes" {
		t.Fatalf("setup broken: top-2 = %s, %s", matches[0].Label, matches[1].Label)
	}
	if _, rel := sax.Margin(matches); rel > 0.9 {
		t.Fatalf("setup broken: raw runner-up margin %v not deflated", rel)
	}
	if _, rel := sax.RivalMargin(matches); rel < 0.5 {
		t.Fatalf("rival margin %v deflated by same-sign exemplars", rel)
	}
}

// TestMonitorEventConfidence: hold events carry the confirming frame's
// confidence.
func TestMonitorEventConfidence(t *testing.T) {
	rec, rend := newCalibrated(t)
	mon, err := NewMonitor(rec, MonitorConfig{HoldFrames: 2, ReleaseFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	var held *SignEvent
	for i := 0; i < 4 && held == nil; i++ {
		frame, err := rend.Render(body.SignYes, scene.ReferenceView(), body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		events, err := mon.Push(frame, 33*1e6)
		if err != nil {
			t.Fatal(err)
		}
		for j := range events {
			if events[j].Stable {
				held = &events[j]
			}
		}
	}
	if held == nil {
		t.Fatal("sign never became stable")
	}
	if held.Confidence <= 0 || held.Confidence > 1 {
		t.Fatalf("hold event confidence %v", held.Confidence)
	}
}
