package recognizer

import (
	"errors"
	"fmt"
	"math/rand"

	"hdc/internal/body"
	"hdc/internal/scene"
)

// SweepPoint is one cell of a recognition-envelope sweep (E6/E7).
type SweepPoint struct {
	Param      float64 // the swept value (altitude in m, or azimuth in deg)
	Recognized bool    // accepted and correctly labelled
	Label      string  // label returned (nearest even when rejected)
	Dist       float64 // exact match distance
	Mirrored   bool    // matched through the mirror branch
}

// SweepAzimuth evaluates recognition of a sign across relative azimuths at a
// fixed altitude/distance. trialsPerPoint > 1 adds noise/jitter trials and
// reports the majority outcome; rng may be nil for a single clean trial.
func SweepAzimuth(r *Recognizer, rend *scene.Renderer, s body.Sign,
	altitudeM, distanceM float64, azimuthsDeg []float64,
	trialsPerPoint int, rng *rand.Rand) ([]SweepPoint, error) {

	out := make([]SweepPoint, 0, len(azimuthsDeg))
	for _, az := range azimuthsDeg {
		v := scene.View{AltitudeM: altitudeM, DistanceM: distanceM, AzimuthDeg: az}
		p, err := sweepOne(r, rend, s, v, trialsPerPoint, rng)
		if err != nil {
			return nil, fmt.Errorf("recognizer: azimuth %v: %w", az, err)
		}
		p.Param = az
		out = append(out, p)
	}
	return out, nil
}

// SweepAltitude evaluates recognition of a sign across altitudes at fixed
// distance/azimuth (the paper's 2–5 m envelope, E6).
func SweepAltitude(r *Recognizer, rend *scene.Renderer, s body.Sign,
	altitudesM []float64, distanceM, azimuthDeg float64,
	trialsPerPoint int, rng *rand.Rand) ([]SweepPoint, error) {

	out := make([]SweepPoint, 0, len(altitudesM))
	for _, alt := range altitudesM {
		v := scene.View{AltitudeM: alt, DistanceM: distanceM, AzimuthDeg: azimuthDeg}
		p, err := sweepOne(r, rend, s, v, trialsPerPoint, rng)
		if err != nil {
			return nil, fmt.Errorf("recognizer: altitude %v: %w", alt, err)
		}
		p.Param = alt
		out = append(out, p)
	}
	return out, nil
}

func sweepOne(r *Recognizer, rend *scene.Renderer, s body.Sign, v scene.View,
	trials int, rng *rand.Rand) (SweepPoint, error) {
	if trials < 1 {
		trials = 1
	}
	wantLabel := labelFor(s)
	var hits int
	var last Result
	for t := 0; t < trials; t++ {
		var opts body.Options
		var trialRng *rand.Rand
		if rng != nil && trials > 1 {
			opts.ArmJitterDeg = rng.NormFloat64() * 3
			trialRng = rng
		}
		res, err := r.RecognizeView(rend, s, v, opts, trialRng)
		if err != nil && !errors.Is(err, ErrNoSign) {
			// Vision failures (e.g. silhouette fell apart) count as misses,
			// not harness errors — that IS the dead-angle phenomenon.
			continue
		}
		last = res
		if res.OK && res.Label == wantLabel {
			hits++
		}
	}
	return SweepPoint{
		Recognized: hits*2 > trials, // majority
		Label:      last.Match.Label,
		Dist:       last.Match.Dist,
		Mirrored:   last.Match.Mirrored,
	}, nil
}

// DeadAngle analyses a full-circle azimuth sweep and returns the total arc
// (degrees) over which the sign was NOT recognised, plus the contiguous dead
// arcs as [start, end] azimuth pairs. The sweep must cover [0, 360) at a
// uniform step.
func DeadAngle(points []SweepPoint) (totalDeg float64, arcs [][2]float64) {
	if len(points) < 2 {
		return 0, nil
	}
	step := points[1].Param - points[0].Param
	var cur *[2]float64
	for _, p := range points {
		if !p.Recognized {
			totalDeg += step
			if cur == nil {
				cur = &[2]float64{p.Param, p.Param + step}
			} else {
				cur[1] = p.Param + step
			}
		} else if cur != nil {
			arcs = append(arcs, *cur)
			cur = nil
		}
	}
	if cur != nil {
		// Merge a trailing arc that wraps into a leading one.
		if len(arcs) > 0 && arcs[0][0] == points[0].Param {
			arcs[0][0] = cur[0] - 360
		} else {
			arcs = append(arcs, *cur)
		}
	}
	return totalDeg, arcs
}
