package recognizer

import (
	"errors"
	"sync"
	"testing"

	"hdc/internal/body"
	"hdc/internal/raster"
	"hdc/internal/scene"
)

// TestParallelRecognizeConsistent runs the full pipeline from many
// goroutines at once — the documented concurrency contract — and checks
// every worker computes the identical verdict for the same frames. Run with
// -race to verify the sax.Database and scratch-pool locking underneath.
func TestParallelRecognizeConsistent(t *testing.T) {
	rec, rend := newCalibrated(t)
	view := scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: 20}

	signs := body.AllSigns()
	frames := make(map[body.Sign]*raster.Gray, len(signs))
	want := make(map[body.Sign]Result, len(signs))
	for _, s := range signs {
		f, err := rend.Render(s, view, body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rec.Recognize(f)
		if err != nil && !errors.Is(err, ErrNoSign) {
			t.Fatal(err)
		}
		frames[s] = f
		want[s] = res
	}

	const workers = 8
	const rounds = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := NewScratch()
			for i := 0; i < rounds; i++ {
				s := signs[(w+i)%len(signs)]
				var res Result
				var err error
				if i%2 == 0 {
					res, err = rec.RecognizeWith(sc, frames[s])
				} else {
					res, err = rec.Recognize(frames[s])
				}
				if err != nil && !errors.Is(err, ErrNoSign) {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				w0 := want[s]
				if res.OK != w0.OK || res.Sign != w0.Sign || res.Word != w0.Word {
					t.Errorf("worker %d: sign %v diverged: got (%v %v %v), want (%v %v %v)",
						w, s, res.OK, res.Sign, res.Word, w0.OK, w0.Sign, w0.Word)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestRecognizeIntoBatch checks the batch API agrees with the single-frame
// path and enforces the dst length contract.
func TestRecognizeIntoBatch(t *testing.T) {
	rec, rend := newCalibrated(t)

	signs := body.AllSigns()
	frames := make([]*raster.Gray, 0, len(signs))
	for _, s := range signs {
		f, err := rend.Render(s, scene.ReferenceView(), body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}

	dst := make([]Result, len(frames))
	errs := rec.RecognizeInto(NewScratch(), frames, dst)
	for i, f := range frames {
		want, werr := rec.Recognize(f)
		if (werr == nil) != (errs[i] == nil) {
			t.Fatalf("frame %d: err %v, want %v", i, errs[i], werr)
		}
		if dst[i].OK != want.OK || dst[i].Sign != want.Sign {
			t.Fatalf("frame %d: got (%v %v), want (%v %v)",
				i, dst[i].OK, dst[i].Sign, want.OK, want.Sign)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("short dst should panic")
		}
	}()
	rec.RecognizeInto(nil, frames, make([]Result, 0))
}
