package recognizer

import (
	"bytes"
	"math"
	"testing"

	"hdc/internal/body"
	"hdc/internal/sax"
	"hdc/internal/sax/store"
	"hdc/internal/scene"
)

// TestUseDictionaryStoreMatchesInMemory runs the full ground-station →
// drone deployment path: build references in memory, save them as v1 JSON,
// convert to a store directory, and recognise through the mapped store. The
// store-backed recognizer must produce bit-identical decisions.
func TestUseDictionaryStoreMatchesInMemory(t *testing.T) {
	memRec, rend := newCalibrated(t)

	var buf bytes.Buffer
	if err := memRec.SaveReferences(&buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/store"
	if n, err := store.ConvertV1(&buf, dir, store.BuilderOptions{}); err != nil {
		t.Fatal(err)
	} else if n != memRec.Database().Len() {
		t.Fatalf("converted %d entries, want %d", n, memRec.Database().Len())
	}

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	stRec, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stRec.UseDictionary(st); err != nil {
		t.Fatal(err)
	}
	if stRec.Database() != nil {
		t.Fatal("Database() should be nil once an external dictionary is installed")
	}
	if stRec.Dictionary() != sax.Dictionary(st) {
		t.Fatal("Dictionary() should report the installed store")
	}
	if err := stRec.SaveReferences(&bytes.Buffer{}); err == nil {
		t.Fatal("SaveReferences should refuse a store-backed recognizer")
	}

	for _, s := range body.AllSigns() {
		for _, az := range []float64{0, 25, -40, 65} {
			v := scene.ReferenceView()
			v.AzimuthDeg += az
			memRes, memErr := memRec.RecognizeView(rend, s, v, body.Options{}, nil)
			stRes, stErr := stRec.RecognizeView(rend, s, v, body.Options{}, nil)
			if (memErr == nil) != (stErr == nil) {
				t.Fatalf("%v @ %v°: err mismatch mem=%v store=%v", s, az, memErr, stErr)
			}
			if memRes.OK != stRes.OK || memRes.Label != stRes.Label ||
				math.Float64bits(memRes.Match.Dist) != math.Float64bits(stRes.Match.Dist) ||
				math.Float64bits(memRes.Confidence) != math.Float64bits(stRes.Confidence) {
				t.Fatalf("%v @ %v°: mem=%+v store=%+v", s, az, memRes.Match, stRes.Match)
			}
		}
	}
}

// TestUseDictionaryValidation checks the parameter cross-check and the
// nil guard.
func TestUseDictionaryValidation(t *testing.T) {
	rec, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.UseDictionary(nil); err == nil {
		t.Fatal("nil dictionary should be rejected")
	}
	enc, err := sax.NewEncoder(8, 4) // differs from the default 16/5
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(t.TempDir()+"/s", enc, 128, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := rec.UseDictionary(st); err == nil {
		t.Fatal("mismatched dictionary parameters should be rejected")
	}
}
