package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"hdc/internal/core"
	"hdc/internal/pipeline"
	"hdc/internal/scene"
	"hdc/internal/server"
	"hdc/internal/server/loadtest"
	"hdc/internal/telemetry"
)

// E19Server measures the networked recognition service under multi-operator
// load: an in-process hdcserve (internal/server over one shared core.System
// pool) driven by concurrent synthetic operators, half submitting ordered
// batches (/v1/batch), half running session streams (/v1/streams). The
// sustained frame throughput should hold flat as operators multiply — the
// pool is the capacity, the HTTP boundary only queues — while request
// latency grows linearly with the queue. The driver is
// internal/server/loadtest, the same one behind `go run ./cmd/hdcserve
// -loadgen`, which reproduces this with tunable mix/wire/duration.
func E19Server() (string, error) {
	sys, err := core.NewSystem(
		core.WithSceneConfig(scene.Config{}),
		core.WithPipelineConfig(pipeline.Config{}),
	)
	if err != nil {
		return "", err
	}
	defer sys.Close()
	srv := server.New(sys, server.Options{MaxBatch: 1024})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	const batch = 8
	frames, err := loadtest.RenderFrames(batch)
	if err != nil {
		return "", err
	}

	const runFor = 2 * time.Second
	ctx := context.Background()
	tab := telemetry.NewTable("operators", "frames/sec", "req/sec", "p50 ms", "p99 ms", "failures")
	for _, operators := range []int{2, 8, 16, 32} {
		res, err := loadtest.Drive(ctx, base, loadtest.Config{
			Operators: operators, Batch: batch, Duration: runFor,
			Mix: "mixed", Wire: "raw",
		}, frames)
		if err != nil {
			return "", err
		}
		tab.AddRow(
			fmt.Sprintf("%d", operators),
			fmt.Sprintf("%.1f", res.FramesPerSec()),
			fmt.Sprintf("%.1f", res.ReqPerSec()),
			fmt.Sprintf("%.1f", res.PercentileMS(0.50)),
			fmt.Sprintf("%.1f", res.PercentileMS(0.99)),
			fmt.Sprintf("%d", res.Failures),
		)
	}

	var sb strings.Builder
	sb.WriteString("Paper baseline: one drone talking to one recogniser. This extension\n")
	sb.WriteString("puts the ROADMAP's shared service boundary in front of the pool: an\n")
	sb.WriteString("HTTP/JSON service (internal/server, binary cmd/hdcserve) serving many\n")
	sb.WriteString("operators from one core.System. Half the operators below submit\n")
	sb.WriteString("8-frame ordered batches, half run session streams; frames travel on\n")
	sb.WriteString("the raw octet-stream wire into pooled buffers.\n\n")
	sb.WriteString(tab.Markdown())
	sb.WriteString(fmt.Sprintf("\nHost: GOMAXPROCS=%d, NumCPU=%d, run length %v per row.\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), runFor))
	sb.WriteString("Throughput holds flat as operators multiply — the worker pool is the\n")
	sb.WriteString("capacity and back-pressure queues the excess — while p50 latency\n")
	sb.WriteString("scales with operators/workers. Zero failures includes the per-frame\n")
	sb.WriteString("error channel: no request is dropped, it just waits. `cmd/hdcserve\n")
	sb.WriteString("-loadgen` reproduces this with tunable mix/wire/duration, and\n")
	sb.WriteString("`BenchmarkServerBatch` pins the single-request round-trip cost.\n")
	return sb.String(), nil
}
