package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hdc/internal/sax"
	"hdc/internal/sax/store"
	"hdc/internal/telemetry"
	"hdc/internal/timeseries"
)

// e22Sizes are the dictionary sizes E22 measures. The full suite (run via
// cmd/experiments) goes to a million entries — the regime the segmented
// store exists for; under `go test` the tail is trimmed so the suite stays
// inside the tier-1 budget.
func e22Sizes() []int {
	if testing.Testing() {
		return []int{1_000, 20_000}
	}
	return []int{1_000, 100_000, 1_000_000}
}

// E22Store measures the segmented on-disk sign store (internal/sax/store)
// against the in-memory database: mapped-segment lookup latency and the
// cascade's prune rate (candidates rejected by the mapped lower bounds
// without an exact evaluation) as the dictionary grows to a million entries,
// steady-state lookup allocations, and what the format buys at start-up —
// opening (mmap + header validation) versus re-parsing the v1 JSON artefact.
func E22Store() (string, error) {
	const seriesLen = 128
	rng := rand.New(rand.NewSource(42))
	shape := func() timeseries.Series {
		a1, a2, a3 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		p1, p2, p3 := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
		s := make(timeseries.Series, seriesLen)
		for i := range s {
			t := 2 * math.Pi * float64(i) / seriesLen
			s[i] = 1 + 0.6*a1*math.Cos(t+p1) + 0.4*a2*math.Cos(2*t+p2) +
				0.3*a3*math.Cos(3*t+p3) + 0.05*rng.NormFloat64()
		}
		return s
	}
	enc, err := sax.NewEncoder(16, 6)
	if err != nil {
		return "", err
	}

	root, err := os.MkdirTemp("", "hdc-e22-")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(root)

	sizes := e22Sizes()
	tab := telemetry.NewTable("entries", "memory µs/lookup", "store µs/lookup",
		"store/mem", "pruned before exact", "allocs/op", "open ms", "disk MB")
	var openVsParse string

	for _, size := range sizes {
		queries := 12
		if size >= 1_000_000 {
			queries = 4
		}

		// One source of entries feeds both backends so the comparison is
		// entry-for-entry. The in-memory database is only built where it
		// plausibly fits a drone (≤100k entries).
		buildMem := size <= 100_000
		var db *sax.Database
		if buildMem {
			if db, err = sax.NewDatabase(enc, seriesLen); err != nil {
				return "", err
			}
		}
		dir := filepath.Join(root, fmt.Sprintf("store-%d", size))
		bl, err := store.NewBuilder(dir, enc, seriesLen, store.BuilderOptions{})
		if err != nil {
			return "", err
		}
		nLabels := size/3 + 1
		var exemplar timeseries.Series
		for i := 0; i < size; i++ {
			s := shape()
			if i == size/2 {
				exemplar = s
			}
			label := fmt.Sprintf("sign-%04d", i%nLabels)
			if err := bl.AddSeries(label, s); err != nil {
				return "", err
			}
			if buildMem {
				if err := db.Add(label, s); err != nil {
					return "", err
				}
			}
		}
		if err := bl.Commit(); err != nil {
			return "", err
		}

		st, err := store.Open(dir, store.Options{})
		if err != nil {
			return "", err
		}

		// Query mix: perturbed rotations of a stored entry plus fresh shapes.
		var zs []timeseries.Series
		var words []sax.Word
		for qi := 0; qi < queries; qi++ {
			q := shape()
			if qi%2 == 0 {
				q = exemplar.Rotate(rng.Intn(seriesLen)).Clone()
				for i := range q {
					q[i] += 0.1 * rng.NormFloat64()
				}
			}
			z := q.ZNormalize()
			w, err := enc.Encode(z)
			if err != nil {
				return "", err
			}
			zs = append(zs, z)
			words = append(words, w)
		}

		memLookup := time.Duration(0)
		if buildMem {
			sc := sax.NewLookupScratch()
			start := time.Now()
			for qi := range zs {
				if _, err := db.LookupZWith(sc, zs[qi], words[qi], math.Inf(1)); err != nil {
					return "", err
				}
			}
			memLookup = time.Since(start)
		}

		sc := sax.NewLookupScratch()
		var agg sax.LookupStats
		start := time.Now()
		for qi := range zs {
			if _, err := st.LookupZWith(sc, zs[qi], words[qi], math.Inf(1)); err != nil {
				return "", err
			}
			stt := sc.Stats()
			agg.HistPruned += stt.HistPruned
			agg.WordPruned += stt.WordPruned
			agg.ExactEvals += stt.ExactEvals
		}
		stLookup := time.Since(start)

		// Steady-state allocation count of the mapped lookup (the zero the
		// store's benchmarks gate on).
		allocs := testing.AllocsPerRun(5, func() {
			_, _ = st.LookupZWith(sc, zs[0], words[0], math.Inf(1))
		})

		// Cold open: close, drop, re-open. At the JSON-comparison size also
		// time the v1 parse of the same dictionary.
		if err := st.Close(); err != nil {
			return "", err
		}
		start = time.Now()
		st, err = store.Open(dir, store.Options{})
		if err != nil {
			return "", err
		}
		openTime := time.Since(start)

		if buildMem && size >= 20_000 {
			jsonPath := filepath.Join(root, fmt.Sprintf("dict-%d.json", size))
			f, err := os.Create(jsonPath)
			if err != nil {
				return "", err
			}
			if err := db.Save(f); err != nil {
				f.Close()
				return "", err
			}
			f.Close()
			start = time.Now()
			rf, err := os.Open(jsonPath)
			if err != nil {
				return "", err
			}
			if _, err := sax.Load(rf); err != nil {
				rf.Close()
				return "", err
			}
			rf.Close()
			parse := time.Since(start)
			fi, _ := os.Stat(jsonPath)
			openVsParse = fmt.Sprintf(
				"At %d entries a restart costs %.1f ms against the mapped store vs\n%.0f ms re-parsing the %.0f MB v1 JSON artefact — **%.0f× faster**\n(and the map is shared, not heap-resident).\n",
				size, float64(openTime.Microseconds())/1e3,
				float64(parse.Milliseconds()), float64(fi.Size())/1e6,
				float64(parse)/float64(openTime))
		}

		stats := st.Stats()
		ratio := "—"
		memUS := "—"
		if buildMem {
			ratio = fmt.Sprintf("%.2f×", float64(stLookup)/float64(memLookup))
			memUS = fmt.Sprintf("%.0f", float64(memLookup.Microseconds())/float64(queries))
		}
		tab.AddRow(
			fmt.Sprintf("%d", size),
			memUS,
			fmt.Sprintf("%.0f", float64(stLookup.Microseconds())/float64(queries)),
			ratio,
			fmt.Sprintf("%.2f%%", 100*(1-float64(agg.ExactEvals)/float64(uint64(queries)*uint64(size)))),
			fmt.Sprintf("%.0f", allocs),
			fmt.Sprintf("%.1f", float64(openTime.Microseconds())/1e3),
			fmt.Sprintf("%.0f", float64(stats.DiskBytes)/1e6),
		)
		if err := st.Close(); err != nil {
			return "", err
		}
		if err := os.RemoveAll(dir); err != nil {
			return "", err
		}
	}

	var sb strings.Builder
	sb.WriteString("Paper baseline: the §IV prototype re-built its \"database of strings\"\n")
	sb.WriteString("in memory at start-up — fine for three words, untenable for the\n")
	sb.WriteString("fleet-scale dictionaries E18 motivates. The segmented store keeps the\n")
	sb.WriteString("dictionary in immutable mmap-able segment files (fixed-width columns:\n")
	sb.WriteString("SAX words, z-normalised series, and a precomputed symbol-histogram\n")
	sb.WriteString("prune block, so the cascade's stage 0 runs straight over mapped\n")
	sb.WriteString("memory), appends through a checksummed WAL, and folds the tail into\n")
	sb.WriteString("sealed segments in the background. Lookup results are byte-identical\n")
	sb.WriteString("to the in-memory database (enforced by randomized equivalence tests).\n\n")
	sb.WriteString(tab.Markdown())
	sb.WriteString("\npruned before exact is the fraction of the dictionary rejected by the\n")
	sb.WriteString("mapped lower bounds (stage-0 histogram or stage-1 MINDIST) without\n")
	sb.WriteString("ever reaching the exact alignment, measured with no distance cutoff —\n")
	sb.WriteString("the worst case for the cascade. Serving lookups thread the\n")
	sb.WriteString("recognizer's match threshold through as a cutoff and reject wholesale\n")
	sb.WriteString("far earlier. allocs/op is the store lookup's steady state (gated at 0\n")
	sb.WriteString("by BenchmarkStoreLookup100k).\n\n")
	if openVsParse != "" {
		sb.WriteString(openVsParse)
	}
	sb.WriteString("\n`BenchmarkStoreLookup{1k,100k}`, `BenchmarkStoreOpen` and\n")
	sb.WriteString("`BenchmarkStoreAdd` reproduce the hot paths; `signdb -convert`\n")
	sb.WriteString("builds a store from the shipped JSON artefact and `hdcserve -store`\n")
	sb.WriteString("serves from it.\n")
	return sb.String(), nil
}
