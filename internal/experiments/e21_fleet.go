package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hdc/internal/body"
	"hdc/internal/core"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/scene"
	"hdc/internal/telemetry"
)

// E21FleetPool measures recognition capacity as a fleet-level resource: a
// fleet of 8 drone cameras runs the same bursty recognition workload twice —
// once against ONE shared worker pool (every system attached via
// core.WithSharedPipeline, total W workers) and once against 8 private pools
// of W/8 workers each (equal total capacity). One drone is deliberately
// wedged: it floods its camera ring and never reads results, the failure
// mode of a hung consumer. The claims under test: the shared pool's
// aggregate throughput is at least the private configuration's (idle
// capacity flows to whichever drone is bursting instead of being fenced into
// per-drone slices), and the wedged drone sheds frames at its own
// pipeline.Source without costing the other 7 drones a single completed
// recognition — per-drone attribution straight from pipeline.Stats.Owners.
func E21FleetPool() (string, error) {
	const (
		drones  = 8
		wedged  = drones - 1 // index of the hung drone
		burstK  = 8          // frames per burst == camera ring capacity
		bursts  = 6
		workers = 8 // shared pool size; private pools get workers/drones each
	)
	sceneCfg := scene.Config{Width: 128, Height: 128}

	// One reusable frame set (recognition never mutates frames).
	ref, err := core.NewSystem(core.WithSceneConfig(sceneCfg))
	if err != nil {
		return "", err
	}
	signs := body.AllSigns()
	frames := make([]*raster.Gray, burstK)
	for i := range frames {
		v := scene.ReferenceView()
		v.AzimuthDeg = float64((i * 9) % 45)
		f, err := ref.Rend.Render(signs[i%len(signs)], v, body.Options{}, nil)
		if err != nil {
			return "", err
		}
		frames[i] = f
	}

	type configResult struct {
		name       string
		wallMS     float64
		fps        float64
		p50MS      float64
		p99MS      float64
		wedgedShed uint64
		healthyOK  int // healthy drones that completed every frame
		healthyN   uint64
	}

	// run executes the workload against per-drone camera streams created by
	// openCam and reports per-owner stats through ownerStats.
	run := func(name string, openCam func(i int) (*pipeline.Stream, error),
		ownerStats func(i int) pipeline.OwnerStats) (configResult, error) {
		res := configResult{name: name}

		// The wedged drone: flood the ring at ~1 kHz, never consume.
		wst, err := openCam(wedged)
		if err != nil {
			return res, err
		}
		wsrc, err := pipeline.NewSource(wst, pipeline.SourceConfig{Capacity: burstK})
		if err != nil {
			return res, err
		}
		var stop atomic.Bool
		var wedgeDone sync.WaitGroup
		wedgeDone.Add(1)
		go func() {
			defer wedgeDone.Done()
			for !stop.Load() {
				if wsrc.Offer(frames[0]) != nil {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()

		var mu sync.Mutex
		var latencies []time.Duration
		var wg sync.WaitGroup
		errs := make([]error, drones-1)
		start := time.Now()
		for d := 0; d < drones-1; d++ {
			d := d
			wg.Add(1)
			go func() {
				defer wg.Done()
				st, err := openCam(d)
				if err != nil {
					errs[d] = err
					return
				}
				src, err := pipeline.NewSource(st, pipeline.SourceConfig{Capacity: burstK})
				if err != nil {
					errs[d] = err
					return
				}
				offered := make([]time.Time, bursts*burstK)
				own := make([]time.Duration, 0, bursts*burstK)
				results := st.Results()
				for b := 0; b < bursts; b++ {
					for k := 0; k < burstK; k++ {
						offered[b*burstK+k] = time.Now()
						if err := src.Offer(frames[k]); err != nil {
							errs[d] = err
							return
						}
					}
					for k := 0; k < burstK; k++ {
						r, ok := <-results
						if !ok {
							errs[d] = fmt.Errorf("drone %d: stream closed early", d)
							return
						}
						if r.Err != nil {
							errs[d] = r.Err
							return
						}
						own = append(own, time.Since(offered[r.Seq]))
					}
				}
				src.Close()
				st.Close()
				mu.Lock()
				latencies = append(latencies, own...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		res.wallMS = float64(time.Since(start).Microseconds()) / 1000
		stop.Store(true)
		wedgeDone.Wait()
		wsrc.Abandon()
		wst.Abandon()
		for _, err := range errs {
			if err != nil {
				return res, err
			}
		}

		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		total := len(latencies)
		res.fps = float64(total) / (res.wallMS / 1000)
		res.p50MS = float64(latencies[total/2].Microseconds()) / 1000
		res.p99MS = float64(latencies[total*99/100].Microseconds()) / 1000
		res.wedgedShed = ownerStats(wedged).IngestDropped
		for d := 0; d < drones-1; d++ {
			os := ownerStats(d)
			res.healthyN += os.Frames
			if os.Frames >= bursts*burstK && os.IngestDropped == 0 {
				res.healthyOK++
			}
		}
		return res, nil
	}

	// runShared executes one repetition against one shared pool with every
	// system attached.
	runShared := func() (configResult, error) {
		pool, err := core.NewSharedPool(
			core.WithSceneConfig(sceneCfg),
			core.WithPipelineConfig(pipeline.Config{
				Workers: workers, QueueDepth: 2 * workers, StreamWindow: burstK,
			}),
		)
		if err != nil {
			return configResult{}, err
		}
		sys := make([]*core.System, drones)
		for i := range sys {
			sys[i], err = core.NewSystem(
				core.WithSceneConfig(sceneCfg),
				core.WithSharedPipeline(pool),
				core.WithPoolLabel(fmt.Sprintf("drone-%d", i)),
			)
			if err != nil {
				return configResult{}, err
			}
		}
		defer func() {
			for _, s := range sys {
				s.Close()
			}
		}()
		return run("one shared pool",
			func(i int) (*pipeline.Stream, error) { return sys[i].NewStream() },
			func(i int) pipeline.OwnerStats { return sys[i].Owner().Stats() },
		)
	}

	// runPrivate executes one repetition against 8 private pools of equal
	// total capacity.
	runPrivate := func() (configResult, error) {
		sys := make([]*core.System, drones)
		var err error
		for i := range sys {
			sys[i], err = core.NewSystem(
				core.WithSceneConfig(sceneCfg),
				core.WithPipelineConfig(pipeline.Config{
					Workers: workers / drones, StreamWindow: burstK,
				}),
				core.WithPoolLabel(fmt.Sprintf("drone-%d", i)),
			)
			if err != nil {
				return configResult{}, err
			}
		}
		defer func() {
			for _, s := range sys {
				s.Close()
			}
		}()
		return run("8 private pools",
			func(i int) (*pipeline.Stream, error) { return sys[i].NewStream() },
			func(i int) pipeline.OwnerStats { return sys[i].Owner().Stats() },
		)
	}

	// Interleave repetitions of the two configurations (shared, private,
	// shared, …) and keep each one's median-throughput run, so a host-load
	// transient skews at most one sample of each rather than a whole
	// configuration's block.
	const reps = 3
	var sharedRuns, privateRuns []configResult
	for r := 0; r < reps; r++ {
		res, err := runShared()
		if err != nil {
			return "", err
		}
		sharedRuns = append(sharedRuns, res)
		if res, err = runPrivate(); err != nil {
			return "", err
		}
		privateRuns = append(privateRuns, res)
	}
	medianOf := func(rs []configResult) configResult {
		sort.Slice(rs, func(i, j int) bool { return rs[i].fps < rs[j].fps })
		return rs[len(rs)/2]
	}
	shared, private := medianOf(sharedRuns), medianOf(privateRuns)

	tab := telemetry.NewTable("configuration", "healthy frames", "wall ms", "frames/s",
		"p50 ms", "p99 ms", "wedged sheds", "healthy drones clean")
	for _, r := range []configResult{shared, private} {
		tab.AddRow(r.name,
			fmt.Sprintf("%d", r.healthyN),
			fmt.Sprintf("%.0f", r.wallMS),
			fmt.Sprintf("%.0f", r.fps),
			fmt.Sprintf("%.1f", r.p50MS),
			fmt.Sprintf("%.1f", r.p99MS),
			fmt.Sprintf("%d", r.wedgedShed),
			fmt.Sprintf("%d/%d", r.healthyOK, drones-1),
		)
	}

	var sb strings.Builder
	sb.WriteString("Paper baseline: one drone, one recogniser — the abstract's fleet\n")
	sb.WriteString("(\"collaboration with a fleet of agricultural drones\") never shares\n")
	sb.WriteString("perception. Extension: recognition capacity as fleet infrastructure.\n")
	sb.WriteString(fmt.Sprintf(
		"8 drone cameras each push %d bursts of %d frames through their own\n", bursts, burstK))
	sb.WriteString("bounded ring (pipeline.Source); drone-7 is wedged — it floods its ring\n")
	sb.WriteString("and never reads a result. Same total worker count in both rows\n")
	sb.WriteString(fmt.Sprintf("(%d shared vs 8×%d private).\n\n", workers, workers/drones))
	sb.WriteString(tab.Markdown())
	sb.WriteString(fmt.Sprintf("\nHost: GOMAXPROCS=%d, NumCPU=%d; median-throughput run of %d per row.\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), reps))
	sb.WriteString("Aggregate throughput: the shared pool serves at least the private\n")
	sb.WriteString("slices' rate — on a single-core host the workload is CPU-bound either\n")
	sb.WriteString("way, so the rows tie within noise, and with idle cores to borrow a\n")
	sb.WriteString("bursting drone takes its neighbours' unused workers where a private\n")
	sb.WriteString("slice caps every burst at its own. The wedge is contained by\n")
	sb.WriteString("construction in both rows, but only the shared row had anything at\n")
	sb.WriteString("risk: the wedged drone's backlog sheds at its own ring\n")
	sb.WriteString("(owner-attributed in pipeline.Stats.Owners and on /statsz), at most a\n")
	sb.WriteString("stream window of its frames ever occupies the pool, and every healthy\n")
	sb.WriteString("drone completes 100% of its recognitions. Fleet missions get this\n")
	sb.WriteString("wiring from mission.NewPooledFleet (hdcsim -drones N defaults to it).\n")
	return sb.String(), nil
}
