package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"hdc/internal/body"
	"hdc/internal/core"
	"hdc/internal/gesture"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/scene"
	"hdc/internal/telemetry"
)

// E20Ingest measures the live-feed ingest layer under overload: a synthetic
// camera performs the Wave gesture at increasing frame rates against a
// deliberately small recognition pool, with a bounded drop-oldest ring
// (pipeline.Source) between capture and the pool. The capture side must
// hold its cadence at every offered rate — Offer latency stays in
// microseconds — while the overflow surfaces as dropped frames and the
// retained (freshest) frames still classify the gesture correctly. This is
// the degradation contract the ROADMAP's "multi-camera ring-buffer ingest"
// step calls for: a slow pool costs frames, never capture stalls.
func E20Ingest() (string, error) {
	sys, err := core.NewSystem(
		core.WithSceneConfig(scene.Config{}),
		core.WithPipelineConfig(pipeline.Config{Workers: 2, QueueDepth: 2, StreamWindow: 4}),
	)
	if err != nil {
		return "", err
	}
	defer sys.Close()
	rec, err := gesture.NewRecognizer(gesture.Config{}, sys.Rend, scene.ReferenceView())
	if err != nil {
		return "", err
	}

	// One camera loop of the gesture, rendered once outside the measurement.
	const cycles = 12
	cycle := make([]*raster.Gray, 24)
	for i := range cycle {
		fig, err := gesture.FigureAt(gesture.GestureWave, float64(i)/24, body.Options{})
		if err != nil {
			return "", err
		}
		cycle[i], err = sys.Rend.RenderFigure(fig, scene.ReferenceView(), nil)
		if err != nil {
			return "", err
		}
	}

	tab := telemetry.NewTable("camera pace", "offered", "dropped", "drop %",
		"windows", "Wave verdicts", "max Offer µs")
	for _, pace := range []time.Duration{0, 2 * time.Millisecond, 8 * time.Millisecond} {
		l, err := rec.NewLive(sys, gesture.LiveConfig{Buffer: 48})
		if err != nil {
			return "", err
		}
		verdicts := make(chan int)
		go func() {
			wave := 0
			for m := range l.Matches() {
				if m.Err == nil && m.Match.Gesture == gesture.GestureWave {
					wave++
				}
			}
			verdicts <- wave
		}()

		var maxOffer time.Duration
		for c := 0; c < cycles; c++ {
			for _, f := range cycle {
				t0 := time.Now()
				if err := l.Offer(f); err != nil {
					return "", err
				}
				if d := time.Since(t0); d > maxOffer {
					maxOffer = d
				}
				if pace > 0 {
					time.Sleep(pace)
				}
			}
		}
		l.Close()
		wave := <-verdicts
		st := l.Stats()

		paceLabel := "unthrottled"
		if pace > 0 {
			paceLabel = fmt.Sprintf("%.0f fps", float64(time.Second)/float64(pace))
		}
		tab.AddRow(
			paceLabel,
			fmt.Sprintf("%d", st.Accepted),
			fmt.Sprintf("%d", st.Dropped),
			fmt.Sprintf("%.0f%%", 100*float64(st.Dropped)/float64(st.Accepted)),
			fmt.Sprintf("%d", st.Windows),
			fmt.Sprintf("%d", wave),
			fmt.Sprintf("%.0f", float64(maxOffer.Microseconds())),
		)
	}

	var sb strings.Builder
	sb.WriteString("Paper baseline: a strictly single-frame, single-threaded prototype —\n")
	sb.WriteString("capture waits for recognition. Extension: internal/gesture (the §V\n")
	sb.WriteString("dynamic marshalling signals) now runs its\n")
	sb.WriteString("observation windows through the shared worker pool (a pipeline.Proc\n")
	sb.WriteString("feature stage on pooled vision scratches) behind a bounded drop-oldest\n")
	sb.WriteString("ring (pipeline.Source). A 2-worker pool is offered a Wave feed at\n")
	sb.WriteString("increasing rates; the ring holds 48 frames (two windows).\n\n")
	sb.WriteString(tab.Markdown())
	sb.WriteString(fmt.Sprintf("\nHost: GOMAXPROCS=%d, NumCPU=%d; %d frames offered per row.\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), cycles*len(cycle)))
	sb.WriteString("Offer never blocks — its worst case stays in microseconds at every\n")
	sb.WriteString("rate, so capture cadence is preserved — while overload converts to\n")
	sb.WriteString("dropped (oldest) frames and the surviving windows still read the\n")
	sb.WriteString("gesture. The same machinery serves remotely as POST /v1/gesture and\n")
	sb.WriteString("the /v1/gesture/streams live sessions (hdcserve -gesture), with the\n")
	sb.WriteString("drop totals on /statsz as ingest_accepted/ingest_dropped.\n")
	return sb.String(), nil
}
