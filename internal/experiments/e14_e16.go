package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hdc/internal/body"
	"hdc/internal/core"
	"hdc/internal/geom"
	"hdc/internal/gesture"
	"hdc/internal/ledring"
	"hdc/internal/mission"
	"hdc/internal/orchard"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
	"hdc/internal/telemetry"
)

// E14Gestures evaluates the dynamic marshalling signals (§V future work):
// a confusion matrix of the temporal recogniser across phases, jitter and
// moderate azimuth, plus the RGB take-off/landing pulse signalling that
// replaces the rejected vertical array.
func E14Gestures() (string, error) {
	var sb strings.Builder
	sb.WriteString("Paper (§V): \"the flexibility of the system with respect to other\n")
	sb.WriteString("static and, possibly later, dynamic marshalling signals should also be\n")
	sb.WriteString("examined.\" Extension: three periodic gestures (Wave, Pump, Seesaw)\n")
	sb.WriteString("recognised from two temporal silhouette features (lateral centroid,\n")
	sb.WriteString("bounding-box aspect) with phase-invariant circular matching — the same\n")
	sb.WriteString("machinery as the static signs, applied in time instead of arc length.\n\n")

	rend := scene.NewRenderer(scene.Config{})
	rec, err := gesture.NewRecognizer(gesture.Config{}, rend, scene.ReferenceView())
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(14))
	gestures := gesture.Gestures()
	counts := map[gesture.Gesture]map[string]int{}
	const trials = 8
	for _, g := range gestures {
		counts[g] = map[string]int{}
		for k := 0; k < trials; k++ {
			az := float64(k%4) * 10 // 0..30°
			v := scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: az}
			m, err := rec.Observe(g, v, rng.Float64(),
				body.Options{ArmJitterDeg: rng.NormFloat64() * 2}, rng)
			if err != nil {
				counts[g]["none"]++
				continue
			}
			counts[g][m.Gesture.String()]++
		}
	}
	header := []string{"performed \\ read"}
	for _, g := range gestures {
		header = append(header, g.String())
	}
	header = append(header, "none")
	tb := telemetry.NewTable(header...)
	for _, g := range gestures {
		row := []string{g.String()}
		for _, q := range gestures {
			row = append(row, fmt.Sprintf("%d", counts[g][q.String()]))
		}
		row = append(row, fmt.Sprintf("%d", counts[g]["none"]))
		tb.AddRow(row...)
	}
	sb.WriteString(tb.Markdown())

	sb.WriteString("\n### RGB take-off/landing pulse (replacing the vertical array)\n\n")
	ring, err := ledring.New(ledring.Options{})
	if err != nil {
		return "", err
	}
	tb2 := telemetry.NewTable("pulse", "frame A", "frame B", "decoded")
	for _, p := range []ledring.Pulse{ledring.PulseTakeOff, ledring.PulseLanding} {
		if err := ring.StartPulse(p); err != nil {
			return "", err
		}
		fa := ring.LEDs()
		ring.TickPulse()
		fb := ring.LEDs()
		got, err := ledring.ClassifyPulse(fa, fb)
		if err != nil {
			return "", err
		}
		tb2.AddRow(p.String(), fa[0].String(), fb[0].String(), got.String())
	}
	sb.WriteString(tb2.Markdown())
	sb.WriteString("\nThe two pulses use disjoint colour pairs (green/white vs white/red),\n")
	sb.WriteString("so a single glance disambiguates them — fixing the discriminability\n")
	sb.WriteString("failure that retired the vertical array (E11).\n")
	return sb.String(), nil
}

// E15RepositioningHint reproduces the paper's §IV NEGATIVE result: "The
// produced SAX string in those dead angles does not, unfortunately, lead us
// to believe that the drone can use this string as an indicator of which
// direction to fly in to improve its positioning." We test whether the
// match diagnostics available in the dead zone (best-match shift sign,
// mirror flag) predict which way the drone should yaw, and show the
// prediction is at chance.
func E15RepositioningHint() (string, error) {
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		return "", err
	}
	rend := scene.NewRenderer(scene.Config{})
	if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Paper (§IV, negative result): the dead-angle SAX strings do not tell\n")
	sb.WriteString("the drone which way to reposition. Test: for captures across both dead\n")
	sb.WriteString("arcs (azimuth ±[70°,110°]), predict the sign of the azimuth (i.e. the\n")
	sb.WriteString("direction to fly) from the match diagnostics; compare against chance.\n\n")

	// Gather dead-zone captures with full diagnostics.
	var azs []float64
	for az := 70.0; az <= 110; az += 5 {
		azs = append(azs, az, -az)
	}
	type capture struct {
		az       float64
		shift    int
		mirrored bool
	}
	var caps []capture
	for _, az := range azs {
		res, err := rec.RecognizeView(rend, body.SignNo,
			scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: az}, body.Options{}, nil)
		if err != nil && !errors.Is(err, recognizer.ErrNoSign) {
			return "", err
		}
		caps = append(caps, capture{az: az, shift: res.Match.Shift, mirrored: res.Match.Mirrored})
	}

	evaluate := func(pred func(capture) bool) (correct, total int) {
		for _, c := range caps {
			if pred(c) == (c.az > 0) {
				correct++
			}
			total++
		}
		return correct, total
	}
	tb := telemetry.NewTable("predictor", "accuracy", "n", "verdict vs chance (0.50)")
	preds := []struct {
		name string
		fn   func(capture) bool
	}{
		{"shift sign (shift < len/2 → positive az)", func(c capture) bool { return c.shift < 64 }},
		{"mirror flag (mirrored → positive az)", func(c capture) bool { return c.mirrored }},
		{"shift parity", func(c capture) bool { return c.shift%2 == 0 }},
	}
	for _, p := range preds {
		correct, total := evaluate(p.fn)
		acc := float64(correct) / float64(total)
		verdict := "≈ chance — no usable signal"
		if acc >= 0.75 || acc <= 0.25 {
			verdict = "SIGNAL (contradicts the paper!)"
		}
		tb.AddRow(p.name, fmt.Sprintf("%.2f", acc), fmt.Sprintf("%d", total), verdict)
	}
	sb.WriteString(tb.Markdown())
	sb.WriteString("\nAll predictors sit near chance: the dead-angle match diagnostics carry\n")
	sb.WriteString("no directional information — the paper's negative finding reproduces.\n")
	return sb.String(), nil
}

// E16Fleet runs the multi-drone extension of the §I use case: several
// drones partition the orchard's traps and fly their tours concurrently
// (in simulation time), with negotiated access per drone.
func E16Fleet() (string, error) {
	var sb strings.Builder
	sb.WriteString("Paper (abstract): \"autonomous robots and drones will work\n")
	sb.WriteString("collaboratively and cooperatively in tomorrow's industry and\n")
	sb.WriteString("agriculture.\" Extension: a fleet partitions the trap tour; each drone\n")
	sb.WriteString("negotiates its own blocked traps.\n\n")

	tb := telemetry.NewTable("fleet size", "traps read", "negotiations", "granted", "wall time (max drone)", "battery (mean)")
	for _, n := range []int{1, 2, 3} {
		world, err := orchard.Generate(orchard.Config{
			Rows: 4, Cols: 6, TrapEvery: 2, Humans: 3, PestRatePerHour: 30,
		}, rand.New(rand.NewSource(16)))
		if err != nil {
			return "", err
		}
		world.Step(2 * time.Hour)
		fleet, err := mission.NewFleet(n, world, mission.Config{}, func(i int) (*core.System, error) {
			return core.NewSystem(
				core.WithSeed(int64(100+i)),
				core.WithHome(geom.V3(-6-float64(3*i), -6, 0)),
			)
		})
		if err != nil {
			return "", err
		}
		rep, err := fleet.Run()
		if err != nil {
			return "", err
		}
		tb.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d/%d", rep.TrapsRead, rep.TrapsTotal),
			fmt.Sprintf("%d", rep.Negotiations),
			fmt.Sprintf("%d", rep.Granted),
			rep.MaxDroneTime.Truncate(time.Second).String(),
			fmt.Sprintf("%.0f%%", rep.MeanBatteryUsed*100),
		)
	}
	sb.WriteString(tb.Markdown())
	sb.WriteString("\nAdding drones divides the tour: per-drone flight time falls with fleet\n")
	sb.WriteString("size while total coverage holds — the scaling the paper's vision\n")
	sb.WriteString("assumes.\n")
	return sb.String(), nil
}
