package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hdc/internal/body"
	"hdc/internal/recognizer"
	"hdc/internal/sax"
	"hdc/internal/scene"
	"hdc/internal/telemetry"
	"hdc/internal/timeseries"
	"hdc/internal/vision"
)

// newPipeline builds the calibrated recogniser + renderer pair used by the
// recognition experiments.
func newPipeline() (*recognizer.Recognizer, *scene.Renderer, error) {
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		return nil, nil, err
	}
	rend := scene.NewRenderer(scene.Config{})
	if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
		return nil, nil, err
	}
	return rec, rend, nil
}

// sparkline renders a series as unicode bars for the markdown report.
func sparkline(s timeseries.Series) string {
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := s.MinMax()
	if hi == lo {
		hi = lo + 1
	}
	out := make([]rune, len(s))
	for i, v := range s {
		idx := int((v - lo) / (hi - lo) * 7.99)
		if idx > 7 {
			idx = 7
		}
		if idx < 0 {
			idx = 0
		}
		out[i] = ramp[idx]
	}
	return string(out)
}

// E4TimeSeries regenerates Figure 4: the "No" sign at 0° and 65° relative
// azimuth (5 m altitude, 3 m distance) — the two silhouette time series and
// their SAX words, plus whether each matches the reference.
func E4TimeSeries() (string, error) {
	rec, rend, err := newPipeline()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Paper (Fig 4): the 'No' sign captured at relative azimuth 0° and 65°\n")
	sb.WriteString("(altitude 5 m, distance 3 m); both produce usable time series; the\n")
	sb.WriteString("produced SAX strings match the reference database.\n\n")

	tb := telemetry.NewTable("azimuth", "SAX word", "match", "distance", "mirrored")
	for _, az := range []float64{0, 65} {
		v := scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: az}
		res, err := rec.RecognizeView(rend, body.SignNo, v, body.Options{}, nil)
		if err != nil && !errors.Is(err, recognizer.ErrNoSign) {
			return "", err
		}
		sb.WriteString(fmt.Sprintf("Centroid-distance series, azimuth %.0f° (framebw%.0f):\n\n", az, az))
		sb.WriteString("```\n" + sparkline(res.Signature) + "\n```\n\n")
		tb.AddRow(
			fmt.Sprintf("%.0f°", az),
			res.Word.Symbols,
			res.Match.Label,
			fmt.Sprintf("%.2f", res.Match.Dist),
			fmt.Sprintf("%v", res.Match.Mirrored),
		)
	}
	sb.WriteString(tb.Markdown())
	sb.WriteString("\nPaper shape to hold: both azimuths recognised as 'No'; the 65° series\n")
	sb.WriteString("differs visibly from 0° but still matches. Measured above.\n")
	return sb.String(), nil
}

// E5Latency reproduces the §IV timing discussion: per-stage recognition
// latency at 0° and 65°, against the paper's 38 ms / 27 ms (Python/OpenCV
// on an i7-7660U).
func E5Latency() (string, error) {
	rec, rend, err := newPipeline()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Paper: 38 ms at 0°, 27 ms at 65° — un-optimised Python/OpenCV on an\n")
	sb.WriteString("i7-7660U; the 65° frame is cheaper (smaller silhouette). Shape to hold:\n")
	sb.WriteString("well inside a 33 ms (30 fps) budget, 65° no slower than 0°.\n\n")

	tb := telemetry.NewTable("azimuth", "threshold", "morphology", "contour+signature", "SAX encode", "DB match", "total", "silhouette px")
	const reps = 20
	for _, az := range []float64{0, 65} {
		v := scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: az}
		frame, err := rend.Render(body.SignNo, v, body.Options{}, nil)
		if err != nil {
			return "", err
		}
		var sum recognizer.StageTimings
		var area int
		for i := 0; i < reps; i++ {
			res, err := rec.Recognize(frame)
			if err != nil && !errors.Is(err, recognizer.ErrNoSign) {
				return "", err
			}
			sum.Threshold += res.Timings.Threshold
			sum.Morph += res.Timings.Morph
			sum.Contour += res.Timings.Contour
			sum.Encode += res.Timings.Encode
			sum.Match += res.Timings.Match
			sum.Total += res.Timings.Total
			area = res.Area
		}
		n := time.Duration(reps)
		tb.AddRow(
			fmt.Sprintf("%.0f°", az),
			fmt.Sprintf("%v", sum.Threshold/n),
			fmt.Sprintf("%v", sum.Morph/n),
			fmt.Sprintf("%v", sum.Contour/n),
			fmt.Sprintf("%v", sum.Encode/n),
			fmt.Sprintf("%v", sum.Match/n),
			fmt.Sprintf("%v", sum.Total/n),
			fmt.Sprintf("%d", area),
		)
	}
	sb.WriteString(tb.Markdown())
	sb.WriteString("\nAs in the paper, the image-side stages dominate; the symbolic stages\n")
	sb.WriteString("(SAX encode + string match) are orders of magnitude cheaper — the\n")
	sb.WriteString("argument for SAX on embedded hardware.\n")
	return sb.String(), nil
}

// E6Altitude reproduces the §IV altitude envelope: the 'No' sign across
// altitudes at 3 m distance, 0° azimuth (paper: recognised 2–5 m).
func E6Altitude() (string, error) {
	rec, rend, err := newPipeline()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Paper: 'No' recognised at altitudes 2–5 m (3 m horizontal distance).\n\n")
	alts := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5, 6, 7, 8, 10, 12, 15}
	pts, err := recognizer.SweepAltitude(rec, rend, body.SignNo, alts, 3, 0, 1, nil)
	if err != nil {
		return "", err
	}
	tb := telemetry.NewTable("altitude (m)", "recognised", "match", "distance")
	lo, hi := -1.0, -1.0
	for _, p := range pts {
		mark := "no"
		if p.Recognized {
			mark = "YES"
			if lo < 0 {
				lo = p.Param
			}
			hi = p.Param
		}
		tb.AddRow(fmt.Sprintf("%.1f", p.Param), mark, p.Label, fmt.Sprintf("%.2f", p.Dist))
	}
	sb.WriteString(tb.Markdown())
	sb.WriteString(fmt.Sprintf("\nMeasured envelope: %.1f–%.1f m — covers the paper's 2–5 m band.\n", lo, hi))
	sb.WriteString("(The synthetic camera has no optical resolution/contrast falloff, so the\n")
	sb.WriteString("upper edge extends beyond the paper's real-sensor limit; see DESIGN.md.)\n")
	return sb.String(), nil
}

// E7Azimuth reproduces the §IV azimuth envelope: full-circle sweep of the
// 'No' sign, recognised arc vs dead angle (paper: reliable to 65°, erratic
// beyond, dead angle ≈ 100°).
func E7Azimuth() (string, error) {
	rec, rend, err := newPipeline()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Paper: recognition reliable to 65° relative azimuth; erratic beyond;\n")
	sb.WriteString("dead angle ≈ 100° in total.\n\n")

	azs := make([]float64, 0, 72)
	for az := 0.0; az < 360; az += 5 {
		azs = append(azs, az)
	}
	pts, err := recognizer.SweepAzimuth(rec, rend, body.SignNo, 5, 3, azs, 1, nil)
	if err != nil {
		return "", err
	}
	// Compact strip chart: one char per 5°.
	var strip strings.Builder
	for _, p := range pts {
		if p.Recognized {
			strip.WriteByte('#')
		} else {
			strip.WriteByte('.')
		}
	}
	sb.WriteString("Recognition by azimuth (one char per 5°, starting at 0° full-on):\n\n")
	sb.WriteString("```\n" + strip.String() + "\n```\n\n")

	total, arcs := recognizer.DeadAngle(pts)
	sb.WriteString(fmt.Sprintf("Measured dead angle: %.0f° total, arcs: ", total))
	for i, a := range arcs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(fmt.Sprintf("[%.0f°,%.0f°]", a[0], a[1]))
	}
	sb.WriteString("\n\nShape held: the frontal (0°±) and rear (180°±, via mirror matching)\n")
	sb.WriteString("sectors are alive; the side sectors around ±90° are dead, with erratic\n")
	sb.WriteString("single cells at the boundaries — the paper's \"recognition appears\n")
	sb.WriteString("erratic\" behaviour.\n")
	return sb.String(), nil
}

// E8Uniqueness reproduces the §IV uniqueness claim: the SAX words of the
// three signs at the canonical view are pairwise distinct with margin.
func E8Uniqueness() (string, error) {
	// A dedicated single-exemplar database makes the uniqueness statement
	// exactly about the three canonical words.
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		return "", err
	}
	rend := scene.NewRenderer(scene.Config{})
	if err := rec.BuildReferencesAt(rend, scene.ReferenceView(), []float64{0}); err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Paper: \"the strings retrievable from the three signs are unique.\"\n\n")

	entries := rec.Database().Entries()
	tb := telemetry.NewTable("sign", "SAX word (w=16, a=5)")
	for _, e := range entries {
		tb.AddRow(e.Label, e.Word.Symbols)
	}
	sb.WriteString(tb.Markdown())
	sb.WriteString("\nPairwise rotation/mirror-minimised distances (MINDIST lower bound /\n")
	sb.WriteString("exact Euclidean):\n\n")

	labels, md, err := rec.Database().PairwiseMinDist()
	if err != nil {
		return "", err
	}
	_, ed, err := rec.Database().PairwiseExactDist()
	if err != nil {
		return "", err
	}
	tb2 := telemetry.NewTable(append([]string{""}, labels...)...)
	for i := range labels {
		row := []string{labels[i]}
		for j := range labels {
			if i == j {
				row = append(row, "—")
			} else {
				row = append(row, fmt.Sprintf("%.2f / %.2f", md[i][j], ed[i][j]))
			}
		}
		tb2.AddRow(row...)
	}
	sb.WriteString(tb2.Markdown())
	sb.WriteString("\nAll three words are distinct strings and every exact pairwise distance\n")
	sb.WriteString("exceeds the acceptance threshold (4.8) — uniqueness holds with margin.\n")
	return sb.String(), nil
}

// E9Throughput reproduces the §IV feasibility claim: sustained recognition
// throughput vs the 30 fps (optimised native) and 60 fps (hardware offload)
// targets, across frame sizes.
func E9Throughput() (string, error) {
	var sb strings.Builder
	sb.WriteString("Paper: optimised bare-metal C should reach 30 fps, with hardware\n")
	sb.WriteString("offload 60 fps. Measured: sustained full-pipeline throughput in Go.\n\n")

	tb := telemetry.NewTable("frame", "mean latency", "fps", "≥30 fps", "≥60 fps")
	for _, size := range []int{128, 192, 256, 384, 512} {
		rec, err := recognizer.New(recognizer.Config{})
		if err != nil {
			return "", err
		}
		rend := scene.NewRenderer(scene.Config{Width: size, Height: size})
		if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
			return "", err
		}
		frame, err := rend.Render(body.SignNo, scene.ReferenceView(), body.Options{}, nil)
		if err != nil {
			return "", err
		}
		const frames = 30
		start := time.Now()
		for i := 0; i < frames; i++ {
			if _, err := rec.Recognize(frame); err != nil && !errors.Is(err, recognizer.ErrNoSign) {
				return "", err
			}
		}
		elapsed := time.Since(start)
		per := elapsed / frames
		fps := float64(time.Second) / float64(per)
		tb.AddRow(
			fmt.Sprintf("%dx%d", size, size),
			per.Truncate(time.Microsecond).String(),
			fmt.Sprintf("%.0f", fps),
			yes(fps >= 30), yes(fps >= 60),
		)
	}
	sb.WriteString(tb.Markdown())
	sb.WriteString("\nThe Go pipeline clears both paper targets on every frame size tested,\n")
	sb.WriteString("supporting the feasibility claim for optimised native code.\n")
	return sb.String(), nil
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// E10Tuning reproduces the parameter-adjustment study the paper cites
// ([22]): a PAA-segments × alphabet-size grid over rendered sign captures,
// plus the normalisation/exemplar ablations behind this repository's
// design choices.
func E10Tuning() (string, error) {
	var sb strings.Builder
	sb.WriteString("Paper (§IV, citing [22]): recognition at high azimuth stays erratic\n")
	sb.WriteString("\"even with tuning of the piecewise aggregation and alphabet size\".\n")
	sb.WriteString("Grid below: nearest-neighbour accuracy over rendered captures\n")
	sb.WriteString("(all 3 signs × azimuths 0–50° × altitudes 3–5 m, jittered).\n\n")

	rend := scene.NewRenderer(scene.Config{})
	// Build the labelled evaluation set once.
	refs, eval, err := tuningSets(rend)
	if err != nil {
		return "", err
	}
	res, err := sax.TuneGrid(refs, eval, []int{8, 16, 24, 32}, []int{3, 5, 7, 9}, 128)
	if err != nil {
		return "", err
	}
	tb := telemetry.NewTable("PAA segments", "alphabet", "accuracy", "margin")
	for _, r := range res {
		tb.AddRow(
			fmt.Sprintf("%d", r.Segments),
			fmt.Sprintf("%d", r.Alphabet),
			fmt.Sprintf("%.2f", r.Accuracy),
			fmt.Sprintf("%.2f", r.Margin),
		)
	}
	sb.WriteString(tb.Markdown())

	sb.WriteString("\n### Ablation: contour normalisation and exemplar count (E10b)\n\n")
	sb.WriteString("In-envelope recognition rate of 'No' (azimuths 0–65°, every 5°):\n\n")
	tb2 := telemetry.NewTable("configuration", "recognised cells", "of")
	type cfg struct {
		name string
		norm vision.Normalization
		azs  []float64
	}
	for _, c := range []cfg{
		{"aspect norm + 3 exemplars (default)", vision.NormAspect, []float64{0, -40, 40}},
		{"aspect norm + single 0° exemplar", vision.NormAspect, []float64{0}},
		{"no normalisation + 3 exemplars", vision.NormNone, []float64{0, -40, 40}},
		{"whitening + 3 exemplars", vision.NormWhiten, []float64{0, -40, 40}},
	} {
		rec, err := recognizer.New(recognizer.Config{Normalize: c.norm})
		if err != nil {
			return "", err
		}
		if err := rec.BuildReferencesAt(rend, scene.ReferenceView(), c.azs); err != nil {
			return "", err
		}
		azs := []float64{0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65}
		pts, err := recognizer.SweepAzimuth(rec, rend, body.SignNo, 5, 3, azs, 1, nil)
		if err != nil {
			return "", err
		}
		hits := 0
		for _, p := range pts {
			if p.Recognized {
				hits++
			}
		}
		tb2.AddRow(c.name, fmt.Sprintf("%d", hits), fmt.Sprintf("%d", len(azs)))
	}
	sb.WriteString(tb2.Markdown())
	sb.WriteString("\nThe default configuration dominates: aspect normalisation buys the\n")
	sb.WriteString("altitude/azimuth envelope, the extra exemplars buy the mid-azimuth\n")
	sb.WriteString("band, and whitening (which discards the diagonal second moment that\n")
	sb.WriteString("separates No from Yes) is strictly worse — the quantified basis for\n")
	sb.WriteString("DESIGN.md's normalisation choice.\n")

	// E10c: SAX pipeline vs the classical cheap baseline (Hu moments).
	huSection, err := huBaseline(rend)
	if err != nil {
		return "", err
	}
	sb.WriteString(huSection)
	return sb.String(), nil
}

// huBaseline compares the SAX recogniser against a Hu-moment
// nearest-neighbour classifier on the same rendered captures (E10c).
func huBaseline(rend *scene.Renderer) (string, error) {
	var sb strings.Builder
	sb.WriteString("\n### Baseline: SAX pipeline vs Hu invariant moments (E10c)\n\n")
	sb.WriteString("Hu moments are the standard cheap silhouette descriptor a\n")
	sb.WriteString("practitioner would try before SAX. Same captures, same references:\n\n")

	maskOf := func(s body.Sign, v scene.View, opts body.Options, rng *rand.Rand) (*vision.Binary, error) {
		frame, err := rend.Render(s, v, opts, rng)
		if err != nil {
			return nil, err
		}
		m := vision.OtsuBinarize(frame)
		m = vision.Open(m, 1)
		m = vision.Close(m, 1)
		return m, nil
	}

	// References at 0, ±40 like the SAX database.
	var hu vision.HuClassifier
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		return "", err
	}
	if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
		return "", err
	}
	for _, s := range body.AllSigns() {
		for _, az := range []float64{0, -40, 40} {
			m, err := maskOf(s, scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: az}, body.Options{}, nil)
			if err != nil {
				return "", err
			}
			if err := hu.Add(s.String(), m); err != nil {
				return "", err
			}
		}
	}

	rng := rand.New(rand.NewSource(777))
	var saxHits, huHits, total int
	var saxTime, huTime time.Duration
	for _, s := range body.AllSigns() {
		for _, az := range []float64{0, 10, 20, 30, 40, 50, 60} {
			for _, alt := range []float64{3, 5} {
				v := scene.View{AltitudeM: alt, DistanceM: 3, AzimuthDeg: az}
				opts := body.Options{ArmJitterDeg: rng.NormFloat64() * 2}
				total++

				t0 := time.Now()
				res, err := rec.RecognizeView(rend, s, v, opts, nil)
				saxTime += time.Since(t0)
				if err == nil && res.OK && res.Sign == s {
					saxHits++
				}

				m, err := maskOf(s, v, opts, nil)
				if err != nil {
					return "", err
				}
				t1 := time.Now()
				label, _, err := hu.Classify(m)
				huTime += time.Since(t1)
				if err == nil && label == s.String() {
					huHits++
				}
			}
		}
	}
	tb := telemetry.NewTable("classifier", "accuracy (0–60° × 3–5 m, jittered)", "mean classify time")
	tb.AddRow("SAX pipeline (this paper)", fmt.Sprintf("%.2f", float64(saxHits)/float64(total)),
		(saxTime / time.Duration(total)).Truncate(time.Microsecond).String())
	tb.AddRow("Hu moments 1-NN (baseline)", fmt.Sprintf("%.2f", float64(huHits)/float64(total)),
		(huTime / time.Duration(total)).Truncate(time.Microsecond).String())
	sb.WriteString(tb.Markdown())
	sb.WriteString("\n(The SAX column includes rendering-free pipeline time only for the\n")
	sb.WriteString("classify step of Hu; SAX time covers its full threshold→match path.)\n")
	sb.WriteString("SAX holds a higher in-envelope accuracy: the ordered contour signature\n")
	sb.WriteString("retains the lobe *arrangement* that 7 scalar moments compress away —\n")
	sb.WriteString("supporting the paper's choice of a string-based shape code.\n")
	return sb.String(), nil
}

func tuningSets(rend *scene.Renderer) (refs, eval []sax.LabeledSeries, err error) {
	extract := func(s body.Sign, v scene.View, opts body.Options, rng *rand.Rand) (timeseries.Series, error) {
		frame, err := rend.Render(s, v, opts, rng)
		if err != nil {
			return nil, err
		}
		mask := vision.OtsuBinarize(frame)
		mask = vision.Open(mask, 1)
		mask = vision.Close(mask, 1)
		sig, _, _, err := vision.ExtractSignatureNorm(mask, 128, vision.NormAspect)
		return sig, err
	}
	for _, s := range body.AllSigns() {
		for _, az := range []float64{0, -40, 40} {
			v := scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: az}
			sig, err := extract(s, v, body.Options{}, nil)
			if err != nil {
				return nil, nil, err
			}
			refs = append(refs, sax.LabeledSeries{Label: s.String(), Series: sig})
		}
	}
	rng := rand.New(rand.NewSource(1234))
	for _, s := range body.AllSigns() {
		for _, az := range []float64{0, 10, 20, 30, 40, 50} {
			for _, alt := range []float64{3, 4, 5} {
				v := scene.View{AltitudeM: alt, DistanceM: 3, AzimuthDeg: az}
				sig, err := extract(s, v, body.Options{ArmJitterDeg: rng.NormFloat64() * 3}, rng)
				if err != nil {
					return nil, nil, err
				}
				eval = append(eval, sax.LabeledSeries{Label: s.String(), Series: sig})
			}
		}
	}
	return refs, eval, nil
}
