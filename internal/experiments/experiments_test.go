package experiments

import (
	"strings"
	"testing"
)

func TestAllOrderedAndUnique(t *testing.T) {
	exps := All()
	if len(exps) < 13 {
		t.Fatalf("suite has %d experiments, want ≥13", len(exps))
	}
	seen := map[string]bool{}
	prev := 0
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
		if n := idOrder(e.ID); n <= prev {
			t.Fatalf("IDs not ordered at %s", e.ID)
		} else {
			prev = n
		}
	}
}

// TestExperimentsProduceReports runs each generator and checks the report
// carries both the paper framing and measured content. The heavier
// experiments are exercised too — they are the reproduction deliverable —
// but skipped in -short mode.
func TestExperimentsProduceReports(t *testing.T) {
	heavy := map[string]bool{"E9": true, "E10": true, "E12": true, "E13": true, "E22": true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && heavy[e.ID] {
				t.Skip("heavy experiment skipped in -short")
			}
			body, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(body) < 200 {
				t.Fatalf("%s report suspiciously short (%d bytes)", e.ID, len(body))
			}
			if !strings.Contains(body, "Paper") {
				t.Errorf("%s report lacks the paper framing", e.ID)
			}
			if !strings.Contains(body, "|") && !strings.Contains(body, "```") {
				t.Errorf("%s report has neither table nor figure", e.ID)
			}
		})
	}
}

func TestRunAllStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("full report generation skipped in -short")
	}
	var sb strings.Builder
	if err := RunAll(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, e := range All() {
		if !strings.Contains(out, "## "+e.ID+":") {
			t.Errorf("report missing section %s", e.ID)
		}
	}
	if strings.Contains(out, "**ERROR**") {
		t.Error("report contains embedded experiment errors")
	}
}

func TestSparklineShape(t *testing.T) {
	s := sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] >= runes[3] {
		t.Fatal("sparkline not monotone for ramp")
	}
	flat := sparkline([]float64{5, 5})
	if len([]rune(flat)) != 2 {
		t.Fatal("flat sparkline broken")
	}
}

func TestYesHelper(t *testing.T) {
	if yes(true) != "yes" || yes(false) != "no" {
		t.Fatal("yes() helper wrong")
	}
}
