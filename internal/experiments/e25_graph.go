package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hdc/internal/body"
	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/graph"
	"hdc/internal/graph/nodes"
	"hdc/internal/imu"
	"hdc/internal/ledring"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
	"hdc/internal/telemetry"
)

// e25Scale trims the workload under `go test` to keep tier-1 in budget.
func e25Scale(full, trimmed int) int {
	if testing.Testing() {
		return trimmed
	}
	return full
}

// e25SinkDelay is the slow-consumer stall in the shed-policy scenario.
func e25SinkDelay() time.Duration {
	if testing.Testing() {
		return 200 * time.Microsecond
	}
	return time.Millisecond
}

// E25Graph measures the dataflow graph runtime (internal/graph): (1) the
// recognition graph against the legacy stream path it replaces — same pool,
// same frames, results pinned bit-identical, throughput within noise; (2)
// four heterogeneous workloads (sign recognition, LED-ring decode, IMU
// motion windows, flight-pattern classification) running concurrently as
// graphs on ONE shared worker pool with per-node owner attribution; (3) the
// three edge shed policies against a deliberately slow sink — what each
// does to delivery when a consumer cannot keep up.
func E25Graph() (string, error) {
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		return "", err
	}
	rend := scene.NewRenderer(scene.Config{})
	if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
		return "", err
	}

	p, err := pipeline.New(rec, pipeline.Config{Workers: runtime.NumCPU(), QueueDepth: 16, StreamWindow: 8})
	if err != nil {
		return "", err
	}
	defer p.Close()
	// Graphs attach to the pool as reference-counted owners, and the pool
	// drains when the last owner detaches — hold one attachment for the
	// experiment's lifetime so sequential build/close cycles share the pool.
	hold, err := p.Attach("e25")
	if err != nil {
		return "", err
	}
	defer hold.Close()
	ctx := context.Background()

	var sb strings.Builder
	sb.WriteString("Paper baseline: one drone, one frame, one thread (§IV). This\n")
	sb.WriteString("extension restructures every workload as a declarative node graph on\n")
	sb.WriteString("the shared worker pool: bounded zero-copy edges of pooled buffers,\n")
	sb.WriteString("pluggable shed policies, per-node pool attribution, served over the\n")
	sb.WriteString("/v1/graph endpoints.\n\n")

	// -- Scenario 1: graph vs legacy stream on the recognition workload. ----
	signs := []body.Sign{body.SignNo, body.SignYes, body.SignAttention}
	nFrames := e25Scale(240, 48)
	frames := make([]*raster.Gray, nFrames)
	for i := range frames {
		f, err := rend.Render(signs[i%len(signs)], scene.ReferenceView(), body.Options{}, nil)
		if err != nil {
			return "", err
		}
		frames[i] = f
	}

	legacy := make([]pipeline.StreamResult, nFrames)
	st, err := p.NewStream()
	if err != nil {
		return "", err
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for r := range st.Results() {
			legacy[r.Seq] = r
		}
	}()
	startLegacy := time.Now()
	for _, f := range frames {
		if err := st.Submit(f); err != nil {
			return "", err
		}
	}
	st.Close()
	<-drained
	legacyElapsed := time.Since(startLegacy)

	g, err := graph.Build(nodes.RecognizeSpec(rec), p, graph.Config{})
	if err != nil {
		return "", err
	}
	in := make([]graph.Input, nFrames)
	for i, f := range frames {
		in[i] = graph.Input{Frame: f}
	}
	startGraph := time.Now()
	out, err := g.Process(ctx, in)
	graphElapsed := time.Since(startGraph)
	if err != nil {
		return "", err
	}
	g.Close()

	identical := 0
	for i := range out {
		lr, gr := legacy[i].Res, out[i].Value.(recognizer.Result)
		if lr.Label == gr.Label && math.Float64bits(lr.Match.Dist) == math.Float64bits(gr.Match.Dist) {
			identical++
		}
	}
	tab := telemetry.NewTable("path", "frames", "elapsed", "frames/sec", "bit-identical")
	tab.AddRow("legacy stream", fmt.Sprintf("%d", nFrames), legacyElapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1f", float64(nFrames)/legacyElapsed.Seconds()), "—")
	tab.AddRow("graph", fmt.Sprintf("%d", nFrames), graphElapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1f", float64(nFrames)/graphElapsed.Seconds()),
		fmt.Sprintf("%d/%d", identical, nFrames))
	sb.WriteString("**Graph vs legacy stream** (same pool, same frames; label and raw\n")
	sb.WriteString("Float64 distance bits compared per frame):\n\n")
	sb.WriteString(tab.Markdown())
	if identical != nFrames {
		sb.WriteString(fmt.Sprintf("\n**PARITY FAILURE**: only %d/%d frames identical.\n", identical, nFrames))
	}

	// -- Scenario 2: four workloads concurrently on one pool. ---------------
	ringFrame := func(n, boundary int) []ledring.Color {
		leds := make([]ledring.Color, n)
		leds[(boundary+n-1)%n] = ledring.Red
		leds[boundary%n] = ledring.Green
		return leds
	}
	hover := make(nodes.IMUWindow, 64)
	for i := range hover {
		hover[i] = imu.Sample{
			T:     time.Duration(i) * 20 * time.Millisecond,
			Accel: geom.V3(0, 0, imu.Gravity), BaroAltM: 5,
		}
	}
	cruise := make(flight.Trajectory, 32)
	for i := range cruise {
		cruise[i] = flight.Sample{T: float64(i) * 0.5, Pos: geom.V3(float64(i)*0.8, 0, 5)}
	}

	batches := e25Scale(24, 4)
	const perBatch = 8
	mixed := []struct {
		name  string
		build func() (*graph.Graph, error)
		batch func(i int) []graph.Input
	}{
		{"recognize", func() (*graph.Graph, error) { return graph.Build(nodes.RecognizeSpec(rec), p, graph.Config{}) },
			func(i int) []graph.Input {
				in := make([]graph.Input, perBatch)
				for j := range in {
					in[j] = graph.Input{Frame: frames[(i*perBatch+j)%len(frames)]}
				}
				return in
			}},
		{"ledring", func() (*graph.Graph, error) { return graph.Build(nodes.LedringSpec(), p, graph.Config{}) },
			func(i int) []graph.Input {
				in := make([]graph.Input, perBatch)
				for j := range in {
					in[j] = graph.Input{Value: nodes.LedringInput{Frames: [][]ledring.Color{ringFrame(12, i+j)}}}
				}
				return in
			}},
		{"imu", func() (*graph.Graph, error) { return graph.Build(nodes.IMUSpec(), p, graph.Config{}) },
			func(int) []graph.Input {
				in := make([]graph.Input, perBatch)
				for j := range in {
					in[j] = graph.Input{Value: hover}
				}
				return in
			}},
		{"flight", func() (*graph.Graph, error) { return graph.Build(nodes.FlightSpec(), p, graph.Config{}) },
			func(int) []graph.Input {
				in := make([]graph.Input, perBatch)
				for j := range in {
					in[j] = graph.Input{Value: cruise}
				}
				return in
			}},
	}

	graphs := make([]*graph.Graph, len(mixed))
	for i, w := range mixed {
		if graphs[i], err = w.build(); err != nil {
			return "", err
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(mixed))
	elapsed := make([]time.Duration, len(mixed))
	startMixed := time.Now()
	for i, w := range mixed {
		wg.Add(1)
		go func(i int, batch func(int) []graph.Input) {
			defer wg.Done()
			start := time.Now()
			for b := 0; b < batches; b++ {
				if _, err := graphs[i].Process(ctx, batch(b)); err != nil {
					errs[i] = err
					return
				}
			}
			elapsed[i] = time.Since(start)
		}(i, w.batch)
	}
	wg.Wait()
	wall := time.Since(startMixed)
	for i, err := range errs {
		if err != nil {
			return "", fmt.Errorf("%s workload: %w", mixed[i].name, err)
		}
	}
	mixTab := telemetry.NewTable("workload", "items", "items/sec", "delivered", "owners")
	for i, w := range mixed {
		gst := graphs[i].Stats()
		var owners []string
		for _, n := range gst.Nodes {
			owners = append(owners, n.Owner)
		}
		items := batches * perBatch
		mixTab.AddRow(w.name, fmt.Sprintf("%d", items),
			fmt.Sprintf("%.0f", float64(items)/elapsed[i].Seconds()),
			fmt.Sprintf("%d", gst.Delivered), strings.Join(owners, " "))
		graphs[i].Close()
	}
	sb.WriteString("\n**Four workloads concurrently on one shared pool** (wall ")
	sb.WriteString(wall.Round(time.Millisecond).String())
	sb.WriteString("; the owner\nlabels are what /statsz pool attribution reports per node):\n\n")
	sb.WriteString(mixTab.Markdown())

	// -- Scenario 3: shed policies against a slow sink. ---------------------
	sinkDelay := e25SinkDelay()
	shedN := e25Scale(60, 24)
	slowSink := func(_ *recognizer.Scratch, _ *graph.Msg) error {
		time.Sleep(sinkDelay)
		return nil
	}
	pass := func(_ *recognizer.Scratch, _ *graph.Msg) error { return nil }
	policies := []struct {
		name string
		spec graph.EdgeSpec
	}{
		{"block", graph.EdgeSpec{Cap: 2, Policy: graph.Block}},
		{"drop-oldest", graph.EdgeSpec{Cap: 2, Policy: graph.DropOldest}},
		{"stride k=3", graph.EdgeSpec{Cap: 2, Policy: graph.Stride, K: 3}},
	}
	shedTab := telemetry.NewTable("policy", "submitted", "delivered", "shed", "elapsed")
	for _, pol := range policies {
		spec := graph.Spec{
			Name: "shed-" + pol.name,
			Nodes: []graph.NodeSpec{
				{Name: "fast", Proc: pass},
				{Name: "slow", Proc: slowSink},
			},
			Edges:  []graph.EdgeSpec{{From: "fast", To: "slow", Cap: pol.spec.Cap, Policy: pol.spec.Policy, K: pol.spec.K}},
			Ingest: graph.EdgeSpec{Cap: 4},
		}
		sg, err := graph.Build(spec, p, graph.Config{})
		if err != nil {
			return "", err
		}
		in := make([]graph.Input, shedN)
		for i := range in {
			in[i] = graph.Input{Value: i}
		}
		start := time.Now()
		if _, err := sg.Process(ctx, in); err != nil {
			sg.Close()
			return "", err
		}
		took := time.Since(start)
		sg.Close()
		gst := sg.Stats()
		shedTab.AddRow(pol.name, fmt.Sprintf("%d", gst.Submitted),
			fmt.Sprintf("%d", gst.Delivered), fmt.Sprintf("%d", gst.Shed),
			took.Round(time.Millisecond).String())
	}
	sb.WriteString("\n**Shed policies against a slow sink** (")
	sb.WriteString(fmt.Sprintf("%v stall per message, edge cap 2):\n\n", sinkDelay))
	sb.WriteString(shedTab.Markdown())
	sb.WriteString("\nBlock holds every message at the cost of end-to-end latency —\n")
	sb.WriteString("back-pressure reaches the submitter. Drop-oldest keeps the freshest\n")
	sb.WriteString("frames moving (the live-camera policy: a newer frame is always worth\n")
	sb.WriteString("more than a stale one). Stride keeps every k-th message — the\n")
	sb.WriteString("decimation policy for telemetry that tolerates subsampling. All three\n")
	sb.WriteString("recycle shed buffers through the same pooled-frame hook, pinned by\n")
	sb.WriteString("the graphtest conformance kit's gets==puts balance checks.\n")
	return sb.String(), nil
}
