package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"hdc/internal/sax"
	"hdc/internal/telemetry"
	"hdc/internal/timeseries"
)

// E18Database measures the sharded, indexed sign database against the
// retained linear-scan reference at dictionary sizes 10/100/1000 — the
// fleet-scale regime (hundreds of per-site exemplars) the lookup cascade is
// built for. Reported per size: mean lookup latency of the linear scan and
// of the three-stage cascade (histogram lower bound → rotation-windowed
// MINDIST with cutoff → exact alignment with cutoff), the speedup, and
// where the cascade rejected candidates.
func E18Database() (string, error) {
	const (
		seriesLen = 128
		queries   = 12
	)
	rng := rand.New(rand.NewSource(42))
	shape := func() timeseries.Series {
		a1, a2, a3 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		p1, p2, p3 := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
		s := make(timeseries.Series, seriesLen)
		for i := range s {
			t := 2 * math.Pi * float64(i) / seriesLen
			s[i] = 1 + 0.6*a1*math.Cos(t+p1) + 0.4*a2*math.Cos(2*t+p2) +
				0.3*a3*math.Cos(3*t+p3) + 0.05*rng.NormFloat64()
		}
		return s
	}

	tab := telemetry.NewTable("entries", "linear µs/lookup", "cascade µs/lookup",
		"speedup", "hist-pruned", "word-pruned", "exact evals")
	for _, size := range []int{10, 100, 1000} {
		enc, err := sax.NewEncoder(16, 6)
		if err != nil {
			return "", err
		}
		db, err := sax.NewDatabase(enc, seriesLen)
		if err != nil {
			return "", err
		}
		for i := 0; i < size; i++ {
			if err := db.Add(fmt.Sprintf("sign-%03d", i%(size/3+1)), shape()); err != nil {
				return "", err
			}
		}

		// Query mix: perturbed rotations of stored entries plus fresh shapes.
		var zs []timeseries.Series
		var words []sax.Word
		for qi := 0; qi < queries; qi++ {
			q := shape()
			if qi%2 == 0 {
				q = db.Entries()[rng.Intn(db.Len())].Series.Rotate(rng.Intn(seriesLen)).Clone()
				for i := range q {
					q[i] += 0.1 * rng.NormFloat64()
				}
			}
			z := q.ZNormalize()
			w, err := enc.Encode(z)
			if err != nil {
				return "", err
			}
			zs = append(zs, z)
			words = append(words, w)
		}

		start := time.Now()
		for qi := range zs {
			if _, err := db.LookupZLinear(zs[qi], words[qi], math.Inf(1)); err != nil {
				return "", err
			}
		}
		linear := time.Since(start)

		sc := sax.NewLookupScratch()
		var agg sax.LookupStats
		start = time.Now()
		for qi := range zs {
			if _, err := db.LookupZWith(sc, zs[qi], words[qi], math.Inf(1)); err != nil {
				return "", err
			}
			st := sc.Stats()
			agg.HistPruned += st.HistPruned
			agg.WordPruned += st.WordPruned
			agg.ExactEvals += st.ExactEvals
		}
		cascade := time.Since(start)

		tab.AddRow(
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.0f", float64(linear.Microseconds())/queries),
			fmt.Sprintf("%.0f", float64(cascade.Microseconds())/queries),
			fmt.Sprintf("%.1f×", float64(linear)/float64(cascade)),
			fmt.Sprintf("%.0f", float64(agg.HistPruned)/queries),
			fmt.Sprintf("%.0f", float64(agg.WordPruned)/queries),
			fmt.Sprintf("%.0f", float64(agg.ExactEvals)/queries),
		)
	}

	var sb strings.Builder
	sb.WriteString("Paper baseline: the §IV \"database of strings\" held three words; a\n")
	sb.WriteString("fleet deployment holds hundreds (per-site signs, several exemplars\n")
	sb.WriteString("each).\n")
	sb.WriteString("The store is sharded 16 ways by label hash (per-shard RWMutex, so\n")
	sb.WriteString("pool workers never serialise) and lookup runs a best-first\n")
	sb.WriteString("three-stage cascade: a rotation/mirror-invariant symbol-histogram\n")
	sb.WriteString("lower bound (O(alphabet) per entry, provably below MINDIST — see\n")
	sb.WriteString("the property test), then rotation-windowed MINDIST, then exact\n")
	sb.WriteString("alignment, the last two early-abandoned against the best distance\n")
	sb.WriteString("so far. Identical Match results to the linear scan are enforced\n")
	sb.WriteString("by a randomized equivalence test.\n\n")
	sb.WriteString(tab.Markdown())
	sb.WriteString("\nColumns hist-/word-pruned and exact evals are per query (means).\n")
	sb.WriteString("`BenchmarkDatabaseLookup{10,100,1000}` reproduces the cascade\n")
	sb.WriteString("timings with 0 allocs/op in steady state;\n")
	sb.WriteString("`BenchmarkDatabaseLookupLinear*` the baseline, and\n")
	sb.WriteString("`BenchmarkLookupParallel` the shard scaling under concurrent\n")
	sb.WriteString("lookers.\n")
	return sb.String(), nil
}
