package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hdc/internal/core"
	"hdc/internal/pipeline"
	"hdc/internal/scene"
	"hdc/internal/server"
	"hdc/internal/server/client"
	"hdc/internal/server/loadtest"
	"hdc/internal/telemetry"
)

// e24RunFor is the per-scenario load window; trimmed under `go test` to keep
// the tier-1 suite inside its budget.
func e24RunFor() time.Duration {
	if testing.Testing() {
		return 500 * time.Millisecond
	}
	return 2 * time.Second
}

// E24Tracing measures what the always-on per-frame tracing layer costs: the
// E19 multi-operator load driven at the service three times — tracer
// disarmed (every hook collapses to one atomic load), armed (the production
// default: per-stage timestamps into the per-worker rings), and armed while
// a scraper hammers /tracez concurrently (the worst case: seqlock readers
// racing the writers they observe). The claim under test is the ros2probe
// one — observability cheap enough to leave on: armed-vs-disarmed should be
// lost in run-to-run noise at service level, and scraping must not perturb
// the writers it watches.
func E24Tracing() (string, error) {
	sys, err := core.NewSystem(
		core.WithSceneConfig(scene.Config{}),
		core.WithPipelineConfig(pipeline.Config{}),
	)
	if err != nil {
		return "", err
	}
	defer sys.Close()

	srv := server.New(sys, server.Options{MaxBatch: 1024})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	const batch = 8
	const operators = 8
	frames, err := loadtest.RenderFrames(batch)
	if err != nil {
		return "", err
	}
	probe := client.New(base, nil)
	ctx := context.Background()

	// One warm-up batch starts the lazy pool, so the tracer exists before
	// the first scenario arms or disarms it.
	if _, err := probe.RecognizeBatch(ctx, frames); err != nil {
		return "", err
	}
	tr := sys.Tracer()
	if tr == nil {
		return "", fmt.Errorf("pool started but no tracer attached")
	}

	scenarios := []struct {
		name           string
		armed, scraped bool
	}{
		{"disarmed", false, false},
		{"armed", true, false},
		{"armed+scraped", true, true},
	}

	runFor := e24RunFor()
	tab := telemetry.NewTable("scenario", "operators", "frames/sec", "p50 ms", "p99 ms", "traced", "scrapes")
	for _, sc := range scenarios {
		if sc.armed {
			tr.Arm()
		} else {
			tr.Disarm()
		}
		before := tr.Snapshot(0).Totals.Begun

		stop := make(chan struct{})
		var wg sync.WaitGroup
		var scrapes int
		if sc.scraped {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := probe.Tracez(ctx, 64); err == nil {
						scrapes++
					}
				}
			}()
		}
		res, err := loadtest.Drive(ctx, base, loadtest.Config{
			Operators: operators, Batch: batch, Duration: runFor,
			Mix: "mixed", Wire: "raw",
		}, frames)
		close(stop)
		wg.Wait()
		if err != nil {
			return "", err
		}
		traced := tr.Snapshot(0).Totals.Begun - before
		tab.AddRow(
			sc.name,
			fmt.Sprintf("%d", operators),
			fmt.Sprintf("%.1f", res.FramesPerSec()),
			fmt.Sprintf("%.1f", res.PercentileMS(0.50)),
			fmt.Sprintf("%.1f", res.PercentileMS(0.99)),
			fmt.Sprintf("%d", traced),
			fmt.Sprintf("%d", scrapes),
		)
	}
	tr.Arm() // leave the tracer at its production default

	// The armed runs also fed the aggregate breakdown — the per-stage medians
	// /tracez serves, and the numbers BenchmarkStageBreakdown exports to the
	// CI perf gate.
	snap := tr.Snapshot(0)
	var stages []string
	for _, st := range snap.Stages {
		if st.Count == 0 {
			continue
		}
		stages = append(stages, fmt.Sprintf("%s %.0f µs", st.Stage, float64(st.P50Ns)/1e3))
	}

	var sb strings.Builder
	sb.WriteString("Paper baseline: aggregate per-stage latency measured offline (§IV,\n")
	sb.WriteString("E5). This extension measures the live tracing layer instead: every\n")
	sb.WriteString("frame crossing the pool carries a trace handle, and each stage\n")
	sb.WriteString("boundary is one atomic timestamp store into a per-worker ring —\n")
	sb.WriteString("served as /tracez (recent per-frame spans + per-stage p50/p99).\n")
	sb.WriteString("Three rows: tracer disarmed (hooks collapse to one atomic load),\n")
	sb.WriteString("armed (production default), and armed with a concurrent /tracez\n")
	sb.WriteString("scrape loop racing the writers.\n\n")
	sb.WriteString(tab.Markdown())
	sb.WriteString(fmt.Sprintf("\nHost: GOMAXPROCS=%d, NumCPU=%d, run length %v per row, batch %d.\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), runFor, batch))
	sb.WriteString(fmt.Sprintf("Armed per-stage p50 (bucketed): %s.\n", strings.Join(stages, ", ")))
	sb.WriteString("The three rows sit within run-to-run noise of each other: per-frame\n")
	sb.WriteString("recognition work is tens of microseconds, the armed hook set costs\n")
	sb.WriteString("well under a microsecond per frame (BenchmarkTraceArmed ~0.7 µs for\n")
	sb.WriteString("all seven stamps; BenchmarkTraceDisabled ~14 ns, both 0 allocs), and\n")
	sb.WriteString("scrapers only copy ring slots under a seqlock — they never block a\n")
	sb.WriteString("writer. That is the argument for leaving tracing armed in\n")
	sb.WriteString("production: \"where did frame N's 40 ms go?\" is answerable from\n")
	sb.WriteString("/tracez after the fact, at a cost the service cannot measure.\n")
	return sb.String(), nil
}
