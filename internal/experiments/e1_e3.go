package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/human"
	"hdc/internal/ledring"
	"hdc/internal/protocol"
	"hdc/internal/telemetry"
)

// E1LEDRing regenerates Figure 1: the all-round light in danger (all red)
// and navigation (direction-coded) states, plus the per-heading sector
// table.
func E1LEDRing() (string, error) {
	var sb strings.Builder
	ring, err := ledring.New(ledring.Options{})
	if err != nil {
		return "", err
	}

	sb.WriteString("Paper: ring of 10 tri-colour LEDs; danger = all red (safety default),\n")
	sb.WriteString("navigation = red/green/white coding the direction of controlled flight.\n\n")

	sb.WriteString("Danger display (Fig 1 top):\n\n```\n")
	sb.WriteString(ring.Render())
	sb.WriteString("```\n\n")

	ring.SetNavigation(geom.North)
	sb.WriteString("Navigation display, flying north (Fig 1 bottom):\n\n```\n")
	sb.WriteString(ring.Render())
	sb.WriteString("```\n\n")

	tb := telemetry.NewTable("flight direction", "LED colours (LED0..LED9, clockwise from nose)", "decoded direction")
	for _, deg := range []float64{0, 45, 90, 135, 180, 225, 270, 315} {
		ring.SetNavigation(geom.HeadingFromDeg(deg))
		leds := ring.LEDs()
		glyphs := make([]string, len(leds))
		for i, c := range leds {
			glyphs[i] = strings.ToUpper(c.String()[:1])
		}
		dec, err := ledring.DecodeHeading(leds)
		if err != nil {
			return "", err
		}
		tb.AddRow(fmt.Sprintf("%.0f°", deg), strings.Join(glyphs, " "), dec.String())
	}
	sb.WriteString(tb.Markdown())
	sb.WriteString("\nObserved: the red→green boundary tracks the flight direction within the\n")
	sb.WriteString("ring's 18° quantisation — the §II requirement.\n")
	return sb.String(), nil
}

// E2Landing regenerates Figure 2: the landing pattern — altitude profile,
// touchdown, rotors off, and only then the navigation lights extinguishing.
func E2Landing() (string, error) {
	var sb strings.Builder
	log := telemetry.NewLog()

	d, err := flight.New(flight.DefaultParams(), geom.V3(0, 0, 0))
	if err != nil {
		return "", err
	}
	ring, err := ledring.New(ledring.Options{})
	if err != nil {
		return "", err
	}
	exec := flight.NewExecutor(d)

	if _, err := exec.Fly(flight.PatternTakeOff, geom.Vec3{}); err != nil {
		return "", err
	}
	ring.SetNavigation(d.S.Heading)
	log.Emit(0, "drone", "state", fmt.Sprintf("hover at %.1f m, lights %s", d.S.Pos.Z, ring.Mode()))

	tr, err := exec.Fly(flight.PatternLand, geom.Vec3{})
	if err != nil {
		return "", err
	}
	// Fig 2 sequence.
	log.Emit(0, "drone", "touchdown", fmt.Sprintf("altitude %.2f m", d.S.Pos.Z))
	log.Emit(0, "drone", "rotors-off", fmt.Sprintf("rotors on: %v", d.RotorsOn()))
	ring.SetOff()
	log.Emit(0, "drone", "lights-off", fmt.Sprintf("lights %s", ring.Mode()))

	sb.WriteString("Paper (Fig 2): 1 — the drone reduces altitude until landed; 2 — rotors\n")
	sb.WriteString("are switched off; 3 — navigation lights are extinguished, in that order.\n\n")

	sb.WriteString("Altitude profile of the landing trajectory (sampled):\n\n```\n")
	step := len(tr) / 12
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(tr); i += step {
		s := tr[i]
		bars := int(s.Pos.Z * 8)
		sb.WriteString(fmt.Sprintf("t=%5.1fs  %5.2f m |%s\n", s.T, s.Pos.Z, strings.Repeat("█", bars)))
	}
	sb.WriteString("```\n\nEvent sequence:\n\n```\n")
	sb.WriteString(log.String())
	sb.WriteString("```\n\nMeasured: rotors stop only below 0.08 m, lights extinguish strictly\n")
	sb.WriteString("after rotor stop — the Fig 2 ordering is enforced in code (see\n")
	sb.WriteString("internal/drone TestFig2LandingSequence).\n")
	return sb.String(), nil
}

// E3Negotiation regenerates Figure 3: the negotiated-access conversation
// over all three roles, with outcome statistics and the safety invariant.
func E3Negotiation() (string, error) {
	var sb strings.Builder
	sb.WriteString("Paper (Fig 3): the drone flies a Rectangle to request the space; the\n")
	sb.WriteString("human answers Yes or No; the drone enters only on Yes.\n\n")

	const trials = 60
	tb := telemetry.NewTable("role", "granted", "denied", "no response", "aborted", "mean duration", "violations")
	for _, role := range human.Roles() {
		var granted, deniedN, silent, aborted, violations int
		var durSum float64
		for seed := int64(0); seed < trials; seed++ {
			rng := rand.New(rand.NewSource(seed*31 + int64(role)))
			h, err := human.New("h", role, geom.V2(0, 0), rng)
			if err != nil {
				return "", err
			}
			env := protocol.NewSimEnv(h, rng)
			eng := protocol.NewEngine(protocol.Config{}, nil)
			res, err := eng.Negotiate(env)
			if err != nil {
				return "", err
			}
			if env.Violated {
				violations++
			}
			durSum += res.Duration.Seconds()
			switch res.Outcome {
			case protocol.OutcomeGranted:
				granted++
			case protocol.OutcomeDenied:
				deniedN++
			case protocol.OutcomeNoResponse:
				silent++
			case protocol.OutcomeAborted:
				aborted++
			}
		}
		tb.AddRow(role.String(),
			fmt.Sprintf("%d/%d", granted, trials),
			fmt.Sprintf("%d", deniedN),
			fmt.Sprintf("%d", silent),
			fmt.Sprintf("%d", aborted),
			fmt.Sprintf("%.1f s", durSum/trials),
			fmt.Sprintf("%d", violations),
		)
	}
	sb.WriteString(tb.Markdown())
	sb.WriteString("\nThe violations column counts entries without a perceived Yes — it must\n")
	sb.WriteString("be zero for every role (also property-tested over 2000 adversarial runs).\n")
	return sb.String(), nil
}
