package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hdc/internal/core"
	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/ledring"
	"hdc/internal/mission"
	"hdc/internal/orchard"
	"hdc/internal/telemetry"
)

// E11LEDAblation quantifies the §II display design: heading readability vs
// LED count, and the verdict on the vertical take-off/landing array the
// paper's user feedback rejected.
func E11LEDAblation() (string, error) {
	var sb strings.Builder
	sb.WriteString("Paper (§II): a 10-LED ring signals the flight direction; the vertical\n")
	sb.WriteString("take-off/landing array confused users and is to be discarded.\n\n")

	tb := telemetry.NewTable("LED count", "mean decode error", "worst-case (quantisation)")
	for _, n := range []int{4, 6, 8, 10, 16, 24, 36} {
		ring, err := ledring.New(ledring.Options{LEDCount: n})
		if err != nil {
			return "", err
		}
		var sum float64
		var cnt int
		for deg := 0.0; deg < 360; deg += 2 {
			h := geom.HeadingFromDeg(deg)
			ring.SetNavigation(h)
			dec, err := ledring.DecodeHeading(ring.LEDs())
			if err != nil {
				return "", err
			}
			sum += geom.Rad2Deg(dec.AbsDiff(h))
			cnt++
		}
		tb.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f°", sum/float64(cnt)),
			fmt.Sprintf("%.1f°", ledring.HeadingQuantizationErrorDeg(n)),
		)
	}
	sb.WriteString(tb.Markdown())
	sb.WriteString("\nThe paper's 10-LED ring reads to ≈18° worst case — enough to tell the\n")
	sb.WriteString("eight cardinal/intercardinal directions apart, matching the FAA-style\n")
	sb.WriteString("requirement without the cost of a denser ring.\n\n")

	sb.WriteString("### Vertical array (deprecated per user feedback)\n\n")
	ring, err := ledring.New(ledring.Options{VerticalArray: 5})
	if err != nil {
		return "", err
	}
	if err := ring.StartVertical(ledring.VerticalTakeOff); err != nil {
		return "", err
	}
	takeoff := verticalTrace(ring, 5)
	if err := ring.StartVertical(ledring.VerticalLanding); err != nil {
		return "", err
	}
	landing := verticalTrace(ring, 5)
	sb.WriteString("Take-off animation (bottom→top), one column per tick:\n\n```\n" + takeoff + "```\n\n")
	sb.WriteString("Landing animation (top→bottom):\n\n```\n" + landing + "```\n\n")
	sb.WriteString("The two animations differ only in direction of travel — exactly the\n")
	sb.WriteString("discriminability problem the paper's users reported; the array ships\n")
	sb.WriteString("disabled by default and the RGB-signal alternative is future work.\n")

	sb.WriteString("\n### Power vs illumination distance (§II open issue)\n\n")
	sb.WriteString("\"Power requirements with respect to illumination distance is an issue\n")
	sb.WriteString("that needs further consideration.\" Ten-LED ring in full daylight\n")
	sb.WriteString("(10 klx), hover draw 180 W, 25 min endurance:\n\n")
	tb3 := telemetry.NewTable("legibility range", "per-LED intensity", "ring power", "endurance cost")
	for _, rangeM := range []float64{10, 30, 100, 300} {
		cd, err := ledring.RequiredIntensityCd(rangeM, 10000, 1)
		if err != nil {
			return "", err
		}
		w, err := ledring.RingPowerW(10, ledring.PhotometricParams{IntensityCd: cd, AmbientLux: 10000})
		if err != nil {
			return "", err
		}
		lost, err := ledring.EnduranceImpact(w, 180, 25)
		if err != nil {
			return "", err
		}
		tb3.AddRow(
			fmt.Sprintf("%.0f m", rangeM),
			fmt.Sprintf("%.2f cd", cd),
			fmt.Sprintf("%.2f W", w),
			fmt.Sprintf("%.2f min", lost),
		)
	}
	sb.WriteString(tb3.Markdown())
	sb.WriteString("\nLegibility at the orchard's working distances is essentially free;\n")
	sb.WriteString("the inverse-square law makes long-range signalling the expensive case —\n")
	sb.WriteString("which is where the paper's suggested \"separate high luminosity LEDs\"\n")
	sb.WriteString("(collimated beams) pay off.\n")
	return sb.String(), nil
}

func verticalTrace(ring *ledring.Ring, ticks int) string {
	n := len(ring.Vertical())
	rows := make([][]byte, n)
	for i := range rows {
		rows[i] = make([]byte, ticks)
		for j := range rows[i] {
			rows[i][j] = '.'
		}
	}
	for tick := 0; tick < ticks; tick++ {
		for i, on := range ring.Vertical() {
			if on {
				rows[n-1-i][tick] = '#' // row 0 = top
			}
		}
		ring.TickVertical()
	}
	var sb strings.Builder
	for _, r := range rows {
		sb.Write(r)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// E12Legibility reproduces the §III "unmistakable patterns" claim: the
// observer-side classifier's confusion matrix over all seven patterns under
// calm air and gusty wind.
func E12Legibility() (string, error) {
	var sb strings.Builder
	sb.WriteString("Paper (§III): the communicative flight patterns are \"unmistakable\"\n")
	sb.WriteString("— an observer can read them from gross motion alone. Confusion matrix\n")
	sb.WriteString("of the trajectory classifier, 10 trials per pattern:\n\n")

	for _, windy := range []bool{false, true} {
		name := "calm air"
		if windy {
			name = "wind: 0.4 m/s mean + 0.4 m/s gusts"
		}
		sb.WriteString("### " + name + "\n\n")
		patterns := flight.Patterns()
		counts := make(map[flight.Pattern]map[string]int)
		rng := rand.New(rand.NewSource(2024))
		for _, p := range patterns {
			counts[p] = map[string]int{}
			for trial := 0; trial < 10; trial++ {
				d, err := flight.New(flight.DefaultParams(), geom.V3(0, 0, 0))
				if err != nil {
					return "", err
				}
				e := flight.NewExecutor(d)
				if p != flight.PatternTakeOff {
					if _, err := e.Fly(flight.PatternTakeOff, geom.Vec3{}); err != nil {
						return "", err
					}
				}
				if windy {
					w, err := flight.NewWind(geom.V2(0.3, 0.25), 0.4, rng)
					if err != nil {
						return "", err
					}
					d.Wind = w
				}
				tr, err := e.Fly(p, geom.V3(6, 2, 0))
				if err != nil {
					counts[p]["failed"]++
					continue
				}
				got, _, err := flight.Classify(tr)
				if err != nil {
					counts[p]["none"]++
					continue
				}
				counts[p][got.String()]++
			}
		}
		header := []string{"flown \\ read"}
		for _, p := range patterns {
			header = append(header, p.String())
		}
		header = append(header, "none/failed")
		tb := telemetry.NewTable(header...)
		for _, p := range patterns {
			row := []string{p.String()}
			for _, q := range patterns {
				row = append(row, fmt.Sprintf("%d", counts[p][q.String()]))
			}
			row = append(row, fmt.Sprintf("%d", counts[p]["none"]+counts[p]["failed"]))
			tb.AddRow(row...)
		}
		sb.WriteString(tb.Markdown())
		sb.WriteString("\n")
	}
	sb.WriteString("Diagonal dominance in calm air supports the \"unmistakable\" design\n")
	sb.WriteString("goal; gusts introduce bounded confusion, concentrated in patterns whose\n")
	sb.WriteString("motion amplitude is closest to the gust displacement.\n")
	return sb.String(), nil
}

// E13Mission runs the paper's §I use case end to end: trap monitoring over
// a populated orchard with negotiated access, across several seeds.
func E13Mission() (string, error) {
	var sb strings.Builder
	sb.WriteString("Paper (§I): drones collect fly-trap data in the presence of humans who\n")
	sb.WriteString("may block access; access must be negotiated. Full-stack mission runs\n")
	sb.WriteString("(flight + lights + rendered perception + protocol + orchard):\n\n")

	tb := telemetry.NewTable("seed", "traps read", "skipped", "negotiations", "granted", "denied", "silent", "battery", "sim time")
	for _, seed := range []int64{1, 2, 3} {
		sys, err := core.NewSystem(core.WithSeed(seed), core.WithHome(geom.V3(-6, -6, 0)))
		if err != nil {
			return "", err
		}
		world, err := orchard.Generate(orchard.Config{
			Rows: 4, Cols: 6, TrapEvery: 3, Humans: 3, PestRatePerHour: 30,
		}, rand.New(rand.NewSource(seed)))
		if err != nil {
			return "", err
		}
		world.Step(2 * time.Hour)
		m, err := mission.New(sys, world, mission.Config{})
		if err != nil {
			return "", err
		}
		rep, err := m.Run()
		if err != nil {
			return "", err
		}
		tb.AddRow(
			fmt.Sprintf("%d", seed),
			fmt.Sprintf("%d/%d", rep.TrapsRead, rep.TrapsTotal),
			fmt.Sprintf("%d", rep.TrapsSkipped),
			fmt.Sprintf("%d", rep.Negotiations),
			fmt.Sprintf("%d", rep.Granted),
			fmt.Sprintf("%d", rep.Denied),
			fmt.Sprintf("%d", rep.NoResponse),
			fmt.Sprintf("%.0f%%", rep.BatteryUsed*100),
			rep.SimTime.Truncate(time.Second).String(),
		)
	}
	sb.WriteString(tb.Markdown())
	sb.WriteString("\nEvery blocked trap triggered a Fig 3 negotiation; no entry ever\n")
	sb.WriteString("happened without a recognised Yes (enforced by the protocol engine and\n")
	sb.WriteString("its property tests).\n")
	return sb.String(), nil
}
