package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"hdc/internal/core"
	"hdc/internal/failpoint"
	"hdc/internal/pipeline"
	"hdc/internal/sax/store"
	"hdc/internal/scene"
	"hdc/internal/server"
	"hdc/internal/server/client"
	"hdc/internal/server/loadtest"
	"hdc/internal/telemetry"
)

// e23RunFor is the per-scenario load window; trimmed under `go test` to keep
// the tier-1 suite inside its budget.
func e23RunFor() time.Duration {
	if testing.Testing() {
		return 500 * time.Millisecond
	}
	return 2 * time.Second
}

// E23Dependability measures the dependability layer end to end: the same
// multi-operator load as E19 driven at a store-backed service while
// failpoints (internal/failpoint) inject the faults the layer exists for.
// Three scenarios: a no-fault baseline; a store stall (every mapped lookup
// delayed — the "slow disk" drill); and offered overload (worker dispatch
// delayed with 4× the operators — demand far above pool capacity). Under
// both fault scenarios the service keeps answering inside a bounded p99 by
// degrading: past the admission watermark it answers from the cascade's
// stage-0 histogram bound on the request goroutine (marked degraded:true,
// no pool round trip), so the degraded fraction is the price paid for the
// bounded tail.
func E23Dependability() (string, error) {
	defer failpoint.DisableAll()

	sys, err := core.NewSystem(
		core.WithSceneConfig(scene.Config{}),
		core.WithPipelineConfig(pipeline.Config{}),
	)
	if err != nil {
		return "", err
	}
	defer sys.Close()

	// Store-backed dictionary, seeded from the rendered references exactly
	// like a first `hdcserve -store` run, so the store failpoints sit on the
	// serving path.
	root, err := os.MkdirTemp("", "hdc-e23-")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(root)
	var buf bytes.Buffer
	if err := sys.Rec.SaveReferences(&buf); err != nil {
		return "", err
	}
	if _, err := store.ConvertV1(&buf, root+"/signs", store.BuilderOptions{}); err != nil {
		return "", err
	}
	st, err := store.Open(root+"/signs", store.Options{})
	if err != nil {
		return "", err
	}
	defer st.Close()
	if err := sys.Rec.UseDictionary(st); err != nil {
		return "", err
	}

	srv := server.New(sys, server.Options{MaxBatch: 1024, Store: st})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	const batch = 8
	frames, err := loadtest.RenderFrames(batch)
	if err != nil {
		return "", err
	}
	probe := client.New(base, nil)
	ctx := context.Background()

	scenarios := []struct {
		name      string
		operators int
		failpoint string // "" = none
		spec      string
	}{
		{"baseline", 8, "", ""},
		{"store stall", 8, failpoint.StoreLookup, "delay(1ms)"},
		{"overload", 32, failpoint.PipelineWorker, "delay(2ms)"},
	}

	runFor := e23RunFor()
	tab := telemetry.NewTable("scenario", "operators", "frames/sec", "p50 ms", "p99 ms", "degraded", "failures")
	for _, sc := range scenarios {
		if sc.failpoint != "" {
			if err := failpoint.Enable(sc.failpoint, sc.spec); err != nil {
				return "", err
			}
		}
		before, err := probe.Statsz(ctx)
		if err != nil {
			return "", err
		}
		res, err := loadtest.Drive(ctx, base, loadtest.Config{
			Operators: sc.operators, Batch: batch, Duration: runFor,
			Mix: "mixed", Wire: "raw",
		}, frames)
		failpoint.DisableAll()
		if err != nil {
			return "", err
		}
		after, err := probe.Statsz(ctx)
		if err != nil {
			return "", err
		}
		degraded := after.Admission.DegradedFrames - before.Admission.DegradedFrames
		degFrac := 0.0
		if res.Frames > 0 {
			degFrac = float64(degraded) / float64(res.Frames)
		}
		tab.AddRow(
			sc.name,
			fmt.Sprintf("%d", sc.operators),
			fmt.Sprintf("%.1f", res.FramesPerSec()),
			fmt.Sprintf("%.1f", res.PercentileMS(0.50)),
			fmt.Sprintf("%.1f", res.PercentileMS(0.99)),
			fmt.Sprintf("%.1f%%", degFrac*100),
			fmt.Sprintf("%d", res.Failures),
		)
	}

	var sb strings.Builder
	sb.WriteString("Paper baseline: a drone that goes blind when recognition falls behind.\n")
	sb.WriteString("This extension measures the dependability layer instead: the E19\n")
	sb.WriteString("multi-operator load against a store-backed service while\n")
	sb.WriteString("internal/failpoint injects the faults the layer absorbs. \"store\n")
	sb.WriteString("stall\" delays every mapped lookup 1 ms (a slow disk); \"overload\"\n")
	sb.WriteString("delays worker dispatch 2 ms under 4× the operators (demand far above\n")
	sb.WriteString("pool capacity). Past the admission watermark the service answers from\n")
	sb.WriteString("the cascade's stage-0 histogram bound on the request goroutine —\n")
	sb.WriteString("marked degraded:true per result — instead of queuing without bound.\n\n")
	sb.WriteString(tab.Markdown())
	sb.WriteString(fmt.Sprintf("\nHost: GOMAXPROCS=%d, NumCPU=%d, run length %v per row, batch %d.\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), runFor, batch))
	sb.WriteString("The p99 stays bounded through both fault scenarios because degraded\n")
	sb.WriteString("stage-0 answers bypass the stalled pool; the degraded column is the\n")
	sb.WriteString("fraction of frames that paid that accuracy price. Zero failures means\n")
	sb.WriteString("no request was dropped — shedding shows up as 429+Retry-After to the\n")
	sb.WriteString("retrying client, not as an error. The chaos suite\n")
	sb.WriteString("(internal/server/chaos_test.go) drives the same machinery under\n")
	sb.WriteString("randomized failpoint schedules; `hdcserve -failpoints` reproduces any\n")
	sb.WriteString("scenario against a live process.\n")
	return sb.String(), nil
}
