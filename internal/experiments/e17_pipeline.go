package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"hdc/internal/body"
	"hdc/internal/pipeline"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
	"hdc/internal/telemetry"
)

// E17Pipeline measures the streaming recognition service: frames/sec of the
// worker pool at increasing worker counts, ordering preserved per stream.
// On a single-core host the counts coincide; on a multi-core runner the
// NumCPU row shows the scaling headroom the pipeline opens (the paper's
// prototype was single-threaded at 38 ms/frame — one stream per drone of a
// fleet shares this pool instead).
func E17Pipeline() (string, error) {
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		return "", err
	}
	rend := scene.NewRenderer(scene.Config{})
	if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
		return "", err
	}
	frame, err := rend.Render(body.SignNo, scene.ReferenceView(), body.Options{}, nil)
	if err != nil {
		return "", err
	}

	const frames = 120
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}

	tab := telemetry.NewTable("workers", "frames", "elapsed", "frames/sec", "ordered")
	for _, workers := range counts {
		p, err := pipeline.New(rec, pipeline.Config{Workers: workers})
		if err != nil {
			return "", err
		}
		st, err := p.NewStream()
		if err != nil {
			p.Close()
			return "", err
		}
		ordered := true
		done := make(chan struct{})
		go func() {
			defer close(done)
			next := uint64(0)
			for r := range st.Results() {
				if r.Seq != next {
					ordered = false
				}
				next++
			}
		}()
		start := time.Now()
		var submitErr error
		for i := 0; i < frames; i++ {
			if err := st.Submit(frame); err != nil {
				submitErr = err
				break
			}
		}
		st.Close()
		<-done
		elapsed := time.Since(start)
		p.Close()
		if submitErr != nil {
			return "", submitErr
		}
		tab.AddRow(
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%d", frames),
			elapsed.Truncate(time.Millisecond).String(),
			fmt.Sprintf("%.1f", float64(frames)/elapsed.Seconds()),
			fmt.Sprintf("%v", ordered),
		)
	}

	var sb strings.Builder
	sb.WriteString("Paper baseline: the §IV prototype recognised one frame at a time,\n")
	sb.WriteString("single-threaded, at 38 ms (0°) / 27 ms (65°). This extension streams\n")
	sb.WriteString("frames from many concurrent sources through a worker pool\n")
	sb.WriteString("(internal/pipeline): per-worker scratch state, pooled buffers,\n")
	sb.WriteString("per-stream in-order delivery.\n\n")
	sb.WriteString(tab.Markdown())
	sb.WriteString(fmt.Sprintf("\nHost: GOMAXPROCS=%d, NumCPU=%d. `BenchmarkPipelineThroughput`\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU()))
	sb.WriteString("measures the same path with -benchmem (per-frame allocations stay\n")
	sb.WriteString("in the low-KB range versus the ~340 KB/frame of the unpooled front\n")
	sb.WriteString("half benchmarked by E4).\n")
	return sb.String(), nil
}
