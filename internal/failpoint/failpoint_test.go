package failpoint

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsNil(t *testing.T) {
	defer DisableAll()
	if err := Inject("never/enabled"); err != nil {
		t.Fatalf("disabled inject: %v", err)
	}
}

func TestErrorPolicy(t *testing.T) {
	defer DisableAll()
	if err := Enable("t/err", "error(disk full)"); err != nil {
		t.Fatal(err)
	}
	err := Inject("t/err")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Name != "t/err" || fe.Msg != "disk full" {
		t.Fatalf("bad error payload: %#v", err)
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("message lost: %v", err)
	}
	// Other points untouched.
	if err := Inject("t/other"); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
}

func TestCountLimit(t *testing.T) {
	defer DisableAll()
	if err := Enable("t/count", "2*error()"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := Inject("t/count"); err == nil {
			t.Fatalf("hit %d: want error", i)
		}
	}
	if err := Inject("t/count"); err != nil {
		t.Fatalf("exhausted point still fires: %v", err)
	}
	st := List()
	if len(st) != 1 || st[0].Hits != 3 || st[0].Fired != 2 {
		t.Fatalf("status = %+v", st)
	}
}

func TestDelayPolicy(t *testing.T) {
	defer DisableAll()
	if err := Enable("t/delay", "delay(30ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("t/delay"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
}

func TestPanicPolicy(t *testing.T) {
	defer DisableAll()
	if err := Enable("t/panic", "panic(boom)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "boom") {
			t.Fatalf("recover = %v", r)
		}
	}()
	_ = Inject("t/panic")
	t.Fatal("unreachable")
}

func TestProbability(t *testing.T) {
	defer DisableAll()
	if err := Enable("t/prob", "50%error()"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if Inject("t/prob") != nil {
			fired++
		}
	}
	if fired < n/4 || fired > 3*n/4 {
		t.Fatalf("50%% policy fired %d/%d", fired, n)
	}
	// 0% never fires.
	if err := Enable("t/never", "0%error()"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := Inject("t/never"); err != nil {
			t.Fatalf("0%% policy fired: %v", err)
		}
	}
}

func TestConfigure(t *testing.T) {
	defer DisableAll()
	err := Configure("t/a=error(x), t/b = 3*delay(1ms) ,")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(List()); got != 2 {
		t.Fatalf("points = %d", got)
	}
	if err := Configure("t/a=off"); err != nil {
		t.Fatal(err)
	}
	if got := List(); len(got) != 1 || got[0].Name != "t/b" {
		t.Fatalf("after off: %+v", got)
	}
	if err := Configure("garbage"); err == nil {
		t.Fatal("want error for missing =")
	}
	if err := Configure("t/c=frobnicate"); err == nil {
		t.Fatal("want error for unknown action")
	}
}

func TestSpecErrors(t *testing.T) {
	for _, spec := range []string{"", "200%error()", "x*error()", "0*error()", "delay(nope)", "delay(-1s)", "error(unterminated", "explode"} {
		if _, err := parseSpec(spec); err == nil {
			t.Errorf("spec %q: want parse error", spec)
		}
	}
	for _, spec := range []string{"error", "error()", "panic", "5%error(e)", "2*panic(p)", "1%1*delay(0s)"} {
		if _, err := parseSpec(spec); err != nil {
			t.Errorf("spec %q: %v", spec, err)
		}
	}
}

func TestReenableResetsPolicy(t *testing.T) {
	defer DisableAll()
	if err := Enable("t/re", "1*error(a)"); err != nil {
		t.Fatal(err)
	}
	_ = Inject("t/re")
	if err := Enable("t/re", "error(b)"); err != nil {
		t.Fatal(err)
	}
	err := Inject("t/re")
	if err == nil || !strings.Contains(err.Error(), "b") {
		t.Fatalf("re-enabled policy: %v", err)
	}
	Disable("t/re")
	if err := Inject("t/re"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
	Disable("t/re") // double-disable is a no-op
	if armed.Load() != 0 {
		t.Fatalf("armed = %d after full disable", armed.Load())
	}
}

func TestConcurrentInject(t *testing.T) {
	defer DisableAll()
	if err := Enable("t/conc", "10%delay(0s)"); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				_ = Inject("t/conc")
				if i == 250 {
					_ = Enable("t/conc2", "error()")
					Disable("t/conc2")
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// BenchmarkFailpointDisabled pins the disabled-hook overhead the whole
// design hangs on: one atomic load per Inject when nothing is armed. It is
// part of the benchgate key set.
func BenchmarkFailpointDisabled(b *testing.B) {
	DisableAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Inject(PipelineWorker); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailpointEnabledOther measures the cost at a hook whose name is
// NOT armed while some other point is — the registry-lookup slow path that
// every hook pays as soon as any failpoint is enabled anywhere.
func BenchmarkFailpointEnabledOther(b *testing.B) {
	DisableAll()
	if err := Enable("bench/other", "error()"); err != nil {
		b.Fatal(err)
	}
	defer DisableAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Inject(PipelineWorker); err != nil {
			b.Fatal(err)
		}
	}
}

// TestInjectedSentinelOnlyMatchesWrapped pins the second practical case
// behind the sentinelerr analyzer: an armed error() policy returns
// *Error, which wraps ErrInjected via Unwrap — the bare sentinel itself
// is never returned. Chaos assertions written as `err == ErrInjected`
// would therefore never fire; errors.Is is the only working match.
func TestInjectedSentinelOnlyMatchesWrapped(t *testing.T) {
	if err := Enable("t/sentinel", "error(wrapped)"); err != nil {
		t.Fatal(err)
	}
	defer Disable("t/sentinel")
	err := Inject("t/sentinel")
	if err == nil {
		t.Fatal("armed failpoint returned nil")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("errors.Is(err, ErrInjected) = false for %v", err)
	}
	//hdclint:ignore sentinelerr this identity comparison is the subject under test: it must NOT match the wrapped sentinel
	if err == ErrInjected {
		t.Fatal("err == ErrInjected matched; injected errors are expected to wrap the sentinel, not be it")
	}
}
