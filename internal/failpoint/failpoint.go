// Package failpoint is a named-hook fault-injection registry in the style
// of etcd's gofail: code on a fallible path calls Inject("layer/site") and
// tests (or an operator, via `hdcserve -failpoints` / the debug-only
// /failpointz endpoint) attach a policy — return an error, sleep, panic —
// optionally probabilistic and count-limited. The design constraint is the
// ros2probe one: selectively enabled instrumentation must cost ~nothing when
// idle. With no failpoint armed, Inject is a single atomic load and a
// predictable branch (pinned by BenchmarkFailpointDisabled in the benchgate
// key set); the registry lookup, RNG, and policy evaluation are only reached
// while at least one point is enabled anywhere in the process.
//
// Spec grammar (one policy per point):
//
//	[P%][N*]action[(arg)]
//
//	25%error(disk full)   → 25% of hits return an error wrapping ErrInjected
//	3*delay(5ms)          → first three hits sleep 5ms, then the point is inert
//	10%2*panic            → 10% of hits panic, at most twice
//	off                   → disable (Configure only)
//
// Actions: error(msg), delay(duration), panic[(msg)]. Multiple points are
// configured at once with a comma-separated list of name=spec pairs
// (Configure), e.g. HDC_FAILPOINTS="store/wal-append=error(enospc),pipeline/worker=2%delay(10ms)".
package failpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical point names. Each constant is a hook that exists in the code
// today; the string form ("layer/site") is what Configure, -failpoints and
// /failpointz accept. See DESIGN.md §"The dependability layer" for what each
// site makes fail.
const (
	// StoreWALAppend fails the write-ahead-log append inside Store.Add,
	// tripping the store's sticky read-only state.
	StoreWALAppend = "store/wal-append"
	// StoreSegmentOpen fails opening/mmapping a segment file — at Open, or
	// during compaction's post-commit reopen (which also goes sticky).
	StoreSegmentOpen = "store/segment-open"
	// StoreCompactRename fails the segment rename that precedes the manifest
	// commit; compaction aborts but the store stays healthy.
	StoreCompactRename = "store/compact-rename"
	// StoreLookup injects into the mapped lookup path (Store.LookupKZWith) —
	// a delay here is the "store stall" of E23.
	StoreLookup = "store/lookup"
	// PipelineWorker injects into the worker dispatch loop, before the
	// recognizer runs: a delay slows every worker, an error completes the
	// frame with that error.
	PipelineWorker = "pipeline/worker"
	// PipelineRingForward injects into Source.forward between the ingest
	// ring and Stream.Submit; an error sheds the frame (counted as dropped).
	PipelineRingForward = "pipeline/ring-forward"
	// ServerDecode fails wire decoding of request frames (400 to the client).
	ServerDecode = "server/decode"
	// ServerSession fails stream/gesture session creation (503 to the client).
	ServerSession = "server/session"
	// GraphDispatch injects into a graph node's forwarder, between its input
	// edge and the node's pool stream: an error rides the message to the sink
	// as its verdict (the node stage is skipped, ownership is unchanged).
	GraphDispatch = "graph/dispatch"
	// GraphEdgeForward injects into every graph edge's push, before the
	// policy runs: an error sheds the message at that edge (released and
	// counted exactly like a policy shed).
	GraphEdgeForward = "graph/edge-forward"
)

// ErrInjected is the sentinel all injected errors wrap; callers and tests
// match with errors.Is(err, failpoint.ErrInjected).
var ErrInjected = errors.New("failpoint: injected fault")

// Error is the concrete error returned by an armed error() policy.
type Error struct {
	Name string // failpoint name that fired
	Msg  string // operator-supplied message, "" if none
}

// Error formats as "failpoint store/wal-append: msg".
func (e *Error) Error() string {
	if e.Msg == "" {
		return "failpoint " + e.Name
	}
	return "failpoint " + e.Name + ": " + e.Msg
}

// Unwrap ties every injected error to ErrInjected.
func (e *Error) Unwrap() error { return ErrInjected }

const (
	actError = iota
	actDelay
	actPanic
)

// policy is one parsed spec.
type policy struct {
	pct    float64       // firing probability in [0,1]; 1 when no P% prefix
	count  int64         // remaining firings; <0 = unlimited
	action int           // actError, actDelay, actPanic
	msg    string        // error()/panic() message
	delay  time.Duration // delay() duration
}

// point is one enabled failpoint.
type point struct {
	name  string
	spec  string
	hits  atomic.Uint64 // Inject consultations while enabled
	fired atomic.Uint64 // policy activations
	mu    sync.Mutex    // guards pol.count and rng
	pol   policy
	rng   *rand.Rand
}

// Status is the observable state of one enabled failpoint, as reported by
// List and /failpointz.
type Status struct {
	Name  string `json:"name"`
	Spec  string `json:"spec"`
	Hits  uint64 `json:"hits"`
	Fired uint64 `json:"fired"`
}

var (
	// armed counts enabled failpoints process-wide. The disabled fast path
	// of Inject is exactly one load of this.
	armed  atomic.Int32
	regMu  sync.Mutex
	seed   atomic.Int64
	points sync.Map // name → *point
)

// Inject consults the failpoint named name. It returns nil (after an
// optional injected delay) unless an error policy fires, in which case the
// returned error wraps ErrInjected. With no failpoints enabled anywhere it
// is a single atomic load.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	v, ok := points.Load(name)
	if !ok {
		return nil
	}
	return v.(*point).eval()
}

// eval applies the point's policy for one hit.
func (p *point) eval() error {
	p.hits.Add(1)
	p.mu.Lock()
	if p.pol.count == 0 {
		p.mu.Unlock()
		return nil
	}
	if p.pol.pct < 1 && p.rng.Float64() >= p.pol.pct {
		p.mu.Unlock()
		return nil
	}
	if p.pol.count > 0 {
		p.pol.count--
	}
	pol := p.pol
	p.mu.Unlock()
	p.fired.Add(1)
	switch pol.action {
	case actDelay:
		time.Sleep(pol.delay)
		return nil
	case actPanic:
		if pol.msg != "" {
			panic("failpoint " + p.name + ": " + pol.msg)
		}
		panic("failpoint " + p.name)
	default:
		return &Error{Name: p.name, Msg: pol.msg}
	}
}

// Enable arms the failpoint named name with the given spec, replacing any
// existing policy for it.
func Enable(name, spec string) error {
	pol, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("failpoint %s: %w", name, err)
	}
	if name == "" {
		return errors.New("failpoint: empty name")
	}
	pt := &point{name: name, spec: spec, pol: pol}
	pt.rng = rand.New(rand.NewSource(seed.Add(1) ^ time.Now().UnixNano()))
	regMu.Lock()
	_, existed := points.Load(name)
	points.Store(name, pt)
	if !existed {
		armed.Add(1)
	}
	regMu.Unlock()
	return nil
}

// Disable disarms the failpoint named name; disabling an unknown name is a
// no-op.
func Disable(name string) {
	regMu.Lock()
	if _, ok := points.Load(name); ok {
		points.Delete(name)
		armed.Add(-1)
	}
	regMu.Unlock()
}

// DisableAll disarms every failpoint. Tests that enable failpoints should
// `defer failpoint.DisableAll()`.
func DisableAll() {
	regMu.Lock()
	points.Range(func(k, _ any) bool {
		points.Delete(k)
		armed.Add(-1)
		return true
	})
	regMu.Unlock()
}

// List reports every enabled failpoint, sorted by name.
func List() []Status {
	var out []Status
	points.Range(func(_, v any) bool {
		p := v.(*point)
		out = append(out, Status{Name: p.name, Spec: p.spec, Hits: p.hits.Load(), Fired: p.fired.Load()})
		return true
	})
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Configure arms failpoints from a comma-separated list of name=spec pairs
// (the format of the HDC_FAILPOINTS environment variable and the hdcserve
// -failpoints flag). A spec of "off" disables the point. Empty input is a
// no-op.
func Configure(s string) error {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("failpoint: %q is not name=spec", part)
		}
		name, spec = strings.TrimSpace(name), strings.TrimSpace(spec)
		if spec == "off" {
			Disable(name)
			continue
		}
		if err := Enable(name, spec); err != nil {
			return err
		}
	}
	return nil
}

// parseSpec parses "[P%][N*]action[(arg)]".
func parseSpec(s string) (policy, error) {
	pol := policy{pct: 1, count: -1}
	rest := strings.TrimSpace(s)
	if rest == "" {
		return pol, errors.New("empty spec")
	}
	if i := strings.Index(rest, "%"); i >= 0 {
		pct, err := strconv.ParseFloat(rest[:i], 64)
		if err != nil || pct < 0 || pct > 100 {
			return pol, fmt.Errorf("bad probability %q", rest[:i])
		}
		pol.pct = pct / 100
		rest = rest[i+1:]
	}
	if i := strings.Index(rest, "*"); i >= 0 {
		n, err := strconv.ParseInt(rest[:i], 10, 64)
		if err != nil || n < 1 {
			return pol, fmt.Errorf("bad count %q", rest[:i])
		}
		pol.count = n
		rest = rest[i+1:]
	}
	action, arg := rest, ""
	if i := strings.Index(rest, "("); i >= 0 {
		if !strings.HasSuffix(rest, ")") {
			return pol, fmt.Errorf("unterminated argument in %q", rest)
		}
		action, arg = rest[:i], rest[i+1:len(rest)-1]
	}
	switch action {
	case "error":
		pol.action = actError
		pol.msg = arg
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return pol, fmt.Errorf("bad delay %q", arg)
		}
		pol.action = actDelay
		pol.delay = d
	case "panic":
		pol.action = actPanic
		pol.msg = arg
	default:
		return pol, fmt.Errorf("unknown action %q", action)
	}
	return pol, nil
}
