package failpoint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// inventory_test.go keeps the three copies of the failpoint catalog in
// lock-step: the constants declared in this package (the canonical
// inventory, enforced at every Inject site by the failpointcheck
// analyzer), the Inject sites in the production tree, and the prose
// catalog in DESIGN.md's dependability section. A failpoint that is
// registered but never injected is dead weight; one that is injected but
// undocumented is invisible to operators reading DESIGN.md.

// inventoryConsts parses this package's sources and returns the
// package-level string constants: ident name → point name.
func inventoryConsts(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for i, name := range vs.Names {
						if i >= len(vs.Values) {
							continue
						}
						lit, ok := vs.Values[i].(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						val, err := strconv.Unquote(lit.Value)
						if err != nil {
							continue
						}
						out[name.Name] = val
					}
				}
			}
		}
	}
	return out
}

// injectArgs scans the repo's non-test production sources for
// failpoint.Inject call arguments (constant selector or string literal).
func injectArgs(t *testing.T, root string) map[string]bool {
	t.Helper()
	re := regexp.MustCompile(`failpoint\.Inject\(\s*([A-Za-z0-9_.]+|"[^"]*")\s*\)`)
	args := make(map[string]bool)
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			switch info.Name() {
			case ".git", "testdata", "third_party":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range re.FindAllStringSubmatch(string(data), -1) {
			args[m[1]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return args
}

func TestInventoryMatchesSitesAndDesignDoc(t *testing.T) {
	consts := inventoryConsts(t)
	if len(consts) == 0 {
		t.Fatal("no string constants found in the failpoint package")
	}

	root := filepath.Join("..", "..")
	args := injectArgs(t, root)

	design, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	section := string(design)
	if i := strings.Index(section, "## The dependability layer"); i >= 0 {
		section = section[i:]
		if j := strings.Index(section[2:], "\n## "); j >= 0 {
			section = section[:j+2]
		}
	} else {
		t.Fatal("DESIGN.md has no dependability-layer section")
	}

	for ident, name := range consts {
		if !args["failpoint."+ident] && !args[strconv.Quote(name)] {
			t.Errorf("registered failpoint %s (%q) has no Inject site in the tree; drop the constant or add the hook", ident, name)
		}
		if !strings.Contains(section, "`"+name+"`") {
			t.Errorf("failpoint %q is injected but not documented in DESIGN.md's dependability section", name)
		}
	}

	// The converse: every constant-named site uses a registered constant.
	// The failpointcheck analyzer proves this at build time; repeating the
	// string-literal half here keeps the test meaningful under plain
	// `go test` where the analyzer has not run.
	byName := make(map[string]bool, len(consts))
	for _, name := range consts {
		byName[name] = true
	}
	for arg := range args {
		if !strings.HasPrefix(arg, `"`) {
			continue
		}
		name, err := strconv.Unquote(arg)
		if err != nil {
			continue
		}
		if !byName[name] {
			t.Errorf("Inject site uses literal %q which is not in the registered inventory", name)
		}
	}
}
