// Package human models the collaborators of the paper's user stories (§II):
// the orchard supervisor (well trained), orchard worker (partially trained)
// and orchard visitor (untrained). Each role answers drone requests with a
// role-dependent probability of producing the correct marshalling sign,
// signing precision (arm jitter) and reaction latency — the behavioural
// substrate for the negotiation and mission experiments.
package human

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hdc/internal/body"
	"hdc/internal/geom"
)

// Role is the training level of a collaborator. Enums start at 1.
type Role int

// The paper's three user-story characters.
const (
	// RoleSupervisor is well trained: prompt, accurate signing.
	RoleSupervisor Role = iota + 1
	// RoleWorker is partially trained: mostly accurate, slower.
	RoleWorker
	// RoleVisitor is untrained: frequently ignores the drone or signs
	// imprecisely.
	RoleVisitor
)

// Roles lists all roles.
func Roles() []Role { return []Role{RoleSupervisor, RoleWorker, RoleVisitor} }

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleSupervisor:
		return "Supervisor"
	case RoleWorker:
		return "Worker"
	case RoleVisitor:
		return "Visitor"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Valid reports whether r is a defined role.
func (r Role) Valid() bool { return r >= RoleSupervisor && r <= RoleVisitor }

// Profile is a role's behavioural parameters.
type Profile struct {
	// AttentionProb is the probability of responding to a poke at all.
	AttentionProb float64
	// CorrectSignProb is the probability that the produced sign is the
	// intended one (errors produce a uniformly random other sign).
	CorrectSignProb float64
	// JitterStdDeg is the arm-angle imprecision when signing.
	JitterStdDeg float64
	// ReactionMean is the mean delay before the sign is shown.
	ReactionMean time.Duration
	// ReactionStd is the spread of that delay.
	ReactionStd time.Duration
	// GrantProb is the probability the human answers Yes to an area
	// request (vs No).
	GrantProb float64
}

// DefaultProfile returns the calibrated behaviour for a role.
func DefaultProfile(r Role) (Profile, error) {
	switch r {
	case RoleSupervisor:
		return Profile{
			AttentionProb:   0.98,
			CorrectSignProb: 0.99,
			JitterStdDeg:    2,
			ReactionMean:    1200 * time.Millisecond,
			ReactionStd:     300 * time.Millisecond,
			GrantProb:       0.9,
		}, nil
	case RoleWorker:
		return Profile{
			AttentionProb:   0.92,
			CorrectSignProb: 0.93,
			JitterStdDeg:    5,
			ReactionMean:    2 * time.Second,
			ReactionStd:     700 * time.Millisecond,
			GrantProb:       0.8,
		}, nil
	case RoleVisitor:
		return Profile{
			AttentionProb:   0.7,
			CorrectSignProb: 0.75,
			JitterStdDeg:    10,
			ReactionMean:    3500 * time.Millisecond,
			ReactionStd:     1500 * time.Millisecond,
			GrantProb:       0.65,
		}, nil
	default:
		return Profile{}, fmt.Errorf("human: invalid role %d", int(r))
	}
}

// Collaborator is one human in the environment.
//
// Concurrency: a collaborator in a shared world may be observed by one drone
// while the world stepper moves them, so all behavioural methods and the
// Position/SetPosition/Heading/SetFacing accessors synchronise on an
// internal mutex. The exported Pos/Facing fields remain for single-goroutine
// construction and tests; concurrent code must go through the accessors.
type Collaborator struct {
	Name    string
	Role    Role
	Profile Profile
	Pos     geom.Vec2 // ground position (m); see concurrency note above
	Facing  geom.Heading

	mu  sync.Mutex
	rng *rand.Rand
}

// Position returns the collaborator's ground position.
func (c *Collaborator) Position() geom.Vec2 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Pos
}

// SetPosition moves the collaborator.
func (c *Collaborator) SetPosition(p geom.Vec2) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Pos = p
}

// Heading returns the direction the collaborator is facing.
func (c *Collaborator) Heading() geom.Heading {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Facing
}

// SetFacing turns the collaborator.
func (c *Collaborator) SetFacing(h geom.Heading) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Facing = h
}

// New creates a collaborator with the role's default profile. rng must be
// non-nil: every behavioural draw flows through it for reproducibility.
func New(name string, role Role, pos geom.Vec2, rng *rand.Rand) (*Collaborator, error) {
	if rng == nil {
		return nil, errors.New("human: nil rng")
	}
	prof, err := DefaultProfile(role)
	if err != nil {
		return nil, err
	}
	return &Collaborator{Name: name, Role: role, Profile: prof, Pos: pos, rng: rng}, nil
}

// Response is what the collaborator does after being poked and asked.
type Response struct {
	Responded bool          // false: the human ignored the drone
	Sign      body.Sign     // sign actually produced (may be wrong!)
	Intended  body.Sign     // sign the human meant
	Latency   time.Duration // delay before the sign was shown
	Jitter    float64       // arm jitter applied (degrees)
}

// RespondAttention decides whether the human acknowledges a poke and, if
// so, produces the AttentionGained sign.
func (c *Collaborator) RespondAttention() Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() > c.Profile.AttentionProb {
		return Response{Responded: false}
	}
	return c.produce(body.SignAttention)
}

// RespondAreaRequest decides the answer to "may I occupy your area?"
// (Fig 3): Yes with GrantProb, otherwise No — then realises the sign with
// role-dependent imperfection.
func (c *Collaborator) RespondAreaRequest() Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	intended := body.SignNo
	if c.rng.Float64() < c.Profile.GrantProb {
		intended = body.SignYes
	}
	return c.produce(intended)
}

// produce realises an intended sign with the role's error model. Callers
// hold c.mu.
func (c *Collaborator) produce(intended body.Sign) Response {
	actual := intended
	if c.rng.Float64() > c.Profile.CorrectSignProb {
		actual = c.randomOtherSign(intended)
	}
	lat := c.Profile.ReactionMean + time.Duration(c.rng.NormFloat64()*float64(c.Profile.ReactionStd))
	if lat < 0 {
		lat = 0
	}
	return Response{
		Responded: true,
		Sign:      actual,
		Intended:  intended,
		Latency:   lat,
		Jitter:    c.rng.NormFloat64() * c.Profile.JitterStdDeg,
	}
}

func (c *Collaborator) randomOtherSign(not body.Sign) body.Sign {
	options := make([]body.Sign, 0, 2)
	for _, s := range body.AllSigns() {
		if s != not {
			options = append(options, s)
		}
	}
	return options[c.rng.Intn(len(options))]
}

// BodyOptions converts a response into figure options for rendering.
func (r Response) BodyOptions() body.Options {
	return body.Options{ArmJitterDeg: r.Jitter}
}

// Walk moves the collaborator by a random step of at most stepM meters —
// the orchard world uses it to circulate workers between trees.
func (c *Collaborator) Walk(stepM float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.walk(stepM)
}

// WalkWithin is Walk with the destination clamped to the [lo, hi] rectangle,
// performed atomically so a concurrent observer never sees the unclamped
// intermediate position.
func (c *Collaborator) WalkWithin(stepM float64, lo, hi geom.Vec2) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.walk(stepM)
	c.Pos.X = geom.Clamp(c.Pos.X, lo.X, hi.X)
	c.Pos.Y = geom.Clamp(c.Pos.Y, lo.Y, hi.Y)
}

// walk implements the random step; callers hold c.mu.
func (c *Collaborator) walk(stepM float64) {
	if stepM <= 0 {
		return
	}
	ang := c.rng.Float64() * 2 * 3.141592653589793
	dist := c.rng.Float64() * stepM
	c.Pos = c.Pos.Add(geom.V2(dist, 0).Rotate(ang))
	c.Facing = geom.HeadingOf(geom.V2(dist, 0).Rotate(ang))
}
