// Package human models the collaborators of the paper's user stories (§II):
// the orchard supervisor (well trained), orchard worker (partially trained)
// and orchard visitor (untrained). Each role answers drone requests with a
// role-dependent probability of producing the correct marshalling sign,
// signing precision (arm jitter) and reaction latency — the behavioural
// substrate for the negotiation and mission experiments.
package human

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hdc/internal/body"
	"hdc/internal/geom"
)

// Role is the training level of a collaborator. Enums start at 1.
type Role int

// The paper's three user-story characters.
const (
	// RoleSupervisor is well trained: prompt, accurate signing.
	RoleSupervisor Role = iota + 1
	// RoleWorker is partially trained: mostly accurate, slower.
	RoleWorker
	// RoleVisitor is untrained: frequently ignores the drone or signs
	// imprecisely.
	RoleVisitor
)

// Roles lists all roles.
func Roles() []Role { return []Role{RoleSupervisor, RoleWorker, RoleVisitor} }

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleSupervisor:
		return "Supervisor"
	case RoleWorker:
		return "Worker"
	case RoleVisitor:
		return "Visitor"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Valid reports whether r is a defined role.
func (r Role) Valid() bool { return r >= RoleSupervisor && r <= RoleVisitor }

// Profile is a role's behavioural parameters.
type Profile struct {
	// AttentionProb is the probability of responding to a poke at all.
	AttentionProb float64
	// CorrectSignProb is the probability that the produced sign is the
	// intended one (errors produce a uniformly random other sign).
	CorrectSignProb float64
	// JitterStdDeg is the arm-angle imprecision when signing.
	JitterStdDeg float64
	// ReactionMean is the mean delay before the sign is shown.
	ReactionMean time.Duration
	// ReactionStd is the spread of that delay.
	ReactionStd time.Duration
	// GrantProb is the probability the human answers Yes to an area
	// request (vs No).
	GrantProb float64
}

// DefaultProfile returns the calibrated behaviour for a role.
func DefaultProfile(r Role) (Profile, error) {
	switch r {
	case RoleSupervisor:
		return Profile{
			AttentionProb:   0.98,
			CorrectSignProb: 0.99,
			JitterStdDeg:    2,
			ReactionMean:    1200 * time.Millisecond,
			ReactionStd:     300 * time.Millisecond,
			GrantProb:       0.9,
		}, nil
	case RoleWorker:
		return Profile{
			AttentionProb:   0.92,
			CorrectSignProb: 0.93,
			JitterStdDeg:    5,
			ReactionMean:    2 * time.Second,
			ReactionStd:     700 * time.Millisecond,
			GrantProb:       0.8,
		}, nil
	case RoleVisitor:
		return Profile{
			AttentionProb:   0.7,
			CorrectSignProb: 0.75,
			JitterStdDeg:    10,
			ReactionMean:    3500 * time.Millisecond,
			ReactionStd:     1500 * time.Millisecond,
			GrantProb:       0.65,
		}, nil
	default:
		return Profile{}, fmt.Errorf("human: invalid role %d", int(r))
	}
}

// Collaborator is one human in the environment.
type Collaborator struct {
	Name    string
	Role    Role
	Profile Profile
	Pos     geom.Vec2 // ground position (m)
	Facing  geom.Heading

	rng *rand.Rand
}

// New creates a collaborator with the role's default profile. rng must be
// non-nil: every behavioural draw flows through it for reproducibility.
func New(name string, role Role, pos geom.Vec2, rng *rand.Rand) (*Collaborator, error) {
	if rng == nil {
		return nil, errors.New("human: nil rng")
	}
	prof, err := DefaultProfile(role)
	if err != nil {
		return nil, err
	}
	return &Collaborator{Name: name, Role: role, Profile: prof, Pos: pos, rng: rng}, nil
}

// Response is what the collaborator does after being poked and asked.
type Response struct {
	Responded bool          // false: the human ignored the drone
	Sign      body.Sign     // sign actually produced (may be wrong!)
	Intended  body.Sign     // sign the human meant
	Latency   time.Duration // delay before the sign was shown
	Jitter    float64       // arm jitter applied (degrees)
}

// RespondAttention decides whether the human acknowledges a poke and, if
// so, produces the AttentionGained sign.
func (c *Collaborator) RespondAttention() Response {
	if c.rng.Float64() > c.Profile.AttentionProb {
		return Response{Responded: false}
	}
	return c.produce(body.SignAttention)
}

// RespondAreaRequest decides the answer to "may I occupy your area?"
// (Fig 3): Yes with GrantProb, otherwise No — then realises the sign with
// role-dependent imperfection.
func (c *Collaborator) RespondAreaRequest() Response {
	intended := body.SignNo
	if c.rng.Float64() < c.Profile.GrantProb {
		intended = body.SignYes
	}
	return c.produce(intended)
}

// produce realises an intended sign with the role's error model.
func (c *Collaborator) produce(intended body.Sign) Response {
	actual := intended
	if c.rng.Float64() > c.Profile.CorrectSignProb {
		actual = c.randomOtherSign(intended)
	}
	lat := c.Profile.ReactionMean + time.Duration(c.rng.NormFloat64()*float64(c.Profile.ReactionStd))
	if lat < 0 {
		lat = 0
	}
	return Response{
		Responded: true,
		Sign:      actual,
		Intended:  intended,
		Latency:   lat,
		Jitter:    c.rng.NormFloat64() * c.Profile.JitterStdDeg,
	}
}

func (c *Collaborator) randomOtherSign(not body.Sign) body.Sign {
	options := make([]body.Sign, 0, 2)
	for _, s := range body.AllSigns() {
		if s != not {
			options = append(options, s)
		}
	}
	return options[c.rng.Intn(len(options))]
}

// BodyOptions converts a response into figure options for rendering.
func (r Response) BodyOptions() body.Options {
	return body.Options{ArmJitterDeg: r.Jitter}
}

// Walk moves the collaborator by a random step of at most stepM meters —
// the orchard world uses it to circulate workers between trees.
func (c *Collaborator) Walk(stepM float64) {
	if stepM <= 0 {
		return
	}
	ang := c.rng.Float64() * 2 * 3.141592653589793
	dist := c.rng.Float64() * stepM
	c.Pos = c.Pos.Add(geom.V2(dist, 0).Rotate(ang))
	c.Facing = geom.HeadingOf(geom.V2(dist, 0).Rotate(ang))
}
