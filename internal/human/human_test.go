package human

import (
	"math/rand"
	"testing"

	"hdc/internal/body"
	"hdc/internal/geom"
)

func TestRoleStringsAndValidity(t *testing.T) {
	for _, r := range Roles() {
		if !r.Valid() || r.String() == "" {
			t.Fatalf("role %d invalid", int(r))
		}
	}
	if Role(0).Valid() {
		t.Fatal("zero role should be invalid")
	}
	if Role(9).String() == "" {
		t.Fatal("unknown role string empty")
	}
}

func TestDefaultProfiles(t *testing.T) {
	sup, err := DefaultProfile(RoleSupervisor)
	if err != nil {
		t.Fatal(err)
	}
	wrk, _ := DefaultProfile(RoleWorker)
	vis, _ := DefaultProfile(RoleVisitor)
	// Training gradient: supervisor ≥ worker ≥ visitor on every competence
	// axis.
	if !(sup.AttentionProb > wrk.AttentionProb && wrk.AttentionProb > vis.AttentionProb) {
		t.Fatal("attention gradient violated")
	}
	if !(sup.CorrectSignProb > wrk.CorrectSignProb && wrk.CorrectSignProb > vis.CorrectSignProb) {
		t.Fatal("accuracy gradient violated")
	}
	if !(sup.ReactionMean < wrk.ReactionMean && wrk.ReactionMean < vis.ReactionMean) {
		t.Fatal("latency gradient violated")
	}
	if !(sup.JitterStdDeg < wrk.JitterStdDeg && wrk.JitterStdDeg < vis.JitterStdDeg) {
		t.Fatal("jitter gradient violated")
	}
	if _, err := DefaultProfile(Role(0)); err == nil {
		t.Fatal("invalid role should fail")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", RoleWorker, geom.V2(0, 0), nil); err == nil {
		t.Fatal("nil rng should fail")
	}
	if _, err := New("x", Role(0), geom.V2(0, 0), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid role should fail")
	}
}

func TestRespondAttentionStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := New("w", RoleWorker, geom.V2(0, 0), rng)
	if err != nil {
		t.Fatal(err)
	}
	responded, correct := 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		r := c.RespondAttention()
		if !r.Responded {
			continue
		}
		responded++
		if r.Sign == body.SignAttention {
			correct++
		}
		if r.Intended != body.SignAttention {
			t.Fatal("intent must be Attention")
		}
		if r.Latency < 0 {
			t.Fatal("negative latency")
		}
	}
	frac := float64(responded) / trials
	if frac < 0.88 || frac > 0.96 {
		t.Fatalf("worker attention rate %v outside [0.88,0.96]", frac)
	}
	acc := float64(correct) / float64(responded)
	if acc < 0.89 || acc > 0.97 {
		t.Fatalf("worker sign accuracy %v outside [0.89,0.97]", acc)
	}
}

func TestRespondAreaRequestGrantRate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, _ := New("s", RoleSupervisor, geom.V2(0, 0), rng)
	yes := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		r := c.RespondAreaRequest()
		if !r.Responded {
			t.Fatal("area request responses always materialise (ignoring is modelled at attention)")
		}
		if r.Intended == body.SignYes {
			yes++
		}
	}
	frac := float64(yes) / trials
	if frac < 0.86 || frac > 0.94 {
		t.Fatalf("supervisor grant rate %v outside [0.86,0.94]", frac)
	}
}

func TestWrongSignIsNeverIntended(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, _ := New("v", RoleVisitor, geom.V2(0, 0), rng)
	sawWrong := false
	for i := 0; i < 3000; i++ {
		r := c.RespondAreaRequest()
		if r.Sign != r.Intended {
			sawWrong = true
			if r.Sign == r.Intended {
				t.Fatal("inconsistent")
			}
			if !r.Sign.Valid() {
				t.Fatal("wrong sign must still be a valid sign")
			}
		}
	}
	if !sawWrong {
		t.Fatal("visitor error model never produced a wrong sign in 3000 trials")
	}
}

func TestBodyOptionsCarriesJitter(t *testing.T) {
	r := Response{Jitter: 4.2}
	if r.BodyOptions().ArmJitterDeg != 4.2 {
		t.Fatal("jitter not forwarded")
	}
}

func TestWalkMovesWithinStep(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c, _ := New("w", RoleWorker, geom.V2(10, 10), rng)
	for i := 0; i < 100; i++ {
		before := c.Pos
		c.Walk(1.5)
		if d := c.Pos.Dist(before); d > 1.5+1e-9 {
			t.Fatalf("walk step %v exceeds limit", d)
		}
	}
	// Zero step is a no-op.
	before := c.Pos
	c.Walk(0)
	if c.Pos != before {
		t.Fatal("zero step moved")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []Response {
		rng := rand.New(rand.NewSource(42))
		c, _ := New("d", RoleVisitor, geom.V2(0, 0), rng)
		var out []Response
		for i := 0; i < 50; i++ {
			out = append(out, c.RespondAreaRequest())
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("behaviour not reproducible at %d", i)
		}
	}
}
