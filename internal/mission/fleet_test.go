package mission

import (
	"math/rand"
	"testing"
	"time"

	"hdc/internal/core"
	"hdc/internal/geom"
	"hdc/internal/orchard"
)

func TestPartitionTrapsCoversAll(t *testing.T) {
	o := newWorld(t, orchard.Config{Rows: 4, Cols: 6, TrapEvery: 2}, 9)
	for _, k := range []int{1, 2, 3, 5} {
		parts := PartitionTraps(o.Traps, k)
		if len(parts) != k {
			t.Fatalf("k=%d: %d partitions", k, len(parts))
		}
		seen := map[int]int{}
		total := 0
		for _, p := range parts {
			for _, tr := range p {
				seen[tr.ID]++
				total++
			}
		}
		if total != len(o.Traps) {
			t.Fatalf("k=%d: partition covers %d/%d traps", k, total, len(o.Traps))
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("k=%d: trap %d assigned %d times", k, id, n)
			}
		}
		// Balance: no partition more than twice the ideal share.
		ideal := len(o.Traps) / k
		for i, p := range parts {
			if ideal > 0 && len(p) > 2*ideal+1 {
				t.Fatalf("k=%d: partition %d has %d traps (ideal %d)", k, i, len(p), ideal)
			}
		}
	}
	if PartitionTraps(nil, 0) != nil {
		t.Fatal("k=0 should give nil")
	}
}

func TestNewFleetValidation(t *testing.T) {
	o := newWorld(t, orchard.Config{}, 10)
	mk := func(i int) (*core.System, error) { return core.NewSystem() }
	if _, err := NewFleet(0, o, Config{}, mk); err == nil {
		t.Fatal("fleet size 0 should fail")
	}
	if _, err := NewFleet(1, nil, Config{}, mk); err == nil {
		t.Fatal("nil world should fail")
	}
	if _, err := NewFleet(1, o, Config{}, nil); err == nil {
		t.Fatal("nil factory should fail")
	}
}

func TestFleetRunCoversWorld(t *testing.T) {
	world, err := orchard.Generate(orchard.Config{
		Rows: 3, Cols: 4, TrapEvery: 2, Humans: 2,
	}, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	world.Step(time.Hour)
	fleet, err := NewFleet(2, world, Config{}, func(i int) (*core.System, error) {
		return core.NewSystem(
			core.WithSeed(int64(200+i)),
			core.WithHome(geom.V3(-5-float64(3*i), -5, 0)),
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrapsTotal != 6 {
		t.Fatalf("fleet covers %d traps, want 6", rep.TrapsTotal)
	}
	if rep.TrapsRead == 0 {
		t.Fatal("fleet read nothing")
	}
	if len(rep.PerDrone) != 2 {
		t.Fatalf("per-drone reports: %d", len(rep.PerDrone))
	}
	if rep.MaxDroneTime <= 0 {
		t.Fatal("makespan missing")
	}
	if rep.MeanBatteryUsed <= 0 {
		t.Fatal("battery accounting missing")
	}
	// Aggregates are consistent with per-drone reports.
	var reads int
	for _, r := range rep.PerDrone {
		reads += r.TrapsRead
	}
	if reads != rep.TrapsRead {
		t.Fatalf("aggregate reads %d != sum %d", rep.TrapsRead, reads)
	}
}

func TestFleetSharesMakespanShrinks(t *testing.T) {
	run := func(n int) time.Duration {
		world, err := orchard.Generate(orchard.Config{
			Rows: 4, Cols: 6, TrapEvery: 2, Humans: -1,
		}, rand.New(rand.NewSource(13)))
		if err != nil {
			t.Fatal(err)
		}
		fleet, err := NewFleet(n, world, Config{}, func(i int) (*core.System, error) {
			return core.NewSystem(
				core.WithSeed(int64(300+i)),
				core.WithHome(geom.V3(-5-float64(3*i), -5, 0)),
			)
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fleet.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.TrapsRead != rep.TrapsTotal {
			t.Fatalf("n=%d: %d/%d traps read in human-free world", n, rep.TrapsRead, rep.TrapsTotal)
		}
		return rep.MaxDroneTime
	}
	t1 := run(1)
	t3 := run(3)
	if t3 >= t1 {
		t.Fatalf("fleet makespan did not shrink: 1 drone %v vs 3 drones %v", t1, t3)
	}
}
