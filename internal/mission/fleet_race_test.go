package mission

import (
	"math/rand"
	"testing"
	"time"

	"hdc/internal/core"
	"hdc/internal/geom"
	"hdc/internal/orchard"
)

// TestFleetConcurrentNegotiations runs a 4-drone fleet over a busy world —
// enough humans that several drones negotiate at once — and checks the
// aggregate report stays consistent. The per-drone mission loops run in
// parallel goroutines sharing the orchard, so this is the race-detector
// workout for the world lock, the collaborator locks and the per-system
// recognition stacks.
func TestFleetConcurrentNegotiations(t *testing.T) {
	world, err := orchard.Generate(orchard.Config{
		Rows: 4, Cols: 6, TrapEvery: 2, Humans: 6,
	}, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	world.Step(30 * time.Minute)

	const drones = 4
	fleet, err := NewFleet(drones, world, Config{}, func(i int) (*core.System, error) {
		return core.NewSystem(
			core.WithSeed(int64(400+i)),
			core.WithHome(geom.V3(-4-float64(3*i), -4, 0)),
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.PerDrone) != drones {
		t.Fatalf("per-drone reports: %d, want %d", len(rep.PerDrone), drones)
	}
	var traps, read, neg, granted, denied, silent, aborted int
	for _, r := range rep.PerDrone {
		traps += r.TrapsTotal
		read += r.TrapsRead
		neg += r.Negotiations
		granted += r.Granted
		denied += r.Denied
		silent += r.NoResponse
		aborted += r.Aborted
	}
	if traps != rep.TrapsTotal || read != rep.TrapsRead || neg != rep.Negotiations ||
		granted != rep.Granted || denied != rep.Denied || silent != rep.NoResponse ||
		aborted != rep.Aborted {
		t.Fatalf("aggregate drifted from per-drone sums: %+v", rep)
	}
	if rep.TrapsTotal != 12 {
		t.Fatalf("fleet covered %d traps, want 12", rep.TrapsTotal)
	}
	if rep.TrapsRead == 0 {
		t.Fatal("no traps read")
	}
	// Every negotiation resolved to exactly one outcome.
	if granted+denied+silent+aborted < neg {
		t.Fatalf("negotiations unaccounted: %d outcomes for %d negotiations",
			granted+denied+silent+aborted, neg)
	}
	if rep.MaxDroneTime <= 0 {
		t.Fatal("makespan missing")
	}
}

// TestFleetSequentialStillDeterministic pins the single-drone path: with one
// mission there is no interleaving, so two identical runs must agree
// event-for-event — the reproducibility contract the experiments rely on.
func TestFleetSequentialStillDeterministic(t *testing.T) {
	run := func() (FleetReport, error) {
		world, err := orchard.Generate(orchard.Config{
			Rows: 3, Cols: 4, TrapEvery: 2, Humans: 2,
		}, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		world.Step(time.Hour)
		fleet, err := NewFleet(1, world, Config{}, func(i int) (*core.System, error) {
			return core.NewSystem(core.WithSeed(99), core.WithHome(geom.V3(-5, -5, 0)))
		})
		if err != nil {
			t.Fatal(err)
		}
		return fleet.Run()
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.TrapsRead != b.TrapsRead || a.Negotiations != b.Negotiations ||
		a.Granted != b.Granted || a.Denied != b.Denied ||
		a.MaxDroneTime != b.MaxDroneTime {
		t.Fatalf("single-drone fleet runs diverged:\n%+v\n%+v", a, b)
	}
}
