package mission

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hdc/internal/core"
	"hdc/internal/geom"
	"hdc/internal/orchard"
	"hdc/internal/pipeline"
)

// TestFleetConcurrentNegotiations runs a 4-drone fleet over a busy world —
// enough humans that several drones negotiate at once — and checks the
// aggregate report stays consistent. The per-drone mission loops run in
// parallel goroutines sharing the orchard, so this is the race-detector
// workout for the world lock, the collaborator locks and the per-system
// recognition stacks.
func TestFleetConcurrentNegotiations(t *testing.T) {
	world, err := orchard.Generate(orchard.Config{
		Rows: 4, Cols: 6, TrapEvery: 2, Humans: 6,
	}, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	world.Step(30 * time.Minute)

	const drones = 4
	fleet, err := NewFleet(drones, world, Config{}, func(i int) (*core.System, error) {
		return core.NewSystem(
			core.WithSeed(int64(400+i)),
			core.WithHome(geom.V3(-4-float64(3*i), -4, 0)),
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.PerDrone) != drones {
		t.Fatalf("per-drone reports: %d, want %d", len(rep.PerDrone), drones)
	}
	var traps, read, neg, granted, denied, silent, aborted int
	for _, r := range rep.PerDrone {
		traps += r.TrapsTotal
		read += r.TrapsRead
		neg += r.Negotiations
		granted += r.Granted
		denied += r.Denied
		silent += r.NoResponse
		aborted += r.Aborted
	}
	if traps != rep.TrapsTotal || read != rep.TrapsRead || neg != rep.Negotiations ||
		granted != rep.Granted || denied != rep.Denied || silent != rep.NoResponse ||
		aborted != rep.Aborted {
		t.Fatalf("aggregate drifted from per-drone sums: %+v", rep)
	}
	if rep.TrapsTotal != 12 {
		t.Fatalf("fleet covered %d traps, want 12", rep.TrapsTotal)
	}
	if rep.TrapsRead == 0 {
		t.Fatal("no traps read")
	}
	// Every negotiation resolved to exactly one outcome.
	if granted+denied+silent+aborted < neg {
		t.Fatalf("negotiations unaccounted: %d outcomes for %d negotiations",
			granted+denied+silent+aborted, neg)
	}
	if rep.MaxDroneTime <= 0 {
		t.Fatal("makespan missing")
	}
}

// TestPooledFleetConcurrentNegotiations is the shared-pool counterpart of
// the fleet race test: four drones run their conversation loops concurrently
// against one recognition pool. Beyond the aggregate-report consistency it
// asserts the fleet-level accounting — every drone attached, every drone's
// perception frames attributed to its own owner, and the pool drained by the
// fleet's Close. Run with -race: the shared pool, the per-drone rings and
// the orchard lock all interleave here.
func TestPooledFleetConcurrentNegotiations(t *testing.T) {
	world, err := orchard.Generate(orchard.Config{
		Rows: 4, Cols: 6, TrapEvery: 2, Humans: 6,
	}, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	world.Step(30 * time.Minute)

	const drones = 4
	fleet, err := NewPooledFleet(drones, world, Config{},
		[]core.Option{core.WithPipelineConfig(pipeline.Config{Workers: 2})},
		func(i int) []core.Option {
			return []core.Option{
				core.WithSeed(int64(400 + i)),
				core.WithHome(geom.V3(-4-float64(3*i), -4, 0)),
			}
		})
	if err != nil {
		t.Fatal(err)
	}

	if stats, shared := fleet.PoolStats(); !shared || stats.Attached != drones {
		t.Fatalf("pool before run: shared=%v %+v", shared, stats)
	}

	rep, err := fleet.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerDrone) != drones {
		t.Fatalf("per-drone reports: %d, want %d", len(rep.PerDrone), drones)
	}
	var read, neg int
	for _, r := range rep.PerDrone {
		read += r.TrapsRead
		neg += r.Negotiations
	}
	if read != rep.TrapsRead || neg != rep.Negotiations {
		t.Fatalf("aggregate drifted from per-drone sums: %+v", rep)
	}
	if rep.TrapsRead == 0 || rep.Negotiations == 0 {
		t.Fatalf("mission did not exercise the pool: %+v", rep)
	}

	// Per-drone attribution: every negotiating drone perceived through the
	// shared pool via its own ring, and nothing was charged to anyone else.
	stats, _ := fleet.PoolStats()
	if len(stats.Owners) != drones {
		t.Fatalf("owners: %+v", stats.Owners)
	}
	var ownerFrames uint64
	for i, o := range stats.Owners {
		if want := fmt.Sprintf("drone-%d", i); o.Label != want {
			t.Fatalf("owner %d label %q, want %q", i, o.Label, want)
		}
		if rep.PerDrone[i].Negotiations > 0 && o.Frames == 0 {
			t.Fatalf("drone %d negotiated %d times but recognised 0 frames on the pool",
				i, rep.PerDrone[i].Negotiations)
		}
		if o.IngestAccepted < o.Frames {
			t.Fatalf("drone %d: %d frames but only %d ring accepts — perception bypassed its ring",
				i, o.Frames, o.IngestAccepted)
		}
		ownerFrames += o.Frames
	}
	if ownerFrames == 0 {
		t.Fatal("no perception traffic attributed to any drone")
	}

	fleet.Close()
	if stats, _ := fleet.PoolStats(); !stats.Closed || stats.Attached != 0 {
		t.Fatalf("pool after fleet close: %+v", stats)
	}
}

// TestFleetSequentialStillDeterministic pins the single-drone path: with one
// mission there is no interleaving, so two identical runs must agree
// event-for-event — the reproducibility contract the experiments rely on.
func TestFleetSequentialStillDeterministic(t *testing.T) {
	run := func() (FleetReport, error) {
		world, err := orchard.Generate(orchard.Config{
			Rows: 3, Cols: 4, TrapEvery: 2, Humans: 2,
		}, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		world.Step(time.Hour)
		fleet, err := NewFleet(1, world, Config{}, func(i int) (*core.System, error) {
			return core.NewSystem(core.WithSeed(99), core.WithHome(geom.V3(-5, -5, 0)))
		})
		if err != nil {
			t.Fatal(err)
		}
		return fleet.Run()
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.TrapsRead != b.TrapsRead || a.Negotiations != b.Negotiations ||
		a.Granted != b.Granted || a.Denied != b.Denied ||
		a.MaxDroneTime != b.MaxDroneTime {
		t.Fatalf("single-drone fleet runs diverged:\n%+v\n%+v", a, b)
	}
}
