// Package mission plans and executes the paper's motivating task (§I): a
// drone tour over the orchard's fly traps, reading each one, negotiating
// access per Fig 3 whenever a human blocks a trap. It binds together the
// orchard world, the core system (flight + lights + recognition +
// protocol) and produces the mission report behind experiment E13.
package mission

import (
	"errors"
	"fmt"
	"time"

	"hdc/internal/core"
	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/orchard"
	"hdc/internal/protocol"
)

// Config tunes mission execution.
type Config struct {
	// BlockRadius is how close a human must stand to a trap to force a
	// negotiation (default 4 m).
	BlockRadius float64
	// RetryDenied re-queues denied traps once at the end (default true via
	// !NoRetryDenied).
	NoRetryDenied bool
	// WorldStep is the orchard time advanced per trap visit on top of
	// flight time (human walking, pest arrivals; default 30 s).
	WorldStep time.Duration
	// PestThreshold marks traps needing action in the report (default 5).
	PestThreshold int
}

func (c Config) withDefaults() Config {
	if c.BlockRadius == 0 {
		c.BlockRadius = 4
	}
	if c.WorldStep == 0 {
		c.WorldStep = 30 * time.Second
	}
	if c.PestThreshold == 0 {
		c.PestThreshold = 5
	}
	return c
}

// TrapVisit records the outcome at one trap.
type TrapVisit struct {
	TrapID     int
	Negotiated bool
	Outcome    protocol.Outcome // zero when not negotiated
	Read       bool
	PestCount  int
}

// Report summarises a mission.
type Report struct {
	TrapsTotal   int
	TrapsRead    int
	TrapsSkipped int
	Negotiations int
	Granted      int
	Denied       int
	NoResponse   int
	Aborted      int
	Visits       []TrapVisit
	SimTime      time.Duration
	BatteryUsed  float64 // fraction of capacity consumed
	ActionTraps  int     // traps over the pest threshold among those read
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("traps %d/%d read (%d skipped), %d negotiations (%d granted, %d denied, %d silent, %d aborted), %.0f%% battery, %s",
		r.TrapsRead, r.TrapsTotal, r.TrapsSkipped,
		r.Negotiations, r.Granted, r.Denied, r.NoResponse, r.Aborted,
		r.BatteryUsed*100, r.SimTime.Truncate(time.Second))
}

// Mission binds a system to a world.
type Mission struct {
	Sys   *core.System
	World *orchard.Orchard
	Cfg   Config
}

// New creates a mission.
func New(sys *core.System, world *orchard.Orchard, cfg Config) (*Mission, error) {
	if sys == nil || world == nil {
		return nil, errors.New("mission: nil system or world")
	}
	return &Mission{Sys: sys, World: world, Cfg: cfg.withDefaults()}, nil
}

// PlanRoute orders the given traps by greedy nearest-neighbour from start,
// then improves the tour with 2-opt passes until no swap helps.
func PlanRoute(start geom.Vec2, traps []*orchard.Trap) []*orchard.Trap {
	if len(traps) < 2 {
		out := make([]*orchard.Trap, len(traps))
		copy(out, traps)
		return out
	}
	remaining := make([]*orchard.Trap, len(traps))
	copy(remaining, traps)
	route := make([]*orchard.Trap, 0, len(traps))
	cur := start
	for len(remaining) > 0 {
		best := 0
		bestD := cur.Dist(remaining[0].Pos)
		for i := 1; i < len(remaining); i++ {
			if d := cur.Dist(remaining[i].Pos); d < bestD {
				best, bestD = i, d
			}
		}
		route = append(route, remaining[best])
		cur = remaining[best].Pos
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	twoOpt(start, route)
	return route
}

// twoOpt reverses route segments while that shortens the tour.
func twoOpt(start geom.Vec2, route []*orchard.Trap) {
	pos := func(i int) geom.Vec2 {
		if i < 0 {
			return start
		}
		return route[i].Pos
	}
	improved := true
	for pass := 0; improved && pass < 20; pass++ {
		improved = false
		for i := 0; i < len(route)-1; i++ {
			for j := i + 1; j < len(route); j++ {
				// Current edges: (i-1,i) and (j,j+1); proposed: (i-1,j) and
				// (i,j+1). The tour is open-ended, so a missing j+1 edge
				// costs nothing.
				before := pos(i - 1).Dist(pos(i))
				after := pos(i - 1).Dist(pos(j))
				if j+1 < len(route) {
					before += pos(j).Dist(pos(j + 1))
					after += pos(i).Dist(pos(j + 1))
				}
				if after+1e-9 < before {
					for a, b := i, j; a < b; a, b = a+1, b-1 {
						route[a], route[b] = route[b], route[a]
					}
					improved = true
				}
			}
		}
	}
}

// RouteLength measures a tour's ground length from start.
func RouteLength(start geom.Vec2, route []*orchard.Trap) float64 {
	var total float64
	cur := start
	for _, t := range route {
		total += cur.Dist(t.Pos)
		cur = t.Pos
	}
	return total
}

// Run executes the mission over all currently unread traps and returns the
// report. Safety aborts end the mission early (report reflects partial
// progress).
func (m *Mission) Run() (Report, error) {
	return m.runOver(m.World.UnreadTraps())
}

// runOver executes the mission over an explicit trap share (the fleet layer
// hands each drone its partition).
func (m *Mission) runOver(traps []*orchard.Trap) (Report, error) {
	cfg := m.Cfg
	var rep Report
	startCharge := m.Sys.Agent.BatteryFrac()

	if err := m.Sys.EnsureAirborne(); err != nil {
		return rep, fmt.Errorf("mission: %w", err)
	}

	queue := PlanRoute(m.Sys.Agent.D.S.Pos.XY(), traps)
	rep.TrapsTotal = len(queue)
	var denied []*orchard.Trap

	visit := func(tr *orchard.Trap) (stop bool) {
		m.World.Step(cfg.WorldStep)
		m.syncHumans()

		v := TrapVisit{TrapID: tr.ID}
		defer func() { rep.Visits = append(rep.Visits, v) }()

		blocker := m.World.HumanNear(tr.Pos, cfg.BlockRadius)
		if blocker == nil {
			// Free approach.
			if _, err := m.Sys.Agent.FlyPattern(flight.PatternCruise,
				geom.V3(tr.Pos.X, tr.Pos.Y, 3)); err != nil {
				rep.Aborted++
				return true
			}
			v.Read = true
			v.PestCount = m.World.ReadTrap(tr)
			rep.TrapsRead++
			return false
		}

		// Negotiated access (Fig 3).
		rep.Negotiations++
		v.Negotiated = true
		res, err := m.Sys.Converse(blocker)
		if err != nil {
			rep.Aborted++
			return true
		}
		v.Outcome = res.Outcome
		switch res.Outcome {
		case protocol.OutcomeGranted:
			rep.Granted++
			m.Sys.Agent.WaiveSeparation(true)
			_, err := m.Sys.Agent.FlyPattern(flight.PatternCruise,
				geom.V3(tr.Pos.X, tr.Pos.Y, 3))
			m.Sys.Agent.WaiveSeparation(false)
			if err != nil {
				rep.Aborted++
				return true
			}
			v.Read = true
			v.PestCount = m.World.ReadTrap(tr)
			rep.TrapsRead++
		case protocol.OutcomeDenied:
			rep.Denied++
			denied = append(denied, tr)
		case protocol.OutcomeNoResponse:
			rep.NoResponse++
			denied = append(denied, tr)
		case protocol.OutcomeAborted:
			rep.Aborted++
			return true
		}
		return false
	}

	stopped := false
	for _, tr := range queue {
		if visit(tr) {
			stopped = true
			break
		}
	}
	// One retry round for denied/silent traps — the human may have moved on.
	if !cfg.NoRetryDenied && !stopped {
		retry := denied
		denied = nil
		for _, tr := range retry {
			if visit(tr) {
				break
			}
		}
	}

	rep.TrapsSkipped = rep.TrapsTotal - rep.TrapsRead
	rep.SimTime = m.World.Clock()
	rep.BatteryUsed = startCharge - m.Sys.Agent.BatteryFrac()
	rep.ActionTraps = m.World.ReadActionCount(cfg.PestThreshold)
	return rep, nil
}

// syncHumans publishes the humans' positions to the safety monitor.
func (m *Mission) syncHumans() {
	m.Sys.Agent.SetHumans(m.World.PeoplePositions())
}
