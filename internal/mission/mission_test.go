package mission

import (
	"math/rand"
	"testing"
	"time"

	"hdc/internal/core"
	"hdc/internal/geom"
	"hdc/internal/orchard"
)

func newWorld(t testing.TB, cfg orchard.Config, seed int64) *orchard.Orchard {
	t.Helper()
	o, err := orchard.Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestPlanRouteVisitsAll(t *testing.T) {
	o := newWorld(t, orchard.Config{}, 1)
	route := PlanRoute(geom.V2(0, 0), o.Traps)
	if len(route) != len(o.Traps) {
		t.Fatalf("route covers %d/%d traps", len(route), len(o.Traps))
	}
	seen := map[int]bool{}
	for _, tr := range route {
		if seen[tr.ID] {
			t.Fatalf("trap %d visited twice", tr.ID)
		}
		seen[tr.ID] = true
	}
}

func TestPlanRouteShorterThanNaive(t *testing.T) {
	o := newWorld(t, orchard.Config{Rows: 6, Cols: 10, TrapEvery: 3}, 2)
	start := geom.V2(0, 0)
	planned := RouteLength(start, PlanRoute(start, o.Traps))
	naive := RouteLength(start, o.Traps) // generation order
	if planned > naive {
		t.Fatalf("planned route %.1f m longer than naive %.1f m", planned, naive)
	}
}

func TestPlanRouteDegenerate(t *testing.T) {
	if PlanRoute(geom.V2(0, 0), nil) == nil {
		// empty route is fine, but must not panic
	}
	o := newWorld(t, orchard.Config{Rows: 1, Cols: 1, TrapEvery: 1}, 3)
	r := PlanRoute(geom.V2(5, 5), o.Traps)
	if len(r) != 1 {
		t.Fatalf("single trap route length %d", len(r))
	}
	// PlanRoute must not mutate the input slice.
	before := make([]*orchard.Trap, len(o.Traps))
	copy(before, o.Traps)
	PlanRoute(geom.V2(0, 0), o.Traps)
	for i := range before {
		if o.Traps[i] != before[i] {
			t.Fatal("input slice mutated")
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Config{}); err == nil {
		t.Fatal("nil args should fail")
	}
}

func TestMissionRunSmallOrchard(t *testing.T) {
	// E13 smoke: a small orchard with humans; the mission reads most traps,
	// negotiates when blocked, and never ends with an inconsistent report.
	sys, err := core.NewSystem(core.WithSeed(21), core.WithHome(geom.V3(-5, -5, 0)))
	if err != nil {
		t.Fatal(err)
	}
	world := newWorld(t, orchard.Config{
		Rows: 4, Cols: 6, TrapEvery: 4, Humans: 2, PestRatePerHour: 40,
	}, 21)
	world.Step(2 * time.Hour) // let pests accumulate

	m, err := New(sys, world, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrapsTotal != 6 {
		t.Fatalf("traps total = %d, want 6", rep.TrapsTotal)
	}
	if rep.TrapsRead == 0 {
		t.Fatal("no traps read")
	}
	if rep.TrapsRead+rep.TrapsSkipped != rep.TrapsTotal {
		t.Fatalf("accounting: %+v", rep)
	}
	if rep.Granted+rep.Denied+rep.NoResponse+rep.Aborted > rep.Negotiations+1 {
		t.Fatalf("negotiation accounting: %+v", rep)
	}
	if rep.BatteryUsed <= 0 {
		t.Fatal("mission consumed no battery")
	}
	if rep.SimTime <= 0 {
		t.Fatal("world clock did not advance")
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestMissionBlockedTrapNegotiates(t *testing.T) {
	// Pin a human right on top of the first trap: the mission MUST
	// negotiate rather than enter silently — the paper's core safety story.
	sys, err := core.NewSystem(core.WithSeed(31), core.WithHome(geom.V3(-8, -8, 0)))
	if err != nil {
		t.Fatal(err)
	}
	world := newWorld(t, orchard.Config{
		Rows: 2, Cols: 3, TrapEvery: 3, Humans: 1, WalkStepM: 0.01,
	}, 31)
	// Park the human on the nearest trap to the start.
	route := PlanRoute(geom.V2(-8, -8), world.Traps)
	world.People[0].Pos = route[0].Pos

	m, err := New(sys, world, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Negotiations == 0 {
		t.Fatalf("blocked trap read without negotiation: %+v", rep)
	}
	// The visit record for the blocked trap is negotiated.
	found := false
	for _, v := range rep.Visits {
		if v.TrapID == route[0].ID && v.Negotiated {
			found = true
		}
	}
	if !found {
		t.Fatalf("no negotiated visit for blocked trap: %+v", rep.Visits)
	}
}

func TestMissionDeterministic(t *testing.T) {
	run := func() Report {
		sys, err := core.NewSystem(core.WithSeed(77), core.WithHome(geom.V3(-5, -5, 0)))
		if err != nil {
			t.Fatal(err)
		}
		world := newWorld(t, orchard.Config{Rows: 3, Cols: 4, TrapEvery: 4, Humans: 2}, 77)
		m, err := New(sys, world, Config{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.TrapsRead != b.TrapsRead || a.Negotiations != b.Negotiations || a.Granted != b.Granted {
		t.Fatalf("mission not reproducible: %+v vs %+v", a, b)
	}
}

func TestRouteLength(t *testing.T) {
	tr := []*orchard.Trap{{Pos: geom.V2(3, 4)}, {Pos: geom.V2(3, 0)}}
	if l := RouteLength(geom.V2(0, 0), tr); l != 9 {
		t.Fatalf("route length %v, want 9", l)
	}
	if RouteLength(geom.V2(0, 0), nil) != 0 {
		t.Fatal("empty route should be 0")
	}
}
