package mission

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hdc/internal/core"
	"hdc/internal/geom"
	"hdc/internal/orchard"
	"hdc/internal/pipeline"
)

// fleet.go extends the mission layer to multiple drones — the collaborative
// operation the paper's abstract motivates. The traps are partitioned
// among the drones by angular sector around the orchard centre (cheap,
// balanced, and spatially coherent); each drone then runs an ordinary
// single-drone mission over its share. Drones fly in the same world, so
// negotiations and human movement interleave in simulation time.
//
// Recognition capacity is a fleet-level resource: NewPooledFleet builds one
// shared worker pool (core.NewSharedPool) and attaches every drone's system
// to it, so each drone's conversation perception draws on the same workers
// through its own bounded camera ring — idle capacity flows to whichever
// drone is negotiating, the per-stream window bounds any one drone's share,
// and with core.WithPerceptionDeadline a drone that falls behind sheds
// frames at its own ring instead of starving the rest. NewFleet remains the
// private-pools-per-drone constructor for callers that want isolation.

// Fleet is a set of systems sharing one orchard — and, when built with
// NewPooledFleet, one recognition worker pool.
type Fleet struct {
	Missions []*Mission
	World    *orchard.Orchard

	pool *pipeline.Pipeline // nil: each drone owns its pool
}

// FleetReport aggregates the per-drone reports.
type FleetReport struct {
	PerDrone        []Report
	TrapsTotal      int
	TrapsRead       int
	Negotiations    int
	Granted         int
	Denied          int
	NoResponse      int
	Aborted         int
	MaxDroneTime    time.Duration // longest per-drone flight clock (fleet makespan)
	MeanBatteryUsed float64
}

// NewFleet builds n missions over one shared world, each drone owning a
// private recognition pool. makeSystem constructs drone i's system (letting
// callers place homes and seeds). Fleets whose drones should share one
// recognition pool are built with NewPooledFleet instead.
func NewFleet(n int, world *orchard.Orchard, cfg Config,
	makeSystem func(i int) (*core.System, error)) (*Fleet, error) {
	if n < 1 {
		return nil, errors.New("mission: fleet size < 1")
	}
	if world == nil || makeSystem == nil {
		return nil, errors.New("mission: nil world or system factory")
	}
	f := &Fleet{World: world}
	for i := 0; i < n; i++ {
		sys, err := makeSystem(i)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("mission: drone %d: %w", i, err)
		}
		m, err := New(sys, world, cfg)
		if err != nil {
			sys.Close()
			f.Close()
			return nil, err
		}
		f.Missions = append(f.Missions, m)
	}
	return f, nil
}

// NewPooledFleet builds n missions over one shared world AND one shared
// recognition pool: the pool is assembled from poolOpts (scene, recogniser
// and pipeline sizing — use the same scene/recogniser options the drones
// get, or recognition degrades), and drone i's system is constructed from
// droneOpts(i) plus the shared attachment and a "drone-i" stats label. Every
// drone's conversation loop then recognises through the fleet pool, its
// camera fronted by a private ring (see core.WithSharedPipeline). Close the
// returned fleet to detach all drones and drain the pool.
func NewPooledFleet(n int, world *orchard.Orchard, cfg Config,
	poolOpts []core.Option, droneOpts func(i int) []core.Option) (*Fleet, error) {
	if droneOpts == nil {
		return nil, errors.New("mission: nil drone options")
	}
	pool, err := core.NewSharedPool(poolOpts...)
	if err != nil {
		return nil, fmt.Errorf("mission: fleet pool: %w", err)
	}
	f, err := NewFleet(n, world, cfg, func(i int) (*core.System, error) {
		return core.NewSystem(append(droneOpts(i),
			core.WithSharedPipeline(pool),
			core.WithPoolLabel(fmt.Sprintf("drone-%d", i)),
		)...)
	})
	if err != nil {
		// NewFleet closed any systems it built (detaching them); force-close
		// covers the case where none ever attached.
		pool.Close()
		return nil, err
	}
	f.pool = pool
	return f, nil
}

// Pool returns the fleet-shared recognition pool, or nil for a fleet whose
// drones own private pools.
func (f *Fleet) Pool() *pipeline.Pipeline { return f.pool }

// PoolStats snapshots the fleet pool's occupancy with its per-drone
// attribution (streams, frames recognised, ingest sheds). shared is false —
// and the snapshot zero — for a private-pools fleet.
func (f *Fleet) PoolStats() (stats pipeline.Stats, shared bool) {
	if f.pool == nil {
		return pipeline.Stats{}, false
	}
	return f.pool.Stats(), true
}

// Close shuts the fleet's systems down. On a pooled fleet each close
// detaches one drone from the shared pool and the last detach drains it, so
// after Close the pool is fully stopped. Close is idempotent and safe on a
// partially constructed fleet.
func (f *Fleet) Close() {
	for _, m := range f.Missions {
		m.Sys.Close()
	}
}

// PartitionTraps splits traps into k angular sectors around their centroid,
// balancing counts by splitting the angular order evenly.
func PartitionTraps(traps []*orchard.Trap, k int) [][]*orchard.Trap {
	if k < 1 {
		return nil
	}
	if k == 1 || len(traps) <= k {
		out := make([][]*orchard.Trap, k)
		for i, t := range traps {
			out[i%k] = append(out[i%k], t)
		}
		return out
	}
	var cx, cy float64
	for _, t := range traps {
		cx += t.Pos.X
		cy += t.Pos.Y
	}
	cx /= float64(len(traps))
	cy /= float64(len(traps))
	sorted := make([]*orchard.Trap, len(traps))
	copy(sorted, traps)
	sort.Slice(sorted, func(i, j int) bool {
		ai := geom.V2(sorted[i].Pos.X-cx, sorted[i].Pos.Y-cy).Angle()
		aj := geom.V2(sorted[j].Pos.X-cx, sorted[j].Pos.Y-cy).Angle()
		return ai < aj
	})
	out := make([][]*orchard.Trap, k)
	per := (len(sorted) + k - 1) / k
	for i, t := range sorted {
		out[i/per] = append(out[i/per], t)
	}
	return out
}

// Run executes every drone's share concurrently: each mission runs its
// conversation loop — flight, rendering, SAX recognition, negotiation — in
// its own goroutine against the shared world, which serialises world
// mutation internally (orchard lock) and per-person state (collaborator
// locks). Per-drone flight clocks remain independent, so the fleet makespan
// is the maximum per-drone time; host wall-clock now approaches that
// makespan instead of the per-drone sum. The aggregate report is assembled
// in drone order, so its layout is deterministic even though negotiation
// interleaving is schedule-dependent.
func (f *Fleet) Run() (FleetReport, error) {
	parts := PartitionTraps(f.World.UnreadTraps(), len(f.Missions))
	reports := make([]Report, len(f.Missions))
	errs := make([]error, len(f.Missions))
	var wg sync.WaitGroup
	for i, m := range f.Missions {
		wg.Add(1)
		go func(i int, m *Mission) {
			defer wg.Done()
			reports[i], errs[i] = m.runOver(parts[i])
		}(i, m)
	}
	wg.Wait()

	var rep FleetReport
	for i, m := range f.Missions {
		if errs[i] != nil {
			return rep, fmt.Errorf("mission: drone %d: %w", i, errs[i])
		}
		r := reports[i]
		rep.PerDrone = append(rep.PerDrone, r)
		rep.TrapsTotal += r.TrapsTotal
		rep.TrapsRead += r.TrapsRead
		rep.Negotiations += r.Negotiations
		rep.Granted += r.Granted
		rep.Denied += r.Denied
		rep.NoResponse += r.NoResponse
		rep.Aborted += r.Aborted
		rep.MeanBatteryUsed += r.BatteryUsed
		if t := m.Sys.Agent.Clock(); t > rep.MaxDroneTime {
			rep.MaxDroneTime = t
		}
	}
	rep.MeanBatteryUsed /= float64(len(f.Missions))
	return rep, nil
}
