package mission

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hdc/internal/core"
	"hdc/internal/geom"
	"hdc/internal/orchard"
)

// fleet.go extends the mission layer to multiple drones — the collaborative
// operation the paper's abstract motivates. The traps are partitioned
// among the drones by angular sector around the orchard centre (cheap,
// balanced, and spatially coherent); each drone then runs an ordinary
// single-drone mission over its share. Drones fly in the same world, so
// negotiations and human movement interleave in simulation time.

// Fleet is a set of systems sharing one orchard.
type Fleet struct {
	Missions []*Mission
	World    *orchard.Orchard
}

// FleetReport aggregates the per-drone reports.
type FleetReport struct {
	PerDrone        []Report
	TrapsTotal      int
	TrapsRead       int
	Negotiations    int
	Granted         int
	Denied          int
	NoResponse      int
	Aborted         int
	MaxDroneTime    time.Duration // longest per-drone flight clock (fleet makespan)
	MeanBatteryUsed float64
}

// NewFleet builds n missions over one shared world. makeSystem constructs
// drone i's system (letting callers place homes and seeds).
func NewFleet(n int, world *orchard.Orchard, cfg Config,
	makeSystem func(i int) (*core.System, error)) (*Fleet, error) {
	if n < 1 {
		return nil, errors.New("mission: fleet size < 1")
	}
	if world == nil || makeSystem == nil {
		return nil, errors.New("mission: nil world or system factory")
	}
	f := &Fleet{World: world}
	for i := 0; i < n; i++ {
		sys, err := makeSystem(i)
		if err != nil {
			return nil, fmt.Errorf("mission: drone %d: %w", i, err)
		}
		m, err := New(sys, world, cfg)
		if err != nil {
			return nil, err
		}
		f.Missions = append(f.Missions, m)
	}
	return f, nil
}

// PartitionTraps splits traps into k angular sectors around their centroid,
// balancing counts by splitting the angular order evenly.
func PartitionTraps(traps []*orchard.Trap, k int) [][]*orchard.Trap {
	if k < 1 {
		return nil
	}
	if k == 1 || len(traps) <= k {
		out := make([][]*orchard.Trap, k)
		for i, t := range traps {
			out[i%k] = append(out[i%k], t)
		}
		return out
	}
	var cx, cy float64
	for _, t := range traps {
		cx += t.Pos.X
		cy += t.Pos.Y
	}
	cx /= float64(len(traps))
	cy /= float64(len(traps))
	sorted := make([]*orchard.Trap, len(traps))
	copy(sorted, traps)
	sort.Slice(sorted, func(i, j int) bool {
		ai := geom.V2(sorted[i].Pos.X-cx, sorted[i].Pos.Y-cy).Angle()
		aj := geom.V2(sorted[j].Pos.X-cx, sorted[j].Pos.Y-cy).Angle()
		return ai < aj
	})
	out := make([][]*orchard.Trap, k)
	per := (len(sorted) + k - 1) / k
	for i, t := range sorted {
		out[i/per] = append(out[i/per], t)
	}
	return out
}

// Run executes every drone's share concurrently: each mission runs its
// conversation loop — flight, rendering, SAX recognition, negotiation — in
// its own goroutine against the shared world, which serialises world
// mutation internally (orchard lock) and per-person state (collaborator
// locks). Per-drone flight clocks remain independent, so the fleet makespan
// is the maximum per-drone time; host wall-clock now approaches that
// makespan instead of the per-drone sum. The aggregate report is assembled
// in drone order, so its layout is deterministic even though negotiation
// interleaving is schedule-dependent.
func (f *Fleet) Run() (FleetReport, error) {
	parts := PartitionTraps(f.World.UnreadTraps(), len(f.Missions))
	reports := make([]Report, len(f.Missions))
	errs := make([]error, len(f.Missions))
	var wg sync.WaitGroup
	for i, m := range f.Missions {
		wg.Add(1)
		go func(i int, m *Mission) {
			defer wg.Done()
			reports[i], errs[i] = m.runOver(parts[i])
		}(i, m)
	}
	wg.Wait()

	var rep FleetReport
	for i, m := range f.Missions {
		if errs[i] != nil {
			return rep, fmt.Errorf("mission: drone %d: %w", i, errs[i])
		}
		r := reports[i]
		rep.PerDrone = append(rep.PerDrone, r)
		rep.TrapsTotal += r.TrapsTotal
		rep.TrapsRead += r.TrapsRead
		rep.Negotiations += r.Negotiations
		rep.Granted += r.Granted
		rep.Denied += r.Denied
		rep.NoResponse += r.NoResponse
		rep.Aborted += r.Aborted
		rep.MeanBatteryUsed += r.BatteryUsed
		if t := m.Sys.Agent.Clock(); t > rep.MaxDroneTime {
			rep.MaxDroneTime = t
		}
	}
	rep.MeanBatteryUsed /= float64(len(f.Missions))
	return rep, nil
}
