// Package fixture exercises atomiccheck's two rules on the shapes the
// real tree uses: plain words synchronised through sync/atomic functions
// (rule 1) and structs carrying sync/atomic types, like the trace
// seqlock slots (rule 2).
package fixture

import "sync/atomic"

// stats mirrors the pipeline statistics words.
type stats struct {
	frames uint64
	label  string
}

var s stats

func record() {
	atomic.AddUint64(&s.frames, 1)
}

func snapshot() uint64 {
	return atomic.LoadUint64(&s.frames)
}

// racyRead races with record and snapshot.
func racyRead() uint64 {
	return s.frames // want "frames is accessed with sync/atomic elsewhere"
}

// labelRead touches only the non-atomic field: clean.
func labelRead() string {
	return s.label
}

// initRead runs before any goroutine exists; the race is structurally
// impossible and the suppression says why.
func initRead() uint64 {
	//hdclint:ignore atomiccheck called from init before any goroutine is spawned; no concurrent writer exists yet
	return s.frames
}

// slot mirrors the trace seqlock slot: copying it tears gen.
type slot struct {
	gen atomic.Uint64
}

func tear(sl *slot) (out slot) { // want "result lintfixture.slot is passed by value"
	out = *sl // want "assignment copies lintfixture.slot"
	return
}

// viaPointer is the blessed shape: hand out pointers, never values.
func viaPointer(sl *slot) *slot {
	return sl
}
