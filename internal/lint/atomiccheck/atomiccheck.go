// Package atomiccheck proves the access discipline of the repo's
// lock-free structures — the internal/trace seqlock slots and the
// pipeline/failpoint/raster statistics words. Two rules:
//
// Rule 1 (mixed access): a variable or struct field that is anywhere
// passed by address to a sync/atomic function (atomic.LoadUint64(&s.gen),
// atomic.AddInt64(&v, 1), …) must be accessed that way everywhere. One
// plain load or store on a field that elsewhere synchronises goroutines
// through sync/atomic is a data race the race detector only catches when
// a test happens to hit the interleaving; the analyzer catches it on
// every build. Fields are tracked across packages with analysis facts.
//
// Rule 2 (copying): a value of a struct type that contains sync/atomic
// typed fields (atomic.Uint64, atomic.Pointer[T], …, directly or through
// nested structs and arrays) must never be copied — by assignment,
// argument passing, return, range, channel send, composite-literal
// element, append, or the copy builtin. A copy reads the atomic words
// non-atomically (torn, unsynchronised) and forks state that was meant
// to be shared; go vet's copylocks does not cover the atomic types. This
// is what keeps a refactor from ever writing `rec := ring.slots[i]` and
// silently defeating the trace seqlock.
package atomiccheck

import (
	"go/ast"
	"go/types"
	"strings"

	"hdc/internal/lint"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// Name is the analyzer's name, as suppression directives spell it.
const Name = "atomiccheck"

// Analyzer is the atomiccheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: lint.Doc("check sync/atomic access discipline: no mixed plain access, no copying of atomic-bearing structs",
		`A field or package-level variable accessed through sync/atomic
functions anywhere must be accessed through them everywhere (a plain
read or write races with the atomic sites), and no value of a struct
type containing sync/atomic typed fields may be copied (the copy tears
the atomic words and forks shared state). Initialise atomic-bearing
structs in place behind &T{...} and hand out pointers.`),
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*atomicObj)(nil)},
	Run:       run,
}

// atomicObj marks a variable object (field or package-level var) as
// accessed through sync/atomic somewhere in its declaring package.
type atomicObj struct{}

func (*atomicObj) AFact() {}

func (*atomicObj) String() string { return "atomic" }

// atomicFuncs are the sync/atomic package functions whose first argument
// is the address of the synchronised word.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func run(pass *analysis.Pass) (any, error) {
	sup := lint.NewSuppressor(pass, Name)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	checkMixedAccess(pass, sup, ins)
	checkCopies(pass, sup, ins)
	return nil, nil
}

// ---- Rule 1: mixed plain/atomic access ----

func checkMixedAccess(pass *analysis.Pass, sup *lint.Suppressor, ins *inspector.Inspector) {
	// Pass 1: find every `&x` handed to a sync/atomic function; record the
	// object and remember the identifier nodes that are sanctioned uses.
	atomicObjs := make(map[types.Object]bool)
	sanctioned := make(map[*ast.Ident]bool)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := typeutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicFuncs[fn.Name()] {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok {
			return
		}
		id := lint.ExprIdent(addr.X)
		if id == nil {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		// Track fields and package-level vars; locals have no concurrent
		// aliases worth a cross-function contract.
		if !v.IsField() && (v.Pkg() == nil || v.Parent() != v.Pkg().Scope()) {
			return
		}
		atomicObjs[v] = true
		sanctioned[id] = true
		if v.Pkg() == pass.Pkg {
			pass.ExportObjectFact(v, &atomicObj{})
		}
	})

	// Pass 2: every other use of those objects is a plain access.
	ins.Preorder([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node) {
		id := n.(*ast.Ident)
		if sanctioned[id] {
			return
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return
		}
		if !atomicObjs[v] && !pass.ImportObjectFact(v, &atomicObj{}) {
			return
		}
		sup.Reportf(id.Pos(), "%s is accessed with sync/atomic elsewhere; this plain access races with those sites", v.Name())
	})
}

// ---- Rule 2: copies of atomic-bearing structs ----

// atomicBearer memoises which types transitively contain sync/atomic
// typed fields.
type atomicBearer struct {
	memo typeutil.Map // types.Type → result
}

// path returns a human-readable chain ("slot.gen: atomic.Uint64") for the
// first atomic field found in t, or "" when t carries none.
func (b *atomicBearer) path(t types.Type) string {
	return b.pathRec(t, make(map[types.Type]bool))
}

func (b *atomicBearer) pathRec(t types.Type, seen map[types.Type]bool) string {
	if got := b.memo.At(t); got != nil {
		return got.(string)
	}
	if seen[t] {
		return ""
	}
	seen[t] = true
	res := ""
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() != "noCopy" {
			res = "atomic." + obj.Name()
			b.memo.Set(t, res)
			return res
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if sub := b.pathRec(f.Type(), seen); sub != "" {
				res = f.Name() + "." + sub
				break
			}
		}
	case *types.Array:
		if sub := b.pathRec(u.Elem(), seen); sub != "" {
			res = "[...]" + sub
		}
	}
	b.memo.Set(t, res)
	return res
}

func checkCopies(pass *analysis.Pass, sup *lint.Suppressor, ins *inspector.Inspector) {
	bearer := &atomicBearer{}

	// report flags e when evaluating it copies an atomic-bearing value:
	// an addressable read of existing state (identifier, field, index,
	// deref). Fresh values — composite literals, function-call results —
	// are initialisations, not copies of shared state.
	report := func(e ast.Expr, what string) {
		e = ast.Unparen(e)
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			return
		}
		t := pass.TypesInfo.TypeOf(e)
		if t == nil {
			return
		}
		chain := bearer.path(t)
		if chain == "" {
			return
		}
		sup.Reportf(e.Pos(), "%s copies %s which contains sync/atomic state (%s); the copy is torn and unshared — use a pointer", what, typeStr(t), chain)
	}

	nodeFilter := []ast.Node{
		(*ast.AssignStmt)(nil),
		(*ast.ValueSpec)(nil),
		(*ast.ReturnStmt)(nil),
		(*ast.CallExpr)(nil),
		(*ast.RangeStmt)(nil),
		(*ast.SendStmt)(nil),
		(*ast.CompositeLit)(nil),
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
	}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				report(rhs, "assignment")
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				report(v, "declaration")
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				report(r, "return")
			}
		case *ast.CallExpr:
			checkCall(pass, sup, bearer, n, report)
		case *ast.RangeStmt:
			if n.Value == nil {
				return
			}
			if id, ok := n.Value.(*ast.Ident); ok && id.Name == "_" {
				return
			}
			t := pass.TypesInfo.TypeOf(n.Value)
			if t == nil {
				return
			}
			if chain := bearer.path(t); chain != "" {
				sup.Reportf(n.Value.Pos(), "range copies %s elements which contain sync/atomic state (%s); range over indices or pointers", typeStr(t), chain)
			}
		case *ast.SendStmt:
			report(n.Value, "channel send")
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				report(el, "composite literal")
			}
		case *ast.FuncDecl:
			checkSignature(pass, sup, bearer, n.Recv, n.Type)
		case *ast.FuncLit:
			checkSignature(pass, sup, bearer, nil, n.Type)
		}
	})
}

// checkCall flags atomic-bearing values passed by value as ordinary call
// arguments, plus the two builtins that memmove whole element arrays.
func checkCall(pass *analysis.Pass, sup *lint.Suppressor, bearer *atomicBearer, call *ast.CallExpr, report func(ast.Expr, string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch pass.TypesInfo.Uses[id].(type) {
		case *types.Builtin:
			switch id.Name {
			case "append", "copy":
				// append growth and copy both memmove the element array.
				if len(call.Args) > 0 {
					if s, ok := pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(*types.Slice); ok {
						if chain := bearer.path(s.Elem()); chain != "" {
							sup.Reportf(call.Pos(), "%s moves %s elements which contain sync/atomic state (%s); fixed preallocated storage only", id.Name, typeStr(s.Elem()), chain)
						}
					}
				}
				return
			case "len", "cap", "new":
				return
			}
		case *types.TypeName:
			// Conversion T(x): a copy of x.
			if len(call.Args) == 1 {
				report(call.Args[0], "conversion")
			}
			return
		}
	}
	if pass.TypesInfo.Types[call.Fun].IsType() {
		if len(call.Args) == 1 {
			report(call.Args[0], "conversion")
		}
		return
	}
	for _, arg := range call.Args {
		report(arg, "call argument")
	}
}

// checkSignature flags by-value receivers, parameters and results whose
// types carry atomic state.
func checkSignature(pass *analysis.Pass, sup *lint.Suppressor, bearer *atomicBearer, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := pass.TypesInfo.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if chain := bearer.path(t); chain != "" {
				sup.Reportf(f.Type.Pos(), "%s %s is passed by value but contains sync/atomic state (%s); use *%s", what, typeStr(t), chain, typeStr(t))
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

func typeStr(t types.Type) string {
	s := t.String()
	// Trim the module path noise: hdc/internal/trace.slot → trace.slot.
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}
