package atomiccheck_test

import (
	"testing"

	"hdc/internal/lint/atomiccheck"
	"hdc/internal/lint/linttest"
)

func TestFixture(t *testing.T) {
	linttest.Run(t, atomiccheck.Name, "testdata/fixture")
}
