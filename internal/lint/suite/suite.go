// Package suite enumerates the hdclint analyzers. cmd/hdclint registers
// exactly this list, and the fixture harness iterates it, so an analyzer
// cannot join the suite without golden fixtures.
package suite

import (
	"golang.org/x/tools/go/analysis"

	"hdc/internal/lint/atomiccheck"
	"hdc/internal/lint/failpointcheck"
	"hdc/internal/lint/poolcheck"
	"hdc/internal/lint/sentinelerr"
)

// Analyzers returns the hdclint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		poolcheck.Analyzer,
		atomiccheck.Analyzer,
		failpointcheck.Analyzer,
		sentinelerr.Analyzer,
	}
}
