// Package linttest is the golden-fixture harness for the hdclint
// analyzers. A fixture is a directory of Go source under an analyzer's
// testdata/ annotated with expectation comments:
//
//	g := pool.Get(64, 64) // want "leaks"
//
// Each `// want "re"` declares that the analyzer under test must report
// a diagnostic on that line matching the regular expression; every
// diagnostic the analyzer reports must be declared. Lines carrying an
// //hdclint:ignore directive double as the suppression half of the
// golden contract: the fixture compiles the suppressed violation and the
// harness verifies no diagnostic escapes it.
//
// Fixtures run through the real toolchain: the harness materialises the
// fixture as a module that requires hdc (replaced by this repo, so
// fixtures exercise the analyzers against the real raster/failpoint
// types), builds cmd/hdclint once, and drives `go vet -vettool -json`
// over it — the exact configuration CI gates on, facts and export data
// included.
package linttest

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// diag is one parsed go vet JSON diagnostic.
type diag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

var (
	buildOnce sync.Once
	buildErr  error
	toolPath  string
	rootPath  string
)

// repoRoot locates the hdc module root from the test's working directory.
func repoRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// buildTool compiles cmd/hdclint once per test process.
func buildTool() (string, string, error) {
	buildOnce.Do(func() {
		rootPath, buildErr = repoRoot()
		if buildErr != nil {
			return
		}
		dir, err := os.MkdirTemp("", "hdclint-test-")
		if err != nil {
			buildErr = err
			return
		}
		toolPath = filepath.Join(dir, "hdclint")
		cmd := exec.Command("go", "build", "-o", toolPath, "hdc/cmd/hdclint")
		cmd.Dir = rootPath
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building hdclint: %v\n%s", err, out)
		}
	})
	return toolPath, rootPath, buildErr
}

// Run drives the named analyzer over the fixture directory (relative to
// the calling test's package, conventionally "testdata/<name>") and
// enforces its want comments.
func Run(t *testing.T, analyzer, fixtureDir string) {
	t.Helper()
	tool, root, err := buildTool()
	if err != nil {
		t.Fatal(err)
	}

	mod := t.TempDir()
	if err := copyTree(fixtureDir, mod); err != nil {
		t.Fatalf("copying fixture: %v", err)
	}
	// The module path must sit under hdc/ so the fixture may import the
	// repo's internal packages (the internal rule is path-prefix based).
	gomod := fmt.Sprintf(`module hdc/lintfixture

go 1.22

require hdc v0.0.0

replace hdc => %s

replace golang.org/x/tools => %s
`, root, filepath.Join(root, "third_party", "golang.org", "x", "tools"))
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}

	// go vet writes the -json stream (and everything else) to stderr. With
	// -json, diagnostics alone exit zero; a non-zero exit means a hard
	// failure — a compile error in the fixture, a broken vettool.
	cmd := exec.Command("go", "vet", "-vettool="+tool, "-json", "./...")
	cmd.Dir = mod
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=-mod=mod")
	out, runErr := cmd.CombinedOutput()
	if runErr != nil {
		t.Fatalf("go vet failed: %v\noutput:\n%s", runErr, out)
	}

	got, parseErr := parseVetJSON(string(out), analyzer)
	if parseErr != nil {
		t.Fatalf("parsing go vet -json output: %v\noutput:\n%s", parseErr, out)
	}

	wants := parseWants(t, fixtureDir)
	check(t, mod, got, wants)
}

// parseVetJSON extracts the named analyzer's diagnostics from go vet's
// -json stream: `# pkg` comment lines interleaved with JSON objects of
// shape {"pkgid": {"analyzer": [diag, ...]}}.
func parseVetJSON(out, analyzer string) ([]diag, error) {
	var clean strings.Builder
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		clean.WriteString(line)
		clean.WriteString("\n")
	}
	dec := json.NewDecoder(strings.NewReader(clean.String()))
	var diags []diag
	for dec.More() {
		var pkg map[string]map[string][]diag
		if err := dec.Decode(&pkg); err != nil {
			return nil, err
		}
		for _, byAnalyzer := range pkg {
			diags = append(diags, byAnalyzer[analyzer]...)
		}
	}
	return diags, nil
}

// want is one expectation: a diagnostic matching re on (file, line).
type want struct {
	file string // fixture-relative path
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var strRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants scans the fixture sources for `// want "re"` comments.
func parseWants(t *testing.T, fixtureDir string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.Walk(fixtureDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(fixtureDir, path)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			strs := strRE.FindAllStringSubmatch(m[1], -1)
			if len(strs) == 0 {
				return fmt.Errorf("%s:%d: want comment with no quoted pattern", rel, i+1)
			}
			for _, s := range strs {
				re, err := regexp.Compile(s[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern: %v", rel, i+1, err)
				}
				wants = append(wants, &want{file: rel, line: i + 1, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// check matches diagnostics against wants one-to-one by (file, line, re).
func check(t *testing.T, mod string, got []diag, wants []*want) {
	t.Helper()
	for _, d := range got {
		file, line := splitPosn(d.Posn, mod)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == file && w.line == line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", file, line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

// splitPosn turns "/tmp/mod/file.go:12:3" into ("file.go", 12).
func splitPosn(posn, mod string) (string, int) {
	rest := posn
	if rel, err := filepath.Rel(mod, posn); err == nil && !strings.HasPrefix(rel, "..") {
		rest = rel
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 2 {
		return rest, 0
	}
	var line int
	fmt.Sscanf(parts[1], "%d", &line)
	return parts[0], line
}

// copyTree copies the fixture sources into the scratch module.
func copyTree(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, info.Mode().Perm())
	})
}
