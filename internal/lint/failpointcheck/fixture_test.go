package failpointcheck_test

import (
	"testing"

	"hdc/internal/lint/failpointcheck"
	"hdc/internal/lint/linttest"
)

func TestFixture(t *testing.T) {
	linttest.Run(t, failpointcheck.Name, "testdata/fixture")
}
