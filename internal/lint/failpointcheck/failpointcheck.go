// Package failpointcheck proves the failpoint inventory's contracts:
// every failpoint.Inject site names its point with a compile-time
// constant string (so the inventory is greppable and /failpointz,
// HDC_FAILPOINTS and the chaos suite can address every site), the name
// is well-formed ("layer/site", lowercase), it is registered as a
// constant in the failpoint package itself (the canonical, documented
// list), and no two Inject sites share a name (shared names make hit
// counters ambiguous). Test files are exempt from registration and
// uniqueness — unit tests legitimately exercise ad-hoc points — but not
// from the constant-string and format rules.
package failpointcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"hdc/internal/lint"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// FailpointPath is the import path of the registry package whose Inject
// calls are checked and whose string constants form the registered set.
const FailpointPath = "hdc/internal/failpoint"

// Name is the analyzer's name, as suppression directives spell it.
const Name = "failpointcheck"

// Analyzer is the failpointcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: lint.Doc("check that failpoint.Inject names are constant, registered, well-formed and unique",
		`failpoint.Inject(name) must be called with a constant string of the
form "layer/site" (lowercase letters, digits, dashes) that is declared as
a constant in `+FailpointPath+` — the canonical inventory that DESIGN.md
documents and the chaos suite enumerates. Each name belongs to exactly
one Inject site, across packages (uniqueness is tracked with analysis
facts along the import graph).`),
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*usedNames)(nil)},
	Run:       run,
}

// usedNames is the package fact recording which failpoint names this
// package's non-test Inject sites consume, so downstream packages can
// detect cross-package duplicates.
type usedNames struct {
	Names []string
}

func (*usedNames) AFact() {}

func (f *usedNames) String() string { return fmt.Sprintf("failpoints(%v)", f.Names) }

var nameRE = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*/[a-z0-9]+(-[a-z0-9]+)*$`)

func run(pass *analysis.Pass) (any, error) {
	sup := lint.NewSuppressor(pass, Name)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	registered := registeredNames(pass)

	// seen maps name → true for non-test Inject sites of this package and
	// its dependencies.
	seen := make(map[string]string) // name → where (package path)
	for _, imp := range pass.Pkg.Imports() {
		var fact usedNames
		if pass.ImportPackageFact(imp, &fact) {
			for _, n := range fact.Names {
				seen[n] = imp.Path()
			}
		}
	}

	var local []string
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := typeutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != FailpointPath || fn.Name() != "Inject" {
			return
		}
		if len(call.Args) != 1 {
			return
		}
		arg := call.Args[0]
		tv := pass.TypesInfo.Types[arg]
		if tv.Value == nil || tv.Value.Kind() != constant.String {
			sup.Reportf(arg.Pos(), "failpoint.Inject needs a constant string name, not a computed value")
			return
		}
		name := constant.StringVal(tv.Value)
		if !nameRE.MatchString(name) {
			sup.Reportf(arg.Pos(), "failpoint name %q is not of the form layer/site (lowercase letters, digits, dashes)", name)
			return
		}
		if lint.InTestFile(pass.Fset, arg.Pos()) {
			return
		}
		if !registered[name] {
			sup.Reportf(arg.Pos(), "failpoint name %q is not declared as a constant in %s; register it there so the inventory stays canonical", name, FailpointPath)
		}
		if where, dup := seen[name]; dup {
			sup.Reportf(arg.Pos(), "failpoint name %q is already injected in %s; hit counters need one site per name", name, where)
		} else {
			seen[name] = pass.Pkg.Path()
			local = append(local, name)
		}
	})
	if len(local) > 0 {
		pass.ExportPackageFact(&usedNames{Names: local})
	}
	return nil, nil
}

// registeredNames collects the string constants declared at package level
// in the failpoint package — the canonical inventory.
func registeredNames(pass *analysis.Pass) map[string]bool {
	var scope *types.Scope
	if pass.Pkg.Path() == FailpointPath {
		scope = pass.Pkg.Scope()
	} else {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == FailpointPath {
				scope = imp.Scope()
				break
			}
		}
	}
	out := make(map[string]bool)
	if scope == nil {
		return out
	}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		out[constant.StringVal(c.Val())] = true
	}
	return out
}
