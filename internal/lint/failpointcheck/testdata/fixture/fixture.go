// Package fixture exercises failpointcheck against the real registry:
// the four diagnostic classes (duplicate, unregistered, malformed,
// non-constant) and a justified suppression.
package fixture

import "hdc/internal/failpoint"

func hit() error {
	// Registered, well-formed, first use in this package: clean.
	if err := failpoint.Inject(failpoint.StoreLookup); err != nil {
		return err
	}
	// The same name a second time makes hit counters ambiguous.
	if err := failpoint.Inject("store/lookup"); err != nil { // want "already injected"
		return err
	}
	// Well-formed but absent from the canonical inventory.
	if err := failpoint.Inject("fixture/not-registered"); err != nil { // want "not declared as a constant"
		return err
	}
	// Not of the layer/site shape.
	if err := failpoint.Inject("NotASite"); err != nil { // want "not of the form layer/site"
		return err
	}
	// Computed names defeat grepping and the /failpointz inventory.
	if err := failpoint.Inject(pick()); err != nil { // want "constant string name"
		return err
	}
	//hdclint:ignore failpointcheck renamed site fires under both names during the one-release migration window
	if err := failpoint.Inject("store/lookup"); err != nil {
		return err
	}
	return nil
}

func pick() string { return "server/decode" }
