package sentinelerr_test

import (
	"testing"

	"hdc/internal/lint/linttest"
	"hdc/internal/lint/sentinelerr"
)

func TestFixture(t *testing.T) {
	linttest.Run(t, sentinelerr.Name, "testdata/fixture")
}
