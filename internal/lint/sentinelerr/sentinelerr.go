// Package sentinelerr flags ==/!= comparisons against sentinel error
// variables. The repo wraps its sentinels as a matter of course —
// failpoint-injected faults wrap failpoint.ErrInjected, the recognizer
// and store annotate errors with fmt.Errorf("...: %w", err) — so an
// identity comparison like `err == ErrClosed` silently stops matching the
// moment a layer in between adds context. errors.Is is the only
// comparison that survives wrapping.
package sentinelerr

import (
	"go/ast"
	"go/token"
	"go/types"

	"hdc/internal/lint"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Name is the analyzer's name, as suppression directives spell it.
const Name = "sentinelerr"

// Analyzer is the sentinelerr analysis.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: lint.Doc("check that sentinel errors are matched with errors.Is, not ==/!=",
		`A comparison of an error value against a package-level error variable
(a sentinel such as pipeline.ErrClosed or failpoint.ErrInjected) with ==
or !=, or a switch over an error value with sentinel cases, misses every
wrapped form of that sentinel. Use errors.Is. Comparisons against nil and
comparisons inside an Is(error) bool method (where errors.Is hands the
callee an already-unwrapped target) are exempt.`),
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	sup := lint.NewSuppressor(pass, Name)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.BinaryExpr)(nil),
		(*ast.SwitchStmt)(nil),
		(*ast.FuncDecl)(nil),
	}
	// Stack of enclosing FuncDecls so comparisons inside Is(error) bool
	// methods can be exempted.
	var funcs []*ast.FuncDecl
	ins.Nodes(nodeFilter, func(n ast.Node, push bool) bool {
		if fd, ok := n.(*ast.FuncDecl); ok {
			if push {
				funcs = append(funcs, fd)
			} else {
				funcs = funcs[:len(funcs)-1]
			}
			return true
		}
		if !push {
			return true
		}
		if len(funcs) > 0 && isIsMethod(pass, funcs[len(funcs)-1]) {
			return true
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			var sentinel types.Object
			if s := sentinelObj(pass, n.X); s != nil && isErrorExpr(pass, n.Y) {
				sentinel = s
			} else if s := sentinelObj(pass, n.Y); s != nil && isErrorExpr(pass, n.X) {
				sentinel = s
			}
			if sentinel != nil {
				sup.Reportf(n.OpPos, "%s comparison against sentinel %s misses wrapped errors; use errors.Is", n.Op, sentinel.Name())
			}
		case *ast.SwitchStmt:
			if n.Tag == nil || !isErrorExpr(pass, n.Tag) {
				return true
			}
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if s := sentinelObj(pass, e); s != nil {
						sup.Reportf(e.Pos(), "switch case on sentinel %s misses wrapped errors; use errors.Is", s.Name())
					}
				}
			}
		}
		return true
	})
	return nil, nil
}

// sentinelObj returns the package-level error variable e resolves to, or
// nil when e is anything else (nil, a local, a call, a non-error var).
func sentinelObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id := lint.ExprIdent(e)
	if id == nil {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// isErrorExpr reports whether e has the error interface type and is not
// the untyped nil literal.
func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.IsNil() {
		return false
	}
	return isErrorType(tv.Type)
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorType)
}

// isIsMethod reports whether fd is a method named Is with the
// func(error) bool shape errors.Is probes for. Inside it, identity
// comparison against a sentinel is the intended semantics: errors.Is has
// already unwrapped the target before calling it.
func isIsMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Is" {
		return false
	}
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 1 && isErrorType(sig.Params().At(0).Type()) &&
		sig.Results().Len() == 1 && types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}
