// Package fixture exercises sentinelerr: identity comparisons and
// switch cases on sentinels (including a real always-wrapped one,
// failpoint.ErrInjected), the exempt shapes, and a justified
// suppression.
package fixture

import (
	"errors"

	"hdc/internal/failpoint"
)

// ErrClosed is a local sentinel in the style of pipeline.ErrClosed.
var ErrClosed = errors.New("fixture: closed")

func classify(err error) string {
	if err == failpoint.ErrInjected { // want "== comparison against sentinel ErrInjected"
		return "injected"
	}
	if err != ErrClosed { // want "!= comparison against sentinel ErrClosed"
		return "open"
	}
	switch err {
	case ErrClosed: // want "switch case on sentinel ErrClosed"
		return "closed"
	}
	if err == nil { // nil tests are identity by definition: clean
		return "ok"
	}
	if errors.Is(err, ErrClosed) { // the blessed form: clean
		return "closed"
	}
	return "other"
}

// wrapped's Is method gets identity semantics: errors.Is has already
// unwrapped the target when it calls it, so the comparison is exempt.
type wrapped struct{ err error }

func (w *wrapped) Error() string { return w.err.Error() }

func (w *wrapped) Is(target error) bool { return target == ErrClosed }

// bareExactly distinguishes the bare sentinel from wrapped forms on
// purpose — the rare case identity comparison is the semantics.
func bareExactly(err error) bool {
	//hdclint:ignore sentinelerr distinguishing the bare sentinel from wrapped forms is the point of this helper
	return err == ErrClosed
}
