// Package lint is the repo-invariant static-analysis suite behind
// cmd/hdclint: golang.org/x/tools/go/analysis analyzers that prove, at
// compile time, the hand-maintained contracts the hot path rests on.
// Chaos runs and reviewer vigilance used to be the only defence of these
// invariants; encoding them as analyzers lets the ROADMAP's "refactor
// freely" stance survive aggressive rewrites (the DORA argument: dataflow
// buffers moving between nodes are only safe under machine-checked
// ownership contracts).
//
// The suite (see each subpackage for the precise rules):
//
//   - poolcheck: a pooled frame obtained from raster.Pool.Get must, on
//     every control-flow path, be recycled or handed to a transfer point.
//   - atomiccheck: a field accessed through sync/atomic is never touched
//     with a plain load/store, and no value of a struct type containing
//     sync/atomic fields (the trace seqlock slots) is ever copied.
//   - failpointcheck: failpoint.Inject takes only constant, registered,
//     well-formed, unique point names.
//   - sentinelerr: wrapped sentinel errors are matched with errors.Is,
//     never ==/!=.
//
// # Suppression
//
// Every diagnostic can be silenced, with justification, by a directive
// comment on the flagged line or the line directly above it:
//
//	//hdclint:ignore <analyzer> <justification>
//
// The justification is mandatory: a directive without one is itself a
// diagnostic. Suppression is for the rare true-but-intended case — a
// pre-publication plain store into a not-yet-shared struct, an identity
// comparison that really means identity — and the justification is the
// reviewer-facing record of why the contract does not apply. An
// unrecognised analyzer name suppresses nothing, so a typo fails loudly
// (the original diagnostic still fires).
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// ignorePrefix is the directive comment marker, without the leading "//".
const ignorePrefix = "hdclint:ignore"

// Suppressor filters one analyzer's diagnostics through the
// //hdclint:ignore directives of the files under analysis. Build one per
// pass with NewSuppressor and report exclusively through Reportf.
type Suppressor struct {
	pass  *analysis.Pass
	check string
	// suppressed maps filename → set of line numbers on which diagnostics
	// from this analyzer are ignored. A directive covers its own line and
	// the next, so it works both as a trailing and a standalone comment.
	suppressed map[string]map[int]bool
}

// NewSuppressor scans the pass's files for //hdclint:ignore directives
// naming check, reporting any such directive that lacks a justification.
func NewSuppressor(pass *analysis.Pass, check string) *Suppressor {
	s := &Suppressor{pass: pass, check: check, suppressed: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) == 0 || fields[0] != check {
					continue
				}
				if len(fields) == 1 {
					pass.Reportf(c.Pos(), "hdclint:ignore %s directive needs a justification", check)
					continue
				}
				p := pass.Fset.Position(c.Pos())
				lines := s.suppressed[p.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					s.suppressed[p.Filename] = lines
				}
				lines[p.Line] = true
				lines[p.Line+1] = true
			}
		}
	}
	return s
}

// Reportf reports a diagnostic at pos unless a directive suppresses it.
// It returns whether the diagnostic was emitted.
func (s *Suppressor) Reportf(pos token.Pos, format string, args ...any) bool {
	p := s.pass.Fset.Position(pos)
	if lines, ok := s.suppressed[p.Filename]; ok && lines[p.Line] {
		return false
	}
	s.pass.Reportf(pos, format, args...)
	return true
}

// InTestFile reports whether pos lies in a _test.go file. Some contracts
// (failpoint name registration and uniqueness) are relaxed there: tests
// legitimately exercise ad-hoc points.
func InTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Doc assembles an analyzer doc string from a one-line summary and detail
// paragraphs, appending the shared suppression contract.
func Doc(summary string, detail string) string {
	return summary + "\n\n" + detail + "\n\n" +
		"Suppress a diagnostic with `//hdclint:ignore <analyzer> <justification>`\n" +
		"on the flagged line or the line above; the justification is mandatory."
}

// ExprIdent returns the identifier an expression resolves to, looking
// through parentheses; nil when the expression is not a plain identifier.
func ExprIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}
