// Package fixture exercises poolcheck against the real raster.Pool: a
// leak on one path, the accepted hand-off and nil-guard shapes, and a
// justified suppression.
package fixture

import "hdc/internal/raster"

var pool raster.Pool

// leaky loses the frame on the early-return path: nothing recycles or
// hands off g before the bare return.
func leaky(fail bool) {
	g := pool.Get(8, 8) // want "pooled frame g leaks"
	if fail {
		return
	}
	pool.Put(g)
}

// balanced recycles on the error path and hands off on the happy path.
func balanced(fail bool) {
	g := pool.Get(8, 8)
	if fail {
		pool.Put(g)
		return
	}
	consume(g)
}

// nilGuarded returns early only when the pool returned nothing; that
// path cannot leak.
func nilGuarded() {
	g := pool.Get(-1, -1)
	if g == nil {
		return
	}
	pool.Put(g)
}

// deferred recycles through a defer, which runs on every exit.
func deferred(fail bool) {
	g := pool.Get(8, 8)
	defer pool.Put(g)
	if fail {
		return
	}
	g.Pix[0] = 1
}

// oneShot leaks deliberately: the debug path trades a stranded buffer
// for a stable snapshot, and says so.
func oneShot(debug bool) {
	//hdclint:ignore poolcheck debug snapshot keeps the frame; the pool refills on demand and the leak is bounded by one
	g := pool.Get(8, 8)
	if debug {
		return
	}
	pool.Put(g)
}

func consume(g *raster.Gray) { pool.Put(g) }
