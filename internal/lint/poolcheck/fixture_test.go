package poolcheck_test

import (
	"testing"

	"hdc/internal/lint/linttest"
	"hdc/internal/lint/poolcheck"
)

func TestFixture(t *testing.T) {
	linttest.Run(t, poolcheck.Name, "testdata/fixture")
}
