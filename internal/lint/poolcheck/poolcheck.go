// Package poolcheck proves the pooled-frame ownership contract: a frame
// obtained from raster.Pool.Get must, on every control-flow path out of
// the obtaining function, be recycled (Pool.Put) or handed to a transfer
// point — Stream.Submit, Source.Offer, a drop hook, a helper, a
// composite literal, a return value, a field store. PR 4 and PR 7 each
// fixed a leak of exactly this class by hand (abandoned streams, failed
// submits); the analyzer flags the next one at build time.
//
// The check is intra-procedural and conservative in the direction of
// silence: any appearance of the frame variable as a call argument,
// return value, stored value, channel send or composite-literal element
// counts as a hand-off (whether the callee honours the contract is that
// callee's analysis), aliasing (&v, closure capture) disables tracking,
// and paths on which the variable is provably nil (Get's invalid-dims
// result, guarded by `if v == nil`) or reassigned are not leaks. What
// remains — a path from Get to a return on which the frame is never
// mentioned again — is precisely the leak class.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"hdc/internal/lint"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"
)

// getters are the fully-qualified methods whose result is an owned pooled
// buffer that the caller must recycle or transfer.
var getters = map[string]bool{
	"(*hdc/internal/raster.Pool).Get": true,
}

// Name is the analyzer's name, as suppression directives spell it.
const Name = "poolcheck"

// Analyzer is the poolcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc: lint.Doc("check that every pooled frame is recycled or handed off on every path",
		`A buffer obtained from raster.Pool.Get is owned by the obtaining
function until it passes it onward: back to the pool with Put, into a
transfer point (Stream.Submit, Source.Offer, a drop hook), into a helper,
a struct, a slice, a channel, or out through a return. A control-flow
path that reaches a return without any such hand-off leaks the frame —
the pool's gets/puts balance drifts and steady-state traffic slowly
strands buffers.`),
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	sup := lint.NewSuppressor(pass, Name)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || !getters[fn.FullName()] {
			return true
		}
		v, getStmt := trackedVar(pass, call, stack)
		if v == nil {
			return true // result consumed where it is produced
		}
		g := enclosingCFG(cfgs, stack)
		if g == nil {
			return true
		}
		body := enclosingBody(stack)
		if body == nil || aliased(pass, body, v) {
			return true
		}
		parents := parentMap(body)
		if pos, leaks := findLeak(pass, g, getStmt, v, parents); leaks {
			sup.Reportf(call.Pos(), "pooled frame %s leaks: the path reaching the return at line %d neither recycles it (Put) nor hands it off",
				v.Name(), pass.Fset.Position(pos).Line)
		}
		return true
	})
	return nil, nil
}

// trackedVar returns the local variable the Get result is bound to, with
// the binding statement, or nil when the result is consumed in place
// (used directly as an argument, element or return) or bound to anything
// but a simple identifier.
func trackedVar(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) (*types.Var, ast.Stmt) {
	if len(stack) < 2 {
		return nil, nil
	}
	parent := stack[len(stack)-2]
	assign, ok := parent.(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 || ast.Unparen(assign.Rhs[0]) != call || len(assign.Lhs) != 1 {
		return nil, nil
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil, nil
	}
	return v, assign
}

// enclosingCFG resolves the control-flow graph of the innermost function
// containing the call.
func enclosingCFG(cfgs *ctrlflow.CFGs, stack []ast.Node) *cfg.CFG {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return cfgs.FuncLit(f)
		case *ast.FuncDecl:
			return cfgs.FuncDecl(f)
		}
	}
	return nil
}

// enclosingBody returns the innermost function body containing the call.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

// aliased reports whether v's address is taken or v is captured by a
// nested function literal, go or defer — cases where the frame has other
// routes to a recycle and path tracking would only produce noise. A defer
// or closure that mentions v runs on (or outlives) every exit, so it also
// satisfies "consumed on every path".
func aliased(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var) bool {
	var found bool
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
					found = true
				}
				return !found
			})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id := lint.ExprIdent(n.X); id != nil && pass.TypesInfo.Uses[id] == v {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// parentMap records each node's syntactic parent within body, so a use of
// the tracked variable can be classified by its immediate context.
func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// usage classifies what one CFG node does with v.
type usage int

const (
	usageNone    usage = iota // v not mentioned, or only read (v.Pix, v == nil)
	usageConsume              // handed off: call arg, return, store, send, element
	usageKill                 // v reassigned; the tracked buffer is no longer reachable here
)

// classify inspects one flattened CFG node for uses of v.  Consume wins
// over kill when a single statement does both (`other, v = v, next`).
func classify(pass *analysis.Pass, n ast.Node, v *types.Var, parents map[ast.Node]ast.Node) usage {
	res := usageNone
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if pass.TypesInfo.Uses[id] != v && pass.TypesInfo.Defs[id] != v {
			return true
		}
		switch u := useOf(id, parents); u {
		case usageConsume:
			res = usageConsume
			return false
		case usageKill:
			if res == usageNone {
				res = usageKill
			}
		}
		return true
	})
	return res
}

// useOf classifies a single identifier occurrence by its parent context.
func useOf(id *ast.Ident, parents map[ast.Node]ast.Node) usage {
	var child ast.Node = id
	parent := parents[child]
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		child = p
		parent = parents[p]
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		for _, a := range p.Args {
			if ast.Unparen(a) == child {
				return usageConsume
			}
		}
	case *ast.ReturnStmt:
		return usageConsume
	case *ast.CompositeLit:
		return usageConsume
	case *ast.KeyValueExpr:
		if p.Value == child {
			return usageConsume
		}
	case *ast.SendStmt:
		if p.Value == child {
			return usageConsume
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return usageConsume // aliased; pre-filtered, but be safe
		}
	case *ast.AssignStmt:
		for _, r := range p.Rhs {
			if ast.Unparen(r) == child {
				// A plain alias or store transfers ownership unless every
				// destination is blank.
				for _, l := range p.Lhs {
					if li, ok := l.(*ast.Ident); !ok || li.Name != "_" {
						return usageConsume
					}
				}
				return usageNone
			}
		}
		for _, l := range p.Lhs {
			if ast.Unparen(l) == child {
				return usageKill
			}
		}
	}
	return usageNone
}

// findLeak walks the CFG from the statement binding the Get result and
// reports the first path that reaches a return without consuming v.
func findLeak(pass *analysis.Pass, g *cfg.CFG, getStmt ast.Stmt, v *types.Var, parents map[ast.Node]ast.Node) (token.Pos, bool) {
	// Locate the binding statement in the flattened graph.
	startBlock, startIdx := -1, -1
	for bi, b := range g.Blocks {
		for ni, n := range b.Nodes {
			if n == ast.Node(getStmt) {
				startBlock, startIdx = bi, ni
				break
			}
		}
		if startBlock >= 0 {
			break
		}
	}
	if startBlock < 0 {
		return token.NoPos, false
	}

	visited := make(map[*cfg.Block]bool)
	var leakAt token.Pos

	var walk func(b *cfg.Block, idx int) bool // true → leak found
	walk = func(b *cfg.Block, idx int) bool {
		for i := idx; i < len(b.Nodes); i++ {
			switch classify(pass, b.Nodes[i], v, parents) {
			case usageConsume, usageKill:
				return false
			}
		}
		if len(b.Succs) == 0 {
			if len(b.Nodes) > 0 {
				if ret, ok := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt); ok {
					leakAt = ret.Pos()
					return true
				}
			}
			return false // panic or runtime exit: not a leak path
		}
		for _, succ := range b.Succs {
			if nilGuarded(pass, succ, v) {
				continue
			}
			if visited[succ] {
				continue
			}
			visited[succ] = true
			if walk(succ, 0) {
				return true
			}
		}
		return false
	}
	// The binding statement itself may sit mid-block; continue after it.
	return leakAt, walk(g.Blocks[startBlock], startIdx+1)
}

// nilGuarded reports whether entering succ implies v == nil (the then
// branch of `if v == nil`, the else branch of `if v != nil`): the pool
// returned nothing there, so the path cannot leak.
func nilGuarded(pass *analysis.Pass, succ *cfg.Block, v *types.Var) bool {
	var wantOp token.Token
	switch succ.Kind {
	case cfg.KindIfThen:
		wantOp = token.EQL
	case cfg.KindIfElse:
		wantOp = token.NEQ
	default:
		return false
	}
	ifStmt, ok := succ.Stmt.(*ast.IfStmt)
	if !ok {
		return false
	}
	bin, ok := ast.Unparen(ifStmt.Cond).(*ast.BinaryExpr)
	if !ok || bin.Op != wantOp {
		return false
	}
	isV := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == v
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
		return ok && tv.IsNil()
	}
	return (isV(bin.X) && isNil(bin.Y)) || (isV(bin.Y) && isNil(bin.X))
}
