// Package geom provides the small amount of 2-D/3-D geometry the hdc system
// needs: vectors, headings, poses and a pinhole-projection helper used by the
// synthetic drone camera.
//
// Conventions:
//   - World frame: X east, Y north, Z up. Ground plane is Z = 0.
//   - Headings are compass-style: radians clockwise from north (+Y), in
//     [0, 2π). Heading 0 looks along +Y, heading π/2 along +X.
//   - Image frame: origin top-left, x right, y down (raster convention).
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a point or direction in the plane.
type Vec2 struct {
	X, Y float64
}

// V2 is shorthand for Vec2{x, y}.
func V2(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar (z-component) cross product v×w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Unit returns v normalised to length 1. The zero vector is returned
// unchanged.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Rotate returns v rotated counter-clockwise by ang radians.
func (v Vec2) Rotate(ang float64) Vec2 {
	s, c := math.Sincos(ang)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Angle returns the mathematical angle of v in radians, in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return Vec2{v.X + (w.X-v.X)*t, v.Y + (w.Y-v.Y)*t}
}

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// Vec3 is a point or direction in 3-space.
type Vec3 struct {
	X, Y, Z float64
}

// V3 is shorthand for Vec3{x, y, z}.
func V3(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Unit returns v normalised to length 1. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// XY projects v onto the ground plane.
func (v Vec3) XY() Vec2 { return Vec2{v.X, v.Y} }

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{v.X + (w.X-v.X)*t, v.Y + (w.Y-v.Y)*t, v.Z + (w.Z-v.Z)*t}
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z)
}
