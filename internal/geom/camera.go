package geom

import (
	"errors"
	"fmt"
	"math"
)

// Camera is a pinhole camera used by the synthetic drone imaging substrate.
// It looks from Eye towards Target with the given vertical field of view and
// produces pixel coordinates in a Width×Height raster (origin top-left,
// y down).
type Camera struct {
	Eye    Vec3    // camera position in world frame
	Target Vec3    // point the optical axis passes through
	Up     Vec3    // approximate up direction (re-orthogonalised)
	VFov   float64 // vertical field of view, radians, in (0, π)
	Width  int     // raster width in pixels
	Height int     // raster height in pixels

	// derived basis, built by Build.
	right, up, fwd Vec3
	focal          float64 // focal length in pixel units
	built          bool
}

// ErrBehindCamera is returned by Project for world points at or behind the
// image plane.
var ErrBehindCamera = errors.New("geom: point behind camera")

// NewCamera constructs and initialises a camera. It panics on degenerate
// configuration (zero view direction, non-positive raster, FOV out of range)
// because those are programming errors, not runtime conditions.
func NewCamera(eye, target Vec3, vfovRad float64, width, height int) *Camera {
	c := &Camera{
		Eye:    eye,
		Target: target,
		Up:     V3(0, 0, 1),
		VFov:   vfovRad,
		Width:  width,
		Height: height,
	}
	if err := c.Build(); err != nil {
		panic(fmt.Sprintf("geom.NewCamera: %v", err))
	}
	return c
}

// Build derives the orthonormal camera basis and focal length from the
// public fields. It must be called after any field mutation.
func (c *Camera) Build() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("geom: invalid raster %dx%d", c.Width, c.Height)
	}
	if !(c.VFov > 0 && c.VFov < math.Pi) {
		return fmt.Errorf("geom: invalid vertical FOV %v", c.VFov)
	}
	fwd := c.Target.Sub(c.Eye)
	if fwd.Norm() == 0 {
		return errors.New("geom: eye and target coincide")
	}
	c.fwd = fwd.Unit()
	up := c.Up
	if up.Norm() == 0 {
		up = V3(0, 0, 1)
	}
	right := c.fwd.Cross(up)
	if right.Norm() < 1e-12 {
		// Looking straight along up; pick an arbitrary horizontal right.
		right = c.fwd.Cross(V3(0, 1, 0))
		if right.Norm() < 1e-12 {
			right = c.fwd.Cross(V3(1, 0, 0))
		}
	}
	c.right = right.Unit()
	c.up = c.right.Cross(c.fwd).Unit()
	c.focal = float64(c.Height) / (2 * math.Tan(c.VFov/2))
	c.built = true
	return nil
}

// Project maps a world point to continuous pixel coordinates. It returns
// ErrBehindCamera when the point is not strictly in front of the camera.
func (c *Camera) Project(p Vec3) (Vec2, error) {
	if !c.built {
		if err := c.Build(); err != nil {
			return Vec2{}, err
		}
	}
	d := p.Sub(c.Eye)
	z := d.Dot(c.fwd)
	if z <= 1e-9 {
		return Vec2{}, ErrBehindCamera
	}
	x := d.Dot(c.right) / z * c.focal
	y := d.Dot(c.up) / z * c.focal
	return Vec2{
		X: float64(c.Width)/2 + x,
		Y: float64(c.Height)/2 - y,
	}, nil
}

// Depth returns the forward distance from the camera to p along the optical
// axis. Negative values are behind the camera.
func (c *Camera) Depth(p Vec3) float64 {
	if !c.built {
		_ = c.Build()
	}
	return p.Sub(c.Eye).Dot(c.fwd)
}

// PixelsPerMeterAt returns the image scale (pixels per world meter) for
// objects at forward depth z. Useful for sanity checks on silhouette sizes.
func (c *Camera) PixelsPerMeterAt(z float64) float64 {
	if !c.built {
		_ = c.Build()
	}
	if z <= 0 {
		return 0
	}
	return c.focal / z
}
