package geom

import (
	"fmt"
	"math"
)

// Heading is a compass heading in radians clockwise from north (+Y),
// normalised to [0, 2π).
type Heading float64

// Common headings.
const (
	North Heading = 0
	East  Heading = math.Pi / 2
	South Heading = math.Pi
	West  Heading = 3 * math.Pi / 2
)

// NewHeading normalises rad into [0, 2π).
func NewHeading(rad float64) Heading {
	r := math.Mod(rad, 2*math.Pi)
	if r < 0 {
		r += 2 * math.Pi
	}
	return Heading(r)
}

// HeadingFromDeg converts compass degrees to a Heading.
func HeadingFromDeg(deg float64) Heading {
	return NewHeading(deg * math.Pi / 180)
}

// Deg returns the heading in compass degrees, in [0, 360).
func (h Heading) Deg() float64 { return float64(h) * 180 / math.Pi }

// Vec returns the unit ground-plane direction vector of h.
func (h Heading) Vec() Vec2 {
	s, c := math.Sincos(float64(h))
	return Vec2{X: s, Y: c}
}

// HeadingOf returns the compass heading of direction v. The zero vector maps
// to North.
func HeadingOf(v Vec2) Heading {
	if v.X == 0 && v.Y == 0 {
		return North
	}
	return NewHeading(math.Atan2(v.X, v.Y))
}

// Diff returns the signed smallest rotation from h to g, in (-π, π].
func (h Heading) Diff(g Heading) float64 {
	d := math.Mod(float64(g)-float64(h), 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// AbsDiff returns the unsigned smallest angle between h and g, in [0, π].
func (h Heading) AbsDiff(g Heading) float64 { return math.Abs(h.Diff(g)) }

// Add returns h rotated clockwise by rad, renormalised.
func (h Heading) Add(rad float64) Heading { return NewHeading(float64(h) + rad) }

// String implements fmt.Stringer.
func (h Heading) String() string { return fmt.Sprintf("%.1f°", h.Deg()) }

// Pose is a position with an orientation on the ground plane plus altitude —
// the minimal description of where a drone is and where it points.
type Pose struct {
	Pos     Vec3
	Heading Heading
}

// Forward returns the ground-plane unit vector the pose faces.
func (p Pose) Forward() Vec2 { return p.Heading.Vec() }

// String implements fmt.Stringer.
func (p Pose) String() string {
	return fmt.Sprintf("pos=%v hdg=%v", p.Pos, p.Heading)
}

// Deg2Rad converts degrees to radians.
func Deg2Rad(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// WrapAngle normalises an angle to (-π, π].
func WrapAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	}
	if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
