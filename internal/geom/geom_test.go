package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec2Basics(t *testing.T) {
	tests := []struct {
		name string
		got  Vec2
		want Vec2
	}{
		{"add", V2(1, 2).Add(V2(3, -1)), V2(4, 1)},
		{"sub", V2(1, 2).Sub(V2(3, -1)), V2(-2, 3)},
		{"scale", V2(1, -2).Scale(2.5), V2(2.5, -5)},
		{"unit", V2(3, 4).Unit(), V2(0.6, 0.8)},
		{"unit zero", V2(0, 0).Unit(), V2(0, 0)},
		{"lerp mid", V2(0, 0).Lerp(V2(2, 4), 0.5), V2(1, 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !almostEq(tt.got.X, tt.want.X, eps) || !almostEq(tt.got.Y, tt.want.Y, eps) {
				t.Fatalf("got %v want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVec2NormDot(t *testing.T) {
	if got := V2(3, 4).Norm(); !almostEq(got, 5, eps) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := V2(1, 2).Dot(V2(3, 4)); !almostEq(got, 11, eps) {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := V2(1, 0).Cross(V2(0, 1)); !almostEq(got, 1, eps) {
		t.Errorf("Cross = %v, want 1", got)
	}
	if got := V2(1, 1).Dist(V2(4, 5)); !almostEq(got, 5, eps) {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestVec2Rotate(t *testing.T) {
	got := V2(1, 0).Rotate(math.Pi / 2)
	if !almostEq(got.X, 0, eps) || !almostEq(got.Y, 1, eps) {
		t.Fatalf("rotate 90°: got %v, want (0,1)", got)
	}
	// Rotation preserves norm (property check over a few values).
	for _, ang := range []float64{0.1, 1, 2, -3, 5} {
		v := V2(2, -7)
		if !almostEq(v.Rotate(ang).Norm(), v.Norm(), 1e-9) {
			t.Fatalf("rotation by %v changed norm", ang)
		}
	}
}

func TestVec3Cross(t *testing.T) {
	got := V3(1, 0, 0).Cross(V3(0, 1, 0))
	want := V3(0, 0, 1)
	if got != want {
		t.Fatalf("Cross = %v, want %v", got, want)
	}
	// Anti-commutativity property (inputs bounded to avoid float overflow,
	// which is not the property under test).
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := bounded3(ax, ay, az), bounded3(bx, by, bz)
		c1, c2 := a.Cross(b), b.Cross(a).Scale(-1)
		return almostEq(c1.X, c2.X, 1e-6*(1+math.Abs(c1.X))) &&
			almostEq(c1.Y, c2.Y, 1e-6*(1+math.Abs(c1.Y))) &&
			almostEq(c1.Z, c2.Z, 1e-6*(1+math.Abs(c1.Z)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := bounded3(ax, ay, az), bounded3(bx, by, bz)
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 {
			return true
		}
		return math.Abs(c.Dot(a))/(scale*scale+1) < 1e-6 &&
			math.Abs(c.Dot(b))/(scale*scale+1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// bounded3 maps arbitrary float64s (including NaN/Inf/huge) into a tame
// [-1000, 1000] cube so float overflow does not masquerade as an algebra
// failure in property tests.
func bounded3(x, y, z float64) Vec3 {
	f := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 1
		}
		return math.Mod(v, 1000)
	}
	return V3(f(x), f(y), f(z))
}

func TestHeadingNormalisation(t *testing.T) {
	tests := []struct {
		in   float64
		want float64 // degrees
	}{
		{0, 0},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 270},
		{5 * math.Pi, 180},
		{math.Pi / 2, 90},
	}
	for _, tt := range tests {
		h := NewHeading(tt.in)
		if !almostEq(h.Deg(), tt.want, 1e-6) {
			t.Errorf("NewHeading(%v).Deg() = %v, want %v", tt.in, h.Deg(), tt.want)
		}
	}
}

func TestHeadingVec(t *testing.T) {
	tests := []struct {
		h    Heading
		want Vec2
	}{
		{North, V2(0, 1)},
		{East, V2(1, 0)},
		{South, V2(0, -1)},
		{West, V2(-1, 0)},
	}
	for _, tt := range tests {
		got := tt.h.Vec()
		if !almostEq(got.X, tt.want.X, eps) || !almostEq(got.Y, tt.want.Y, eps) {
			t.Errorf("%v.Vec() = %v, want %v", tt.h, got, tt.want)
		}
		// Round trip.
		if back := HeadingOf(tt.want); !almostEq(back.AbsDiff(tt.h), 0, 1e-9) {
			t.Errorf("HeadingOf(%v) = %v, want %v", tt.want, back, tt.h)
		}
	}
}

func TestHeadingDiff(t *testing.T) {
	tests := []struct {
		a, b Heading
		want float64 // degrees, signed
	}{
		{North, East, 90},
		{East, North, -90},
		{HeadingFromDeg(350), HeadingFromDeg(10), 20},
		{HeadingFromDeg(10), HeadingFromDeg(350), -20},
		{North, South, 180},
	}
	for _, tt := range tests {
		got := Rad2Deg(tt.a.Diff(tt.b))
		if !almostEq(got, tt.want, 1e-6) {
			t.Errorf("Diff(%v,%v) = %v°, want %v°", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestHeadingDiffProperty(t *testing.T) {
	f := func(a, b float64) bool {
		ha, hb := NewHeading(a), NewHeading(b)
		d := ha.Diff(hb)
		if d <= -math.Pi || d > math.Pi+1e-12 {
			return false
		}
		// Applying the diff gets us to b.
		return ha.Add(d).AbsDiff(hb) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapAngle(t *testing.T) {
	for _, a := range []float64{-10, -math.Pi, 0, 1, math.Pi, 10, 100} {
		w := WrapAngle(a)
		if w <= -math.Pi-1e-12 || w > math.Pi+1e-12 {
			t.Errorf("WrapAngle(%v) = %v out of range", a, w)
		}
		if s, c := math.Sincos(a); !almostEq(math.Sin(w), s, 1e-9) || !almostEq(math.Cos(w), c, 1e-9) {
			t.Errorf("WrapAngle(%v) = %v not congruent", a, w)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestCameraProjectCenter(t *testing.T) {
	// Camera 10 m up looking straight down at origin.
	cam := NewCamera(V3(0, 0, 10), V3(0, 0, 0), Deg2Rad(60), 200, 100)
	px, err := cam.Project(V3(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(px.X, 100, 1e-6) || !almostEq(px.Y, 50, 1e-6) {
		t.Fatalf("center projects to %v, want (100,50)", px)
	}
}

func TestCameraBehind(t *testing.T) {
	cam := NewCamera(V3(0, 0, 0), V3(0, 1, 0), Deg2Rad(60), 100, 100)
	if _, err := cam.Project(V3(0, -1, 0)); err == nil {
		t.Fatal("expected ErrBehindCamera")
	}
}

func TestCameraScaleWithDepth(t *testing.T) {
	cam := NewCamera(V3(0, 0, 1.5), V3(0, 10, 1.5), Deg2Rad(50), 400, 400)
	// An object twice as far away should appear half the size.
	s1 := cam.PixelsPerMeterAt(3)
	s2 := cam.PixelsPerMeterAt(6)
	if !almostEq(s1/s2, 2, 1e-9) {
		t.Fatalf("scale ratio = %v, want 2", s1/s2)
	}
}

func TestCameraLateralOffset(t *testing.T) {
	cam := NewCamera(V3(0, 0, 1), V3(0, 10, 1), Deg2Rad(60), 300, 300)
	left, err := cam.Project(V3(-1, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	right, err := cam.Project(V3(1, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !(left.X < 150 && right.X > 150) {
		t.Fatalf("lateral projection wrong: left=%v right=%v", left, right)
	}
	up, err := cam.Project(V3(0, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !(up.Y < 150) {
		t.Fatalf("vertical projection wrong: up=%v", up)
	}
}

func TestCameraBuildErrors(t *testing.T) {
	c := &Camera{Eye: V3(0, 0, 0), Target: V3(0, 0, 0), VFov: 1, Width: 10, Height: 10}
	if err := c.Build(); err == nil {
		t.Error("coincident eye/target should fail")
	}
	c = &Camera{Eye: V3(0, 0, 0), Target: V3(0, 1, 0), VFov: 0, Width: 10, Height: 10}
	if err := c.Build(); err == nil {
		t.Error("zero FOV should fail")
	}
	c = &Camera{Eye: V3(0, 0, 0), Target: V3(0, 1, 0), VFov: 1, Width: 0, Height: 10}
	if err := c.Build(); err == nil {
		t.Error("zero raster should fail")
	}
}

func TestPoseForward(t *testing.T) {
	p := Pose{Pos: V3(1, 2, 3), Heading: East}
	f := p.Forward()
	if !almostEq(f.X, 1, eps) || !almostEq(f.Y, 0, eps) {
		t.Fatalf("Forward = %v, want (1,0)", f)
	}
}
