package trace

import (
	"sync"
	"sync/atomic"
	"testing"
)

// drive pushes one frame through all seven boundaries and finishes it.
func drive(t *Tracer, owner uint32, term Terminal) Handle {
	h := t.Begin(owner)
	for st := Stage(0); st < numStages; st++ {
		h.Stamp(st)
	}
	h.Finish(term)
	return h
}

func TestStampAndSnapshotBasics(t *testing.T) {
	tr := New(2, 16)
	id := tr.LabelID("drone-7")
	drive(tr, id, TerminalDeliver)
	drive(tr, 0, TerminalShed)

	snap := tr.Snapshot(0)
	if !snap.Armed {
		t.Fatalf("expected armed snapshot")
	}
	if snap.Totals.Begun != 2 || snap.Totals.Delivered != 1 || snap.Totals.Shed != 1 {
		t.Fatalf("totals = %+v", snap.Totals)
	}
	if len(snap.Frames) != 2 {
		t.Fatalf("expected 2 frames, got %d", len(snap.Frames))
	}
	// Newest first: frame 2 (shed) before frame 1 (deliver, owner-attributed).
	if snap.Frames[0].ID != 2 || snap.Frames[0].Terminal != "shed" {
		t.Fatalf("frame[0] = %+v", snap.Frames[0])
	}
	if snap.Frames[1].ID != 1 || snap.Frames[1].Owner != "drone-7" || snap.Frames[1].Terminal != "deliver" {
		t.Fatalf("frame[1] = %+v", snap.Frames[1])
	}
	if got := len(snap.Frames[1].Stages); got != int(numStages) {
		t.Fatalf("expected %d stage spans, got %d", numStages, got)
	}
	if snap.Frames[1].Stages[0].Stage != "offer" || snap.Frames[1].Stages[6].Stage != "deliver" {
		t.Fatalf("stage order wrong: %+v", snap.Frames[1].Stages)
	}
	if len(snap.Stages) != numSpans {
		t.Fatalf("expected %d span aggregates, got %d", numSpans, len(snap.Stages))
	}
	for _, st := range snap.Stages {
		if st.Count != 2 {
			t.Fatalf("span %q count = %d, want 2", st.Stage, st.Count)
		}
		if st.P50Ns <= 0 || st.P99Ns < st.P50Ns {
			t.Fatalf("span %q percentiles p50=%d p99=%d", st.Stage, st.P50Ns, st.P99Ns)
		}
	}
}

func TestDisarmedBeginInactive(t *testing.T) {
	tr := New(1, 16)
	tr.Disarm()
	h := tr.Begin(0)
	if h.Active() || h.ID() != 0 {
		t.Fatalf("disarmed Begin must return the inactive handle, got %+v", h)
	}
	// Every hook on the inactive handle must be a no-op.
	h.Stamp(StageDequeue)
	h.StampAt(StageClassify, 123)
	h.Finish(TerminalDeliver)
	snap := tr.Snapshot(0)
	if snap.Totals.Begun != 0 || len(snap.Frames) != 0 {
		t.Fatalf("disarmed tracer recorded: %+v", snap.Totals)
	}
	tr.Arm()
	if h := tr.Begin(0); !h.Active() {
		t.Fatalf("re-armed Begin must be active")
	}
}

// TestRingWrap drives 10× the ring capacity through a one-worker tracer and
// checks the buffer holds exactly the newest records, all complete, with no
// frame counted twice.
func TestRingWrap(t *testing.T) {
	tr := New(1, 16) // capacity rounds to 16
	const total = 160
	for i := 0; i < total; i++ {
		drive(tr, 0, TerminalDeliver)
	}
	snap := tr.Snapshot(0)
	if snap.Totals.Begun != total || snap.Totals.Delivered != total {
		t.Fatalf("totals = %+v", snap.Totals)
	}
	if len(snap.Frames) != 16 {
		t.Fatalf("wrapped ring should retain 16 frames, got %d", len(snap.Frames))
	}
	seen := map[uint64]bool{}
	for i, f := range snap.Frames {
		want := uint64(total - i)
		if f.ID != want {
			t.Fatalf("frame[%d].ID = %d, want %d (newest first)", i, f.ID, want)
		}
		if seen[f.ID] {
			t.Fatalf("frame %d appears twice", f.ID)
		}
		seen[f.ID] = true
	}
}

// TestFinishExactlyOnce races many Finish calls (mixed terminals) on one
// handle: exactly one must win, and the terminal counters must agree.
func TestFinishExactlyOnce(t *testing.T) {
	tr := New(1, 16)
	h := tr.Begin(0)
	h.Stamp(StageEnqueue)
	h.Stamp(StageDequeue)
	h.Stamp(StageDeliver)

	var wg sync.WaitGroup
	terms := []Terminal{TerminalDeliver, TerminalAbandon, TerminalShed, TerminalAbandon}
	for _, term := range terms {
		wg.Add(1)
		go func(term Terminal) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Finish(term)
			}
		}(term)
	}
	wg.Wait()

	snap := tr.Snapshot(0)
	finished := snap.Totals.Delivered + snap.Totals.Shed + snap.Totals.Abandoned
	if finished != 1 {
		t.Fatalf("finish won %d times, want exactly 1 (totals %+v)", finished, snap.Totals)
	}
	if len(snap.Frames) != 1 {
		t.Fatalf("expected 1 completed frame, got %d", len(snap.Frames))
	}
}

// TestStaleHandleCannotFinishLappedSlot checks the generation claim: once a
// slot is reclaimed by a later frame, the original handle's Finish must not
// corrupt it.
func TestStaleHandleCannotFinishLappedSlot(t *testing.T) {
	tr := New(1, 16)
	stale := tr.Begin(0) // frame 1, left unfinished
	for i := 0; i < 16; i++ {
		drive(tr, 0, TerminalDeliver) // laps the ring, reclaiming frame 1's slot
	}
	before := tr.Snapshot(0).Totals
	stale.Finish(TerminalAbandon)
	after := tr.Snapshot(0).Totals
	if after.Abandoned != before.Abandoned {
		t.Fatalf("stale handle finished a lapped slot: %+v -> %+v", before, after)
	}
}

// TestSnapshotInvariantUnderLoad scrapes continuously while writers drive
// frames with mixed terminals; run under -race this doubles as the
// torn-read check. Invariants: delivered+shed+abandoned ≤ begun in every
// snapshot, and every visible frame is internally consistent (monotone
// non-negative offsets, known terminal).
func TestSnapshotInvariantUnderLoad(t *testing.T) {
	tr := New(4, 32)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := tr.LabelID([]string{"a", "b", "c", "d"}[w])
			for i := 0; !stop.Load(); i++ {
				term := []Terminal{TerminalDeliver, TerminalShed, TerminalAbandon}[i%3]
				drive(tr, owner, term)
			}
		}(w)
	}
	for scrape := 0; scrape < 200; scrape++ {
		snap := tr.Snapshot(16)
		finished := snap.Totals.Delivered + snap.Totals.Shed + snap.Totals.Abandoned
		if finished > snap.Totals.Begun {
			t.Fatalf("finished %d > begun %d", finished, snap.Totals.Begun)
		}
		if len(snap.Frames) > 16 {
			t.Fatalf("limit violated: %d frames", len(snap.Frames))
		}
		for _, f := range snap.Frames {
			if f.Terminal == "inflight" {
				t.Fatalf("snapshot leaked an in-flight frame: %+v", f)
			}
			if f.TotalNs < 0 {
				t.Fatalf("negative total on frame %d", f.ID)
			}
			for _, sp := range f.Stages {
				if sp.SinceNs < 0 {
					t.Fatalf("torn read: frame %d stage %s span %dns", f.ID, sp.Stage, sp.SinceNs)
				}
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestLabelInterning(t *testing.T) {
	tr := New(1, 16)
	if got := tr.LabelID(""); got != 0 {
		t.Fatalf("empty label id = %d, want 0", got)
	}
	a := tr.LabelID("alpha")
	b := tr.LabelID("beta")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("label ids not distinct: %d %d", a, b)
	}
	if again := tr.LabelID("alpha"); again != a {
		t.Fatalf("re-interning alpha gave %d, want %d", again, a)
	}
	if got := tr.label(a); got != "alpha" {
		t.Fatalf("label(%d) = %q", a, got)
	}
	if got := tr.label(999); got != "" {
		t.Fatalf("out-of-range label = %q, want empty", got)
	}
}

func TestSpanNamesOrder(t *testing.T) {
	names := SpanNames()
	want := []string{"ingest", "queue", "binarize", "features", "classify", "deliver"}
	if len(names) != len(want) {
		t.Fatalf("SpanNames() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("SpanNames()[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestPercentileUpperNs(t *testing.T) {
	var counts [histBuckets]uint64
	counts[3] = 99 // 99 samples in [1024, 2048)
	counts[8] = 1  // 1 sample in [32768, 65536)
	if got := percentileUpperNs(counts[:], 100, 50); got != 256<<3 {
		t.Fatalf("p50 = %d, want %d", got, 256<<3)
	}
	if got := percentileUpperNs(counts[:], 100, 99); got != 256<<8 {
		t.Fatalf("p99 = %d, want %d (rank 100 lands on the lone outlier)", got, 256<<8)
	}
	if got := percentileUpperNs(counts[:], 100, 100); got != 256<<8 {
		t.Fatalf("p100 = %d, want %d", got, 256<<8)
	}
	if got := percentileUpperNs(counts[:], 0, 50); got <= 0 {
		t.Fatalf("empty histogram percentile = %d", got)
	}
}

// BenchmarkTraceDisabled pins the disarmed cost of the full per-frame hook
// set: Begin (the one atomic load) plus every stamp and the terminal on the
// inactive handle. This is a benchgate key benchmark — the contract is that
// tracing compiled-in-but-off costs a frame essentially nothing.
func BenchmarkTraceDisabled(b *testing.B) {
	tr := New(4, 64)
	tr.Disarm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := tr.Begin(0)
		h.Stamp(StageOffer)
		h.Stamp(StageEnqueue)
		h.Stamp(StageDequeue)
		h.StampAt(StageClassify, 0)
		h.Stamp(StageDeliver)
		h.Finish(TerminalDeliver)
	}
}

// BenchmarkTraceArmed is the armed counterpart: a full seven-boundary trace
// per iteration, including the slot claim and the terminal's histogram
// folds. Informational (not gated) — the interesting number is the ratio to
// BenchmarkTraceDisabled.
func BenchmarkTraceArmed(b *testing.B) {
	tr := New(4, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drive(tr, 0, TerminalDeliver)
	}
}
