// Package trace is the always-on per-frame flight recorder of the
// recognition pipeline: every frame admitted to the pool carries a
// monotonically assigned ID, and each stage boundary it crosses — ingest
// offer, submit, worker dequeue, binarize, features, classify, delivery —
// stamps one nanosecond timestamp into a lock-free per-worker ring buffer.
// /tracez (internal/server) serves the recent completed traces plus a
// cumulative per-stage latency breakdown (p50/p99), which is what answers
// "where did frame 48213's 40 ms go?" without attaching a profiler.
//
// The design constraint is the ros2probe one, shared with
// internal/failpoint: selectively enabled instrumentation must cost
// ~nothing when idle. Disarmed, Begin is a single atomic load and every
// other hook is a nil-handle check (pinned by BenchmarkTraceDisabled in the
// benchgate key set); armed, a stage boundary is one atomic store into the
// frame's claimed ring slot. Slots are published with a per-slot seqlock
// (odd generation = in flight, even = complete, generation re-checked after
// the copy), so a /tracez scrape under full load can never observe a torn
// record — at worst it skips a slot being rewritten.
//
// A trace ends in exactly one terminal event: "deliver" (the result reached
// the consumer, errors included), "shed" (evicted at an ingest ring), or
// "abandon" (dropped by a deadline-abandoned stream). Finish's
// compare-and-swap on the slot generation is what makes the terminal
// exactly-once even when racing paths both try to end the same frame.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes one boundary timestamp in a frame's trace record. Stages a
// frame never reached keep a zero timestamp and are omitted from snapshots;
// a frame entering through Stream.Submit directly (no ingest ring) simply
// has no StageOffer stamp.
type Stage int

// The stage boundaries of one frame's journey through the pipeline, in
// order. StageBinarize/StageFeatures/StageClassify are stamped by the
// worker from the recognizer's own per-stage timings, so their spans match
// what the recognizer measured; custom Proc stages stamp only
// StageClassify (the whole proc counts as classification).
const (
	StageOffer    Stage = iota // Source.Offer accepted the frame into an ingest ring
	StageEnqueue               // Submit claimed a sequence number and queued the frame
	StageDequeue               // a pool worker picked the frame off the shared queue
	StageBinarize              // threshold + morphological clean-up done
	StageFeatures              // contour signature + SAX encode done
	StageClassify              // dictionary match done (or the Proc returned)
	StageDeliver               // the ordered result reached the consumer
	numStages
)

// stageNames are the wire names of the boundaries.
var stageNames = [numStages]string{
	"offer", "enqueue", "dequeue", "binarize", "features", "classify", "deliver",
}

// Terminal is how a frame's trace ended.
type Terminal uint32

// Terminal events. Every begun trace ends in exactly one of the nonzero
// values; TerminalNone marks a record still in flight (skipped by
// snapshots).
const (
	TerminalNone    Terminal = iota
	TerminalDeliver          // result delivered to the consumer (errors included)
	TerminalShed             // evicted at an ingest ring (drop-oldest or forward fault)
	TerminalAbandon          // dropped by an abandoned stream (deadline, gone consumer)
)

// String returns the terminal's wire name.
func (t Terminal) String() string {
	switch t {
	case TerminalDeliver:
		return "deliver"
	case TerminalShed:
		return "shed"
	case TerminalAbandon:
		return "abandon"
	default:
		return "inflight"
	}
}

// numSpans is the number of aggregated latency intervals in the breakdown.
const numSpans = 6

// spans are the aggregated per-stage latency intervals, each bounded by two
// stage stamps. The breakdown /tracez serves (and BenchmarkStageBreakdown
// re-exports as sub-benchmarks) is one histogram per span.
var spans = [numSpans]struct {
	name     string
	from, to Stage
}{
	{"ingest", StageOffer, StageEnqueue},  // time parked in the ingest ring
	{"queue", StageEnqueue, StageDequeue}, // time in the shared worker queue
	{"binarize", StageDequeue, StageBinarize},
	{"features", StageBinarize, StageFeatures},
	{"classify", StageFeatures, StageClassify},
	{"deliver", StageClassify, StageDeliver}, // reorder + delivery-channel wait
}

// SpanNames returns the aggregate breakdown's span names in pipeline order
// — the sub-benchmark names BenchmarkStageBreakdown emits.
func SpanNames() []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.name
	}
	return out
}

// slot is one frame's trace record in a ring. All fields are atomics so a
// concurrent scrape is race-free by construction; gen is the seqlock.
type slot struct {
	gen      atomic.Uint64 // odd = in flight / being written, even = complete
	id       atomic.Uint64
	owner    atomic.Uint32 // label-table index, 0 = unattributed
	terminal atomic.Uint32
	ts       [numStages]atomic.Int64 // ns since the tracer's start; 0 = not reached
}

// ring is one worker's trace buffer: slots are claimed with an atomic
// counter, so claiming is lock-free from any goroutine, and each claimed
// slot has exactly one writer until its terminal event.
type ring struct {
	head  atomic.Uint64
	slots []slot
}

// histBuckets sizes the per-span latency histograms: bucket 0 holds
// [0, 256ns); bucket i≥1 holds [256ns·2^(i-1), 256ns·2^i); the last bucket
// is open-ended (≈9 min up).
const (
	histBuckets   = 32
	histBucket0Ns = 256
)

// spanHist is one span's cumulative latency histogram. Recording is a few
// atomic adds on the terminal path — never on a stage boundary.
type spanHist struct {
	count   atomic.Uint64
	totalNs atomic.Int64
	maxNs   atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// record folds one observed span duration into the histogram.
func (h *spanHist) record(ns int64) {
	h.count.Add(1)
	h.totalNs.Add(ns)
	for {
		old := h.maxNs.Load()
		if ns <= old || h.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
	b := 0
	for lim := int64(histBucket0Ns); ns >= lim && b < histBuckets-1; lim *= 2 {
		b++
	}
	h.buckets[b].Add(1)
}

// Tracer is the pipeline's trace recorder: one ring per worker, a frame-ID
// counter, the owner-label table and the cumulative span histograms. All
// methods are safe for concurrent use.
type Tracer struct {
	armed atomic.Bool
	next  atomic.Uint64 // frame IDs
	rings []*ring
	cap   int

	start     time.Time // monotonic base for all stamps
	startUnix int64     // wall clock at start, anchors StartUnixNs on the wire

	hists [numSpans]spanHist

	// Totals: begun counts Begin claims; the other three count terminal
	// events. Snapshot loads the terminals before begun so the
	// delivered+shed+abandoned ≤ begun invariant holds at every observable
	// instant.
	begun     atomic.Uint64
	delivered atomic.Uint64
	shed      atomic.Uint64
	abandoned atomic.Uint64

	labelMu sync.RWMutex
	labels  []string
	labelID map[string]uint32
}

// DefaultBuffer is the per-worker ring capacity used when the pipeline
// config leaves TraceBuffer zero.
const DefaultBuffer = 256

// New builds a tracer with one ring of perWorker slots for each of workers
// lanes, armed. perWorker is rounded up to a power of two (minimum 16) so
// slot selection is a mask.
func New(workers, perWorker int) *Tracer {
	if workers < 1 {
		workers = 1
	}
	if perWorker <= 0 {
		perWorker = DefaultBuffer
	}
	capPow := 16
	for capPow < perWorker {
		capPow <<= 1
	}
	now := time.Now()
	t := &Tracer{
		rings:     make([]*ring, workers),
		cap:       capPow,
		start:     now,
		startUnix: now.UnixNano(),
		labels:    []string{""},
		labelID:   map[string]uint32{"": 0},
	}
	for i := range t.rings {
		t.rings[i] = &ring{slots: make([]slot, capPow)}
	}
	t.armed.Store(true)
	return t
}

// Arm enables recording. New traces begin on the next Begin; frames already
// in flight while disarmed stay untraced.
func (t *Tracer) Arm() { t.armed.Store(true) }

// Disarm stops recording: Begin returns an inactive handle (one atomic
// load), and every stamp on an inactive handle is a nil check. Frames whose
// trace began while armed keep stamping into their claimed slot.
func (t *Tracer) Disarm() { t.armed.Store(false) }

// Armed reports whether new traces are being recorded.
func (t *Tracer) Armed() bool { return t.armed.Load() }

// Buffer returns the per-worker ring capacity (after power-of-two rounding).
func (t *Tracer) Buffer() int { return t.cap }

// Workers returns the number of per-worker rings.
func (t *Tracer) Workers() int { return len(t.rings) }

// LabelID interns an owner label for stamping; the zero ID is the empty
// (unattributed) label. Called at stream registration, never per frame.
func (t *Tracer) LabelID(label string) uint32 {
	if label == "" {
		return 0
	}
	t.labelMu.RLock()
	id, ok := t.labelID[label]
	t.labelMu.RUnlock()
	if ok {
		return id
	}
	t.labelMu.Lock()
	defer t.labelMu.Unlock()
	if id, ok := t.labelID[label]; ok {
		return id
	}
	id = uint32(len(t.labels))
	t.labels = append(t.labels, label)
	t.labelID[label] = id
	return id
}

// label resolves an interned ID back to its string.
func (t *Tracer) label(id uint32) string {
	t.labelMu.RLock()
	defer t.labelMu.RUnlock()
	if int(id) < len(t.labels) {
		return t.labels[id]
	}
	return ""
}

// now returns nanoseconds since the tracer's monotonic base.
func (t *Tracer) now() int64 { return int64(time.Since(t.start)) }

// Handle is one frame's claim on a trace slot. The zero Handle is inactive:
// every method on it is a branch and returns immediately, which is how the
// disarmed pipeline pays nothing past Begin's single atomic load. Handles
// travel by value with the frame (in the pipeline job and StreamResult).
type Handle struct {
	t   *Tracer
	s   *slot
	gen uint64 // the odd generation this frame owns; stale after Finish
	id  uint64
}

// Active reports whether this handle records anywhere.
func (h Handle) Active() bool { return h.s != nil }

// ID returns the frame's trace ID (0 for an inactive handle).
func (h Handle) ID() uint64 { return h.id }

// Begin claims a trace record for a new frame attributed to the interned
// owner label. Disarmed, it is exactly one atomic load and returns the
// inactive handle. Armed, it assigns the next frame ID, claims the next
// slot of the frame's ring and resets it behind an odd seqlock generation.
func (t *Tracer) Begin(owner uint32) Handle {
	if !t.armed.Load() {
		return Handle{}
	}
	id := t.next.Add(1)
	r := t.rings[int(id)%len(t.rings)]
	idx := r.head.Add(1) - 1
	s := &r.slots[int(idx)&(t.cap-1)]
	// Claim: the odd generation derived from the global claim index is
	// unique per claimant, so a stale handle from a lapped frame can never
	// Finish this record (its CAS on the old generation fails).
	gen := 2*idx + 1
	s.gen.Store(gen)
	s.id.Store(id)
	s.owner.Store(owner)
	s.terminal.Store(uint32(TerminalNone))
	for i := range s.ts {
		s.ts[i].Store(0)
	}
	t.begun.Add(1)
	return Handle{t: t, s: s, gen: gen, id: id}
}

// Stamp records stage crossing now. One atomic store on an active handle,
// one branch on an inactive one. It returns the stamped offset (ns since
// the tracer base; 0 when inactive) so callers chaining derived stamps —
// the worker's recognizer-timing split — can reuse it.
func (h Handle) Stamp(stage Stage) int64 {
	if h.s == nil {
		return 0
	}
	ns := h.t.now()
	h.s.ts[stage].Store(ns)
	return ns
}

// StampAt records stage crossing at an explicit offset (ns since the tracer
// base), for boundaries derived from another measurement rather than
// observed directly.
func (h Handle) StampAt(stage Stage, ns int64) {
	if h.s == nil {
		return
	}
	h.s.ts[stage].Store(ns)
}

// Finish ends the trace with the given terminal event. Exactly one Finish
// per frame wins (the seqlock CAS from the frame's odd generation); late
// or duplicate calls — a racing deliver and abandon, a stale handle on a
// lapped slot — are no-ops. The winning Finish folds the frame's completed
// spans into the cumulative per-stage histograms and publishes the record
// for scraping.
func (h Handle) Finish(term Terminal) {
	if h.s == nil || term == TerminalNone {
		return
	}
	h.s.terminal.Store(uint32(term))
	if !h.s.gen.CompareAndSwap(h.gen, h.gen+1) {
		return
	}
	for i, sp := range spans {
		a := h.s.ts[sp.from].Load()
		b := h.s.ts[sp.to].Load()
		if a > 0 && b >= a {
			h.t.hists[i].record(b - a)
		}
	}
	switch term {
	case TerminalDeliver:
		h.t.delivered.Add(1)
	case TerminalShed:
		h.t.shed.Add(1)
	case TerminalAbandon:
		h.t.abandoned.Add(1)
	}
}

// StageSpan is one boundary of a frame's trace on the wire: the stage name,
// the absolute instant it was crossed, and the duration since the previous
// stamped boundary (0 for the first).
type StageSpan struct {
	Stage   string `json:"stage"`
	AtUnix  int64  `json:"at_unix_ns"`
	SinceNs int64  `json:"since_prev_ns"`
}

// FrameTrace is one completed frame's record on the wire.
type FrameTrace struct {
	ID          uint64      `json:"frame_id"`
	Owner       string      `json:"owner,omitempty"`
	Terminal    string      `json:"terminal"`
	StartUnixNs int64       `json:"start_unix_ns"`
	TotalNs     int64       `json:"total_ns"`
	Stages      []StageSpan `json:"stages"`
}

// SpanStats is one span's cumulative latency aggregate on the wire.
type SpanStats struct {
	Stage   string `json:"stage"`
	Count   uint64 `json:"count"`
	MeanNs  int64  `json:"mean_ns"`
	P50Ns   int64  `json:"p50_ns"`
	P99Ns   int64  `json:"p99_ns"`
	MaxNs   int64  `json:"max_ns"`
	TotalNs int64  `json:"total_ns"`
}

// Totals are the tracer's lifetime counters. Delivered+Shed+Abandoned ≤
// Begun holds at every observable instant (the difference is frames in
// flight plus records lapped before finishing).
type Totals struct {
	Begun     uint64 `json:"begun"`
	Delivered uint64 `json:"delivered"`
	Shed      uint64 `json:"shed"`
	Abandoned uint64 `json:"abandoned"`
}

// Snapshot is the scrape /tracez serves.
type Snapshot struct {
	Armed   bool         `json:"armed"`
	Workers int          `json:"workers"`
	Buffer  int          `json:"buffer_per_worker"`
	Totals  Totals       `json:"totals"`
	Stages  []SpanStats  `json:"stages"`
	Frames  []FrameTrace `json:"frames"`
}

// Snapshot collects the most recent completed frame traces (newest first,
// at most limit; limit ≤ 0 means everything buffered) and the cumulative
// per-stage breakdown. Slots mid-write are skipped, never torn: each is
// copied under its seqlock generation and discarded if the generation moved.
func (t *Tracer) Snapshot(limit int) Snapshot {
	snap := Snapshot{
		Armed:   t.armed.Load(),
		Workers: len(t.rings),
		Buffer:  t.cap,
	}
	// Terminal counters before begun: a Begin racing this scrape may push
	// begun past the sum, never the other way around.
	snap.Totals.Delivered = t.delivered.Load()
	snap.Totals.Shed = t.shed.Load()
	snap.Totals.Abandoned = t.abandoned.Load()
	snap.Totals.Begun = t.begun.Load()

	for i, sp := range spans {
		h := &t.hists[i]
		st := SpanStats{Stage: sp.name, Count: h.count.Load(), MaxNs: h.maxNs.Load(), TotalNs: h.totalNs.Load()}
		if st.Count > 0 {
			st.MeanNs = st.TotalNs / int64(st.Count)
			var counts [histBuckets]uint64
			var total uint64
			for b := range counts {
				counts[b] = h.buckets[b].Load()
				total += counts[b]
			}
			st.P50Ns = percentileUpperNs(counts[:], total, 50)
			st.P99Ns = percentileUpperNs(counts[:], total, 99)
		}
		snap.Stages = append(snap.Stages, st)
	}

	type raw struct {
		id       uint64
		owner    uint32
		terminal Terminal
		ts       [numStages]int64
	}
	var recs []raw
	for _, r := range t.rings {
		for i := range r.slots {
			s := &r.slots[i]
			g1 := s.gen.Load()
			if g1 == 0 || g1%2 == 1 {
				continue // never used, or mid-write
			}
			var rec raw
			rec.id = s.id.Load()
			rec.owner = s.owner.Load()
			rec.terminal = Terminal(s.terminal.Load())
			for j := range rec.ts {
				rec.ts[j] = s.ts[j].Load()
			}
			if s.gen.Load() != g1 {
				continue // reclaimed under us; the copy may mix frames
			}
			if rec.terminal == TerminalNone {
				continue
			}
			recs = append(recs, rec)
		}
	}
	// Newest first; frame IDs are the global order.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].id > recs[j-1].id; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}
	for _, rec := range recs {
		ft := FrameTrace{ID: rec.id, Owner: t.label(rec.owner), Terminal: rec.terminal.String()}
		var first, last, prev int64
		for st := Stage(0); st < numStages; st++ {
			ns := rec.ts[st]
			if ns == 0 {
				continue
			}
			if first == 0 {
				first = ns
			}
			span := StageSpan{Stage: stageNames[st], AtUnix: t.startUnix + ns}
			if prev > 0 {
				span.SinceNs = ns - prev
			}
			ft.Stages = append(ft.Stages, span)
			prev = ns
			if ns > last {
				last = ns
			}
		}
		ft.StartUnixNs = t.startUnix + first
		ft.TotalNs = last - first
		snap.Frames = append(snap.Frames, ft)
	}
	return snap
}

// percentileUpperNs returns the exclusive upper bound of the histogram
// bucket containing the p-th percentile rank (the estimator from the
// service layer's latency histograms, at trace resolution).
func percentileUpperNs(counts []uint64, total uint64, p int) int64 {
	rank := total*uint64(p)/100 + 1
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return int64(histBucket0Ns) << uint(i)
		}
	}
	return int64(histBucket0Ns) << uint(len(counts)-1)
}
