// Package orchard simulates the paper's motivating environment (§I): a
// cherry plantation with insect fly traps the drone must read, and humans —
// supervisors, workers, visitors — moving between the rows. Pest counts in
// the traps accumulate stochastically (after the Drosophila monitoring of
// the paper's ref [9]); a trap whose count crosses the action threshold is
// what makes the mission urgent, and a human standing near a trap is what
// forces the negotiated access of Fig 3.
package orchard

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"hdc/internal/geom"
	"hdc/internal/human"
)

// Trap is one insect trap hung in a tree row.
type Trap struct {
	ID        int
	Pos       geom.Vec2
	PestCount int
	LastRead  time.Duration // sim time of the last successful read; -1 never
	ReadCount int
}

// NeedsAction reports whether the trap's count crossed the spray-decision
// threshold.
func (t *Trap) NeedsAction(threshold int) bool { return t.PestCount >= threshold }

// Config sizes the orchard.
type Config struct {
	Rows        int     // tree rows (default 8)
	Cols        int     // trees per row (default 12)
	RowSpacing  float64 // m between rows (default 4)
	TreeSpacing float64 // m between trees in a row (default 3)
	TrapEvery   int     // a trap every n-th tree (default 6)
	// PestRatePerHour is the mean arrival rate per trap (default 1.2).
	PestRatePerHour float64
	// Humans is the number of collaborators to scatter (default 3; one of
	// each role, then cycling). Negative means a world with no humans at
	// all — no negotiations ever trigger.
	Humans int
	// WalkStepM bounds human movement per simulation step (default 1).
	WalkStepM float64
}

func (c Config) withDefaults() Config {
	if c.Rows == 0 {
		c.Rows = 8
	}
	if c.Cols == 0 {
		c.Cols = 12
	}
	if c.RowSpacing == 0 {
		c.RowSpacing = 4
	}
	if c.TreeSpacing == 0 {
		c.TreeSpacing = 3
	}
	if c.TrapEvery == 0 {
		c.TrapEvery = 6
	}
	if c.PestRatePerHour == 0 {
		c.PestRatePerHour = 1.2
	}
	if c.Humans == 0 {
		c.Humans = 3
	}
	if c.Humans < 0 {
		c.Humans = 0
	}
	if c.WalkStepM == 0 {
		c.WalkStepM = 1
	}
	return c
}

// Orchard is the world state. Its methods synchronise on an internal mutex
// so several drones can share one world (the fleet runs its per-drone
// mission loops concurrently); collaborators additionally guard their own
// state, letting a negotiation proceed while the world stepper moves other
// people. Direct field iteration (Traps, People) is only safe once no
// concurrent missions are running.
type Orchard struct {
	Cfg    Config
	Traps  []*Trap
	People []*human.Collaborator

	mu    sync.Mutex
	rng   *rand.Rand
	clock time.Duration
}

// Generate builds a reproducible orchard from a seed source.
func Generate(cfg Config, rng *rand.Rand) (*Orchard, error) {
	if rng == nil {
		return nil, errors.New("orchard: nil rng")
	}
	cfg = cfg.withDefaults()
	o := &Orchard{Cfg: cfg, rng: rng}

	id := 0
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			treeIdx := r*cfg.Cols + c
			if treeIdx%cfg.TrapEvery != 0 {
				continue
			}
			o.Traps = append(o.Traps, &Trap{
				ID:       id,
				Pos:      geom.V2(float64(c)*cfg.TreeSpacing, float64(r)*cfg.RowSpacing),
				LastRead: -1,
			})
			id++
		}
	}
	if len(o.Traps) == 0 {
		return nil, fmt.Errorf("orchard: configuration yields no traps (%+v)", cfg)
	}

	roles := human.Roles()
	for i := 0; i < cfg.Humans; i++ {
		pos := geom.V2(
			rng.Float64()*float64(cfg.Cols-1)*cfg.TreeSpacing,
			rng.Float64()*float64(cfg.Rows-1)*cfg.RowSpacing,
		)
		// Each collaborator draws from their own deterministic stream so
		// concurrent drones negotiating with different people never contend
		// on (or race over) one generator.
		person, err := human.New(
			fmt.Sprintf("%s-%d", roles[i%len(roles)], i),
			roles[i%len(roles)], pos, rand.New(rand.NewSource(rng.Int63())),
		)
		if err != nil {
			return nil, err
		}
		o.People = append(o.People, person)
	}
	return o, nil
}

// Clock returns the world time.
func (o *Orchard) Clock() time.Duration {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.clock
}

// Bounds returns the orchard's axis-aligned extent.
func (o *Orchard) Bounds() (min, max geom.Vec2) {
	max = geom.V2(
		float64(o.Cfg.Cols-1)*o.Cfg.TreeSpacing,
		float64(o.Cfg.Rows-1)*o.Cfg.RowSpacing,
	)
	return geom.V2(0, 0), max
}

// Step advances the world: pests arrive (Poisson), humans wander inside the
// bounds.
func (o *Orchard) Step(dt time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.clock += dt
	hours := dt.Hours()
	for _, tr := range o.Traps {
		tr.PestCount += poisson(o.rng, o.Cfg.PestRatePerHour*hours)
	}
	lo, hi := o.Bounds()
	for _, p := range o.People {
		p.WalkWithin(o.Cfg.WalkStepM, lo, hi)
	}
}

// poisson draws a Poisson variate by Knuth's method (rates here are tiny).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // rate misuse guard
		}
	}
}

// HumanNear returns the collaborator closest to pos within radius, or nil.
func (o *Orchard) HumanNear(pos geom.Vec2, radius float64) *human.Collaborator {
	o.mu.Lock()
	defer o.mu.Unlock()
	var best *human.Collaborator
	bestD := radius
	for _, p := range o.People {
		if d := p.Position().Dist(pos); d <= bestD {
			best = p
			bestD = d
		}
	}
	return best
}

// PeoplePositions returns a snapshot of every collaborator's position, in
// People order — what the drones publish to their safety monitors.
func (o *Orchard) PeoplePositions() []geom.Vec2 {
	o.mu.Lock()
	defer o.mu.Unlock()
	pos := make([]geom.Vec2, len(o.People))
	for i, p := range o.People {
		pos[i] = p.Position()
	}
	return pos
}

// ReadTrap records a successful read at the world clock and returns the
// count.
func (o *Orchard) ReadTrap(t *Trap) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	t.LastRead = o.clock
	t.ReadCount++
	return t.PestCount
}

// UnreadTraps returns traps never read, oldest position order.
func (o *Orchard) UnreadTraps() []*Trap {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []*Trap
	for _, t := range o.Traps {
		if t.LastRead < 0 {
			out = append(out, t)
		}
	}
	return out
}

// ActionTraps returns traps at or above the pest threshold.
func (o *Orchard) ActionTraps(threshold int) []*Trap {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []*Trap
	for _, t := range o.Traps {
		if t.NeedsAction(threshold) {
			out = append(out, t)
		}
	}
	return out
}

// ReadActionCount counts traps that have been read and sit at or above the
// pest threshold — the mission report's "needs spraying" figure, computed
// under the world lock so concurrent missions can report while others fly.
func (o *Orchard) ReadActionCount(threshold int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, t := range o.Traps {
		if t.ReadCount > 0 && t.NeedsAction(threshold) {
			n++
		}
	}
	return n
}
