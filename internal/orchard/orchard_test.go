package orchard

import (
	"math/rand"
	"testing"
	"time"

	"hdc/internal/geom"
	"hdc/internal/human"
)

func newOrchard(t testing.TB, cfg Config, seed int64) *Orchard {
	t.Helper()
	o, err := Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestGenerateDefaults(t *testing.T) {
	o := newOrchard(t, Config{}, 1)
	if len(o.Traps) == 0 {
		t.Fatal("no traps")
	}
	// 8 rows × 12 cols = 96 trees, a trap every 6th → 16 traps.
	if len(o.Traps) != 16 {
		t.Fatalf("traps = %d, want 16", len(o.Traps))
	}
	if len(o.People) != 3 {
		t.Fatalf("people = %d", len(o.People))
	}
	// One of each role by default.
	roles := map[human.Role]int{}
	for _, p := range o.People {
		roles[p.Role]++
	}
	if len(roles) != 3 {
		t.Fatalf("role coverage: %v", roles)
	}
	// Everything inside bounds.
	lo, hi := o.Bounds()
	for _, tr := range o.Traps {
		if tr.Pos.X < lo.X || tr.Pos.X > hi.X || tr.Pos.Y < lo.Y || tr.Pos.Y > hi.Y {
			t.Fatalf("trap outside bounds: %v", tr.Pos)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}, nil); err == nil {
		t.Fatal("nil rng should fail")
	}
	// A trap interval larger than the tree count yields one trap at tree 0,
	// so force zero traps via an impossible interval is not reachable —
	// instead check tiny orchards still work.
	o := newOrchard(t, Config{Rows: 1, Cols: 2, TrapEvery: 1}, 2)
	if len(o.Traps) != 2 {
		t.Fatalf("tiny orchard traps = %d", len(o.Traps))
	}
}

func TestStepAccumulatesPests(t *testing.T) {
	o := newOrchard(t, Config{PestRatePerHour: 30}, 3)
	for i := 0; i < 24; i++ {
		o.Step(10 * time.Minute)
	}
	if o.Clock() != 4*time.Hour {
		t.Fatalf("clock = %v", o.Clock())
	}
	var total int
	for _, tr := range o.Traps {
		total += tr.PestCount
	}
	// 16 traps × 30/h × 4h = 1920 expected.
	if total < 1000 || total > 3000 {
		t.Fatalf("pest total %d far from expectation 1920", total)
	}
	if len(o.ActionTraps(1)) == 0 {
		t.Fatal("no trap crossed threshold 1")
	}
}

func TestStepKeepsHumansInBounds(t *testing.T) {
	o := newOrchard(t, Config{WalkStepM: 10}, 4)
	lo, hi := o.Bounds()
	for i := 0; i < 200; i++ {
		o.Step(time.Minute)
		for _, p := range o.People {
			if p.Pos.X < lo.X-1e-9 || p.Pos.X > hi.X+1e-9 ||
				p.Pos.Y < lo.Y-1e-9 || p.Pos.Y > hi.Y+1e-9 {
				t.Fatalf("human escaped: %v (bounds %v..%v)", p.Pos, lo, hi)
			}
		}
	}
}

func TestHumanNear(t *testing.T) {
	o := newOrchard(t, Config{}, 5)
	p := o.People[0]
	got := o.HumanNear(p.Pos, 0.5)
	if got == nil {
		t.Fatal("human at exact position not found")
	}
	far := geom.V2(-100, -100)
	if o.HumanNear(far, 5) != nil {
		t.Fatal("phantom human found")
	}
	// Nearest wins.
	a := o.People[0]
	a.Pos = geom.V2(0, 0)
	b := o.People[1]
	b.Pos = geom.V2(1, 0)
	got = o.HumanNear(geom.V2(0.2, 0), 5)
	if got != a {
		t.Fatalf("nearest = %v, want %v", got.Name, a.Name)
	}
}

func TestReadTrapBookkeeping(t *testing.T) {
	o := newOrchard(t, Config{PestRatePerHour: 60}, 6)
	o.Step(time.Hour)
	before := len(o.UnreadTraps())
	if before != len(o.Traps) {
		t.Fatal("all traps should start unread")
	}
	tr := o.Traps[0]
	count := o.ReadTrap(tr)
	if count != tr.PestCount {
		t.Fatal("read count mismatch")
	}
	if tr.LastRead != o.Clock() || tr.ReadCount != 1 {
		t.Fatalf("bookkeeping: %+v", tr)
	}
	if len(o.UnreadTraps()) != before-1 {
		t.Fatal("unread count wrong")
	}
}

func TestNeedsAction(t *testing.T) {
	tr := &Trap{PestCount: 5}
	if !tr.NeedsAction(5) || tr.NeedsAction(6) {
		t.Fatal("threshold logic wrong")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := newOrchard(t, Config{}, 42)
	b := newOrchard(t, Config{}, 42)
	for i := range a.People {
		if a.People[i].Pos != b.People[i].Pos {
			t.Fatal("generation not reproducible")
		}
	}
	a.Step(time.Hour)
	b.Step(time.Hour)
	for i := range a.Traps {
		if a.Traps[i].PestCount != b.Traps[i].PestCount {
			t.Fatal("stepping not reproducible")
		}
	}
}

func TestPoissonSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		sum += poisson(rng, 2.5)
	}
	mean := float64(sum) / n
	if mean < 2.3 || mean > 2.7 {
		t.Fatalf("poisson mean %v, want ≈2.5", mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive rate should give 0")
	}
}
