package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestLogConcurrentEmitAndRead hammers one Log from writer and reader
// goroutines simultaneously — the usage pattern of a fleet of drones
// logging into a shared mission transcript. Run with -race to verify the
// locking; the final counts are asserted either way.
func TestLogConcurrentEmitAndRead(t *testing.T) {
	l := NewLog()
	const writers = 8
	const perWriter = 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Emitf(time.Duration(i)*time.Millisecond, fmt.Sprintf("drone-%d", w), "tick", "i=%d", i)
			}
		}(w)
	}
	// Readers run concurrently with the writers; their snapshots must be
	// internally consistent (never partially written events).
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, e := range l.Events() {
					if e.Kind != "tick" {
						t.Errorf("torn event: %+v", e)
						return
					}
				}
				_ = l.Count("tick")
				_ = l.Len()
				_ = l.EventsOfKind("tick")
			}
		}()
	}
	wg.Wait()

	if got := l.Len(); got != writers*perWriter {
		t.Fatalf("lost events: %d, want %d", got, writers*perWriter)
	}
	if got := l.Count("tick"); got != writers*perWriter {
		t.Fatalf("counter drifted: %d, want %d", got, writers*perWriter)
	}
}

// TestHistogramConcurrentObserve checks Observe/Summarize under parallel
// load — the per-frame latency histogram shared by pipeline workers.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const workers = 8
	const perWorker = 500

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
				if i%100 == 0 {
					_ = h.Summarize()
				}
			}
		}(w)
	}
	wg.Wait()

	s := h.Summarize()
	if s.N != workers*perWorker {
		t.Fatalf("lost samples: %d, want %d", s.N, workers*perWorker)
	}
	if s.Min > s.P50 || s.P50 > s.P99 || s.P99 > s.Max {
		t.Fatalf("order statistics inconsistent: %+v", s)
	}
}
