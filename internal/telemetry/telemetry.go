// Package telemetry provides the structured event log, counters and timing
// summaries the simulation and the experiment harness share: every
// negotiation step, safety trigger and mission milestone lands here, and
// the harness renders them as the markdown tables in EXPERIMENTS.md.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one timestamped log record.
type Event struct {
	At     time.Duration // simulation time
	Source string        // emitting subsystem ("drone", "protocol", ...)
	Kind   string        // event type ("poke", "danger", "trap-read", ...)
	Detail string        // human-readable payload
}

// Log is a thread-safe append-only event log with counters.
type Log struct {
	mu       sync.Mutex
	events   []Event
	counters map[string]int
}

// NewLog creates an empty log.
func NewLog() *Log {
	return &Log{counters: make(map[string]int)}
}

// Emit appends an event and bumps its kind counter.
func (l *Log) Emit(at time.Duration, source, kind, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{At: at, Source: source, Kind: kind, Detail: detail})
	l.counters[kind]++
}

// Emitf is Emit with a format string for the detail.
func (l *Log) Emitf(at time.Duration, source, kind, format string, args ...any) {
	l.Emit(at, source, kind, fmt.Sprintf(format, args...))
}

// Count returns how many events of the kind were emitted.
func (l *Log) Count(kind string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counters[kind]
}

// Len returns the total number of events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of all events in emission order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// EventsOfKind returns the events matching kind, in order.
func (l *Log) EventsOfKind(kind string) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// String renders the log as a readable transcript.
func (l *Log) String() string {
	var sb strings.Builder
	for _, e := range l.Events() {
		fmt.Fprintf(&sb, "[%8.2fs] %-10s %-16s %s\n", e.At.Seconds(), e.Source, e.Kind, e.Detail)
	}
	return sb.String()
}

// Histogram is a simple duration histogram for latency reporting.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
}

// N returns the sample count.
func (h *Histogram) N() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Summary holds order statistics of a histogram.
type Summary struct {
	N             int
	Min, Max      time.Duration
	Mean          time.Duration
	P50, P90, P99 time.Duration
}

// Summarize computes order statistics. A zero Summary is returned for an
// empty histogram.
func (h *Histogram) Summarize() Summary {
	h.mu.Lock()
	samples := make([]time.Duration, len(h.samples))
	copy(samples, h.samples)
	h.mu.Unlock()
	if len(samples) == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	q := func(p float64) time.Duration {
		idx := int(math.Ceil(p*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return samples[idx]
	}
	return Summary{
		N:    len(samples),
		Min:  samples[0],
		Max:  samples[len(samples)-1],
		Mean: total / time.Duration(len(samples)),
		P50:  q(0.50),
		P90:  q(0.90),
		P99:  q(0.99),
	}
}

// Table builds aligned markdown tables for the experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.rows {
		sb.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return sb.String()
}

// CSV renders the table as RFC-4180-style CSV (quotes only where needed),
// for downstream analysis outside the markdown reports.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// EventsCSV renders the full event log as CSV.
func (l *Log) EventsCSV() string {
	t := NewTable("t_seconds", "source", "kind", "detail")
	for _, e := range l.Events() {
		t.AddRow(fmt.Sprintf("%.3f", e.At.Seconds()), e.Source, e.Kind, e.Detail)
	}
	return t.CSV()
}
