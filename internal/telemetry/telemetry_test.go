package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLogEmitAndCount(t *testing.T) {
	l := NewLog()
	l.Emit(time.Second, "drone", "poke", "first")
	l.Emitf(2*time.Second, "drone", "poke", "n=%d", 2)
	l.Emit(3*time.Second, "protocol", "granted", "")
	if l.Count("poke") != 2 || l.Count("granted") != 1 || l.Count("missing") != 0 {
		t.Fatal("counters wrong")
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	evs := l.EventsOfKind("poke")
	if len(evs) != 2 || evs[1].Detail != "n=2" {
		t.Fatalf("events of kind: %+v", evs)
	}
}

func TestLogEventsCopied(t *testing.T) {
	l := NewLog()
	l.Emit(0, "a", "b", "c")
	evs := l.Events()
	evs[0].Kind = "hacked"
	if l.Events()[0].Kind != "b" {
		t.Fatal("Events leaked internal slice")
	}
}

func TestLogString(t *testing.T) {
	l := NewLog()
	l.Emit(1500*time.Millisecond, "drone", "danger", "battery low")
	s := l.String()
	if !strings.Contains(s, "danger") || !strings.Contains(s, "battery low") || !strings.Contains(s, "1.50s") {
		t.Fatalf("transcript: %q", s)
	}
}

func TestLogConcurrent(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Emit(0, "g", "tick", "")
			}
		}()
	}
	wg.Wait()
	if l.Count("tick") != 800 {
		t.Fatalf("tick count = %d", l.Count("tick"))
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	if s := h.Summarize(); s.N != 0 {
		t.Fatal("empty summary should be zero")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summarize()
	if s.N != 100 || h.N() != 100 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max: %v %v", s.Min, s.Max)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P90 != 90*time.Millisecond || s.P99 != 99*time.Millisecond {
		t.Fatalf("P90/P99 = %v %v", s.P90, s.P99)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("Mean = %v", s.Mean)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("az", "dist", "ok")
	tb.AddRow("0", "0.00", "yes")
	tb.AddRow("65") // short row padded
	md := tb.Markdown()
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), md)
	}
	if !strings.HasPrefix(lines[0], "| az | dist | ok |") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[3], "| 65 |  |  |") {
		t.Fatalf("padded row: %q", lines[3])
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRowf("%d|%0.2f", 7, 3.14159)
	md := tb.Markdown()
	if !strings.Contains(md, "| 7 | 3.14 |") {
		t.Fatalf("AddRowf: %s", md)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("plain", `has,comma`)
	tb.AddRow(`has"quote`, "line\nbreak")
	csv := tb.CSV()
	lines := strings.SplitN(csv, "\n", 2)
	if lines[0] != "a,b" {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(csv, `"has,comma"`) {
		t.Fatalf("comma not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"has""quote"`) {
		t.Fatalf("quote not escaped: %q", csv)
	}
	if !strings.Contains(csv, "\"line\nbreak\"") {
		t.Fatalf("newline not quoted: %q", csv)
	}
}

func TestEventsCSV(t *testing.T) {
	l := NewLog()
	l.Emit(1500*time.Millisecond, "drone", "danger", "battery, low")
	csv := l.EventsCSV()
	if !strings.Contains(csv, "t_seconds,source,kind,detail") {
		t.Fatalf("header missing: %q", csv)
	}
	if !strings.Contains(csv, `1.500,drone,danger,"battery, low"`) {
		t.Fatalf("row missing: %q", csv)
	}
}
