// Package protocol implements the paper's negotiated-access conversation
// (§III, Fig 3): the drone approaches a human collaborator, pokes for
// attention, waits for the AttentionGained sign, flies the rectangle
// pattern to request the collaborator's area and acts on the Yes/No answer.
//
// The engine is deliberately decoupled from flight dynamics and vision
// through the Env interface; the full-stack binding (render → recognise) is
// assembled in internal/core. The central safety invariant — the drone
// NEVER enters the human's area without an explicit Yes — is enforced here
// and property-tested against adversarial environments.
package protocol

import (
	"errors"
	"fmt"
	"time"

	"hdc/internal/body"
	"hdc/internal/flight"
	"hdc/internal/telemetry"
)

// Phase is the engine's conversational state. Enums start at 1.
type Phase int

// Conversation phases, in nominal order.
const (
	PhaseIdle Phase = iota + 1
	PhaseApproach
	PhasePoke
	PhaseAwaitAttention
	PhaseRequestArea
	PhaseAwaitAnswer
	PhaseEnter
	PhaseRetreat
	PhaseAborted
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "Idle"
	case PhaseApproach:
		return "Approach"
	case PhasePoke:
		return "Poke"
	case PhaseAwaitAttention:
		return "AwaitAttention"
	case PhaseRequestArea:
		return "RequestArea"
	case PhaseAwaitAnswer:
		return "AwaitAnswer"
	case PhaseEnter:
		return "Enter"
	case PhaseRetreat:
		return "Retreat"
	case PhaseAborted:
		return "Aborted"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Outcome is the conversation's final result.
type Outcome int

// Possible outcomes.
const (
	// OutcomeGranted: the human answered Yes; the drone entered the area.
	OutcomeGranted Outcome = iota + 1
	// OutcomeDenied: the human answered No; the drone retreated.
	OutcomeDenied
	// OutcomeNoResponse: attention or answer never arrived; the drone
	// retreated.
	OutcomeNoResponse
	// OutcomeAborted: a safety condition interrupted the conversation.
	OutcomeAborted
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeGranted:
		return "Granted"
	case OutcomeDenied:
		return "Denied"
	case OutcomeNoResponse:
		return "NoResponse"
	case OutcomeAborted:
		return "Aborted"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// ErrSafetyAbort is returned by Env methods to signal that a safety monitor
// tripped (low battery, geofence, proximity): the engine switches the
// all-round light to danger and aborts.
var ErrSafetyAbort = errors.New("protocol: safety abort")

// Env is the world the engine acts in. Implementations bind it to the
// simulated (or, one day, real) drone and collaborator.
type Env interface {
	// FlyPattern executes a flight pattern (Cruise = approach the
	// stand-off point, Poke, Rectangle, HeadTurn/Nod for drone answers,
	// Land etc.).
	FlyPattern(p flight.Pattern) error
	// PerceiveSign watches the collaborator for up to timeout and returns
	// the recognised sign. ok is false when nothing was recognised.
	PerceiveSign(timeout time.Duration) (sign body.Sign, ok bool, err error)
	// EnterArea moves the drone into the negotiated area (only called
	// after a Yes — the invariant under test).
	EnterArea() error
	// Retreat backs the drone away from the collaborator.
	Retreat() error
	// SignalDanger switches the all-round light to the danger display.
	SignalDanger()
	// Now returns the current simulation time.
	Now() time.Duration
}

// Config tunes the engine.
type Config struct {
	// PokeRetries is how many pokes are attempted before giving up
	// (default 3).
	PokeRetries int
	// AttentionTimeout is the wait for AttentionGained after each poke
	// (default 6 s).
	AttentionTimeout time.Duration
	// RequestRetries is how many rectangle requests are flown (default 2).
	RequestRetries int
	// AnswerTimeout is the wait for Yes/No after each request (default 8 s).
	AnswerTimeout time.Duration
	// AcknowledgeAnswers makes the drone confirm the human's answer with
	// the corresponding pattern (Nod after Yes, HeadTurn after No) —
	// closing the communication loop embodied-style.
	AcknowledgeAnswers bool
}

func (c Config) withDefaults() Config {
	if c.PokeRetries == 0 {
		c.PokeRetries = 3
	}
	if c.AttentionTimeout == 0 {
		c.AttentionTimeout = 6 * time.Second
	}
	if c.RequestRetries == 0 {
		c.RequestRetries = 2
	}
	if c.AnswerTimeout == 0 {
		c.AnswerTimeout = 8 * time.Second
	}
	return c
}

// Result summarises one conversation.
type Result struct {
	Outcome     Outcome
	Phases      []Phase       // phase trace, in order entered
	Pokes       int           // pokes flown
	Requests    int           // rectangle requests flown
	Duration    time.Duration // conversation wall time (sim clock)
	GrantedSign body.Sign     // the answer sign when Granted/Denied
}

// Engine drives conversations. Create with NewEngine; safe for sequential
// reuse across conversations.
type Engine struct {
	cfg Config
	log *telemetry.Log
}

// NewEngine builds an engine; log may be nil (events discarded into a fresh
// private log).
func NewEngine(cfg Config, log *telemetry.Log) *Engine {
	if log == nil {
		log = telemetry.NewLog()
	}
	return &Engine{cfg: cfg.withDefaults(), log: log}
}

// Log exposes the engine's event log.
func (e *Engine) Log() *telemetry.Log { return e.log }

// Negotiate runs one full conversation against env and returns its result.
// Every Env error other than ErrSafetyAbort is propagated; ErrSafetyAbort
// produces OutcomeAborted with the danger signal raised.
func (e *Engine) Negotiate(env Env) (Result, error) {
	start := env.Now()
	res := Result{}
	enter := func(p Phase) {
		res.Phases = append(res.Phases, p)
		e.log.Emit(env.Now(), "protocol", "phase", p.String())
	}
	abort := func() (Result, error) {
		env.SignalDanger()
		enter(PhaseAborted)
		res.Outcome = OutcomeAborted
		res.Duration = env.Now() - start
		return res, nil
	}

	// Approach the stand-off point.
	enter(PhaseApproach)
	if err := env.FlyPattern(flight.PatternCruise); err != nil {
		if errors.Is(err, ErrSafetyAbort) {
			return abort()
		}
		return res, fmt.Errorf("protocol: approach: %w", err)
	}

	// Poke until attention is gained.
	attention := false
	for attempt := 0; attempt < e.cfg.PokeRetries && !attention; attempt++ {
		enter(PhasePoke)
		res.Pokes++
		if err := env.FlyPattern(flight.PatternPoke); err != nil {
			if errors.Is(err, ErrSafetyAbort) {
				return abort()
			}
			return res, fmt.Errorf("protocol: poke: %w", err)
		}
		enter(PhaseAwaitAttention)
		sign, ok, err := env.PerceiveSign(e.cfg.AttentionTimeout)
		if err != nil {
			if errors.Is(err, ErrSafetyAbort) {
				return abort()
			}
			return res, fmt.Errorf("protocol: await attention: %w", err)
		}
		if ok && sign == body.SignAttention {
			attention = true
		}
	}
	if !attention {
		e.log.Emit(env.Now(), "protocol", "no-attention", "collaborator unresponsive")
		return e.retreat(env, &res, start, OutcomeNoResponse, enter)
	}

	// Request the area and act on the answer.
	for attempt := 0; attempt < e.cfg.RequestRetries; attempt++ {
		enter(PhaseRequestArea)
		res.Requests++
		if err := env.FlyPattern(flight.PatternRectangle); err != nil {
			if errors.Is(err, ErrSafetyAbort) {
				return abort()
			}
			return res, fmt.Errorf("protocol: request: %w", err)
		}
		enter(PhaseAwaitAnswer)
		sign, ok, err := env.PerceiveSign(e.cfg.AnswerTimeout)
		if err != nil {
			if errors.Is(err, ErrSafetyAbort) {
				return abort()
			}
			return res, fmt.Errorf("protocol: await answer: %w", err)
		}
		if !ok {
			continue
		}
		switch sign {
		case body.SignYes:
			res.GrantedSign = sign
			if e.cfg.AcknowledgeAnswers {
				if err := env.FlyPattern(flight.PatternNod); err != nil && errors.Is(err, ErrSafetyAbort) {
					return abort()
				}
			}
			enter(PhaseEnter)
			if err := env.EnterArea(); err != nil {
				if errors.Is(err, ErrSafetyAbort) {
					return abort()
				}
				return res, fmt.Errorf("protocol: enter: %w", err)
			}
			res.Outcome = OutcomeGranted
			res.Duration = env.Now() - start
			e.log.Emit(env.Now(), "protocol", "granted", "area entered after Yes")
			return res, nil
		case body.SignNo:
			res.GrantedSign = sign
			if e.cfg.AcknowledgeAnswers {
				if err := env.FlyPattern(flight.PatternHeadTurn); err != nil && errors.Is(err, ErrSafetyAbort) {
					return abort()
				}
			}
			e.log.Emit(env.Now(), "protocol", "denied", "No sign received")
			return e.retreat(env, &res, start, OutcomeDenied, enter)
		default:
			// AttentionGained again or an unexpected sign: re-request.
			continue
		}
	}
	e.log.Emit(env.Now(), "protocol", "no-answer", "request retries exhausted")
	return e.retreat(env, &res, start, OutcomeNoResponse, enter)
}

func (e *Engine) retreat(env Env, res *Result, start time.Duration, o Outcome, enter func(Phase)) (Result, error) {
	enter(PhaseRetreat)
	if err := env.Retreat(); err != nil {
		if errors.Is(err, ErrSafetyAbort) {
			env.SignalDanger()
			enter(PhaseAborted)
			res.Outcome = OutcomeAborted
			res.Duration = env.Now() - start
			return *res, nil
		}
		return *res, fmt.Errorf("protocol: retreat: %w", err)
	}
	res.Outcome = o
	res.Duration = env.Now() - start
	return *res, nil
}
