package protocol

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/human"
)

func newHuman(t testing.TB, role human.Role, seed int64) (*human.Collaborator, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h, err := human.New("h", role, geom.V2(0, 0), rng)
	if err != nil {
		t.Fatal(err)
	}
	return h, rng
}

func TestNegotiateSupervisorMostlyGranted(t *testing.T) {
	granted, denied, other := 0, 0, 0
	for seed := int64(0); seed < 40; seed++ {
		h, rng := newHuman(t, human.RoleSupervisor, seed)
		env := NewSimEnv(h, rng)
		eng := NewEngine(Config{}, nil)
		res, err := eng.Negotiate(env)
		if err != nil {
			t.Fatal(err)
		}
		switch res.Outcome {
		case OutcomeGranted:
			granted++
			if !env.Entered {
				t.Fatal("granted but never entered")
			}
		case OutcomeDenied:
			denied++
			if env.Entered {
				t.Fatal("denied but entered anyway")
			}
		default:
			other++
		}
		if env.Violated {
			t.Fatalf("seed %d: safety invariant violated", seed)
		}
	}
	// Supervisors grant 90% and almost always respond.
	if granted < 25 {
		t.Fatalf("granted %d/40, expected most", granted)
	}
	if granted+denied+other != 40 {
		t.Fatal("outcome accounting broken")
	}
}

func TestNegotiateVisitorOftenUnresponsive(t *testing.T) {
	noResp := 0
	for seed := int64(100); seed < 160; seed++ {
		h, rng := newHuman(t, human.RoleVisitor, seed)
		env := NewSimEnv(h, rng)
		// Visitors are slow: tight timeouts surface NoResponse.
		eng := NewEngine(Config{AttentionTimeout: 2 * time.Second, AnswerTimeout: 2 * time.Second}, nil)
		res, err := eng.Negotiate(env)
		if err != nil {
			t.Fatal(err)
		}
		if env.Violated {
			t.Fatal("safety invariant violated")
		}
		if res.Outcome == OutcomeNoResponse {
			noResp++
		}
	}
	if noResp == 0 {
		t.Fatal("tight timeouts against visitors should produce NoResponse outcomes")
	}
}

// TestSafetyInvariantProperty is the repository's core protocol property:
// across thousands of random behaviours, recognition errors and abort
// timings, the drone never enters without having perceived a Yes.
func TestSafetyInvariantProperty(t *testing.T) {
	for seed := int64(0); seed < 2000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		role := human.Roles()[rng.Intn(3)]
		h, err := human.New("p", role, geom.V2(0, 0), rng)
		if err != nil {
			t.Fatal(err)
		}
		env := NewSimEnv(h, rng)
		// Adversarial knobs: poor recognition, frequent misreads, random
		// aborts.
		env.RecognitionProb = 0.3 + rng.Float64()*0.7
		env.MisreadProb = rng.Float64() * 0.3
		if rng.Intn(3) == 0 {
			env.AbortAfter = time.Duration(rng.Intn(60)) * time.Second
		}
		eng := NewEngine(Config{
			PokeRetries:    1 + rng.Intn(4),
			RequestRetries: 1 + rng.Intn(3),
		}, nil)
		res, err := eng.Negotiate(env)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if env.Violated {
			t.Fatalf("seed %d: ENTERED WITHOUT YES (outcome %v)", seed, res.Outcome)
		}
		if res.Outcome == OutcomeAborted && !env.DangerOn {
			t.Fatalf("seed %d: aborted without danger signal", seed)
		}
		if env.Entered && res.Outcome != OutcomeGranted {
			t.Fatalf("seed %d: entered with outcome %v", seed, res.Outcome)
		}
	}
}

func TestAbortRaisesDanger(t *testing.T) {
	h, rng := newHuman(t, human.RoleSupervisor, 7)
	env := NewSimEnv(h, rng)
	env.AbortAfter = 1 * time.Second // trips during the approach
	eng := NewEngine(Config{}, nil)
	res, err := eng.Negotiate(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeAborted {
		t.Fatalf("outcome = %v, want aborted", res.Outcome)
	}
	if !env.DangerOn {
		t.Fatal("danger light not raised on abort")
	}
	if env.Entered {
		t.Fatal("entered during abort")
	}
}

func TestPhaseTraceNominalGrant(t *testing.T) {
	// A cooperative scripted env: find a seed that grants first try, then
	// verify the canonical Fig 3 phase sequence.
	for seed := int64(0); seed < 50; seed++ {
		h, rng := newHuman(t, human.RoleSupervisor, seed)
		env := NewSimEnv(h, rng)
		eng := NewEngine(Config{}, nil)
		res, err := eng.Negotiate(env)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OutcomeGranted || res.Pokes != 1 || res.Requests != 1 {
			continue
		}
		want := []Phase{PhaseApproach, PhasePoke, PhaseAwaitAttention, PhaseRequestArea, PhaseAwaitAnswer, PhaseEnter}
		if len(res.Phases) != len(want) {
			t.Fatalf("phase trace %v", res.Phases)
		}
		for i := range want {
			if res.Phases[i] != want[i] {
				t.Fatalf("phase[%d] = %v, want %v", i, res.Phases[i], want[i])
			}
		}
		return
	}
	t.Fatal("no clean first-try grant in 50 seeds — behaviour model broken?")
}

func TestAcknowledgeAnswersFliesNod(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		h, rng := newHuman(t, human.RoleSupervisor, seed)
		env := NewSimEnv(h, rng)
		eng := NewEngine(Config{AcknowledgeAnswers: true}, nil)
		res, err := eng.Negotiate(env)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OutcomeGranted {
			continue
		}
		found := false
		for _, p := range env.Flown {
			if p == flight.PatternNod {
				found = true
			}
		}
		if !found {
			t.Fatalf("granted without Nod acknowledgement: %v", env.Flown)
		}
		return
	}
	t.Skip("no grant in 50 seeds")
}

func TestResultDurationMonotonic(t *testing.T) {
	h, rng := newHuman(t, human.RoleWorker, 3)
	env := NewSimEnv(h, rng)
	eng := NewEngine(Config{}, nil)
	res, err := eng.Negotiate(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Fatalf("duration %v", res.Duration)
	}
	if env.Now() < res.Duration {
		t.Fatal("clock ran backwards")
	}
}

func TestEngineLogRecordsPhases(t *testing.T) {
	h, rng := newHuman(t, human.RoleSupervisor, 1)
	env := NewSimEnv(h, rng)
	eng := NewEngine(Config{}, nil)
	if _, err := eng.Negotiate(env); err != nil {
		t.Fatal(err)
	}
	if eng.Log().Count("phase") < 4 {
		t.Fatalf("log has %d phase events", eng.Log().Count("phase"))
	}
}

// failEnv wraps SimEnv and injects a hard (non-abort) error.
type failEnv struct {
	*SimEnv
	failOn flight.Pattern
}

func (f *failEnv) FlyPattern(p flight.Pattern) error {
	if p == f.failOn {
		return errors.New("hardware fault")
	}
	return f.SimEnv.FlyPattern(p)
}

func TestHardErrorsPropagate(t *testing.T) {
	h, rng := newHuman(t, human.RoleSupervisor, 11)
	env := &failEnv{SimEnv: NewSimEnv(h, rng), failOn: flight.PatternPoke}
	eng := NewEngine(Config{}, nil)
	if _, err := eng.Negotiate(env); err == nil {
		t.Fatal("hardware fault should propagate")
	}
}

func TestOutcomePhaseStrings(t *testing.T) {
	for _, p := range []Phase{PhaseIdle, PhaseApproach, PhasePoke, PhaseAwaitAttention, PhaseRequestArea, PhaseAwaitAnswer, PhaseEnter, PhaseRetreat, PhaseAborted} {
		if p.String() == "" {
			t.Fatal("empty phase string")
		}
	}
	for _, o := range []Outcome{OutcomeGranted, OutcomeDenied, OutcomeNoResponse, OutcomeAborted} {
		if o.String() == "" {
			t.Fatal("empty outcome string")
		}
	}
	if Phase(99).String() == "" || Outcome(99).String() == "" {
		t.Fatal("unknown enum strings empty")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.PokeRetries != 3 || cfg.RequestRetries != 2 {
		t.Fatalf("retry defaults: %+v", cfg)
	}
	if cfg.AttentionTimeout != 6*time.Second || cfg.AnswerTimeout != 8*time.Second {
		t.Fatalf("timeout defaults: %+v", cfg)
	}
}
