package protocol

import (
	"math/rand"
	"time"

	"hdc/internal/body"
	"hdc/internal/flight"
	"hdc/internal/human"
)

// SimEnv is a lightweight, flight-free environment for protocol-level
// simulation and testing: patterns take scripted time, perception is driven
// by a human.Collaborator behaviour model plus a recognition error model.
// It also audits the safety invariant: EnterArea before a perceived Yes
// trips the Violated flag.
type SimEnv struct {
	Human *human.Collaborator
	// RecognitionProb is the probability a shown sign is correctly
	// recognised within the timeout (default 0.95).
	RecognitionProb float64
	// MisreadProb is the probability a recognised sign is the WRONG one
	// (confusion, e.g. dead-angle erratic matches; default 0.02).
	MisreadProb float64
	// PatternDur is the simulated duration of each flown pattern
	// (default 4 s).
	PatternDur time.Duration
	// AbortAfter, when positive, trips ErrSafetyAbort once the simulation
	// clock passes it (battery/geofence injection).
	AbortAfter time.Duration

	Rng *rand.Rand

	// Audit state.
	now       time.Duration
	sawYes    bool
	Entered   bool
	Violated  bool // EnterArea called without a prior perceived Yes
	DangerOn  bool
	Flown     []flight.Pattern
	lastPoked bool
	lastAsked bool
}

// NewSimEnv builds a scripted environment around a collaborator.
func NewSimEnv(h *human.Collaborator, rng *rand.Rand) *SimEnv {
	return &SimEnv{
		Human:           h,
		RecognitionProb: 0.95,
		MisreadProb:     0.02,
		PatternDur:      4 * time.Second,
		Rng:             rng,
	}
}

// Now implements Env.
func (s *SimEnv) Now() time.Duration { return s.now }

func (s *SimEnv) advance(d time.Duration) { s.now += d }

func (s *SimEnv) checkAbort() error {
	if s.AbortAfter > 0 && s.now >= s.AbortAfter {
		return ErrSafetyAbort
	}
	return nil
}

// FlyPattern implements Env: patterns consume time; Poke and Rectangle arm
// the human response for the next PerceiveSign.
func (s *SimEnv) FlyPattern(p flight.Pattern) error {
	s.advance(s.PatternDur)
	if err := s.checkAbort(); err != nil {
		return err
	}
	s.Flown = append(s.Flown, p)
	switch p {
	case flight.PatternPoke:
		s.lastPoked = true
	case flight.PatternRectangle:
		s.lastAsked = true
	}
	return nil
}

// PerceiveSign implements Env: consults the human model for the armed
// stimulus and filters it through the recognition error model.
func (s *SimEnv) PerceiveSign(timeout time.Duration) (body.Sign, bool, error) {
	if err := s.checkAbort(); err != nil {
		return 0, false, err
	}
	var resp human.Response
	switch {
	case s.lastAsked:
		s.lastAsked = false
		resp = s.Human.RespondAreaRequest()
	case s.lastPoked:
		s.lastPoked = false
		resp = s.Human.RespondAttention()
	default:
		s.advance(timeout)
		return 0, false, nil
	}
	if !resp.Responded || resp.Latency > timeout {
		s.advance(timeout)
		return 0, false, nil
	}
	s.advance(resp.Latency)
	// Recognition error model.
	if s.Rng.Float64() > s.RecognitionProb {
		s.advance(timeout - resp.Latency)
		return 0, false, nil
	}
	shown := resp.Sign
	if s.Rng.Float64() < s.MisreadProb {
		others := []body.Sign{}
		for _, o := range body.AllSigns() {
			if o != shown {
				others = append(others, o)
			}
		}
		shown = others[s.Rng.Intn(len(others))]
	}
	if shown == body.SignYes {
		s.sawYes = true
	}
	return shown, true, nil
}

// EnterArea implements Env and audits the safety invariant.
func (s *SimEnv) EnterArea() error {
	s.advance(s.PatternDur)
	if err := s.checkAbort(); err != nil {
		return err
	}
	s.Entered = true
	if !s.sawYes {
		s.Violated = true
	}
	return nil
}

// Retreat implements Env.
func (s *SimEnv) Retreat() error {
	s.advance(s.PatternDur)
	if err := s.checkAbort(); err != nil {
		return err
	}
	return nil
}

// SignalDanger implements Env.
func (s *SimEnv) SignalDanger() { s.DangerOn = true }
