package timeseries

import (
	"math/rand"
	"testing"
)

func benchPair(n int) (Series, Series) {
	rng := rand.New(rand.NewSource(1))
	a := make(Series, n)
	b := make(Series, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	return a, b
}

func BenchmarkZNormalize(b *testing.B) {
	s, _ := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ZNormalize()
	}
}

func BenchmarkPAA(b *testing.B) {
	s, _ := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.PAA(16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinRotationDist128(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := MinRotationDist(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinRotationMirrorDist128(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := MinRotationMirrorDist(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTW128(b *testing.B) {
	x, y := benchPair(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DTWDist(x, y, -1); err != nil {
			b.Fatal(err)
		}
	}
}
