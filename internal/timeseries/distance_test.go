package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSeries(rng *rand.Rand, n int) Series {
	s := make(Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestEuclideanDist(t *testing.T) {
	d, err := EuclideanDist(Series{0, 0}, Series{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, 5, 1e-12) {
		t.Fatalf("dist = %v, want 5", d)
	}
	if _, err := EuclideanDist(Series{1}, Series{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestEuclideanMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a, b, c := randSeries(rng, 16), randSeries(rng, 16), randSeries(rng, 16)
		dab, _ := EuclideanDist(a, b)
		dba, _ := EuclideanDist(b, a)
		if !almostEq(dab, dba, 1e-9) {
			t.Fatal("not symmetric")
		}
		dac, _ := EuclideanDist(a, c)
		dcb, _ := EuclideanDist(c, b)
		if dab > dac+dcb+1e-9 {
			t.Fatal("triangle inequality violated")
		}
		daa, _ := EuclideanDist(a, a)
		if daa != 0 {
			t.Fatal("identity not zero")
		}
	}
}

func TestMinRotationDistFindsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randSeries(rng, 32)
	for _, k := range []int{0, 1, 5, 16, 31} {
		b := a.Rotate(k)
		d, shift, err := MinRotationDist(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(d, 0, 1e-9) {
			t.Fatalf("rotation by %d: dist %v, want 0", k, d)
		}
		// a[i] must equal b[(i+shift) mod n] = a[(i+shift+k) mod n],
		// so shift ≡ -k (mod n).
		n := len(a)
		if (shift+k)%n != 0 {
			t.Fatalf("rotation by %d: recovered shift %d", k, shift)
		}
	}
}

func TestMinRotationDistUpperBoundedByEuclidean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSeries(rng, 24), randSeries(rng, 24)
		dmin, _, err := MinRotationDist(a, b)
		if err != nil {
			return false
		}
		de, _ := EuclideanDist(a, b)
		return dmin <= de+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinRotationDistSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSeries(rng, 20), randSeries(rng, 20)
		d1, _, _ := MinRotationDist(a, b)
		d2, _, _ := MinRotationDist(b, a)
		return almostEq(d1, d2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinRotationDistErrors(t *testing.T) {
	if _, _, err := MinRotationDist(Series{1}, Series{1, 2}); err == nil {
		t.Fatal("mismatch should fail")
	}
	if _, _, err := MinRotationDist(Series{}, Series{}); err == nil {
		t.Fatal("empty should fail")
	}
}

func TestMinRotationMirrorDist(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSeries(rng, 16)
	// Mirror of a rotated copy should be found via the mirror path with 0
	// distance.
	b := a.Reverse().Rotate(5)
	d, _, mirrored, err := MinRotationMirrorDist(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, 0, 1e-9) {
		t.Fatalf("mirror dist = %v, want 0", d)
	}
	if !mirrored {
		// It is possible (though vanishingly unlikely for random data) that a
		// plain rotation also achieves 0; treat as failure to catch
		// regressions.
		t.Fatal("expected mirrored match")
	}
}

func TestDTWDistIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randSeries(rng, 30)
	d, err := DTWDist(a, a, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, 0, 1e-9) {
		t.Fatalf("DTW(a,a) = %v, want 0", d)
	}
}

func TestDTWLowerThanEuclidean(t *testing.T) {
	// DTW with unlimited window is always ≤ Euclidean distance for
	// equal-length series.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSeries(rng, 20), randSeries(rng, 20)
		dtw, err := DTWDist(a, b, -1)
		if err != nil {
			return false
		}
		de, _ := EuclideanDist(a, b)
		return dtw <= de+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDTWWarpsShifts(t *testing.T) {
	// A slightly time-shifted bump should be nearly free under DTW but
	// costly under Euclidean distance.
	n := 50
	a, b := make(Series, n), make(Series, n)
	for i := 0; i < n; i++ {
		a[i] = math.Exp(-sq(float64(i-20)) / 20)
		b[i] = math.Exp(-sq(float64(i-25)) / 20)
	}
	dtw, err := DTWDist(a, b, -1)
	if err != nil {
		t.Fatal(err)
	}
	de, _ := EuclideanDist(a, b)
	if dtw > de/4 {
		t.Fatalf("DTW %v should be much smaller than Euclidean %v", dtw, de)
	}
}

func TestDTWDifferentLengths(t *testing.T) {
	a := Series{1, 2, 3, 2, 1}
	b := Series{1, 2, 2.5, 3, 2.5, 2, 1}
	d, err := DTWDist(a, b, -1)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1.0 {
		t.Fatalf("DTW over stretched copy too large: %v", d)
	}
	if _, err := DTWDist(a, Series{}, -1); err == nil {
		t.Fatal("empty should fail")
	}
}

func TestDTWBandWidening(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b := randSeries(rng, 40), randSeries(rng, 40)
	d0, _ := DTWDist(a, b, 0) // band 0 == Euclidean on equal lengths
	de, _ := EuclideanDist(a, b)
	if !almostEq(d0, de, 1e-9) {
		t.Fatalf("band-0 DTW %v != Euclidean %v", d0, de)
	}
	dPrev := d0
	for _, w := range []int{1, 2, 5, 40} {
		dw, _ := DTWDist(a, b, w)
		if dw > dPrev+1e-9 {
			t.Fatalf("DTW should not increase with window: w=%d %v > %v", w, dw, dPrev)
		}
		dPrev = dw
	}
}

func TestCrossCorrelationPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randSeries(rng, 32)
	b := a.Rotate(7)
	shift, corr, err := CrossCorrelationPeak(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if corr < 0.999 {
		t.Fatalf("corr = %v, want ≈1", corr)
	}
	if (shift+7)%len(a) != 0 && shift != len(a)-7 {
		// shift such that b rotated aligns: a[i] == b[i+shift]
		t.Fatalf("peak shift = %d", shift)
	}
}

func sq(x float64) float64 { return x * x }

func TestMinRotationDistWindowCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		a := randSeries(rng, 48)
		b := randSeries(rng, 48)
		for _, win := range []int{-1, 5} {
			exact, shift, err := MinRotationDistWindow(a, b, win)
			if err != nil {
				t.Fatal(err)
			}
			// A cutoff above the true minimum must not change the result bits.
			d, s, err := MinRotationDistWindowCutoff(a, b, win, exact*1.0001)
			if err != nil {
				t.Fatal(err)
			}
			if d != exact || s != shift {
				t.Fatalf("win=%d: cutoff above min changed result: (%v,%d) vs (%v,%d)",
					win, d, s, exact, shift)
			}
			// A cutoff below the true minimum must report no improvement
			// (a value ≥ the cutoff).
			low := exact * 0.9
			d, _, err = MinRotationDistWindowCutoff(a, b, win, low)
			if err != nil {
				t.Fatal(err)
			}
			if d < low {
				t.Fatalf("win=%d: cutoff %v undercut: returned %v", win, low, d)
			}
		}
	}
}

func TestZNormalizeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	s := randSeries(rng, 64)
	want := s.ZNormalize()
	// Undersized, exact and oversized destination buffers.
	for _, buf := range []Series{nil, make(Series, 64), make(Series, 0, 128)} {
		got := s.ZNormalizeInto(buf)
		if len(got) != len(want) {
			t.Fatalf("len = %d", len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("sample %d: %v != %v", i, got[i], want[i])
			}
		}
	}
	// Constant series normalises to zeros here too.
	c := Series{3, 3, 3}
	z := c.ZNormalizeInto(make(Series, 0, 8))
	for _, v := range z {
		if v != 0 {
			t.Fatalf("constant series -> %v", z)
		}
	}
	if got := Series(nil).ZNormalizeInto(make(Series, 4)); len(got) != 0 {
		t.Fatalf("empty series -> len %d", len(got))
	}
}

func TestCrossCorrelationPeakPooledReuse(t *testing.T) {
	// Repeated calls must keep returning correct values while drawing their
	// normalisation buffers from the pool (allocation behaviour is covered
	// by the benchmark; correctness under reuse is what matters here).
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 20; trial++ {
		n := 16 + 16*(trial%3)
		a := randSeries(rng, n)
		b := a.Rotate(trial % n)
		_, corr, err := CrossCorrelationPeak(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if corr < 0.999 {
			t.Fatalf("trial %d: corr = %v", trial, corr)
		}
	}
}

func TestEuclideanDistShiftedMatchesRotate(t *testing.T) {
	// The in-place shifted distance must agree exactly with materialising
	// the rotation, for positive, negative and out-of-range shifts (the
	// same wrap rule as Series.Rotate).
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 7, 24} {
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		for _, k := range []int{0, 1, -1, n - 1, n, n + 3, -n, -n - 5, 3 * n} {
			want, err := EuclideanDist(a, b.Rotate(k))
			if err != nil {
				t.Fatal(err)
			}
			got, err := EuclideanDistShifted(a, b, k)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("n=%d k=%d: shifted %v, rotate reference %v", n, k, got, want)
			}
		}
	}
	if _, err := EuclideanDistShifted(randSeries(rng, 4), randSeries(rng, 5), 1); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("length mismatch: %v", err)
	}
	if d, err := EuclideanDistShifted(nil, nil, 3); err != nil || d != 0 {
		t.Fatalf("empty series: %v %v", d, err)
	}
}
