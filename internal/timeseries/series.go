// Package timeseries provides the numeric time-series machinery underneath
// the SAX recogniser: z-normalisation, piecewise aggregate approximation
// (PAA), resampling and distance measures, including the circular-shift
// minimised distance that makes shape matching rotation invariant
// (Xi, Keogh, Wei & Mafra-Neto, "Finding Motifs in Database of Shapes").
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Series is an ordered sequence of float64 samples. A nil or empty Series is
// valid and represents "no data".
type Series []float64

// Errors returned by series operations.
var (
	ErrEmpty          = errors.New("timeseries: empty series")
	ErrLengthMismatch = errors.New("timeseries: length mismatch")
	ErrBadSegments    = errors.New("timeseries: segment count must be in [1, len]")
)

// Clone returns an independent copy of s.
func (s Series) Clone() Series {
	if s == nil {
		return nil
	}
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Mean returns the arithmetic mean of s. It returns 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Std returns the population standard deviation of s. It returns 0 for
// series with fewer than one element.
func (s Series) Std() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s)))
}

// MinMax returns the minimum and maximum of s. It returns (0, 0) for an
// empty series.
func (s Series) MinMax() (lo, hi float64) {
	if len(s) == 0 {
		return 0, 0
	}
	lo, hi = s[0], s[0]
	for _, v := range s[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// stdFloor guards against division by ~zero when normalising nearly constant
// series: below this, a series is treated as constant and mapped to all
// zeros, matching common SAX implementations.
const stdFloor = 1e-10

// ZNormalize returns a copy of s shifted to mean 0 and scaled to standard
// deviation 1. A (near-)constant series normalises to all zeros. This is the
// step that makes sign recognition insensitive to silhouette scale — i.e. to
// the drone's altitude and stand-off distance (paper §IV).
func (s Series) ZNormalize() Series {
	if len(s) == 0 {
		return nil
	}
	out := make(Series, len(s))
	m, sd := s.Mean(), s.Std()
	if sd < stdFloor {
		return out // all zeros
	}
	for i, v := range s {
		out[i] = (v - m) / sd
	}
	return out
}

// ZNormalizeInto is ZNormalize writing into dst (grown as needed), so
// callers with a reusable buffer avoid the per-call allocation. It returns
// the normalised slice, which aliases dst's storage when capacity sufficed.
func (s Series) ZNormalizeInto(dst Series) Series {
	if len(s) == 0 {
		return dst[:0]
	}
	if cap(dst) < len(s) {
		dst = make(Series, len(s))
	}
	dst = dst[:len(s)]
	m, sd := s.Mean(), s.Std()
	if sd < stdFloor {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i, v := range s {
		dst[i] = (v - m) / sd
	}
	return dst
}

// PAA reduces s to segments piecewise-aggregate means. When len(s) is not a
// multiple of segments, fractional frame weighting is used so every sample
// contributes exactly once (the standard Keogh formulation generalised to
// non-divisible lengths).
func (s Series) PAA(segments int) (Series, error) {
	n := len(s)
	if n == 0 {
		return nil, ErrEmpty
	}
	if segments < 1 || segments > n {
		return nil, fmt.Errorf("%w: segments=%d len=%d", ErrBadSegments, segments, n)
	}
	out := make(Series, segments)
	if n%segments == 0 {
		w := n / segments
		for i := 0; i < segments; i++ {
			var sum float64
			for j := i * w; j < (i+1)*w; j++ {
				sum += s[j]
			}
			out[i] = sum / float64(w)
		}
		return out, nil
	}
	// Fractional-weight PAA: segment i covers [i*n/seg, (i+1)*n/seg).
	segLen := float64(n) / float64(segments)
	for i := 0; i < segments; i++ {
		start := float64(i) * segLen
		end := start + segLen
		var sum, weight float64
		for j := int(start); j < n && float64(j) < end; j++ {
			lo := math.Max(start, float64(j))
			hi := math.Min(end, float64(j+1))
			w := hi - lo
			if w <= 0 {
				continue
			}
			sum += s[j] * w
			weight += w
		}
		if weight > 0 {
			out[i] = sum / weight
		}
	}
	return out, nil
}

// ResampleLinear resamples s to n points by linear interpolation over the
// index domain. It is used to bring contour signatures of different contour
// lengths to a common length before comparison.
func (s Series) ResampleLinear(n int) (Series, error) {
	if len(s) == 0 {
		return nil, ErrEmpty
	}
	if n < 1 {
		return nil, fmt.Errorf("timeseries: resample target %d < 1", n)
	}
	out := make(Series, n)
	if len(s) == 1 {
		for i := range out {
			out[i] = s[0]
		}
		return out, nil
	}
	scale := float64(len(s)-1) / float64(n-1)
	if n == 1 {
		out[0] = s[0]
		return out, nil
	}
	for i := 0; i < n; i++ {
		x := float64(i) * scale
		j := int(x)
		if j >= len(s)-1 {
			out[i] = s[len(s)-1]
			continue
		}
		frac := x - float64(j)
		out[i] = s[j]*(1-frac) + s[j+1]*frac
	}
	return out, nil
}

// Rotate returns s circularly shifted left by k positions (k may be
// negative or exceed len).
func (s Series) Rotate(k int) Series {
	n := len(s)
	if n == 0 {
		return nil
	}
	k = ((k % n) + n) % n
	out := make(Series, n)
	copy(out, s[k:])
	copy(out[n-k:], s[:k])
	return out
}

// Reverse returns s in reverse order. Matching against reversed signatures
// implements mirror invariance (a signaller seen from behind produces the
// mirrored silhouette).
func (s Series) Reverse() Series {
	out := make(Series, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

// Smooth returns a centered moving-average of s with the given window
// half-width (window = 2*half+1), reflecting at the edges. half <= 0 returns
// a copy.
func (s Series) Smooth(half int) Series {
	if len(s) == 0 {
		return nil
	}
	if half <= 0 {
		return s.Clone()
	}
	out := make(Series, len(s))
	n := len(s)
	for i := range s {
		var sum float64
		var cnt int
		for d := -half; d <= half; d++ {
			j := i + d
			if j < 0 {
				j = -j
			}
			if j >= n {
				j = 2*n - 2 - j
			}
			if j < 0 || j >= n {
				continue
			}
			sum += s[j]
			cnt++
		}
		out[i] = sum / float64(cnt)
	}
	return out
}
