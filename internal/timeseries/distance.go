package timeseries

import (
	"math"
)

// EuclideanDist returns the Euclidean distance between equal-length series.
// It returns +Inf and no error for mismatched lengths is NOT silently
// accepted — callers get ErrLengthMismatch.
func EuclideanDist(a, b Series) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss), nil
}

// MinRotationDist returns the minimum Euclidean distance between a and every
// circular rotation of b, together with the minimising shift (the number of
// positions b was rotated left). This is the rotation-invariant shape
// distance of Xi et al.: rotating a closed contour's starting point
// circularly shifts its centroid-distance signature.
//
// Complexity is O(n²); for the signature lengths used here (n ≤ 256) this is
// comfortably inside the real-time budget, and the SAX layer prunes most
// candidates before this runs.
func MinRotationDist(a, b Series) (best float64, shift int, err error) {
	return MinRotationDistWindow(a, b, -1)
}

// MinRotationDistWindow is MinRotationDist with the shift search restricted
// to ±maxShift positions (maxShift < 0 searches all rotations). A bounded
// window keeps tolerance to modest in-plane rotation — the drone trimming
// its attitude — without allowing a gross rotation to alias one sign's lobe
// pattern onto another's, which is what full rotation invariance does to
// Yes vs No.
func MinRotationDistWindow(a, b Series, maxShift int) (best float64, shift int, err error) {
	if len(a) != len(b) {
		return 0, 0, ErrLengthMismatch
	}
	if len(a) == 0 {
		return 0, 0, ErrEmpty
	}
	n := len(a)
	if maxShift < 0 || maxShift >= n/2 {
		maxShift = n / 2 // symmetric full coverage
	}
	best = math.Inf(1)
	tryShift := func(k int) {
		kk := ((k % n) + n) % n
		var ss float64
		for i := 0; i < n; i++ {
			j := i + kk
			if j >= n {
				j -= n
			}
			d := a[i] - b[j]
			ss += d * d
			if ss >= best { // early abandon
				return
			}
		}
		if ss < best {
			best = ss
			shift = kk
		}
	}
	for k := 0; k <= maxShift; k++ {
		tryShift(k)
		if k != 0 {
			tryShift(-k)
		}
	}
	return math.Sqrt(best), shift, nil
}

// MinRotationMirrorDist extends MinRotationDist to also consider the
// mirrored (reversed) candidate, returning the smaller of the two and
// whether the mirror produced it.
func MinRotationMirrorDist(a, b Series) (best float64, shift int, mirrored bool, err error) {
	return MinRotationMirrorDistWindow(a, b, -1)
}

// MinRotationMirrorDistWindow is MinRotationMirrorDist with a bounded shift
// window (see MinRotationDistWindow). The mirrored candidate is rotated by
// one before the window search so that a pure reversal (which maps index i
// to n-1-i, a reflection about the start point) stays inside a small
// window.
func MinRotationMirrorDistWindow(a, b Series, maxShift int) (best float64, shift int, mirrored bool, err error) {
	d1, s1, err := MinRotationDistWindow(a, b, maxShift)
	if err != nil {
		return 0, 0, false, err
	}
	// Reverse maps b[0] to position n-1; rotating left by n-1 (= -1) brings
	// the original start back to index 0 so the same window applies.
	d2, s2, err := MinRotationDistWindow(a, b.Reverse().Rotate(-1), maxShift)
	if err != nil {
		return 0, 0, false, err
	}
	if d2 < d1 {
		return d2, s2, true, nil
	}
	return d1, s1, false, nil
}

// DTWDist computes the classic dynamic-time-warping distance with an
// optional Sakoe-Chiba band (window < 0 disables the band). It is provided
// as a reference comparator for the evaluation harness; SAX+MINDIST is the
// paper's fast path.
func DTWDist(a, b Series, window int) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, ErrEmpty
	}
	if window >= 0 {
		diff := n - m
		if diff < 0 {
			diff = -diff
		}
		if window < diff {
			window = diff
		}
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo, hi := 1, m
		if window >= 0 {
			lo = maxInt(1, i-window)
			hi = minInt(m, i+window)
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			cost := d * d
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(prev[m]), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CrossCorrelationPeak returns the circular shift of b maximising the
// normalised cross-correlation with a, and that correlation value in
// [-1, 1]. It is a cheaper alignment heuristic than MinRotationDist used by
// diagnostics.
func CrossCorrelationPeak(a, b Series) (shift int, corr float64, err error) {
	if len(a) != len(b) {
		return 0, 0, ErrLengthMismatch
	}
	if len(a) == 0 {
		return 0, 0, ErrEmpty
	}
	an := a.ZNormalize()
	bn := b.ZNormalize()
	n := len(a)
	best := math.Inf(-1)
	for k := 0; k < n; k++ {
		var sum float64
		for i := 0; i < n; i++ {
			j := i + k
			if j >= n {
				j -= n
			}
			sum += an[i] * bn[j]
		}
		if sum > best {
			best = sum
			shift = k
		}
	}
	return shift, best / float64(n), nil
}
