package timeseries

import (
	"math"
	"sync"
)

// EuclideanDist returns the Euclidean distance between equal-length series.
// Mismatched lengths are not silently accepted: callers get
// ErrLengthMismatch, never a quiet +Inf.
func EuclideanDist(a, b Series) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss), nil
}

// EuclideanDistShifted returns the Euclidean distance between a and b
// circularly shifted left by k positions (k may be negative or exceed len),
// without materialising the rotation — the allocation-free equivalent of
// EuclideanDist(a, b.Rotate(k)). Mismatched lengths return ErrLengthMismatch.
func EuclideanDistShifted(a, b Series, k int) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	n := len(a)
	if n == 0 {
		return 0, nil
	}
	k = ((k % n) + n) % n
	var ss float64
	for i := range a {
		j := i + k
		if j >= n {
			j -= n
		}
		d := a[i] - b[j]
		ss += d * d
	}
	return math.Sqrt(ss), nil
}

// MinRotationDist returns the minimum Euclidean distance between a and every
// circular rotation of b, together with the minimising shift (the number of
// positions b was rotated left). This is the rotation-invariant shape
// distance of Xi et al.: rotating a closed contour's starting point
// circularly shifts its centroid-distance signature.
//
// Complexity is O(n²); for the signature lengths used here (n ≤ 256) this is
// comfortably inside the real-time budget, and the SAX layer prunes most
// candidates before this runs.
func MinRotationDist(a, b Series) (best float64, shift int, err error) {
	return MinRotationDistWindow(a, b, -1)
}

// MinRotationDistWindow is MinRotationDist with the shift search restricted
// to ±maxShift positions (maxShift < 0 searches all rotations). A bounded
// window keeps tolerance to modest in-plane rotation — the drone trimming
// its attitude — without allowing a gross rotation to alias one sign's lobe
// pattern onto another's, which is what full rotation invariance does to
// Yes vs No.
func MinRotationDistWindow(a, b Series, maxShift int) (best float64, shift int, err error) {
	return MinRotationDistWindowCutoff(a, b, maxShift, math.Inf(1))
}

// MinRotationDistWindowCutoff is MinRotationDistWindow with a best-so-far
// cutoff threaded into the inner loop: every shift's running sum is abandoned
// as soon as it can no longer beat min(local best, cutoff). Callers that scan
// many candidates (the sax database cascade) pass their global best distance
// so hopeless candidates cost a handful of additions instead of a full pass.
//
// When no rotation beats the cutoff the returned distance is not meaningful
// (it may be +Inf or any abandoned partial minimum ≥ cutoff); callers must
// treat any result ≥ cutoff as "no improvement". A cutoff of +Inf recovers
// the exact MinRotationDistWindow semantics.
func MinRotationDistWindowCutoff(a, b Series, maxShift int, cutoff float64) (best float64, shift int, err error) {
	if len(a) != len(b) {
		return 0, 0, ErrLengthMismatch
	}
	if len(a) == 0 {
		return 0, 0, ErrEmpty
	}
	n := len(a)
	if maxShift < 0 || maxShift >= n/2 {
		maxShift = n / 2 // symmetric full coverage
	}
	bestSS := math.Inf(1)
	cutSS := math.Inf(1)
	if !math.IsInf(cutoff, 1) {
		cutSS = cutoff * cutoff
	}
	for k := 0; k <= maxShift; k++ {
		for s := 0; s < 2; s++ {
			kk := k
			if s == 1 {
				if k == 0 {
					continue
				}
				kk = n - k
			}
			lim := bestSS
			if cutSS < lim {
				lim = cutSS
			}
			var ss float64
			abandoned := false
			for i := 0; i < n; i++ {
				j := i + kk
				if j >= n {
					j -= n
				}
				d := a[i] - b[j]
				ss += d * d
				if ss > lim { // early abandon: cannot beat local best or cutoff
					abandoned = true
					break
				}
			}
			if !abandoned && ss < bestSS {
				bestSS = ss
				shift = kk
			}
		}
	}
	return math.Sqrt(bestSS), shift, nil
}

// MinRotationMirrorDist extends MinRotationDist to also consider the
// mirrored (reversed) candidate, returning the smaller of the two and
// whether the mirror produced it.
func MinRotationMirrorDist(a, b Series) (best float64, shift int, mirrored bool, err error) {
	return MinRotationMirrorDistWindow(a, b, -1)
}

// MinRotationMirrorDistWindow is MinRotationMirrorDist with a bounded shift
// window (see MinRotationDistWindow). The mirrored candidate is rotated by
// one before the window search so that a pure reversal (which maps index i
// to n-1-i, a reflection about the start point) stays inside a small
// window.
func MinRotationMirrorDistWindow(a, b Series, maxShift int) (best float64, shift int, mirrored bool, err error) {
	d1, s1, err := MinRotationDistWindow(a, b, maxShift)
	if err != nil {
		return 0, 0, false, err
	}
	// Reverse maps b[0] to position n-1; rotating left by n-1 (= -1) brings
	// the original start back to index 0 so the same window applies.
	d2, s2, err := MinRotationDistWindow(a, b.Reverse().Rotate(-1), maxShift)
	if err != nil {
		return 0, 0, false, err
	}
	if d2 < d1 {
		return d2, s2, true, nil
	}
	return d1, s1, false, nil
}

// DTWDist computes the classic dynamic-time-warping distance with an
// optional Sakoe-Chiba band (window < 0 disables the band). It is provided
// as a reference comparator for the evaluation harness; SAX+MINDIST is the
// paper's fast path.
func DTWDist(a, b Series, window int) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, ErrEmpty
	}
	if window >= 0 {
		diff := n - m
		if diff < 0 {
			diff = -diff
		}
		if window < diff {
			window = diff
		}
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo, hi := 1, m
		if window >= 0 {
			lo = maxInt(1, i-window)
			hi = minInt(m, i+window)
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			cost := d * d
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(prev[m]), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// xcorrPool recycles the two z-normalised buffers CrossCorrelationPeak
// needs, so repeated diagnostic sweeps do not churn the allocator.
var xcorrPool = sync.Pool{
	New: func() any {
		s := make(Series, 0, 256)
		return &s
	},
}

// CrossCorrelationPeak returns the circular shift of b maximising the
// normalised cross-correlation with a, and that correlation value in
// [-1, 1].
//
// This is a diagnostics-only helper (alignment sanity checks, experiment
// reports): the recognition path aligns with MinRotationDistWindow, whose
// early-abandoned Euclidean search is both the matcher's actual metric and
// cheaper under pruning. The O(n²) correlation here has no cutoff support
// and should not appear on a hot path.
func CrossCorrelationPeak(a, b Series) (shift int, corr float64, err error) {
	if len(a) != len(b) {
		return 0, 0, ErrLengthMismatch
	}
	if len(a) == 0 {
		return 0, 0, ErrEmpty
	}
	abuf := xcorrPool.Get().(*Series)
	bbuf := xcorrPool.Get().(*Series)
	an := a.ZNormalizeInto(*abuf)
	bn := b.ZNormalizeInto(*bbuf)
	defer func() {
		*abuf = an[:0]
		*bbuf = bn[:0]
		xcorrPool.Put(abuf)
		xcorrPool.Put(bbuf)
	}()
	n := len(a)
	best := math.Inf(-1)
	for k := 0; k < n; k++ {
		var sum float64
		for i := 0; i < n; i++ {
			j := i + k
			if j >= n {
				j -= n
			}
			sum += an[i] * bn[j]
		}
		if sum > best {
			best = sum
			shift = k
		}
	}
	return shift, best / float64(n), nil
}
