package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStd(t *testing.T) {
	tests := []struct {
		name     string
		s        Series
		mean, sd float64
	}{
		{"empty", nil, 0, 0},
		{"single", Series{5}, 5, 0},
		{"constant", Series{2, 2, 2, 2}, 2, 0},
		{"simple", Series{1, 2, 3, 4}, 2.5, math.Sqrt(1.25)},
		{"negatives", Series{-1, 1}, 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.Mean(); !almostEq(got, tt.mean, 1e-12) {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
			if got := tt.s.Std(); !almostEq(got, tt.sd, 1e-12) {
				t.Errorf("Std = %v, want %v", got, tt.sd)
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := Series{3, -1, 7, 0}.MinMax()
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%v,%v), want (-1,7)", lo, hi)
	}
	lo, hi = Series(nil).MinMax()
	if lo != 0 || hi != 0 {
		t.Fatalf("empty MinMax = (%v,%v), want (0,0)", lo, hi)
	}
}

func TestZNormalizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		// Filter out NaN/Inf inputs and degenerate sizes.
		s := make(Series, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
			s = append(s, v)
		}
		if len(s) < 2 {
			return true
		}
		z := s.ZNormalize()
		if len(z) != len(s) {
			return false
		}
		if s.Std() < 1e-9 {
			// Constant series → all zeros.
			for _, v := range z {
				if v != 0 {
					return false
				}
			}
			return true
		}
		return almostEq(z.Mean(), 0, 1e-6) && almostEq(z.Std(), 1, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZNormalizeConstant(t *testing.T) {
	z := Series{3, 3, 3}.ZNormalize()
	for _, v := range z {
		if v != 0 {
			t.Fatalf("constant series should z-normalise to zeros, got %v", z)
		}
	}
}

func TestZNormalizeScaleInvariance(t *testing.T) {
	// The core paper property: scaling a signature (altitude change) must not
	// change its z-normalised form.
	rng := rand.New(rand.NewSource(1))
	s := make(Series, 64)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	scaled := make(Series, len(s))
	for i, v := range s {
		scaled[i] = 4.2*v + 17
	}
	z1, z2 := s.ZNormalize(), scaled.ZNormalize()
	for i := range z1 {
		if !almostEq(z1[i], z2[i], 1e-9) {
			t.Fatalf("z-norm not affine invariant at %d: %v vs %v", i, z1[i], z2[i])
		}
	}
}

func TestPAADivisible(t *testing.T) {
	s := Series{1, 1, 2, 2, 3, 3}
	p, err := s.PAA(3)
	if err != nil {
		t.Fatal(err)
	}
	want := Series{1, 2, 3}
	for i := range want {
		if !almostEq(p[i], want[i], 1e-12) {
			t.Fatalf("PAA = %v, want %v", p, want)
		}
	}
}

func TestPAANonDivisible(t *testing.T) {
	s := Series{1, 2, 3, 4, 5}
	p, err := s.PAA(2)
	if err != nil {
		t.Fatal(err)
	}
	// Segment 1 covers samples [0,2.5): 1,2 and half of 3 → (1+2+1.5)/2.5 = 1.8
	// Segment 2 covers [2.5,5): half of 3, 4, 5 → (1.5+4+5)/2.5 = 4.2
	if !almostEq(p[0], 1.8, 1e-9) || !almostEq(p[1], 4.2, 1e-9) {
		t.Fatalf("fractional PAA = %v, want [1.8 4.2]", p)
	}
}

func TestPAAErrors(t *testing.T) {
	if _, err := (Series{}).PAA(1); err == nil {
		t.Error("empty PAA should fail")
	}
	if _, err := (Series{1, 2}).PAA(0); err == nil {
		t.Error("zero segments should fail")
	}
	if _, err := (Series{1, 2}).PAA(3); err == nil {
		t.Error("more segments than samples should fail")
	}
}

func TestPAAPreservesMean(t *testing.T) {
	// PAA of a z-normalised series has (weighted) mean ≈ 0; for divisible
	// lengths the plain mean is preserved exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make(Series, 64)
		for i := range s {
			s[i] = rng.NormFloat64() * 10
		}
		p, err := s.PAA(8)
		if err != nil {
			return false
		}
		return almostEq(p.Mean(), s.Mean(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPAAIdentity(t *testing.T) {
	s := Series{4, 8, 15, 16, 23, 42}
	p, err := s.PAA(len(s))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if !almostEq(p[i], s[i], 1e-12) {
			t.Fatalf("PAA(n) should be identity, got %v", p)
		}
	}
}

func TestResampleLinear(t *testing.T) {
	s := Series{0, 10}
	r, err := s.ResampleLinear(5)
	if err != nil {
		t.Fatal(err)
	}
	want := Series{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if !almostEq(r[i], want[i], 1e-9) {
			t.Fatalf("Resample = %v, want %v", r, want)
		}
	}
	// Endpoints always preserved.
	s2 := Series{3, 1, 4, 1, 5, 9, 2, 6}
	r2, err := s2.ResampleLinear(31)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r2[0], 3, 1e-12) || !almostEq(r2[len(r2)-1], 6, 1e-12) {
		t.Fatalf("endpoints not preserved: %v ... %v", r2[0], r2[len(r2)-1])
	}
}

func TestResampleDegenerate(t *testing.T) {
	if _, err := (Series{}).ResampleLinear(4); err == nil {
		t.Error("empty resample should fail")
	}
	if _, err := (Series{1}).ResampleLinear(0); err == nil {
		t.Error("resample to 0 should fail")
	}
	r, err := (Series{7}).ResampleLinear(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r {
		if v != 7 {
			t.Fatalf("constant expand failed: %v", r)
		}
	}
}

func TestRotate(t *testing.T) {
	s := Series{1, 2, 3, 4}
	tests := []struct {
		k    int
		want Series
	}{
		{0, Series{1, 2, 3, 4}},
		{1, Series{2, 3, 4, 1}},
		{4, Series{1, 2, 3, 4}},
		{-1, Series{4, 1, 2, 3}},
		{5, Series{2, 3, 4, 1}},
	}
	for _, tt := range tests {
		got := s.Rotate(tt.k)
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Fatalf("Rotate(%d) = %v, want %v", tt.k, got, tt.want)
			}
		}
	}
}

func TestRotateRoundTrip(t *testing.T) {
	f := func(seed int64, k int) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make(Series, 17)
		for i := range s {
			s[i] = rng.Float64()
		}
		back := s.Rotate(k).Rotate(-k)
		for i := range s {
			if s[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReverse(t *testing.T) {
	s := Series{1, 2, 3}
	r := s.Reverse()
	if r[0] != 3 || r[1] != 2 || r[2] != 1 {
		t.Fatalf("Reverse = %v", r)
	}
	rr := r.Reverse()
	for i := range s {
		if rr[i] != s[i] {
			t.Fatal("double reverse is not identity")
		}
	}
}

func TestSmooth(t *testing.T) {
	s := Series{0, 0, 10, 0, 0}
	sm := s.Smooth(1)
	if !(sm[2] < 10 && sm[1] > 0 && sm[3] > 0) {
		t.Fatalf("Smooth did not spread the spike: %v", sm)
	}
	// Mean approximately preserved for symmetric reflection.
	if !almostEq(sm.Mean(), s.Mean(), 0.7) {
		t.Fatalf("Smooth changed mean too much: %v vs %v", sm.Mean(), s.Mean())
	}
	// half=0 is a copy.
	c := s.Smooth(0)
	for i := range s {
		if c[i] != s[i] {
			t.Fatal("Smooth(0) should copy")
		}
	}
}

func TestClone(t *testing.T) {
	s := Series{1, 2}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Fatal("Clone aliases memory")
	}
	if Series(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}
