package body

import (
	"math"
	"testing"

	"hdc/internal/geom"
)

func TestSignString(t *testing.T) {
	tests := []struct {
		s    Sign
		want string
	}{
		{SignIdle, "Idle"},
		{SignAttention, "Attention"},
		{SignYes, "Yes"},
		{SignNo, "No"},
		{Sign(99), "Sign(99)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

func TestSignValid(t *testing.T) {
	if Sign(0).Valid() {
		t.Error("zero sign must be invalid")
	}
	for _, s := range AllSigns() {
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	if !SignIdle.Valid() {
		t.Error("idle should be valid")
	}
}

func TestAllSignsExcludesIdle(t *testing.T) {
	for _, s := range AllSigns() {
		if s == SignIdle {
			t.Fatal("AllSigns must not include Idle")
		}
	}
	if len(AllSigns()) != 3 {
		t.Fatalf("want 3 communicative signs, got %d", len(AllSigns()))
	}
}

func TestNewFigureInvalidSign(t *testing.T) {
	if _, err := NewFigure(Sign(0), Options{}); err == nil {
		t.Fatal("invalid sign should fail")
	}
}

func TestFigureStructure(t *testing.T) {
	f, err := NewFigure(SignIdle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 torso/leg capsules + 4 arm capsules.
	if len(f.Capsules) != 7 {
		t.Fatalf("capsules = %d, want 7", len(f.Capsules))
	}
	if f.HeadRadius <= 0 {
		t.Fatal("head radius must be positive")
	}
	if f.HeadCenter.Z < 1.4 || f.HeadCenter.Z > 1.8 {
		t.Fatalf("head height %v implausible", f.HeadCenter.Z)
	}
	// Everything above ground.
	for _, c := range f.Capsules {
		if c.A.Z < -1e-9 || c.B.Z < -1e-9 {
			t.Fatalf("capsule below ground: %+v", c)
		}
	}
}

func TestWristHeightsDiscriminateSigns(t *testing.T) {
	wrists := map[Sign][2]float64{}
	for _, s := range []Sign{SignIdle, SignAttention, SignYes, SignNo} {
		f, err := NewFigure(s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		l, r := f.WristHeights()
		wrists[s] = [2]float64{l, r}
	}
	shoulder := shoulderHeight

	// Idle: both hands below the hips.
	if wrists[SignIdle][0] > hipHeight || wrists[SignIdle][1] > hipHeight {
		t.Errorf("idle wrists %v should hang below hips", wrists[SignIdle])
	}
	// Attention: right hand well above the shoulder, left below hips.
	if wrists[SignAttention][1] < shoulder {
		t.Errorf("attention right wrist %v should be above shoulder", wrists[SignAttention][1])
	}
	if wrists[SignAttention][0] > hipHeight {
		t.Errorf("attention left wrist %v should be down", wrists[SignAttention][0])
	}
	// Yes: both hands above shoulders.
	if wrists[SignYes][0] < shoulder || wrists[SignYes][1] < shoulder {
		t.Errorf("yes wrists %v should both be raised", wrists[SignYes])
	}
	// No: left up, right down — a diagonal.
	if wrists[SignNo][0] < shoulder {
		t.Errorf("no left wrist %v should be raised", wrists[SignNo][0])
	}
	if wrists[SignNo][1] > shoulder {
		t.Errorf("no right wrist %v should be lowered", wrists[SignNo][1])
	}
}

func TestHeightScale(t *testing.T) {
	small, _ := NewFigure(SignYes, Options{HeightScale: 0.5})
	tall, _ := NewFigure(SignYes, Options{HeightScale: 1.0})
	if math.Abs(small.Height*2-tall.Height) > 1e-9 {
		t.Fatalf("height scaling wrong: %v vs %v", small.Height, tall.Height)
	}
	if small.HeadCenter.Z >= tall.HeadCenter.Z {
		t.Fatal("scaled head should be lower")
	}
	// Zero scale means 1.
	def, _ := NewFigure(SignYes, Options{})
	if def.Height != defaultHeight {
		t.Fatalf("default height = %v", def.Height)
	}
}

func TestArmJitterMovesWrists(t *testing.T) {
	clean, _ := NewFigure(SignYes, Options{})
	jit, _ := NewFigure(SignYes, Options{ArmJitterDeg: 15})
	cl, cr := clean.WristHeights()
	jl, jr := jit.WristHeights()
	if cl == jl && cr == jr {
		t.Fatal("jitter had no effect on wrists")
	}
}

func TestRotateYPreservesHeights(t *testing.T) {
	f, _ := NewFigure(SignNo, Options{})
	r := f.RotateY(math.Pi / 3)
	if len(r.Capsules) != len(f.Capsules) {
		t.Fatal("rotation changed capsule count")
	}
	for i := range f.Capsules {
		if math.Abs(r.Capsules[i].A.Z-f.Capsules[i].A.Z) > 1e-9 {
			t.Fatal("rotation about Z must preserve heights")
		}
		// Norm in XY preserved.
		a0 := f.Capsules[i].A.XY().Norm()
		a1 := r.Capsules[i].A.XY().Norm()
		if math.Abs(a0-a1) > 1e-9 {
			t.Fatal("rotation must preserve XY radius")
		}
	}
}

func TestRotateYHalfTurnMirrors(t *testing.T) {
	f, _ := NewFigure(SignNo, Options{})
	r := f.RotateY(math.Pi)
	// The raised-left-arm X offset flips sign after a half turn.
	lu := f.Capsules[3] // left upper arm
	ru := r.Capsules[3]
	if math.Abs(lu.B.X+ru.B.X) > 1e-9 {
		t.Fatalf("half turn should mirror X: %v vs %v", lu.B.X, ru.B.X)
	}
}

func TestTranslate(t *testing.T) {
	f, _ := NewFigure(SignIdle, Options{})
	off := geom.V3(3, -2, 0)
	g := f.Translate(off)
	if g.HeadCenter.Sub(f.HeadCenter) != off {
		t.Fatal("head not translated")
	}
	if g.Capsules[0].A.Sub(f.Capsules[0].A) != off {
		t.Fatal("capsule not translated")
	}
	// Original unchanged (no aliasing).
	if f.Capsules[0].A.X == g.Capsules[0].A.X {
		t.Fatal("translate aliased the original")
	}
}

func TestFigureLateralExtentPerSign(t *testing.T) {
	// The silhouette width ordering underpins sign separability: No
	// (diagonal, arms at 125°/55°) is the widest, Yes (steep V, arms near
	// vertical) narrower, Attention (single vertical arm) the narrowest of
	// the communicative signs.
	extent := func(s Sign) float64 {
		f, _ := NewFigure(s, Options{})
		var m float64
		for _, c := range f.Capsules {
			for _, p := range []geom.Vec3{c.A, c.B} {
				if a := math.Abs(p.X); a > m {
					m = a
				}
			}
		}
		return m
	}
	yes, no, att := extent(SignYes), extent(SignNo), extent(SignAttention)
	if !(no > yes && yes > att) {
		t.Fatalf("extent ordering violated: no=%v yes=%v att=%v", no, yes, att)
	}
	// Every communicative sign reaches clear of the torso.
	for _, s := range AllSigns() {
		if extent(s) < shoulderHalf+0.05 {
			t.Errorf("%v arms too close to torso", s)
		}
	}
}
