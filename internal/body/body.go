// Package body models the human signaller: an articulated skeleton whose
// limb capsules realise the paper's three static marshalling signs
// (AttentionGained, Yes, No — §III, Fig 3). The model is deliberately planar
// — a signaller facing the drone — embedded in 3-D so that viewing it from a
// relative azimuth forshortens the silhouette exactly the way the paper's
// real footage does (the source of the 65° limit and the ~100° dead angle).
package body

import (
	"fmt"
	"math"

	"hdc/internal/geom"
)

// Sign enumerates the paper's marshalling signs plus the neutral stance.
// Enums start at 1 so the zero value is invalid (catches uninitialised use).
type Sign int

// The signs of the paper's §III minimum set.
const (
	// SignIdle is the neutral stance (arms down); not a communication sign.
	SignIdle Sign = iota + 1
	// SignAttention is "attention gained": one hand raised before the face,
	// the human-reflex protective gesture the paper derives it from.
	SignAttention
	// SignYes grants the drone's request: both arms raised in a Y, after the
	// Swiss emergency-services "yes/need help" signal.
	SignYes
	// SignNo denies the request: one arm up, the opposite arm down, forming
	// a diagonal, after the Swiss emergency-services "no" signal.
	SignNo
)

// AllSigns lists the three communicative signs (excluding Idle).
func AllSigns() []Sign { return []Sign{SignAttention, SignYes, SignNo} }

// String implements fmt.Stringer.
func (s Sign) String() string {
	switch s {
	case SignIdle:
		return "Idle"
	case SignAttention:
		return "Attention"
	case SignYes:
		return "Yes"
	case SignNo:
		return "No"
	default:
		return fmt.Sprintf("Sign(%d)", int(s))
	}
}

// Valid reports whether s is a defined sign.
func (s Sign) Valid() bool { return s >= SignIdle && s <= SignNo }

// Capsule is a thick line segment in 3-D body space: a limb or torso part.
type Capsule struct {
	A, B   geom.Vec3 // endpoints in body frame (meters)
	Radius float64   // half-width (meters)
}

// Figure is a posed signaller: a set of capsules plus a head sphere, in the
// body frame (origin between the feet, X lateral (signaller's left is +X),
// Y towards the viewer at azimuth 0, Z up).
type Figure struct {
	Capsules   []Capsule
	HeadCenter geom.Vec3
	HeadRadius float64
	Height     float64 // stature in meters
}

// Dimensions of the default adult signaller (meters). Proportions follow
// standard anthropometric ratios for a 1.75 m adult.
const (
	defaultHeight   = 1.75
	hipHeight       = 0.95
	shoulderHeight  = 1.45
	shoulderHalf    = 0.20
	headRadius      = 0.11
	neckGap         = 0.04
	torsoRadius     = 0.16
	upperArmLen     = 0.30
	forearmLen      = 0.28
	armRadius       = 0.05
	legRadius       = 0.08
	footSpreadHips  = 0.05
	footSpreadFloor = 0.07
)

// armSpec gives one arm's pose: angles measured in the body plane (X–Z),
// in degrees, where 0 points straight down and positive rotates outwards
// (away from the torso) and then up; 180 is straight up.
type armSpec struct {
	shoulderDeg float64 // upper-arm direction
	elbowDeg    float64 // forearm direction (absolute, same convention)
}

// poseSpec is the full articulation for one sign.
type poseSpec struct {
	left  armSpec // signaller's left arm (+X side)
	right armSpec // signaller's right arm (−X side)
}

// poses encodes the sign language. Angles chosen so that the rendered
// silhouettes match the paper's figures: Attention = single vertical arm,
// Yes = symmetric Y, No = one-up-one-down diagonal.
// Marshalling signs are deliberately wide gestures — arms held well clear of
// the torso — precisely so the silhouette lobes survive oblique viewing.
// The angles below keep every communicating arm ≥ 55° away from the body
// axis, which is what carries recognition out to the paper's 65° azimuth
// before self-occlusion merges the lobes.
var poses = map[Sign]poseSpec{
	SignIdle: {
		left:  armSpec{shoulderDeg: 12, elbowDeg: 8},
		right: armSpec{shoulderDeg: 12, elbowDeg: 8},
	},
	SignAttention: {
		// Right hand raised straight up before the face; left arm down.
		left:  armSpec{shoulderDeg: 12, elbowDeg: 8},
		right: armSpec{shoulderDeg: 168, elbowDeg: 174},
	},
	SignYes: {
		// Both arms raised steeply above the head: the Y of the Swiss
		// "yes" signal, held close to vertical so the two hand lobes stay
		// clear of each other (and of the head) even at high relative
		// azimuth.
		left:  armSpec{shoulderDeg: 150, elbowDeg: 156},
		right: armSpec{shoulderDeg: 150, elbowDeg: 156},
	},
	SignNo: {
		// Left arm up-out, right arm down-out: the diagonal "no".
		left:  armSpec{shoulderDeg: 125, elbowDeg: 128},
		right: armSpec{shoulderDeg: 55, elbowDeg: 52},
	},
}

// Options tweaks figure construction.
type Options struct {
	// HeightScale scales the whole figure (1 = 1.75 m adult). Zero means 1.
	HeightScale float64
	// ArmJitterDeg perturbs every arm angle by the given amount (degrees);
	// used to model imprecise signalling by partially trained humans.
	ArmJitterDeg float64
}

// ArmPose is a public arm articulation, used by the dynamic-gesture
// extension to animate arbitrary in-between poses.
type ArmPose struct {
	// ShoulderDeg is the upper-arm direction: 0 points straight down,
	// positive rotates outwards then up, 180 straight up.
	ShoulderDeg float64
	// ElbowDeg is the forearm direction in the same convention.
	ElbowDeg float64
}

// PoseOf returns a sign's canonical arm poses (left, right).
func PoseOf(s Sign) (left, right ArmPose, err error) {
	if !s.Valid() {
		return ArmPose{}, ArmPose{}, fmt.Errorf("body: invalid sign %d", int(s))
	}
	p := poses[s]
	return ArmPose{p.left.shoulderDeg, p.left.elbowDeg},
		ArmPose{p.right.shoulderDeg, p.right.elbowDeg}, nil
}

// Lerp interpolates between two arm poses (t = 0 -> a, t = 1 -> b).
func (a ArmPose) Lerp(b ArmPose, t float64) ArmPose {
	return ArmPose{
		ShoulderDeg: a.ShoulderDeg + (b.ShoulderDeg-a.ShoulderDeg)*t,
		ElbowDeg:    a.ElbowDeg + (b.ElbowDeg-a.ElbowDeg)*t,
	}
}

// NewFigurePose builds a signaller with explicit arm articulation — the
// entry point for dynamic gestures.
func NewFigurePose(left, right ArmPose, opts Options) Figure {
	scale := opts.HeightScale
	if scale == 0 {
		scale = 1
	}
	jl := armSpec{
		shoulderDeg: left.ShoulderDeg + opts.ArmJitterDeg,
		elbowDeg:    left.ElbowDeg + opts.ArmJitterDeg,
	}
	jr := armSpec{
		shoulderDeg: right.ShoulderDeg - opts.ArmJitterDeg,
		elbowDeg:    right.ElbowDeg - opts.ArmJitterDeg,
	}
	return buildFigure(jl, jr, scale)
}

// NewFigure builds the posed signaller for a sign. Jitter is deterministic
// per the caller-provided values; randomness is injected by callers (the
// human behaviour model), keeping this package pure.
func NewFigure(s Sign, opts Options) (Figure, error) {
	if !s.Valid() {
		return Figure{}, fmt.Errorf("body: invalid sign %d", int(s))
	}
	scale := opts.HeightScale
	if scale == 0 {
		scale = 1
	}
	p := poses[s]
	jl := armSpec{
		shoulderDeg: p.left.shoulderDeg + opts.ArmJitterDeg,
		elbowDeg:    p.left.elbowDeg + opts.ArmJitterDeg,
	}
	jr := armSpec{
		shoulderDeg: p.right.shoulderDeg - opts.ArmJitterDeg,
		elbowDeg:    p.right.elbowDeg - opts.ArmJitterDeg,
	}
	return buildFigure(jl, jr, scale), nil
}

// buildFigure assembles the capsule skeleton for the given arm specs.
func buildFigure(jl, jr armSpec, scale float64) Figure {
	f := Figure{Height: defaultHeight * scale}
	sc := func(v geom.Vec3) geom.Vec3 { return v.Scale(scale) }

	hip := geom.V3(0, 0, hipHeight)
	neck := geom.V3(0, 0, shoulderHeight)
	f.Capsules = append(f.Capsules,
		// Torso.
		Capsule{A: sc(hip), B: sc(neck), Radius: torsoRadius * scale},
		// Legs.
		Capsule{
			A: sc(geom.V3(footSpreadHips, 0, hipHeight)),
			B: sc(geom.V3(footSpreadFloor, 0, 0)), Radius: legRadius * scale,
		},
		Capsule{
			A: sc(geom.V3(-footSpreadHips, 0, hipHeight)),
			B: sc(geom.V3(-footSpreadFloor, 0, 0)), Radius: legRadius * scale,
		},
	)
	f.Capsules = append(f.Capsules, armCapsules(+1, jl, scale)...)
	f.Capsules = append(f.Capsules, armCapsules(-1, jr, scale)...)

	f.HeadCenter = sc(geom.V3(0, 0, shoulderHeight+neckGap+headRadius))
	f.HeadRadius = headRadius * scale
	return f
}

// armCapsules builds the two-segment arm on the given side (+1 left, −1
// right in body frame).
func armCapsules(side float64, spec armSpec, scale float64) []Capsule {
	shoulder := geom.V3(side*shoulderHalf, 0, shoulderHeight)
	dir := func(deg float64) geom.Vec3 {
		// 0° points down; rotation is outwards (towards ±X) then up.
		rad := geom.Deg2Rad(deg)
		return geom.V3(side*math.Sin(rad), 0, -math.Cos(rad))
	}
	elbow := shoulder.Add(dir(spec.shoulderDeg).Scale(upperArmLen))
	hand := elbow.Add(dir(spec.elbowDeg).Scale(forearmLen))
	return []Capsule{
		{A: shoulder.Scale(scale), B: elbow.Scale(scale), Radius: armRadius * scale},
		{A: elbow.Scale(scale), B: hand.Scale(scale), Radius: armRadius * scale},
	}
}

// RotateY returns the figure rotated about the vertical (Z) axis by yaw
// radians — used by the scene to realise the drone's relative azimuth.
func (f Figure) RotateY(yaw float64) Figure {
	s, c := math.Sincos(yaw)
	rot := func(v geom.Vec3) geom.Vec3 {
		return geom.V3(v.X*c-v.Y*s, v.X*s+v.Y*c, v.Z)
	}
	out := Figure{
		HeadCenter: rot(f.HeadCenter),
		HeadRadius: f.HeadRadius,
		Height:     f.Height,
		Capsules:   make([]Capsule, len(f.Capsules)),
	}
	for i, cp := range f.Capsules {
		out.Capsules[i] = Capsule{A: rot(cp.A), B: rot(cp.B), Radius: cp.Radius}
	}
	return out
}

// Translate returns the figure shifted by offset (to place the signaller in
// the world).
func (f Figure) Translate(offset geom.Vec3) Figure {
	out := Figure{
		HeadCenter: f.HeadCenter.Add(offset),
		HeadRadius: f.HeadRadius,
		Height:     f.Height,
		Capsules:   make([]Capsule, len(f.Capsules)),
	}
	for i, cp := range f.Capsules {
		out.Capsules[i] = Capsule{A: cp.A.Add(offset), B: cp.B.Add(offset), Radius: cp.Radius}
	}
	return out
}

// WristHeights returns the height (Z) of each hand endpoint, ordered
// left, right — a convenient scalar feature for pose diagnostics and tests.
func (f Figure) WristHeights() (left, right float64) {
	// Arms are appended after the 3 torso/leg capsules, two capsules each:
	// left upper, left fore, right upper, right fore.
	const torsoParts = 3
	if len(f.Capsules) < torsoParts+4 {
		return 0, 0
	}
	left = f.Capsules[torsoParts+1].B.Z
	right = f.Capsules[torsoParts+3].B.Z
	return left, right
}
