package vision

import (
	"math"
	"math/rand"
	"testing"

	"hdc/internal/raster"
	"hdc/internal/timeseries"
)

func discImage(w, h int, cx, cy, r float64, fg, bg uint8) *raster.Gray {
	g := raster.MustGray(w, h)
	g.Fill(bg)
	g.FillDisc(cx, cy, r, fg)
	return g
}

func TestOtsuSeparatesBimodal(t *testing.T) {
	g := discImage(64, 64, 32, 32, 12, 220, 30)
	th := OtsuThreshold(g)
	if th < 30 || th > 220 {
		t.Fatalf("Otsu threshold %d outside modes", th)
	}
	b := Threshold(g, th, true)
	want := math.Pi * 12 * 12
	got := float64(b.Count())
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("foreground area %v, want ≈%v", got, want)
	}
}

func TestOtsuBinarizePolarity(t *testing.T) {
	// Dark object on bright background must still give the object as
	// foreground (minority class).
	g := discImage(64, 64, 32, 32, 10, 20, 230)
	b := OtsuBinarize(g)
	area := b.Count()
	want := math.Pi * 100
	if float64(area) < want*0.8 || float64(area) > want*1.2 {
		t.Fatalf("dark-object foreground = %d, want ≈%v", area, want)
	}
	if b.At(32, 32) == 0 {
		t.Fatal("object centre must be foreground")
	}
}

func TestThresholdExact(t *testing.T) {
	g := raster.MustGray(2, 1)
	g.Pix[0] = 100
	g.Pix[1] = 101
	b := Threshold(g, 100, true)
	if b.Pix[0] != 0 || b.Pix[1] != 1 {
		t.Fatalf("threshold strictness wrong: %v", b.Pix)
	}
	binv := Threshold(g, 100, false)
	if binv.Pix[0] != 1 || binv.Pix[1] != 0 {
		t.Fatalf("inverted polarity wrong: %v", binv.Pix)
	}
}

func TestBinarySetAt(t *testing.T) {
	b := NewBinary(4, 4)
	b.Set(1, 1, 7) // any nonzero normalises to 1
	if b.At(1, 1) != 1 {
		t.Fatal("Set should normalise to 1")
	}
	b.Set(-1, 0, 1) // ignored
	if b.At(-1, 0) != 0 {
		t.Fatal("out of bounds should read 0")
	}
}

func TestErodeDilateDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := NewBinary(40, 40)
	for i := 0; i < 200; i++ {
		b.Set(rng.Intn(40), rng.Intn(40), 1)
	}
	// Dilation grows, erosion shrinks.
	d := Dilate(b, 1)
	e := Erode(b, 1)
	if d.Count() < b.Count() {
		t.Fatal("dilate must not shrink")
	}
	if e.Count() > b.Count() {
		t.Fatal("erode must not grow")
	}
	// Erosion of dilation ⊇ original (closing property).
	cl := Close(b, 1)
	for i := range b.Pix {
		if b.Pix[i] == 1 && cl.Pix[i] == 0 {
			t.Fatal("closing must contain the original")
		}
	}
	// Opening ⊆ original.
	op := Open(b, 1)
	for i := range b.Pix {
		if op.Pix[i] == 1 && b.Pix[i] == 0 {
			t.Fatal("opening must be contained in the original")
		}
	}
}

func TestOpenRemovesSpeckle(t *testing.T) {
	b := NewBinary(40, 40)
	// A solid 12x12 block plus isolated speckles.
	for y := 10; y < 22; y++ {
		for x := 10; x < 22; x++ {
			b.Set(x, y, 1)
		}
	}
	b.Set(2, 2, 1)
	b.Set(35, 5, 1)
	op := Open(b, 1)
	if op.At(2, 2) != 0 || op.At(35, 5) != 0 {
		t.Fatal("open should remove speckles")
	}
	if op.At(15, 15) == 0 {
		t.Fatal("open should keep the block interior")
	}
}

func TestCloseFillsHoles(t *testing.T) {
	b := NewBinary(30, 30)
	for y := 5; y < 25; y++ {
		for x := 5; x < 25; x++ {
			b.Set(x, y, 1)
		}
	}
	b.Set(15, 15, 0) // pinhole
	cl := Close(b, 1)
	if cl.At(15, 15) == 0 {
		t.Fatal("close should fill a pinhole")
	}
}

func TestMorphologyNoop(t *testing.T) {
	b := NewBinary(10, 10)
	b.Set(5, 5, 1)
	if Dilate(b, 0).Count() != 1 || Erode(b, 0).Count() != 1 {
		t.Fatal("radius 0 should be a clone")
	}
}

func TestLabelComponents(t *testing.T) {
	b := NewBinary(20, 10)
	// Two blobs: 3x3 at (1,1), 2x2 at (10,5).
	for y := 1; y < 4; y++ {
		for x := 1; x < 4; x++ {
			b.Set(x, y, 1)
		}
	}
	for y := 5; y < 7; y++ {
		for x := 10; x < 12; x++ {
			b.Set(x, y, 1)
		}
	}
	_, comps := LabelComponents(b)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if comps[0].Area != 9 || comps[1].Area != 4 {
		t.Fatalf("areas = %d,%d want 9,4", comps[0].Area, comps[1].Area)
	}
	if comps[0].CenX != 2 || comps[0].CenY != 2 {
		t.Fatalf("centroid = (%v,%v), want (2,2)", comps[0].CenX, comps[0].CenY)
	}
	if comps[0].FirstPix != [2]int{1, 1} {
		t.Fatalf("first pixel = %v", comps[0].FirstPix)
	}
}

func TestLabelComponents8Connectivity(t *testing.T) {
	b := NewBinary(10, 10)
	// Diagonal chain: 8-connected should be ONE component.
	for i := 0; i < 5; i++ {
		b.Set(i, i, 1)
	}
	_, comps := LabelComponents(b)
	if len(comps) != 1 {
		t.Fatalf("diagonal chain gave %d components, want 1", len(comps))
	}
	if comps[0].Area != 5 {
		t.Fatalf("area = %d", comps[0].Area)
	}
}

func TestLabelComponentsUShape(t *testing.T) {
	// A U-shape forces label merging in the second pass (union-find stress).
	b := NewBinary(20, 20)
	for y := 5; y < 15; y++ {
		b.Set(5, y, 1)
		b.Set(15, y, 1)
	}
	for x := 5; x <= 15; x++ {
		b.Set(x, 14, 1)
	}
	_, comps := LabelComponents(b)
	if len(comps) != 1 {
		t.Fatalf("U-shape gave %d components, want 1", len(comps))
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBinary(20, 20)
	for y := 2; y < 8; y++ {
		for x := 2; x < 8; x++ {
			b.Set(x, y, 1)
		}
	}
	b.Set(15, 15, 1)
	blob, comp, err := LargestComponent(b)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Area != 36 {
		t.Fatalf("largest area = %d", comp.Area)
	}
	if blob.At(15, 15) != 0 {
		t.Fatal("small blob must be excluded")
	}
	empty := NewBinary(5, 5)
	if _, _, err := LargestComponent(empty); err == nil {
		t.Fatal("empty image should fail")
	}
}

func TestTraceContourSquare(t *testing.T) {
	b := NewBinary(20, 20)
	for y := 5; y < 15; y++ {
		for x := 5; x < 15; x++ {
			b.Set(x, y, 1)
		}
	}
	c, err := TraceContour(b, Point{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	// A 10x10 square boundary has 36 pixels.
	if len(c) != 36 {
		t.Fatalf("contour length = %d, want 36", len(c))
	}
	// All contour points are on the boundary (touch background).
	for _, p := range c {
		if b.At(p.X, p.Y) == 0 {
			t.Fatalf("contour point %v not foreground", p)
		}
	}
	cx, cy := c.Centroid()
	if math.Abs(cx-9.5) > 0.1 || math.Abs(cy-9.5) > 0.1 {
		t.Fatalf("centroid (%v,%v), want (9.5,9.5)", cx, cy)
	}
}

func TestTraceContourSinglePixel(t *testing.T) {
	b := NewBinary(5, 5)
	b.Set(2, 2, 1)
	c, err := TraceContour(b, Point{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 1 {
		t.Fatalf("single pixel contour = %d points", len(c))
	}
}

func TestTraceContourBadStart(t *testing.T) {
	b := NewBinary(5, 5)
	if _, err := TraceContour(b, Point{2, 2}); err == nil {
		t.Fatal("background start should fail")
	}
}

func TestContourPerimeter(t *testing.T) {
	b := NewBinary(20, 20)
	for y := 5; y < 15; y++ {
		for x := 5; x < 15; x++ {
			b.Set(x, y, 1)
		}
	}
	c, _ := TraceContour(b, Point{5, 5})
	p := c.Perimeter()
	if p < 30 || p > 44 {
		t.Fatalf("perimeter = %v, want ≈36", p)
	}
}

func TestSignatureCircleIsFlat(t *testing.T) {
	g := discImage(100, 100, 50, 50, 30, 255, 0)
	mask := OtsuBinarize(g)
	sig, _, _, err := ExtractSignature(mask, 128)
	if err != nil {
		t.Fatal(err)
	}
	// A circle's centroid-distance signature is constant up to pixelation.
	mean := sig.Mean()
	if mean < 28 || mean > 32 {
		t.Fatalf("circle signature mean %v, want ≈30", mean)
	}
	lo, hi := sig.MinMax()
	if (hi-lo)/mean > 0.1 {
		t.Fatalf("circle signature too wobbly: [%v, %v]", lo, hi)
	}
}

func TestSignatureSquareHasFourLobes(t *testing.T) {
	b := NewBinary(100, 100)
	for y := 30; y < 70; y++ {
		for x := 30; x < 70; x++ {
			b.Set(x, y, 1)
		}
	}
	sig, _, _, err := ExtractSignature(b, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Count local maxima of the z-normalised signature: a square has 4
	// corners → 4 lobes.
	z := sig.ZNormalize().Smooth(3)
	peaks := countCircularPeaks(z, 0.5)
	if peaks != 4 {
		t.Fatalf("square signature has %d peaks, want 4", peaks)
	}
}

func countCircularPeaks(s timeseries.Series, minHeight float64) int {
	n := len(s)
	count := 0
	for i := 0; i < n; i++ {
		prev := s[(i-1+n)%n]
		next := s[(i+1)%n]
		if s[i] > minHeight && s[i] > prev && s[i] >= next {
			count++
		}
	}
	return count
}

func TestSignatureRotationShiftsSeries(t *testing.T) {
	// Rotating a shape in the image plane circularly shifts its signature.
	mk := func(angle float64) timeseries.Series {
		g := raster.MustGray(160, 160)
		// An ellipse drawn as a rotated polygon.
		var xs, ys []float64
		for i := 0; i < 64; i++ {
			t := 2 * math.Pi * float64(i) / 64
			x := 50 * math.Cos(t)
			y := 25 * math.Sin(t)
			xr := x*math.Cos(angle) - y*math.Sin(angle)
			yr := x*math.Sin(angle) + y*math.Cos(angle)
			xs = append(xs, 80+xr)
			ys = append(ys, 80+yr)
		}
		g.FillPolygon(xs, ys, 255)
		mask := OtsuBinarize(g)
		sig, _, _, err := ExtractSignature(mask, 128)
		if err != nil {
			panic(err)
		}
		return sig.ZNormalize()
	}
	s0 := mk(0)
	s45 := mk(math.Pi / 4)
	dmin, _, err := timeseries.MinRotationDist(s0, s45)
	if err != nil {
		t.Fatal(err)
	}
	dplain, _ := timeseries.EuclideanDist(s0, s45)
	if dmin > 3 {
		t.Fatalf("rotated ellipse min-rotation distance %v too large", dmin)
	}
	if dmin > dplain {
		t.Fatal("min-rotation distance exceeded plain distance")
	}
}

func TestExtractSignatureErrors(t *testing.T) {
	if _, _, _, err := ExtractSignature(NewBinary(10, 10), 64); err == nil {
		t.Fatal("empty mask should fail")
	}
	b := NewBinary(10, 10)
	b.Set(5, 5, 1)
	if _, _, _, err := ExtractSignature(b, 0); err == nil {
		t.Fatal("bad signature length should fail")
	}
}
