// Package vision is the pure-Go substitute for the OpenCV functionality the
// paper's prototype used: global thresholding, binary morphology, connected
// components, contour tracing and the conversion of a closed contour into a
// centroid-distance time series (the "shape → time series" step of §IV).
package vision

import (
	"errors"

	"hdc/internal/raster"
)

// Binary is a binary mask with the same layout as raster.Gray; nonzero
// bytes are foreground.
type Binary struct {
	W, H int
	Pix  []uint8 // 0 background, 1 foreground
}

// ErrEmptyImage is returned for operations on images without foreground.
var ErrEmptyImage = errors.New("vision: no foreground pixels")

// NewBinary allocates an all-background mask.
func NewBinary(w, h int) *Binary {
	return &Binary{W: w, H: h, Pix: make([]uint8, w*h)}
}

// In reports whether (x, y) lies inside the mask.
func (b *Binary) In(x, y int) bool { return x >= 0 && x < b.W && y >= 0 && y < b.H }

// At returns 1 for foreground at (x, y), 0 otherwise (including outside).
func (b *Binary) At(x, y int) uint8 {
	if !b.In(x, y) {
		return 0
	}
	return b.Pix[y*b.W+x]
}

// Set writes a mask pixel; out-of-range writes are ignored.
func (b *Binary) Set(x, y int, v uint8) {
	if b.In(x, y) {
		if v != 0 {
			v = 1
		}
		b.Pix[y*b.W+x] = v
	}
}

// Count returns the number of foreground pixels.
func (b *Binary) Count() int {
	var n int
	for _, p := range b.Pix {
		if p != 0 {
			n++
		}
	}
	return n
}

// Clone returns an independent copy.
func (b *Binary) Clone() *Binary {
	out := &Binary{W: b.W, H: b.H, Pix: make([]uint8, len(b.Pix))}
	copy(out.Pix, b.Pix)
	return out
}

// Reset resizes b to w×h, reusing the pixel buffer when capacity allows, and
// clears every pixel to background. It is the reusable-buffer counterpart of
// NewBinary; the in-place morphology and thresholding variants build on it.
func (b *Binary) Reset(w, h int) {
	n := w * h
	if cap(b.Pix) < n {
		b.Pix = make([]uint8, n)
	} else {
		b.Pix = b.Pix[:n]
		for i := range b.Pix {
			b.Pix[i] = 0
		}
	}
	b.W, b.H = w, h
}

// CopyInto copies b into dst (resizing as needed) and returns dst. A nil dst
// allocates, making CopyInto(nil) equivalent to Clone.
func (b *Binary) CopyInto(dst *Binary) *Binary {
	if dst == nil {
		return b.Clone()
	}
	if dst == b {
		return dst
	}
	dst.resize(b.W, b.H)
	copy(dst.Pix, b.Pix)
	return dst
}

// OtsuThreshold computes Otsu's optimal global threshold for g: the
// intensity that maximises between-class variance of the histogram.
func OtsuThreshold(g *raster.Gray) uint8 {
	hist := g.Histogram()
	total := len(g.Pix)

	var sumAll float64
	for i, c := range hist {
		sumAll += float64(i) * float64(c)
	}

	var sumB, wB float64
	var best float64
	var threshold uint8
	for t := 0; t < 256; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		if between > best {
			best = between
			threshold = uint8(t)
		}
	}
	return threshold
}

// Threshold binarises g: pixels strictly above t become foreground when
// brightForeground, otherwise pixels at or below t do.
func Threshold(g *raster.Gray, t uint8, brightForeground bool) *Binary {
	b := NewBinary(g.W, g.H)
	for i, p := range g.Pix {
		fg := p > t
		if !brightForeground {
			fg = !fg
		}
		if fg {
			b.Pix[i] = 1
		}
	}
	return b
}

// OtsuBinarize thresholds g at the Otsu level, choosing the polarity that
// yields the smaller foreground (the signaller occupies a minority of the
// frame in the paper's setup).
func OtsuBinarize(g *raster.Gray) *Binary {
	return OtsuBinarizeInto(NewBinary(g.W, g.H), g)
}

// OtsuBinarizeInto is OtsuBinarize writing the mask into dst (resized as
// needed) instead of allocating. It decides the polarity from the histogram
// alone, so no intermediate mask is built. dst must not be nil.
func OtsuBinarizeInto(dst *Binary, g *raster.Gray) *Binary {
	t := OtsuThreshold(g)
	above := g.CountAbove(t)
	brightForeground := above <= len(g.Pix)-above
	dst.resize(g.W, g.H)
	for i, p := range g.Pix {
		fg := p > t
		if !brightForeground {
			fg = !fg
		}
		if fg {
			dst.Pix[i] = 1
		} else {
			dst.Pix[i] = 0
		}
	}
	return dst
}
