package vision

import (
	"testing"

	"hdc/internal/raster"
)

func benchFrame() *raster.Gray {
	g := raster.MustGray(256, 256)
	g.Fill(210)
	// A figure-like blob: torso + arms.
	g.FillPolygon([]float64{120, 136, 136, 120}, []float64{80, 80, 200, 200}, 30)
	g.StrokeLine(128, 100, 80, 60, 5, 30)
	g.StrokeLine(128, 100, 176, 140, 5, 30)
	g.FillDisc(128, 70, 12, 30)
	g.BoxBlur(1, 2)
	return g
}

func BenchmarkOtsuBinarize(b *testing.B) {
	g := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OtsuBinarize(g)
	}
}

func BenchmarkMorphOpenClose(b *testing.B) {
	mask := OtsuBinarize(benchFrame())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := Open(mask, 1)
		Close(m, 1)
	}
}

func BenchmarkLabelComponents(b *testing.B) {
	mask := OtsuBinarize(benchFrame())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LabelComponents(mask)
	}
}

func BenchmarkExtractSignatureNormalized(b *testing.B) {
	mask := OtsuBinarize(benchFrame())
	mask = Open(mask, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ExtractSignatureNormalized(mask, 128); err != nil {
			b.Fatal(err)
		}
	}
}
