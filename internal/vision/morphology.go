package vision

// morphology.go implements binary erosion/dilation with a square structuring
// element plus the derived open/close operators used to clean up thresholded
// silhouettes before contour tracing.

// Dilate returns b dilated by a (2r+1)×(2r+1) square structuring element.
func Dilate(b *Binary, r int) *Binary {
	if r <= 0 {
		return b.Clone()
	}
	// Two-pass separable dilation: horizontal then vertical runs.
	tmp := NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		row := y * b.W
		for x := 0; x < b.W; x++ {
			if b.Pix[row+x] == 0 {
				continue
			}
			lo := x - r
			if lo < 0 {
				lo = 0
			}
			hi := x + r
			if hi >= b.W {
				hi = b.W - 1
			}
			for i := lo; i <= hi; i++ {
				tmp.Pix[row+i] = 1
			}
		}
	}
	out := NewBinary(b.W, b.H)
	for x := 0; x < b.W; x++ {
		for y := 0; y < b.H; y++ {
			if tmp.Pix[y*b.W+x] == 0 {
				continue
			}
			lo := y - r
			if lo < 0 {
				lo = 0
			}
			hi := y + r
			if hi >= b.H {
				hi = b.H - 1
			}
			for j := lo; j <= hi; j++ {
				out.Pix[j*b.W+x] = 1
			}
		}
	}
	return out
}

// Erode returns b eroded by a (2r+1)×(2r+1) square structuring element.
// Outside the image counts as foreground (replicated border, as in OpenCV),
// which keeps Close extensive (Close(b) ⊇ b) everywhere including borders.
func Erode(b *Binary, r int) *Binary {
	if r <= 0 {
		return b.Clone()
	}
	// Separable erosion via sliding background count: a pixel survives a
	// pass iff its clipped window contains no background.
	tmp := NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		row := y * b.W
		bg := 0
		for x := 0; x <= r && x < b.W; x++ {
			if b.Pix[row+x] == 0 {
				bg++
			}
		}
		for x := 0; x < b.W; x++ {
			if bg == 0 {
				tmp.Pix[row+x] = 1
			}
			if add := x + r + 1; add < b.W && b.Pix[row+add] == 0 {
				bg++
			}
			if del := x - r; del >= 0 && b.Pix[row+del] == 0 {
				bg--
			}
		}
	}
	out := NewBinary(b.W, b.H)
	for x := 0; x < b.W; x++ {
		bg := 0
		for y := 0; y <= r && y < b.H; y++ {
			if tmp.Pix[y*b.W+x] == 0 {
				bg++
			}
		}
		for y := 0; y < b.H; y++ {
			if bg == 0 {
				out.Pix[y*b.W+x] = 1
			}
			if add := y + r + 1; add < b.H && tmp.Pix[add*b.W+x] == 0 {
				bg++
			}
			if del := y - r; del >= 0 && tmp.Pix[del*b.W+x] == 0 {
				bg--
			}
		}
	}
	return out
}

// Open erodes then dilates: removes speckle smaller than the element.
func Open(b *Binary, r int) *Binary { return Dilate(Erode(b, r), r) }

// Close dilates then erodes: fills holes/gaps smaller than the element.
func Close(b *Binary, r int) *Binary { return Erode(Dilate(b, r), r) }
