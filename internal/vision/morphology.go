package vision

// morphology.go implements binary erosion/dilation with a square structuring
// element plus the derived open/close operators used to clean up thresholded
// silhouettes before contour tracing. Every operator has an Into variant that
// writes into caller-provided buffers so the recognition hot path can run
// without per-frame allocations (see Scratch).

// resize reslices b to w×h without clearing; callers must write every pixel.
func (b *Binary) resize(w, h int) {
	n := w * h
	if cap(b.Pix) < n {
		b.Pix = make([]uint8, n)
	} else {
		b.Pix = b.Pix[:n]
	}
	b.W, b.H = w, h
}

// Dilate returns b dilated by a (2r+1)×(2r+1) square structuring element.
func Dilate(b *Binary, r int) *Binary {
	return DilateInto(NewBinary(b.W, b.H), b, r, NewBinary(b.W, b.H))
}

// DilateInto dilates src into dst using tmp as scratch for the horizontal
// pass. dst may alias src; tmp must be distinct from both. All buffers are
// resized as needed and dst is returned.
func DilateInto(dst, src *Binary, r int, tmp *Binary) *Binary {
	if r <= 0 {
		return src.CopyInto(dst)
	}
	// Two-pass separable dilation: horizontal then vertical runs.
	tmp.Reset(src.W, src.H)
	for y := 0; y < src.H; y++ {
		row := y * src.W
		for x := 0; x < src.W; x++ {
			if src.Pix[row+x] == 0 {
				continue
			}
			lo := x - r
			if lo < 0 {
				lo = 0
			}
			hi := x + r
			if hi >= src.W {
				hi = src.W - 1
			}
			for i := lo; i <= hi; i++ {
				tmp.Pix[row+i] = 1
			}
		}
	}
	// src is no longer read, so dst == src is safe from here on.
	dst.Reset(tmp.W, tmp.H)
	for x := 0; x < tmp.W; x++ {
		for y := 0; y < tmp.H; y++ {
			if tmp.Pix[y*tmp.W+x] == 0 {
				continue
			}
			lo := y - r
			if lo < 0 {
				lo = 0
			}
			hi := y + r
			if hi >= tmp.H {
				hi = tmp.H - 1
			}
			for j := lo; j <= hi; j++ {
				dst.Pix[j*tmp.W+x] = 1
			}
		}
	}
	return dst
}

// Erode returns b eroded by a (2r+1)×(2r+1) square structuring element.
// Outside the image counts as foreground (replicated border, as in OpenCV),
// which keeps Close extensive (Close(b) ⊇ b) everywhere including borders.
func Erode(b *Binary, r int) *Binary {
	return ErodeInto(NewBinary(b.W, b.H), b, r, NewBinary(b.W, b.H))
}

// ErodeInto erodes src into dst using tmp as scratch for the horizontal
// pass. dst may alias src; tmp must be distinct from both. All buffers are
// resized as needed and dst is returned.
func ErodeInto(dst, src *Binary, r int, tmp *Binary) *Binary {
	if r <= 0 {
		return src.CopyInto(dst)
	}
	// Separable erosion via sliding background count: a pixel survives a
	// pass iff its clipped window contains no background. Both passes write
	// every pixel, so the scratch buffers need no clearing.
	tmp.resize(src.W, src.H)
	for y := 0; y < src.H; y++ {
		row := y * src.W
		bg := 0
		for x := 0; x <= r && x < src.W; x++ {
			if src.Pix[row+x] == 0 {
				bg++
			}
		}
		for x := 0; x < src.W; x++ {
			if bg == 0 {
				tmp.Pix[row+x] = 1
			} else {
				tmp.Pix[row+x] = 0
			}
			if add := x + r + 1; add < src.W && src.Pix[row+add] == 0 {
				bg++
			}
			if del := x - r; del >= 0 && src.Pix[row+del] == 0 {
				bg--
			}
		}
	}
	// src is no longer read, so dst == src is safe from here on.
	dst.resize(tmp.W, tmp.H)
	for x := 0; x < tmp.W; x++ {
		bg := 0
		for y := 0; y <= r && y < tmp.H; y++ {
			if tmp.Pix[y*tmp.W+x] == 0 {
				bg++
			}
		}
		for y := 0; y < tmp.H; y++ {
			if bg == 0 {
				dst.Pix[y*tmp.W+x] = 1
			} else {
				dst.Pix[y*tmp.W+x] = 0
			}
			if add := y + r + 1; add < tmp.H && tmp.Pix[add*tmp.W+x] == 0 {
				bg++
			}
			if del := y - r; del >= 0 && tmp.Pix[del*tmp.W+x] == 0 {
				bg--
			}
		}
	}
	return dst
}

// Open erodes then dilates: removes speckle smaller than the element.
func Open(b *Binary, r int) *Binary { return Dilate(Erode(b, r), r) }

// OpenInto is Open writing into dst with two scratch buffers. dst may alias
// src; tmpA and tmpB must be distinct from each other, dst and src.
func OpenInto(dst, src *Binary, r int, tmpA, tmpB *Binary) *Binary {
	if r <= 0 {
		return src.CopyInto(dst)
	}
	ErodeInto(tmpB, src, r, tmpA)
	return DilateInto(dst, tmpB, r, tmpA)
}

// Close dilates then erodes: fills holes/gaps smaller than the element.
func Close(b *Binary, r int) *Binary { return Erode(Dilate(b, r), r) }

// CloseInto is Close writing into dst with two scratch buffers. dst may alias
// src; tmpA and tmpB must be distinct from each other, dst and src.
func CloseInto(dst, src *Binary, r int, tmpA, tmpB *Binary) *Binary {
	if r <= 0 {
		return src.CopyInto(dst)
	}
	DilateInto(tmpB, src, r, tmpA)
	return ErodeInto(dst, tmpB, r, tmpA)
}
