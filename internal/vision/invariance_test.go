package vision

import (
	"math"
	"math/rand"
	"testing"

	"hdc/internal/timeseries"
)

// invariance_test.go property-tests the geometric invariances the
// recogniser relies on: the centroid-distance signature must be unchanged
// by translation, normalised away from scale (after z-norm), and turned
// into a circular shift by rotation.

// randomBlobMask rasterises a random star-shaped polygon at the given
// placement.
func randomBlobMask(rng *rand.Rand, w, h int, cx, cy, scale, rot float64, radii []float64) *Binary {
	n := len(radii)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		ang := 2*math.Pi*float64(i)/float64(n) + rot
		r := radii[i] * scale
		xs[i] = cx + r*math.Cos(ang)
		ys[i] = cy + r*math.Sin(ang)
	}
	b := NewBinary(w, h)
	// Rasterise via scanline on the binary mask directly.
	g := maskFromPolygon(w, h, xs, ys)
	copy(b.Pix, g.Pix)
	return b
}

// randomRadii draws a smooth star shape with a few broad lobes — the regime
// of the marshalling-sign silhouettes (head/arm/leg lobes). Many thin
// spikes would make the signature's features narrower than the matcher's
// one-sample shift granularity and measure pixelation instead of the
// geometric property under test.
func randomRadii(rng *rand.Rand) []float64 {
	const n = 48
	radii := make([]float64, n)
	// 3 random harmonics on a base radius.
	type harm struct {
		k     int
		amp   float64
		phase float64
	}
	hs := []harm{
		{2, 4 + rng.Float64()*5, rng.Float64() * 2 * math.Pi},
		{3, 3 + rng.Float64()*4, rng.Float64() * 2 * math.Pi},
		{5, 2 + rng.Float64()*3, rng.Float64() * 2 * math.Pi},
	}
	for i := range radii {
		ang := 2 * math.Pi * float64(i) / n
		r := 32.0
		for _, h := range hs {
			r += h.amp * math.Cos(float64(h.k)*ang+h.phase)
		}
		radii[i] = r
	}
	return radii
}

func signatureOfMask(t testing.TB, m *Binary) timeseries.Series {
	t.Helper()
	sig, _, _, err := ExtractSignatureNorm(m, 128, NormNone)
	if err != nil {
		t.Fatal(err)
	}
	return sig.ZNormalize()
}

// runInvarianceTrials measures the shift-minimised distance between a base
// shape and its transform over many random shapes, failing when more than
// allowedOutliers exceed tol — pixel quantisation makes the invariances
// statistical, not exact, so the tests assert the distribution.
func runInvarianceTrials(t *testing.T, tol float64, allowedOutliers int,
	transform func(rng *rand.Rand, radii []float64) (*Binary, *Binary)) {
	t.Helper()
	const trials = 40
	outliers := 0
	worst := 0.0
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		radii := randomRadii(rng)
		ma, mb := transform(rng, radii)
		a := signatureOfMask(t, ma)
		b := signatureOfMask(t, mb)
		d, _, err := timeseries.MinRotationDist(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d > tol {
			outliers++
			if d > worst {
				worst = d
			}
		}
	}
	if outliers > allowedOutliers {
		t.Fatalf("%d/%d trials exceeded %v (worst %.2f)", outliers, trials, tol, worst)
	}
}

func TestSignatureTranslationInvariance(t *testing.T) {
	runInvarianceTrials(t, 1.2, 2, func(rng *rand.Rand, radii []float64) (*Binary, *Binary) {
		return randomBlobMask(rng, 200, 200, 80, 90, 1, 0, radii),
			randomBlobMask(rng, 200, 200, 120, 110, 1, 0, radii)
	})
}

func TestSignatureScaleInvarianceAfterZNorm(t *testing.T) {
	runInvarianceTrials(t, 1.5, 2, func(rng *rand.Rand, radii []float64) (*Binary, *Binary) {
		return randomBlobMask(rng, 240, 240, 120, 120, 1, 0, radii),
			randomBlobMask(rng, 240, 240, 120, 120, 1.6, 0, radii)
	})
}

func TestSignatureRotationBecomesShift(t *testing.T) {
	// Rotation is absorbed as a circular shift; sub-sample misalignment
	// leaves a larger residue than translation/scale, hence the wider
	// tolerance.
	runInvarianceTrials(t, 2.6, 4, func(rng *rand.Rand, radii []float64) (*Binary, *Binary) {
		rot := rng.Float64() * 2 * math.Pi
		return randomBlobMask(rng, 240, 240, 120, 120, 1, 0, radii),
			randomBlobMask(rng, 240, 240, 120, 120, 1, rot, radii)
	})
}

func TestSignatureMirrorBecomesReversal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	radii := randomRadii(rng)
	a := signatureOfMask(t, randomBlobMask(rng, 240, 240, 120, 120, 1, 0, radii))
	// Mirror the radii sequence ≈ mirrored shape.
	mirror := make([]float64, len(radii))
	for i := range radii {
		mirror[i] = radii[(len(radii)-i)%len(radii)]
	}
	b := signatureOfMask(t, randomBlobMask(rng, 240, 240, 120, 120, 1, 0, mirror))
	dPlain, _, err := timeseries.MinRotationDist(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dMirror, _, _, err := timeseries.MinRotationMirrorDist(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if dMirror > dPlain+1e-9 {
		t.Fatalf("mirror matching should not be worse: %v vs %v", dMirror, dPlain)
	}
	if dMirror > 2.0 {
		t.Fatalf("mirrored shape distance %v too large", dMirror)
	}
}
