package vision

import (
	"errors"
	"fmt"
	"math"

	"hdc/internal/timeseries"
)

// Point is an integer pixel coordinate.
type Point struct {
	X, Y int
}

// Contour is an ordered closed boundary of a region (clockwise in raster
// coordinates).
type Contour []Point

// ErrOpenContour indicates tracing failed to close the boundary (degenerate
// region).
var ErrOpenContour = errors.New("vision: contour did not close")

// mooreOffsets enumerates the 8-neighbourhood clockwise starting from west.
var mooreOffsets = [8]Point{
	{-1, 0}, {-1, -1}, {0, -1}, {1, -1}, {1, 0}, {1, 1}, {0, 1}, {-1, 1},
}

// TraceContour extracts the outer boundary of the foreground region
// containing start (which must be the topmost-leftmost foreground pixel of
// its component) using Moore-neighbour tracing with Jacob's stopping
// criterion.
func TraceContour(b *Binary, start Point) (Contour, error) {
	return TraceContourInto(b, start, nil)
}

// TraceContourInto is TraceContour appending into buf (reset to length zero
// first), so steady-state callers reuse one backing array. The returned
// contour aliases buf's storage when capacity sufficed.
func TraceContourInto(b *Binary, start Point, buf Contour) (Contour, error) {
	if b.At(start.X, start.Y) == 0 {
		return nil, errors.New("vision: start pixel is background")
	}
	contour := append(buf[:0], start)
	// Entered the start pixel from the west (since it is topmost-leftmost,
	// its west neighbour is background).
	backtrack := 0 // index into mooreOffsets of the background neighbour we came from
	cur := start
	maxSteps := 4 * (b.W*b.H + 1)
	for steps := 0; steps < maxSteps; steps++ {
		found := false
		var next Point
		var nextBacktrack int
		for i := 1; i <= 8; i++ {
			idx := (backtrack + i) % 8
			cand := Point{cur.X + mooreOffsets[idx].X, cur.Y + mooreOffsets[idx].Y}
			if b.At(cand.X, cand.Y) != 0 {
				next = cand
				// New backtrack: the offset of the previous (background)
				// neighbour relative to the new pixel.
				prevIdx := (idx + 7) % 8
				prev := Point{cur.X + mooreOffsets[prevIdx].X, cur.Y + mooreOffsets[prevIdx].Y}
				nextBacktrack = offsetIndex(prev.X-next.X, prev.Y-next.Y)
				found = true
				break
			}
		}
		if !found {
			// Isolated single pixel: its contour is itself.
			return contour, nil
		}
		if next == start && len(contour) > 1 {
			return contour, nil
		}
		contour = append(contour, next)
		cur = next
		backtrack = nextBacktrack
	}
	return nil, ErrOpenContour
}

func offsetIndex(dx, dy int) int {
	for i, o := range mooreOffsets {
		if o.X == dx && o.Y == dy {
			return i
		}
	}
	return 0
}

// Centroid returns the mean position of the contour points.
func (c Contour) Centroid() (float64, float64) {
	if len(c) == 0 {
		return 0, 0
	}
	var sx, sy float64
	for _, p := range c {
		sx += float64(p.X)
		sy += float64(p.Y)
	}
	n := float64(len(c))
	return sx / n, sy / n
}

// Perimeter returns the total Euclidean length along the closed contour.
func (c Contour) Perimeter() float64 {
	if len(c) < 2 {
		return 0
	}
	var sum float64
	for i := range c {
		j := (i + 1) % len(c)
		dx := float64(c[j].X - c[i].X)
		dy := float64(c[j].Y - c[i].Y)
		sum += math.Hypot(dx, dy)
	}
	return sum
}

// Normalization selects the geometric normalisation applied to a contour
// before its centroid-distance signature is measured.
type Normalization int

const (
	// NormNone measures raw pixel-space distances (scale handled later by
	// z-normalisation only).
	NormNone Normalization = iota + 1
	// NormAspect rescales the contour's bounding box to a square. It
	// compensates pure axis-aligned foreshortening (altitude-driven vertical
	// squash, azimuth-driven horizontal squash) but not shear.
	NormAspect
	// NormWhiten applies second-moment whitening: translate to the centroid
	// and transform so the point covariance becomes the identity. A planar
	// signaller viewed from any direction is (to weak-perspective accuracy)
	// an affine transform of the frontal silhouette, and whitening cancels
	// every affine distortion up to rotation — which the SAX matcher's
	// circular-shift search absorbs. This is what lets the paper's single
	// full-on (0°) reference cover the 2–5 m altitude and ±65° azimuth
	// envelope; past ~65° the arm lobes physically merge with the torso
	// (self-occlusion), no linear map can recover them, and recognition
	// turns erratic — the paper's dead angle.
	NormWhiten
)

// Signature converts the contour into the centroid-distance time series used
// by the paper's SAX recogniser, resampled uniformly by arc length to n
// samples. Rotating the underlying shape circularly shifts this signature,
// which is what makes SAX matching rotation-invariant after shift search.
func (c Contour) Signature(n int) (timeseries.Series, error) {
	return c.SignatureNorm(n, NormNone)
}

// SignatureAspectNormalized is Signature under NormAspect.
func (c Contour) SignatureAspectNormalized(n int) (timeseries.Series, error) {
	return c.SignatureNorm(n, NormAspect)
}

// SignatureWhitened is Signature under NormWhiten — the production setting
// of the recogniser.
func (c Contour) SignatureWhitened(n int) (timeseries.Series, error) {
	return c.SignatureNorm(n, NormWhiten)
}

// SignatureNorm computes the signature under an explicit normalisation mode.
func (c Contour) SignatureNorm(n int, mode Normalization) (timeseries.Series, error) {
	return c.signatureScratch(n, mode, nil)
}

// growF reslices buf to n elements, reallocating only when capacity is short.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// signatureScratch is SignatureNorm drawing its float planes and output from
// s when s is non-nil (the returned series then aliases s.sig and is only
// valid until the next use of s).
func (c Contour) signatureScratch(n int, mode Normalization, s *Scratch) (timeseries.Series, error) {
	if len(c) == 0 {
		return nil, ErrEmptyImage
	}
	if n < 1 {
		return nil, errors.New("vision: signature length < 1")
	}
	zeros := func() timeseries.Series {
		if s == nil {
			return make(timeseries.Series, n)
		}
		s.sig = timeseries.Series(growF([]float64(s.sig), n))
		for i := range s.sig {
			s.sig[i] = 0
		}
		return s.sig
	}
	if len(c) == 1 {
		return zeros(), nil
	}
	m := len(c)
	var fx, fy []float64
	if s == nil {
		fx = make([]float64, m)
		fy = make([]float64, m)
	} else {
		s.fx = growF(s.fx, m)
		s.fy = growF(s.fy, m)
		fx, fy = s.fx, s.fy
	}
	for i, p := range c {
		fx[i] = float64(p.X)
		fy[i] = float64(p.Y)
	}
	switch mode {
	case NormAspect:
		normalizeAspect(fx, fy)
	case NormWhiten:
		whiten(fx, fy)
	case NormNone:
		// raw coordinates
	default:
		return nil, fmt.Errorf("vision: unknown normalization %d", int(mode))
	}
	var cx, cy float64
	for i := 0; i < m; i++ {
		cx += fx[i]
		cy += fy[i]
	}
	cx /= float64(m)
	cy /= float64(m)

	// Cumulative arc length per vertex (in the normalised space, so
	// resampling density follows the shape actually being measured).
	var arc []float64
	if s == nil {
		arc = make([]float64, m+1)
	} else {
		s.arc = growF(s.arc, m+1)
		arc = s.arc
	}
	arc[0] = 0
	for i := 0; i < m; i++ {
		j := (i + 1) % m
		arc[i+1] = arc[i] + math.Hypot(fx[j]-fx[i], fy[j]-fy[i])
	}
	total := arc[m]
	if total == 0 {
		return zeros(), nil
	}
	dist := func(i int) float64 {
		return math.Hypot(fx[i]-cx, fy[i]-cy)
	}
	var out timeseries.Series
	if s == nil {
		out = make(timeseries.Series, n)
	} else {
		s.sig = timeseries.Series(growF([]float64(s.sig), n))
		out = s.sig
	}
	seg := 0
	for i := 0; i < n; i++ {
		target := total * float64(i) / float64(n)
		for seg < m && arc[seg+1] < target {
			seg++
		}
		if seg >= m {
			seg = m - 1
		}
		segLen := arc[seg+1] - arc[seg]
		var t float64
		if segLen > 0 {
			t = (target - arc[seg]) / segLen
		}
		da, db := dist(seg), dist((seg+1)%m)
		out[i] = da + (db-da)*t
	}
	return out, nil
}

// normalizeAspect maps the point cloud's bounding box onto the unit square.
func normalizeAspect(fx, fy []float64) {
	minX, maxX := fx[0], fx[0]
	minY, maxY := fy[0], fy[0]
	for i := 1; i < len(fx); i++ {
		minX = math.Min(minX, fx[i])
		maxX = math.Max(maxX, fx[i])
		minY = math.Min(minY, fy[i])
		maxY = math.Max(maxY, fy[i])
	}
	w := maxX - minX
	h := maxY - minY
	if w <= 0 || h <= 0 {
		return
	}
	for i := range fx {
		fx[i] = (fx[i] - minX) / w
		fy[i] = (fy[i] - minY) / h
	}
}

// whiten centres the points and applies Σ^(-1/2) so their covariance becomes
// the identity (up to a degeneracy floor for near-collinear contours).
func whiten(fx, fy []float64) {
	m := float64(len(fx))
	var cx, cy float64
	for i := range fx {
		cx += fx[i]
		cy += fy[i]
	}
	cx /= m
	cy /= m
	var sxx, sxy, syy float64
	for i := range fx {
		dx, dy := fx[i]-cx, fy[i]-cy
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	sxx /= m
	sxy /= m
	syy /= m
	// Eigendecomposition of the symmetric 2×2 covariance.
	tr := sxx + syy
	det := sxx*syy - sxy*sxy
	disc := math.Sqrt(math.Max(0, tr*tr/4-det))
	l1 := tr/2 + disc
	l2 := tr/2 - disc
	const degenerate = 1e-9
	if l1 < degenerate {
		return // pointlike cloud, leave as is
	}
	if l2 < degenerate {
		l2 = degenerate // collinear cloud: cap the stretch
	}
	// Eigenvector for l1.
	var e1x, e1y float64
	if math.Abs(sxy) > 1e-12 {
		e1x, e1y = l1-syy, sxy
	} else if sxx >= syy {
		e1x, e1y = 1, 0
	} else {
		e1x, e1y = 0, 1
	}
	n1 := math.Hypot(e1x, e1y)
	e1x /= n1
	e1y /= n1
	e2x, e2y := -e1y, e1x
	s1 := 1 / math.Sqrt(l1)
	s2 := 1 / math.Sqrt(l2)
	for i := range fx {
		dx, dy := fx[i]-cx, fy[i]-cy
		p := dx*e1x + dy*e1y
		q := dx*e2x + dy*e2y
		p *= s1
		q *= s2
		fx[i] = p*e1x + q*e2x
		fy[i] = p*e1y + q*e2y
	}
}

// ExtractSignature is the full §IV shape→series step: find the largest
// component of mask, trace its outer contour and produce an n-sample
// centroid-distance signature. It also returns the contour and component for
// diagnostics.
func ExtractSignature(mask *Binary, n int) (timeseries.Series, Contour, Component, error) {
	return ExtractSignatureNorm(mask, n, NormNone)
}

// ExtractSignatureNormalized is ExtractSignature under NormWhiten — the
// production path of the recogniser.
func ExtractSignatureNormalized(mask *Binary, n int) (timeseries.Series, Contour, Component, error) {
	return ExtractSignatureNorm(mask, n, NormWhiten)
}

// ExtractSignatureNorm is ExtractSignature under an explicit normalisation.
func ExtractSignatureNorm(mask *Binary, n int, mode Normalization) (timeseries.Series, Contour, Component, error) {
	blob, comp, err := LargestComponent(mask)
	if err != nil {
		return nil, nil, Component{}, err
	}
	contour, err := TraceContour(blob, Point{comp.FirstPix[0], comp.FirstPix[1]})
	if err != nil {
		return nil, nil, comp, err
	}
	sig, err := contour.SignatureNorm(n, mode)
	if err != nil {
		return nil, contour, comp, err
	}
	return sig, contour, comp, nil
}
