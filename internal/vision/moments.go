package vision

import (
	"errors"
	"math"
)

// moments.go implements image moments and the seven Hu invariant moments —
// the classical rotation/scale/translation-invariant silhouette descriptor.
// The repository uses them as the baseline comparator for the SAX
// recogniser (experiment E10c): the paper argues for SAX on cost grounds
// against heavier methods, and Hu moments are the standard cheap
// alternative a practitioner would reach for first.

// Moments holds raw, central and normalised central moments of a binary
// region up to third order.
type Moments struct {
	M00              float64 // area
	Cx, Cy           float64 // centroid
	Mu20, Mu02, Mu11 float64 // second-order central
	Mu30, Mu03       float64 // third-order central
	Mu21, Mu12       float64
	Nu20, Nu02, Nu11 float64 // normalised central
	Nu30, Nu03       float64
	Nu21, Nu12       float64
}

// ComputeMoments accumulates the moments of the mask's foreground.
func ComputeMoments(b *Binary) (Moments, error) {
	var m Moments
	var m10, m01 float64
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Pix[y*b.W+x] == 0 {
				continue
			}
			m.M00++
			m10 += float64(x)
			m01 += float64(y)
		}
	}
	if m.M00 == 0 {
		return Moments{}, ErrEmptyImage
	}
	m.Cx = m10 / m.M00
	m.Cy = m01 / m.M00
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Pix[y*b.W+x] == 0 {
				continue
			}
			dx := float64(x) - m.Cx
			dy := float64(y) - m.Cy
			m.Mu20 += dx * dx
			m.Mu02 += dy * dy
			m.Mu11 += dx * dy
			m.Mu30 += dx * dx * dx
			m.Mu03 += dy * dy * dy
			m.Mu21 += dx * dx * dy
			m.Mu12 += dx * dy * dy
		}
	}
	// Normalised central moments: nu_pq = mu_pq / m00^(1+(p+q)/2).
	n2 := math.Pow(m.M00, 2)
	n25 := math.Pow(m.M00, 2.5)
	m.Nu20 = m.Mu20 / n2
	m.Nu02 = m.Mu02 / n2
	m.Nu11 = m.Mu11 / n2
	m.Nu30 = m.Mu30 / n25
	m.Nu03 = m.Mu03 / n25
	m.Nu21 = m.Mu21 / n25
	m.Nu12 = m.Mu12 / n25
	return m, nil
}

// HuMoments returns the seven Hu invariants of the mask's foreground:
// invariant to translation and scale by construction, and to rotation by
// the Hu combinations. h[6] flips sign under mirror reflection, which the
// matcher exploits for mirror tolerance.
func HuMoments(b *Binary) ([7]float64, error) {
	m, err := ComputeMoments(b)
	if err != nil {
		return [7]float64{}, err
	}
	n20, n02, n11 := m.Nu20, m.Nu02, m.Nu11
	n30, n03, n21, n12 := m.Nu30, m.Nu03, m.Nu21, m.Nu12
	var h [7]float64
	h[0] = n20 + n02
	h[1] = (n20-n02)*(n20-n02) + 4*n11*n11
	h[2] = (n30-3*n12)*(n30-3*n12) + (3*n21-n03)*(3*n21-n03)
	h[3] = (n30+n12)*(n30+n12) + (n21+n03)*(n21+n03)
	h[4] = (n30-3*n12)*(n30+n12)*((n30+n12)*(n30+n12)-3*(n21+n03)*(n21+n03)) +
		(3*n21-n03)*(n21+n03)*(3*(n30+n12)*(n30+n12)-(n21+n03)*(n21+n03))
	h[5] = (n20-n02)*((n30+n12)*(n30+n12)-(n21+n03)*(n21+n03)) +
		4*n11*(n30+n12)*(n21+n03)
	h[6] = (3*n21-n03)*(n30+n12)*((n30+n12)*(n30+n12)-3*(n21+n03)*(n21+n03)) -
		(n30-3*n12)*(n21+n03)*(3*(n30+n12)*(n30+n12)-(n21+n03)*(n21+n03))
	return h, nil
}

// HuDistance compares two Hu vectors in log space (the standard metric:
// the invariants span many orders of magnitude), tolerating a mirror by
// taking the smaller of the direct and sign-flipped h7 comparison.
func HuDistance(a, b [7]float64) float64 {
	direct := huLogDist(a, b)
	b[6] = -b[6]
	mirrored := huLogDist(a, b)
	return math.Min(direct, mirrored)
}

func huLogDist(a, b [7]float64) float64 {
	var sum float64
	for i := 0; i < 7; i++ {
		la := logSigned(a[i])
		lb := logSigned(b[i])
		d := la - lb
		sum += d * d
	}
	return math.Sqrt(sum)
}

// logSigned maps v to sign(v)·log10(|v|) with a floor for near-zero values.
func logSigned(v float64) float64 {
	const floor = 1e-30
	av := math.Abs(v)
	if av < floor {
		return 0
	}
	l := math.Log10(av)
	if v < 0 {
		return l
	}
	return -l // OpenCV convention: -sign(h)·log10|h| — inverted so larger
	// moments give smaller magnitudes; sign kept via the branch above.
}

// ErrNoHuMatch is returned by HuClassifier when no reference is close
// enough.
var ErrNoHuMatch = errors.New("vision: no Hu-moment match within threshold")

// HuRef is one labelled Hu reference.
type HuRef struct {
	Label string
	H     [7]float64
}

// HuClassifier is a nearest-neighbour classifier over Hu invariants — the
// baseline against which the SAX pipeline is evaluated.
type HuClassifier struct {
	Refs      []HuRef
	Threshold float64 // acceptance distance (log-space); ≤0 disables
}

// Add registers a labelled mask.
func (c *HuClassifier) Add(label string, mask *Binary) error {
	h, err := HuMoments(mask)
	if err != nil {
		return err
	}
	c.Refs = append(c.Refs, HuRef{Label: label, H: h})
	return nil
}

// Classify returns the nearest reference label and distance.
func (c *HuClassifier) Classify(mask *Binary) (string, float64, error) {
	if len(c.Refs) == 0 {
		return "", 0, ErrNoHuMatch
	}
	h, err := HuMoments(mask)
	if err != nil {
		return "", 0, err
	}
	bestLabel := ""
	best := math.Inf(1)
	for _, r := range c.Refs {
		if d := HuDistance(h, r.H); d < best {
			best = d
			bestLabel = r.Label
		}
	}
	if c.Threshold > 0 && best > c.Threshold {
		return bestLabel, best, ErrNoHuMatch
	}
	return bestLabel, best, nil
}
