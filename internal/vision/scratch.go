package vision

import (
	"hdc/internal/raster"
	"hdc/internal/timeseries"
)

// Scratch owns every buffer the §IV vision front half needs — threshold
// mask, morphology ping/pong planes, component labels, contour storage and
// the signature's float planes — so one recognition worker can process an
// unbounded stream of frames without steady-state allocations. A Scratch is
// not safe for concurrent use: give each goroutine its own. (Pooling lives
// one level up: recognizer.Scratch wraps this together with the database
// lookup scratch, so there is a single pool for the whole recognition lane
// rather than one per layer.)
type Scratch struct {
	mask *Binary // binarised frame, cleaned in place
	tmpA *Binary // morphology scratch
	tmpB *Binary // morphology scratch
	comp *Binary // largest-component mask

	labels  []int32
	parent  []int32
	area    []int32
	contour Contour
	fx, fy  []float64
	arc     []float64
	sig     timeseries.Series
}

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch {
	return &Scratch{
		mask: &Binary{},
		tmpA: &Binary{},
		tmpB: &Binary{},
		comp: &Binary{},
	}
}

// Binarize is OtsuBinarize into the scratch's mask buffer. The returned mask
// is owned by the scratch and valid until its next use.
func (s *Scratch) Binarize(g *raster.Gray) *Binary {
	return OtsuBinarizeInto(s.mask, g)
}

// Clean applies the recogniser's morphological clean-up (open then close,
// radius r) to mask in place, using the scratch's ping/pong planes. mask is
// typically the scratch's own Binarize output.
func (s *Scratch) Clean(mask *Binary, r int) *Binary {
	OpenInto(mask, mask, r, s.tmpA, s.tmpB)
	return CloseInto(mask, mask, r, s.tmpA, s.tmpB)
}

// Open applies the morphological opening (erode then dilate, radius r) to
// mask in place using the scratch's ping/pong planes, and returns mask. It is
// the allocation-free counterpart of the package-level Open for callers (the
// gesture front half) that do not want Clean's hole-filling close pass.
func (s *Scratch) Open(mask *Binary, r int) *Binary {
	return OpenInto(mask, mask, r, s.tmpA, s.tmpB)
}

// LargestComponent is the allocation-free variant of the package-level
// LargestComponent: the largest 8-connected foreground region of mask, as a
// mask aliasing scratch storage (valid until the next use of s) plus its
// statistics. It returns ErrEmptyImage when mask has no foreground.
func (s *Scratch) LargestComponent(mask *Binary) (*Binary, Component, error) {
	return s.largestComponent(mask)
}

// ExtractSignatureNorm is the allocation-free variant of the package-level
// ExtractSignatureNorm: largest component, Moore contour, n-sample
// centroid-distance signature under mode. The returned series and contour
// alias scratch storage and are only valid until the next use of s; callers
// that retain them must copy (the recogniser z-normalises into a fresh
// series anyway).
func (s *Scratch) ExtractSignatureNorm(mask *Binary, n int, mode Normalization) (timeseries.Series, Contour, Component, error) {
	blob, comp, err := s.largestComponent(mask)
	if err != nil {
		return nil, nil, Component{}, err
	}
	contour, err := TraceContourInto(blob, Point{comp.FirstPix[0], comp.FirstPix[1]}, s.contour)
	if cap(contour) > cap(s.contour) {
		s.contour = contour
	}
	if err != nil {
		return nil, nil, comp, err
	}
	sig, err := contour.signatureScratch(n, mode, s)
	if err != nil {
		return nil, contour, comp, err
	}
	return sig, contour, comp, nil
}

// growI32 reslices buf to n elements, reallocating only when short.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// largestComponent is LargestComponent into scratch storage: union-find
// labelling with reused label/parent planes, then a stats pass for the
// winning root only. The returned mask is s.comp.
func (s *Scratch) largestComponent(b *Binary) (*Binary, Component, error) {
	n := b.W * b.H
	s.labels = growI32(s.labels, n)
	labels := s.labels
	for i := range labels {
		labels[i] = 0
	}
	parent := append(s.parent[:0], 0) // parent[0] unused; labels start at 1

	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	next := int32(1)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Pix[y*b.W+x] == 0 {
				continue
			}
			var neighbors [4]int32
			cnt := 0
			// Scan previously visited 8-neighbours: W, NW, N, NE.
			if x > 0 && labels[y*b.W+x-1] != 0 {
				neighbors[cnt] = labels[y*b.W+x-1]
				cnt++
			}
			if y > 0 {
				if x > 0 && labels[(y-1)*b.W+x-1] != 0 {
					neighbors[cnt] = labels[(y-1)*b.W+x-1]
					cnt++
				}
				if labels[(y-1)*b.W+x] != 0 {
					neighbors[cnt] = labels[(y-1)*b.W+x]
					cnt++
				}
				if x+1 < b.W && labels[(y-1)*b.W+x+1] != 0 {
					neighbors[cnt] = labels[(y-1)*b.W+x+1]
					cnt++
				}
			}
			if cnt == 0 {
				labels[y*b.W+x] = next
				parent = append(parent, next)
				next++
				continue
			}
			minL := neighbors[0]
			for i := 1; i < cnt; i++ {
				if neighbors[i] < minL {
					minL = neighbors[i]
				}
			}
			labels[y*b.W+x] = minL
			for i := 0; i < cnt; i++ {
				ra, rc := find(minL), find(neighbors[i])
				if ra != rc {
					if ra < rc {
						parent[rc] = ra
					} else {
						parent[ra] = rc
					}
				}
			}
		}
	}
	s.parent = parent

	// Resolve roots and accumulate per-root areas.
	s.area = growI32(s.area, len(parent))
	area := s.area
	for i := range area {
		area[i] = 0
	}
	for i, l := range labels {
		if l == 0 {
			continue
		}
		r := find(l)
		labels[i] = r
		area[r]++
	}
	best := int32(0)
	for l := int32(1); l < int32(len(parent)); l++ {
		if area[l] > area[best] {
			best = l
		}
	}
	if best == 0 {
		return nil, Component{}, ErrEmptyImage
	}

	// Stats pass for the winner only, filling the component mask.
	s.comp.resize(b.W, b.H)
	comp := Component{Label: int(best), Area: int(area[best])}
	first := true
	var cenX, cenY float64
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			i := y*b.W + x
			if labels[i] != best {
				s.comp.Pix[i] = 0
				continue
			}
			s.comp.Pix[i] = 1
			if first {
				comp.MinX, comp.MaxX = x, x
				comp.MinY, comp.MaxY = y, y
				comp.FirstPix = [2]int{x, y}
				first = false
			} else {
				if x < comp.MinX {
					comp.MinX = x
				}
				if x > comp.MaxX {
					comp.MaxX = x
				}
				if y > comp.MaxY {
					comp.MaxY = y
				}
			}
			cenX += float64(x)
			cenY += float64(y)
		}
	}
	comp.CenX = cenX / float64(comp.Area)
	comp.CenY = cenY / float64(comp.Area)
	return s.comp, comp, nil
}
