package vision

import "sort"

// Component is one 8-connected foreground region.
type Component struct {
	Label    int
	Area     int
	MinX     int
	MinY     int
	MaxX     int
	MaxY     int
	CenX     float64
	CenY     float64
	FirstPix [2]int // topmost-leftmost pixel; contour tracing starts here
}

// LabelComponents performs 8-connected component labelling (two-pass
// union-find) and returns the label image plus per-component statistics
// sorted by area descending.
func LabelComponents(b *Binary) (labels []int32, comps []Component) {
	labels = make([]int32, len(b.Pix))
	parent := []int32{0} // parent[0] unused; labels start at 1

	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, c int32) {
		ra, rc := find(a), find(c)
		if ra != rc {
			if ra < rc {
				parent[rc] = ra
			} else {
				parent[ra] = rc
			}
		}
	}

	next := int32(1)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Pix[y*b.W+x] == 0 {
				continue
			}
			var neighbors [4]int32
			n := 0
			// Scan previously visited 8-neighbours: W, NW, N, NE.
			if x > 0 && labels[y*b.W+x-1] != 0 {
				neighbors[n] = labels[y*b.W+x-1]
				n++
			}
			if y > 0 {
				if x > 0 && labels[(y-1)*b.W+x-1] != 0 {
					neighbors[n] = labels[(y-1)*b.W+x-1]
					n++
				}
				if labels[(y-1)*b.W+x] != 0 {
					neighbors[n] = labels[(y-1)*b.W+x]
					n++
				}
				if x+1 < b.W && labels[(y-1)*b.W+x+1] != 0 {
					neighbors[n] = labels[(y-1)*b.W+x+1]
					n++
				}
			}
			if n == 0 {
				labels[y*b.W+x] = next
				parent = append(parent, next)
				next++
				continue
			}
			minL := neighbors[0]
			for i := 1; i < n; i++ {
				if neighbors[i] < minL {
					minL = neighbors[i]
				}
			}
			labels[y*b.W+x] = minL
			for i := 0; i < n; i++ {
				union(minL, neighbors[i])
			}
		}
	}

	// Second pass: resolve labels, gather stats.
	statsByRoot := map[int32]*Component{}
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			l := labels[y*b.W+x]
			if l == 0 {
				continue
			}
			root := find(l)
			labels[y*b.W+x] = root
			c := statsByRoot[root]
			if c == nil {
				c = &Component{
					Label: int(root),
					MinX:  x, MinY: y, MaxX: x, MaxY: y,
					FirstPix: [2]int{x, y},
				}
				statsByRoot[root] = c
			}
			c.Area++
			c.CenX += float64(x)
			c.CenY += float64(y)
			if x < c.MinX {
				c.MinX = x
			}
			if x > c.MaxX {
				c.MaxX = x
			}
			if y < c.MinY {
				c.MinY = y
			}
			if y > c.MaxY {
				c.MaxY = y
			}
		}
	}
	comps = make([]Component, 0, len(statsByRoot))
	for _, c := range statsByRoot {
		c.CenX /= float64(c.Area)
		c.CenY /= float64(c.Area)
		comps = append(comps, *c)
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].Area != comps[j].Area {
			return comps[i].Area > comps[j].Area
		}
		return comps[i].Label < comps[j].Label
	})
	return labels, comps
}

// LargestComponent extracts the largest 8-connected foreground region as its
// own mask. It returns ErrEmptyImage when there is no foreground.
func LargestComponent(b *Binary) (*Binary, Component, error) {
	labels, comps := LabelComponents(b)
	if len(comps) == 0 {
		return nil, Component{}, ErrEmptyImage
	}
	best := comps[0]
	out := NewBinary(b.W, b.H)
	target := int32(best.Label)
	for i, l := range labels {
		if l == target {
			out.Pix[i] = 1
		}
	}
	return out, best, nil
}
