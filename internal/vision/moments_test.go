package vision

import (
	"math"
	"testing"

	"hdc/internal/raster"
)

// maskFromPolygon rasterises a polygon into a binary mask.
func maskFromPolygon(w, h int, xs, ys []float64) *Binary {
	g := raster.MustGray(w, h)
	g.FillPolygon(xs, ys, 255)
	return Threshold(g, 128, true)
}

// lShape returns an asymmetric test shape (translation/rotation/scale
// applied around its centroid).
func lShape(w, h int, cx, cy, scale, rot float64) *Binary {
	base := [][2]float64{
		{-20, -30}, {0, -30}, {0, 10}, {20, 10}, {20, 30}, {-20, 30},
	}
	xs := make([]float64, len(base))
	ys := make([]float64, len(base))
	s, c := math.Sincos(rot)
	for i, p := range base {
		x := p[0] * scale
		y := p[1] * scale
		xs[i] = cx + x*c - y*s
		ys[i] = cy + x*s + y*c
	}
	return maskFromPolygon(w, h, xs, ys)
}

func TestComputeMomentsBasics(t *testing.T) {
	// A centred square: centroid at the centre, Mu11 ≈ 0, Mu20 ≈ Mu02.
	b := NewBinary(60, 60)
	for y := 20; y < 40; y++ {
		for x := 20; x < 40; x++ {
			b.Set(x, y, 1)
		}
	}
	m, err := ComputeMoments(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.M00 != 400 {
		t.Fatalf("area = %v", m.M00)
	}
	if math.Abs(m.Cx-29.5) > 0.01 || math.Abs(m.Cy-29.5) > 0.01 {
		t.Fatalf("centroid (%v,%v)", m.Cx, m.Cy)
	}
	if math.Abs(m.Mu11) > 1e-6 {
		t.Fatalf("Mu11 = %v, want 0 for a square", m.Mu11)
	}
	if math.Abs(m.Mu20-m.Mu02) > 1e-6 {
		t.Fatalf("square moments asymmetric: %v vs %v", m.Mu20, m.Mu02)
	}
	if _, err := ComputeMoments(NewBinary(5, 5)); err == nil {
		t.Fatal("empty mask should fail")
	}
}

func TestHuInvariance(t *testing.T) {
	ref, err := HuMoments(lShape(200, 200, 100, 100, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		mask *Binary
		tol  float64
	}{
		{"translated", lShape(200, 200, 140, 80, 1, 0), 0.3},
		{"scaled", lShape(200, 200, 100, 100, 1.5, 0), 0.4},
		{"rotated 45°", lShape(200, 200, 100, 100, 1, math.Pi/4), 0.6},
		{"rotated 90°", lShape(200, 200, 100, 100, 1, math.Pi/2), 0.4},
		{"all three", lShape(200, 200, 80, 120, 1.3, math.Pi/3), 0.7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h, err := HuMoments(tt.mask)
			if err != nil {
				t.Fatal(err)
			}
			if d := HuDistance(ref, h); d > tt.tol {
				t.Fatalf("Hu distance %v exceeds %v", d, tt.tol)
			}
		})
	}
}

func TestHuMirrorTolerance(t *testing.T) {
	ref, _ := HuMoments(lShape(200, 200, 100, 100, 1, 0))
	// Mirror the shape (negate X offsets).
	base := [][2]float64{
		{20, -30}, {0, -30}, {0, 10}, {-20, 10}, {-20, 30}, {20, 30},
	}
	xs := make([]float64, len(base))
	ys := make([]float64, len(base))
	for i, p := range base {
		xs[i] = 100 + p[0]
		ys[i] = 100 + p[1]
	}
	mirror := maskFromPolygon(200, 200, xs, ys)
	h, err := HuMoments(mirror)
	if err != nil {
		t.Fatal(err)
	}
	if d := HuDistance(ref, h); d > 0.3 {
		t.Fatalf("mirror distance %v too large", d)
	}
}

func TestHuSeparatesShapes(t *testing.T) {
	lref, _ := HuMoments(lShape(200, 200, 100, 100, 1, 0))
	// A disc is very different from an L.
	g := raster.MustGray(200, 200)
	g.FillDisc(100, 100, 30, 255)
	disc := Threshold(g, 128, true)
	h, err := HuMoments(disc)
	if err != nil {
		t.Fatal(err)
	}
	same, _ := HuMoments(lShape(200, 200, 120, 90, 1.2, 0.5))
	dDiff := HuDistance(lref, h)
	dSame := HuDistance(lref, same)
	if dDiff <= dSame {
		t.Fatalf("disc (%v) should be farther than transformed L (%v)", dDiff, dSame)
	}
}

func TestHuClassifier(t *testing.T) {
	var c HuClassifier
	if _, _, err := c.Classify(lShape(100, 100, 50, 50, 0.8, 0)); err == nil {
		t.Fatal("empty classifier should fail")
	}
	if err := c.Add("L", lShape(200, 200, 100, 100, 1, 0)); err != nil {
		t.Fatal(err)
	}
	g := raster.MustGray(200, 200)
	g.FillDisc(100, 100, 30, 255)
	if err := c.Add("disc", Threshold(g, 128, true)); err != nil {
		t.Fatal(err)
	}
	label, d, err := c.Classify(lShape(200, 200, 90, 110, 1.2, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	if label != "L" {
		t.Fatalf("classified as %q (dist %v)", label, d)
	}
	// Threshold rejection.
	c.Threshold = 1e-9
	if _, _, err := c.Classify(lShape(200, 200, 90, 110, 1.2, 0.7)); err == nil {
		t.Fatal("tight threshold should reject")
	}
	// Empty query fails.
	c.Threshold = 0
	if _, _, err := c.Classify(NewBinary(10, 10)); err == nil {
		t.Fatal("empty query should fail")
	}
}
