package gesture

import (
	"errors"
	"fmt"
	"sync/atomic"

	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/timeseries"
)

// live.go routes gesture observation through the shared recognition worker
// pool: frames from a live feed enter a bounded drop-oldest ring
// (pipeline.Source), fan out over the pool's workers for feature extraction
// (a pipeline.Proc on each worker's pooled vision scratch), and come back in
// order to a single collector that slides a classification window over the
// feature series. Overload degrades to frame dropping at the ring — capture
// cadence is never stalled by a slow pool — and every dropped or processed
// frame is recycled through the session's OnFrame hook exactly once.

// StreamPool is the slice of the pipeline façade the live recogniser needs;
// *pipeline.Pipeline and *core.System both satisfy it.
type StreamPool interface {
	NewProcStream(pipeline.Proc) (*pipeline.Stream, error)
}

// LiveConfig tunes one live gesture session.
type LiveConfig struct {
	// Buffer is the ingest ring's capacity (default: two observation
	// windows). Smaller keeps the retained feed fresher; larger rides out
	// longer pool stalls before dropping.
	Buffer int
	// Stride is how many new frames arrive between window classifications
	// once the first window fills (default: half a cycle).
	Stride int
	// MatchBuffer is the Matches channel capacity (default 16); when the
	// consumer falls further behind, the oldest verdicts are counted dropped
	// rather than blocking the collector.
	MatchBuffer int
	// OnFrame receives every frame the session is finished with — processed
	// or dropped — exactly once: the recycle point for pooled buffers. May
	// be nil.
	OnFrame func(*raster.Gray)
}

func (c LiveConfig) withDefaults(r *Recognizer) LiveConfig {
	n := r.cfg.FramesPerCycle * r.cfg.WindowCycles
	if c.Buffer <= 0 {
		c.Buffer = 2 * n
	}
	if c.Stride <= 0 {
		c.Stride = r.cfg.FramesPerCycle / 2
		if c.Stride <= 0 {
			c.Stride = 1
		}
	}
	if c.MatchBuffer <= 0 {
		c.MatchBuffer = 16
	}
	return c
}

// WindowMatch is one sliding-window verdict from a live session.
type WindowMatch struct {
	// End is the stream sequence number of the window's newest frame.
	End   uint64
	Match Match
	// Err is nil for an accepted gesture or ErrNoGesture for a window that
	// matched nothing; any other error is a classification failure.
	Err error
}

// Live is a pipeline-backed live-feed gesture session. Offer is the
// producer side (never blocks); Matches is the consumer side.
type Live struct {
	r   *Recognizer
	st  *pipeline.Stream
	src *pipeline.Source
	cfg LiveConfig

	// slab carries per-frame features from the workers to the collector,
	// indexed by seq modulo its length. Its length exceeds the maximum
	// number of undelivered results (2×stream window), so a slot is never
	// rewritten before the collector has consumed it; the write happens
	// before the result's delivery, which orders it before the read.
	slab []Features

	winX, winY timeseries.Series // circular feature window
	bufX, bufY timeseries.Series // chronological copy handed to ClassifyWith
	cs         ClassifyScratch
	count      uint64 // frames folded into the window

	matches chan WindowMatch
	done    chan struct{}

	frames        atomic.Uint64
	badFrames     atomic.Uint64
	windows       atomic.Uint64
	matched       atomic.Uint64
	missedMatches atomic.Uint64
}

// NewLive opens a live gesture session on the pool. Close (flush) or
// Abandon (discard) it when the feed ends.
func (r *Recognizer) NewLive(p StreamPool, cfg LiveConfig) (*Live, error) {
	cfg = cfg.withDefaults(r)
	n := r.cfg.FramesPerCycle * r.cfg.WindowCycles
	l := &Live{
		r:       r,
		cfg:     cfg,
		winX:    make(timeseries.Series, n),
		winY:    make(timeseries.Series, n),
		bufX:    make(timeseries.Series, n),
		bufY:    make(timeseries.Series, n),
		matches: make(chan WindowMatch, cfg.MatchBuffer),
		done:    make(chan struct{}),
	}
	st, err := p.NewProcStream(l.proc)
	if err != nil {
		return nil, err
	}
	l.st = st
	l.slab = make([]Features, 2*st.Window()+4)
	// Frames whose results are discarded (Abandon) recycle through the same
	// hook as consumed ones; exactly one of the two paths sees each frame.
	st.SetDropHook(cfg.OnFrame)
	src, err := pipeline.NewSource(st, pipeline.SourceConfig{
		Capacity: cfg.Buffer,
		OnDrop:   cfg.OnFrame,
	})
	if err != nil {
		st.Close()
		return nil, err
	}
	l.src = src
	go l.collect()
	return l, nil
}

// proc is the per-frame worker stage: features into the slab.
func (l *Live) proc(sc *recognizer.Scratch, seq uint64, frame *raster.Gray) (recognizer.Result, error) {
	f, err := extractFrame(sc.Vision(), frame)
	if err != nil {
		return recognizer.Result{}, err
	}
	l.slab[seq%uint64(len(l.slab))] = f
	return recognizer.Result{}, nil
}

// Offer hands one live frame to the session and returns immediately; under
// overload the ring sheds its oldest frames (see pipeline.Source). The
// frame is owned by the session from here on and comes back via OnFrame.
func (l *Live) Offer(frame *raster.Gray) error { return l.src.Offer(frame) }

// Matches delivers the sliding-window verdicts. The channel closes once the
// session is closed or abandoned and the in-flight frames have drained.
func (l *Live) Matches() <-chan WindowMatch { return l.matches }

// Buffer returns the effective ingest ring capacity.
func (l *Live) Buffer() int { return l.cfg.Buffer }

// collect is the session's single consumer: it folds ordered per-frame
// features into the sliding window and classifies at each stride.
func (l *Live) collect() {
	defer close(l.done)
	defer close(l.matches)
	n := uint64(len(l.winX))
	stride := uint64(l.cfg.Stride)
	for res := range l.st.Results() {
		f := l.slab[res.Seq%uint64(len(l.slab))]
		if l.cfg.OnFrame != nil {
			l.cfg.OnFrame(res.Frame)
		}
		if res.Err != nil {
			// A frame with no usable silhouette (or a pool shutdown error)
			// contributes nothing; the window keeps its current contents.
			l.badFrames.Add(1)
			continue
		}
		l.frames.Add(1)
		l.winX[l.count%n] = f.CenX
		l.winY[l.count%n] = f.Aspect
		l.count++
		if l.count < n || (l.count-n)%stride != 0 {
			continue
		}
		for i := uint64(0); i < n; i++ {
			j := (l.count - n + i) % n
			l.bufX[i] = l.winX[j]
			l.bufY[i] = l.winY[j]
		}
		m, err := l.r.ClassifyWith(&l.cs, l.bufX, l.bufY)
		l.windows.Add(1)
		if err == nil {
			l.matched.Add(1)
		}
		select {
		case l.matches <- WindowMatch{End: res.Seq, Match: m, Err: err}:
		default:
			l.missedMatches.Add(1)
		}
	}
}

// Close ends the session gracefully: queued frames flush through the pool,
// remaining windows classify, Matches closes. Blocks until drained.
func (l *Live) Close() {
	l.src.Close()
	l.st.Close()
	<-l.done
}

// Abandon ends the session for a consumer that is gone: queued and
// in-flight frames are discarded (recycled through OnFrame) instead of
// classified. It returns without waiting — frames stuck behind a stalled
// pool finish recycling asynchronously as the pool lets go — so a reaper
// abandoning many sessions is never blocked by back-pressure. The
// session's collector keeps running and splits the remaining results with
// the stream's abandon drain (see Stream.Abandon); both recycle through
// the same OnFrame hook, so each frame still comes back exactly once.
func (l *Live) Abandon() {
	l.st.Abandon()
	l.src.Abandon()
}

// LiveStats is a point-in-time snapshot of one session.
type LiveStats struct {
	Accepted      uint64 // frames Offer took in
	Dropped       uint64 // frames shed by the ring (overload) or discard
	Depth         int    // frames queued in the ring right now
	Frames        uint64 // frames whose features entered the window
	BadFrames     uint64 // frames with no usable silhouette
	Windows       uint64 // windows classified
	Matched       uint64 // windows that accepted a gesture
	MissedMatches uint64 // verdicts dropped because the consumer lagged
}

// Stats reports the session's counters. Safe for concurrent use.
func (l *Live) Stats() LiveStats {
	ss := l.src.Stats()
	return LiveStats{
		Accepted:      ss.Accepted,
		Dropped:       ss.Dropped,
		Depth:         ss.Depth,
		Frames:        l.frames.Load(),
		BadFrames:     l.badFrames.Load(),
		Windows:       l.windows.Load(),
		Matched:       l.matched.Load(),
		MissedMatches: l.missedMatches.Load(),
	}
}

// ErrShortWindow is returned for observation windows shorter than one
// gesture cycle: the acceptance threshold is calibrated for full-cycle
// windows (distance grows with √n), so a handful of frames would z-norm
// into a trivially matchable shape and yield a confident bogus verdict.
var ErrShortWindow = errors.New("gesture: window shorter than one cycle")

// MinWindow is the smallest observation window ClassifyFrames accepts —
// one full gesture cycle, the span phase-invariant matching needs.
func (r *Recognizer) MinWindow() int { return r.cfg.FramesPerCycle }

// ClassifyFrames pushes one complete observation window through the pool's
// workers (feature extraction in parallel, pooled buffers) and classifies
// it — the one-shot, synchronous counterpart of a Live session, used by the
// service's /v1/gesture endpoint. onFrame, when non-nil, receives every
// frame back exactly once. A per-frame extraction error fails the window.
func (r *Recognizer) ClassifyFrames(p StreamPool, frames []*raster.Gray, onFrame func(*raster.Gray)) (Match, error) {
	if len(frames) < r.cfg.FramesPerCycle {
		if onFrame != nil {
			for _, f := range frames {
				onFrame(f)
			}
		}
		return Match{}, fmt.Errorf("%w: %d frames, need %d", ErrShortWindow, len(frames), r.cfg.FramesPerCycle)
	}
	feats := make([]Features, len(frames))
	st, err := p.NewProcStream(func(sc *recognizer.Scratch, seq uint64, frame *raster.Gray) (recognizer.Result, error) {
		f, err := extractFrame(sc.Vision(), frame)
		if err != nil {
			return recognizer.Result{}, err
		}
		feats[seq] = f
		return recognizer.Result{}, nil
	})
	if err != nil {
		if onFrame != nil {
			for _, f := range frames {
				onFrame(f)
			}
		}
		return Match{}, err
	}
	go func() {
		defer st.Close()
		for _, f := range frames {
			if st.Submit(f) != nil {
				return
			}
		}
	}()
	var firstErr error
	delivered := 0
	for res := range st.Results() {
		if onFrame != nil {
			onFrame(res.Frame)
		}
		delivered++
		if res.Err != nil && firstErr == nil {
			firstErr = res.Err
		}
	}
	// Frames past delivered never entered the stream (the pool closed while
	// submitting); recycle them before reporting any failure.
	if onFrame != nil {
		for _, f := range frames[delivered:] {
			onFrame(f)
		}
	}
	if firstErr != nil {
		return Match{}, firstErr
	}
	if delivered != len(frames) {
		return Match{}, pipeline.ErrClosed
	}
	topX := make(timeseries.Series, len(frames))
	topY := make(timeseries.Series, len(frames))
	for i, f := range feats {
		topX[i] = f.CenX
		topY[i] = f.Aspect
	}
	return r.Classify(topX, topY)
}
