package gesture

import (
	"errors"
	"math/rand"
	"testing"

	"hdc/internal/body"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
)

// newPool builds a worker pool for proc streams (the sign recogniser behind
// it is never invoked by gesture stages, so it needs no references).
func newPool(t testing.TB, cfg pipeline.Config) *pipeline.Pipeline {
	t.Helper()
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// renderWindow renders one observation window of g starting at phase0.
func renderWindow(t testing.TB, r *Recognizer, g Gesture, phase0 float64,
	opts body.Options, rng *rand.Rand, frames int) []*raster.Gray {
	t.Helper()
	rend := scene.NewRenderer(scene.Config{})
	out := make([]*raster.Gray, frames)
	for i := range out {
		phase := phase0 + float64(i)/float64(r.cfg.FramesPerCycle)
		fig, err := FigureAt(g, phase, opts)
		if err != nil {
			t.Fatal(err)
		}
		f, err := rend.RenderFigure(fig, scene.ReferenceView(), rng)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = f
	}
	return out
}

// TestClassifyFramesAcrossGesturesRandomPhase runs every gesture through
// the pipeline-backed window path at randomized starting phases — the
// satellite coverage for pooled-scratch feature extraction under -race.
func TestClassifyFramesAcrossGesturesRandomPhase(t *testing.T) {
	rend := scene.NewRenderer(scene.Config{})
	r, err := NewRecognizer(Config{}, rend, scene.ReferenceView())
	if err != nil {
		t.Fatal(err)
	}
	p := newPool(t, pipeline.Config{Workers: 4, QueueDepth: 4, StreamWindow: 6})
	rng := rand.New(rand.NewSource(42))
	for _, g := range Gestures() {
		for trial := 0; trial < 3; trial++ {
			phase0 := rng.Float64()
			frames := renderWindow(t, r, g, phase0, body.Options{}, nil, r.cfg.FramesPerCycle)
			m, err := r.ClassifyFrames(p, frames, nil)
			if err != nil {
				t.Fatalf("%v @ phase %.2f: %v", g, phase0, err)
			}
			if m.Gesture != g {
				t.Fatalf("%v @ phase %.2f → %v (dist %.2f)", g, phase0, m.Gesture, m.Dist)
			}
		}
	}
	if _, err := r.ClassifyFrames(p, nil, nil); !errors.Is(err, ErrShortWindow) {
		t.Fatalf("empty window: %v, want ErrShortWindow", err)
	}
	// A sub-cycle window would z-normalise into a trivially matchable shape
	// (the threshold is calibrated for full cycles); it must be refused,
	// with every frame still recycled.
	short := renderWindow(t, r, GestureWave, 0, body.Options{}, nil, r.cfg.FramesPerCycle-1)
	recycled := 0
	if _, err := r.ClassifyFrames(p, short, func(*raster.Gray) { recycled++ }); !errors.Is(err, ErrShortWindow) {
		t.Fatalf("short window: %v, want ErrShortWindow", err)
	}
	if recycled != len(short) {
		t.Fatalf("short window recycled %d of %d frames", recycled, len(short))
	}
}

// TestLiveSessionClassifiesFeed feeds two gesture cycles through a live
// session sized to drop nothing and expects sliding-window matches.
func TestLiveSessionClassifiesFeed(t *testing.T) {
	rend := scene.NewRenderer(scene.Config{})
	r, err := NewRecognizer(Config{}, rend, scene.ReferenceView())
	if err != nil {
		t.Fatal(err)
	}
	p := newPool(t, pipeline.Config{Workers: 4, QueueDepth: 4, StreamWindow: 6})

	var pool raster.Pool
	rng := rand.New(rand.NewSource(5))
	for _, g := range []Gesture{GestureWave, GestureSeesaw} {
		phase0 := rng.Float64()
		l, err := r.NewLive(p, LiveConfig{
			Buffer:  4 * r.cfg.FramesPerCycle, // larger than the feed: no drops
			OnFrame: pool.Put,
		})
		if err != nil {
			t.Fatal(err)
		}
		src := renderWindow(t, r, g, phase0, body.Options{}, nil, 2*r.cfg.FramesPerCycle)
		for _, f := range src {
			// Copy into pooled frames: the session owns what it is offered.
			g8 := pool.Get(f.W, f.H)
			copy(g8.Pix, f.Pix)
			if err := l.Offer(g8); err != nil {
				t.Fatal(err)
			}
		}
		done := make(chan struct{})
		var matches []WindowMatch
		go func() {
			defer close(done)
			for m := range l.Matches() {
				matches = append(matches, m)
			}
		}()
		l.Close()
		<-done

		st := l.Stats()
		if st.Dropped != 0 {
			t.Fatalf("%v: %d drops from an oversized ring", g, st.Dropped)
		}
		if st.Frames != uint64(len(src)) {
			t.Fatalf("%v: processed %d of %d frames", g, st.Frames, len(src))
		}
		if len(matches) == 0 {
			t.Fatalf("%v: no windows classified", g)
		}
		accepted := 0
		for _, m := range matches {
			if m.Err == nil && m.Match.Gesture == g {
				accepted++
			} else if m.Err != nil && !errors.Is(m.Err, ErrNoGesture) {
				t.Fatalf("%v: window error %v", g, m.Err)
			}
		}
		if accepted == 0 {
			t.Fatalf("%v: no window matched (of %d)", g, len(matches))
		}
		// Every pooled frame came back exactly once.
		gets, puts := pool.Stats()
		if gets != puts {
			t.Fatalf("%v: %d gets vs %d puts — session leaked frames", g, gets, puts)
		}
	}
}

// TestLiveSessionShedsUnderOverload wedges a one-worker pool and floods a
// small ring: Offer must keep succeeding, the overflow must show up as
// drops, and every frame must be recycled exactly once (processed or shed).
func TestLiveSessionShedsUnderOverload(t *testing.T) {
	rend := scene.NewRenderer(scene.Config{})
	r, err := NewRecognizer(Config{}, rend, scene.ReferenceView())
	if err != nil {
		t.Fatal(err)
	}
	p := newPool(t, pipeline.Config{Workers: 1, QueueDepth: 1, StreamWindow: 2})

	var pool raster.Pool
	l, err := r.NewLive(p, LiveConfig{Buffer: 4, OnFrame: pool.Put})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range l.Matches() {
		}
	}()

	src := renderWindow(t, r, GesturePump, 0, body.Options{}, nil, r.cfg.FramesPerCycle)
	const rounds = 12
	for i := 0; i < rounds; i++ {
		for _, f := range src {
			g8 := pool.Get(f.W, f.H)
			copy(g8.Pix, f.Pix)
			if err := l.Offer(g8); err != nil {
				t.Fatal(err)
			}
		}
	}
	l.Close()

	st := l.Stats()
	offered := uint64(rounds * len(src))
	if st.Accepted != offered {
		t.Fatalf("accepted %d, want %d", st.Accepted, offered)
	}
	if st.Dropped == 0 {
		t.Fatal("no drops from a flooded one-worker pool")
	}
	if st.Frames+st.BadFrames+st.Dropped != offered {
		t.Fatalf("accounting: %d processed + %d bad + %d dropped != %d offered",
			st.Frames, st.BadFrames, st.Dropped, offered)
	}
	gets, puts := pool.Stats()
	if gets != puts {
		t.Fatalf("%d gets vs %d puts — overloaded session leaked frames", gets, puts)
	}
}
