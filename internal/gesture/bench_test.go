package gesture

import (
	"testing"

	"hdc/internal/body"
	"hdc/internal/scene"
)

// BenchmarkGestureClassify times one sliding-window classification against
// all three templates on a warm scratch — the per-window cost a live feed
// pays at every stride. The template cache and scratch make the steady
// state allocation-free; -benchmem pins that.
func BenchmarkGestureClassify(b *testing.B) {
	rend := scene.NewRenderer(scene.Config{})
	r, err := NewRecognizer(Config{}, rend, scene.ReferenceView())
	if err != nil {
		b.Fatal(err)
	}
	topX, topY, err := r.featureSeries(GestureWave, scene.ReferenceView(), 0,
		body.Options{}, nil, r.cfg.FramesPerCycle, 1)
	if err != nil {
		b.Fatal(err)
	}
	cs := &ClassifyScratch{}
	if _, err := r.ClassifyWith(cs, topX, topY); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ClassifyWith(cs, topX, topY); err != nil {
			b.Fatal(err)
		}
	}
}
