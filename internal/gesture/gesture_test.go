package gesture

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hdc/internal/body"
	"hdc/internal/scene"
	"hdc/internal/timeseries"
	"hdc/internal/vision"
)

func newRecognizer(t testing.TB) *Recognizer {
	t.Helper()
	rend := scene.NewRenderer(scene.Config{})
	r, err := NewRecognizer(Config{}, rend, scene.ReferenceView())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGestureStringsAndValidity(t *testing.T) {
	for _, g := range Gestures() {
		if !g.Valid() || g.String() == "" {
			t.Fatalf("gesture %d broken", int(g))
		}
	}
	if Gesture(0).Valid() {
		t.Fatal("zero gesture should be invalid")
	}
	if Gesture(99).String() == "" {
		t.Fatal("unknown gesture string empty")
	}
}

func TestFigureAtCyclesSmoothly(t *testing.T) {
	// The wave's wrist must move laterally across the cycle and return.
	wrist := func(phase float64) float64 {
		f, err := FigureAt(GestureWave, phase, body.Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, r := f.WristHeights()
		_ = r
		// lateral position of the right hand: last capsule endpoint.
		return f.Capsules[len(f.Capsules)-1].B.X
	}
	x0 := wrist(0)
	x25 := wrist(0.25)
	x75 := wrist(0.75)
	x1 := wrist(1.0)
	if math.Abs(x0-x1) > 1e-9 {
		t.Fatal("cycle must close")
	}
	if math.Abs(x25-x75) < 0.05 {
		t.Fatalf("wave has no lateral swing: %v vs %v", x25, x75)
	}
	// Phase outside [0,1) is wrapped.
	if math.Abs(wrist(1.25)-x25) > 1e-9 {
		t.Fatal("phase wrapping broken")
	}
}

func TestFigureAtInvalid(t *testing.T) {
	if _, err := FigureAt(Gesture(0), 0, body.Options{}); err == nil {
		t.Fatal("invalid gesture should fail")
	}
}

func TestExtractFeaturesOnFrame(t *testing.T) {
	rend := scene.NewRenderer(scene.Config{})
	fig, err := FigureAt(GestureWave, 0.25, body.Options{})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := rend.RenderFigure(fig, scene.ReferenceView(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mask := vision.OtsuBinarize(frame)
	f, err := ExtractFeatures(mask)
	if err != nil {
		t.Fatal(err)
	}
	if f.CenX < -1.2 || f.CenX > 1.2 {
		t.Fatalf("CenX %v out of range", f.CenX)
	}
	if f.Aspect <= 0 || f.Aspect > 5 {
		t.Fatalf("Aspect %v out of range", f.Aspect)
	}
	// Empty mask fails.
	if _, err := ExtractFeatures(vision.NewBinary(8, 8)); err == nil {
		t.Fatal("empty mask should fail")
	}
}

func TestRecognizerSelfClassification(t *testing.T) {
	r := newRecognizer(t)
	for _, g := range Gestures() {
		m, err := r.Observe(g, scene.ReferenceView(), 0, body.Options{}, nil)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if m.Gesture != g {
			t.Fatalf("%v classified as %v (dist %.2f)", g, m.Gesture, m.Dist)
		}
	}
}

func TestRecognizerPhaseInvariance(t *testing.T) {
	// The capture can start anywhere in the gesture cycle.
	r := newRecognizer(t)
	for _, phase0 := range []float64{0.1, 0.33, 0.5, 0.77} {
		for _, g := range Gestures() {
			m, err := r.Observe(g, scene.ReferenceView(), phase0, body.Options{}, nil)
			if err != nil {
				t.Fatalf("%v @ phase %v: %v", g, phase0, err)
			}
			if m.Gesture != g {
				t.Fatalf("%v @ phase %v → %v", g, phase0, m.Gesture)
			}
		}
	}
}

func TestRecognizerUnderJitterAndNoise(t *testing.T) {
	r := newRecognizer(t)
	rng := rand.New(rand.NewSource(3))
	hits, trials := 0, 0
	for _, g := range Gestures() {
		for k := 0; k < 4; k++ {
			m, err := r.Observe(g, scene.ReferenceView(), rng.Float64(),
				body.Options{ArmJitterDeg: rng.NormFloat64() * 3}, rng)
			trials++
			if err == nil && m.Gesture == g {
				hits++
			}
		}
	}
	if hits < trials*3/4 {
		t.Fatalf("noisy gesture recognition %d/%d below 75%%", hits, trials)
	}
}

func TestRecognizerModerateAzimuth(t *testing.T) {
	// Dynamic signals should tolerate off-axis viewing at least as far as
	// the static signs do (the temporal channels survive foreshortening).
	r := newRecognizer(t)
	v := scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: 40}
	for _, g := range []Gesture{GestureWave, GesturePump} {
		m, err := r.Observe(g, v, 0.2, body.Options{}, nil)
		if err != nil {
			t.Fatalf("%v @ 40°: %v", g, err)
		}
		if m.Gesture != g {
			t.Fatalf("%v @ 40° → %v (dist %.2f)", g, m.Gesture, m.Dist)
		}
	}
}

func TestFeaturesFromSinglePixelComponent(t *testing.T) {
	// Component bounds are inclusive: a one-pixel silhouette spans 1×1, not
	// 0×0. The old exclusive subtraction rejected it as degenerate (and
	// biased every aspect ratio one pixel short).
	mask := vision.NewBinary(8, 8)
	mask.Set(3, 4, 1)
	f, err := ExtractFeatures(mask)
	if err != nil {
		t.Fatalf("single-pixel silhouette rejected: %v", err)
	}
	if f.Aspect != 1 {
		t.Fatalf("1×1 component aspect %v, want 1", f.Aspect)
	}
	if f.CenX != 0 {
		t.Fatalf("1×1 component CenX %v, want 0", f.CenX)
	}
	// A one-column, three-row bar: width 1, height 3.
	mask2 := vision.NewBinary(8, 8)
	for y := 2; y <= 4; y++ {
		mask2.Set(5, y, 1)
	}
	f2, err := ExtractFeatures(mask2)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.0 / 3.0; math.Abs(f2.Aspect-want) > 1e-12 {
		t.Fatalf("1×3 bar aspect %v, want %v", f2.Aspect, want)
	}
	// Degenerate (empty) components still fail.
	if _, err := FeaturesFromComponent(vision.Component{}); err == nil {
		t.Fatal("empty component accepted")
	}
}

func TestClassifyPropagatesDistanceErrors(t *testing.T) {
	// Regression for the swallowed-error branch: with no shared active
	// channel, EuclideanDist errors were discarded and a stale nil err let a
	// length-mismatched template score a silent, perfect 0. Inject a corrupt
	// cache entry (mismatched series lengths, inactive template channels so
	// the zero-shift branch runs) and demand the error surfaces.
	r := newRecognizer(t)
	n := 24
	bad := normTemplate{
		g:  GestureWave,
		tx: make(timeseries.Series, n-3), // wrong length
		ty: make(timeseries.Series, n-3),
		// Stds below the activity floor force the zero-shift branch.
	}
	r.ntMu.Lock()
	if r.ntCache == nil {
		r.ntCache = make(map[int][]normTemplate)
	}
	r.ntCache[n] = []normTemplate{bad}
	r.ntMu.Unlock()

	active := make(timeseries.Series, n)
	flat := make(timeseries.Series, n)
	for i := range active {
		active[i] = math.Sin(2 * math.Pi * float64(i) / float64(n))
	}
	m, err := r.Classify(active, flat)
	if err == nil {
		t.Fatalf("mismatched template lengths produced a match: %+v", m)
	}
	if !errors.Is(err, timeseries.ErrLengthMismatch) {
		t.Fatalf("got %v, want ErrLengthMismatch", err)
	}
}

func TestAlignedDistNegativeAnchor(t *testing.T) {
	// alignedDist must wrap negative shifts exactly like Series.Rotate with
	// negative k; pin it against the Rotate-based reference.
	rng := rand.New(rand.NewSource(7))
	n := 24
	a := make(timeseries.Series, n)
	b := make(timeseries.Series, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	for _, anchor := range []int{-1, -5, -n, -n - 3, 0, 3} {
		got, err := alignedDist(a, b, anchor, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Inf(1)
		for s := anchor - 2; s <= anchor+2; s++ {
			d, err := timeseries.EuclideanDist(a, b.Rotate(s))
			if err != nil {
				t.Fatal(err)
			}
			want = math.Min(want, d)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("anchor %d: alignedDist %v, Rotate reference %v", anchor, got, want)
		}
	}
	if _, err := alignedDist(a, b[:n-1], -3, 2); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestClassifyWithReusedScratchMatchesClassify(t *testing.T) {
	r := newRecognizer(t)
	cs := &ClassifyScratch{}
	for _, g := range Gestures() {
		topX, topY, err := r.featureSeries(g, scene.ReferenceView(), 0, body.Options{}, nil, r.cfg.FramesPerCycle, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, werr := r.Classify(topX, topY)
		got, gerr := r.ClassifyWith(cs, topX, topY)
		if (werr == nil) != (gerr == nil) || got != want {
			t.Fatalf("%v: scratch path (%+v, %v) != fresh path (%+v, %v)", g, got, gerr, want, werr)
		}
		if want.Gesture != g {
			t.Fatalf("%v classified as %v", g, want.Gesture)
		}
	}
}

func TestClassifyValidation(t *testing.T) {
	r := newRecognizer(t)
	if _, err := r.Classify(nil, nil); err == nil {
		t.Fatal("empty series should fail")
	}
	if _, err := r.Classify(make([]float64, 4), make([]float64, 5)); err == nil {
		t.Fatal("mismatched series should fail")
	}
}

func TestStaticPoseRejected(t *testing.T) {
	// A static sign held still produces flat feature series — no gesture
	// should be accepted.
	r := newRecognizer(t)
	rend := scene.NewRenderer(scene.Config{})
	n := 24
	topX := make([]float64, 0, n)
	topY := make([]float64, 0, n)
	fig, err := body.NewFigure(body.SignAttention, body.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		frame, err := rend.RenderFigure(fig, scene.ReferenceView(), nil)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ExtractFeatures(vision.OtsuBinarize(frame))
		if err != nil {
			t.Fatal(err)
		}
		topX = append(topX, f.CenX)
		topY = append(topY, f.Aspect)
	}
	if _, err := r.Classify(topX, topY); err == nil {
		t.Fatal("static pose accepted as a gesture")
	}
}
