package gesture

import (
	"math"
	"math/rand"
	"testing"

	"hdc/internal/body"
	"hdc/internal/scene"
	"hdc/internal/vision"
)

func newRecognizer(t testing.TB) *Recognizer {
	t.Helper()
	rend := scene.NewRenderer(scene.Config{})
	r, err := NewRecognizer(Config{}, rend, scene.ReferenceView())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGestureStringsAndValidity(t *testing.T) {
	for _, g := range Gestures() {
		if !g.Valid() || g.String() == "" {
			t.Fatalf("gesture %d broken", int(g))
		}
	}
	if Gesture(0).Valid() {
		t.Fatal("zero gesture should be invalid")
	}
	if Gesture(99).String() == "" {
		t.Fatal("unknown gesture string empty")
	}
}

func TestFigureAtCyclesSmoothly(t *testing.T) {
	// The wave's wrist must move laterally across the cycle and return.
	wrist := func(phase float64) float64 {
		f, err := FigureAt(GestureWave, phase, body.Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, r := f.WristHeights()
		_ = r
		// lateral position of the right hand: last capsule endpoint.
		return f.Capsules[len(f.Capsules)-1].B.X
	}
	x0 := wrist(0)
	x25 := wrist(0.25)
	x75 := wrist(0.75)
	x1 := wrist(1.0)
	if math.Abs(x0-x1) > 1e-9 {
		t.Fatal("cycle must close")
	}
	if math.Abs(x25-x75) < 0.05 {
		t.Fatalf("wave has no lateral swing: %v vs %v", x25, x75)
	}
	// Phase outside [0,1) is wrapped.
	if math.Abs(wrist(1.25)-x25) > 1e-9 {
		t.Fatal("phase wrapping broken")
	}
}

func TestFigureAtInvalid(t *testing.T) {
	if _, err := FigureAt(Gesture(0), 0, body.Options{}); err == nil {
		t.Fatal("invalid gesture should fail")
	}
}

func TestExtractFeaturesOnFrame(t *testing.T) {
	rend := scene.NewRenderer(scene.Config{})
	fig, err := FigureAt(GestureWave, 0.25, body.Options{})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := rend.RenderFigure(fig, scene.ReferenceView(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mask := vision.OtsuBinarize(frame)
	f, err := ExtractFeatures(mask)
	if err != nil {
		t.Fatal(err)
	}
	if f.CenX < -1.2 || f.CenX > 1.2 {
		t.Fatalf("CenX %v out of range", f.CenX)
	}
	if f.Aspect <= 0 || f.Aspect > 5 {
		t.Fatalf("Aspect %v out of range", f.Aspect)
	}
	// Empty mask fails.
	if _, err := ExtractFeatures(vision.NewBinary(8, 8)); err == nil {
		t.Fatal("empty mask should fail")
	}
}

func TestRecognizerSelfClassification(t *testing.T) {
	r := newRecognizer(t)
	for _, g := range Gestures() {
		m, err := r.Observe(g, scene.ReferenceView(), 0, body.Options{}, nil)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if m.Gesture != g {
			t.Fatalf("%v classified as %v (dist %.2f)", g, m.Gesture, m.Dist)
		}
	}
}

func TestRecognizerPhaseInvariance(t *testing.T) {
	// The capture can start anywhere in the gesture cycle.
	r := newRecognizer(t)
	for _, phase0 := range []float64{0.1, 0.33, 0.5, 0.77} {
		for _, g := range Gestures() {
			m, err := r.Observe(g, scene.ReferenceView(), phase0, body.Options{}, nil)
			if err != nil {
				t.Fatalf("%v @ phase %v: %v", g, phase0, err)
			}
			if m.Gesture != g {
				t.Fatalf("%v @ phase %v → %v", g, phase0, m.Gesture)
			}
		}
	}
}

func TestRecognizerUnderJitterAndNoise(t *testing.T) {
	r := newRecognizer(t)
	rng := rand.New(rand.NewSource(3))
	hits, trials := 0, 0
	for _, g := range Gestures() {
		for k := 0; k < 4; k++ {
			m, err := r.Observe(g, scene.ReferenceView(), rng.Float64(),
				body.Options{ArmJitterDeg: rng.NormFloat64() * 3}, rng)
			trials++
			if err == nil && m.Gesture == g {
				hits++
			}
		}
	}
	if hits < trials*3/4 {
		t.Fatalf("noisy gesture recognition %d/%d below 75%%", hits, trials)
	}
}

func TestRecognizerModerateAzimuth(t *testing.T) {
	// Dynamic signals should tolerate off-axis viewing at least as far as
	// the static signs do (the temporal channels survive foreshortening).
	r := newRecognizer(t)
	v := scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: 40}
	for _, g := range []Gesture{GestureWave, GesturePump} {
		m, err := r.Observe(g, v, 0.2, body.Options{}, nil)
		if err != nil {
			t.Fatalf("%v @ 40°: %v", g, err)
		}
		if m.Gesture != g {
			t.Fatalf("%v @ 40° → %v (dist %.2f)", g, m.Gesture, m.Dist)
		}
	}
}

func TestClassifyValidation(t *testing.T) {
	r := newRecognizer(t)
	if _, err := r.Classify(nil, nil); err == nil {
		t.Fatal("empty series should fail")
	}
	if _, err := r.Classify(make([]float64, 4), make([]float64, 5)); err == nil {
		t.Fatal("mismatched series should fail")
	}
}

func TestStaticPoseRejected(t *testing.T) {
	// A static sign held still produces flat feature series — no gesture
	// should be accepted.
	r := newRecognizer(t)
	rend := scene.NewRenderer(scene.Config{})
	n := 24
	topX := make([]float64, 0, n)
	topY := make([]float64, 0, n)
	fig, err := body.NewFigure(body.SignAttention, body.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		frame, err := rend.RenderFigure(fig, scene.ReferenceView(), nil)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ExtractFeatures(vision.OtsuBinarize(frame))
		if err != nil {
			t.Fatal(err)
		}
		topX = append(topX, f.CenX)
		topY = append(topY, f.Aspect)
	}
	if _, err := r.Classify(topX, topY); err == nil {
		t.Fatal("static pose accepted as a gesture")
	}
}
