// Package gesture implements the dynamic marshalling signals the paper's
// §V flags as future work ("the flexibility of the system with respect to
// other static and, possibly later, dynamic marshalling signals"). A
// dynamic signal is a periodic arm motion; the recogniser watches a short
// window of frames, extracts two scalar silhouette features per frame
// (lateral and vertical position of the silhouette's topmost point,
// normalised to the bounding box) and matches the resulting *temporal*
// series against gesture templates with the same rotation-invariant SAX
// machinery the static signs use — here, circular shift = phase shift, so
// recognition does not need to know where in the gesture cycle the capture
// started.
package gesture

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"hdc/internal/body"
	"hdc/internal/raster"
	"hdc/internal/scene"
	"hdc/internal/timeseries"
	"hdc/internal/vision"
)

// Gesture enumerates the dynamic signals. Enums start at 1.
type Gesture int

// The dynamic-signal vocabulary (an extension set; the paper defines none
// concretely).
const (
	// GestureWave: one raised arm sways left-right overhead — the natural
	// long-range attention signal.
	GestureWave Gesture = iota + 1
	// GesturePump: both arms pump together between horizontal-out and
	// raised — "descend/come down" in common ground-marshalling use.
	GesturePump
	// GestureSeesaw: the two arms alternate up and down — "danger/wave
	// off" in emergency signalling.
	GestureSeesaw
)

// Gestures lists the vocabulary.
func Gestures() []Gesture { return []Gesture{GestureWave, GesturePump, GestureSeesaw} }

// String implements fmt.Stringer.
func (g Gesture) String() string {
	switch g {
	case GestureWave:
		return "Wave"
	case GesturePump:
		return "Pump"
	case GestureSeesaw:
		return "Seesaw"
	default:
		return fmt.Sprintf("Gesture(%d)", int(g))
	}
}

// Valid reports whether g is defined.
func (g Gesture) Valid() bool { return g >= GestureWave && g <= GestureSeesaw }

// idle arm at the side.
var idleArm = body.ArmPose{ShoulderDeg: 12, ElbowDeg: 8}

// FigureAt returns the signaller's figure at cycle phase ∈ [0, 1) of the
// gesture. The motion is C¹-smooth (sinusoidal interpolation).
func FigureAt(g Gesture, phase float64, opts body.Options) (body.Figure, error) {
	if !g.Valid() {
		return body.Figure{}, fmt.Errorf("gesture: invalid gesture %d", int(g))
	}
	phase = phase - math.Floor(phase)
	// s swings sinusoidally in [-1, 1] over the cycle.
	s := math.Sin(2 * math.Pi * phase)
	switch g {
	case GestureWave:
		// Right arm overhead swaying between 140° and 185°.
		mid, amp := 162.5, 22.5
		arm := body.ArmPose{ShoulderDeg: mid + amp*s, ElbowDeg: mid + 5 + amp*s}
		return body.NewFigurePose(idleArm, arm, opts), nil
	case GesturePump:
		// Both arms pumping symmetrically between horizontal-out (95°) and
		// raised (155°): the silhouette's top oscillates vertically while
		// its mass stays laterally centred.
		lo := body.ArmPose{ShoulderDeg: 95, ElbowDeg: 98}
		hi := body.ArmPose{ShoulderDeg: 155, ElbowDeg: 158}
		t := (s + 1) / 2
		arm := lo.Lerp(hi, t)
		return body.NewFigurePose(arm, arm, opts), nil
	case GestureSeesaw:
		// Arms alternating: left up while right down and vice versa.
		up := body.ArmPose{ShoulderDeg: 150, ElbowDeg: 155}
		down := body.ArmPose{ShoulderDeg: 40, ElbowDeg: 36}
		t := (s + 1) / 2
		return body.NewFigurePose(up.Lerp(down, t), down.Lerp(up, t), opts), nil
	}
	return body.Figure{}, fmt.Errorf("gesture: unhandled gesture %v", g)
}

// Features are the two per-frame scalar observables, chosen empirically
// (see E14): CenX is only active for the asymmetric Wave, and Aspect is
// active for every gesture but oscillates at double frequency for Seesaw
// (whose arms pass through horizontal twice per cycle) — together they
// separate the vocabulary.
type Features struct {
	// CenX is the silhouette centroid's lateral offset from the bounding-box
	// centre, normalised to [-1, 1] across the half-width. Centroids are
	// integrals — robust to the pixel ties that plague "topmost pixel"
	// features on symmetric poses.
	CenX float64
	// Aspect is the bounding box's width/height ratio: raised arms make the
	// silhouette tall and narrow, outstretched arms wide and short.
	Aspect float64
}

// ExtractFeatures computes the per-frame features from a binarised frame.
func ExtractFeatures(mask *vision.Binary) (Features, error) {
	_, comp, err := vision.LargestComponent(mask)
	if err != nil {
		return Features{}, err
	}
	return FeaturesFromComponent(comp)
}

// FeaturesFromComponent computes the features from component statistics
// alone — the allocation-free path used by the pipeline stage, which gets
// its component from a worker's vision.Scratch. Component bounds are
// inclusive pixel coordinates, so a component spanning columns MinX..MaxX
// is MaxX−MinX+1 pixels wide: the former w = MaxX−MinX under-measured every
// box by one pixel, biasing every Aspect and rejecting a one-column
// silhouette (w == 0) as degenerate.
func FeaturesFromComponent(comp vision.Component) (Features, error) {
	if comp.Area <= 0 {
		return Features{}, errors.New("gesture: degenerate silhouette")
	}
	w := comp.MaxX - comp.MinX + 1
	h := comp.MaxY - comp.MinY + 1
	center := float64(comp.MinX+comp.MaxX) / 2
	fx := (comp.CenX - center) / (float64(w) / 2)
	return Features{CenX: fx, Aspect: float64(w) / float64(h)}, nil
}

// morphRadius is the opening radius applied to binarised frames before
// component extraction (speckle removal), matching the recogniser's vision
// front half.
const morphRadius = 1

// ExtractFrame is the pooled-scratch per-frame feature stage as a public
// entry point: graph nodes (internal/graph/nodes) run exactly this from a
// worker's vision scratch, so the graph-served gesture path reuses the same
// code — and produces bit-identical Features — as ClassifyFrames and the
// Live session.
func ExtractFrame(vs *vision.Scratch, frame *raster.Gray) (Features, error) {
	return extractFrame(vs, frame)
}

// extractFrame is the pooled-buffer feature path: binarise and open with the
// scratch's planes, take the largest component, reduce it to Features.
func extractFrame(vs *vision.Scratch, frame *raster.Gray) (Features, error) {
	mask := vs.Binarize(frame)
	mask = vs.Open(mask, morphRadius)
	_, comp, err := vs.LargestComponent(mask)
	if err != nil {
		return Features{}, err
	}
	return FeaturesFromComponent(comp)
}

// Config tunes the recogniser.
type Config struct {
	// FramesPerCycle is the template sampling density (default 24).
	FramesPerCycle int
	// WindowCycles is how many gesture cycles one observation window spans
	// (default 1; the template matching is phase-invariant, so a single
	// cycle suffices).
	WindowCycles int
	// Threshold is the acceptance distance (default 4.0, on z-normalised
	// feature series).
	Threshold float64
}

func (c Config) withDefaults() Config {
	if c.FramesPerCycle == 0 {
		c.FramesPerCycle = 24
	}
	if c.WindowCycles == 0 {
		c.WindowCycles = 1
	}
	if c.Threshold == 0 {
		c.Threshold = 4.0
	}
	return c
}

// template is a gesture's reference feature series (raw, not normalised:
// the activity floor needs raw amplitudes).
type template struct {
	g      Gesture
	cenX   timeseries.Series
	aspect timeseries.Series
}

// Recognizer matches observed frame windows against gesture templates.
// Classification is safe for concurrent use once NewRecognizer returns (the
// templates are immutable and the per-length template cache is locked);
// concurrent callers should hold their own ClassifyScratch.
type Recognizer struct {
	cfg       Config
	rend      *scene.Renderer
	templates []template

	// ntMu guards ntCache: templates resampled to an observation length and
	// channel-normalised once, then reused by every Classify at that length
	// — the former per-call ResampleLinear/ZNormalize pair was the bulk of
	// Classify's allocations.
	ntMu    sync.RWMutex
	ntCache map[int][]normTemplate
}

// normTemplate is one gesture's template resampled to a window length, with
// the channel normalisation and activity statistics precomputed.
type normTemplate struct {
	g            Gesture
	tx, ty       timeseries.Series // norm-channelled (see normChannel)
	txStd, tyStd float64           // raw stds after resampling (activity gate)
}

// NewRecognizer builds templates by rendering each gesture over one cycle
// at the reference view.
func NewRecognizer(cfg Config, rend *scene.Renderer, view scene.View) (*Recognizer, error) {
	cfg = cfg.withDefaults()
	r := &Recognizer{cfg: cfg, rend: rend}
	for _, g := range Gestures() {
		tx, ty, err := r.featureSeries(g, view, 0, body.Options{}, nil, cfg.FramesPerCycle, 1)
		if err != nil {
			return nil, fmt.Errorf("gesture: template %v: %w", g, err)
		}
		r.templates = append(r.templates, template{g: g, cenX: tx, aspect: ty})
	}
	return r, nil
}

// featureSeries renders frames across cycles starting at phase0 and
// extracts both feature channels, reusing one frame buffer and one vision
// scratch across the whole window. It is the single render-and-extract
// loop behind both template building (phase0 = 0) and Observe, so the
// per-frame vision front half can never diverge between the two.
func (r *Recognizer) featureSeries(g Gesture, view scene.View, phase0 float64,
	opts body.Options, rng *rand.Rand, framesPerCycle, cycles int) (topX, topY timeseries.Series, err error) {

	n := framesPerCycle * cycles
	topX = make(timeseries.Series, 0, n)
	topY = make(timeseries.Series, 0, n)
	vs := vision.NewScratch()
	frame := &raster.Gray{}
	figs := make([]body.Figure, 1)
	for i := 0; i < n; i++ {
		phase := phase0 + float64(i)/float64(framesPerCycle)
		figs[0], err = FigureAt(g, phase, opts)
		if err != nil {
			return nil, nil, err
		}
		if _, err = r.rend.RenderFiguresInto(frame, figs, view, rng); err != nil {
			return nil, nil, err
		}
		f, err := extractFrame(vs, frame)
		if err != nil {
			return nil, nil, err
		}
		topX = append(topX, f.CenX)
		topY = append(topY, f.Aspect)
	}
	return topX, topY, nil
}

// Match is a gesture-recognition outcome.
type Match struct {
	Gesture Gesture
	Dist    float64
	Shift   int // phase shift (frames) of the best alignment
}

// ErrNoGesture is returned when no template passes the threshold.
var ErrNoGesture = errors.New("gesture: no gesture recognised")

// Observe renders one observation window of the given gesture (as the
// human performs it, with jitter/noise) from the view and classifies it.
// phase0 is the unknown starting phase — recognition must be invariant to
// it.
func (r *Recognizer) Observe(g Gesture, view scene.View, phase0 float64,
	opts body.Options, rng *rand.Rand) (Match, error) {

	topX, topY, err := r.featureSeries(g, view, phase0, opts, rng,
		r.cfg.FramesPerCycle, r.cfg.WindowCycles)
	if err != nil {
		return Match{}, err
	}
	return r.Classify(topX, topY)
}

// activityFloor is the raw feature standard deviation below which a channel
// counts as inactive (no motion in that axis) and normalises to the zero
// vector instead of unit variance — so matching a flat channel against an
// active template costs the natural √n penalty, while flat-vs-flat is free.
const activityFloor = 0.03

// normChannel z-normalises an active channel and zeroes an inactive one.
func normChannel(s timeseries.Series) timeseries.Series {
	return normChannelInto(nil, s, s.Std())
}

// normChannelInto is normChannel writing into dst (grown as needed), with
// the raw standard deviation supplied by the caller.
func normChannelInto(dst, s timeseries.Series, std float64) timeseries.Series {
	if std < activityFloor {
		if cap(dst) < len(s) {
			dst = make(timeseries.Series, len(s))
			return dst
		}
		dst = dst[:len(s)]
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	return s.ZNormalizeInto(dst)
}

// normTemplates returns the templates resampled to window length n with
// their channel normalisation precomputed, building and caching the set on
// first use of each length.
func (r *Recognizer) normTemplates(n int) ([]normTemplate, error) {
	r.ntMu.RLock()
	nts, ok := r.ntCache[n]
	r.ntMu.RUnlock()
	if ok {
		return nts, nil
	}
	r.ntMu.Lock()
	defer r.ntMu.Unlock()
	if nts, ok := r.ntCache[n]; ok {
		return nts, nil
	}
	nts = make([]normTemplate, 0, len(r.templates))
	for _, t := range r.templates {
		txRaw, err := t.cenX.ResampleLinear(n)
		if err != nil {
			return nil, err
		}
		tyRaw, err := t.aspect.ResampleLinear(n)
		if err != nil {
			return nil, err
		}
		nts = append(nts, normTemplate{
			g:     t.g,
			tx:    normChannel(txRaw),
			ty:    normChannel(tyRaw),
			txStd: txRaw.Std(),
			tyStd: tyRaw.Std(),
		})
	}
	if r.ntCache == nil {
		r.ntCache = make(map[int][]normTemplate)
	}
	r.ntCache[n] = nts
	return nts, nil
}

// ClassifyScratch holds the reusable buffers of one classification lane (the
// z-normalised observation channels). Not safe for concurrent use: one per
// goroutine, like the pipeline's recognition scratch.
type ClassifyScratch struct {
	zx, zy timeseries.Series
}

// Classify matches raw feature series against the templates with a fresh
// scratch. See ClassifyWith.
func (r *Recognizer) Classify(cenX, aspect timeseries.Series) (Match, error) {
	return r.ClassifyWith(&ClassifyScratch{}, cenX, aspect)
}

// ClassifyWith matches raw feature series against the templates. Channels
// are soft-gated on activity (see normChannel); the phase alignment comes
// from the channel pair with the most shared activity and the other channel
// must agree near that alignment. A completely inactive observation (a held
// static pose) matches nothing. With a warm scratch and template cache the
// steady state performs no allocations.
func (r *Recognizer) ClassifyWith(cs *ClassifyScratch, cenX, aspect timeseries.Series) (Match, error) {
	if len(cenX) == 0 || len(cenX) != len(aspect) {
		return Match{}, errors.New("gesture: bad feature series")
	}
	xStd, yStd := cenX.Std(), aspect.Std()
	if xStd < activityFloor && yStd < activityFloor {
		return Match{}, ErrNoGesture
	}
	nts, err := r.normTemplates(len(cenX))
	if err != nil {
		return Match{}, err
	}
	cs.zx = normChannelInto(cs.zx, cenX, xStd)
	cs.zy = normChannelInto(cs.zy, aspect, yStd)
	best := Match{Dist: math.Inf(1)}
	for _, t := range nts {
		// Pick the alignment channel: the one where both sides are active;
		// prefer the larger shared amplitude.
		xShared := math.Min(xStd, t.txStd)
		yShared := math.Min(yStd, t.tyStd)
		var dx, dy float64
		var shift int
		switch {
		case xShared >= activityFloor && xShared >= yShared:
			dx, shift, err = timeseries.MinRotationDist(cs.zx, t.tx)
			if err != nil {
				return Match{}, err
			}
			dy, err = alignedDist(cs.zy, t.ty, shift, 2)
		case yShared >= activityFloor:
			dy, shift, err = timeseries.MinRotationDist(cs.zy, t.ty)
			if err != nil {
				return Match{}, err
			}
			dx, err = alignedDist(cs.zx, t.tx, shift, 2)
		default:
			// No shared active channel: both distances are the mismatch
			// penalties at zero shift. (These errors used to be discarded,
			// so a length mismatch scored a silent perfect 0 here.)
			dx, err = alignedDist(cs.zx, t.tx, 0, 0)
			if err != nil {
				return Match{}, err
			}
			dy, err = alignedDist(cs.zy, t.ty, 0, 0)
		}
		if err != nil {
			return Match{}, err
		}
		total := math.Hypot(dx, dy)
		if total < best.Dist {
			best = Match{Gesture: t.g, Dist: total, Shift: shift}
		}
	}
	if math.IsInf(best.Dist, 1) || best.Dist > r.cfg.Threshold*math.Sqrt2 {
		return best, ErrNoGesture
	}
	return best, nil
}

// alignedDist is the Euclidean distance minimised over shifts within
// ±slack of the anchor alignment (anchors may be negative: shifts wrap
// circularly, like Series.Rotate).
func alignedDist(a, b timeseries.Series, anchor, slack int) (float64, error) {
	best := math.Inf(1)
	for s := anchor - slack; s <= anchor+slack; s++ {
		d, err := timeseries.EuclideanDistShifted(a, b, s)
		if err != nil {
			return 0, err
		}
		best = math.Min(best, d)
	}
	return best, nil
}
