package ledring

import (
	"math"
	"strings"
	"testing"

	"hdc/internal/geom"
)

func TestNewDefaults(t *testing.T) {
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.LEDCount() != DefaultLEDCount {
		t.Fatalf("LED count = %d", r.LEDCount())
	}
	// Safety default: danger (all red), per §II and the red-danger
	// association the paper cites.
	if r.Mode() != ModeDanger {
		t.Fatalf("initial mode = %v, want danger", r.Mode())
	}
	if !IsDanger(r.LEDs()) {
		t.Fatal("initial display must be all red")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{LEDCount: 2}); err == nil {
		t.Error("2 LEDs should fail")
	}
	if _, err := New(Options{VerticalArray: -1}); err == nil {
		t.Error("negative vertical array should fail")
	}
}

func TestModeTransitions(t *testing.T) {
	r, _ := New(Options{})
	r.SetNavigation(geom.North)
	if r.Mode() != ModeNavigation {
		t.Fatal("navigation not set")
	}
	r.SetDanger()
	if !IsDanger(r.LEDs()) {
		t.Fatal("danger not all red")
	}
	r.SetOff()
	for _, c := range r.LEDs() {
		if c != Off {
			t.Fatal("off mode must extinguish all LEDs")
		}
	}
}

func TestAllGreenGate(t *testing.T) {
	r, _ := New(Options{})
	if err := r.SetAllGreen(); err == nil {
		t.Fatal("all-green must be rejected by default (no consensus, §II)")
	}
	r2, _ := New(Options{AllowAllGreen: true})
	if err := r2.SetAllGreen(); err != nil {
		t.Fatal(err)
	}
	for _, c := range r2.LEDs() {
		if c != Green {
			t.Fatal("all-green display wrong")
		}
	}
}

func TestNavigationSectors(t *testing.T) {
	r, _ := New(Options{})
	r.SetNavigation(geom.North) // LED 0 is the nose
	leds := r.LEDs()
	// n=10, LED i at i*36° from nose. Green: [0,110) → LEDs 0,1,2,3 (0°,36°,
	// 72°,108°). White: [110,250] → LEDs 4,5,6 (144°,180°,216°). Red:
	// (250,360) → LEDs 7,8,9 (252°,288°,324°).
	wantGreen := []int{0, 1, 2, 3}
	wantWhite := []int{4, 5, 6}
	wantRed := []int{7, 8, 9}
	for _, i := range wantGreen {
		if leds[i] != Green {
			t.Errorf("LED %d = %v, want green", i, leds[i])
		}
	}
	for _, i := range wantWhite {
		if leds[i] != White {
			t.Errorf("LED %d = %v, want white", i, leds[i])
		}
	}
	for _, i := range wantRed {
		if leds[i] != Red {
			t.Errorf("LED %d = %v, want red", i, leds[i])
		}
	}
}

func TestNavigationRotatesWithHeading(t *testing.T) {
	r, _ := New(Options{})
	r.SetNavigation(geom.East) // 90°: pattern rotates by 2.5 LEDs
	leds := r.LEDs()
	// LED 3 is at 108°, rel = 18° → green; LED 0 at rel 270° → red.
	if leds[3] != Green {
		t.Errorf("LED 3 = %v, want green", leds[3])
	}
	if leds[0] != Red {
		t.Errorf("LED 0 = %v, want red", leds[0])
	}
}

func TestSectorCoverageAllHeadings(t *testing.T) {
	// Property: for every heading, the ring shows all three colours with
	// green+red covering ~6-7 LEDs and white 3-4 (n=10).
	r, _ := New(Options{})
	for deg := 0.0; deg < 360; deg += 7 {
		r.SetNavigation(geom.HeadingFromDeg(deg))
		var counts [4]int
		for _, c := range r.LEDs() {
			counts[c]++
		}
		if counts[Green] < 3 || counts[Green] > 4 {
			t.Fatalf("heading %v: %d green LEDs", deg, counts[Green])
		}
		if counts[Red] < 2 || counts[Red] > 4 {
			t.Fatalf("heading %v: %d red LEDs", deg, counts[Red])
		}
		if counts[White] < 3 || counts[White] > 5 {
			t.Fatalf("heading %v: %d white LEDs", deg, counts[White])
		}
		if counts[Off] != 0 {
			t.Fatalf("heading %v: dark LEDs in navigation mode", deg)
		}
	}
}

func TestDecodeHeadingRoundTrip(t *testing.T) {
	r, _ := New(Options{})
	for deg := 0.0; deg < 360; deg += 10 {
		h := geom.HeadingFromDeg(deg)
		r.SetNavigation(h)
		got, err := DecodeHeading(r.LEDs())
		if err != nil {
			t.Fatalf("heading %v: %v", deg, err)
		}
		errDeg := geom.Rad2Deg(got.AbsDiff(h))
		// Decode error bounded by the quantisation pitch.
		if errDeg > HeadingQuantizationErrorDeg(10)+36+1e-9 {
			t.Fatalf("heading %v decoded as %v (err %v°)", deg, got, errDeg)
		}
	}
}

func TestDecodeHeadingQuantizationImprovesWithLEDCount(t *testing.T) {
	// E11 ablation property: more LEDs → finer heading display.
	meanErr := func(n int) float64 {
		r, err := New(Options{LEDCount: n})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var cnt int
		for deg := 0.0; deg < 360; deg += 3 {
			h := geom.HeadingFromDeg(deg)
			r.SetNavigation(h)
			got, err := DecodeHeading(r.LEDs())
			if err != nil {
				t.Fatalf("n=%d heading %v: %v", n, deg, err)
			}
			sum += geom.Rad2Deg(got.AbsDiff(h))
			cnt++
		}
		return sum / float64(cnt)
	}
	e6, e10, e24 := meanErr(6), meanErr(10), meanErr(24)
	if !(e24 < e10 && e10 < e6) {
		t.Fatalf("decode error should fall with LED count: e6=%.1f e10=%.1f e24=%.1f", e6, e10, e24)
	}
}

func TestDecodeHeadingRejectsNonNavigation(t *testing.T) {
	r, _ := New(Options{})
	if _, err := DecodeHeading(r.LEDs()); err == nil {
		t.Fatal("danger display must not decode as heading")
	}
	if _, err := DecodeHeading(nil); err == nil {
		t.Fatal("empty display must fail")
	}
}

func TestIsDanger(t *testing.T) {
	if IsDanger(nil) {
		t.Fatal("empty is not danger")
	}
	if !IsDanger([]Color{Red, Red, Red}) {
		t.Fatal("all red is danger")
	}
	if IsDanger([]Color{Red, Green, Red}) {
		t.Fatal("mixed is not danger")
	}
}

func TestVerticalArrayAnimation(t *testing.T) {
	r, _ := New(Options{VerticalArray: 5})
	if err := r.StartVertical(VerticalTakeOff); err != nil {
		t.Fatal(err)
	}
	// Take-off: light travels bottom (index 0) to top.
	v := r.Vertical()
	if !v[0] {
		t.Fatalf("take-off must start at the bottom: %v", v)
	}
	r.TickVertical()
	v = r.Vertical()
	if !v[1] || v[0] {
		t.Fatalf("take-off should advance upwards: %v", v)
	}

	if err := r.StartVertical(VerticalLanding); err != nil {
		t.Fatal(err)
	}
	v = r.Vertical()
	if !v[4] {
		t.Fatalf("landing must start at the top: %v", v)
	}
	r.TickVertical()
	v = r.Vertical()
	if !v[3] {
		t.Fatalf("landing should advance downwards: %v", v)
	}

	r.StopVertical()
	for _, on := range r.Vertical() {
		if on {
			t.Fatal("stop must extinguish the array")
		}
	}
}

func TestVerticalArrayAbsent(t *testing.T) {
	r, _ := New(Options{})
	if err := r.StartVertical(VerticalTakeOff); err == nil {
		t.Fatal("missing array must error")
	}
	r.TickVertical() // no-op, must not panic
}

func TestRenderContainsGlyphs(t *testing.T) {
	r, _ := New(Options{})
	art := r.Render()
	if !strings.Contains(art, "danger") || !strings.Contains(art, "R") {
		t.Fatalf("danger render missing content:\n%s", art)
	}
	r.SetNavigation(geom.North)
	art = r.Render()
	for _, glyph := range []string{"R", "G", "W", "navigation"} {
		if !strings.Contains(art, glyph) {
			t.Fatalf("navigation render missing %q:\n%s", glyph, art)
		}
	}
}

func TestColorModeStrings(t *testing.T) {
	if Red.String() != "red" || Off.String() != "off" || Color(9).String() == "" {
		t.Fatal("color strings wrong")
	}
	if ModeDanger.String() != "danger" || Mode(0).String() == "" {
		t.Fatal("mode strings wrong")
	}
}

func TestQuantizationError(t *testing.T) {
	if HeadingQuantizationErrorDeg(10) != 18 {
		t.Fatal("10-LED pitch error should be 18°")
	}
	if HeadingQuantizationErrorDeg(0) != 180 {
		t.Fatal("degenerate count should be 180°")
	}
	if math.Abs(HeadingQuantizationErrorDeg(36)-5) > 1e-9 {
		t.Fatal("36-LED pitch error should be 5°")
	}
}

func TestPulsePatterns(t *testing.T) {
	r, _ := New(Options{})
	if err := r.StartPulse(PulseTakeOff); err != nil {
		t.Fatal(err)
	}
	if r.Pulse() != PulseTakeOff {
		t.Fatal("pulse not active")
	}
	frameA := r.LEDs()
	r.TickPulse()
	frameB := r.LEDs()
	// Take-off alternates green/white over the whole ring.
	for _, c := range frameA {
		if c != Green {
			t.Fatalf("take-off phase 0 should be green, got %v", c)
		}
	}
	for _, c := range frameB {
		if c != White {
			t.Fatalf("take-off phase 1 should be white, got %v", c)
		}
	}
	got, err := ClassifyPulse(frameA, frameB)
	if err != nil || got != PulseTakeOff {
		t.Fatalf("classify take-off = %v, %v", got, err)
	}
	// Order invariance (the observer can start watching at either phase).
	got, err = ClassifyPulse(frameB, frameA)
	if err != nil || got != PulseTakeOff {
		t.Fatalf("classify reversed take-off = %v, %v", got, err)
	}

	if err := r.StartPulse(PulseLanding); err != nil {
		t.Fatal(err)
	}
	fA := r.LEDs()
	r.TickPulse()
	fB := r.LEDs()
	got, err = ClassifyPulse(fA, fB)
	if err != nil || got != PulseLanding {
		t.Fatalf("classify landing = %v, %v", got, err)
	}

	// Take-off and landing are never confused: their colour pairs differ.
	if p, err := ClassifyPulse(frameA, frameB); err != nil || p == PulseLanding {
		t.Fatal("pulse confusion")
	}

	r.StopPulse()
	if r.Pulse() != PulseNone {
		t.Fatal("pulse not stopped")
	}
	if !IsDanger(r.LEDs()) {
		t.Fatal("stop must restore danger default")
	}
}

func TestPulseValidation(t *testing.T) {
	r, _ := New(Options{})
	if err := r.StartPulse(PulseNone); err == nil {
		t.Fatal("PulseNone should be rejected")
	}
	r.TickPulse() // no-op without active pulse, must not panic
	if _, err := ClassifyPulse(nil, nil); err == nil {
		t.Fatal("empty frames should fail")
	}
	// A navigation frame (mixed colours) is not a pulse.
	r.SetNavigation(geom.North)
	if _, err := ClassifyPulse(r.LEDs(), r.LEDs()); err == nil {
		t.Fatal("navigation frames should not classify as pulse")
	}
	// Danger/danger (red/red) is not a defined pulse pair.
	r.SetDanger()
	if _, err := ClassifyPulse(r.LEDs(), r.LEDs()); err == nil {
		t.Fatal("steady red should not classify as pulse")
	}
}

func TestPulseStrings(t *testing.T) {
	for _, p := range []Pulse{PulseNone, PulseTakeOff, PulseLanding, Pulse(9)} {
		if p.String() == "" {
			t.Fatal("empty pulse string")
		}
	}
}
