package ledring

import (
	"errors"
	"fmt"
)

// pulse.go implements the RGB take-off/landing signalling the paper's §II
// leaves for further work: "since in vertical take-off/landing situations
// directional lights are not necessary, a combination of RGB light signals
// may be used to indicate these flight patterns". Unlike the deprecated
// vertical array — whose up- and down-animations users could not tell
// apart — the pulse codes the two phases with *different colour pairs*, so
// a single glance suffices:
//
//	take-off: the whole ring alternates green ↔ white
//	landing:  the whole ring alternates white ↔ red
//
// (green = go/up, red = caution/down, matching the danger-colour
// conventions the paper cites).

// Pulse identifies an RGB whole-ring pulse pattern.
type Pulse int

// Pulse patterns.
const (
	PulseNone Pulse = iota
	PulseTakeOff
	PulseLanding
)

// String implements fmt.Stringer.
func (p Pulse) String() string {
	switch p {
	case PulseNone:
		return "none"
	case PulseTakeOff:
		return "take-off"
	case PulseLanding:
		return "landing"
	default:
		return fmt.Sprintf("Pulse(%d)", int(p))
	}
}

// pulseColors returns the alternating colour pair of a pulse.
func pulseColors(p Pulse) ([2]Color, error) {
	switch p {
	case PulseTakeOff:
		return [2]Color{Green, White}, nil
	case PulseLanding:
		return [2]Color{White, Red}, nil
	default:
		return [2]Color{}, fmt.Errorf("ledring: no colours for pulse %v", p)
	}
}

// StartPulse switches the whole ring into the given pulse pattern; ticks
// alternate the two colours.
func (r *Ring) StartPulse(p Pulse) error {
	if p != PulseTakeOff && p != PulseLanding {
		return fmt.Errorf("ledring: invalid pulse %v", p)
	}
	r.pulse = p
	r.pulsePhase = 0
	r.applyPulse()
	return nil
}

// StopPulse ends the pulse and restores the danger default (the caller
// switches to navigation when cruising begins).
func (r *Ring) StopPulse() {
	r.pulse = PulseNone
	r.SetDanger()
}

// TickPulse advances the pulse animation one half-period.
func (r *Ring) TickPulse() {
	if r.pulse == PulseNone {
		return
	}
	r.pulsePhase++
	r.applyPulse()
}

// Pulse returns the active pulse pattern.
func (r *Ring) Pulse() Pulse { return r.pulse }

func (r *Ring) applyPulse() {
	colors, err := pulseColors(r.pulse)
	if err != nil {
		return
	}
	c := colors[r.pulsePhase%2]
	for i := range r.leds {
		r.leds[i] = c
	}
}

// ClassifyPulse is the observer side: given two consecutive whole-ring
// frames (the colour sequence a bystander sees), identify the pulse. It
// returns an error for sequences that are not a recognised pulse — e.g.
// the deprecated vertical array's animation, which is what made that
// design confusing.
func ClassifyPulse(frameA, frameB []Color) (Pulse, error) {
	colorOf := func(frame []Color) (Color, bool) {
		if len(frame) == 0 {
			return Off, false
		}
		first := frame[0]
		for _, c := range frame[1:] {
			if c != first {
				return Off, false
			}
		}
		return first, true
	}
	a, okA := colorOf(frameA)
	b, okB := colorOf(frameB)
	if !okA || !okB {
		return PulseNone, errors.New("ledring: frames are not whole-ring pulses")
	}
	pair := [2]Color{a, b}
	rev := [2]Color{b, a}
	for _, p := range []Pulse{PulseTakeOff, PulseLanding} {
		want, _ := pulseColors(p)
		if pair == want || rev == want {
			return p, nil
		}
	}
	return PulseNone, fmt.Errorf("ledring: unknown pulse pair %v/%v", a, b)
}
