package ledring

import (
	"errors"
	"fmt"
	"math"

	"hdc/internal/geom"
)

// DecodeHeading is the observer side of the navigation display: given the
// LED colours a bystander sees, estimate the displayed direction of flight.
// The direction is read off the port/starboard (red→green) boundary. It is
// used by the E11 ablation to quantify how heading readability degrades
// with LED count.
func DecodeHeading(leds []Color) (geom.Heading, error) {
	n := len(leds)
	if n < 3 {
		return 0, errors.New("ledring: too few LEDs to decode")
	}
	var reds, greens, whites int
	for _, c := range leds {
		switch c {
		case Red:
			reds++
		case Green:
			greens++
		case White:
			whites++
		case Off:
			// ignored
		}
	}
	if greens == 0 || reds == 0 {
		return 0, fmt.Errorf("ledring: not a navigation display (%d red, %d green, %d white)", reds, greens, whites)
	}
	// The nose LED is the first green encountered clockwise after a red.
	for i := 0; i < n; i++ {
		prev := leds[(i-1+n)%n]
		if leds[i] == Green && prev == Red {
			return geom.NewHeading(2 * math.Pi * float64(i) / float64(n)), nil
		}
	}
	return 0, errors.New("ledring: no red→green boundary found")
}

// IsDanger reports whether the display reads as the all-red danger state.
func IsDanger(leds []Color) bool {
	if len(leds) == 0 {
		return false
	}
	for _, c := range leds {
		if c != Red {
			return false
		}
	}
	return true
}

// HeadingQuantizationErrorDeg returns the worst-case heading display error
// of a ring with n LEDs: the displayed direction snaps to the nearest LED,
// so the worst case is half the angular pitch. This is the analytic core of
// the E11 LED-count ablation.
func HeadingQuantizationErrorDeg(n int) float64 {
	if n <= 0 {
		return 180
	}
	return 180 / float64(n)
}
