package ledring

import (
	"errors"
	"math"
)

// power.go models the §II open issue the paper flags: "power requirements
// with respect to illumination distance is an issue that needs further
// consideration. There is obvious scope for optimisation by the use of
// separate high luminosity LEDs." The model answers the two questions a
// designer needs: how far is the ring legible under given ambient light,
// and what does that legibility cost in battery.

// PhotometricParams describes one LED and the viewing conditions.
type PhotometricParams struct {
	// IntensityCd is the LED's luminous intensity (candela). Typical
	// indicator LEDs: 0.1–5 cd; high-luminosity signalling LEDs: 10–100 cd.
	IntensityCd float64
	// AmbientLux is the ambient illuminance (overcast day ≈ 1000 lx, full
	// daylight ≈ 10000–25000 lx, dusk ≈ 10 lx).
	AmbientLux float64
	// ContrastThreshold is the minimum point-source illuminance at the eye,
	// as a fraction of a baseline detection threshold that scales with
	// ambient light (default 1: standard detection; >1: conservative).
	ContrastThreshold float64
	// EfficacyLmPerW converts electrical power to luminous flux (default
	// 80 lm/W, a modern coloured LED).
	EfficacyLmPerW float64
	// BeamSr is the emission solid angle (default 2π: a bare wide-angle
	// indicator; collimated signalling LEDs are much smaller).
	BeamSr float64
}

func (p PhotometricParams) withDefaults() (PhotometricParams, error) {
	if p.IntensityCd <= 0 {
		return p, errors.New("ledring: luminous intensity must be positive")
	}
	if p.AmbientLux < 0 {
		return p, errors.New("ledring: negative ambient illuminance")
	}
	if p.ContrastThreshold == 0 {
		p.ContrastThreshold = 1
	}
	if p.EfficacyLmPerW == 0 {
		p.EfficacyLmPerW = 80
	}
	if p.BeamSr == 0 {
		p.BeamSr = 2 * math.Pi
	}
	return p, nil
}

// detectionThresholdLux returns the point-source illuminance (lux at the
// observer's eye) needed to notice an LED against the ambient level —
// Allard's-law-style visual threshold that rises with ambient light. The
// constants approximate published conspicuity data: ~2×10⁻⁷ lx in darkness
// rising roughly with the square root of ambient illuminance.
func detectionThresholdLux(ambientLux float64) float64 {
	const dark = 2e-7
	return dark * (1 + math.Sqrt(ambientLux)*50)
}

// VisibilityRangeM returns the distance (meters) at which a single LED of
// the ring remains detectable: inverse-square falloff of the LED's
// intensity against the ambient-dependent detection threshold.
func VisibilityRangeM(p PhotometricParams) (float64, error) {
	p, err := p.withDefaults()
	if err != nil {
		return 0, err
	}
	threshold := detectionThresholdLux(p.AmbientLux) * p.ContrastThreshold
	// E = I / d²  ⇒  d = sqrt(I / E_threshold).
	return math.Sqrt(p.IntensityCd / threshold), nil
}

// RequiredIntensityCd inverts VisibilityRangeM: the luminous intensity one
// LED needs to stay detectable at rangeM under the given ambient light.
func RequiredIntensityCd(rangeM float64, ambientLux, contrastThreshold float64) (float64, error) {
	if rangeM <= 0 {
		return 0, errors.New("ledring: range must be positive")
	}
	if contrastThreshold == 0 {
		contrastThreshold = 1
	}
	return detectionThresholdLux(ambientLux) * contrastThreshold * rangeM * rangeM, nil
}

// RingPowerW returns the electrical power (watts) of running n LEDs at the
// given photometric operating point: intensity × beam solid angle gives
// flux (lumens), divided by efficacy.
func RingPowerW(n int, p PhotometricParams) (float64, error) {
	if n < 1 {
		return 0, errors.New("ledring: LED count must be positive")
	}
	p, err := p.withDefaults()
	if err != nil {
		return 0, err
	}
	fluxLm := p.IntensityCd * p.BeamSr
	return float64(n) * fluxLm / p.EfficacyLmPerW, nil
}

// EnduranceImpact estimates how much hover endurance the ring costs: the
// ring's power as a fraction of the hover draw, times the nominal
// endurance. A designer reads this as "minutes of flight paid for
// legibility at range d".
func EnduranceImpact(ringW, hoverDrawW, enduranceMin float64) (minutesLost float64, err error) {
	if hoverDrawW <= 0 || enduranceMin <= 0 {
		return 0, errors.New("ledring: hover draw and endurance must be positive")
	}
	if ringW < 0 {
		return 0, errors.New("ledring: negative ring power")
	}
	frac := ringW / (hoverDrawW + ringW)
	return enduranceMin * frac, nil
}
