package ledring

import "testing"

// pulse_test.go is the malformed-train table for the pulse classifier: every
// frame pair a bystander could misread — truncated rings, mixed colours,
// steady displays, the deprecated vertical-array animation, undefined colour
// pairs — must return an error, and the two defined pulses must classify in
// either phase order. The animation round-trip lives in ledring_test.go.

// ring returns a whole ring of n LEDs in colour c.
func ring(n int, c Color) []Color {
	out := make([]Color, n)
	for i := range out {
		out[i] = c
	}
	return out
}

func TestClassifyPulseTable(t *testing.T) {
	tests := []struct {
		name    string
		a, b    []Color
		want    Pulse
		wantErr bool
	}{
		{name: "nil frames", a: nil, b: nil, wantErr: true},
		{name: "empty frames", a: []Color{}, b: []Color{}, wantErr: true},
		{name: "one frame missing", a: ring(8, Green), b: nil, wantErr: true},
		{name: "take-off", a: ring(8, Green), b: ring(8, White), want: PulseTakeOff},
		{name: "take-off reversed phase", a: ring(8, White), b: ring(8, Green), want: PulseTakeOff},
		{name: "landing", a: ring(8, White), b: ring(8, Red), want: PulseLanding},
		{name: "landing reversed phase", a: ring(8, Red), b: ring(8, White), want: PulseLanding},
		{
			// Frame sizes need not match — the observer reads colours, not
			// geometry; a partially occluded second frame still classifies.
			name: "truncated second frame",
			a:    ring(12, Green), b: ring(3, White),
			want: PulseTakeOff,
		},
		{name: "single-LED frames", a: ring(1, White), b: ring(1, Red), want: PulseLanding},
		{name: "steady green", a: ring(8, Green), b: ring(8, Green), wantErr: true},
		{name: "steady red danger", a: ring(8, Red), b: ring(8, Red), wantErr: true},
		{name: "green-red not a pulse", a: ring(8, Green), b: ring(8, Red), wantErr: true},
		{name: "off-white not a pulse", a: ring(8, Off), b: ring(8, White), wantErr: true},
		{
			name: "mixed-colour frame",
			a:    []Color{Green, Green, White, Green}, b: ring(4, White),
			wantErr: true,
		},
		{
			name: "garbage colour frame",
			a:    ring(4, Color(9)), b: ring(4, Color(9)),
			wantErr: true,
		},
		{
			// One flipped LED (a misread pixel) breaks the whole-ring
			// requirement rather than producing a wrong pulse.
			name: "single corrupted LED",
			a:    append(ring(7, Green), Red), b: ring(8, White),
			wantErr: true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ClassifyPulse(tc.a, tc.b)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("classified %v/%v as %v, want error", tc.a, tc.b, got)
				}
				if got != PulseNone {
					t.Fatalf("error path must return PulseNone, got %v", got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ClassifyPulse(%v, %v): %v", tc.a, tc.b, err)
			}
			if got != tc.want {
				t.Fatalf("classified %v/%v as %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestStartPulseValidationTable(t *testing.T) {
	tests := []struct {
		name    string
		pulse   Pulse
		wantErr bool
	}{
		{name: "none rejected", pulse: PulseNone, wantErr: true},
		{name: "take-off", pulse: PulseTakeOff},
		{name: "landing", pulse: PulseLanding},
		{name: "out of range", pulse: Pulse(42), wantErr: true},
		{name: "negative", pulse: Pulse(-1), wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r, err := New(Options{})
			if err != nil {
				t.Fatal(err)
			}
			err = r.StartPulse(tc.pulse)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("StartPulse(%v) accepted", tc.pulse)
				}
				// A rejected pulse must leave the safety default untouched.
				if r.Pulse() != PulseNone || !IsDanger(r.LEDs()) {
					t.Fatalf("rejected pulse disturbed the display: %v", r.LEDs())
				}
				return
			}
			if err != nil {
				t.Fatalf("StartPulse(%v): %v", tc.pulse, err)
			}
			if r.Pulse() != tc.pulse {
				t.Fatalf("active pulse %v, want %v", r.Pulse(), tc.pulse)
			}
		})
	}
}
