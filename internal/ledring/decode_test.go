package ledring

import (
	"testing"

	"hdc/internal/geom"
)

// decode_test.go is the malformed-input table for the observer-side decoder:
// DecodeHeading and IsDanger must return typed errors (or false) for every
// truncated, corrupted or out-of-vocabulary display a camera could hand them,
// and a correct boundary reading for every well-formed one. The round-trip
// and quantisation properties live in ledring_test.go; this file pins the
// edges.

func TestDecodeHeadingTable(t *testing.T) {
	tests := []struct {
		name    string
		leds    []Color
		wantDeg float64 // meaningful only when wantErr is false
		wantErr bool
	}{
		{name: "nil display", leds: nil, wantErr: true},
		{name: "empty display", leds: []Color{}, wantErr: true},
		{name: "one LED", leds: []Color{Green}, wantErr: true},
		{name: "two LEDs truncated ring", leds: []Color{Red, Green}, wantErr: true},
		{name: "all off", leds: []Color{Off, Off, Off, Off}, wantErr: true},
		{name: "all red danger", leds: []Color{Red, Red, Red, Red}, wantErr: true},
		{name: "all green", leds: []Color{Green, Green, Green, Green}, wantErr: true},
		{name: "all white", leds: []Color{White, White, White, White}, wantErr: true},
		{name: "green without red", leds: []Color{Green, White, Off, Off}, wantErr: true},
		{name: "red without green", leds: []Color{Red, White, Off, Off}, wantErr: true},
		{
			// Red and green both present but never adjacent clockwise —
			// a corrupted reading with no decodable boundary.
			name:    "no red-to-green boundary",
			leds:    []Color{Red, Off, Green, Off},
			wantErr: true,
		},
		{
			// Out-of-vocabulary colour values (a misread camera frame)
			// separating red from green also leave no boundary.
			name:    "garbage colour breaks boundary",
			leds:    []Color{Red, Color(9), Green, Off},
			wantErr: true,
		},
		{
			name:    "boundary at nose",
			leds:    []Color{Green, Green, White, White, Red, Red, Red, Red},
			wantDeg: 0,
		},
		{
			name:    "boundary quarter turn",
			leds:    []Color{Red, Red, Green, Green, White, White, Off, Red},
			wantDeg: 90,
		},
		{
			// The boundary wraps: last LED red, first green.
			name:    "boundary wraps around index zero",
			leds:    []Color{Green, White, White, Red},
			wantDeg: 0,
		},
		{
			// Multiple boundaries (corrupted display): the decoder commits to
			// the first one clockwise from the nose — a defined, deterministic
			// reading rather than an error.
			name:    "two boundaries reads first",
			leds:    []Color{Red, Green, Off, Red, Green, Off},
			wantDeg: 60,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeHeading(tc.leds)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("decoded %v as %v, want error", tc.leds, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("DecodeHeading(%v): %v", tc.leds, err)
			}
			if diff := geom.Rad2Deg(got.AbsDiff(geom.HeadingFromDeg(tc.wantDeg))); diff > 1e-9 {
				t.Fatalf("decoded %v°, want %v°", got.Deg(), tc.wantDeg)
			}
		})
	}
}

func TestIsDangerTable(t *testing.T) {
	tests := []struct {
		name string
		leds []Color
		want bool
	}{
		{name: "nil", leds: nil, want: false},
		{name: "empty", leds: []Color{}, want: false},
		{name: "single red", leds: []Color{Red}, want: true},
		{name: "all red", leds: []Color{Red, Red, Red}, want: true},
		{name: "truncated but red", leds: []Color{Red, Red}, want: true},
		{name: "one LED off", leds: []Color{Red, Off, Red}, want: false},
		{name: "one LED garbage", leds: []Color{Red, Color(7), Red}, want: false},
		{name: "navigation mix", leds: []Color{Green, White, Red}, want: false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsDanger(tc.leds); got != tc.want {
				t.Fatalf("IsDanger(%v) = %v, want %v", tc.leds, got, tc.want)
			}
		})
	}
}

func TestHeadingQuantizationErrorDegTable(t *testing.T) {
	tests := []struct {
		n    int
		want float64
	}{
		{n: -3, want: 180}, // degenerate counts saturate at half a circle
		{n: 0, want: 180},
		{n: 1, want: 180},
		{n: 4, want: 45},
		{n: 10, want: 18},
		{n: 360, want: 0.5},
	}
	for _, tc := range tests {
		if got := HeadingQuantizationErrorDeg(tc.n); got != tc.want {
			t.Errorf("HeadingQuantizationErrorDeg(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}
