package ledring

import (
	"math"
	"testing"
)

func TestVisibilityRangeBasics(t *testing.T) {
	// A 1 cd indicator in darkness is visible for kilometers; in full
	// daylight only tens of meters.
	dark, err := VisibilityRangeM(PhotometricParams{IntensityCd: 1, AmbientLux: 0})
	if err != nil {
		t.Fatal(err)
	}
	day, err := VisibilityRangeM(PhotometricParams{IntensityCd: 1, AmbientLux: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if dark < 1000 {
		t.Fatalf("dark range %v m implausibly short", dark)
	}
	if day > 200 {
		t.Fatalf("daylight range %v m implausibly long for 1 cd", day)
	}
	if day >= dark {
		t.Fatal("ambient light must reduce visibility")
	}
}

func TestVisibilityMonotonicity(t *testing.T) {
	// More intensity → more range; more ambient → less range.
	prevRange := 0.0
	for _, cd := range []float64{0.5, 2, 10, 50} {
		r, err := VisibilityRangeM(PhotometricParams{IntensityCd: cd, AmbientLux: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if r <= prevRange {
			t.Fatalf("range not increasing with intensity: %v after %v", r, prevRange)
		}
		prevRange = r
	}
	prevRange = math.Inf(1)
	for _, lux := range []float64{10, 1000, 10000, 25000} {
		r, err := VisibilityRangeM(PhotometricParams{IntensityCd: 5, AmbientLux: lux})
		if err != nil {
			t.Fatal(err)
		}
		if r >= prevRange {
			t.Fatalf("range not decreasing with ambient: %v after %v", r, prevRange)
		}
		prevRange = r
	}
}

func TestRequiredIntensityRoundTrip(t *testing.T) {
	const ambient = 8000.0
	const wantRange = 60.0
	cd, err := RequiredIntensityCd(wantRange, ambient, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := VisibilityRangeM(PhotometricParams{IntensityCd: cd, AmbientLux: ambient})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-wantRange) > 0.5 {
		t.Fatalf("round trip: wanted %v m, got %v m", wantRange, r)
	}
	if _, err := RequiredIntensityCd(0, ambient, 1); err == nil {
		t.Fatal("zero range should fail")
	}
}

func TestRingPowerScalesWithCount(t *testing.T) {
	p := PhotometricParams{IntensityCd: 10}
	w10, err := RingPowerW(10, p)
	if err != nil {
		t.Fatal(err)
	}
	w20, err := RingPowerW(20, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w20-2*w10) > 1e-9 {
		t.Fatalf("power not linear in count: %v vs %v", w10, w20)
	}
	if _, err := RingPowerW(0, p); err == nil {
		t.Fatal("zero LEDs should fail")
	}
	// Collimation (smaller beam) reduces power at the same intensity — the
	// paper's "separate high luminosity LEDs" optimisation.
	collimated := p
	collimated.BeamSr = 0.5
	wc, err := RingPowerW(10, collimated)
	if err != nil {
		t.Fatal(err)
	}
	if wc >= w10 {
		t.Fatalf("collimated beam should cost less: %v vs %v", wc, w10)
	}
}

// TestPaperPowerTradeoff quantifies the §II concern end to end: making the
// 10-LED ring legible at the paper's working distances in daylight is
// cheap; pushing it to hundreds of meters is where the battery bites.
func TestPaperPowerTradeoff(t *testing.T) {
	const daylight = 10000.0
	costAt := func(rangeM float64) float64 {
		cd, err := RequiredIntensityCd(rangeM, daylight, 1)
		if err != nil {
			t.Fatal(err)
		}
		w, err := RingPowerW(10, PhotometricParams{IntensityCd: cd, AmbientLux: daylight})
		if err != nil {
			t.Fatal(err)
		}
		lost, err := EnduranceImpact(w, 180, 25)
		if err != nil {
			t.Fatal(err)
		}
		return lost
	}
	near := costAt(30) // orchard working range
	far := costAt(300) // perimeter signalling
	if near > 1 {
		t.Fatalf("30 m legibility costs %.2f min of 25 — implausibly expensive", near)
	}
	if far <= near*10 {
		t.Fatalf("inverse-square cost growth missing: %v vs %v", far, near)
	}
}

func TestEnduranceImpactValidation(t *testing.T) {
	if _, err := EnduranceImpact(1, 0, 25); err == nil {
		t.Fatal("zero hover draw should fail")
	}
	if _, err := EnduranceImpact(-1, 180, 25); err == nil {
		t.Fatal("negative ring power should fail")
	}
	lost, err := EnduranceImpact(0, 180, 25)
	if err != nil || lost != 0 {
		t.Fatal("zero ring power should cost nothing")
	}
}

func TestPhotometricValidation(t *testing.T) {
	if _, err := VisibilityRangeM(PhotometricParams{IntensityCd: 0}); err == nil {
		t.Fatal("zero intensity should fail")
	}
	if _, err := VisibilityRangeM(PhotometricParams{IntensityCd: 1, AmbientLux: -5}); err == nil {
		t.Fatal("negative ambient should fail")
	}
}
