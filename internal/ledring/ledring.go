// Package ledring models the paper's all-round-light: a ring of 10
// tri-colour LEDs mounted on the drone (§II, Fig 1) that signals flight
// direction to bystanders following FAA Part-107-style conventions (red on
// the port side, green on starboard, white aft), can be switched all-red as
// the danger/safety default, and optionally carries the vertical take-off/
// landing array the paper's user study rejected (kept behind a flag for the
// E11 ablation).
package ledring

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"hdc/internal/geom"
)

// Color is the displayable state of one tri-colour LED.
type Color int

// LED colours. Off is the zero value.
const (
	Off Color = iota
	Red
	Green
	White
)

// String implements fmt.Stringer.
func (c Color) String() string {
	switch c {
	case Off:
		return "off"
	case Red:
		return "red"
	case Green:
		return "green"
	case White:
		return "white"
	default:
		return fmt.Sprintf("Color(%d)", int(c))
	}
}

// rune returns a single-character glyph for terminal rendering.
func (c Color) rune() byte {
	switch c {
	case Red:
		return 'R'
	case Green:
		return 'G'
	case White:
		return 'W'
	default:
		return '.'
	}
}

// Mode is the ring's top-level state.
type Mode int

// Ring modes. Per the paper (and the red-danger literature it cites), the
// safety default is danger: a ring must be explicitly commanded into
// navigation display, and any safety trigger reverts it.
const (
	// ModeDanger shows all LEDs red — the default and the safety fallback.
	ModeDanger Mode = iota + 1
	// ModeNavigation shows the direction-coded red/green/white pattern.
	ModeNavigation
	// ModeAllGreen shows all green. The paper reports no consensus on its
	// use; it is implemented but must be enabled in Options.
	ModeAllGreen
	// ModeOff extinguishes the ring (rotors off after landing, Fig 2).
	ModeOff
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDanger:
		return "danger"
	case ModeNavigation:
		return "navigation"
	case ModeAllGreen:
		return "all-green"
	case ModeOff:
		return "off"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DefaultLEDCount is the paper's ring size.
const DefaultLEDCount = 10

// Options configures a Ring.
type Options struct {
	// LEDCount is the number of LEDs around the ring (default 10).
	LEDCount int
	// AllowAllGreen permits ModeAllGreen (paper: no consensus — off by
	// default).
	AllowAllGreen bool
	// VerticalArray enables the deprecated take-off/landing animation
	// column (user feedback: confusing; kept for the E11 ablation).
	VerticalArray int // number of LEDs in the column, 0 = absent
}

// Ring is the all-round-light state machine. Not safe for concurrent use;
// the owning drone serialises access.
type Ring struct {
	opts    Options
	mode    Mode
	heading geom.Heading // direction of controlled flight, body-relative display
	leds    []Color

	vert      []bool // vertical array on/off states
	vertPhase int
	vertDir   VerticalDir

	pulse      Pulse // active RGB pulse pattern (take-off/landing signalling)
	pulsePhase int
}

// VerticalDir is the animation direction of the vertical array.
type VerticalDir int

// Vertical animation directions.
const (
	VerticalOff VerticalDir = iota
	VerticalTakeOff
	VerticalLanding
)

// New constructs a ring in the danger (all-red) safety default.
func New(opts Options) (*Ring, error) {
	if opts.LEDCount == 0 {
		opts.LEDCount = DefaultLEDCount
	}
	if opts.LEDCount < 3 {
		return nil, fmt.Errorf("ledring: %d LEDs cannot encode direction", opts.LEDCount)
	}
	if opts.VerticalArray < 0 {
		return nil, errors.New("ledring: negative vertical array size")
	}
	r := &Ring{
		opts: opts,
		mode: ModeDanger,
		leds: make([]Color, opts.LEDCount),
		vert: make([]bool, opts.VerticalArray),
	}
	r.refresh()
	return r, nil
}

// Mode returns the current mode.
func (r *Ring) Mode() Mode { return r.mode }

// LEDCount returns the number of ring LEDs.
func (r *Ring) LEDCount() int { return r.opts.LEDCount }

// SetDanger switches the ring to the all-red danger display.
func (r *Ring) SetDanger() {
	r.mode = ModeDanger
	r.refresh()
}

// SetOff extinguishes the ring (only meaningful once rotors are off).
func (r *Ring) SetOff() {
	r.mode = ModeOff
	r.refresh()
}

// SetNavigation switches to the direction display for the given direction
// of controlled flight, expressed body-relative (0 = nose).
func (r *Ring) SetNavigation(dir geom.Heading) {
	r.mode = ModeNavigation
	r.heading = dir
	r.refresh()
}

// SetAllGreen switches to the all-green display if allowed by Options.
func (r *Ring) SetAllGreen() error {
	if !r.opts.AllowAllGreen {
		return errors.New("ledring: all-green display not enabled (no consensus, §II)")
	}
	r.mode = ModeAllGreen
	r.refresh()
	return nil
}

// LEDs returns a copy of the current LED colours. Index 0 is the LED at the
// displayed flight direction; indices increase clockwise viewed from above.
func (r *Ring) LEDs() []Color {
	out := make([]Color, len(r.leds))
	copy(out, r.leds)
	return out
}

// refresh recomputes LED colours from mode/heading.
func (r *Ring) refresh() {
	switch r.mode {
	case ModeDanger:
		for i := range r.leds {
			r.leds[i] = Red
		}
	case ModeAllGreen:
		for i := range r.leds {
			r.leds[i] = Green
		}
	case ModeOff:
		for i := range r.leds {
			r.leds[i] = Off
		}
	case ModeNavigation:
		r.refreshNavigation()
	}
}

// refreshNavigation lays out the aviation colour convention around the
// ring, rotated with the direction of flight: green covers the starboard
// sector of the motion direction (0°–110° clockwise from it, including the
// leading LED), red the port sector (250°–360°), white strictly aft
// (110°–250°) — the layout of aircraft navigation lights the FAA summary
// the paper cites builds on.
func (r *Ring) refreshNavigation() {
	n := len(r.leds)
	for i := 0; i < n; i++ {
		// Angle of LED i relative to the flight direction, in degrees
		// clockwise; LED 0 sits at the drone's nose.
		rel := normDeg((float64(i)/float64(n))*360 - r.heading.Deg())
		switch {
		case rel >= 110 && rel <= 250:
			r.leds[i] = White // aft
		case rel < 110:
			r.leds[i] = Green // starboard, leading LED included
		default:
			r.leds[i] = Red // port
		}
	}
}

func normDeg(d float64) float64 {
	for d < 0 {
		d += 360
	}
	for d >= 360 {
		d -= 360
	}
	return d
}

// Heading returns the displayed flight direction (meaningful in
// ModeNavigation).
func (r *Ring) Heading() geom.Heading { return r.heading }

// StartVertical begins the take-off (bottom→top) or landing (top→bottom)
// animation on the vertical array. It returns an error when the array is
// absent.
func (r *Ring) StartVertical(dir VerticalDir) error {
	if len(r.vert) == 0 {
		return errors.New("ledring: no vertical array fitted")
	}
	r.vertDir = dir
	r.vertPhase = 0
	r.stepVerticalPattern()
	return nil
}

// StopVertical extinguishes the vertical array.
func (r *Ring) StopVertical() {
	r.vertDir = VerticalOff
	for i := range r.vert {
		r.vert[i] = false
	}
}

// TickVertical advances the animation one step.
func (r *Ring) TickVertical() {
	if r.vertDir == VerticalOff || len(r.vert) == 0 {
		return
	}
	r.vertPhase++
	r.stepVerticalPattern()
}

func (r *Ring) stepVerticalPattern() {
	n := len(r.vert)
	pos := r.vertPhase % n
	for i := range r.vert {
		r.vert[i] = false
	}
	switch r.vertDir {
	case VerticalTakeOff:
		r.vert[pos] = true // index 0 = bottom; light travels upwards
	case VerticalLanding:
		r.vert[n-1-pos] = true // light travels downwards
	}
}

// Vertical returns a copy of the vertical array states (index 0 = bottom).
func (r *Ring) Vertical() []bool {
	out := make([]bool, len(r.vert))
	copy(out, r.vert)
	return out
}

// Render draws the ring as terminal art: a circle of glyphs (R/G/W/.) with
// the nose at the top — the harness uses it to regenerate Fig 1.
func (r *Ring) Render() string {
	n := len(r.leds)
	const size = 11
	grid := make([][]byte, size)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", size*2))
	}
	cx, cy := float64(size)-1, float64(size/2)
	for i, c := range r.leds {
		ang := geom.Deg2Rad(float64(i) / float64(n) * 360)
		x := int(cx + 9*math.Sin(ang))
		y := int(cy - 4.5*math.Cos(ang))
		if y >= 0 && y < size && x >= 0 && x < size*2 {
			grid[y][x] = c.rune()
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "mode=%s", r.mode)
	if r.mode == ModeNavigation {
		fmt.Fprintf(&sb, " dir=%s", r.heading)
	}
	sb.WriteByte('\n')
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}
