// Package graphtest is the node conformance kit for the graph runtime: a
// reusable harness any node implementation runs (the same way analyzer
// fixtures run through linttest) to prove it honours the graph's contracts
// before it is wired into a served topology. For a node described by a
// Node value, Run proves:
//
//   - buffer-ownership balance: every pooled frame the harness submits is
//     recycled exactly once, whether its message delivers at the sink, is
//     shed by an edge policy, or is abandoned by teardown;
//   - context-cancellation behaviour: a SubmitContext parked on a full
//     ingest edge returns the context's error and leaves frame ownership
//     with the caller;
//   - shed-accounting monotonicity: per-edge Arrived/Shed counters and the
//     graph's terminal counters only grow, Shed never exceeds Arrived, and
//     the terminals sum to the submissions once the graph drains;
//   - race-cleanliness: every scenario runs the node concurrently with
//     submitters, a stats sampler and teardown, so `go test -race` over a
//     conformance test is itself the data-race gate.
//
// A node library adds one test per node:
//
//	func TestNodeConformance(t *testing.T) {
//	    graphtest.Run(t, graphtest.Node{
//	        Name:  "binarize",
//	        Proc:  BinarizeProc,
//	        Frames: true,
//	    })
//	}
package graphtest

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hdc/internal/graph"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// Node describes one node implementation under conformance test.
type Node struct {
	// Name labels the node in graph specs and failures.
	Name string
	// Proc is the implementation under test.
	Proc graph.Proc
	// Value produces the ingest payload for message i — whatever the node
	// expects in Msg.Value. Nil submits nil payloads.
	Value func(i int) any
	// Frames attaches a pooled frame to every message when true. Vision
	// nodes set it; out-of-band workloads (LED rings, IMU windows,
	// trajectories) leave it false and ride on Value alone.
	Frames bool
}

// frameW is the pooled frame geometry the harness submits (Frames nodes
// must accept any frame size; 32×32 keeps the scenarios cheap).
const frameW, frameH = 32, 32

// Run executes the full conformance suite against n as subtests of t.
// It fails the test if any contract is violated; run it under -race.
func Run(t *testing.T, n Node) {
	t.Helper()
	if n.Name == "" || n.Proc == nil {
		t.Fatal("graphtest: Node needs Name and Proc")
	}
	t.Run("Delivery", func(t *testing.T) { runDelivery(t, n) })
	t.Run("ShedBalance", func(t *testing.T) { runShedBalance(t, n) })
	t.Run("AbandonBalance", func(t *testing.T) { runAbandonBalance(t, n) })
	t.Run("ContextCancellation", func(t *testing.T) { runContextCancellation(t, n) })
}

// harness is one scenario's assembled fixture: a pool, a frame pool with
// counted gets/puts, and helpers to submit conformant messages.
type harness struct {
	t      *testing.T
	n      Node
	p      *pipeline.Pipeline
	frames raster.Pool
}

func newHarness(t *testing.T, n Node) *harness {
	t.Helper()
	// More workers than one stream's window: the harness's gate node parks
	// every worker that picks up one of its messages, and its stream window
	// bounds those at StreamWindow — the surplus workers keep the node under
	// test making progress against the congestion instead of deadlocking
	// the whole pool.
	cfg := pipeline.Config{Workers: 6, QueueDepth: 4, StreamWindow: 4}
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return &harness{t: t, n: n, p: p}
}

// frame checks a pooled frame out for one message, or nil for out-of-band
// nodes.
func (h *harness) frame() *raster.Gray {
	if !h.n.Frames {
		return nil
	}
	return h.frames.Get(frameW, frameH)
}

// value produces message i's payload.
func (h *harness) value(i int) any {
	if h.n.Value == nil {
		return nil
	}
	return h.n.Value(i)
}

// checkBalance asserts the two quiescent-state invariants: frame-pool
// gets==puts (ownership balance) and terminal counters summing to the
// submissions (no message lost or double-counted). Call only after
// Close/Abandon returns.
func (h *harness) checkBalance(g *graph.Graph, branches uint64) {
	h.t.Helper()
	gets, puts := h.frames.Stats()
	if gets != puts {
		h.t.Errorf("frame pool: %d gets vs %d puts — node leaked or double-recycled frames", gets, puts)
	}
	st := g.Stats()
	if got, want := st.Delivered+st.Shed+st.Abandoned, st.Submitted*branches; got != want {
		h.t.Errorf("terminals: delivered %d + shed %d + abandoned %d = %d, want %d (submitted %d × %d branches)",
			st.Delivered, st.Shed, st.Abandoned, got, want, st.Submitted, branches)
	}
}

// passProc is the harness's no-op sink stage.
func passProc(_ *recognizer.Scratch, _ *graph.Msg) error { return nil }

// gate returns a pass-through proc that parks every message until release
// is called (idempotent). It is the harness's downstream congestion — but
// note an errored message passes a gate proc untouched (the runtime
// short-circuits procs on Msg.Err), so scenarios that must congest no
// matter the node's verdict gate at delivery with deliverGate instead.
func gate() (graph.Proc, func()) {
	ch := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(ch) }) }
	proc := func(_ *recognizer.Scratch, _ *graph.Msg) error {
		<-ch
		return nil
	}
	return proc, release
}

// deliverGate returns a Deliver hook that parks every delivery until
// release is called (idempotent). Unlike a gate proc, it holds for errored
// messages too: every delivered message goes through the hook.
func deliverGate() (func(string, graph.Msg), func()) {
	ch := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(ch) }) }
	deliver := func(_ string, _ graph.Msg) { <-ch }
	return deliver, release
}

// runDelivery: the node alone, Block ingest — every submission delivers, in
// submission order, and every frame recycles exactly once.
func runDelivery(t *testing.T, n Node) {
	h := newHarness(t, n)
	var (
		mu   sync.Mutex
		seqs []uint64
	)
	g, err := graph.Build(graph.Spec{
		Name:   "conformance",
		Nodes:  []graph.NodeSpec{{Name: n.Name, Proc: n.Proc}},
		Ingest: graph.EdgeSpec{Cap: 4},
	}, h.p, graph.Config{
		Recycle: h.frames.Put,
		// A message may deliver with m.Err set (the harness's synthetic
		// payloads need not satisfy the node semantically); conformance is
		// about the delivery itself, not the verdict.
		Deliver: func(_ string, m graph.Msg) {
			mu.Lock()
			seqs = append(seqs, m.Seq)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const N = 32
	for i := 0; i < N; i++ {
		if err := g.Submit(h.frame(), h.value(i), nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	g.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != N {
		t.Fatalf("delivered %d of %d messages", len(seqs), N)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("delivery order broken: seq %d after %d", seqs[i], seqs[i-1])
		}
	}
	h.checkBalance(g, 1)
}

// runShedBalance: node → sink over a DropOldest edge, deliveries gated
// shut. The node runs ahead of the congested sink, so the edge must shed —
// and every shed frame must still recycle exactly once. A concurrent
// sampler asserts monotone shed accounting the whole time.
func runShedBalance(t *testing.T, n Node) {
	h := newHarness(t, n)
	deliver, release := deliverGate()
	defer release()
	g, err := graph.Build(graph.Spec{
		Name: "conformance",
		Nodes: []graph.NodeSpec{
			{Name: n.Name, Proc: n.Proc},
			{Name: "sink", Proc: passProc},
		},
		Edges:  []graph.EdgeSpec{{From: n.Name, To: "sink", Cap: 1, Policy: graph.DropOldest}},
		Ingest: graph.EdgeSpec{Cap: 2},
	}, h.p, graph.Config{Recycle: h.frames.Put, Deliver: deliver})
	if err != nil {
		t.Fatal(err)
	}

	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		var prev graph.Stats
		for {
			st := g.Stats()
			checkMonotone(t, prev, st)
			prev = st
			select {
			case <-stopSampler:
				return
			default:
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	const N = 48
	for i := 0; i < N; i++ {
		if err := g.Submit(h.frame(), h.value(i), nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	release()
	g.Close()
	close(stopSampler)
	<-samplerDone

	st := g.Stats()
	if st.Shed == 0 {
		t.Error("no sheds from a congested DropOldest edge")
	}
	h.checkBalance(g, 1)
}

// checkMonotone asserts that no counter in cur regressed from prev and that
// each edge's Shed never exceeds its Arrived.
func checkMonotone(t *testing.T, prev, cur graph.Stats) {
	t.Helper()
	if cur.Submitted < prev.Submitted || cur.Delivered < prev.Delivered ||
		cur.Shed < prev.Shed || cur.Abandoned < prev.Abandoned {
		t.Errorf("graph counters regressed: %+v then %+v", prev, cur)
	}
	for i, e := range cur.Edges {
		if e.Shed > e.Arrived {
			t.Errorf("edge %s→%s shed %d of %d arrived", e.From, e.To, e.Shed, e.Arrived)
		}
		if i < len(prev.Edges) {
			p := prev.Edges[i]
			if e.Arrived < p.Arrived || e.Shed < p.Shed {
				t.Errorf("edge %s→%s counters regressed: %+v then %+v", e.From, e.To, p, e)
			}
		}
	}
}

// runAbandonBalance: load the graph against a blocked gate, then Abandon
// while messages sit on every edge and worker. Whatever mix of delivered,
// shed and abandoned results, ownership must balance.
func runAbandonBalance(t *testing.T, n Node) {
	h := newHarness(t, n)
	gateProc, release := gate()
	defer release()
	g, err := graph.Build(graph.Spec{
		Name: "conformance",
		Nodes: []graph.NodeSpec{
			{Name: n.Name, Proc: n.Proc},
			{Name: "gate", Proc: gateProc},
		},
		Edges:  []graph.EdgeSpec{{From: n.Name, To: "gate", Cap: 2, Policy: graph.Block}},
		Ingest: graph.EdgeSpec{Cap: 2, Policy: graph.DropOldest},
	}, h.p, graph.Config{Recycle: h.frames.Put})
	if err != nil {
		t.Fatal(err)
	}
	const N = 40
	for i := 0; i < N; i++ {
		if err := g.Submit(h.frame(), h.value(i), nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Release the gate shortly after teardown starts: messages already on
	// gate workers finish their stage mid-abandon, exercising the
	// discarded-delivery path alongside the edge-drain path.
	go func() {
		time.Sleep(5 * time.Millisecond)
		release()
	}()
	g.Abandon()
	if st := g.Stats(); st.Abandoned+st.Shed == 0 {
		t.Error("abandon of a loaded graph discarded nothing")
	}
	h.checkBalance(g, 1)
}

// runContextCancellation: with deliveries gated shut and every queue full,
// a SubmitContext must give up when its context expires and leave the frame
// with the caller; a pre-cancelled context must refuse immediately.
func runContextCancellation(t *testing.T, n Node) {
	h := newHarness(t, n)
	deliver, release := deliverGate()
	defer release()
	g, err := graph.Build(graph.Spec{
		Name:   "conformance",
		Nodes:  []graph.NodeSpec{{Name: n.Name, Proc: n.Proc}},
		Ingest: graph.EdgeSpec{Cap: 1, Policy: graph.Block},
	}, h.p, graph.Config{Recycle: h.frames.Put, Deliver: deliver})
	if err != nil {
		t.Fatal(err)
	}

	// Fill the graph: delivery slot + stream window + out buffer + ingest
	// cap is finite, so some submission beyond that must park. Use a
	// generous deadline for the fillers; the first one to time out proves
	// the cancellation path.
	deadline := time.Now().Add(10 * time.Second)
	timedOut := false
	for i := 0; i < 64 && !timedOut; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		f := h.frame()
		err := g.SubmitContext(ctx, f, h.value(i), nil)
		cancel()
		switch {
		case err == nil:
		case errors.Is(err, context.DeadlineExceeded):
			// Refused: the caller keeps the frame and recycles it itself.
			if f != nil {
				h.frames.Put(f)
			}
			timedOut = true
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
		if time.Now().After(deadline) {
			t.Fatal("graph never filled")
		}
	}
	if !timedOut {
		t.Fatal("64 submissions into a gated graph and none timed out")
	}

	// A context cancelled before the call refuses without touching the edge.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	f := h.frame()
	if err := g.SubmitContext(cancelled, f, h.value(0), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled submit: %v, want context.Canceled", err)
	}
	if f != nil {
		h.frames.Put(f)
	}

	release()
	g.Close()
	h.checkBalance(g, 1)
}
