// Package graph is the declarative dataflow runtime over the shared worker
// pool: a perception pipeline is described as a DAG of named nodes
// (ingest → binarize → features → classify → protocol) instead of being
// hardcoded into one stage shape the way Pipeline.NewProcStream is. Each
// node runs as a pipeline.Proc-style stage on the pool — one pool stream
// and one pipeline.Owner per node, so /statsz attributes frames per node
// ("graphname/nodename") and /tracez records every node hop with per-stage
// stamps exactly like any pipeline stage — and nodes are joined by bounded
// zero-copy edges of pooled buffers whose shed policy is chosen per edge
// (Block, DropOldest, Stride; see edge.go).
//
// Topology: a graph is a tree rooted at the single entry node — every node
// has at most one inbound edge, fan-out is unrestricted, and fan-in is not
// supported (merging two ordered streams needs a join policy no workload
// here wants yet). Messages fan out without copying pixels: branches share
// the pooled frame read-only behind a reference-counted cell, and the frame
// recycles through Config.Recycle exactly once when the last branch
// delivers, sheds or abandons it. That exactly-once recycle on every path
// is the ownership contract the graphtest conformance kit enforces.
//
// This is the dataflow-oriented architecture of DORA (PAPERS.md): declare
// the perception graph, let the runtime place stages on shared compute, and
// make overload behaviour a per-edge policy instead of a global property.
package graph

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hdc/internal/failpoint"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// Sentinel errors.
var (
	// ErrClosed is returned by Submit once the graph has closed.
	ErrClosed = errors.New("graph: closed")
	// ErrShed marks a Process input that an edge policy discarded before it
	// reached the sink.
	ErrShed = errors.New("graph: message shed")
)

// Proc is one node's stage: it transforms m.Value (and may read m.Frame,
// treating it as read-only) on a pool worker's scratch. Like pipeline.Proc
// it runs concurrently across messages of the same node, so it must keep no
// per-message state outside m; sc is owned by the calling worker for the
// duration of the call. m.Frame is nil for non-vision workloads.
type Proc func(sc *recognizer.Scratch, m *Msg) error

// NodeSpec declares one named node.
type NodeSpec struct {
	Name string
	Proc Proc
}

// EdgeSpec declares one edge. From/To name nodes; the ingest edge (Spec.
// Ingest) leaves both empty. Cap defaults to 1; Policy defaults to Block;
// Stride requires K ≥ 1.
type EdgeSpec struct {
	From   string
	To     string
	Cap    int
	Policy Policy
	K      int
}

func (e EdgeSpec) withDefaults() EdgeSpec {
	if e.Cap <= 0 {
		e.Cap = 1
	}
	return e
}

func (e EdgeSpec) validate(kind string) error {
	if !e.Policy.valid() {
		return fmt.Errorf("graph: %s: invalid policy %d", kind, int(e.Policy))
	}
	if e.Policy == Stride && e.K < 1 {
		return fmt.Errorf("graph: %s: stride policy needs K >= 1 (got %d)", kind, e.K)
	}
	return nil
}

// Spec is the declarative description of a graph.
type Spec struct {
	// Name labels the graph; node owners attach to the pool as
	// "Name/nodename". Defaults to "graph".
	Name string
	// Nodes lists the stages. Exactly one must have no inbound edge (the
	// root); nodes with no outbound edge are sinks and deliver.
	Nodes []NodeSpec
	// Edges joins nodes into a tree rooted at the entry node.
	Edges []EdgeSpec
	// Ingest configures the edge in front of the root node — the edge
	// Submit pushes into. From/To are ignored.
	Ingest EdgeSpec
}

// Config tunes a built graph.
type Config struct {
	// Recycle receives every pooled frame exactly once when its message has
	// left the graph on all paths (delivered at every reached sink, shed,
	// or abandoned). Nil drops frames to the garbage collector.
	Recycle func(*raster.Gray)
	// Deliver receives every sink delivery (the sink node's name and the
	// message) for messages submitted without a Process call. It runs on
	// the sink's collector goroutine and must not block indefinitely or
	// retain m.Frame past its return.
	Deliver func(node string, m Msg)
}

// node is one built stage: its pool stream, its input edge, its fan-out.
type node struct {
	g        *Graph
	name     string
	proc     Proc
	owner    *pipeline.Owner
	st       *pipeline.Stream
	in       *edge
	children []*edge
	slab     []Msg  // in-flight messages, indexed by stream seq
	seq      uint64 // forwarder-only submission count == stream seq

	dispatched atomic.Uint64
}

// Graph is a built, running dataflow graph. Construct with Build; feed with
// Submit/SubmitContext or Process; stop with Close (drains accepted work)
// or Abandon (discards it). All methods are safe for concurrent use.
type Graph struct {
	name   string
	cfg    Config
	nodes  []*node // topological order, root first
	ingest *edge
	edges  []*edge // ingest first, then Spec.Edges order
	sinks  int

	seq       atomic.Uint64
	submitted atomic.Uint64
	delivered atomic.Uint64
	sheds     atomic.Uint64
	abandoned atomic.Uint64

	closed    atomic.Bool
	discarded atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Build validates spec and starts the graph on p: one pipeline.Owner and
// one proc stream per node, a forwarder/collector goroutine pair per node.
// The graph holds its attachments until Close/Abandon — on a pool with no
// other owners, closing the graph drains the pool (the Attach contract).
func Build(spec Spec, p *pipeline.Pipeline, cfg Config) (*Graph, error) {
	if p == nil {
		return nil, errors.New("graph: nil pipeline")
	}
	if spec.Name == "" {
		spec.Name = "graph"
	}
	ordered, rootName, err := validate(spec)
	if err != nil {
		return nil, err
	}

	g := &Graph{name: spec.Name, cfg: cfg}
	byName := make(map[string]*node, len(spec.Nodes))
	for _, name := range ordered {
		var ns NodeSpec
		for _, cand := range spec.Nodes {
			if cand.Name == name {
				ns = cand
				break
			}
		}
		n := &node{g: g, name: ns.Name, proc: ns.Proc}
		owner, err := p.Attach(spec.Name + "/" + ns.Name)
		if err != nil {
			g.unwind(byName)
			return nil, fmt.Errorf("graph: attaching node %q: %w", ns.Name, err)
		}
		n.owner = owner
		st, err := owner.NewProcStream(n.wrap())
		if err != nil {
			owner.Close()
			g.unwind(byName)
			return nil, fmt.Errorf("graph: opening stream for node %q: %w", ns.Name, err)
		}
		n.st = st
		n.slab = make([]Msg, 2*st.Window()+4)
		byName[ns.Name] = n
		g.nodes = append(g.nodes, n)
	}

	g.ingest = newEdge(g, "", rootName, spec.Ingest.withDefaults())
	g.edges = append(g.edges, g.ingest)
	byName[rootName].in = g.ingest
	for _, es := range spec.Edges {
		e := newEdge(g, es.From, es.To, es.withDefaults())
		g.edges = append(g.edges, e)
		byName[es.From].children = append(byName[es.From].children, e)
		byName[es.To].in = e
	}
	for _, n := range g.nodes {
		if len(n.children) == 0 {
			g.sinks++
		}
	}

	g.wg.Add(2 * len(g.nodes))
	for _, n := range g.nodes {
		go n.forward()
		go n.collect()
	}
	return g, nil
}

// unwind releases the partially built nodes of a failed Build.
func (g *Graph) unwind(byName map[string]*node) {
	for _, n := range byName {
		if n.st != nil {
			n.st.Abandon()
		}
		if n.owner != nil {
			n.owner.Close()
		}
	}
}

// validate checks the spec and returns the node names in topological order
// (root first) plus the root's name.
func validate(spec Spec) (ordered []string, root string, err error) {
	if len(spec.Nodes) == 0 {
		return nil, "", errors.New("graph: no nodes")
	}
	if err := spec.Ingest.validate("ingest edge"); err != nil {
		return nil, "", err
	}
	indeg := make(map[string]int, len(spec.Nodes))
	for _, n := range spec.Nodes {
		if n.Name == "" {
			return nil, "", errors.New("graph: node with empty name")
		}
		if n.Proc == nil {
			return nil, "", fmt.Errorf("graph: node %q has nil proc", n.Name)
		}
		if _, dup := indeg[n.Name]; dup {
			return nil, "", fmt.Errorf("graph: duplicate node name %q", n.Name)
		}
		indeg[n.Name] = 0
	}
	children := make(map[string][]string, len(spec.Nodes))
	for i, e := range spec.Edges {
		if err := e.validate(fmt.Sprintf("edge %d (%s→%s)", i, e.From, e.To)); err != nil {
			return nil, "", err
		}
		if _, ok := indeg[e.From]; !ok {
			return nil, "", fmt.Errorf("graph: edge %d from unknown node %q", i, e.From)
		}
		if _, ok := indeg[e.To]; !ok {
			return nil, "", fmt.Errorf("graph: edge %d to unknown node %q", i, e.To)
		}
		if e.From == e.To {
			return nil, "", fmt.Errorf("graph: self-edge on %q", e.From)
		}
		indeg[e.To]++
		children[e.From] = append(children[e.From], e.To)
	}
	for name, d := range indeg {
		switch {
		case d == 0 && root != "":
			return nil, "", fmt.Errorf("graph: two entry nodes (%q and %q); a graph is a tree with one root", root, name)
		case d == 0:
			root = name
		case d > 1:
			return nil, "", fmt.Errorf("graph: node %q has %d inbound edges; fan-in is not supported", name, d)
		}
	}
	if root == "" {
		return nil, "", errors.New("graph: no entry node (every node has an inbound edge — the topology contains a cycle)")
	}
	// BFS from the root: with in-degree ≤ 1 everywhere, full reachability
	// proves the tree shape (an unreached node sits on a detached cycle or
	// island).
	queue := []string{root}
	seen := map[string]bool{root: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		ordered = append(ordered, cur)
		for _, c := range children[cur] {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	if len(ordered) != len(spec.Nodes) {
		return nil, "", fmt.Errorf("graph: %d of %d nodes unreachable from root %q", len(spec.Nodes)-len(ordered), len(spec.Nodes), root)
	}
	return ordered, root, nil
}

// wrap adapts the node's Proc to the pipeline's Proc shape: the message is
// fetched from the slab slot the forwarder filled for this seq, errored
// messages pass through without running the stage, and a stage error
// becomes the message's verdict.
func (n *node) wrap() pipeline.Proc {
	return func(sc *recognizer.Scratch, seq uint64, _ *raster.Gray) (recognizer.Result, error) {
		m := &n.slab[seq%uint64(len(n.slab))]
		if m.Err != nil {
			return recognizer.Result{}, m.Err
		}
		if err := n.proc(sc, m); err != nil {
			m.Err = err
			return recognizer.Result{}, err
		}
		return recognizer.Result{}, nil
	}
}

// forward is the node's dispatch goroutine: it moves messages from the
// input edge onto the node's pool stream, parking the slab slot the worker
// and collector will read. Submission order equals stream seq (this is the
// stream's only submitter), so slot reuse is bounded by the stream window
// exactly as in gesture.Live's feature slab.
func (n *node) forward() {
	defer n.g.wg.Done()
	defer n.st.Close()
	for {
		m, ok := n.in.pop()
		if !ok {
			return
		}
		n.dispatched.Add(1)
		// The node-dispatch failpoint: an injected error rides the message
		// to the sink as its verdict; ownership is unchanged (the message
		// still travels and releases normally).
		if err := failpoint.Inject(failpoint.GraphDispatch); err != nil && m.Err == nil {
			m.Err = err
		}
		n.slab[n.seq%uint64(len(n.slab))] = m
		n.seq++
		err := n.st.Submit(m.Frame)
		if err == nil {
			continue
		}
		if !errors.Is(err, pipeline.ErrClosed) {
			// Refused before claiming a seq: the message never entered the
			// stream, so the collector will not see it — release it here.
			n.g.abandonMsg(m)
		}
		// The pool died under us (force-close): everything still queued on
		// the input edge can only be abandoned.
		for {
			m, ok := n.in.pop()
			if !ok {
				return
			}
			n.g.abandonMsg(m)
		}
	}
}

// collect is the node's delivery goroutine: it receives the stream's
// ordered results, recovers each message from the slab, and either fans it
// out to the children edges or delivers it (sink). When it finishes — the
// stream drained after close — it closes the children edges, cascading the
// drain down the tree.
func (n *node) collect() {
	defer n.g.wg.Done()
	defer func() {
		for _, e := range n.children {
			e.close()
		}
	}()
	bg := context.Background()
	for res := range n.st.Results() {
		m := n.slab[res.Seq%uint64(len(n.slab))]
		if res.Err != nil && m.Err == nil {
			m.Err = res.Err
		}
		if n.g.discarded.Load() {
			n.g.abandonMsg(m)
			continue
		}
		if len(n.children) == 0 {
			n.g.deliver(n.name, m)
			continue
		}
		m.retain(int32(len(n.children) - 1))
		for _, e := range n.children {
			if err := e.push(bg, m); err != nil {
				// Children close only after this goroutine exits, so a
				// refused push is unreachable; released for safety.
				n.g.abandonMsg(m)
			}
		}
	}
}

// deliver hands one message to its destination — the Process call that
// submitted it, or Config.Deliver — and releases it.
func (g *Graph) deliver(nodeName string, m Msg) {
	if t, ok := m.Tag.(*callTag); ok {
		t.c.set(t.idx, Output{Value: m.Value, Err: m.Err})
	} else if g.cfg.Deliver != nil {
		g.cfg.Deliver(nodeName, m)
	}
	g.delivered.Add(1)
	g.release(m)
}

// abandonMsg releases a message the graph could not carry to delivery.
func (g *Graph) abandonMsg(m Msg) {
	g.abandoned.Add(1)
	g.notifyDead(m, ErrClosed)
	g.release(m)
}

// notifyShed records a policy shed against the message's Process call, if
// it has one.
func (g *Graph) notifyShed(m Msg) { g.notifyDead(m, ErrShed) }

func (g *Graph) notifyDead(m Msg, err error) {
	if t, ok := m.Tag.(*callTag); ok {
		t.c.set(t.idx, Output{Err: err})
	}
}

// Submit offers one message to the graph's ingest edge under its policy: a
// Block ingest applies back-pressure, DropOldest/Stride shed instead. On a
// nil return the graph owns frame (it recycles through Config.Recycle on
// every path); on an error the caller keeps it. value is the root node's
// input payload; tag is carried to delivery untouched.
func (g *Graph) Submit(frame *raster.Gray, value, tag any) error {
	return g.submit(context.Background(), frame, value, tag)
}

// SubmitContext is Submit with a deadline on the ingest wait: a push parked
// on a full Block ingest edge gives up when ctx expires (the caller keeps
// the frame), so a stalled graph bounds the submitter's latency.
func (g *Graph) SubmitContext(ctx context.Context, frame *raster.Gray, value, tag any) error {
	return g.submit(ctx, frame, value, tag)
}

func (g *Graph) submit(ctx context.Context, frame *raster.Gray, value, tag any) error {
	if g.closed.Load() {
		return ErrClosed
	}
	m := Msg{Seq: g.seq.Add(1) - 1, Frame: frame, Value: value, Tag: tag, cell: &cell{frame: frame}}
	m.cell.refs.Store(1)
	if err := g.ingest.push(ctx, m); err != nil {
		return err
	}
	g.submitted.Add(1)
	return nil
}

// Input is one Process item: an optional pooled frame and the root node's
// payload.
type Input struct {
	Frame *raster.Gray
	Value any
}

// Output is one Process result: the sink's payload for the matching input,
// or the error that ended the message's journey (a node failure, ErrShed
// for a policy discard, ErrClosed for a teardown, ctx.Err() for inputs
// still in flight when the context expired).
type Output struct {
	Value any
	Err   error
}

// call collects one Process batch's deliveries, routed via each message's
// callTag.
type call struct {
	mu        sync.Mutex
	out       []Output
	filled    []bool
	remaining int
	done      chan struct{}
}

type callTag struct {
	c   *call
	idx int
}

func (c *call) set(idx int, o Output) {
	c.mu.Lock()
	if !c.filled[idx] {
		c.filled[idx] = true
		c.out[idx] = o
		c.remaining--
		if c.remaining == 0 {
			close(c.done)
		}
	}
	c.mu.Unlock()
}

// snapshot copies the results out, stamping unresolved slots with fallback.
func (c *call) snapshot(fallback error) []Output {
	c.mu.Lock()
	defer c.mu.Unlock()
	res := make([]Output, len(c.out))
	copy(res, c.out)
	for i := range res {
		if !c.filled[i] {
			res[i] = Output{Err: fallback}
		}
	}
	return res
}

// errMultiSink rejects Process on graphs where one input yields several
// deliveries.
var errMultiSink = errors.New("graph: Process needs a single-sink graph")

// Process pushes a batch through the graph and returns one Output per input
// in input order — the synchronous request/response convenience the service
// endpoints build on, usable alongside concurrent Submits. It requires a
// single-sink graph (with fan-out, one input would deliver several times).
// Process always takes ownership of the input frames: each recycles through
// Config.Recycle exactly once whether its message delivered, shed, failed
// or outlived ctx — on expiry Process returns with the unresolved slots
// marked ctx.Err() while the stragglers drain (and recycle) behind it.
func (g *Graph) Process(ctx context.Context, in []Input) ([]Output, error) {
	if g.sinks != 1 {
		return nil, errMultiSink
	}
	c := &call{out: make([]Output, len(in)), filled: make([]bool, len(in)), remaining: len(in), done: make(chan struct{})}
	if len(in) == 0 {
		return nil, nil
	}
	for i := range in {
		if err := g.submit(ctx, in[i].Frame, in[i].Value, &callTag{c: c, idx: i}); err != nil {
			if in[i].Frame != nil && g.cfg.Recycle != nil {
				g.cfg.Recycle(in[i].Frame)
			}
			c.set(i, Output{Err: err})
		}
	}
	select {
	case <-c.done:
	case <-ctx.Done():
	}
	return c.snapshot(ctx.Err()), nil
}

// Close stops intake and drains: further Submits fail with ErrClosed,
// accepted messages flow to delivery, and every node detaches from the
// pool. Close blocks until the drain completes and is idempotent; Abandon
// after Close is a no-op.
func (g *Graph) Close() { g.teardown(false) }

// Abandon stops intake and discards: queued messages are shed from every
// edge and releases happen without delivery. Messages already on a worker
// finish their current stage first (at most a stream window per node), so
// Abandon is prompt, not instant; it blocks until the graph is quiescent.
func (g *Graph) Abandon() { g.teardown(true) }

func (g *Graph) teardown(discard bool) {
	g.closeOnce.Do(func() {
		g.closed.Store(true)
		if discard {
			g.discarded.Store(true)
			for _, e := range g.edges {
				e.abandon()
			}
		} else {
			g.ingest.close()
		}
		g.wg.Wait()
		for _, n := range g.nodes {
			n.owner.Close()
		}
	})
}

// NodeStats is one node's snapshot within Stats. Pool-level attribution
// (frames completed, streams) lives with the node's owner in
// pipeline.Stats.Owners under the label recorded here.
type NodeStats struct {
	Name string `json:"name"`
	// Owner is the node's attachment label on the pool ("graph/node").
	Owner string `json:"owner"`
	// Dispatched counts messages the forwarder moved onto the pool.
	Dispatched uint64 `json:"dispatched"`
	// Sink marks nodes that deliver.
	Sink bool `json:"sink,omitempty"`
}

// Stats is a point-in-time snapshot of the graph's message accounting.
// Submitted, Delivered, Shed and Abandoned are monotone; every submitted
// message ends in exactly one of the three terminal counters once the
// graph drains (fan-out counts each extra branch's terminal separately).
type Stats struct {
	Name      string      `json:"name"`
	Submitted uint64      `json:"submitted"`
	Delivered uint64      `json:"delivered"`
	Shed      uint64      `json:"shed"`
	Abandoned uint64      `json:"abandoned"`
	Nodes     []NodeStats `json:"nodes"`
	Edges     []EdgeStats `json:"edges"`
}

// Stats snapshots the graph. Safe for concurrent use.
func (g *Graph) Stats() Stats {
	s := Stats{
		Name:      g.name,
		Submitted: g.submitted.Load(),
		Delivered: g.delivered.Load(),
		Shed:      g.sheds.Load(),
		Abandoned: g.abandoned.Load(),
	}
	for _, n := range g.nodes {
		s.Nodes = append(s.Nodes, NodeStats{
			Name: n.name, Owner: n.owner.Label(),
			Dispatched: n.dispatched.Load(), Sink: len(n.children) == 0,
		})
	}
	for _, e := range g.edges {
		s.Edges = append(s.Edges, e.stats())
	}
	return s
}

// Name returns the graph's label.
func (g *Graph) Name() string { return g.name }
