package graph_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"hdc/internal/failpoint"
	"hdc/internal/graph"
	"hdc/internal/graph/graphtest"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// newPool builds a small worker pool for graph tests (the recogniser behind
// it is never invoked by graph procs, so it needs no references).
func newPool(t testing.TB) *pipeline.Pipeline {
	t.Helper()
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(rec, pipeline.Config{Workers: 2, QueueDepth: 4, StreamWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// addProc returns a proc that adds n to an int payload.
func addProc(n int) graph.Proc {
	return func(_ *recognizer.Scratch, m *graph.Msg) error {
		m.Value = m.Value.(int) + n
		return nil
	}
}

// passProc forwards the message unchanged.
func passProc(_ *recognizer.Scratch, _ *graph.Msg) error { return nil }

func TestBuildValidation(t *testing.T) {
	p := newPool(t)
	pass := graph.NodeSpec{Name: "a", Proc: passProc}
	cases := []struct {
		name string
		spec graph.Spec
		want string
	}{
		{"NoNodes", graph.Spec{}, "no nodes"},
		{"EmptyName", graph.Spec{Nodes: []graph.NodeSpec{{Proc: passProc}}}, "empty name"},
		{"NilProc", graph.Spec{Nodes: []graph.NodeSpec{{Name: "a"}}}, "nil proc"},
		{"DuplicateName", graph.Spec{Nodes: []graph.NodeSpec{pass, pass}}, "duplicate node name"},
		{"UnknownFrom", graph.Spec{Nodes: []graph.NodeSpec{pass},
			Edges: []graph.EdgeSpec{{From: "x", To: "a"}}}, "unknown node"},
		{"UnknownTo", graph.Spec{Nodes: []graph.NodeSpec{pass},
			Edges: []graph.EdgeSpec{{From: "a", To: "x"}}}, "unknown node"},
		{"SelfEdge", graph.Spec{Nodes: []graph.NodeSpec{pass},
			Edges: []graph.EdgeSpec{{From: "a", To: "a"}}}, "self-edge"},
		{"FanIn", graph.Spec{
			Nodes: []graph.NodeSpec{pass, {Name: "b", Proc: passProc}, {Name: "c", Proc: passProc}},
			Edges: []graph.EdgeSpec{{From: "a", To: "b"}, {From: "a", To: "c"}, {From: "b", To: "c"}}}, "fan-in"},
		{"TwoRoots", graph.Spec{
			Nodes: []graph.NodeSpec{pass, {Name: "b", Proc: passProc}}}, "two entry nodes"},
		{"Cycle", graph.Spec{
			Nodes: []graph.NodeSpec{pass, {Name: "b", Proc: passProc}},
			Edges: []graph.EdgeSpec{{From: "a", To: "b"}, {From: "b", To: "a"}}}, "cycle"},
		{"StrideNoK", graph.Spec{Nodes: []graph.NodeSpec{pass},
			Ingest: graph.EdgeSpec{Policy: graph.Stride}}, "stride policy needs K"},
		{"BadPolicy", graph.Spec{Nodes: []graph.NodeSpec{pass},
			Ingest: graph.EdgeSpec{Policy: graph.Policy(99)}}, "invalid policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := graph.Build(tc.spec, p, graph.Config{})
			if err == nil {
				g.Close()
				t.Fatalf("Build accepted bad spec %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := graph.Build(graph.Spec{Nodes: []graph.NodeSpec{pass}}, nil, graph.Config{}); err == nil {
		t.Fatal("Build accepted a nil pipeline")
	}
}

// TestChainProcess pushes a batch through a three-node chain and expects
// each output transformed by every stage, in input order.
func TestChainProcess(t *testing.T) {
	p := newPool(t)
	g, err := graph.Build(graph.Spec{
		Name: "chain",
		Nodes: []graph.NodeSpec{
			{Name: "one", Proc: addProc(1)},
			{Name: "ten", Proc: addProc(10)},
			{Name: "hundred", Proc: addProc(100)},
		},
		Edges: []graph.EdgeSpec{
			{From: "one", To: "ten"},
			{From: "ten", To: "hundred"},
		},
	}, p, graph.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	in := make([]graph.Input, 16)
	for i := range in {
		in[i] = graph.Input{Value: i}
	}
	out, err := g.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("output %d: %v", i, o.Err)
		}
		if got, want := o.Value.(int), i+111; got != want {
			t.Fatalf("output %d = %d, want %d", i, got, want)
		}
	}
	st := g.Stats()
	if st.Submitted != 16 || st.Delivered != 16 || st.Shed != 0 || st.Abandoned != 0 {
		t.Fatalf("stats after clean batch: %+v", st)
	}
	if len(st.Nodes) != 3 || st.Nodes[0].Owner != "chain/one" {
		t.Fatalf("node stats: %+v", st.Nodes)
	}
}

// TestFanOutRecyclesOnce submits pooled frames through a two-sink fan-out:
// both sinks see every message, and each frame recycles exactly once.
func TestFanOutRecyclesOnce(t *testing.T) {
	p := newPool(t)
	var pool raster.Pool
	var mu sync.Mutex
	perSink := map[string]int{}
	g, err := graph.Build(graph.Spec{
		Nodes: []graph.NodeSpec{
			{Name: "root", Proc: passProc},
			{Name: "left", Proc: passProc},
			{Name: "right", Proc: passProc},
		},
		Edges: []graph.EdgeSpec{
			{From: "root", To: "left"},
			{From: "root", To: "right"},
		},
	}, p, graph.Config{
		Recycle: pool.Put,
		Deliver: func(node string, m graph.Msg) {
			mu.Lock()
			perSink[node]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const N = 24
	for i := 0; i < N; i++ {
		if err := g.Submit(pool.Get(16, 16), nil, nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	g.Close()
	mu.Lock()
	defer mu.Unlock()
	if perSink["left"] != N || perSink["right"] != N {
		t.Fatalf("sink deliveries: %v, want %d each", perSink, N)
	}
	if gets, puts := pool.Stats(); gets != puts || gets != N {
		t.Fatalf("fan-out recycling: %d gets, %d puts, want %d each", gets, puts, N)
	}
	if st := g.Stats(); st.Delivered != 2*N {
		t.Fatalf("delivered %d, want %d (one per branch)", st.Delivered, 2*N)
	}
}

// TestStrideKeepsEveryKth relies on the collector pushing results in seq
// order: a stride-3 edge must deliver exactly seqs 0, 3, 6, … and shed the
// rest.
func TestStrideKeepsEveryKth(t *testing.T) {
	p := newPool(t)
	var mu sync.Mutex
	var seqs []uint64
	g, err := graph.Build(graph.Spec{
		Nodes: []graph.NodeSpec{
			{Name: "src", Proc: passProc},
			{Name: "sink", Proc: passProc},
		},
		Edges: []graph.EdgeSpec{{From: "src", To: "sink", Policy: graph.Stride, K: 3, Cap: 2}},
	}, p, graph.Config{Deliver: func(_ string, m graph.Msg) {
		mu.Lock()
		seqs = append(seqs, m.Seq)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	const N = 9
	for i := 0; i < N; i++ {
		if err := g.Submit(nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	g.Close()
	mu.Lock()
	defer mu.Unlock()
	if want := []uint64{0, 3, 6}; len(seqs) != len(want) ||
		seqs[0] != want[0] || seqs[1] != want[1] || seqs[2] != want[2] {
		t.Fatalf("stride-3 delivered seqs %v, want %v", seqs, want)
	}
	st := g.Stats()
	if st.Shed != N-3 {
		t.Fatalf("stride-3 shed %d of %d, want %d", st.Shed, N, N-3)
	}
}

// TestProcessPropagatesNodeErrors: a failing stage becomes that message's
// Output.Err without disturbing its batch-mates.
func TestProcessPropagatesNodeErrors(t *testing.T) {
	p := newPool(t)
	errOdd := errors.New("odd payload")
	g, err := graph.Build(graph.Spec{
		Nodes: []graph.NodeSpec{
			{Name: "check", Proc: func(_ *recognizer.Scratch, m *graph.Msg) error {
				if m.Value.(int)%2 == 1 {
					return errOdd
				}
				return nil
			}},
			{Name: "after", Proc: addProc(100)},
		},
		Edges: []graph.EdgeSpec{{From: "check", To: "after"}},
	}, p, graph.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	in := make([]graph.Input, 8)
	for i := range in {
		in[i] = graph.Input{Value: i}
	}
	out, err := g.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if i%2 == 1 {
			if !errors.Is(o.Err, errOdd) {
				t.Fatalf("odd output %d: err %v, want errOdd", i, o.Err)
			}
			continue
		}
		if o.Err != nil {
			t.Fatalf("even output %d: %v", i, o.Err)
		}
		if got := o.Value.(int); got != i+100 {
			t.Fatalf("even output %d = %d, want %d (downstream stage must still run)", i, got, i+100)
		}
	}
}

// TestProcessRejectsMultiSink: with fan-out one input would deliver twice.
func TestProcessRejectsMultiSink(t *testing.T) {
	p := newPool(t)
	g, err := graph.Build(graph.Spec{
		Nodes: []graph.NodeSpec{
			{Name: "root", Proc: passProc},
			{Name: "a", Proc: passProc},
			{Name: "b", Proc: passProc},
		},
		Edges: []graph.EdgeSpec{{From: "root", To: "a"}, {From: "root", To: "b"}},
	}, p, graph.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Process(context.Background(), []graph.Input{{}}); err == nil {
		t.Fatal("Process accepted a two-sink graph")
	}
}

// TestSubmitAfterClose: a closed graph refuses work and stays refusing.
func TestSubmitAfterClose(t *testing.T) {
	p := newPool(t)
	g, err := graph.Build(graph.Spec{Nodes: []graph.NodeSpec{{Name: "a", Proc: passProc}}}, p, graph.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	g.Close() // idempotent
	if err := g.Submit(nil, nil, nil); !errors.Is(err, graph.ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	out, err := g.Process(context.Background(), []graph.Input{{Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out[0].Err, graph.ErrClosed) {
		t.Fatalf("process after close: %v, want ErrClosed", out[0].Err)
	}
}

// TestFailpointDispatch: an armed node-dispatch failpoint turns every
// message into an error delivery — ownership intact.
func TestFailpointDispatch(t *testing.T) {
	defer failpoint.DisableAll()
	if err := failpoint.Enable(failpoint.GraphDispatch, "error(node down)"); err != nil {
		t.Fatal(err)
	}
	p := newPool(t)
	var pool raster.Pool
	g, err := graph.Build(graph.Spec{
		Nodes: []graph.NodeSpec{{Name: "a", Proc: passProc}},
	}, p, graph.Config{Recycle: pool.Put})
	if err != nil {
		t.Fatal(err)
	}
	in := []graph.Input{{Frame: pool.Get(16, 16)}, {Frame: pool.Get(16, 16)}}
	out, err := g.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if !errors.Is(o.Err, failpoint.ErrInjected) {
			t.Fatalf("output %d: %v, want injected error", i, o.Err)
		}
	}
	g.Close()
	if gets, puts := pool.Stats(); gets != puts {
		t.Fatalf("dispatch fault leaked frames: %d gets, %d puts", gets, puts)
	}
}

// TestFailpointEdgeForward: an armed edge-forward failpoint sheds at the
// ingest edge; Process reports ErrShed and frames still recycle.
func TestFailpointEdgeForward(t *testing.T) {
	defer failpoint.DisableAll()
	if err := failpoint.Enable(failpoint.GraphEdgeForward, "error(edge cut)"); err != nil {
		t.Fatal(err)
	}
	p := newPool(t)
	var pool raster.Pool
	g, err := graph.Build(graph.Spec{
		Nodes: []graph.NodeSpec{{Name: "a", Proc: passProc}},
	}, p, graph.Config{Recycle: pool.Put})
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Process(context.Background(), []graph.Input{{Frame: pool.Get(16, 16)}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out[0].Err, graph.ErrShed) {
		t.Fatalf("output err %v, want ErrShed", out[0].Err)
	}
	g.Close()
	st := g.Stats()
	if st.Shed == 0 || st.Delivered != 0 {
		t.Fatalf("stats with edge faults armed: %+v", st)
	}
	if gets, puts := pool.Stats(); gets != puts {
		t.Fatalf("edge fault leaked frames: %d gets, %d puts", gets, puts)
	}
}

// TestProcessContextExpiry: a Process racing a gated graph returns at the
// deadline with ctx errors in unresolved slots, and the graph still drains
// and balances afterwards.
func TestProcessContextExpiry(t *testing.T) {
	p := newPool(t)
	var pool raster.Pool
	releaseCh := make(chan struct{})
	g, err := graph.Build(graph.Spec{
		Nodes: []graph.NodeSpec{{Name: "slow", Proc: func(_ *recognizer.Scratch, _ *graph.Msg) error {
			<-releaseCh
			return nil
		}}},
		Ingest: graph.EdgeSpec{Cap: 1, Policy: graph.DropOldest},
	}, p, graph.Config{Recycle: pool.Put})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	in := make([]graph.Input, 8)
	for i := range in {
		in[i] = graph.Input{Frame: pool.Get(16, 16), Value: i}
	}
	start := time.Now()
	out, err := g.Process(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Process ignored its deadline")
	}
	expired := 0
	for _, o := range out {
		if errors.Is(o.Err, context.DeadlineExceeded) {
			expired++
		}
	}
	if expired == 0 {
		t.Fatalf("no output carried the deadline error: %+v", out)
	}
	close(releaseCh)
	g.Close()
	if gets, puts := pool.Stats(); gets != puts {
		t.Fatalf("expired Process leaked frames: %d gets, %d puts", gets, puts)
	}
}

// TestAbandonDiscardsQueued: Abandon on a gated graph discards without
// delivering, promptly, and balances the pool.
func TestAbandonDiscardsQueued(t *testing.T) {
	p := newPool(t)
	var pool raster.Pool
	releaseCh := make(chan struct{})
	delivered := 0
	var mu sync.Mutex
	g, err := graph.Build(graph.Spec{
		Nodes: []graph.NodeSpec{{Name: "slow", Proc: func(_ *recognizer.Scratch, _ *graph.Msg) error {
			<-releaseCh
			return nil
		}}},
		Ingest: graph.EdgeSpec{Cap: 4, Policy: graph.DropOldest},
	}, p, graph.Config{
		Recycle: pool.Put,
		Deliver: func(string, graph.Msg) { mu.Lock(); delivered++; mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	const N = 16
	for i := 0; i < N; i++ {
		if err := g.Submit(pool.Get(16, 16), nil, nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(releaseCh)
	}()
	g.Abandon()
	st := g.Stats()
	if st.Abandoned+st.Shed == 0 {
		t.Fatalf("abandon discarded nothing: %+v", st)
	}
	mu.Lock()
	mu.Unlock()
	if gets, puts := pool.Stats(); gets != puts {
		t.Fatalf("abandon leaked frames: %d gets, %d puts", gets, puts)
	}
	if err := g.Submit(nil, nil, nil); !errors.Is(err, graph.ErrClosed) {
		t.Fatalf("submit after abandon: %v, want ErrClosed", err)
	}
}

// TestPolicyStrings pins the wire names /statsz reports.
func TestPolicyStrings(t *testing.T) {
	for pol, want := range map[graph.Policy]string{
		graph.Block:      "block",
		graph.DropOldest: "drop-oldest",
		graph.Stride:     "stride",
		graph.Policy(42): "invalid",
	} {
		if got := pol.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(pol), got, want)
		}
	}
}

// TestConformanceIdentityNode runs the conformance kit against the simplest
// possible node — the kit's own self-test.
func TestConformanceIdentityNode(t *testing.T) {
	graphtest.Run(t, graphtest.Node{
		Name:   "identity",
		Proc:   passProc,
		Frames: true,
		Value:  func(i int) any { return i },
	})
}

// TestConcurrentSubmitClose hammers Submit from several goroutines while
// the graph closes underneath them: no panic, no leak, every accepted
// message terminal exactly once.
func TestConcurrentSubmitClose(t *testing.T) {
	p := newPool(t)
	var pool raster.Pool
	g, err := graph.Build(graph.Spec{
		Nodes:  []graph.NodeSpec{{Name: "a", Proc: passProc}},
		Ingest: graph.EdgeSpec{Cap: 2, Policy: graph.DropOldest},
	}, p, graph.Config{Recycle: pool.Put})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := pool.Get(8, 8)
				if err := g.Submit(f, nil, nil); err != nil {
					// Refused: ownership stays here.
					pool.Put(f)
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	g.Close()
	wg.Wait()
	if gets, puts := pool.Stats(); gets != puts {
		t.Fatalf("concurrent close leaked frames: %d gets, %d puts", gets, puts)
	}
	st := g.Stats()
	if st.Delivered+st.Shed+st.Abandoned != st.Submitted {
		t.Fatalf("terminal accounting off: %+v", st)
	}
}
