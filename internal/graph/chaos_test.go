package graph_test

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdc/internal/failpoint"
	"hdc/internal/graph"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// chaos_test.go extends the repo's randomized fault-injection suite to the
// graph runtime: a controller flips schedules on the graph failpoints (node
// dispatch, edge forward) and the pipeline worker while submitters drive
// pooled frames through three topology shapes — a chain, a fan-out, a
// strided edge — on one shared worker pool. The invariants, as in the
// server suite, are what must hold through arbitrary interleavings:
//
//  1. frame-pool balance: gets == puts once every graph is torn down, on
//     deliver, shed and abandon paths alike;
//  2. terminal accounting: delivered + shed + abandoned messages sum to
//     submissions × branches for every topology;
//  3. delivered verdicts are well-formed: nil or an explicitly injected
//     fault — never a corrupted error from a half-taken path.
//
// Seeds are logged for one-line replay. Failpoints are process-global, so
// nothing here runs in parallel and everything disarms on exit.

// graphChaosPoints are the schedules the controller draws from; error
// probabilities stay below 1 so traffic always progresses.
var graphChaosPoints = []struct {
	name  string
	specs []string
}{
	{failpoint.GraphDispatch, []string{"delay(1ms)", "25%error(injected dispatch fault)"}},
	{failpoint.GraphEdgeForward, []string{"30%error(injected forward fault)"}},
	{failpoint.PipelineWorker, []string{"delay(1ms)", "25%error(injected worker fault)"}},
}

// TestChaosGraphTopologies drives all three topology shapes concurrently
// under flipping graph/pipeline fault schedules, closes two gracefully and
// abandons the third mid-traffic, then asserts the balance invariants.
func TestChaosGraphTopologies(t *testing.T) {
	defer failpoint.DisableAll()
	seed := time.Now().UnixNano()
	t.Logf("chaos seed: %d", seed)

	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(rec, pipeline.Config{Workers: 6, QueueDepth: 4, StreamWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Shared counted frame pool: balance is checked once, after every
	// topology has drained.
	var frames raster.Pool
	var delivered, malformed atomic.Int64
	deliver := func(_ string, m graph.Msg) {
		delivered.Add(1)
		if m.Err != nil && !errors.Is(m.Err, failpoint.ErrInjected) {
			malformed.Add(1)
		}
	}
	cfg := graph.Config{Recycle: frames.Put, Deliver: deliver}

	type topology struct {
		spec     graph.Spec
		branches uint64
		abandon  bool
	}
	topologies := []topology{
		{spec: graph.Spec{
			Name: "chain",
			Nodes: []graph.NodeSpec{
				{Name: "a", Proc: passProc}, {Name: "b", Proc: passProc}, {Name: "c", Proc: passProc},
			},
			Edges: []graph.EdgeSpec{
				{From: "a", To: "b", Cap: 2}, {From: "b", To: "c", Cap: 2},
			},
			Ingest: graph.EdgeSpec{Cap: 4},
		}, branches: 1},
		{spec: graph.Spec{
			Name: "fanout",
			Nodes: []graph.NodeSpec{
				{Name: "root", Proc: passProc}, {Name: "left", Proc: passProc}, {Name: "right", Proc: passProc},
			},
			Edges: []graph.EdgeSpec{
				{From: "root", To: "left", Cap: 1, Policy: graph.DropOldest},
				{From: "root", To: "right", Cap: 1, Policy: graph.DropOldest},
			},
			Ingest: graph.EdgeSpec{Cap: 2, Policy: graph.DropOldest},
		}, branches: 2},
		{spec: graph.Spec{
			Name: "stride",
			Nodes: []graph.NodeSpec{
				{Name: "a", Proc: passProc}, {Name: "b", Proc: passProc},
			},
			Edges:  []graph.EdgeSpec{{From: "a", To: "b", Cap: 2, Policy: graph.Stride, K: 3}},
			Ingest: graph.EdgeSpec{Cap: 4},
		}, branches: 1, abandon: true},
	}

	graphs := make([]*graph.Graph, len(topologies))
	for i, tp := range topologies {
		g, err := graph.Build(tp.spec, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		graphs[i] = g
	}

	// Controller: arm/disarm random schedules until traffic stops.
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		defer failpoint.DisableAll()
		rng := rand.New(rand.NewSource(seed))
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(2+rng.Intn(10)) * time.Millisecond):
			}
			fp := graphChaosPoints[rng.Intn(len(graphChaosPoints))]
			if rng.Intn(3) == 0 {
				failpoint.Disable(fp.name)
				continue
			}
			_ = failpoint.Enable(fp.name, fp.specs[rng.Intn(len(fp.specs))])
		}
	}()

	// One submitter per topology; the abandoned topology's graph is torn
	// down from under its submitter mid-traffic.
	runFor := 1500 * time.Millisecond
	var trafficWG sync.WaitGroup
	for i, g := range graphs {
		trafficWG.Add(1)
		go func(i int, g *graph.Graph) {
			defer trafficWG.Done()
			until := time.Now().Add(runFor)
			for n := 0; time.Now().Before(until); n++ {
				f := frames.Get(32, 32)
				if err := g.Submit(f, n, nil); err != nil {
					// Refused submissions leave the frame with the caller.
					frames.Put(f)
					if !errors.Is(err, graph.ErrClosed) {
						t.Errorf("topology %d submit: %v", i, err)
					}
					return
				}
			}
		}(i, g)
	}
	if g := graphs[2]; true {
		time.Sleep(runFor / 2)
		g.Abandon()
	}
	trafficWG.Wait()
	close(stop)
	chaosWG.Wait()
	failpoint.DisableAll()

	for i, g := range graphs {
		if !topologies[i].abandon {
			g.Close()
		}
		// Each message terminates once per branch it reached: exactly
		// `branches` terminals after the fan-out point, one if it shed
		// before reaching it — so the sum is bounded by the two, and exact
		// on single-branch topologies.
		st := g.Stats()
		got := st.Delivered + st.Shed + st.Abandoned
		if lo, hi := st.Submitted, st.Submitted*topologies[i].branches; got < lo || got > hi {
			t.Errorf("%s: terminals %d outside [%d, %d] (submitted %d, %d branches)",
				st.Name, got, lo, hi, st.Submitted, topologies[i].branches)
		}
	}
	if gets, puts := frames.Stats(); gets != puts {
		t.Errorf("frame pool: %d gets vs %d puts across graph topologies", gets, puts)
	}
	if malformed.Load() != 0 {
		t.Errorf("%d of %d delivered verdicts malformed", malformed.Load(), delivered.Load())
	}
	if delivered.Load() == 0 {
		t.Error("no deliveries through the chaos window")
	}
	t.Logf("chaos graph: delivered=%d", delivered.Load())
}
