package graph

import (
	"context"
	"sync"
	"sync/atomic"

	"hdc/internal/failpoint"
)

// edge.go implements the bounded channel between two graph nodes. An edge
// is a fixed-capacity ring of Msg values with a pluggable shed policy: what
// happens when a producer pushes into a full edge is the edge's decision,
// not the graph's — that per-edge choice (block the producer, evict the
// oldest, or thin the stream by stride) is what keeps one slow node from
// dictating the whole graph's behaviour under load.
//
// Ownership rule: push either takes ownership of the message (queued, or
// shed-and-released inside the edge) or refuses it with an error and leaves
// ownership with the caller. There is no third state, which is what makes
// the frame-pool gets==puts invariant checkable across any topology.

// Policy selects an edge's behaviour when a message arrives.
type Policy int

// Built-in edge policies.
const (
	// Block applies back-pressure: a push into a full edge waits for space,
	// propagating stall upstream (ultimately to Graph.Submit).
	Block Policy = iota
	// DropOldest admits the new message by evicting and shedding the oldest
	// queued one — the camera-cadence policy: fresh frames beat stale ones.
	DropOldest
	// Stride keeps every K-th arriving message and sheds the rest (the
	// "keep every k-th frame" thinning policy); kept messages then behave
	// like Block. K=1 keeps everything.
	Stride
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case Stride:
		return "stride"
	default:
		return "invalid"
	}
}

// valid reports whether p is a built-in policy.
func (p Policy) valid() bool { return p >= Block && p <= Stride }

// edge is one bounded policy-bearing ring between two nodes (or between
// Graph.Submit and the root node, for the ingest edge).
type edge struct {
	g    *Graph
	from string // "" for the ingest edge
	to   string
	cap  int
	pol  Policy
	k    int // Stride modulus

	mu      sync.Mutex
	cond    *sync.Cond
	buf     []Msg
	head    int
	n       int
	closed  bool   // producer done: pops drain the queue then report false
	discard bool   // abandoned: pushes shed, pops report false immediately
	stride  uint64 // arrivals seen by the Stride policy

	arrived atomic.Uint64 // pushes attempted (including shed ones)
	shed    atomic.Uint64 // messages released by policy, failpoint or abandon
}

func newEdge(g *Graph, from, to string, spec EdgeSpec) *edge {
	e := &edge{g: g, from: from, to: to, cap: spec.Cap, pol: spec.Policy, k: spec.K}
	e.cond = sync.NewCond(&e.mu)
	e.buf = make([]Msg, e.cap)
	return e
}

// push offers m to the edge under its policy. On a nil return the edge owns
// m (queued, or already shed and released); ErrClosed leaves m with the
// caller. ctx bounds a Block wait; pass context.Background() for none.
func (e *edge) push(ctx context.Context, m Msg) error {
	e.arrived.Add(1)
	if err := failpoint.Inject(failpoint.GraphEdgeForward); err != nil {
		e.shedMsg(m)
		return nil
	}
	var stop func() bool
	if ctx.Done() != nil {
		// A cancelled context must wake a push parked on a full Block edge.
		stop = context.AfterFunc(ctx, func() {
			e.mu.Lock()
			e.cond.Broadcast()
			e.mu.Unlock()
		})
		defer stop()
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if e.discard {
		e.mu.Unlock()
		e.shedMsg(m)
		return nil
	}
	if e.pol == Stride {
		keep := e.stride%uint64(e.k) == 0
		e.stride++
		if !keep {
			e.mu.Unlock()
			e.shedMsg(m)
			return nil
		}
	}
	if e.pol == DropOldest {
		if e.n == e.cap {
			old := e.buf[e.head]
			e.buf[e.head] = Msg{}
			e.head = (e.head + 1) % e.cap
			e.n--
			e.append(m)
			e.cond.Broadcast()
			e.mu.Unlock()
			e.shedMsg(old)
			return nil
		}
		e.append(m)
		e.cond.Broadcast()
		e.mu.Unlock()
		return nil
	}
	// Block (and a Stride-kept message): wait for space.
	for e.n == e.cap && !e.discard && !e.closed && ctx.Err() == nil {
		e.cond.Wait()
	}
	switch {
	case e.closed:
		e.mu.Unlock()
		return ErrClosed
	case e.discard:
		e.mu.Unlock()
		e.shedMsg(m)
		return nil
	case ctx.Err() != nil:
		e.mu.Unlock()
		return ctx.Err()
	}
	e.append(m)
	e.cond.Broadcast()
	e.mu.Unlock()
	return nil
}

// append adds m to the ring. Caller holds e.mu with space available.
func (e *edge) append(m Msg) {
	e.buf[(e.head+e.n)%e.cap] = m
	e.n++
}

// pop blocks for the next message; false means the edge is drained and
// closed (or abandoned) and no further message will arrive.
func (e *edge) pop() (Msg, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.n == 0 && !e.closed && !e.discard {
		e.cond.Wait()
	}
	if e.discard || e.n == 0 {
		return Msg{}, false
	}
	m := e.buf[e.head]
	e.buf[e.head] = Msg{}
	e.head = (e.head + 1) % e.cap
	e.n--
	e.cond.Broadcast()
	return m, true
}

// close marks the producer side done: queued messages still drain.
func (e *edge) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// abandon discards the edge: queued messages are shed and released, parked
// pushes shed their message on wake, and pops report done.
func (e *edge) abandon() {
	e.mu.Lock()
	e.discard = true
	drained := make([]Msg, 0, e.n)
	for e.n > 0 {
		drained = append(drained, e.buf[e.head])
		e.buf[e.head] = Msg{}
		e.head = (e.head + 1) % e.cap
		e.n--
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	for _, m := range drained {
		e.shedMsg(m)
	}
}

// shedMsg accounts and releases one message the edge discarded.
func (e *edge) shedMsg(m Msg) {
	e.shed.Add(1)
	e.g.sheds.Add(1)
	e.g.notifyShed(m)
	e.g.release(m)
}

// EdgeStats is one edge's counter snapshot, exported via Graph.Stats. Shed
// and Arrived are monotone (they only grow for the life of the graph) and
// Shed never exceeds Arrived — the accounting invariant the conformance kit
// samples concurrently under load.
type EdgeStats struct {
	From   string `json:"from"` // "" for the ingest edge
	To     string `json:"to"`
	Cap    int    `json:"cap"`
	Policy string `json:"policy"`
	K      int    `json:"k,omitempty"` // Stride modulus
	// Arrived counts pushes attempted, Shed the messages the edge released
	// (policy eviction, stride thinning, injected faults, abandon); Depth
	// is the queue occupancy at snapshot time.
	Arrived uint64 `json:"arrived"`
	Shed    uint64 `json:"shed"`
	Depth   int    `json:"depth"`
}

// stats snapshots the edge's counters.
func (e *edge) stats() EdgeStats {
	e.mu.Lock()
	depth := e.n
	e.mu.Unlock()
	s := EdgeStats{
		From: e.from, To: e.to, Cap: e.cap, Policy: e.pol.String(),
		Arrived: e.arrived.Load(), Shed: e.shed.Load(), Depth: depth,
	}
	if e.pol == Stride {
		s.K = e.k
	}
	return s
}
