package graph

import (
	"sync/atomic"

	"hdc/internal/raster"
)

// msg.go defines the unit that travels along graph edges: a Msg is a value
// struct (copied freely between goroutines) wrapping an optional pooled
// frame, a node-transformed payload, and the shared release cell that makes
// the frame's recycle exactly-once no matter how many branches of a fan-out
// the message takes.

// Msg is one message flowing through a graph. Nodes receive it by pointer
// and transform Value in place; the runtime owns every other field.
type Msg struct {
	// Seq is the graph-assigned submission number, monotone per graph.
	// Deliveries at a sink arrive in strictly increasing Seq order (a
	// subsequence of the submitted Seqs — shed messages leave holes).
	Seq uint64
	// Frame is the message's pooled frame, nil for non-vision workloads.
	// It is recycled by the runtime exactly once when the message leaves
	// the graph on every path; in a fan-out topology sibling branches may
	// read it concurrently, so node procs must treat it as read-only.
	Frame *raster.Gray
	// Value is the payload a node transforms: the ingest value on entry,
	// each node's output downstream of it.
	Value any
	// Err is the message's failure verdict. A message with Err set skips
	// every remaining node stage and is delivered as an error result, the
	// same contract as an error StreamResult on a pipeline stream.
	Err error
	// Tag is opaque submitter context, carried untouched to delivery.
	Tag any

	cell *cell
}

// cell is the shared release state of one message across fan-out branches:
// refs counts the live copies (one per branch not yet delivered or shed),
// and the frame recycles exactly once, when the count reaches zero.
type cell struct {
	refs  atomic.Int32
	frame *raster.Gray
}

// release drops one branch's reference; the last release recycles the frame
// through the graph's Recycle hook.
func (g *Graph) release(m Msg) {
	if m.cell == nil {
		return
	}
	if m.cell.refs.Add(-1) == 0 {
		if m.cell.frame != nil && g.cfg.Recycle != nil {
			g.cfg.Recycle(m.cell.frame)
		}
	}
}

// retain adds n references before a fan-out distributes copies of m.
func (m Msg) retain(n int32) {
	if m.cell != nil && n > 0 {
		m.cell.refs.Add(n)
	}
}
