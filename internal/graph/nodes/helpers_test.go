package nodes

import (
	"context"
	"testing"

	"hdc/internal/graph"
	"hdc/internal/pipeline"
	"hdc/internal/recognizer"
)

// newTestPool starts a small shared worker pool for graph tests; its default
// recogniser carries no references because the value-only topologies never
// run recognition on it.
func newTestPool(t testing.TB) *pipeline.Pipeline {
	t.Helper()
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(rec, pipeline.Config{Workers: 4, QueueDepth: 8, StreamWindow: 6})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// buildSpec builds spec on p with no delivery hooks (tests drive the graph
// through Process, which routes past them).
func buildSpec(t testing.TB, spec graph.Spec, p *pipeline.Pipeline) (*graph.Graph, error) {
	t.Helper()
	return graph.Build(spec, p, graph.Config{})
}

// processValues pushes one value-only batch through g and returns the sink
// Values in input order, failing the test on any call or per-slot error.
func processValues[T any](t testing.TB, g *graph.Graph, vals []T) []any {
	t.Helper()
	in := make([]graph.Input, len(vals))
	for i, v := range vals {
		in[i] = graph.Input{Value: v}
	}
	out, err := g.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	res := make([]any, len(out))
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("slot %d: %v", i, o.Err)
		}
		res[i] = o.Value
	}
	return res
}
