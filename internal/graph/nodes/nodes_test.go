package nodes

import (
	"testing"

	"hdc/internal/geom"
	"hdc/internal/graph/graphtest"
	"hdc/internal/imu"
	"hdc/internal/ledring"
	"hdc/internal/recognizer"
	"hdc/internal/scene"

	"hdc/internal/flight"
)

// newRecognizer builds a calibrated sign recogniser (and the renderer that
// calibrated it) for the recognition node and the differential tests.
func newRecognizer(t testing.TB) (*recognizer.Recognizer, *scene.Renderer) {
	t.Helper()
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rend := scene.NewRenderer(scene.Config{Width: 128, Height: 128})
	if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
		t.Fatal(err)
	}
	return rec, rend
}

// ringFrame builds a decodable n-LED navigation ring: one red LED followed
// by a green one, the rest off, boundary at index i.
func ringFrame(n, i int) []ledring.Color {
	leds := make([]ledring.Color, n)
	leds[(i+n-1)%n] = ledring.Red
	leds[i%n] = ledring.Green
	return leds
}

// uniformFrame builds a whole-ring pulse frame of one colour.
func uniformFrame(n int, c ledring.Color) []ledring.Color {
	leds := make([]ledring.Color, n)
	for i := range leds {
		leds[i] = c
	}
	return leds
}

// hoverWindow builds a steady-hover IMU window of n samples.
func hoverWindow(n int) IMUWindow {
	w := make(IMUWindow, n)
	for i := range w {
		w[i] = imu.Sample{
			Accel:    geom.V3(0, 0, imu.Gravity),
			BaroAltM: 5,
		}
	}
	return w
}

// cruiseTrajectory builds a straight constant-altitude run of n samples.
func cruiseTrajectory(n int) flight.Trajectory {
	tr := make(flight.Trajectory, n)
	for i := range tr {
		tr[i] = flight.Sample{
			T:       float64(i) * 0.5,
			Pos:     geom.V3(float64(i)*0.8, 0, 5),
			Heading: geom.NewHeading(0),
		}
	}
	return tr
}

// TestNodeConformanceRecognize runs the conformance kit over the sign
// recognition node (the kit's blank frames yield ErrNoSign verdicts, which
// conformance treats as deliveries like any other).
func TestNodeConformanceRecognize(t *testing.T) {
	rec, _ := newRecognizer(t)
	graphtest.Run(t, graphtest.Node{
		Name:   "classify",
		Proc:   Recognize(rec),
		Frames: true,
	})
}

// TestNodeConformanceGestureFeatures runs the kit over the per-frame
// gesture feature node.
func TestNodeConformanceGestureFeatures(t *testing.T) {
	graphtest.Run(t, graphtest.Node{
		Name:   "features",
		Proc:   GestureFeatures(),
		Frames: true,
	})
}

// TestNodeConformanceLedringDecode runs the kit over the LED-ring decode
// node with decodable rings of rotating boundary positions.
func TestNodeConformanceLedringDecode(t *testing.T) {
	graphtest.Run(t, graphtest.Node{
		Name:  "decode",
		Proc:  LedringDecode(),
		Value: func(i int) any { return LedringInput{Frames: [][]ledring.Color{ringFrame(12, i)}} },
	})
}

// TestNodeConformanceLedringPulse runs the kit over the pulse node, feeding
// it the decode node's carry as it would arrive mid-chain.
func TestNodeConformanceLedringPulse(t *testing.T) {
	graphtest.Run(t, graphtest.Node{
		Name: "pulse",
		Proc: LedringPulse(),
		Value: func(i int) any {
			in := LedringInput{Frames: [][]ledring.Color{
				uniformFrame(12, ledring.Green),
				uniformFrame(12, ledring.White),
			}}
			return ledringCarry{in: in, rd: &LedringReading{}}
		},
	})
}

// TestNodeConformanceIMUDetect runs the kit over the IMU motion node with
// steady-hover windows.
func TestNodeConformanceIMUDetect(t *testing.T) {
	graphtest.Run(t, graphtest.Node{
		Name:  "detect",
		Proc:  IMUDetect(),
		Value: func(i int) any { return hoverWindow(32 + i%8) },
	})
}

// TestNodeConformanceFlightClassify runs the kit over the flight-pattern
// node with cruise trajectories.
func TestNodeConformanceFlightClassify(t *testing.T) {
	graphtest.Run(t, graphtest.Node{
		Name:  "classify",
		Proc:  FlightClassify(),
		Value: func(i int) any { return cruiseTrajectory(16 + i%8) },
	})
}

// TestLedringGraphReading drives the full two-node ledring topology and
// checks the assembled reading against direct package calls.
func TestLedringGraphReading(t *testing.T) {
	p := newTestPool(t)
	g, err := buildSpec(t, LedringSpec(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	nav := ringFrame(12, 3)
	wantHeading, err := ledring.DecodeHeading(nav)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []LedringInput{
		{Frames: [][]ledring.Color{nav}},
		{Frames: [][]ledring.Color{uniformFrame(8, ledring.Red)}},
		{Frames: [][]ledring.Color{uniformFrame(8, ledring.Green), uniformFrame(8, ledring.White)}},
	}
	out := processValues(t, g, inputs)

	rd := out[0].(*LedringReading)
	if rd.HeadingErr != "" || rd.Heading != wantHeading || rd.Danger || rd.Pulse != ledring.PulseNone {
		t.Fatalf("nav ring reading: %+v", rd)
	}
	if rd.QuantErrDeg != ledring.HeadingQuantizationErrorDeg(12) {
		t.Fatalf("quantisation error %v", rd.QuantErrDeg)
	}
	rd = out[1].(*LedringReading)
	if !rd.Danger || rd.HeadingErr == "" {
		t.Fatalf("danger ring reading: %+v", rd)
	}
	rd = out[2].(*LedringReading)
	if rd.PulseErr != "" || rd.Pulse != ledring.PulseTakeOff {
		t.Fatalf("pulse ring reading: %+v", rd)
	}
}

// TestIMUGraphReading drives the imu topology over a hover window.
func TestIMUGraphReading(t *testing.T) {
	p := newTestPool(t)
	g, err := buildSpec(t, IMUSpec(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	out := processValues(t, g, []IMUWindow{hoverWindow(64)})
	rd := out[0].(IMUReading)
	if rd.Samples != 64 || rd.FinalLabel != rd.Final.String() || rd.Transitions == 0 {
		t.Fatalf("imu reading: %+v", rd)
	}
}

// TestFlightGraphReading drives the flight topology over known patterns.
func TestFlightGraphReading(t *testing.T) {
	p := newTestPool(t)
	g, err := buildSpec(t, FlightSpec(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	tr := cruiseTrajectory(16)
	wantP, wantF, err := flight.Classify(tr)
	if err != nil {
		t.Fatal(err)
	}
	out := processValues(t, g, []flight.Trajectory{tr})
	rd := out[0].(FlightReading)
	if rd.Pattern != wantP || rd.Label != wantP.String() || rd.Features != wantF {
		t.Fatalf("flight reading: %+v, want pattern %v features %+v", rd, wantP, wantF)
	}
}
