package nodes

import (
	"context"
	"sync"
	"testing"

	"hdc/internal/body"
	"hdc/internal/graph"
	"hdc/internal/ledring"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/scene"
)

// benchFrames renders one batch of sign frames at varied azimuths, the same
// shape BenchmarkPipelineBatch pushes through the legacy batch path.
func benchFrames(b *testing.B, rend *scene.Renderer, n int) []*raster.Gray {
	b.Helper()
	signs := body.AllSigns()
	frames := make([]*raster.Gray, n)
	for i := range frames {
		v := scene.ReferenceView()
		v.AzimuthDeg = float64((i * 4) % 30)
		f, err := rend.Render(signs[i%len(signs)], v, body.Options{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		frames[i] = f
	}
	return frames
}

// BenchmarkGraphRecognize is the graph counterpart of the legacy batch
// benchmark: one 16-frame batch per iteration through the recognition
// topology. Against BenchmarkPipelineThroughput/BenchmarkServerBatch it
// prices the graph runtime's overhead (edge hops, slab transport, delivery
// routing) over the same recognition work — E25's first column.
func BenchmarkGraphRecognize(b *testing.B) {
	rec, rend := newRecognizer(b)
	p, err := pipeline.New(rec, pipeline.Config{Workers: 4, QueueDepth: 8, StreamWindow: 6})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	g, err := graph.Build(RecognizeSpec(rec), p, graph.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()

	const batch = 16
	frames := benchFrames(b, rend, batch)
	in := make([]graph.Input, batch)
	for i, f := range frames {
		in[i] = graph.Input{Frame: f}
	}
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := g.Process(ctx, in)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != batch {
			b.Fatalf("delivered %d of %d", len(out), batch)
		}
	}
}

// BenchmarkGraphMixedWorkload runs all four served topologies — sign
// recognition, LED-ring decoding, IMU motion detection, flight-pattern
// classification — concurrently on ONE shared worker pool, one batch each
// per iteration: E25's consolidation column, the scenario the graph layer
// exists for (heterogeneous workloads sharing recognition capacity instead
// of each owning a thread pool).
func BenchmarkGraphMixedWorkload(b *testing.B) {
	rec, rend := newRecognizer(b)
	p, err := pipeline.New(rec, pipeline.Config{Workers: 4, QueueDepth: 8, StreamWindow: 6})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()

	graphs := make([]*graph.Graph, 0, 4)
	for _, spec := range []graph.Spec{RecognizeSpec(rec), LedringSpec(), IMUSpec(), FlightSpec()} {
		g, err := graph.Build(spec, p, graph.Config{})
		if err != nil {
			b.Fatal(err)
		}
		defer g.Close()
		graphs = append(graphs, g)
	}

	const batch = 8
	frames := benchFrames(b, rend, batch)
	batches := make([][]graph.Input, 4)
	for i := 0; i < batch; i++ {
		batches[0] = append(batches[0], graph.Input{Frame: frames[i]})
		batches[1] = append(batches[1], graph.Input{Value: LedringInput{
			Frames: [][]ledring.Color{ringFrame(12, i)},
		}})
		batches[2] = append(batches[2], graph.Input{Value: hoverWindow(64)})
		batches[3] = append(batches[3], graph.Input{Value: cruiseTrajectory(32)})
	}
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, len(graphs))
		for j, g := range graphs {
			wg.Add(1)
			go func(j int, g *graph.Graph) {
				defer wg.Done()
				_, errs[j] = g.Process(ctx, batches[j])
			}(j, g)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
