// Package nodes is the in-tree graph node library: the repo's perception
// and telemetry workloads — sign recognition, gesture feature extraction,
// LED-ring protocol decoding, IMU motion detection, flight-pattern
// classification — packaged as graph.Proc stages plus ready-made topologies
// (the *Spec constructors), so a service can run any mix of them on one
// shared worker pool and serve them over the /v1/graph endpoints.
//
// Every node here passes the graphtest conformance kit under -race (see
// nodes_test.go), and the vision nodes are pinned byte-identical to the
// legacy NewProcStream paths by the differential tests in diff_test.go:
// recognition runs the same RecognizeWith call the pool's default stream
// runs, and gesture features run the same ExtractFrame the gesture
// recogniser's proc stream runs.
package nodes

import (
	"context"
	"errors"
	"fmt"

	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/gesture"
	"hdc/internal/graph"
	"hdc/internal/imu"
	"hdc/internal/ledring"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/timeseries"
)

// Recognize returns the sign-recognition node: the same RecognizeWith call
// a default pool stream makes, so results are bit-identical to the legacy
// path. The message's Value becomes the recognizer.Result; a recognition
// failure (ErrNoSign, vision errors) becomes the message's Err with the
// diagnostic Result still attached — exactly a StreamResult's shape.
func Recognize(rec *recognizer.Recognizer) graph.Proc {
	return func(sc *recognizer.Scratch, m *graph.Msg) error {
		res, err := rec.RecognizeWith(sc, m.Frame)
		m.Value = res
		return err
	}
}

// RecognizeSpec is the served recognition topology: a single classify node.
func RecognizeSpec(rec *recognizer.Recognizer) graph.Spec {
	return graph.Spec{
		Name:   "recognize",
		Nodes:  []graph.NodeSpec{{Name: "classify", Proc: Recognize(rec)}},
		Ingest: graph.EdgeSpec{Cap: 8},
	}
}

// GestureFeatures returns the per-frame gesture feature node: the same
// pooled-scratch ExtractFrame stage ClassifyFrames runs, producing
// bit-identical gesture.Features. The frame's Value becomes the Features.
func GestureFeatures() graph.Proc {
	return func(sc *recognizer.Scratch, m *graph.Msg) error {
		f, err := gesture.ExtractFrame(sc.Vision(), m.Frame)
		if err != nil {
			return err
		}
		m.Value = f
		return nil
	}
}

// GestureSpec is the served gesture topology: a single features node; the
// window-level classification runs at the collection point (see
// ClassifyGestureWindow), just as ClassifyFrames classifies after its
// stream drains.
func GestureSpec() graph.Spec {
	return graph.Spec{
		Name:   "gesture",
		Nodes:  []graph.NodeSpec{{Name: "features", Proc: GestureFeatures()}},
		Ingest: graph.EdgeSpec{Cap: 8},
	}
}

// ClassifyGestureWindow pushes one observation window through g — a graph
// built from GestureSpec — and classifies the resulting feature series with
// r: the graph counterpart of gesture.Recognizer.ClassifyFrames, matching
// it result-for-result. Frames the graph accepts recycle through the
// graph's Recycle hook; onFrame (optional) receives only frames the call
// never submitted (the short-window refusal), mirroring ClassifyFrames'
// every-frame-back-exactly-once contract when both hooks recycle to the
// same pool. A per-frame extraction error fails the window with the first
// error in frame order.
func ClassifyGestureWindow(ctx context.Context, g *graph.Graph, r *gesture.Recognizer, frames []*raster.Gray, onFrame func(*raster.Gray)) (gesture.Match, error) {
	if len(frames) < r.MinWindow() {
		if onFrame != nil {
			for _, f := range frames {
				onFrame(f)
			}
		}
		return gesture.Match{}, fmt.Errorf("%w: %d frames, need %d", gesture.ErrShortWindow, len(frames), r.MinWindow())
	}
	in := make([]graph.Input, len(frames))
	for i, f := range frames {
		in[i] = graph.Input{Frame: f}
	}
	out, err := g.Process(ctx, in)
	if err != nil {
		return gesture.Match{}, err
	}
	topX := make(timeseries.Series, len(out))
	topY := make(timeseries.Series, len(out))
	for i, o := range out {
		if o.Err != nil {
			return gesture.Match{}, o.Err
		}
		f := o.Value.(gesture.Features)
		topX[i] = f.CenX
		topY[i] = f.Aspect
	}
	return r.Classify(topX, topY)
}

// LedringInput is one LED-ring observation offered to the ledring graph:
// one or more whole-ring frames (successive ticks of the same ring). The
// first frame is decoded for heading and danger; the first two classify
// the pulse, when present.
type LedringInput struct {
	Frames [][]ledring.Color
}

// LedringReading is the decoded answer of the ledring graph. Decode
// failures are per-field (a danger ring legitimately has no heading
// boundary), so one bad field does not void the others.
type LedringReading struct {
	// Heading is the decoded red→green boundary direction; valid only when
	// HeadingErr is empty.
	Heading geom.Heading
	// HeadingErr is the decode failure, "" on success.
	HeadingErr string
	// QuantErrDeg is the worst-case quantisation error for the ring's LED
	// count.
	QuantErrDeg float64
	// Danger reports the all-red danger display.
	Danger bool
	// Pulse is the classified two-frame pulse (PulseNone with one frame);
	// valid only when PulseErr is empty.
	Pulse ledring.Pulse
	// PulseErr is the pulse-classification failure, "" when absent or
	// classified.
	PulseErr string
}

// ledringCarry threads the input alongside the partially built reading
// between the decode and pulse nodes.
type ledringCarry struct {
	in LedringInput
	rd *LedringReading
}

// LedringDecode returns the heading/danger decode node: Value goes from
// LedringInput to the carry the pulse node completes. An input with no
// frames is a stage error.
func LedringDecode() graph.Proc {
	return func(_ *recognizer.Scratch, m *graph.Msg) error {
		in, ok := m.Value.(LedringInput)
		if !ok {
			return fmt.Errorf("ledring node: payload is %T, want LedringInput", m.Value)
		}
		if len(in.Frames) == 0 {
			return errors.New("ledring node: no frames")
		}
		rd := &LedringReading{
			QuantErrDeg: ledring.HeadingQuantizationErrorDeg(len(in.Frames[0])),
			Danger:      ledring.IsDanger(in.Frames[0]),
		}
		h, err := ledring.DecodeHeading(in.Frames[0])
		if err != nil {
			rd.HeadingErr = err.Error()
		} else {
			rd.Heading = h
		}
		m.Value = ledringCarry{in: in, rd: rd}
		return nil
	}
}

// LedringPulse returns the pulse-classification node, the ledring chain's
// sink: with two or more frames it classifies the pulse pair, and the
// Value becomes the finished *LedringReading.
func LedringPulse() graph.Proc {
	return func(_ *recognizer.Scratch, m *graph.Msg) error {
		c, ok := m.Value.(ledringCarry)
		if !ok {
			return fmt.Errorf("ledring pulse node: payload is %T, want the decode node's carry", m.Value)
		}
		if len(c.in.Frames) >= 2 {
			p, err := ledring.ClassifyPulse(c.in.Frames[0], c.in.Frames[1])
			if err != nil {
				c.rd.PulseErr = err.Error()
			} else {
				c.rd.Pulse = p
			}
		}
		m.Value = c.rd
		return nil
	}
}

// LedringSpec is the served LED-ring topology: decode → pulse.
func LedringSpec() graph.Spec {
	return graph.Spec{
		Name: "ledring",
		Nodes: []graph.NodeSpec{
			{Name: "decode", Proc: LedringDecode()},
			{Name: "pulse", Proc: LedringPulse()},
		},
		Edges:  []graph.EdgeSpec{{From: "decode", To: "pulse", Cap: 4}},
		Ingest: graph.EdgeSpec{Cap: 8},
	}
}

// IMUWindow is one window of IMU samples offered to the imu graph.
type IMUWindow []imu.Sample

// IMUReading summarises a window: the detector's final state, its label,
// and how many state transitions the window contained.
type IMUReading struct {
	Final       imu.MotionState
	FinalLabel  string
	Transitions int
	Samples     int
}

// IMUDetect returns the motion-detection node: each window runs through a
// fresh imu.Detector (the detector is stateful, so per-message isolation is
// what makes the node safe to run concurrently), and Value becomes the
// IMUReading. An empty window is a stage error.
func IMUDetect() graph.Proc {
	return func(_ *recognizer.Scratch, m *graph.Msg) error {
		w, ok := m.Value.(IMUWindow)
		if !ok {
			return fmt.Errorf("imu node: payload is %T, want IMUWindow", m.Value)
		}
		if len(w) == 0 {
			return errors.New("imu node: empty window")
		}
		d := imu.NewDetector()
		var rd IMUReading
		prev := imu.StateUnknown
		for _, s := range w {
			st := d.Push(s)
			if st != prev {
				rd.Transitions++
				prev = st
			}
			rd.Final = st
		}
		rd.FinalLabel = rd.Final.String()
		rd.Samples = len(w)
		m.Value = rd
		return nil
	}
}

// IMUSpec is the served IMU topology: a single detect node.
func IMUSpec() graph.Spec {
	return graph.Spec{
		Name:   "imu",
		Nodes:  []graph.NodeSpec{{Name: "detect", Proc: IMUDetect()}},
		Ingest: graph.EdgeSpec{Cap: 8},
	}
}

// FlightReading is the flight graph's answer: the classified pattern and
// the observer features it was read from.
type FlightReading struct {
	Pattern  flight.Pattern
	Label    string
	Features flight.Features
}

// FlightClassify returns the flight-pattern node: Value goes from a
// flight.Trajectory to a FlightReading. Too-short and unmatchable
// trajectories are stage errors, as flight.Classify reports them.
func FlightClassify() graph.Proc {
	return func(_ *recognizer.Scratch, m *graph.Msg) error {
		tr, ok := m.Value.(flight.Trajectory)
		if !ok {
			return fmt.Errorf("flight node: payload is %T, want flight.Trajectory", m.Value)
		}
		p, feats, err := flight.Classify(tr)
		if err != nil {
			return err
		}
		m.Value = FlightReading{Pattern: p, Label: p.String(), Features: feats}
		return nil
	}
}

// FlightSpec is the served flight-pattern topology: a single classify node.
func FlightSpec() graph.Spec {
	return graph.Spec{
		Name:   "flight",
		Nodes:  []graph.NodeSpec{{Name: "classify", Proc: FlightClassify()}},
		Ingest: graph.EdgeSpec{Cap: 8},
	}
}
