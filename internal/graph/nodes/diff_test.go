package nodes

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"hdc/internal/body"
	"hdc/internal/gesture"
	"hdc/internal/graph"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/sax"
	"hdc/internal/scene"
)

// diff_test.go pins the graph-served vision paths byte-identical to the
// legacy stream paths: the recognition graph against the pool's default
// stream, and the gesture graph against ClassifyFrames. Inputs are
// randomised with a logged seed, and float fields are compared down to
// their Float64bits — any divergence between the two code paths, however
// small, is a failure.

// newSeededRNG logs the run's seed so a differential failure reproduces.
func newSeededRNG(t *testing.T) *rand.Rand {
	t.Helper()
	seed := time.Now().UnixNano()
	t.Logf("differential seed: %d", seed)
	return rand.New(rand.NewSource(seed))
}

// sameBits reports bit-identity of two floats (NaNs of equal pattern
// included — the point is "same code path", not numeric closeness).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// sameMatch compares every sax.Match field, distances at bit level.
func sameMatch(a, b sax.Match) bool {
	return a.Label == b.Label && a.Word == b.Word && a.Shift == b.Shift &&
		a.Mirrored == b.Mirrored && sameBits(a.Dist, b.Dist) && sameBits(a.WordDist, b.WordDist)
}

// checkSameResult fails the test unless a and b are byte-identical on every
// field except Timings (wall-clock, legitimately differs between runs).
func checkSameResult(t *testing.T, i int, a, b recognizer.Result) {
	t.Helper()
	if a.OK != b.OK || a.Sign != b.Sign || a.Label != b.Label || a.Area != b.Area {
		t.Fatalf("frame %d: identity fields diverge:\nstream: %+v\ngraph:  %+v", i, a, b)
	}
	if !sameMatch(a.Match, b.Match) || !sameMatch(a.RunnerUp, b.RunnerUp) {
		t.Fatalf("frame %d: matches diverge:\nstream: %+v / %+v\ngraph:  %+v / %+v",
			i, a.Match, a.RunnerUp, b.Match, b.RunnerUp)
	}
	if !sameBits(a.Margin, b.Margin) || !sameBits(a.Confidence, b.Confidence) {
		t.Fatalf("frame %d: margin/confidence diverge: (%x,%x) vs (%x,%x)", i,
			math.Float64bits(a.Margin), math.Float64bits(a.Confidence),
			math.Float64bits(b.Margin), math.Float64bits(b.Confidence))
	}
	if len(a.Signature) != len(b.Signature) {
		t.Fatalf("frame %d: signature lengths %d vs %d", i, len(a.Signature), len(b.Signature))
	}
	for j := range a.Signature {
		if !sameBits(a.Signature[j], b.Signature[j]) {
			t.Fatalf("frame %d: signature[%d] %x vs %x", i, j,
				math.Float64bits(a.Signature[j]), math.Float64bits(b.Signature[j]))
		}
	}
}

// checkSameError fails unless both paths failed identically (or neither
// did): same nil-ness, same message, same ErrNoSign classification.
func checkSameError(t *testing.T, i int, a, b error) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("frame %d: error parity broken: stream %v, graph %v", i, a, b)
	}
	if a == nil {
		return
	}
	if a.Error() != b.Error() || errors.Is(a, recognizer.ErrNoSign) != errors.Is(b, recognizer.ErrNoSign) {
		t.Fatalf("frame %d: errors diverge: stream %q, graph %q", i, a, b)
	}
}

// renderRandomFrames renders n frames: random signs at random azimuths in
// the calibrated range, with every seventh frame blank so the ErrNoSign
// path stays under differential coverage too.
func renderRandomFrames(t *testing.T, rend *scene.Renderer, rng *rand.Rand, n int) []*raster.Gray {
	t.Helper()
	signs := body.AllSigns()
	frames := make([]*raster.Gray, n)
	for i := range frames {
		if i%7 == 6 {
			f, err := raster.NewGray(128, 128)
			if err != nil {
				t.Fatal(err)
			}
			frames[i] = f
			continue
		}
		v := scene.ReferenceView()
		v.AzimuthDeg = rng.Float64() * 30
		f, err := rend.Render(signs[rng.Intn(len(signs))], v, body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	return frames
}

// TestGraphRecognitionMatchesStreamPath is the recognition differential:
// the same frames through the pool's default stream and through the
// recognition graph on the same pool must produce byte-identical Results
// and identical errors, frame for frame.
func TestGraphRecognitionMatchesStreamPath(t *testing.T) {
	rng := newSeededRNG(t)
	rec, rend := newRecognizer(t)
	p, err := pipeline.New(rec, pipeline.Config{Workers: 4, QueueDepth: 8, StreamWindow: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const N = 28
	frames := renderRandomFrames(t, rend, rng, N)

	// Legacy path: the pool's default recognition stream.
	st, err := p.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]pipeline.StreamResult, 0, N)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range st.Results() {
			want = append(want, r)
		}
	}()
	for i, f := range frames {
		if err := st.Submit(f); err != nil {
			t.Errorf("stream submit %d: %v", i, err)
			break
		}
	}
	st.Close()
	<-done
	if len(want) != N {
		t.Fatalf("stream path delivered %d of %d results", len(want), N)
	}

	// Graph path: the same frames through the recognition topology on the
	// same pool. Streams do not consume frames, so reuse is safe; Process
	// takes ownership but these frames are unpooled (no Recycle hook).
	g, err := graph.Build(RecognizeSpec(rec), p, graph.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	in := make([]graph.Input, N)
	for i, f := range frames {
		in[i] = graph.Input{Frame: f}
	}
	out, err := g.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	for i := range out {
		checkSameError(t, i, want[i].Err, out[i].Err)
		checkSameResult(t, i, want[i].Res, out[i].Value.(recognizer.Result))
	}
}

// TestGraphGestureMatchesClassifyFrames is the gesture differential: a
// rendered observation window classified by ClassifyFrames (the legacy
// NewProcStream path) and by ClassifyGestureWindow over the gesture graph
// must agree to the bit on the match, for every gesture at a random phase.
func TestGraphGestureMatchesClassifyFrames(t *testing.T) {
	rng := newSeededRNG(t)
	rend := scene.NewRenderer(scene.Config{})
	r, err := gesture.NewRecognizer(gesture.Config{}, rend, scene.ReferenceView())
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPool(t)
	g, err := buildSpec(t, GestureSpec(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	for _, gest := range gesture.Gestures() {
		phase0 := rng.Float64()
		n := r.MinWindow() + rng.Intn(r.MinWindow())
		frames := make([]*raster.Gray, n)
		for i := range frames {
			fig, err := gesture.FigureAt(gest, phase0+float64(i)/float64(r.MinWindow()), body.Options{})
			if err != nil {
				t.Fatal(err)
			}
			f, err := rend.RenderFigure(fig, scene.ReferenceView(), nil)
			if err != nil {
				t.Fatal(err)
			}
			frames[i] = f
		}

		want, wantErr := r.ClassifyFrames(p, frames, nil)
		got, gotErr := ClassifyGestureWindow(context.Background(), g, r, frames, nil)
		if (wantErr == nil) != (gotErr == nil) ||
			(wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("%v phase %v: error parity broken: stream %v, graph %v", gest, phase0, wantErr, gotErr)
		}
		if want.Gesture != got.Gesture || want.Shift != got.Shift || !sameBits(want.Dist, got.Dist) {
			t.Fatalf("%v phase %v: matches diverge: stream %+v, graph %+v", gest, phase0, want, got)
		}
	}

	// Short-window parity: both paths refuse with the same wrapped error.
	short := make([]*raster.Gray, r.MinWindow()-1)
	for i := range short {
		f, err := raster.NewGray(64, 64)
		if err != nil {
			t.Fatal(err)
		}
		short[i] = f
	}
	_, wantErr := r.ClassifyFrames(p, short, nil)
	_, gotErr := ClassifyGestureWindow(context.Background(), g, r, short, nil)
	if !errors.Is(wantErr, gesture.ErrShortWindow) || !errors.Is(gotErr, gesture.ErrShortWindow) ||
		wantErr.Error() != gotErr.Error() {
		t.Fatalf("short window: stream %v, graph %v", wantErr, gotErr)
	}
}
