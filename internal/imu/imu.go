// Package imu simulates the inertial sensor the paper's §II leaves as open
// work ("the integration of an appropriate sensor like an IMU to indicate
// actual flight is yet to be discussed"): a noisy accelerometer/gyro driven
// by the simulated airframe state, plus a motion detector that classifies
// the drone's gross state (grounded / hover / climb / descent / translate)
// from sensor data alone — the signal the all-round light needs so it shows
// *actual* flight, not commanded flight.
package imu

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"hdc/internal/flight"
	"hdc/internal/geom"
)

// Gravity is standard gravity (m/s²).
const Gravity = 9.80665

// Sample is one IMU reading (accelerometer + gyro + barometric altimeter —
// the standard flight-controller sensor stack).
type Sample struct {
	T time.Duration
	// Accel is the specific force in the world frame (m/s²): at rest or in
	// steady hover it reads (0, 0, +g).
	Accel geom.Vec3
	// GyroZ is the yaw rate (rad/s).
	GyroZ float64
	// BaroAltM is the barometric altitude (m, noisy). Steady climb/descent
	// is invisible to an accelerometer (zero acceleration), so vertical
	// state comes from here.
	BaroAltM float64
}

// Config sets the sensor error model.
type Config struct {
	// AccelNoise is the white-noise σ on each accel axis (default 0.08 m/s²).
	AccelNoise float64
	// GyroNoise is the white-noise σ on the yaw rate (default 0.01 rad/s).
	GyroNoise float64
	// AccelBias is the (constant, per-sensor) accel bias magnitude drawn at
	// construction (default 0.05 m/s²).
	AccelBias float64
	// RotorVibration is extra accel noise while rotors run (default 0.5
	// m/s²) — the signature that separates "parked" from "hovering".
	RotorVibration float64
	// BaroNoise is the altimeter white-noise σ (default 0.12 m).
	BaroNoise float64
}

func (c Config) withDefaults() Config {
	if c.AccelNoise == 0 {
		c.AccelNoise = 0.08
	}
	if c.GyroNoise == 0 {
		c.GyroNoise = 0.01
	}
	if c.AccelBias == 0 {
		c.AccelBias = 0.05
	}
	if c.RotorVibration == 0 {
		c.RotorVibration = 0.5
	}
	if c.BaroNoise == 0 {
		c.BaroNoise = 0.12
	}
	return c
}

// IMU produces samples from airframe state transitions.
type IMU struct {
	cfg  Config
	rng  *rand.Rand
	bias geom.Vec3

	prevVel     geom.Vec3
	prevHeading geom.Heading
	primed      bool
	t           time.Duration
}

// New builds an IMU with a randomly drawn constant bias.
func New(cfg Config, rng *rand.Rand) (*IMU, error) {
	if rng == nil {
		return nil, errors.New("imu: nil rng")
	}
	cfg = cfg.withDefaults()
	dir := geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Unit()
	return &IMU{
		cfg:  cfg,
		rng:  rng,
		bias: dir.Scale(cfg.AccelBias),
	}, nil
}

// Sample advances the sensor by dt given the true airframe state. rotorsOn
// switches the vibration signature.
func (i *IMU) Sample(dt float64, s flight.State, rotorsOn bool) Sample {
	i.t += time.Duration(dt * float64(time.Second))
	var accel geom.Vec3
	var gyro float64
	if i.primed && dt > 0 {
		accel = s.Vel.Sub(i.prevVel).Scale(1 / dt)
		gyro = i.prevHeading.Diff(s.Heading) / dt
	}
	i.prevVel = s.Vel
	i.prevHeading = s.Heading
	i.primed = true

	// Specific force: acceleration minus gravity (gravity points -Z, so the
	// supporting force reads +g on Z).
	sf := accel.Add(geom.V3(0, 0, Gravity))
	noise := i.cfg.AccelNoise
	if rotorsOn {
		noise = math.Hypot(noise, i.cfg.RotorVibration)
	}
	sf = sf.Add(i.bias).Add(geom.V3(
		i.rng.NormFloat64()*noise,
		i.rng.NormFloat64()*noise,
		i.rng.NormFloat64()*noise,
	))
	return Sample{
		T:        i.t,
		Accel:    sf,
		GyroZ:    gyro + i.rng.NormFloat64()*i.cfg.GyroNoise,
		BaroAltM: s.Pos.Z + i.rng.NormFloat64()*i.cfg.BaroNoise,
	}
}

// MotionState is the detector's classification.
type MotionState int

// Gross motion states, from sensor data alone.
const (
	StateUnknown MotionState = iota
	StateGrounded
	StateHover
	StateClimb
	StateDescent
	StateTranslate
)

// String implements fmt.Stringer.
func (m MotionState) String() string {
	switch m {
	case StateGrounded:
		return "grounded"
	case StateHover:
		return "hover"
	case StateClimb:
		return "climb"
	case StateDescent:
		return "descent"
	case StateTranslate:
		return "translate"
	default:
		return "unknown"
	}
}

// Detector classifies motion from a sliding window of IMU samples by
// integrating de-gravitied specific force (with decay, so bias does not run
// away) and reading the vibration level.
type Detector struct {
	// VibrationFloor separates rotors-off from rotors-on (default 0.25
	// m/s² std of the accel norm).
	VibrationFloor float64
	// SpeedFloor is the velocity magnitude below which the drone counts as
	// stationary (default 0.35 m/s).
	SpeedFloor float64
	// Decay is the per-second leak of the velocity integrator (default
	// 0.25), bounding bias-driven drift while keeping sustained cruise
	// visible for ~10 s.
	Decay float64

	vel       geom.Vec3
	noise     float64 // EW std of accel magnitude around g
	altFast   float64 // EW altitude, fast time constant
	altSlow   float64 // EW altitude, slow time constant
	baroReady bool
	primed    bool
	lastT     time.Duration
}

// Baro filter time constants: for a steady ramp input the exponential
// filters lag by rate×τ, so the vertical rate estimate is
// (fast − slow)/(τslow − τfast) with noise suppressed by both filters.
const (
	baroTauFast = 0.2 // seconds
	baroTauSlow = 1.0 // seconds
)

// NewDetector returns a detector with calibrated defaults.
func NewDetector() *Detector {
	return &Detector{VibrationFloor: 0.25, SpeedFloor: 0.35, Decay: 0.25}
}

// Push feeds one sample and returns the current classification. Horizontal
// motion comes from the leaky accel integral (an IMU cannot see steady
// velocity, so sustained cruise decays towards "hover" — physically
// honest); vertical motion comes from the filtered barometric rate, which
// does track steady climb/descent.
func (d *Detector) Push(s Sample) MotionState {
	var dt float64
	if d.primed {
		dt = (s.T - d.lastT).Seconds()
	}
	d.lastT = s.T
	d.primed = true
	if dt <= 0 {
		dt = 0.02
	}

	// De-gravity and integrate with leak (horizontal channel).
	lin := s.Accel.Sub(geom.V3(0, 0, Gravity))
	d.vel = d.vel.Scale(math.Exp(-d.Decay * dt)).Add(lin.Scale(dt))

	// Barometric vertical rate from the dual-timescale filter lag.
	if !d.baroReady {
		d.altFast = s.BaroAltM
		d.altSlow = s.BaroAltM
		d.baroReady = true
	} else {
		aF := 1 - math.Exp(-dt/baroTauFast)
		aS := 1 - math.Exp(-dt/baroTauSlow)
		d.altFast += aF * (s.BaroAltM - d.altFast)
		d.altSlow += aS * (s.BaroAltM - d.altSlow)
	}

	// Vibration estimate: EW std of |accel|-g.
	dev := math.Abs(s.Accel.Norm() - Gravity)
	const alpha = 0.05
	d.noise = (1-alpha)*d.noise + alpha*dev

	if d.noise < d.VibrationFloor {
		return StateGrounded
	}
	h := d.vel.XY().Norm()
	vz := (d.altFast - d.altSlow) / (baroTauSlow - baroTauFast)
	switch {
	case h < d.SpeedFloor && math.Abs(vz) < d.SpeedFloor:
		return StateHover
	case math.Abs(vz) >= d.SpeedFloor && math.Abs(vz) > h:
		if vz > 0 {
			return StateClimb
		}
		return StateDescent
	case h >= d.SpeedFloor:
		return StateTranslate
	default:
		return StateHover
	}
}

// Velocity returns the detector's current velocity estimate (leaky
// integral; useful for display, not navigation).
func (d *Detector) Velocity() geom.Vec3 { return d.vel }

// Reset clears the detector state.
func (d *Detector) Reset() {
	d.vel = geom.Vec3{}
	d.noise = 0
	d.primed = false
}
