package imu

import (
	"math"
	"math/rand"
	"testing"

	"hdc/internal/flight"
	"hdc/internal/geom"
)

func newIMU(t testing.TB, seed int64) *IMU {
	t.Helper()
	i, err := New(Config{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return i
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("nil rng should fail")
	}
}

func TestSampleAtRestReadsGravity(t *testing.T) {
	i := newIMU(t, 1)
	var mean geom.Vec3
	const n = 500
	s := flight.State{}
	for k := 0; k < n; k++ {
		smp := i.Sample(0.02, s, false)
		mean = mean.Add(smp.Accel)
	}
	mean = mean.Scale(1.0 / n)
	if math.Abs(mean.Z-Gravity) > 0.2 {
		t.Fatalf("rest Z accel %v, want ≈%v", mean.Z, Gravity)
	}
	if mean.XY().Norm() > 0.2 {
		t.Fatalf("rest lateral accel %v, want ≈0", mean.XY())
	}
}

func TestVibrationSignature(t *testing.T) {
	i := newIMU(t, 2)
	s := flight.State{Pos: geom.V3(0, 0, 5)}
	varOf := func(rotors bool) float64 {
		var sum, sumsq float64
		const n = 400
		for k := 0; k < n; k++ {
			dev := i.Sample(0.02, s, rotors).Accel.Norm() - Gravity
			sum += dev
			sumsq += dev * dev
		}
		return sumsq/n - (sum/n)*(sum/n)
	}
	off := varOf(false)
	on := varOf(true)
	if on < off*4 {
		t.Fatalf("rotor vibration not distinguishable: off=%v on=%v", off, on)
	}
}

func TestGyroTracksYaw(t *testing.T) {
	i := newIMU(t, 3)
	s := flight.State{Heading: geom.North}
	i.Sample(0.02, s, true)               // prime
	s.Heading = s.Heading.Add(0.02 * 1.5) // 1.5 rad/s for one step
	smp := i.Sample(0.02, s, true)
	if math.Abs(smp.GyroZ-1.5) > 0.2 {
		t.Fatalf("gyro %v, want ≈1.5", smp.GyroZ)
	}
}

// TestDetectorAgainstGroundTruth flies a full mission profile and checks
// the detector's classification matches the airframe's true gross state in
// a strong majority of samples — the §II "indicate actual flight"
// requirement from sensors alone.
func TestDetectorAgainstGroundTruth(t *testing.T) {
	d, err := flight.New(flight.DefaultParams(), geom.V3(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	sensor := newIMU(t, 4)
	det := NewDetector()

	const dt = 0.02
	type phase struct {
		name   string
		truth  MotionState
		run    func()
		warmup int // samples to let the detector settle
	}
	step := func(cmd geom.Vec3) func() {
		return func() { d.Step(dt, cmd, 0) }
	}
	phases := []phase{
		{"parked", StateGrounded, func() {}, 10},
		{"climb", StateClimb, step(geom.V3(0, 0, 2)), 60},
		{"hover", StateHover, step(geom.Vec3{}), 150},
		{"translate", StateTranslate, step(geom.V3(4, 0, 0)), 80},
		{"descent", StateDescent, step(geom.V3(0, 0, -1.5)), 150},
	}
	for pi, ph := range phases {
		if pi == 1 {
			d.StartRotors()
		}
		correct, total := 0, 0
		for k := 0; k < 350; k++ {
			ph.run()
			smp := sensor.Sample(dt, d.S, d.RotorsOn())
			got := det.Push(smp)
			if k < ph.warmup {
				continue
			}
			total++
			if got == ph.truth {
				correct++
			}
		}
		if frac := float64(correct) / float64(total); frac < 0.65 {
			t.Errorf("phase %s: detector agreement %.2f < 0.65", ph.name, frac)
		}
	}
}

func TestDetectorReset(t *testing.T) {
	det := NewDetector()
	det.Push(Sample{Accel: geom.V3(5, 0, Gravity)})
	if det.Velocity() == (geom.Vec3{}) {
		t.Fatal("velocity should have integrated")
	}
	det.Reset()
	if det.Velocity() != (geom.Vec3{}) {
		t.Fatal("reset failed")
	}
}

func TestMotionStateStrings(t *testing.T) {
	for _, m := range []MotionState{StateUnknown, StateGrounded, StateHover, StateClimb, StateDescent, StateTranslate} {
		if m.String() == "" {
			t.Fatal("empty state string")
		}
	}
}

func TestDetectorBiasBounded(t *testing.T) {
	// A long stationary hover must not drift into a motion state: the leaky
	// integrator bounds constant-bias drift.
	sensor := newIMU(t, 6)
	det := NewDetector()
	s := flight.State{Pos: geom.V3(0, 0, 5)}
	misfires := 0
	const n = 3000
	for k := 0; k < n; k++ {
		got := det.Push(sensor.Sample(0.02, s, true))
		if k > 200 && got != StateHover {
			misfires++
		}
	}
	if misfires > n/10 {
		t.Fatalf("hover misclassified %d/%d samples", misfires, n)
	}
}
