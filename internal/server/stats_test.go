package server

import (
	"testing"
	"time"
)

// TestBucketBoundaries pins the histogram's edge semantics — bucket 0 is
// [0, 16µs), bucket i≥1 is [16µs·2^(i-1), 16µs·2^i), the top bucket is
// open-ended — at exactly the boundaries the old comment misplaced.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{16*time.Microsecond - time.Nanosecond, 0}, // last duration of bucket 0
		{16 * time.Microsecond, 1},                 // first duration of bucket 1
		{32*time.Microsecond - time.Nanosecond, 1},
		{32 * time.Microsecond, 2},
		{time.Duration(latencyBucket0Ns) << (latencyBuckets - 2), latencyBuckets - 1}, // first of the top bucket
		{time.Duration(latencyBucket0Ns)<<(latencyBuckets-2) - 1, latencyBuckets - 2}, // last below it
		{24 * time.Hour, latencyBuckets - 1},                                          // open-ended top
		{time.Duration(latencyBucket0Ns) << (latencyBuckets + 4), latencyBuckets - 1}, // far past the table
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Upper edges: bucket 0 ends exactly where bucket 1 begins, and each
	// bucket's reported edge is the next bucket's first duration.
	if bucketUpperNs(0) != 16_000 {
		t.Fatalf("bucketUpperNs(0) = %d, want 16000", bucketUpperNs(0))
	}
	for b := 0; b < latencyBuckets-1; b++ {
		edge := time.Duration(bucketUpperNs(b))
		if got := bucketOf(edge); got != b+1 {
			t.Errorf("duration at bucketUpperNs(%d) lands in bucket %d, want %d", b, got, b+1)
		}
		if got := bucketOf(edge - time.Nanosecond); got != b {
			t.Errorf("duration just under bucketUpperNs(%d) lands in bucket %d, want %d", b, got, b)
		}
	}
}
