package server

import (
	"bytes"
	"image"
	"image/png"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// TestDecodePNGFrame round-trips a gray PNG body into a pooled frame.
func TestDecodePNGFrame(t *testing.T) {
	src := image.NewGray(image.Rect(0, 0, 8, 6))
	for i := range src.Pix {
		src.Pix[i] = uint8(i * 3)
	}
	var buf bytes.Buffer
	if err := png.Encode(&buf, src); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/recognize", &buf)
	req.Header.Set("Content-Type", "image/png")

	var pool raster.Pool
	frames, err := decodeFrames(req, &pool, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || frames[0].W != 8 || frames[0].H != 6 {
		t.Fatalf("decoded %d frames, geometry %v", len(frames), frames[0])
	}
	for i, p := range frames[0].Pix {
		if p != src.Pix[i] {
			t.Fatalf("pixel %d: got %d want %d", i, p, src.Pix[i])
		}
	}
	releaseFrames(&pool, frames)

	// RGBA PNGs convert through luma rather than failing.
	rgba := image.NewRGBA(image.Rect(0, 0, 4, 4))
	for i := range rgba.Pix {
		rgba.Pix[i] = 200
	}
	buf.Reset()
	if err := png.Encode(&buf, rgba); err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest("POST", "/v1/recognize", &buf)
	req.Header.Set("Content-Type", "image/png")
	frames, err = decodeFrames(req, &pool, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := frames[0].Pix[0]; got < 195 || got > 205 {
		t.Fatalf("luma conversion off: %d", got)
	}
}

// TestResultToWireNonFinite pins the -1 sentinel for +Inf margins — JSON
// cannot carry Inf, and an unrivalled match produces one.
func TestResultToWireNonFinite(t *testing.T) {
	res := recognizer.Result{Margin: math.Inf(1), Confidence: 1}
	out := resultToWire(res, nil)
	if out.Margin != -1 {
		t.Fatalf("inf margin on the wire: %v, want -1", out.Margin)
	}
	if out.Confidence != 1 {
		t.Fatalf("confidence: %v", out.Confidence)
	}
}

// TestLatencyHistogram pins the bucket math and percentile estimates.
func TestLatencyHistogram(t *testing.T) {
	if b := bucketOf(0); b != 0 {
		t.Fatalf("bucketOf(0) = %d", b)
	}
	if b := bucketOf(15 * time.Microsecond); b != 0 {
		t.Fatalf("bucketOf(15µs) = %d", b)
	}
	if b := bucketOf(16 * time.Microsecond); b != 1 {
		t.Fatalf("bucketOf(16µs) = %d", b)
	}
	if b := bucketOf(time.Hour); b != latencyBuckets-1 {
		t.Fatalf("bucketOf(1h) = %d, want top bucket", b)
	}

	var e endpointStats
	// 99 fast requests, one slow: p50 stays in the fast bucket, p99 reaches
	// the slow one.
	for i := 0; i < 99; i++ {
		e.record(20*time.Microsecond, 1, false)
	}
	e.record(100*time.Millisecond, 1, true)
	s := e.snapshot()
	if s.Count != 100 || s.Errors != 1 || s.Frames != 100 {
		t.Fatalf("counts: %+v", s)
	}
	if s.P50MS > 0.1 {
		t.Fatalf("p50 %.3f ms, want fast bucket", s.P50MS)
	}
	if s.P99MS < 50 {
		t.Fatalf("p99 %.3f ms, want slow bucket", s.P99MS)
	}
	if s.MaxMS < 99 {
		t.Fatalf("max %.3f ms", s.MaxMS)
	}
}
