package server_test

import (
	"context"
	"testing"

	"hdc/internal/body"
	"hdc/internal/pipeline"
	"hdc/internal/server"
	"hdc/internal/server/client"
)

// BenchmarkServerBatch is the CI perf-gate benchmark for the service layer:
// a 16-frame batch through the full HTTP round trip (wire decode → shared
// pool → wire encode) on the raw octet-stream encoding. ns/op ÷ 16 is the
// service's per-frame cost; compare with BenchmarkPipelineThroughput for
// the in-process floor — the difference is the network tax.
func BenchmarkServerBatch(b *testing.B) {
	sys, _, hs := testService(b, server.Options{}, pipeline.Config{})
	signs := signPattern(0, 16)
	frames := signFrames(b, sys, signs)
	c := client.New(hs.URL, nil)
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := c.RecognizeBatch(ctx, frames)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(frames) {
			b.Fatalf("%d results", len(results))
		}
	}
}

// BenchmarkServerRecognize is the single-frame round trip, the latency the
// loadgen's p50 should approach on an idle service.
func BenchmarkServerRecognize(b *testing.B) {
	sys, _, hs := testService(b, server.Options{}, pipeline.Config{})
	frame := signFrames(b, sys, []body.Sign{body.SignNo})[0]
	c := client.New(hs.URL, nil)
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Recognize(ctx, frame); err != nil {
			b.Fatal(err)
		}
	}
}
