package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"hdc/internal/raster"
	"hdc/internal/server"
	"hdc/internal/server/client"
)

// client_test.go pins the client's dependability behaviour against scripted
// fake servers: retry/backoff on transient failures, no retries on client
// mistakes or stream submissions, Retry-After honoured, the circuit breaker
// opening after consecutive failures, per-attempt timeouts, and deadline
// forwarding. The real end-to-end behaviour against a live service is
// covered by the server package's tests.

// fastOptions keeps retries snappy for tests.
func fastOptions() client.Options {
	return client.Options{
		Timeout:     2 * time.Second,
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	}
}

// scriptedServer answers with the scripted status codes in order, then 200
// with an empty JSON object.
func scriptedServer(t *testing.T, calls *atomic.Int64, statuses ...int) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= len(statuses) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(statuses[n-1])
			_, _ = w.Write([]byte(`{"error":"scripted"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{}`))
	}))
	t.Cleanup(hs.Close)
	return hs
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	hs := scriptedServer(t, &calls, http.StatusServiceUnavailable, http.StatusBadGateway)
	c := client.NewWithOptions(hs.URL, fastOptions())
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz after transient failures: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts: %d, want 3", calls.Load())
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	hs := scriptedServer(t, &calls, http.StatusBadRequest, http.StatusBadRequest, http.StatusBadRequest)
	c := client.NewWithOptions(hs.URL, fastOptions())
	err := c.Healthz(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("got %v, want 400 APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("attempts: %d, want 1 (no retry on 400)", calls.Load())
	}
}

func TestRetryAfterHonoured(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"overloaded"}`))
			return
		}
		_, _ = w.Write([]byte(`{}`))
	}))
	defer hs.Close()
	c := client.NewWithOptions(hs.URL, fastOptions())
	t0 := time.Now()
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el < 900*time.Millisecond {
		t.Fatalf("retried after %v, want ≥ the server's Retry-After: 1s", el)
	}
}

func TestCircuitBreakerOpens(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"down"}`))
	}))
	defer hs.Close()
	o := fastOptions()
	o.MaxAttempts = 1
	o.BreakerThreshold = 2
	o.BreakerCooldown = time.Hour
	c := client.NewWithOptions(hs.URL, o)
	for i := 0; i < 2; i++ {
		if err := c.Healthz(context.Background()); err == nil {
			t.Fatal("healthz succeeded against a dead server")
		}
	}
	err := c.Healthz(context.Background())
	if !errors.Is(err, client.ErrCircuitOpen) {
		t.Fatalf("third call: %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2 (breaker short-circuits)", calls.Load())
	}
}

func TestPerAttemptTimeout(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hs.Close()
	defer close(release)
	o := fastOptions()
	o.Timeout = 50 * time.Millisecond
	o.MaxAttempts = 2
	// The overall transport timeout would otherwise fire first; leave the
	// per-attempt context in charge.
	o.HTTPClient = &http.Client{}
	c := client.NewWithOptions(hs.URL, o)
	t0 := time.Now()
	err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("healthz succeeded against a hung server")
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Fatalf("attempts not bounded by per-attempt timeout: %v", el)
	}
	if calls.Load() != 2 {
		t.Fatalf("attempts: %d, want 2", calls.Load())
	}
}

func TestStreamSubmitNeverRetries(t *testing.T) {
	var frames atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/streams" {
			_, _ = w.Write([]byte(`{"id":"s1","window":4}`))
			return
		}
		frames.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"draining"}`))
	}))
	defer hs.Close()
	c := client.NewWithOptions(hs.URL, fastOptions())
	st, err := c.OpenStream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := raster.NewGray(8, 8)
	if _, err := st.Submit(context.Background(), g); err == nil {
		t.Fatal("submit succeeded against a draining server")
	}
	if frames.Load() != 1 {
		t.Fatalf("frame submits: %d, want 1 (stream submissions must not retry)", frames.Load())
	}
}

func TestDeadlineForwarded(t *testing.T) {
	var gotMs atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := r.Header.Get(server.DeadlineHeader); h != "" {
			ms, _ := strconv.Atoi(h)
			gotMs.Store(int64(ms))
		}
		_, _ = w.Write([]byte(`{"results":[{"ok":true}]}`))
	}))
	defer hs.Close()
	c := client.NewWithOptions(hs.URL, fastOptions())
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	g, _ := raster.NewGray(8, 8)
	if _, err := c.RecognizeBatch(ctx, []*raster.Gray{g}); err != nil {
		t.Fatal(err)
	}
	if ms := gotMs.Load(); ms <= 0 || ms > 400 {
		t.Fatalf("forwarded deadline %dms, want within (0, 400]", ms)
	}
}

// TestDrainingSentinelOnlyMatchesWrapped pins why the sentinelerr
// analyzer bans identity comparison: ErrDraining never reaches a caller
// bare. decodeError wraps it with the server's message
// (fmt.Errorf("%w: %s", ErrDraining, ...)), so `err == ErrDraining`
// misses every real drain, while errors.Is matches all of them.
func TestDrainingSentinelOnlyMatchesWrapped(t *testing.T) {
	var calls atomic.Int64
	hs := scriptedServer(t, &calls, http.StatusServiceUnavailable)
	o := fastOptions()
	o.MaxAttempts = 1
	c := client.NewWithOptions(hs.URL, o)
	err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("healthz against a draining server: want an error")
	}
	if !errors.Is(err, client.ErrDraining) {
		t.Fatalf("errors.Is(err, ErrDraining) = false for %v; the sentinel must survive wrapping", err)
	}
	//hdclint:ignore sentinelerr this identity comparison is the subject under test: it must NOT match the wrapped sentinel
	if err == client.ErrDraining {
		t.Fatalf("err == ErrDraining matched; decodeError stopped wrapping the sentinel and the test premise is gone")
	}
}
